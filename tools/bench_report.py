#!/usr/bin/env python3
"""Perf-trajectory report over BENCH_*.json snapshots.

Collects schema-v2 benchmark documents from the given files/directories,
groups them into snapshots keyed on their `git_describe` metadata (plus a
`+smoke` marker, since smoke sweeps are not comparable to full runs), and
emits a markdown table of the primary metric per benchmark row across
snapshots -- the committed full-run snapshots at the repository root make
every point attributable to the commit that produced it.

Rows are keyed on (binary, bench, backend, p, count) plus an occurrence
index: several benchmarks legitimately emit multiple rows per core key
(e.g. fig7's bcasts=1 vs bcasts=50, sensitivity's alpha/beta grid), and
binaries emit rows in a deterministic order, so the i-th occurrence in
one snapshot corresponds to the i-th in another. The delta column
compares the last snapshot against the first wherever both have the row.

Usage:
    bench_report.py [--out report.md] [--metric vtime] PATH [PATH ...]
    # e.g. committed snapshots vs a fresh CI run:
    bench_report.py --out report.md . bench-json
"""

import argparse
import json
import pathlib
import sys

ROW_KEY = ("binary", "bench", "backend", "p", "count")


def collect_files(paths):
    files = []
    for raw in paths:
        p = pathlib.Path(raw)
        if p.is_dir():
            files.extend(sorted(p.glob("BENCH_*.json")))
        elif p.is_file():
            files.append(p)
        else:
            print(f"bench_report: no such path: {p}", file=sys.stderr)
            return None
    return files


def snapshot_label(meta):
    label = meta.get("git_describe", "?") or "?"
    if meta.get("smoke"):
        label += "+smoke"
    return label


def load_snapshots(files, metric):
    """-> (ordered snapshot labels, {row_key: {label: value}})."""
    labels = []
    table = {}
    for path in files:
        try:
            doc = json.loads(path.read_text())
            meta = doc["meta"]
            rows = doc["rows"]
        except (json.JSONDecodeError, KeyError, TypeError) as e:
            print(f"bench_report: skipping {path}: {e}", file=sys.stderr)
            continue
        label = snapshot_label(meta)
        if label not in labels:
            labels.append(label)
        seen = {}  # core key -> occurrences within this (file, label)
        for row in rows:
            if not isinstance(row, dict) or metric not in row:
                continue
            core = (meta.get("binary", path.stem),) + tuple(
                row.get(k) for k in ROW_KEY[1:])
            index = seen.get(core, 0)
            seen[core] = index + 1
            table.setdefault(core + (index,), {})[label] = row[metric]
    return labels, table


def fmt(v):
    if v is None:
        return ""
    if isinstance(v, float):
        return f"{v:.4g}"
    return str(v)


def render(labels, table, metric):
    lines = [
        f"# Benchmark trajectory ({metric})",
        "",
        f"{len(table)} row(s) across {len(labels)} snapshot(s): "
        + ", ".join(f"`{s}`" for s in labels),
        "",
    ]
    header = ["binary", "bench", "backend", "p", "count", "#"] + [
        f"`{s}`" for s in labels] + ["delta"]
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "---|" * len(header))
    improved = regressed = 0
    for key in sorted(table):
        values = table[key]
        cells = [fmt(k) for k in key] + [fmt(values.get(s)) for s in labels]
        delta = ""
        a = values.get(labels[0])
        b = values.get(labels[-1])
        if len(labels) > 1 and a is not None and b is not None \
                and isinstance(a, (int, float)) \
                and isinstance(b, (int, float)) and a > 0:
            pct = 100.0 * (b - a) / a
            delta = f"{pct:+.1f}%"
            if pct <= -2.0:
                improved += 1
            elif pct >= 2.0:
                regressed += 1
        cells.append(delta)
        lines.append("| " + " | ".join(cells) + " |")
    lines.append("")
    if len(labels) > 1:
        lines.append(
            f"Last vs first snapshot (rows present in both): "
            f"{improved} improved, {regressed} regressed "
            f"(threshold 2%, lower {metric} is better).")
    elif len(labels) == 1:
        lines.append("Only one snapshot group found; add a second "
                     "(different `git describe` or smoke/full mode) to "
                     "get deltas.")
    else:
        lines.append("No snapshots found; commit or point this script at "
                     "BENCH_*.json documents to populate the table.")
    lines.append("")
    return "\n".join(lines)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="+",
                        help="BENCH_*.json files or directories of them")
    parser.add_argument("--metric", default="vtime",
                        help="row metric to tabulate (default: vtime)")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="write the markdown here (default: stdout)")
    args = parser.parse_args()

    files = collect_files(args.paths)
    if files is None:
        return 2  # a named path does not exist -- a real usage error
    # Zero or one snapshot is a normal state (fresh clone, first bench
    # run): emit the report with whatever is there rather than failing,
    # so CI steps and local runs can call this unconditionally.
    if not files:
        print("bench_report: no BENCH_*.json inputs found", file=sys.stderr)
    labels, table = load_snapshots(files, args.metric)
    if files and not table:
        print("bench_report: no rows with the requested metric",
              file=sys.stderr)
    text = render(labels, table, args.metric)
    if args.out is None:
        sys.stdout.write(text)
    else:
        args.out.write_text(text)
        print(f"bench_report: wrote {args.out} ({len(table)} rows, "
              f"{len(labels)} snapshots)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
