#!/usr/bin/env python3
"""Manifest-driven gate for the BENCH_*.json benchmark outputs.

Validates every benchmark declared in bench/manifest.json against the
shared schema-v2 document layout:

    {"meta": {binary, figure, p, reps, smoke, git_describe,
              schema_version}, "rows": [{bench, backend, p, count, vtime,
              wall_ms, ...extras}]}

and against the manifest's per-bench contract: the set of emitted bench
names, the per-bench required extra keys, the per-bench backend sets, and
the invariant assertions. Two assertion forms:

  * per-row (default): the expression is evaluated once per matching row
    with the row's fields as variables (e.g. segmented exchanges must
    bound every wire message by segment_bytes);
  * cross-row ("cross": true): the expression is evaluated once over the
    whole matched row *set*, with helpers for series comparisons across
    rows -- this is how paper shapes spanning a sweep are encoded (fig7's
    ratio decay toward 1, fig5's CGslow >> CGfast, the service gate's
    rbc-vs-mpi throughput ordering). Available helpers:

        series(key, order_by='count', **filters)  ordered value list
        first(key, ...) / last(key, ...)          endpoints of a series
        minof(key, **filters) / maxof(key, ...)   extrema over rows
        nonincreasing(xs, tol=0) / nondecreasing(xs, tol=0)
        rows                                      the matched row dicts

    plus the usual all/any/len/min/max/sum/abs/sorted/zip/round. The
    `where` filter selects the row set; series filters (keyword args)
    refine it further per call.

The manifest is also a coverage gate: every bench/bench_*.cpp source must
have a manifest entry and vice versa, so adding a benchmark without
wiring it into the CI gate fails the build.

Usage:
    validate_bench.py bench/manifest.json                   # validate
    validate_bench.py bench/manifest.json --run --smoke \
        --bin-dir build --json-dir bench-json               # run + validate
    validate_bench.py bench/manifest.json --only bench_alltoall ...

With --run, each binary is executed as
    <bin-dir>/<binary> [--smoke] --json <json-dir>/<json>
before its output is validated; without it, the JSON artifacts are
expected to exist in --json-dir already.
"""

import argparse
import json
import pathlib
import re
import subprocess
import sys

CORE_KEYS = {
    "bench": str,
    "backend": str,
    "p": int,
    "count": int,
    "vtime": (int, float),
    "wall_ms": (int, float),
}

META_KEYS = {
    "binary": str,
    "figure": str,
    "p": int,
    "reps": int,
    "smoke": bool,
    "git_describe": str,
    "schema_version": int,
}

SCHEMA_VERSION = 2


class Failures:
    def __init__(self):
        self.messages = []

    def add(self, context, message):
        self.messages.append(f"{context}: {message}")

    def __bool__(self):
        return bool(self.messages)


def check_coverage(manifest_path, manifest, fail):
    """Manifest entries and bench_*.cpp sources must match one-to-one."""
    bench_dir = manifest_path.parent
    sources = {p.stem for p in bench_dir.glob("bench_*.cpp")}
    declared = {e["binary"] for e in manifest["benchmarks"]}
    for missing in sorted(sources - declared):
        fail.add(
            "coverage",
            f"{missing}.cpp has no entry in {manifest_path}; every "
            "benchmark must be wired into the CI gate",
        )
    for stale in sorted(declared - sources):
        fail.add(
            "coverage",
            f"manifest entry '{stale}' has no bench/{stale}.cpp source",
        )
    dupes = [b for b in declared
             if sum(1 for e in manifest["benchmarks"]
                    if e["binary"] == b) > 1]
    for d in sorted(set(dupes)):
        fail.add("coverage", f"manifest declares '{d}' more than once")


def run_benchmark(entry, args, fail):
    binary = pathlib.Path(args.bin_dir) / entry["binary"]
    out_path = pathlib.Path(args.json_dir) / entry["json"]
    out_path.parent.mkdir(parents=True, exist_ok=True)
    cmd = [str(binary)]
    if args.smoke:
        cmd.append("--smoke")
    cmd += ["--json", str(out_path)]
    try:
        proc = subprocess.run(
            cmd, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
            timeout=args.timeout, check=False)
    except FileNotFoundError:
        fail.add(entry["binary"], f"binary not found: {binary}")
        return
    except subprocess.TimeoutExpired:
        fail.add(entry["binary"], f"timed out after {args.timeout}s")
        return
    if proc.returncode != 0:
        tail = proc.stderr.decode(errors="replace").strip().splitlines()
        fail.add(
            entry["binary"],
            f"exited with {proc.returncode}: {' | '.join(tail[-3:])}",
        )


def referenced_keys(expr):
    """Row/series keys an assertion expression mentions: bare identifiers
    plus string literals (series('bytes_on_wire', backend='select')
    references both)."""
    names = set(re.findall(r"[A-Za-z_][A-Za-z0-9_]*", expr))
    for a, b in re.findall(r"'([^']*)'|\"([^\"]*)\"", expr):
        names.add(a or b)
    return names


def row_values(expr, row):
    """The values the expression actually saw in `row`, as 'k=v' pairs,
    so a failure report shows the offending numbers instead of only the
    expression string."""
    keys = referenced_keys(expr) & set(row)
    return ", ".join(f"{k}={json.dumps(row[k])}" for k in sorted(keys))


def row_identity(row):
    return (f"bench={row.get('bench')!r} backend={row.get('backend')!r} "
            f"p={row.get('p')} count={row.get('count')}")


def describe_rows(expr, rows, limit=10):
    """Compact per-row dump of a matched row set: identity plus every
    field the expression references."""
    lines = []
    for row in rows[:limit]:
        vals = row_values(expr, row)
        lines.append(f"    {row_identity(row)}" + (f": {vals}" if vals
                                                  else ""))
    if len(rows) > limit:
        lines.append(f"    ... and {len(rows) - limit} more row(s)")
    return "\n".join(lines)


def eval_assertion(expr, row):
    """Evaluates an invariant expression with the row's fields as
    variables. The manifest is checked-in and reviewed, so a restricted
    eval (no builtins) is the right power-to-weight."""
    return eval(expr, {"__builtins__": {}}, dict(row))  # noqa: S307


def eval_cross_assertion(expr, rows):
    """Evaluates a cross-row expression once over the matched row set."""

    def pick(filters):
        return [r for r in rows
                if all(r.get(k) == v for k, v in filters.items())]

    def series(key, order_by="count", **filters):
        sel = sorted(pick(filters), key=lambda r: r.get(order_by, 0))
        return [r[key] for r in sel]

    def first(key, order_by="count", **filters):
        return series(key, order_by, **filters)[0]

    def last(key, order_by="count", **filters):
        return series(key, order_by, **filters)[-1]

    def minof(key, **filters):
        return min(r[key] for r in pick(filters))

    def maxof(key, **filters):
        return max(r[key] for r in pick(filters))

    def nonincreasing(xs, tol=0.0):
        return all(a + tol >= b for a, b in zip(xs, xs[1:]))

    def nondecreasing(xs, tol=0.0):
        return all(a <= b + tol for a, b in zip(xs, xs[1:]))

    env = {
        "rows": [dict(r) for r in rows],
        "series": series, "first": first, "last": last,
        "minof": minof, "maxof": maxof,
        "nonincreasing": nonincreasing, "nondecreasing": nondecreasing,
        "all": all, "any": any, "len": len, "min": min, "max": max,
        "sum": sum, "abs": abs, "sorted": sorted, "zip": zip,
        "round": round,
    }
    return eval(expr, {"__builtins__": {}}, env)  # noqa: S307


def validate_entry(entry, args, fail):
    name = entry["binary"]
    path = pathlib.Path(args.json_dir) / entry["json"]
    if not path.is_file():
        fail.add(name, f"missing JSON artifact {path}")
        return
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as e:
        fail.add(name, f"{path} is not valid JSON: {e}")
        return

    if not isinstance(doc, dict) or set(doc) != {"meta", "rows"}:
        fail.add(name, f"{path}: top level must be {{meta, rows}}")
        return

    meta = doc["meta"]
    for key, typ in META_KEYS.items():
        if key not in meta:
            fail.add(name, f"meta lacks '{key}'")
        elif not isinstance(meta[key], typ) or (
                typ is int and isinstance(meta[key], bool)):
            fail.add(name, f"meta.{key} has type {type(meta[key]).__name__}")
    if meta.get("binary") != name:
        fail.add(name, f"meta.binary is '{meta.get('binary')}'")
    if meta.get("schema_version") != SCHEMA_VERSION:
        fail.add(name, f"meta.schema_version is {meta.get('schema_version')}"
                       f", expected {SCHEMA_VERSION}")
    if isinstance(meta.get("reps"), int) and meta["reps"] < 1:
        fail.add(name, f"meta.reps is {meta['reps']}")
    # Optional (snapshots predating the --seed flag lack it): the
    # randomization seed the run is reproducible from.
    if "seed" in meta and (not isinstance(meta["seed"], int)
                           or isinstance(meta["seed"], bool)
                           or meta["seed"] < 0):
        fail.add(name, f"meta.seed is {meta.get('seed')!r}")
    if isinstance(meta.get("git_describe"), str) and not meta["git_describe"]:
        fail.add(name, "meta.git_describe is empty")
    # Optional: the --cost-model overrides the run was measured under
    # (runs on the default flat model omit it).
    if "cost_model" in meta:
        cm = meta["cost_model"]
        if not isinstance(cm, dict) or not cm:
            fail.add(name, "meta.cost_model must be a non-empty object")
        else:
            known = {"alpha", "beta", "intra_alpha", "intra_beta",
                     "inter_alpha", "inter_beta"}
            for key, value in cm.items():
                if key not in known:
                    fail.add(name, f"meta.cost_model has unknown key "
                                   f"'{key}'")
                if not isinstance(value, (int, float)) \
                        or isinstance(value, bool):
                    fail.add(name, f"meta.cost_model.{key} is not a number")

    rows = doc["rows"]
    if not isinstance(rows, list):
        fail.add(name, "rows is not a list")
        return
    if len(rows) < entry.get("min_rows", 1):
        fail.add(name, f"only {len(rows)} rows "
                       f"(expected >= {entry.get('min_rows', 1)})")

    contract = entry["benches"]
    seen_benches = {}
    for i, row in enumerate(rows):
        ctx = f"{name} rows[{i}]"
        if not isinstance(row, dict):
            fail.add(ctx, "row is not an object")
            continue
        for key, typ in CORE_KEYS.items():
            if key not in row:
                fail.add(ctx, f"lacks core key '{key}'")
            elif not isinstance(row[key], typ) or isinstance(row[key], bool):
                fail.add(ctx, f"{key} has type {type(row[key]).__name__}")
        bench = row.get("bench")
        if not isinstance(bench, str):
            continue
        seen_benches.setdefault(bench, []).append(row)
        if bench not in contract:
            fail.add(ctx, f"undeclared bench name '{bench}'")
            continue
        if isinstance(row.get("p"), int) and row["p"] < 1:
            fail.add(ctx, f"p is {row['p']}")
        if isinstance(row.get("count"), int) and row["count"] < 0:
            fail.add(ctx, f"count is {row['count']}")
        for metric in ("vtime", "wall_ms"):
            v = row.get(metric)
            if isinstance(v, (int, float)) and not isinstance(v, bool) \
                    and v < 0:
                fail.add(ctx, f"{metric} is negative ({v})")
        for key in contract[bench].get("required_keys", []):
            if key not in row:
                fail.add(ctx, f"bench '{bench}' requires key '{key}'")
            elif row[key] is None:
                fail.add(ctx, f"required key '{key}' is null")

    for bench, spec in contract.items():
        if bench not in seen_benches:
            fail.add(name, f"no rows for declared bench '{bench}'")
            continue
        want = spec.get("backends")
        if want is not None:
            got = {r.get("backend") for r in seen_benches[bench]}
            if got != set(want):
                fail.add(name, f"bench '{bench}' backends {sorted(got)} != "
                               f"declared {sorted(want)}")

    for assertion in entry.get("asserts", []):
        where = assertion.get("where", {})
        expr = assertion["expr"]
        label = assertion.get("name", expr)
        matched_rows = [
            (i, row) for i, row in enumerate(rows)
            if isinstance(row, dict)
            and not any(row.get(k) != v for k, v in where.items())
        ]
        if not matched_rows:
            fail.add(name, f"assert '{label}' matched no rows "
                           f"(where={json.dumps(where)})")
            continue
        if assertion.get("cross"):
            plain = [r for _, r in matched_rows]
            try:
                ok = eval_cross_assertion(expr, plain)
            except Exception as e:  # noqa: BLE001 -- report, don't crash
                fail.add(name, f"cross assert '{label}' raised {e!r} over "
                               f"{len(plain)} rows:\n"
                               + describe_rows(expr, plain))
                continue
            if not ok:
                fail.add(name, f"cross assert '{label}' failed over "
                               f"{len(plain)} rows "
                               f"(where={json.dumps(where)}); "
                               "expression inputs per row:\n"
                               + describe_rows(expr, plain))
            continue
        for i, row in matched_rows:
            try:
                ok = eval_assertion(expr, row)
            except Exception as e:  # noqa: BLE001 -- report, don't crash
                fail.add(name, f"assert '{label}' raised {e!r} on rows[{i}] "
                               f"({row_identity(row)}; "
                               f"{row_values(expr, row)})")
                continue
            if not ok:
                fail.add(name, f"assert '{label}' failed on rows[{i}] "
                               f"({row_identity(row)}); "
                               f"expression inputs: {row_values(expr, row)}; "
                               f"full row: {json.dumps(row)}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("manifest", type=pathlib.Path)
    parser.add_argument("--json-dir", default=".",
                        help="directory holding (or receiving) the "
                             "BENCH_*.json artifacts")
    parser.add_argument("--bin-dir", default="build",
                        help="directory holding the bench binaries")
    parser.add_argument("--run", action="store_true",
                        help="run each benchmark before validating")
    parser.add_argument("--smoke", action="store_true",
                        help="pass --smoke to the benchmarks (with --run)")
    parser.add_argument("--timeout", type=int, default=1800,
                        help="per-benchmark run timeout in seconds")
    parser.add_argument("--only", action="append", default=None,
                        metavar="BINARY",
                        help="restrict run+validation to these binaries "
                             "(coverage is still checked; repeatable)")
    args = parser.parse_args()

    manifest = json.loads(args.manifest.read_text())
    fail = Failures()
    check_coverage(args.manifest, manifest, fail)

    entries = manifest["benchmarks"]
    if args.only:
        unknown = set(args.only) - {e["binary"] for e in entries}
        for u in sorted(unknown):
            fail.add("cli", f"--only {u}: no such manifest entry")
        entries = [e for e in entries if e["binary"] in args.only]

    for entry in entries:
        if args.run:
            run_benchmark(entry, args, fail)
        validate_entry(entry, args, fail)

    if fail:
        print(f"validate_bench: {len(fail.messages)} failure(s)",
              file=sys.stderr)
        for msg in fail.messages:
            print(f"  {msg}", file=sys.stderr)
        return 1
    print(f"validate_bench: OK -- {len(entries)} benchmark(s) validated, "
          f"{len(manifest['benchmarks'])} declared in manifest")
    return 0


if __name__ == "__main__":
    sys.exit(main())
