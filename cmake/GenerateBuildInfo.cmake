# Script-mode generator of bench_build_info.hpp, run on every build (not
# just at configure time) so the git describe recorded in BENCH_*.json
# metadata cannot go stale between configures. configure_file only
# rewrites the output when the content changes, so no-op runs do not
# trigger rebuilds.
#
# Inputs: -DSRC_DIR=<repo root> -DTEMPLATE=<version.hpp.in> -DOUT=<header>
find_package(Git QUIET)
set(JSORT_GIT_DESCRIBE "unknown")
if(GIT_EXECUTABLE)
  execute_process(
    COMMAND ${GIT_EXECUTABLE} describe --always --dirty
    WORKING_DIRECTORY ${SRC_DIR}
    RESULT_VARIABLE _git_describe_rc
    OUTPUT_VARIABLE _git_describe_out
    OUTPUT_STRIP_TRAILING_WHITESPACE
    ERROR_QUIET)
  if(_git_describe_rc EQUAL 0)
    set(JSORT_GIT_DESCRIBE "${_git_describe_out}")
  endif()
endif()
configure_file(${TEMPLATE} ${OUT} @ONLY)
