// Distributed sorting application: sorts a generated workload with Janus
// Quicksort (or a baseline) over the simulated cluster and verifies the
// result, reporting timing, balance and recursion statistics.
//
// Usage:
//   ./examples/sort_cli [p] [n_per_rank] [algo] [input] [transport]
//     p          ranks (default 32)
//     n_per_rank elements per rank (default 4096)
//     algo       jquick | hypercube | samplesort | multilevel
//                (default jquick)
//     input      uniform | gaussian | sorted-asc | sorted-desc |
//                all-equal | few-distinct | zipf | bucket-killer
//     transport  rbc | mpi | icomm (default rbc; jquick only)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sort/jsort.hpp"

namespace {

jsort::InputKind ParseKind(const std::string& s) {
  using K = jsort::InputKind;
  for (K k : {K::kUniform, K::kGaussian, K::kSortedAsc, K::kSortedDesc,
              K::kAllEqual, K::kFewDistinct, K::kZipf, K::kBucketKiller}) {
    if (s == jsort::InputKindName(k)) return k;
  }
  std::fprintf(stderr, "unknown input kind '%s'\n", s.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  const int p = argc > 1 ? std::atoi(argv[1]) : 32;
  const std::int64_t quota = argc > 2 ? std::atoll(argv[2]) : 4096;
  const std::string algo = argc > 3 ? argv[3] : "jquick";
  const jsort::InputKind kind =
      ParseKind(argc > 4 ? argv[4] : "uniform");
  const std::string transport = argc > 5 ? argv[5] : "rbc";

  std::printf("sort_cli: p=%d n/p=%lld algo=%s input=%s transport=%s\n", p,
              static_cast<long long>(quota), algo.c_str(),
              jsort::InputKindName(kind), transport.c_str());

  jsort::Backend backend = jsort::Backend::kRbc;
  if (!jsort::ParseBackend(transport, &backend)) {
    std::fprintf(stderr, "unknown transport '%s'\n", transport.c_str());
    return 2;
  }

  mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = p});
  rt.Run([&](mpisim::Comm& world) {
    rbc::Comm rw;
    rbc::Create_RBC_Comm(world, &rw);
    auto input = jsort::GenerateInput(kind, world.Rank(), p, quota, 4242);
    const auto before = jsort::GlobalFingerprint(input, rw);

    std::shared_ptr<jsort::Transport> tr =
        jsort::MakeTransport(backend, world);

    mpisim::Barrier(world);
    const double v0 = mpisim::Ctx().clock.Now();
    const auto t0 = std::chrono::steady_clock::now();

    std::vector<double> out;
    jsort::JQuickStats jstats;
    jsort::HypercubeStats hstats;
    if (algo == "hypercube") {
      out = jsort::HypercubeQuicksort(tr, std::move(input), {}, &hstats);
    } else if (algo == "samplesort") {
      out = jsort::SampleSort(tr, std::move(input));
    } else if (algo == "multilevel") {
      out = jsort::MultilevelSampleSort(tr, std::move(input));
    } else {
      out = jsort::JQuickSort(tr, std::move(input), {}, &jstats);
    }

    const double vtime = mpisim::Ctx().clock.Now() - v0;
    mpisim::Barrier(world);
    const auto t1 = std::chrono::steady_clock::now();
    double vmax = 0.0;
    mpisim::Allreduce(&vtime, &vmax, 1, mpisim::Datatype::kFloat64,
                      mpisim::ReduceOp::kMax, world);

    const bool sorted = jsort::IsGloballySorted(out, rw);
    const auto after = jsort::GlobalFingerprint(out, rw);
    const auto bal = jsort::GlobalBalance(out, rw);
    std::int64_t max_levels = 0;
    const std::int64_t my_levels = jstats.distributed_levels;
    mpisim::Allreduce(&my_levels, &max_levels, 1, mpisim::Datatype::kInt64,
                      mpisim::ReduceOp::kMax, world);

    if (world.Rank() == 0) {
      std::printf("  model time      : %.1f units\n", vmax);
      std::printf("  wall time       : %.2f ms\n",
                  std::chrono::duration<double, std::milli>(t1 - t0).count());
      std::printf("  globally sorted : %s\n", sorted ? "yes" : "NO");
      std::printf("  permutation ok  : %s\n",
                  before == after ? "yes" : "NO");
      std::printf("  balance         : min=%lld max=%lld%s\n",
                  static_cast<long long>(bal.min_count),
                  static_cast<long long>(bal.max_count),
                  bal.min_count == bal.max_count ? "  (perfect)" : "");
      if (algo == "jquick") {
        std::printf("  recursion depth : %lld distributed levels\n",
                    static_cast<long long>(max_levels));
      }
      if (!sorted || !(before == after)) std::exit(1);
    }
  });
  return 0;
}
