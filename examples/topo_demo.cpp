// Node-aware hierarchical transport, end to end: the same sample sort on
// the same 16-rank machine (4 nodes of 4), once over each flat delivery
// path and once over the topology-shaped hierarchical path, printing the
// per-level (intra-node vs inter-node) wire traffic each incurs and the
// virtual time each pays under a two-level cost model whose network
// startup is 25x the shared-memory one.
//
// The hierarchical path coalesces per-destination traffic on each node,
// crosses the network once leader-to-leader, and scatters locally -- so
// the number of messages paying the expensive inter-node alpha collapses
// from O(p^2) (every cross pair) to O(nodes^2), while delivered bytes
// stay identical.
//
// Run:  ./examples/topo_demo
#include <cstdint>
#include <cstdio>
#include <random>
#include <vector>

#include "mpisim/mpisim.hpp"
#include "sort/exchange.hpp"
#include "sort/sample_sort.hpp"
#include "topo/topology.hpp"

namespace {

constexpr int kRanks = 16;
constexpr int kNodeSize = 4;
constexpr int kPerRank = 2048;

struct PathResult {
  double vtime = 0.0;
  mpisim::Stats wire;  // summed over all ranks
};

/// One sample sort over the given delivery mode; traffic comes from the
/// substrate's per-rank wire counters, summed over all ranks, so the
/// intra/inter split reflects what actually crossed node boundaries.
PathResult RunPath(jsort::exchange::Mode mode) {
  mpisim::RuntimeConfig opts;
  opts.num_ranks = kRanks;
  opts.topology = topo::Topology::Uniform(kRanks, kNodeSize);
  // Two-level model: network startup 25x, per-byte 4x shared memory.
  opts.cost.intra_alpha = opts.cost.alpha;
  opts.cost.intra_beta = opts.cost.beta;
  opts.cost.inter_alpha = 25.0 * opts.cost.alpha;
  opts.cost.inter_beta = 4.0 * opts.cost.beta;
  mpisim::Runtime rt(opts);

  rt.Run([mode](mpisim::Comm& world) {
    auto tr = jsort::MakeMpiTransport(world);
    std::mt19937_64 rng(1234 + static_cast<std::uint64_t>(world.Rank()));
    std::vector<double> local(kPerRank);
    for (double& v : local) v = static_cast<double>(rng() % 1000000);
    jsort::SampleSortConfig cfg;
    cfg.exchange_mode = mode;
    jsort::SampleSort(tr, std::move(local), cfg);
  });

  return PathResult{rt.MaxVirtualTime(), rt.TotalStats()};
}

void Print(const char* name, const PathResult& r) {
  const auto intra_msgs = r.wire.messages_sent - r.wire.inter_messages_sent;
  const auto intra_bytes = r.wire.bytes_sent - r.wire.inter_bytes_sent;
  std::printf("%-12s vtime %10.1f | intra-node %5llu msgs %8llu B | "
              "inter-node %4llu msgs %8llu B\n",
              name, r.vtime, static_cast<unsigned long long>(intra_msgs),
              static_cast<unsigned long long>(intra_bytes),
              static_cast<unsigned long long>(r.wire.inter_messages_sent),
              static_cast<unsigned long long>(r.wire.inter_bytes_sent));
}

}  // namespace

int main() {
  std::printf("sample sort, %d ranks on %d nodes of %d, n/p = %d, "
              "inter/intra alpha ratio 25x\n\n",
              kRanks, kRanks / kNodeSize, kNodeSize, kPerRank);
  const PathResult dense = RunPath(jsort::exchange::Mode::kAlltoallv);
  const PathResult sparse = RunPath(jsort::exchange::Mode::kSparse);
  const PathResult hier = RunPath(jsort::exchange::Mode::kHierarchical);
  Print("dense", dense);
  Print("sparse", sparse);
  Print("hierarchical", hier);
  const double fewer =
      static_cast<double>(dense.wire.inter_messages_sent) /
      static_cast<double>(
          hier.wire.inter_messages_sent ? hier.wire.inter_messages_sent : 1);
  std::printf("\nhierarchical vs dense: %.1fx fewer inter-node messages, "
              "%.2fx vtime\n",
              fewer, hier.vtime / dense.vtime);
  return 0;
}
