// Adaptive parallel quadrature -- the paper's motivating pattern of
// "adjusting the scope of parallelism" with flexible process groups.
//
// The world group owns the integration interval. Each group estimates the
// error of its interval halves with Simpson's rule (deterministically, so
// no communication is needed for the decision), splits its *processes*
// proportionally to the estimated work with a local Split_RBC_Comm, and
// recurses. Leaves integrate adaptively; a world-level reduce collects
// the total. With blocking MPI communicator creation this recursion would
// serialize on every split; with RBC every split is free.
//
// Run:  ./examples/adaptive_quadrature [p]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "mpisim/mpisim.hpp"
#include "rbc/rbc.hpp"

namespace {

/// A nasty integrand: smooth on the left, wildly oscillating on the right.
double F(double x) { return std::sin(1.0 / (0.05 + x)) + std::sqrt(x); }

double Simpson(double a, double b) {
  const double m = 0.5 * (a + b);
  return (b - a) / 6.0 * (F(a) + 4.0 * F(m) + F(b));
}

/// Sequential adaptive Simpson on a leaf.
double AdaptiveLeaf(double a, double b, double tol, int depth) {
  const double m = 0.5 * (a + b);
  const double whole = Simpson(a, b);
  const double halves = Simpson(a, m) + Simpson(m, b);
  if (depth > 30 || std::fabs(whole - halves) < 15.0 * tol) {
    return halves;
  }
  return AdaptiveLeaf(a, m, 0.5 * tol, depth + 1) +
         AdaptiveLeaf(m, b, 0.5 * tol, depth + 1);
}

/// Recursive group descent: every rank of `group` handles [a, b].
/// Returns this rank's leaf contribution (0 for ranks whose leaf is
/// handled by a sibling -- never happens: every rank lands in a leaf).
double Descend(const rbc::Comm& group, double a, double b, double tol,
               int* splits) {
  if (group.Size() == 1) {
    return AdaptiveLeaf(a, b, tol, 0);
  }
  const double m = 0.5 * (a + b);
  // Error estimates of both halves (identical on all group members).
  const double el =
      std::fabs(Simpson(a, m) - (Simpson(a, 0.5 * (a + m)) +
                                 Simpson(0.5 * (a + m), m)));
  const double er =
      std::fabs(Simpson(m, b) - (Simpson(m, 0.5 * (m + b)) +
                                 Simpson(0.5 * (m + b), b)));
  // Processes proportional to estimated work, at least one per side.
  const int p = group.Size();
  int left_p = static_cast<int>(std::lround(
      p * (el / std::max(el + er, 1e-300))));
  left_p = std::max(1, std::min(p - 1, left_p));

  rbc::Comm sub;
  const bool go_left = group.Rank() < left_p;
  if (go_left) {
    rbc::Split_RBC_Comm(group, 0, left_p - 1, &sub);  // local, O(1)
  } else {
    rbc::Split_RBC_Comm(group, left_p, p - 1, &sub);
  }
  ++*splits;
  return go_left ? Descend(sub, a, m, 0.5 * tol, splits)
                 : Descend(sub, m, b, 0.5 * tol, splits);
}

}  // namespace

int main(int argc, char** argv) {
  const int p = argc > 1 ? std::atoi(argv[1]) : 16;
  std::printf("adaptive quadrature of sin(1/(0.05+x)) + sqrt(x) over [0,1] "
              "on %d ranks\n",
              p);
  mpisim::Runtime::Exec(p, [](mpisim::Comm& mpi_world) {
    rbc::Comm world;
    rbc::Create_RBC_Comm(mpi_world, &world);
    int splits = 0;
    const double mine = Descend(world, 0.0, 1.0, 1e-9, &splits);
    double total = 0.0;
    rbc::Reduce(&mine, &total, 1, rbc::Datatype::kFloat64,
                rbc::ReduceOp::kSum, 0, world);
    std::printf("  [rank %d] %d local group splits, partial = %.12f\n",
                world.Rank(), splits, mine);
    if (world.Rank() == 0) {
      // Reference value computed with a very fine sequential pass.
      const double reference = AdaptiveLeaf(0.0, 1.0, 1e-12, 0);
      std::printf("integral  = %.12f\n", total);
      std::printf("reference = %.12f (|err| = %.2e)\n", reference,
                  std::fabs(total - reference));
    }
  });
  return 0;
}
