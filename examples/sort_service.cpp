// Elastic multi-job sort service demo: a Poisson-in-virtual-time stream
// of mixed sort jobs (jquick / samplesort / multilevel over several
// input distributions) admitted onto dynamically allocated contiguous
// rank ranges, one Transport::Split per admission. Prints the per-job
// timeline and the service-level metrics that bench_service gates in CI:
// jobs/sec, p50/p99 latency, and the split-vtime share (identically zero
// on the RBC backend -- the paper's O(1) local communicator creation).
//
// Usage:
//   ./examples/sort_service [p] [jobs] [backend] [policy] [alloc] [seed]
//     p        ranks (default 32)
//     jobs     number of jobs in the stream (default 48)
//     backend  rbc | mpi | icomm (default rbc)
//     policy   fifo | sjf | adaptive (default fifo)
//     alloc    first-fit | buddy (default first-fit)
//     seed     stream seed (default 1)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "mpisim/runtime.hpp"
#include "sched/service.hpp"

int main(int argc, char** argv) try {
  const int p = argc > 1 ? std::atoi(argv[1]) : 32;
  const int jobs = argc > 2 ? std::atoi(argv[2]) : 48;
  if (p < 1 || jobs < 0) {
    std::fprintf(stderr, "p must be >= 1 and jobs >= 0\n");
    return 2;
  }
  const std::string backend_name = argc > 3 ? argv[3] : "rbc";
  const std::string policy_name = argc > 4 ? argv[4] : "fifo";
  const std::string alloc_name = argc > 5 ? argv[5] : "first-fit";
  const std::uint64_t seed = argc > 6
                                 ? std::strtoull(argv[6], nullptr, 10)
                                 : 1u;

  jsort::sched::ServiceConfig cfg;
  if (!jsort::ParseBackend(backend_name, &cfg.backend)) {
    std::fprintf(stderr, "unknown backend '%s'\n", backend_name.c_str());
    return 2;
  }
  using jsort::sched::AdmissionPolicy;
  if (policy_name == "sjf") {
    cfg.scheduler.policy = AdmissionPolicy::kSjf;
  } else if (policy_name == "adaptive") {
    cfg.scheduler.policy = AdmissionPolicy::kAdaptiveWidth;
  } else if (policy_name != "fifo") {
    std::fprintf(stderr, "unknown policy '%s'\n", policy_name.c_str());
    return 2;
  }
  if (alloc_name == "buddy") {
    cfg.scheduler.allocation =
        jsort::sched::RangeAllocator::Policy::kBuddy;
  } else if (alloc_name != "first-fit") {
    std::fprintf(stderr, "unknown allocator '%s'\n", alloc_name.c_str());
    return 2;
  }
  cfg.verify = true;

  jsort::sched::JobStreamParams params;
  params.jobs = jobs;
  params.mean_interarrival = 120.0;
  params.max_width = std::max(1, p / 4);
  const auto stream = jsort::sched::MakeJobStream(p, params, seed);

  std::printf("sort_service: p=%d jobs=%d backend=%s policy=%s alloc=%s "
              "seed=%llu\n",
              p, jobs, backend_name.c_str(), policy_name.c_str(),
              alloc_name.c_str(), static_cast<unsigned long long>(seed));

  jsort::sched::SortService service(p, stream, cfg);
  jsort::sched::ServiceStats stats;
  mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = p});
  rt.Run([&](mpisim::Comm& world) {
    auto mine = service.Run(world);
    if (world.Rank() == 0) stats = std::move(mine);
  });

  std::printf("\n  %-4s %-11s %-12s %5s %9s %9s %9s %10s %10s %3s\n", "job",
              "algo", "input", "ranks", "arrival", "wait", "split",
              "sort", "latency", "ok");
  bool all_ok = true;
  for (const auto& r : stats.jobs) {
    all_ok = all_ok && r.ok;
    std::printf("  %-4d %-11s %-12s %2d-%-2d %9.1f %9.1f %9.2f %10.1f "
                "%10.1f %3s\n",
                r.spec.id, jsort::sched::AlgorithmName(r.spec.algorithm),
                jsort::InputKindName(r.spec.input), r.first, r.last,
                r.spec.arrival_vtime, r.queue_wait, r.split_vtime,
                r.sort_vtime, r.latency, r.ok ? "yes" : "NO");
  }

  const auto m = jsort::sched::Summarize(stats);
  std::printf("\n  jobs completed  : %d/%d over %d waves\n",
              m.jobs - m.failed, m.jobs, stats.waves);
  std::printf("  makespan        : %.1f model units\n", m.makespan);
  std::printf("  throughput      : %.0f jobs/sec (model time)\n",
              m.jobs_per_sec);
  std::printf("  latency p50/p99 : %.1f / %.1f\n", m.p50_latency,
              m.p99_latency);
  std::printf("  split share     : %.6f%s\n", m.split_share,
              m.split_share <= 1e-9 ? "  (free splits)" : "");
  return all_ok ? 0 : 1;
} catch (const std::exception& e) {
  // E.g. buddy allocation needs a power-of-two rank count.
  std::fprintf(stderr, "sort_service: %s\n", e.what());
  return 2;
}
