// 1-D heat-diffusion stencil with communication/computation overlap --
// the bread-and-butter HPC pattern the nonblocking RBC operations enable
// on arbitrary sub-ranges.
//
// The domain is split across two independent RBC ranges (two "simulation
// instances" sharing one MPI communicator, created locally). In each
// timestep a rank posts nonblocking halo receives, sends its boundary
// cells, updates the interior while the halos are in flight (progressing
// the requests with rbc::Test), then finishes the boundary cells.
//
// Run:  ./examples/stencil_overlap [p] [cells_per_rank] [steps]
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "mpisim/mpisim.hpp"
#include "rbc/rbc.hpp"

namespace {

constexpr int kTagLeft = 1;   // halo travelling to the left neighbour
constexpr int kTagRight = 2;  // halo travelling to the right neighbour

void Simulate(const rbc::Comm& grid, int cells, int steps, int instance) {
  const int rank = grid.Rank();
  const int p = grid.Size();
  // Cells u[1..cells]; u[0] and u[cells+1] are halos.
  std::vector<double> u(static_cast<std::size_t>(cells) + 2, 0.0);
  std::vector<double> next = u;
  // Initial condition: a hot spot on the first rank of the instance.
  if (rank == 0) {
    for (int i = 1; i <= cells; ++i) u[static_cast<std::size_t>(i)] = 100.0;
  }

  for (int step = 0; step < steps; ++step) {
    rbc::Request recv_left, recv_right;
    bool left_done = rank == 0;
    bool right_done = rank == p - 1;
    if (!left_done) {
      rbc::Irecv(&u[0], 1, rbc::Datatype::kFloat64, rank - 1, kTagRight,
                 grid, &recv_left);
      rbc::Send(&u[1], 1, rbc::Datatype::kFloat64, rank - 1, kTagLeft, grid);
    }
    if (!right_done) {
      rbc::Irecv(&u[static_cast<std::size_t>(cells) + 1], 1,
                 rbc::Datatype::kFloat64, rank + 1, kTagLeft, grid,
                 &recv_right);
      rbc::Send(&u[static_cast<std::size_t>(cells)], 1,
                rbc::Datatype::kFloat64, rank + 1, kTagRight, grid);
    }

    // Interior update overlaps with the halo exchange.
    for (int i = 2; i < cells; ++i) {
      next[static_cast<std::size_t>(i)] =
          u[static_cast<std::size_t>(i)] +
          0.25 * (u[static_cast<std::size_t>(i) - 1] -
                  2.0 * u[static_cast<std::size_t>(i)] +
                  u[static_cast<std::size_t>(i) + 1]);
    }

    // Drain the halos, then update the boundary cells.
    while (!left_done || !right_done) {
      int flag = 0;
      if (!left_done) {
        rbc::Test(&recv_left, &flag, nullptr);
        if (flag) left_done = true;
      }
      flag = 0;
      if (!right_done) {
        rbc::Test(&recv_right, &flag, nullptr);
        if (flag) right_done = true;
      }
    }
    if (rank == 0) u[0] = u[1];  // insulated ends
    if (rank == p - 1) u[static_cast<std::size_t>(cells) + 1] =
        u[static_cast<std::size_t>(cells)];
    for (int i : {1, cells}) {
      next[static_cast<std::size_t>(i)] =
          u[static_cast<std::size_t>(i)] +
          0.25 * (u[static_cast<std::size_t>(i) - 1] -
                  2.0 * u[static_cast<std::size_t>(i)] +
                  u[static_cast<std::size_t>(i) + 1]);
    }
    u.swap(next);
  }

  // Total heat must be conserved (up to the insulated-boundary scheme).
  const double local = std::accumulate(u.begin() + 1, u.end() - 1, 0.0);
  double total = 0.0;
  rbc::Reduce(&local, &total, 1, rbc::Datatype::kFloat64,
              rbc::ReduceOp::kSum, 0, grid);
  if (rank == 0) {
    std::printf("  instance %d: total heat after simulation = %.3f "
                "(initial %.3f)\n",
                instance, total, 100.0 * cells);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int p = argc > 1 ? std::atoi(argv[1]) : 8;
  const int cells = argc > 2 ? std::atoi(argv[2]) : 64;
  const int steps = argc > 3 ? std::atoi(argv[3]) : 200;
  if (p < 2) {
    std::fprintf(stderr, "need at least 2 ranks\n");
    return 2;
  }
  std::printf("1-D stencil with halo overlap: p=%d cells/rank=%d steps=%d, "
              "two instances on locally split ranges\n",
              p, cells, steps);
  mpisim::Runtime::Exec(p, [&](mpisim::Comm& mpi_world) {
    rbc::Comm world, instance_range;
    rbc::Create_RBC_Comm(mpi_world, &world);
    // Two independent simulation instances over the two halves of the
    // machine, created locally (Figure 1 pattern).
    const int s = world.Size();
    const bool low = world.Rank() < s / 2;
    rbc::Split_RBC_Comm(world, low ? 0 : s / 2, low ? s / 2 - 1 : s - 1,
                        &instance_range);
    Simulate(instance_range, cells, steps, low ? 0 : 1);
  });
  return 0;
}
