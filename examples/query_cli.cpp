// Distributed query application: answers a k-th / top-k / percentile
// query over a generated workload on every split backend without sorting
// the data, reporting the answer and the model time each backend paid.
//
// Usage:
//   ./examples/query_cli [p] [n_per_rank] [input] [k] [q]
//     p          ranks (default 32)
//     n_per_rank elements per rank (default 4096)
//     input      uniform | gaussian | sorted-asc | sorted-desc |
//                all-equal | few-distinct | zipf | bucket-killer
//     k          order statistic / top-k size (default n_total / 2)
//     q          percentile in [0, 1] (default 0.99)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "mpisim/runtime.hpp"
#include "query/quantile.hpp"
#include "query/select.hpp"
#include "query/topk.hpp"
#include "sort/workload.hpp"

namespace {

jsort::InputKind ParseKind(const std::string& s) {
  using K = jsort::InputKind;
  for (K k : {K::kUniform, K::kGaussian, K::kSortedAsc, K::kSortedDesc,
              K::kAllEqual, K::kFewDistinct, K::kZipf, K::kBucketKiller}) {
    if (s == jsort::InputKindName(k)) return k;
  }
  std::fprintf(stderr, "unknown input kind '%s'\n", s.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  const int p = argc > 1 ? std::atoi(argv[1]) : 32;
  const std::int64_t quota = argc > 2 ? std::atoll(argv[2]) : 4096;
  const jsort::InputKind kind = ParseKind(argc > 3 ? argv[3] : "uniform");
  const std::int64_t n_total = quota * p;
  const std::int64_t k = argc > 4 ? std::atoll(argv[4]) : n_total / 2;
  const double q = argc > 5 ? std::atof(argv[5]) : 0.99;
  if (k < 1 || k > n_total) {
    std::fprintf(stderr, "k=%lld out of range [1, %lld]\n",
                 static_cast<long long>(k), static_cast<long long>(n_total));
    return 2;
  }

  std::printf("query_cli: p=%d n/p=%lld input=%s k=%lld q=%.4f\n", p,
              static_cast<long long>(quota), jsort::InputKindName(kind),
              static_cast<long long>(k), q);

  for (const jsort::Backend backend :
       {jsort::Backend::kRbc, jsort::Backend::kMpi, jsort::Backend::kIcomm}) {
    double kth = 0.0, top_last = 0.0, pctl = 0.0;
    std::int64_t bound = 0, rounds = 0;
    mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = p});
    rt.Run([&](mpisim::Comm& world) {
      auto tr = jsort::MakeTransport(backend, world);
      const auto local =
          jsort::GenerateInput(kind, world.Rank(), p, quota, 4242);

      jsort::query::SelectStats sstats;
      const jsort::query::SelectResult sel =
          jsort::query::DistributedSelect(*tr, local, k - 1, {}, &sstats);

      const std::vector<double> topk =
          jsort::query::DistributedTopK(*tr, local, k);

      const jsort::query::QuantileSummary summary =
          jsort::query::BuildQuantileSummary(*tr, local);

      if (world.Rank() == 0) {
        kth = sel.value;
        rounds = sstats.rounds;
        top_last = topk.empty() ? 0.0 : topk.back();
        pctl = summary.Query(q);
        bound = summary.RankErrorBound(q);
      }
    });
    std::printf("  backend=%-5s vtime=%10.1f units\n",
                jsort::BackendName(backend), rt.MaxVirtualTime());
    std::printf("    k-th value (k=%lld)   : %.6f  (%lld select rounds)\n",
                static_cast<long long>(k), kth,
                static_cast<long long>(rounds));
    std::printf("    top-k last element    : %.6f  (== k-th: %s)\n", top_last,
                top_last == kth ? "yes" : "NO");
    std::printf("    q=%.4f percentile    : %.6f  (rank error <= %lld)\n", q,
                pctl, static_cast<long long>(bound));
  }
  return 0;
}
