// Quickstart: the paper's Figure 1 example, extended with a short tour of
// the RBC API.
//
// Eight ranks split their world communicator into two halves *locally* --
// no communication, no synchronization -- and each half runs a nonblocking
// broadcast that is progressed with rbc::Test while the rank does other
// work. Afterwards the halves compute a prefix sum and gather a summary
// at their local roots.
//
// Run:  ./examples/quickstart
#include <cstdio>
#include <vector>

#include "mpisim/mpisim.hpp"
#include "rbc/rbc.hpp"

namespace {

void RankMain(mpisim::Comm& mpi_world) {
  // --- Figure 1 of the paper -------------------------------------------
  rbc::Comm world, range;
  rbc::Create_RBC_Comm(mpi_world, &world);

  int r = 0, s = 0;
  rbc::Comm_rank(world, &r);
  rbc::Comm_size(world, &s);

  int f, l;
  if (r < s / 2) {
    f = 0;
    l = s / 2 - 1;
  } else {
    f = s / 2;
    l = s - 1;
  }
  // Local operation. No synchronization.
  rbc::Split_RBC_Comm(world, f, l, &range);

  int e = range.Rank() == 0 ? 1000 + f : 0;
  rbc::Request req;
  int flag = 0;
  rbc::Ibcast(&e, 1, rbc::Datatype::kInt32, 0, range, &req);
  long useful_work = 0;
  while (!flag) {
    ++useful_work;  // do something else while the broadcast progresses
    rbc::Test(&req, &flag, nullptr);
  }
  std::printf("[rank %d] half [%d..%d]: received broadcast %d after %ld "
              "iterations of other work\n",
              r, f, l, e, useful_work);

  // --- Prefix sum and gather within the half ---------------------------
  const std::int64_t mine = r + 1;
  std::int64_t prefix = 0;
  rbc::Scan(&mine, &prefix, 1, rbc::Datatype::kInt64, rbc::ReduceOp::kSum,
            range);
  std::vector<std::int64_t> all(static_cast<std::size_t>(range.Size()));
  rbc::Gather(&prefix, 1, rbc::Datatype::kInt64, all.data(), 0, range);
  if (range.Rank() == 0) {
    std::printf("[rank %d] prefix sums of half [%d..%d]:", r, f, l);
    for (auto v : all) std::printf(" %lld", static_cast<long long>(v));
    std::printf("\n");
  }

  // --- Point-to-point with a wildcard probe ----------------------------
  if (range.Size() >= 2) {
    if (range.Rank() == range.Size() - 1) {
      const double payload = 3.14 + f;
      rbc::Send(&payload, 1, rbc::Datatype::kFloat64, 0, /*tag=*/7, range);
    } else if (range.Rank() == 0) {
      rbc::Status st;
      rbc::Probe(rbc::kAnySource, 7, range, &st);
      double got = 0.0;
      rbc::Recv(&got, 1, rbc::Datatype::kFloat64, st.source, 7, range);
      std::printf("[rank %d] probed a %d-byte message from range rank %d: "
                  "%.2f\n",
                  r, static_cast<int>(st.bytes), st.source, got);
    }
  }
}

}  // namespace

int main() {
  std::printf("RBC quickstart on 8 simulated ranks\n");
  mpisim::Runtime::Exec(8, RankMain);
  std::printf("done.\n");
  return 0;
}
