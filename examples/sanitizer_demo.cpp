// Demonstrates (and lets CI smoke-test) the mpisim debug tooling: the
// collective-correctness sanitizer and the deadlock forensics dump.
//
// Modes:
//   ./examples/sanitizer_demo clean       -- consistent collectives; exit 0
//   ./examples/sanitizer_demo wrong-root  -- rank 1 broadcasts from the
//       wrong root; under the sanitizer this exits 1 with a
//       CollectiveMismatchError diagnostic naming both ranks and their
//       divergent sequence numbers (it must NOT run into the deadlock
//       timeout).
//   ./examples/sanitizer_demo deadlock    -- a mutual-receive cycle; the
//       proactive detector dumps the per-rank wait graph and the demo
//       exits 3.
//   ./examples/sanitizer_demo hier-leader -- rank 2 derives a divergent
//       machine view (every rank its own node) before a hierarchical
//       broadcast, so its elected leader set disagrees with everyone
//       else's. Under the sanitizer this exits 1 with a "different
//       elected leader sets" diagnostic at collective entry; without the
//       sanitizer the leader phase would deadlock instead (exit 3).
//
// The sanitizer is opt-in: set MPISIM_SANITIZE=1 (the CI job does), or
// flip RuntimeConfig::sanitize_collectives in code.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "mpisim/mpisim.hpp"
#include "topo/hier_collectives.hpp"
#include "topo/topology.hpp"

namespace {

int RunMode(const char* mode) {
  mpisim::RuntimeConfig opts;
  opts.num_ranks = 4;
  // Keep a stuck demo short; MPISIM_DEADLOCK_TIMEOUT_MS still overrides.
  opts.deadlock_timeout = std::chrono::milliseconds(5000);
  if (std::strcmp(mode, "hier-leader") == 0) {
    opts.num_ranks = 8;
    opts.topology = topo::Topology::Uniform(8, 4);
  }
  mpisim::Runtime rt(opts);

  try {
    if (std::strcmp(mode, "hier-leader") == 0) {
      rt.Run([](mpisim::Comm& world) {
        rbc::Comm comm;
        rbc::Create_RBC_Comm(world, &comm);
        double x = world.Rank() == 0 ? 3.14 : 0.0;
        if (world.Rank() == 2) {
          // Divergent machine view: every rank believed to be its own
          // node, so rank 2 elects all 8 ranks as leaders.
          std::vector<int> own_node(8);
          for (int r = 0; r < 8; ++r) own_node[r] = r;
          const topo::VnodeMap diverged = topo::VnodesOf(own_node);
          topo::HierBcast(&x, 1, rbc::Datatype::kFloat64, 0, comm,
                          &diverged);
        } else {
          topo::HierBcast(&x, 1, rbc::Datatype::kFloat64, 0, comm);
        }
      });
    } else if (std::strcmp(mode, "deadlock") == 0) {
      rt.Run([](mpisim::Comm& world) {
        // Every rank waits for its left neighbor; nobody ever sends.
        double x = 0.0;
        const int left = (world.Rank() + world.Size() - 1) % world.Size();
        mpisim::Recv(&x, 1, mpisim::Datatype::kFloat64, left, 11, world);
      });
    } else {
      const bool wrong_root = std::strcmp(mode, "wrong-root") == 0;
      rt.Run([wrong_root](mpisim::Comm& world) {
        mpisim::Barrier(world);
        double x = world.Rank() == 0 ? 3.14 : 0.0;
        const int root = (wrong_root && world.Rank() == 1) ? 1 : 0;
        mpisim::Bcast(&x, 1, mpisim::Datatype::kFloat64, root, world);
        mpisim::Barrier(world);
      });
    }
  } catch (const mpisim::CollectiveMismatchError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  } catch (const mpisim::DeadlockError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 3;
  }
  std::printf("sanitizer_demo: %s mode completed cleanly (sanitizer %s)\n",
              mode, rt.options().sanitize_collectives ? "on" : "off");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* mode = argc > 1 ? argv[1] : "clean";
  if (std::strcmp(mode, "clean") != 0 && std::strcmp(mode, "wrong-root") != 0 &&
      std::strcmp(mode, "deadlock") != 0 &&
      std::strcmp(mode, "hier-leader") != 0) {
    std::fprintf(
        stderr,
        "usage: sanitizer_demo [clean|wrong-root|deadlock|hier-leader]\n");
    return 2;
  }
  return RunMode(mode);
}
