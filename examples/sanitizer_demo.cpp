// Demonstrates (and lets CI smoke-test) the mpisim debug tooling: the
// collective-correctness sanitizer and the deadlock forensics dump.
//
// Modes:
//   ./examples/sanitizer_demo clean       -- consistent collectives; exit 0
//   ./examples/sanitizer_demo wrong-root  -- rank 1 broadcasts from the
//       wrong root; under the sanitizer this exits 1 with a
//       CollectiveMismatchError diagnostic naming both ranks and their
//       divergent sequence numbers (it must NOT run into the deadlock
//       timeout).
//   ./examples/sanitizer_demo deadlock    -- a mutual-receive cycle; the
//       proactive detector dumps the per-rank wait graph and the demo
//       exits 3.
//
// The sanitizer is opt-in: set MPISIM_SANITIZE=1 (the CI job does), or
// flip RuntimeConfig::sanitize_collectives in code.
#include <chrono>
#include <cstdio>
#include <cstring>

#include "mpisim/mpisim.hpp"

namespace {

int RunMode(const char* mode) {
  mpisim::RuntimeConfig opts;
  opts.num_ranks = 4;
  // Keep a stuck demo short; MPISIM_DEADLOCK_TIMEOUT_MS still overrides.
  opts.deadlock_timeout = std::chrono::milliseconds(5000);
  mpisim::Runtime rt(opts);

  try {
    if (std::strcmp(mode, "deadlock") == 0) {
      rt.Run([](mpisim::Comm& world) {
        // Every rank waits for its left neighbor; nobody ever sends.
        double x = 0.0;
        const int left = (world.Rank() + world.Size() - 1) % world.Size();
        mpisim::Recv(&x, 1, mpisim::Datatype::kFloat64, left, 11, world);
      });
    } else {
      const bool wrong_root = std::strcmp(mode, "wrong-root") == 0;
      rt.Run([wrong_root](mpisim::Comm& world) {
        mpisim::Barrier(world);
        double x = world.Rank() == 0 ? 3.14 : 0.0;
        const int root = (wrong_root && world.Rank() == 1) ? 1 : 0;
        mpisim::Bcast(&x, 1, mpisim::Datatype::kFloat64, root, world);
        mpisim::Barrier(world);
      });
    }
  } catch (const mpisim::CollectiveMismatchError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  } catch (const mpisim::DeadlockError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 3;
  }
  std::printf("sanitizer_demo: %s mode completed cleanly (sanitizer %s)\n",
              mode, rt.options().sanitize_collectives ? "on" : "off");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* mode = argc > 1 ? argv[1] : "clean";
  if (std::strcmp(mode, "clean") != 0 && std::strcmp(mode, "wrong-root") != 0 &&
      std::strcmp(mode, "deadlock") != 0) {
    std::fprintf(stderr,
                 "usage: sanitizer_demo [clean|wrong-root|deadlock]\n");
    return 2;
  }
  return RunMode(mode);
}
