// rbc::SparseAlltoallv / IsparseAlltoallv: sparse destination sets, empty
// senders, all-to-one skew, self blocks, source ordering, back-to-back
// operations on one tag (the second-barrier fence), sub-ranges, and the
// message budget (no dense counts round).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "testutil.hpp"

namespace {

using rbc::Datatype;
using rbc::SparseRecvMessage;
using rbc::SparseSendBlock;
using testutil::RunRbc;

/// Payload rank i sends to rank j in round `r`.
std::vector<double> PayloadOf(int i, int j, int r) {
  return {i * 100.0 + j + r * 1.0e4, i * 100.0 + j + r * 1.0e4 + 0.5};
}

std::vector<double> AsDoubles(const std::vector<std::byte>& bytes) {
  std::vector<double> v(bytes.size() / sizeof(double));
  std::memcpy(v.data(), bytes.data(), v.size() * sizeof(double));
  return v;
}

TEST(RbcSparse, NeighbourRotationDeliversAndOrdersBySource) {
  constexpr int kP = 8;
  RunRbc(kP, [](rbc::Comm& comm) {
    const int me = comm.Rank();
    // Rank i sends to i+1 and i+2 (mod p): every rank receives from two
    // known sources, but the collective must discover them by probing.
    std::vector<std::vector<double>> payloads;
    std::vector<SparseSendBlock> sends;
    for (int d : {(me + 1) % kP, (me + 2) % kP}) {
      payloads.push_back(PayloadOf(me, d, 0));
      sends.push_back(SparseSendBlock{
          d, payloads.back().data(),
          static_cast<int>(payloads.back().size())});
    }
    std::vector<SparseRecvMessage> got;
    rbc::SparseAlltoallv(sends, Datatype::kFloat64, &got, comm, 5);
    ASSERT_EQ(got.size(), 2u);
    const int s0 = (me + kP - 2) % kP, s1 = (me + kP - 1) % kP;
    const int lo = std::min(s0, s1), hi = std::max(s0, s1);
    EXPECT_EQ(got[0].source, lo);
    EXPECT_EQ(got[1].source, hi);
    EXPECT_EQ(AsDoubles(got[0].bytes), PayloadOf(lo, me, 0));
    EXPECT_EQ(AsDoubles(got[1].bytes), PayloadOf(hi, me, 0));
  });
}

TEST(RbcSparse, AllToOneWithEmptySendersTerminates) {
  constexpr int kP = 9;
  RunRbc(kP, [](rbc::Comm& comm) {
    const int me = comm.Rank();
    // Odd ranks send to rank 0; even ranks (and 0 itself) send nothing.
    std::vector<double> payload = PayloadOf(me, 0, 0);
    std::vector<SparseSendBlock> sends;
    if (me % 2 == 1) {
      sends.push_back(SparseSendBlock{
          0, payload.data(), static_cast<int>(payload.size())});
    }
    std::vector<SparseRecvMessage> got;
    rbc::SparseAlltoallv(sends, Datatype::kFloat64, &got, comm, 5);
    if (me == 0) {
      ASSERT_EQ(got.size(), 4u);
      for (std::size_t i = 0; i < got.size(); ++i) {
        const int src = 2 * static_cast<int>(i) + 1;
        EXPECT_EQ(got[i].source, src);
        EXPECT_EQ(AsDoubles(got[i].bytes), PayloadOf(src, 0, 0));
      }
    } else {
      EXPECT_TRUE(got.empty());
    }
  });
}

TEST(RbcSparse, SelfBlockDeliversLocally) {
  RunRbc(3, [](rbc::Comm& comm) {
    const int me = comm.Rank();
    std::vector<double> payload = PayloadOf(me, me, 0);
    std::vector<SparseSendBlock> sends{SparseSendBlock{
        me, payload.data(), static_cast<int>(payload.size())}};
    std::vector<SparseRecvMessage> got;
    rbc::SparseAlltoallv(sends, Datatype::kFloat64, &got, comm, 5);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].source, me);
    EXPECT_EQ(AsDoubles(got[0].bytes), payload);
  });
}

TEST(RbcSparse, BackToBackOnOneTagDoesNotLeak) {
  // The second barrier fences round r from round r+1: a fast rank's
  // round-1 sends must never be drained into a slow rank's round-0
  // result, even on the identical tag.
  constexpr int kP = 6;
  RunRbc(kP, [](rbc::Comm& comm) {
    const int me = comm.Rank();
    for (int round = 0; round < 3; ++round) {
      const int dest = (me + 1 + round) % kP;
      const int src = (me + kP - 1 - round) % kP;
      std::vector<double> payload = PayloadOf(me, dest, round);
      std::vector<SparseSendBlock> sends{SparseSendBlock{
          dest, payload.data(), static_cast<int>(payload.size())}};
      std::vector<SparseRecvMessage> got;
      rbc::SparseAlltoallv(sends, Datatype::kFloat64, &got, comm, 5);
      ASSERT_EQ(got.size(), 1u) << "round " << round;
      EXPECT_EQ(got[0].source, src);
      EXPECT_EQ(AsDoubles(got[0].bytes), PayloadOf(src, me, round));
    }
  });
}

TEST(RbcSparse, BackToBackSegmentedOnOneTagOrdersTrailingChunks) {
  // Regression: the two-barrier fence must order *trailing payload
  // chunks* across back-to-back segmented exchanges on one tag, not just
  // first chunks -- a fast rank's round-r+1 chunk sequence must never be
  // stitched into a slow rank's round-r payload. Payloads of 24 doubles
  // under a 64-byte segment limit ship as 4 chunks each (56 payload bytes
  // per chunk), so every round has trailing traffic to steal.
  constexpr int kP = 6;
  constexpr int kCount = 24;
  constexpr std::int64_t kSeg = 64;
  RunRbc(kP, [](rbc::Comm& comm) {
    const int me = comm.Rank();
    for (int round = 0; round < 3; ++round) {
      const int dest = (me + 1 + round) % kP;
      const int src = (me + kP - 1 - round) % kP;
      std::vector<double> payload(kCount);
      for (int i = 0; i < kCount; ++i) {
        payload[static_cast<std::size_t>(i)] =
            me * 1000.0 + round * 100.0 + i;
      }
      std::vector<SparseSendBlock> sends{
          SparseSendBlock{dest, payload.data(), kCount}};
      std::vector<SparseRecvMessage> got;
      rbc::SparseAlltoallv(sends, Datatype::kFloat64, &got, comm, 5, kSeg);
      ASSERT_EQ(got.size(), 1u) << "round " << round;
      EXPECT_EQ(got[0].source, src);
      std::vector<double> expect(kCount);
      for (int i = 0; i < kCount; ++i) {
        expect[static_cast<std::size_t>(i)] =
            src * 1000.0 + round * 100.0 + i;
      }
      EXPECT_EQ(AsDoubles(got[0].bytes), expect) << "round " << round;
    }
  });
}

TEST(RbcSparse, ChunkedPayloadBoundsMessageSizeAndCount) {
  // A skewed all-to-one payload under a segment limit: every wire message
  // stays within the limit and the sender pays exactly SparseChunksOf
  // payload messages (plus barrier tokens).
  constexpr int kP = 5;
  constexpr int kCount = 100;  // 800 payload bytes
  constexpr std::int64_t kSeg = 128;
  RunRbc(kP, [](rbc::Comm& comm) {
    const int me = comm.Rank();
    std::vector<double> payload(kCount, me * 1.0);
    std::vector<SparseSendBlock> sends;
    if (me != 0) {
      sends.push_back(SparseSendBlock{0, payload.data(), kCount});
    }
    std::vector<SparseRecvMessage> got;
    mpisim::Ctx().stats.max_message_bytes = 0;
    const std::uint64_t before = mpisim::Ctx().stats.messages_sent;
    rbc::SparseAlltoallv(sends, Datatype::kFloat64, &got, comm, 5, kSeg);
    const std::uint64_t sent = mpisim::Ctx().stats.messages_sent - before;
    EXPECT_LE(mpisim::Ctx().stats.max_message_bytes,
              static_cast<std::uint64_t>(kSeg));
    const auto chunks = static_cast<std::uint64_t>(
        mpisim::SparseChunksOf(kCount * 8, kSeg));
    if (me != 0) {
      EXPECT_GE(sent, chunks);  // payload chunks + barrier tokens
      EXPECT_LT(sent, chunks + static_cast<std::uint64_t>(kP));
    }
    if (me == 0) {
      ASSERT_EQ(got.size(), static_cast<std::size_t>(kP - 1));
      for (int s = 1; s < kP; ++s) {
        EXPECT_EQ(got[static_cast<std::size_t>(s) - 1].source, s);
        EXPECT_EQ(AsDoubles(got[static_cast<std::size_t>(s) - 1].bytes),
                  std::vector<double>(kCount, s * 1.0));
      }
    }
  });
}

TEST(RbcSparse, SubRangeIgnoresNonMembers) {
  constexpr int kP = 7;
  RunRbc(kP, [](rbc::Comm& world) {
    // Ranks 2..5 run a sparse exchange among themselves.
    rbc::Comm sub;
    rbc::Split_RBC_Comm(world, 2, 5, &sub);
    if (sub.Rank() < 0) return;
    const int me = sub.Rank();
    const int p = sub.Size();
    const int dest = (me + 1) % p;
    std::vector<double> payload = PayloadOf(me, dest, 0);
    std::vector<SparseSendBlock> sends{SparseSendBlock{
        dest, payload.data(), static_cast<int>(payload.size())}};
    std::vector<SparseRecvMessage> got;
    rbc::SparseAlltoallv(sends, Datatype::kFloat64, &got, sub, 5);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].source, (me + p - 1) % p);
  });
}

TEST(RbcSparse, NonblockingFormCompletesViaWait) {
  constexpr int kP = 5;
  RunRbc(kP, [](rbc::Comm& comm) {
    const int me = comm.Rank();
    const int dest = (me + 2) % kP;
    std::vector<double> payload = PayloadOf(me, dest, 0);
    std::vector<SparseSendBlock> sends{SparseSendBlock{
        dest, payload.data(), static_cast<int>(payload.size())}};
    std::vector<SparseRecvMessage> got;
    rbc::Request req;
    rbc::IsparseAlltoallv(sends, Datatype::kFloat64, &got, comm, &req, 5);
    rbc::Wait(&req);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].source, (me + kP - 2) % kP);
    EXPECT_EQ(AsDoubles(got[0].bytes), PayloadOf(got[0].source, me, 0));
  });
}

TEST(RbcSparse, SingleRankSelfOnly) {
  RunRbc(1, [](rbc::Comm& comm) {
    std::vector<double> payload{1.0, 2.0};
    std::vector<SparseSendBlock> sends{SparseSendBlock{0, payload.data(), 2}};
    std::vector<SparseRecvMessage> got;
    rbc::SparseAlltoallv(sends, Datatype::kFloat64, &got, comm, 5);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(AsDoubles(got[0].bytes), payload);
  });
}

TEST(RbcSparse, MessageBudgetHasNoDenseCountsRound) {
  // Sparse pattern on p ranks: each rank sends one payload message. The
  // per-rank send budget must be 1 payload + O(log p) barrier tokens --
  // far below the p-1 messages a dense counts round alone would cost.
  constexpr int kP = 16;
  RunRbc(kP, [](rbc::Comm& comm) {
    const int me = comm.Rank();
    const int dest = (me + 1) % kP;
    std::vector<double> payload = PayloadOf(me, dest, 0);
    std::vector<SparseSendBlock> sends{SparseSendBlock{
        dest, payload.data(), static_cast<int>(payload.size())}};
    std::vector<SparseRecvMessage> got;
    const std::uint64_t before = mpisim::Ctx().stats.messages_sent;
    rbc::SparseAlltoallv(sends, Datatype::kFloat64, &got, comm, 5);
    const std::uint64_t sent = mpisim::Ctx().stats.messages_sent - before;
    // 1 payload + two binomial-tree barriers (a rank sends at most
    // ~log2 p tokens per traversal, and only the root hits that bound).
    EXPECT_LT(sent, static_cast<std::uint64_t>(kP - 1));
  });
}

}  // namespace
