// rbc::SparseAlltoallv / IsparseAlltoallv: sparse destination sets, empty
// senders, all-to-one skew, self blocks, source ordering, back-to-back
// operations on one tag (the second-barrier fence), sub-ranges, and the
// message budget (no dense counts round).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "testutil.hpp"

namespace {

using rbc::Datatype;
using rbc::SparseRecvMessage;
using rbc::SparseSendBlock;
using testutil::RunRbc;

/// Payload rank i sends to rank j in round `r`.
std::vector<double> PayloadOf(int i, int j, int r) {
  return {i * 100.0 + j + r * 1.0e4, i * 100.0 + j + r * 1.0e4 + 0.5};
}

std::vector<double> AsDoubles(const std::vector<std::byte>& bytes) {
  std::vector<double> v(bytes.size() / sizeof(double));
  std::memcpy(v.data(), bytes.data(), v.size() * sizeof(double));
  return v;
}

TEST(RbcSparse, NeighbourRotationDeliversAndOrdersBySource) {
  constexpr int kP = 8;
  RunRbc(kP, [](rbc::Comm& comm) {
    const int me = comm.Rank();
    // Rank i sends to i+1 and i+2 (mod p): every rank receives from two
    // known sources, but the collective must discover them by probing.
    std::vector<std::vector<double>> payloads;
    std::vector<SparseSendBlock> sends;
    for (int d : {(me + 1) % kP, (me + 2) % kP}) {
      payloads.push_back(PayloadOf(me, d, 0));
      sends.push_back(SparseSendBlock{
          d, payloads.back().data(),
          static_cast<int>(payloads.back().size())});
    }
    std::vector<SparseRecvMessage> got;
    rbc::SparseAlltoallv(sends, Datatype::kFloat64, &got, comm, 5);
    ASSERT_EQ(got.size(), 2u);
    const int s0 = (me + kP - 2) % kP, s1 = (me + kP - 1) % kP;
    const int lo = std::min(s0, s1), hi = std::max(s0, s1);
    EXPECT_EQ(got[0].source, lo);
    EXPECT_EQ(got[1].source, hi);
    EXPECT_EQ(AsDoubles(got[0].bytes), PayloadOf(lo, me, 0));
    EXPECT_EQ(AsDoubles(got[1].bytes), PayloadOf(hi, me, 0));
  });
}

TEST(RbcSparse, AllToOneWithEmptySendersTerminates) {
  constexpr int kP = 9;
  RunRbc(kP, [](rbc::Comm& comm) {
    const int me = comm.Rank();
    // Odd ranks send to rank 0; even ranks (and 0 itself) send nothing.
    std::vector<double> payload = PayloadOf(me, 0, 0);
    std::vector<SparseSendBlock> sends;
    if (me % 2 == 1) {
      sends.push_back(SparseSendBlock{
          0, payload.data(), static_cast<int>(payload.size())});
    }
    std::vector<SparseRecvMessage> got;
    rbc::SparseAlltoallv(sends, Datatype::kFloat64, &got, comm, 5);
    if (me == 0) {
      ASSERT_EQ(got.size(), 4u);
      for (std::size_t i = 0; i < got.size(); ++i) {
        const int src = 2 * static_cast<int>(i) + 1;
        EXPECT_EQ(got[i].source, src);
        EXPECT_EQ(AsDoubles(got[i].bytes), PayloadOf(src, 0, 0));
      }
    } else {
      EXPECT_TRUE(got.empty());
    }
  });
}

TEST(RbcSparse, SelfBlockDeliversLocally) {
  RunRbc(3, [](rbc::Comm& comm) {
    const int me = comm.Rank();
    std::vector<double> payload = PayloadOf(me, me, 0);
    std::vector<SparseSendBlock> sends{SparseSendBlock{
        me, payload.data(), static_cast<int>(payload.size())}};
    std::vector<SparseRecvMessage> got;
    rbc::SparseAlltoallv(sends, Datatype::kFloat64, &got, comm, 5);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].source, me);
    EXPECT_EQ(AsDoubles(got[0].bytes), payload);
  });
}

TEST(RbcSparse, BackToBackOnOneTagDoesNotLeak) {
  // The second barrier fences round r from round r+1: a fast rank's
  // round-1 sends must never be drained into a slow rank's round-0
  // result, even on the identical tag.
  constexpr int kP = 6;
  RunRbc(kP, [](rbc::Comm& comm) {
    const int me = comm.Rank();
    for (int round = 0; round < 3; ++round) {
      const int dest = (me + 1 + round) % kP;
      const int src = (me + kP - 1 - round) % kP;
      std::vector<double> payload = PayloadOf(me, dest, round);
      std::vector<SparseSendBlock> sends{SparseSendBlock{
          dest, payload.data(), static_cast<int>(payload.size())}};
      std::vector<SparseRecvMessage> got;
      rbc::SparseAlltoallv(sends, Datatype::kFloat64, &got, comm, 5);
      ASSERT_EQ(got.size(), 1u) << "round " << round;
      EXPECT_EQ(got[0].source, src);
      EXPECT_EQ(AsDoubles(got[0].bytes), PayloadOf(src, me, round));
    }
  });
}

TEST(RbcSparse, SubRangeIgnoresNonMembers) {
  constexpr int kP = 7;
  RunRbc(kP, [](rbc::Comm& world) {
    // Ranks 2..5 run a sparse exchange among themselves.
    rbc::Comm sub;
    rbc::Split_RBC_Comm(world, 2, 5, &sub);
    if (sub.Rank() < 0) return;
    const int me = sub.Rank();
    const int p = sub.Size();
    const int dest = (me + 1) % p;
    std::vector<double> payload = PayloadOf(me, dest, 0);
    std::vector<SparseSendBlock> sends{SparseSendBlock{
        dest, payload.data(), static_cast<int>(payload.size())}};
    std::vector<SparseRecvMessage> got;
    rbc::SparseAlltoallv(sends, Datatype::kFloat64, &got, sub, 5);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].source, (me + p - 1) % p);
  });
}

TEST(RbcSparse, NonblockingFormCompletesViaWait) {
  constexpr int kP = 5;
  RunRbc(kP, [](rbc::Comm& comm) {
    const int me = comm.Rank();
    const int dest = (me + 2) % kP;
    std::vector<double> payload = PayloadOf(me, dest, 0);
    std::vector<SparseSendBlock> sends{SparseSendBlock{
        dest, payload.data(), static_cast<int>(payload.size())}};
    std::vector<SparseRecvMessage> got;
    rbc::Request req;
    rbc::IsparseAlltoallv(sends, Datatype::kFloat64, &got, comm, &req, 5);
    rbc::Wait(&req);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].source, (me + kP - 2) % kP);
    EXPECT_EQ(AsDoubles(got[0].bytes), PayloadOf(got[0].source, me, 0));
  });
}

TEST(RbcSparse, SingleRankSelfOnly) {
  RunRbc(1, [](rbc::Comm& comm) {
    std::vector<double> payload{1.0, 2.0};
    std::vector<SparseSendBlock> sends{SparseSendBlock{0, payload.data(), 2}};
    std::vector<SparseRecvMessage> got;
    rbc::SparseAlltoallv(sends, Datatype::kFloat64, &got, comm, 5);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(AsDoubles(got[0].bytes), payload);
  });
}

TEST(RbcSparse, MessageBudgetHasNoDenseCountsRound) {
  // Sparse pattern on p ranks: each rank sends one payload message. The
  // per-rank send budget must be 1 payload + O(log p) barrier tokens --
  // far below the p-1 messages a dense counts round alone would cost.
  constexpr int kP = 16;
  RunRbc(kP, [](rbc::Comm& comm) {
    const int me = comm.Rank();
    const int dest = (me + 1) % kP;
    std::vector<double> payload = PayloadOf(me, dest, 0);
    std::vector<SparseSendBlock> sends{SparseSendBlock{
        dest, payload.data(), static_cast<int>(payload.size())}};
    std::vector<SparseRecvMessage> got;
    const std::uint64_t before = mpisim::Ctx().stats.messages_sent;
    rbc::SparseAlltoallv(sends, Datatype::kFloat64, &got, comm, 5);
    const std::uint64_t sent = mpisim::Ctx().stats.messages_sent - before;
    // 1 payload + two binomial-tree barriers (a rank sends at most
    // ~log2 p tokens per traversal, and only the root hits that bound).
    EXPECT_LT(sent, static_cast<std::uint64_t>(kP - 1));
  });
}

}  // namespace
