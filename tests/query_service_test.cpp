// Query jobs inside the sort service: a mixed 90/10-style stream admits
// sorts and queries through one scheduler, every query answer survives
// its off-clock checker on every backend, answers equal the standalone
// kernels' answers, and query_fraction == 0 reproduces the pre-query
// job streams word for word.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "query/quantile.hpp"
#include "query/select.hpp"
#include "query/topk.hpp"
#include "sched/service.hpp"
#include "sort/workload.hpp"
#include "testutil.hpp"

namespace {

using jsort::Backend;
using jsort::InputKind;
using jsort::sched::JobKind;
using jsort::sched::JobKindName;
using jsort::sched::JobSpec;
using jsort::sched::JobStreamParams;
using jsort::sched::MakeJobStream;
using jsort::sched::ServiceConfig;
using jsort::sched::ServiceStats;
using jsort::sched::SortService;
using jsort::sched::SummarizeQueries;
using jsort::sched::SummarizeSorts;

constexpr int kRanks = 8;

JobStreamParams QueryMix(int jobs, double fraction) {
  JobStreamParams p;
  p.jobs = jobs;
  p.mean_interarrival = 300.0;
  p.min_width = 1;
  p.max_width = 4;
  p.min_n = 32;
  p.max_n = 512;
  p.query_fraction = fraction;
  return p;
}

ServiceStats RunService(int ranks, const std::vector<JobSpec>& jobs,
                        ServiceConfig cfg) {
  SortService service(ranks, jobs, std::move(cfg));
  ServiceStats out;
  testutil::RunRanks(ranks, [&](mpisim::Comm& world) {
    ServiceStats mine = service.Run(world);
    if (world.Rank() == 0) out = std::move(mine);
  });
  return out;
}

TEST(QueryService, ZeroFractionReproducesPreQueryStreams) {
  JobStreamParams with = QueryMix(24, 0.0);
  JobStreamParams without = QueryMix(24, 0.0);
  without.query_kinds.clear();  // irrelevant at fraction 0
  const auto a = MakeJobStream(kRanks, with, 77);
  const auto b = MakeJobStream(kRanks, without, 77);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, JobKind::kSort);
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].n_total, b[i].n_total);
    EXPECT_EQ(a[i].arrival_vtime, b[i].arrival_vtime);
  }
}

TEST(QueryService, StreamGeneratorEmitsValidQueries) {
  const auto jobs = MakeJobStream(kRanks, QueryMix(200, 0.5), 13);
  int queries = 0;
  for (const JobSpec& s : jobs) {
    switch (s.kind) {
      case JobKind::kSort:
        break;
      case JobKind::kSelect:
        ++queries;
        EXPECT_GE(s.k, 0);
        EXPECT_LT(s.k, s.n_total);
        break;
      case JobKind::kTopK:
        ++queries;
        EXPECT_GE(s.k, 1);
        EXPECT_LE(s.k, s.n_total);
        break;
      case JobKind::kQuantile:
        ++queries;
        EXPECT_GE(s.q, 0.0);
        EXPECT_LT(s.q, 1.0);
        break;
    }
  }
  // ~50% of 200; a gross departure means the draw logic broke.
  EXPECT_GT(queries, 60);
  EXPECT_LT(queries, 140);
}

class BackendSweep : public ::testing::TestWithParam<Backend> {};

INSTANTIATE_TEST_SUITE_P(Backends, BackendSweep,
                         ::testing::Values(Backend::kRbc, Backend::kMpi,
                                           Backend::kIcomm));

TEST_P(BackendSweep, MixedStreamVerifiesEveryKind) {
  auto jobs = MakeJobStream(kRanks, QueryMix(24, 0.5), 21);
  // Make sure all three kinds actually occur.
  jobs[0].kind = JobKind::kSelect;
  jobs[0].k = jobs[0].n_total / 2;
  jobs[1].kind = JobKind::kTopK;
  jobs[1].k = std::min<std::int64_t>(8, jobs[1].n_total);
  jobs[2].kind = JobKind::kQuantile;
  jobs[2].q = 0.99;

  ServiceConfig cfg;
  cfg.backend = GetParam();
  cfg.verify = true;
  const ServiceStats stats = RunService(kRanks, jobs, cfg);
  ASSERT_EQ(stats.jobs.size(), jobs.size());
  int queries = 0;
  for (const auto& r : stats.jobs) {
    EXPECT_TRUE(r.ok) << JobKindName(r.spec.kind) << " job " << r.spec.id
                      << " failed verification";
    if (r.spec.kind == JobKind::kSort) {
      EXPECT_EQ(r.elements, r.spec.n_total);
    } else {
      ++queries;
      // Queries return a payload no larger than the request, never the
      // whole input (that is the point).
      const std::int64_t expect_elements =
          r.spec.kind == JobKind::kTopK ? std::min(r.spec.k, r.spec.n_total)
                                        : 1;
      EXPECT_EQ(r.elements, expect_elements);
    }
    EXPECT_GE(r.start_vtime, r.spec.arrival_vtime);
    EXPECT_GT(r.completion_vtime, r.start_vtime);
  }
  ASSERT_GE(queries, 3);

  const auto qm = SummarizeQueries(stats);
  const auto sm = SummarizeSorts(stats);
  EXPECT_EQ(qm.jobs, queries);
  EXPECT_EQ(sm.jobs, static_cast<int>(jobs.size()) - queries);
  EXPECT_EQ(qm.failed, 0);
  EXPECT_EQ(sm.failed, 0);
  EXPECT_GE(qm.p99_latency, qm.p50_latency);
  EXPECT_DOUBLE_EQ(qm.makespan, stats.makespan);
}

TEST(QueryService, AnswersMatchStandaloneKernels) {
  // One job per query kind, each on the full machine, answers compared
  // against the standalone kernels over the same generated input.
  std::vector<JobSpec> jobs(3);
  for (int i = 0; i < 3; ++i) {
    jobs[i].id = i;
    jobs[i].input = InputKind::kZipf;
    jobs[i].n_total = 1000;
    jobs[i].width = kRanks;
    jobs[i].arrival_vtime = 100.0 * i;
    jobs[i].seed = 0x8888u + static_cast<std::uint64_t>(i);
  }
  jobs[0].kind = JobKind::kSelect;
  jobs[0].k = 700;
  jobs[1].kind = JobKind::kTopK;
  jobs[1].k = 12;
  jobs[2].kind = JobKind::kQuantile;
  jobs[2].q = 0.25;

  ServiceConfig cfg;
  cfg.backend = Backend::kRbc;
  cfg.verify = true;
  const ServiceStats stats = RunService(kRanks, jobs, cfg);

  // Standalone runs over identical per-rank slices.
  double expect_select = 0.0, expect_topk = 0.0, expect_quantile = 0.0;
  testutil::RunRanks(kRanks, [&](mpisim::Comm& world) {
    auto tr = jsort::MakeTransport(Backend::kRbc, world);
    for (int i = 0; i < 3; ++i) {
      const JobSpec& s = jobs[static_cast<std::size_t>(i)];
      const std::int64_t quota =
          s.n_total / kRanks + (world.Rank() < s.n_total % kRanks ? 1 : 0);
      const auto local =
          jsort::GenerateInput(s.input, world.Rank(), kRanks, quota, s.seed);
      if (s.kind == JobKind::kSelect) {
        jsort::query::SelectConfig qcfg;
        qcfg.seed = s.seed;
        const double v =
            jsort::query::DistributedSelect(*tr, local, s.k, qcfg).value;
        if (world.Rank() == 0) expect_select = v;
      } else if (s.kind == JobKind::kTopK) {
        jsort::query::TopKConfig qcfg;
        qcfg.seed = s.seed;
        const auto topk =
            jsort::query::DistributedTopK(*tr, local, s.k, qcfg);
        if (world.Rank() == 0) expect_topk = topk.back();
      } else {
        const auto summary =
            jsort::query::BuildQuantileSummary(*tr, local);
        if (world.Rank() == 0) expect_quantile = summary.Query(s.q);
      }
    }
  });

  EXPECT_EQ(stats.jobs[0].answer, expect_select);
  EXPECT_EQ(stats.jobs[1].answer, expect_topk);
  EXPECT_EQ(stats.jobs[2].answer, expect_quantile);
}

}  // namespace
