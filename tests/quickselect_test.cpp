// QuickselectKth: the local three-way selection kernel underneath the
// query subsystem. Property-swept against std::nth_element across edge
// ranks (k in {0, 1, n-1}), duplicate-heavy/Zipf and all-equal inputs,
// plus the split-boundary invariant the distributed kernels rely on.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "mpisim/error.hpp"
#include "sort/quickselect.hpp"
#include "sort/workload.hpp"

namespace {

using jsort::InputKind;
using jsort::KthSplit;
using jsort::QuickselectKth;

std::vector<double> Input(InputKind kind, std::size_t n, std::uint64_t seed) {
  return jsort::GenerateInput(kind, /*rank=*/0, /*p=*/1,
                              static_cast<std::int64_t>(n), seed);
}

/// Checks the full contract of one QuickselectKth call against a sorted
/// copy of the input: the value, the exact rank interval, and the
/// three-way layout of the partitioned data.
void CheckKth(std::vector<double> data, std::size_t k) {
  std::vector<double> sorted = data;
  std::sort(sorted.begin(), sorted.end());
  const KthSplit s = QuickselectKth(data, k);

  EXPECT_EQ(s.value, sorted[k]) << "k=" << k;
  const auto less = static_cast<std::size_t>(
      std::lower_bound(sorted.begin(), sorted.end(), s.value) -
      sorted.begin());
  const auto less_equal = static_cast<std::size_t>(
      std::upper_bound(sorted.begin(), sorted.end(), s.value) -
      sorted.begin());
  EXPECT_EQ(s.less, less);
  EXPECT_EQ(s.less_equal, less_equal);
  ASSERT_LE(s.less, k);
  ASSERT_LT(k, s.less_equal);

  // Layout invariant: strict prefix, equal run containing k, strict tail.
  for (std::size_t i = 0; i < s.less; ++i) {
    EXPECT_LT(data[i], s.value) << "i=" << i;
  }
  for (std::size_t i = s.less; i < s.less_equal; ++i) {
    EXPECT_EQ(data[i], s.value) << "i=" << i;
  }
  for (std::size_t i = s.less_equal; i < data.size(); ++i) {
    EXPECT_GT(data[i], s.value) << "i=" << i;
  }
  // The call must not change the multiset.
  std::sort(data.begin(), data.end());
  EXPECT_EQ(data, sorted);
}

TEST(QuickselectKth, EdgeRanksAcrossDistributions) {
  for (const InputKind kind :
       {InputKind::kUniform, InputKind::kZipf, InputKind::kFewDistinct,
        InputKind::kAllEqual, InputKind::kSortedAsc, InputKind::kSortedDesc}) {
    for (const std::size_t n : {std::size_t{1}, std::size_t{2},
                                std::size_t{17}, std::size_t{257}}) {
      const std::vector<double> base = Input(kind, n, 0xABCDu);
      for (const std::size_t k :
           {std::size_t{0}, std::size_t{1}, n - 1}) {
        if (k >= n) continue;
        CheckKth(base, k);
      }
    }
  }
}

TEST(QuickselectKth, RandomRankSweep) {
  std::mt19937_64 rng(99);
  for (int iter = 0; iter < 200; ++iter) {
    const auto kind = static_cast<InputKind>(rng() % 7);
    const std::size_t n = 1 + static_cast<std::size_t>(rng() % 300);
    const std::vector<double> base = Input(kind, n, rng());
    CheckKth(base, static_cast<std::size_t>(rng() % n));
  }
}

TEST(QuickselectKth, OutOfRangeRankThrows) {
  std::vector<double> data = Input(InputKind::kUniform, 8, 1);
  EXPECT_THROW(QuickselectKth(data, 8), mpisim::UsageError);
  EXPECT_THROW(QuickselectKth(data, 1000), mpisim::UsageError);
  std::vector<double> empty;
  EXPECT_THROW(QuickselectKth(empty, 0), mpisim::UsageError);
}

TEST(QuickselectSmallest, PrefixHoldsKSmallest) {
  std::mt19937_64 rng(7);
  for (int iter = 0; iter < 50; ++iter) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng() % 200);
    std::vector<double> data =
        Input(static_cast<InputKind>(rng() % 7), n, rng());
    std::vector<double> sorted = data;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t k = static_cast<std::size_t>(rng() % (n + 1));
    jsort::QuickselectSmallest(data, k);
    std::vector<double> prefix(data.begin(),
                               data.begin() + static_cast<std::ptrdiff_t>(k));
    std::sort(prefix.begin(), prefix.end());
    for (std::size_t i = 0; i < k; ++i) {
      EXPECT_EQ(prefix[i], sorted[i]) << "k=" << k << " i=" << i;
    }
  }
}

}  // namespace
