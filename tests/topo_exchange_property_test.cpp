// Property tests for the node-aware hierarchical exchange: randomized
// traffic matrices asserting byte-exact equivalence of the hierarchical
// delivery path (exchange::Mode::kHierarchical, the three-phase engine of
// topo/hier_exchange.hpp) with every flat path, across all three
// Transport backends, the segment-size sweep, and machine shapes
// including ragged node sizes, 1-rank nodes and the one-node degenerate
// case. Also pins the auto-routing contract: kAuto takes the hierarchical
// path exactly when the cost model is two-level AND the group spans more
// than one node, and topo::HierAlltoallv delivers bit-for-bit what
// rbc::Alltoallv delivers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <random>
#include <thread>
#include <tuple>
#include <vector>

#include "sort/exchange.hpp"
#include "sort/workload.hpp"
#include "testutil.hpp"
#include "topo/hier_collectives.hpp"
#include "topo/topology.hpp"

namespace {

using jsort::CapacityLayout;
using jsort::Transport;
using jsort::exchange::ExchangeStats;
using jsort::exchange::Mode;
using jsort::exchange::Outgoing;
using jsort::exchange::Segment;
using testutil::RunRanks;

enum class Backend { kRbc, kMpi, kIcomm };

std::shared_ptr<Transport> Make(Backend b, mpisim::Comm& world) {
  switch (b) {
    case Backend::kRbc: {
      rbc::Comm rw;
      rbc::Create_RBC_Comm(world, &rw);
      return jsort::MakeRbcTransport(rw);
    }
    case Backend::kMpi:
      return jsort::MakeMpiTransport(world);
    case Backend::kIcomm:
      return jsort::MakeIcommTransport(world);
  }
  return nullptr;
}

void WaitPoll(const jsort::Poll& p) {
  while (!p()) std::this_thread::yield();
}

/// The machine shapes under test, all covering 8 ranks: uniform nodes,
/// ragged sizes with a 1-rank node, and the one-node degenerate case
/// (where the engine must still work -- everything is intra).
std::vector<topo::Topology> Shapes8() {
  return {topo::Topology::Uniform(8, 4),
          topo::Topology::OfNodeSizes({3, 1, 4}),
          topo::Topology::OfNodeSizes({8})};
}

/// Runtime options: the shape installed and a two-level cost model, so
/// Mode::kAuto resolves hierarchically whenever the group spans nodes.
mpisim::Runtime::Options TwoLevelOpts(int p, const topo::Topology& shape) {
  mpisim::Runtime::Options o;
  o.num_ranks = p;
  o.topology = shape;
  o.cost.intra_alpha = o.cost.alpha;
  o.cost.intra_beta = o.cost.beta;
  o.cost.inter_alpha = 25.0 * o.cost.alpha;
  o.cost.inter_beta = 4.0 * o.cost.beta;
  return o;
}

constexpr std::int64_t kSegOneElem = 8;
constexpr std::int64_t kSegPrime = 61;
constexpr std::int64_t kSegHuge = std::int64_t{1} << 20;

class HierExchangeSweep
    : public ::testing::TestWithParam<std::tuple<Backend, std::int64_t>> {};

INSTANTIATE_TEST_SUITE_P(
    BackendsBySegment, HierExchangeSweep,
    ::testing::Combine(::testing::Values(Backend::kRbc, Backend::kMpi,
                                         Backend::kIcomm),
                       ::testing::Values(std::int64_t{0}, kSegOneElem,
                                         kSegPrime, kSegHuge)));

/// Randomized group-wise exchange: every rank derives the full cross-rank
/// entry matrix from the shared seed, so each can compute its exact
/// expected delivery and compare byte for byte across the flat paths and
/// the hierarchical engine.
void RandomizedGroupwiseHier(const std::shared_ptr<Transport>& tr,
                             std::uint64_t seed, std::int64_t seg_bytes) {
  const int p = tr->Size();
  const int me = tr->Rank();
  constexpr int kEntries = 4;
  std::mt19937_64 shared(seed);
  std::vector<std::vector<std::pair<int, std::int64_t>>> entries(
      static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    for (int e = 0; e < kEntries; ++e) {
      const int dest = static_cast<int>(shared() % p);
      const std::int64_t count =
          static_cast<std::int64_t>(shared() % 24);  // empties included
      entries[static_cast<std::size_t>(r)].emplace_back(dest, count);
    }
  }
  auto value = [](int r, int e, std::int64_t i) {
    return r * 10000.0 + e * 1000.0 + static_cast<double>(i);
  };
  std::vector<std::vector<double>> payloads;
  std::vector<Outgoing> out;
  for (int e = 0; e < kEntries; ++e) {
    const auto [dest, count] = entries[static_cast<std::size_t>(me)]
                                      [static_cast<std::size_t>(e)];
    std::vector<double> payload;
    for (std::int64_t i = 0; i < count; ++i) {
      payload.push_back(value(me, e, i));
    }
    payloads.push_back(std::move(payload));
    out.push_back(Outgoing{dest, payloads.back().data(), count});
  }
  ExchangeStats hs;
  const auto dense = jsort::exchange::ExchangeGroupwise(
      tr, out, 41, Mode::kAlltoallv, nullptr, seg_bytes);
  const auto sparse = jsort::exchange::ExchangeGroupwise(
      tr, out, 41, Mode::kSparse, nullptr, seg_bytes);
  const auto hier = jsort::exchange::ExchangeGroupwise(
      tr, out, 41, Mode::kHierarchical, &hs, seg_bytes);
  const auto aut = jsort::exchange::ExchangeGroupwise(
      tr, out, 41, Mode::kAuto, nullptr, seg_bytes);
  EXPECT_EQ(dense, sparse);
  EXPECT_EQ(dense, hier);
  EXPECT_EQ(dense, aut);
  std::vector<double> expect;
  for (int r = 0; r < p; ++r) {
    for (int e = 0; e < kEntries; ++e) {
      const auto [dest, count] = entries[static_cast<std::size_t>(r)]
                                        [static_cast<std::size_t>(e)];
      if (dest != me) continue;
      for (std::int64_t i = 0; i < count; ++i) {
        expect.push_back(value(r, e, i));
      }
    }
  }
  EXPECT_EQ(dense, expect) << "seg_bytes " << seg_bytes;
}

TEST_P(HierExchangeSweep, GroupwiseByteExactAcrossShapes) {
  const auto [b, seg] = GetParam();
  for (const topo::Topology& shape : Shapes8()) {
    for (std::uint64_t seed : {601ull, 602ull}) {
      RunRanks(TwoLevelOpts(8, shape),
               [&, b, seg](mpisim::Comm& world, mpisim::Runtime&) {
                 RandomizedGroupwiseHier(Make(b, world), seed, seg);
               });
    }
  }
}

/// Randomized bucket exchange: the hierarchical path must deliver the
/// exact source-ordered concatenation the dense path delivers -- with no
/// dense counts round (the engine's messages are self-describing).
void RandomizedBucketsHier(const std::shared_ptr<Transport>& tr,
                           std::uint64_t seed, std::int64_t seg_bytes) {
  const int p = tr->Size();
  const int me = tr->Rank();
  std::mt19937_64 shared(seed);
  std::vector<std::vector<std::int64_t>> sizes(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    for (int d = 0; d < p; ++d) {
      sizes[static_cast<std::size_t>(r)].push_back(
          static_cast<std::int64_t>(shared() % 40));
    }
  }
  auto value = [](int r, int d, std::int64_t i) {
    return r * 10000.0 + d * 100.0 + static_cast<double>(i);
  };
  std::vector<std::vector<double>> buckets(static_cast<std::size_t>(p));
  for (int d = 0; d < p; ++d) {
    for (std::int64_t i = 0;
         i < sizes[static_cast<std::size_t>(me)][static_cast<std::size_t>(d)];
         ++i) {
      buckets[static_cast<std::size_t>(d)].push_back(value(me, d, i));
    }
  }
  ExchangeStats ds, hs;
  const auto dense = jsort::exchange::ExchangeBuckets(
      *tr, buckets, 43, &ds, seg_bytes, Mode::kAlltoallv);
  const auto hier = jsort::exchange::ExchangeBuckets(
      *tr, buckets, 43, &hs, seg_bytes, Mode::kHierarchical);
  const auto aut = jsort::exchange::ExchangeBuckets(
      *tr, buckets, 43, nullptr, seg_bytes, Mode::kAuto);
  EXPECT_EQ(dense, hier);
  EXPECT_EQ(dense, aut);
  EXPECT_EQ(ds.elements_sent, hs.elements_sent);
  std::vector<double> expect;
  for (int r = 0; r < p; ++r) {
    for (std::int64_t i = 0;
         i < sizes[static_cast<std::size_t>(r)][static_cast<std::size_t>(me)];
         ++i) {
      expect.push_back(value(r, me, i));
    }
  }
  EXPECT_EQ(dense, expect) << "seg_bytes " << seg_bytes;
}

TEST_P(HierExchangeSweep, BucketsByteExactAcrossShapes) {
  const auto [b, seg] = GetParam();
  for (const topo::Topology& shape : Shapes8()) {
    for (std::uint64_t seed : {701ull, 702ull}) {
      RunRanks(TwoLevelOpts(8, shape),
               [&, b, seg](mpisim::Comm& world, mpisim::Runtime&) {
                 RandomizedBucketsHier(Make(b, world), seed, seg);
               });
    }
  }
}

/// Randomized slot-interval redistribution (the jquick shape) through
/// StartSegmentExchange: the hierarchical delivery must land exactly the
/// slots of this rank's capacity interval, region by region, like every
/// flat mode -- including skewed layouts where some ranks receive
/// nothing.
void RandomizedSegmentExchangeHier(const std::shared_ptr<Transport>& tr,
                                   std::uint64_t seed,
                                   std::int64_t seg_bytes, bool skewed) {
  const int p = tr->Size();
  const int me = tr->Rank();
  std::mt19937_64 shared(seed);
  const std::int64_t quota = 16 + static_cast<std::int64_t>(shared() % 25);
  CapacityLayout layout{.p = p, .quota = quota, .cap_first = quota,
                        .cap_last = quota};
  if (skewed && p > 1) {
    layout.cap_first = 1 + static_cast<std::int64_t>(shared() % quota);
    layout.cap_last = 1 + static_cast<std::int64_t>(shared() % quota);
  }
  const std::int64_t total = layout.Total();

  constexpr int kRegions = 3;
  std::vector<std::int64_t> region_cuts{0};
  for (int i = 1; i < kRegions; ++i) {
    region_cuts.push_back(static_cast<std::int64_t>(shared() % (total + 1)));
  }
  region_cuts.push_back(total);
  std::sort(region_cuts.begin(), region_cuts.end());
  std::vector<std::int64_t> run_cuts{0};
  for (int i = 1; i < p; ++i) {
    run_cuts.push_back(static_cast<std::int64_t>(shared() % (total + 1)));
  }
  run_cuts.push_back(total);
  std::sort(run_cuts.begin(), run_cuts.end());
  const std::int64_t run_begin = run_cuts[static_cast<std::size_t>(me)];
  const std::int64_t run_end = run_cuts[static_cast<std::size_t>(me) + 1];

  std::vector<double> data(static_cast<std::size_t>(run_end - run_begin));
  for (std::int64_t i = 0; i < run_end - run_begin; ++i) {
    data[static_cast<std::size_t>(i)] = static_cast<double>(run_begin + i);
  }
  auto run_once = [&](Mode mode, int tag) {
    std::vector<std::vector<double>> sinks(kRegions);
    std::vector<Segment> segs;
    for (int rg = 0; rg < kRegions; ++rg) {
      const std::int64_t a =
          std::max(run_begin, region_cuts[static_cast<std::size_t>(rg)]);
      const std::int64_t b =
          std::min(run_end, region_cuts[static_cast<std::size_t>(rg) + 1]);
      const std::int64_t count = std::max<std::int64_t>(0, b - a);
      segs.push_back(Segment{
          count > 0 ? data.data() + (a - run_begin) : nullptr, count,
          count > 0 ? a : 0, &sinks[static_cast<std::size_t>(rg)],
          jsort::OverlapWithRegion(
              layout, me, region_cuts[static_cast<std::size_t>(rg)],
              region_cuts[static_cast<std::size_t>(rg) + 1])});
    }
    jsort::Poll poll = jsort::exchange::StartSegmentExchange(
        tr, layout, std::move(segs), tag, mode, nullptr, seg_bytes);
    WaitPoll(poll);
    for (auto& s : sinks) std::sort(s.begin(), s.end());
    return sinks;
  };

  const auto dense = run_once(Mode::kAlltoallv, 61);
  const auto hier = run_once(Mode::kHierarchical, 62);
  const auto aut = run_once(Mode::kAuto, 63);
  EXPECT_EQ(dense, hier) << "seg_bytes " << seg_bytes;
  EXPECT_EQ(dense, aut);
  const std::int64_t my_begin = layout.PrefixBefore(me);
  const std::int64_t my_end = my_begin + layout.CapOf(me);
  for (int rg = 0; rg < kRegions; ++rg) {
    std::vector<double> expect;
    for (std::int64_t s = std::max(
             my_begin, region_cuts[static_cast<std::size_t>(rg)]);
         s < std::min(my_end,
                      region_cuts[static_cast<std::size_t>(rg) + 1]);
         ++s) {
      expect.push_back(static_cast<double>(s));
    }
    EXPECT_EQ(hier[static_cast<std::size_t>(rg)], expect)
        << "region " << rg << " seg_bytes " << seg_bytes;
  }
}

TEST_P(HierExchangeSweep, SegmentExchangeByteExactAcrossShapes) {
  const auto [b, seg] = GetParam();
  for (const topo::Topology& shape : Shapes8()) {
    for (std::uint64_t seed : {801ull, 802ull}) {
      RunRanks(TwoLevelOpts(8, shape),
               [&, b, seg](mpisim::Comm& world, mpisim::Runtime&) {
                 RandomizedSegmentExchangeHier(Make(b, world), seed, seg,
                                               /*skewed=*/false);
               });
      RunRanks(TwoLevelOpts(8, shape),
               [&, b, seg](mpisim::Comm& world, mpisim::Runtime&) {
                 RandomizedSegmentExchangeHier(Make(b, world), seed + 50, seg,
                                               /*skewed=*/true);
               });
    }
  }
}

/// kAuto routing is a function of two globally shared facts -- the
/// installed cost model and the group's node span. Two-level model +
/// multi-node group: the engine runs (per-level counters populate, no
/// dense counts round). Flat model, same machine: the flat path runs and
/// the per-level counters stay zero.
TEST(HierAutoRouting, FollowsCostModelAndNodeSpan) {
  const topo::Topology shape = topo::Topology::Uniform(8, 4);
  auto exchange_with = [](mpisim::Comm& world, ExchangeStats* stats) {
    auto tr = jsort::MakeMpiTransport(world);
    const int p = tr->Size();
    std::vector<std::vector<double>> buckets(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      buckets[static_cast<std::size_t>(d)].assign(4, world.Rank() * 1.0 + d);
    }
    jsort::exchange::ExchangeBuckets(*tr, buckets, 43, stats, 0,
                                     Mode::kAuto);
  };

  testutil::PerRank<ExchangeStats> two_level(8);
  RunRanks(TwoLevelOpts(8, shape),
           [&](mpisim::Comm& world, mpisim::Runtime&) {
             ExchangeStats st;
             exchange_with(world, &st);
             two_level.Set(world.Rank(), st);
           });
  std::int64_t inter = 0, intra = 0;
  for (int r = 0; r < 8; ++r) {
    inter += two_level[r].inter_messages;
    intra += two_level[r].intra_messages;
  }
  // The engine ran: cross-node traffic travels leader-to-leader (exactly
  // one bundle per ordered node pair here) and the intra phases carry the
  // rest.
  EXPECT_EQ(inter, 2);
  EXPECT_GT(intra, 0);

  mpisim::Runtime::Options flat;
  flat.num_ranks = 8;
  flat.topology = shape;  // same machine, but a flat (one-level) model
  testutil::PerRank<ExchangeStats> flat_stats(8);
  RunRanks(flat, [&](mpisim::Comm& world, mpisim::Runtime&) {
    ExchangeStats st;
    exchange_with(world, &st);
    flat_stats.Set(world.Rank(), st);
  });
  for (int r = 0; r < 8; ++r) {
    EXPECT_EQ(flat_stats[r].inter_messages, 0);
    EXPECT_EQ(flat_stats[r].intra_messages, 0);
    EXPECT_EQ(flat_stats[r].inter_bytes, 0);
  }
}

/// topo::HierAlltoallv (the dense-counts rbc collective) must deliver
/// bit-for-bit what rbc::Alltoallv delivers, for random ragged counts on
/// every machine shape and segment size.
TEST(HierAlltoallv, MatchesFlatAlltoallvAcrossShapes) {
  for (const topo::Topology& shape : Shapes8()) {
    for (const std::int64_t seg : {std::int64_t{0}, kSegPrime}) {
      RunRanks(TwoLevelOpts(8, shape),
               [&](mpisim::Comm& world, mpisim::Runtime&) {
                 rbc::Comm rw;
                 rbc::Create_RBC_Comm(world, &rw);
                 const int p = rw.Size();
                 const int me = rw.Rank();
                 std::mt19937_64 shared(911);
                 std::vector<std::vector<int>> counts(
                     static_cast<std::size_t>(p));
                 for (int r = 0; r < p; ++r) {
                   for (int d = 0; d < p; ++d) {
                     counts[static_cast<std::size_t>(r)].push_back(
                         static_cast<int>(shared() % 17));
                   }
                 }
                 const auto& mine = counts[static_cast<std::size_t>(me)];
                 std::vector<int> sdispls(static_cast<std::size_t>(p), 0);
                 int stotal = 0;
                 for (int d = 0; d < p; ++d) {
                   sdispls[static_cast<std::size_t>(d)] = stotal;
                   stotal += mine[static_cast<std::size_t>(d)];
                 }
                 std::vector<double> send(static_cast<std::size_t>(stotal));
                 for (int d = 0; d < p; ++d) {
                   for (int i = 0; i < mine[static_cast<std::size_t>(d)];
                        ++i) {
                     send[static_cast<std::size_t>(
                         sdispls[static_cast<std::size_t>(d)] + i)] =
                         me * 1000.0 + d * 50.0 + i;
                   }
                 }
                 std::vector<int> rcounts(static_cast<std::size_t>(p));
                 std::vector<int> rdispls(static_cast<std::size_t>(p), 0);
                 int rtotal_i = 0;
                 for (int r = 0; r < p; ++r) {
                   rcounts[static_cast<std::size_t>(r)] =
                       counts[static_cast<std::size_t>(r)]
                             [static_cast<std::size_t>(me)];
                   rdispls[static_cast<std::size_t>(r)] = rtotal_i;
                   rtotal_i += rcounts[static_cast<std::size_t>(r)];
                 }
                 const std::size_t rtotal = static_cast<std::size_t>(rtotal_i);
                 std::vector<double> flat_out(rtotal, -1.0);
                 std::vector<double> hier_out(rtotal, -2.0);
                 rbc::Alltoallv(send.data(), mine, sdispls,
                                rbc::Datatype::kFloat64, flat_out.data(),
                                rcounts, rdispls, rw);
                 topo::HierLevelStats hs;
                 topo::HierAlltoallv(send.data(), mine, sdispls,
                                     rbc::Datatype::kFloat64, hier_out.data(),
                                     rcounts, rdispls, rw, seg, nullptr, &hs);
                 EXPECT_EQ(flat_out, hier_out);
                 if (shape.NodeCount() <= 1) {
                   EXPECT_EQ(hs.inter_messages, 0);
                   EXPECT_EQ(hs.inter_bytes, 0);
                 }
               });
    }
  }
}

}  // namespace
