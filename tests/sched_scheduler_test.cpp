// The pure replicated admission scheduler, driven with synthetic
// completion times (no ranks, no runtime): policy orderings, the
// adaptive-width shrink, the conservative event frontier that makes the
// replicated loop an exact discrete-event simulation, and determinism in
// (policy, seed).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "mpisim/error.hpp"
#include "sched/scheduler.hpp"

namespace {

using jsort::sched::Admission;
using jsort::sched::AdmissionPolicy;
using jsort::sched::Algorithm;
using jsort::sched::JobSpec;
using jsort::sched::JobStreamParams;
using jsort::sched::MakeJobStream;
using jsort::sched::Scheduler;
using jsort::sched::SchedulerConfig;

JobSpec Job(int id, double arrival, int width, std::int64_t n,
            int priority = 0) {
  JobSpec s;
  s.id = id;
  s.arrival_vtime = arrival;
  s.width = width;
  s.n_total = n;
  s.priority = priority;
  return s;
}

/// Runs the scheduler to completion with a synthetic duration model and
/// returns the admission trace as "id@start[first..last]" strings.
std::vector<std::string> Trace(Scheduler& sched,
                               double (*duration)(const JobSpec&)) {
  std::vector<std::string> trace;
  while (true) {
    const auto wave = sched.NextWave();
    if (wave.empty()) break;
    for (const Admission& a : wave) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%d@%g[%d..%d]", a.spec.id,
                    a.start_vtime, a.first, a.last);
      trace.emplace_back(buf);
      sched.Complete(a.spec.id, a.start_vtime + duration(a.spec));
    }
  }
  return trace;
}

double UnitDuration(const JobSpec&) { return 10.0; }
double SizeDuration(const JobSpec& s) {
  return 1.0 + static_cast<double>(s.n_total) * 0.01;
}

TEST(Fifo, AdmitsInArrivalOrderWithBackfill) {
  // Machine of 4; job 0 takes everything; 1 (wide) then 2 (narrow)
  // arrive while 0 runs. FIFO admits 1 first when the machine frees.
  std::vector<JobSpec> jobs = {Job(0, 0.0, 4, 100), Job(1, 1.0, 4, 100),
                               Job(2, 2.0, 1, 100)};
  Scheduler sched(4, jobs, {});
  auto trace = Trace(sched, UnitDuration);
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0], "0@0[0..3]");
  EXPECT_EQ(trace[1], "1@10[0..3]");
  EXPECT_EQ(trace[2], "2@20[0..0]");
  EXPECT_TRUE(sched.Done());
}

TEST(Fifo, BackfillsAroundAJobThatDoesNotFit) {
  // Width-3 job 1 cannot fit next to running width-2 job 0 on 4 ranks,
  // but the later width-2 job 2 can: greedy backfill admits it.
  std::vector<JobSpec> jobs = {Job(0, 0.0, 2, 100), Job(1, 1.0, 3, 100),
                               Job(2, 2.0, 2, 100)};
  Scheduler sched(4, jobs, {});
  auto trace = Trace(sched, UnitDuration);
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0], "0@0[0..1]");
  EXPECT_EQ(trace[1], "2@2[2..3]");  // backfilled at its arrival
  // Job 1 needs [0..2]: ranks 0..1 free at 10, but rank 2 only at 12.
  EXPECT_EQ(trace[2], "1@12[0..2]");
}

TEST(Sjf, PrefersShortJobsAtContention) {
  // All three arrive together on a machine only one fits on: SJF runs
  // them smallest-first regardless of id order.
  std::vector<JobSpec> jobs = {Job(0, 0.0, 2, 900), Job(1, 0.0, 2, 100),
                               Job(2, 0.0, 2, 500)};
  SchedulerConfig cfg;
  cfg.policy = AdmissionPolicy::kSjf;
  Scheduler sched(2, jobs, cfg);
  auto trace = Trace(sched, SizeDuration);
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0].substr(0, 2), "1@");
  EXPECT_EQ(trace[1].substr(0, 2), "2@");
  EXPECT_EQ(trace[2].substr(0, 2), "0@");
}

TEST(Priority, DominatesEveryPolicyOrder) {
  std::vector<JobSpec> jobs = {Job(0, 0.0, 2, 100, /*priority=*/0),
                               Job(1, 0.0, 2, 900, /*priority=*/5),
                               Job(2, 0.0, 2, 10, /*priority=*/0)};
  SchedulerConfig cfg;
  cfg.policy = AdmissionPolicy::kSjf;
  Scheduler sched(2, jobs, cfg);
  auto trace = Trace(sched, SizeDuration);
  ASSERT_EQ(trace.size(), 3u);
  // Priority 5 beats the shorter jobs; then SJF order among the rest.
  EXPECT_EQ(trace[0].substr(0, 2), "1@");
  EXPECT_EQ(trace[1].substr(0, 2), "2@");
  EXPECT_EQ(trace[2].substr(0, 2), "0@");
}

TEST(AdaptiveWidth, ShrinksUnderLoadOnly) {
  // Eight width-8 jobs arrive at once on 8 ranks with threshold 4: a
  // long queue halves widths so several run concurrently.
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 8; ++i) jobs.push_back(Job(i, 0.0, 8, 100));
  SchedulerConfig cfg;
  cfg.policy = AdmissionPolicy::kAdaptiveWidth;
  cfg.adaptive_threshold = 4;
  Scheduler sched(8, jobs, cfg);
  const auto first_wave = sched.NextWave();
  ASSERT_FALSE(first_wave.empty());
  EXPECT_GT(first_wave.size(), 1u);  // shrunk widths -> concurrency
  for (const Admission& a : first_wave) {
    EXPECT_LT(a.width, 8);
    EXPECT_EQ(a.last - a.first + 1, a.width);
  }
  for (const Admission& a : first_wave) {
    sched.Complete(a.spec.id, a.start_vtime + 10.0);
  }
  // Drain; an uncontended trailing job would keep its full width.
  while (true) {
    const auto wave = sched.NextWave();
    if (wave.empty()) break;
    for (const Admission& a : wave) {
      sched.Complete(a.spec.id, a.start_vtime + 10.0);
    }
  }
  EXPECT_TRUE(sched.Done());

  std::vector<JobSpec> solo = {Job(0, 0.0, 8, 100)};
  Scheduler unloaded(8, solo, cfg);
  const auto wave = unloaded.NextWave();
  ASSERT_EQ(wave.size(), 1u);
  EXPECT_EQ(wave[0].width, 8);  // empty queue: no shrink
}

TEST(ConservativeFrontier, LaterArrivalsWaitForMeasuredCompletions) {
  // Job 0 occupies [0..1] from t=0; job 1 arrives at t=5 and needs the
  // other two ranks. The frontier defers 1's admission until 0's
  // completion is *measured*, but its start vtime is still its arrival
  // -- the replicated loop reproduces the ideal event-driven timeline.
  std::vector<JobSpec> jobs = {Job(0, 0.0, 2, 100), Job(1, 5.0, 2, 100)};
  Scheduler sched(4, jobs, {});
  const auto w0 = sched.NextWave();
  ASSERT_EQ(w0.size(), 1u);
  EXPECT_EQ(w0[0].spec.id, 0);
  sched.Complete(0, 42.0);
  const auto w1 = sched.NextWave();
  ASSERT_EQ(w1.size(), 1u);
  EXPECT_EQ(w1[0].spec.id, 1);
  EXPECT_DOUBLE_EQ(w1[0].start_vtime, 5.0);  // not 42: ranks 2..3 were free
  EXPECT_EQ(w1[0].first, 2);
  sched.Complete(1, 50.0);
  EXPECT_TRUE(sched.NextWave().empty());
  EXPECT_TRUE(sched.Done());
}

TEST(JobStream, RejectsWidthsNoRankCountCanSatisfy) {
  JobStreamParams params;
  params.min_width = 8;
  params.max_width = 8;
  EXPECT_NO_THROW(MakeJobStream(8, params, 1));
  EXPECT_THROW(MakeJobStream(4, params, 1), mpisim::UsageError);
}

TEST(JobStream, WidthsNeverUndershootAPowerOfTwoMinimum) {
  JobStreamParams params;
  params.jobs = 32;
  params.min_width = 3;  // rounds *up* to 4, never down to 2
  params.max_width = 8;
  for (const JobSpec& s : MakeJobStream(16, params, 2)) {
    EXPECT_GE(s.width, 4);
    EXPECT_LE(s.width, 8);
  }
  // An empty power-of-two range is rejected rather than silently bent.
  params.min_width = 5;
  params.max_width = 7;
  EXPECT_THROW(MakeJobStream(16, params, 2), mpisim::UsageError);
}

TEST(SchedulerApi, RejectsMisuse) {
  std::vector<JobSpec> jobs = {Job(0, 0.0, 2, 100), Job(1, 0.0, 2, 100)};
  Scheduler sched(2, jobs, {});
  EXPECT_THROW(sched.Complete(0, 1.0), mpisim::UsageError);  // nothing runs
  const auto wave = sched.NextWave();
  ASSERT_EQ(wave.size(), 1u);
  EXPECT_THROW(sched.NextWave(), mpisim::UsageError);  // wave outstanding
  EXPECT_THROW(sched.Complete(7, 1.0), mpisim::UsageError);  // unknown job
  sched.Complete(wave[0].spec.id, 5.0);
  EXPECT_THROW(sched.Complete(wave[0].spec.id, 5.0),  // duplicate
               mpisim::UsageError);
  std::vector<JobSpec> bad = {Job(3, 0.0, 2, 100)};
  EXPECT_THROW(Scheduler(2, bad, {}), mpisim::UsageError);  // non-dense ids
}

class PolicySweep : public ::testing::TestWithParam<AdmissionPolicy> {};

INSTANTIATE_TEST_SUITE_P(Policies, PolicySweep,
                         ::testing::Values(AdmissionPolicy::kFifo,
                                           AdmissionPolicy::kSjf,
                                           AdmissionPolicy::kAdaptiveWidth));

// Determinism in (policy, seed): identical streams and identical
// synthetic durations produce identical traces; a different seed
// produces a different stream.
TEST_P(PolicySweep, DeterministicInPolicyAndSeed) {
  JobStreamParams params;
  params.jobs = 40;
  params.mean_interarrival = 15.0;
  params.max_width = 8;
  const auto stream_a = MakeJobStream(16, params, /*seed=*/7);
  const auto stream_b = MakeJobStream(16, params, /*seed=*/7);
  const auto stream_c = MakeJobStream(16, params, /*seed=*/8);
  ASSERT_EQ(stream_a.size(), 40u);

  SchedulerConfig cfg;
  cfg.policy = GetParam();
  Scheduler s1(16, stream_a, cfg);
  Scheduler s2(16, stream_b, cfg);
  const auto t1 = Trace(s1, SizeDuration);
  const auto t2 = Trace(s2, SizeDuration);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1.size(), 40u);
  EXPECT_TRUE(s1.Done());

  bool streams_differ = false;
  for (std::size_t i = 0; i < stream_a.size(); ++i) {
    if (stream_a[i].n_total != stream_c[i].n_total ||
        stream_a[i].arrival_vtime != stream_c[i].arrival_vtime) {
      streams_differ = true;
      break;
    }
  }
  EXPECT_TRUE(streams_differ);
}

// Every admission ever handed out uses a range inside the machine, and
// ranges of jobs running at overlapping virtual times never overlap.
TEST_P(PolicySweep, ConcurrentAdmissionsNeverShareRanks) {
  JobStreamParams params;
  params.jobs = 60;
  params.mean_interarrival = 5.0;  // heavy load -> deep queue
  params.max_width = 8;
  const auto stream = MakeJobStream(16, params, /*seed=*/11);
  SchedulerConfig cfg;
  cfg.policy = GetParam();
  Scheduler sched(16, stream, cfg);
  struct Interval {
    int first, last;
    double start, end;
  };
  std::vector<Interval> done;
  while (true) {
    const auto wave = sched.NextWave();
    if (wave.empty()) break;
    for (const Admission& a : wave) {
      EXPECT_GE(a.first, 0);
      EXPECT_LT(a.last, 16);
      EXPECT_GE(a.start_vtime, a.spec.arrival_vtime);
      const double end = a.start_vtime + SizeDuration(a.spec);
      for (const Interval& o : done) {
        const bool ranks_overlap = a.first <= o.last && o.first <= a.last;
        const bool time_overlap = a.start_vtime < o.end && o.start < end;
        EXPECT_FALSE(ranks_overlap && time_overlap)
            << "job " << a.spec.id << " overlaps a concurrent job";
      }
      done.push_back({a.first, a.last, a.start_vtime, end});
      sched.Complete(a.spec.id, end);
    }
  }
  EXPECT_EQ(done.size(), 60u);
}

}  // namespace
