// Deadlock forensics: an intentional deadlock must produce a per-rank
// wait graph naming every blocked call's source, tag and communicator
// (plus pending mailbox contents), not a bare timeout. Proactive
// detection must prove p2p deadlocks in milliseconds; spin-waits fall
// back to the (env-overridable) wall-clock timeout. Abort propagation
// must name the originating rank.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include "mpisim/mpisim.hpp"
#include "sched/service.hpp"
#include "testutil.hpp"

namespace {

using mpisim::Datatype;

mpisim::Runtime::Options Opts(int p, std::chrono::milliseconds timeout) {
  mpisim::Runtime::Options o;
  o.num_ranks = p;
  o.deadlock_timeout = timeout;
  return o;
}

/// Runs `rank_main` and returns the DeadlockError report it must raise.
std::string ExpectDeadlockReport(
    mpisim::Runtime::Options opts,
    const std::function<void(mpisim::Comm&)>& rank_main) {
  mpisim::Runtime rt(opts);
  try {
    rt.Run(rank_main);
  } catch (const mpisim::DeadlockError& e) {
    return e.what();
  } catch (const std::exception& e) {
    ADD_FAILURE() << "expected DeadlockError, got: " << e.what();
    return "";
  }
  ADD_FAILURE() << "expected DeadlockError, got clean run";
  return "";
}

TEST(Deadlock, ProactiveP2PDetectionDumpsWaitGraph) {
  // Mutual blocking receives with no sender anywhere: every rank is
  // blocked on a known envelope pattern with no match, so the detector
  // proves the deadlock immediately -- far before the generous timeout.
  const auto t0 = std::chrono::steady_clock::now();
  const std::string report =
      ExpectDeadlockReport(Opts(2, std::chrono::milliseconds(30'000)),
                           [](mpisim::Comm& world) {
                             double x = 0.0;
                             const int peer = 1 - world.Rank();
                             mpisim::Recv(&x, 1, Datatype::kFloat64, peer, 3,
                                          world);
                           });
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::seconds(10)) << "detection not proactive";
  EXPECT_NE(report.find("deadlock detected"), std::string::npos) << report;
  EXPECT_NE(report.find("per-rank wait graph"), std::string::npos) << report;
  EXPECT_NE(report.find("rank 0/2"), std::string::npos) << report;
  EXPECT_NE(report.find("rank 1/2"), std::string::npos) << report;
  EXPECT_NE(report.find("blocked in Recv"), std::string::npos) << report;
  EXPECT_NE(report.find("src"), std::string::npos) << report;
  EXPECT_NE(report.find("tag 3"), std::string::npos) << report;
  EXPECT_NE(report.find("comm ctx base"), std::string::npos) << report;
  EXPECT_NE(report.find("pending mailbox contents"), std::string::npos)
      << report;
}

TEST(Deadlock, WaitGraphListsPendingMailboxMessages) {
  // Rank 1 sends a message rank 0 never matches (wrong tag), then blocks
  // on a receive that never arrives: the forensic dump must show rank
  // 0's pending message alongside both blocked calls.
  const std::string report = ExpectDeadlockReport(
      Opts(2, std::chrono::milliseconds(30'000)), [](mpisim::Comm& world) {
        double x = 1.5;
        if (world.Rank() == 1) {
          mpisim::Send(&x, 1, Datatype::kFloat64, 0, 8, world);
        }
        mpisim::Recv(&x, 1, Datatype::kFloat64, 1 - world.Rank(), 4, world);
      });
  EXPECT_NE(report.find("tag 4"), std::string::npos) << report;
  EXPECT_NE(report.find("queued message"), std::string::npos) << report;
  EXPECT_NE(report.find("from world rank 1"), std::string::npos) << report;
  EXPECT_NE(report.find("tag 8"), std::string::npos) << report;
}

TEST(Deadlock, SpinWaitFallsBackToShortTimeoutForensics) {
  // Waiting on a nonblocking receive is a spin-wait (pattern unknown to
  // the registry), so proactive detection stands down; the shortened
  // timeout must still yield the forensic report, in milliseconds.
  const auto t0 = std::chrono::steady_clock::now();
  const std::string report = ExpectDeadlockReport(
      Opts(2, std::chrono::milliseconds(300)), [](mpisim::Comm& world) {
        if (world.Rank() == 0) {
          double x = 0.0;
          mpisim::Request req =
              mpisim::Irecv(&x, 1, Datatype::kFloat64, 1, 6, world);
          mpisim::Wait(req);
        }
        // Rank 1 exits immediately: not blocked, never sends.
      });
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::seconds(10));
  EXPECT_NE(report.find("timed out (suspected deadlock)"), std::string::npos)
      << report;
  EXPECT_NE(report.find("per-rank wait graph"), std::string::npos) << report;
  EXPECT_NE(report.find("blocked in Wait"), std::string::npos) << report;
  EXPECT_NE(report.find("not blocked in the substrate"), std::string::npos)
      << report;
}

TEST(Deadlock, TimeoutEnvOverride) {
  const char* old = std::getenv("MPISIM_DEADLOCK_TIMEOUT_MS");
  const std::string saved = old != nullptr ? old : "";
  const bool had = old != nullptr;

  setenv("MPISIM_DEADLOCK_TIMEOUT_MS", "250", 1);
  {
    mpisim::RuntimeConfig opts;
    opts.num_ranks = 1;
    mpisim::Runtime rt(opts);
    EXPECT_EQ(rt.options().deadlock_timeout,
              std::chrono::milliseconds(250));
    // And it is live: a spin-wait deadlock resolves in ~250 ms, not the
    // 60 s default.
    const auto t0 = std::chrono::steady_clock::now();
    try {
      rt.Run([](mpisim::Comm& world) {
        double x = 0.0;
        mpisim::Request req =
            mpisim::Irecv(&x, 1, Datatype::kFloat64, 0, 2, world);
        mpisim::Wait(req);
      });
      ADD_FAILURE() << "expected DeadlockError";
    } catch (const mpisim::DeadlockError&) {
    }
    EXPECT_LT(std::chrono::steady_clock::now() - t0,
              std::chrono::seconds(10));
  }

  if (had) {
    setenv("MPISIM_DEADLOCK_TIMEOUT_MS", saved.c_str(), 1);
  } else {
    unsetenv("MPISIM_DEADLOCK_TIMEOUT_MS");
  }
}

TEST(Deadlock, AbortNamesOriginatingRank) {
  // Rank 2 fails; ranks blocked on it must see AbortedError carrying the
  // origin, and the runtime must re-throw rank 2's error -- which, being
  // an mpisim::Error built on a rank thread, carries the rank prefix.
  testutil::PerRank<int> origins(3);
  testutil::PerRank<std::string> messages(3);
  mpisim::Runtime rt(Opts(3, std::chrono::milliseconds(30'000)));
  try {
    rt.Run([&](mpisim::Comm& world) {
      if (world.Rank() == 2) throw mpisim::Error("injected failure");
      double x = 0.0;
      try {
        mpisim::Recv(&x, 1, Datatype::kFloat64, 2, 7, world);
      } catch (const mpisim::AbortedError& e) {
        origins.Set(world.Rank(), e.origin_rank());
        messages.Set(world.Rank(), e.what());
        return;
      }
      ADD_FAILURE() << "rank " << world.Rank() << " was not aborted";
    });
    ADD_FAILURE() << "expected the injected failure to re-throw";
  } catch (const mpisim::Error& e) {
    EXPECT_NE(std::string(e.what()).find("[rank 2/3]"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("injected failure"),
              std::string::npos)
        << e.what();
  }
  for (int r = 0; r < 2; ++r) {
    EXPECT_EQ(origins[r], 2);
    EXPECT_NE(messages[r].find("rank 2 failed"), std::string::npos)
        << messages[r];
  }
}

TEST(Deadlock, ServiceBarrierAbortNamesOriginatingRank) {
  // One member of a service job fails after the sort; the others sit in
  // the service's *out-of-band* wave barrier (plain process memory, no
  // substrate messages) and must still learn who caused the abort.
  constexpr int kRanks = 4;
  jsort::sched::JobSpec job;
  job.id = 0;
  job.n_total = 256;
  job.width = kRanks;

  jsort::sched::ServiceConfig cfg;
  cfg.on_job_output = [](const jsort::sched::Admission&, int,
                         std::span<const double>) {
    if (mpisim::Ctx().world_rank == 1) {
      throw mpisim::Error("member exploding");
    }
  };

  jsort::sched::SortService service(kRanks, {job}, cfg);
  testutil::PerRank<int> origins(kRanks);
  mpisim::Runtime rt(Opts(kRanks, std::chrono::milliseconds(30'000)));
  try {
    rt.Run([&](mpisim::Comm& world) {
      try {
        service.Run(world);
      } catch (const mpisim::AbortedError& e) {
        origins.Set(world.Rank(), e.origin_rank());
        return;
      }
      ADD_FAILURE() << "rank " << world.Rank() << " was not aborted";
    });
    ADD_FAILURE() << "expected the injected failure to re-throw";
  } catch (const mpisim::Error& e) {
    EXPECT_NE(std::string(e.what()).find("member exploding"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("[rank 1/4]"), std::string::npos)
        << e.what();
  }
  for (const int r : {0, 2, 3}) {
    EXPECT_EQ(origins[r], 1) << "rank " << r;
  }
}

}  // namespace
