// Property-test harness for every exchange path: randomized counts,
// displacements and skew sweeps asserting byte-exact equivalence of the
// dense, coalesced, sparse and segmented (large-message) delivery paths
// across all three Transport backends and segment sizes {one element,
// prime, larger than any payload}. Also pins down the large-message
// contract itself: single wire messages stay bounded by segment_bytes,
// ExchangeStats.segments reconciles with the substrate's measured message
// counters, and Mode::kAuto flips coalesced -> sparse exactly at the
// threshold.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <random>
#include <thread>
#include <tuple>
#include <vector>

#include "sort/exchange.hpp"
#include "sort/jquick.hpp"
#include "sort/workload.hpp"
#include "testutil.hpp"

namespace {

using jsort::CapacityLayout;
using jsort::Transport;
using jsort::exchange::ExchangeStats;
using jsort::exchange::Mode;
using jsort::exchange::Outgoing;
using jsort::exchange::Segment;
using testutil::RunRanks;

enum class Backend { kRbc, kMpi, kIcomm };

std::shared_ptr<Transport> Make(Backend b, mpisim::Comm& world) {
  switch (b) {
    case Backend::kRbc: {
      rbc::Comm rw;
      rbc::Create_RBC_Comm(world, &rw);
      return jsort::MakeRbcTransport(rw);
    }
    case Backend::kMpi:
      return jsort::MakeMpiTransport(world);
    case Backend::kIcomm:
      return jsort::MakeIcommTransport(world);
  }
  return nullptr;
}

void WaitPoll(const jsort::Poll& p) {
  while (!p()) std::this_thread::yield();
}

/// The swept segment sizes (bytes): one double, a prime that lands
/// mid-element and mid-chunk, and one far above every payload in these
/// tests (segmentation enabled but never splitting).
constexpr std::int64_t kSegOneElem = 8;
constexpr std::int64_t kSegPrime = 61;
constexpr std::int64_t kSegHuge = std::int64_t{1} << 20;

class ExchangePropertySweep
    : public ::testing::TestWithParam<std::tuple<Backend, std::int64_t>> {};

INSTANTIATE_TEST_SUITE_P(
    BackendsBySegment, ExchangePropertySweep,
    ::testing::Combine(::testing::Values(Backend::kRbc, Backend::kMpi,
                                         Backend::kIcomm),
                       ::testing::Values(std::int64_t{0}, kSegOneElem,
                                         kSegPrime, kSegHuge)));

/// Randomized slot-interval redistribution (the jquick shape): a
/// seed-keyed rng, run identically on every rank, draws a (possibly
/// skewed) layout, random region cuts and random per-rank runs; every
/// mode must deliver exactly the slots of this rank's capacity interval,
/// region by region, whatever the segment size.
void RandomizedSegmentExchange(const std::shared_ptr<Transport>& tr,
                               std::uint64_t seed, std::int64_t seg_bytes,
                               bool skewed) {
  const int p = tr->Size();
  const int me = tr->Rank();
  std::mt19937_64 shared(seed);
  const std::int64_t quota = 16 + static_cast<std::int64_t>(shared() % 25);
  CapacityLayout layout{.p = p, .quota = quota, .cap_first = quota,
                        .cap_last = quota};
  if (skewed && p > 1) {
    layout.cap_first = 1 + static_cast<std::int64_t>(shared() % quota);
    layout.cap_last = 1 + static_cast<std::int64_t>(shared() % quota);
  }
  const std::int64_t total = layout.Total();

  constexpr int kRegions = 3;
  std::vector<std::int64_t> region_cuts{0};
  for (int i = 1; i < kRegions; ++i) {
    region_cuts.push_back(static_cast<std::int64_t>(shared() % (total + 1)));
  }
  region_cuts.push_back(total);
  std::sort(region_cuts.begin(), region_cuts.end());
  std::vector<std::int64_t> run_cuts{0};
  for (int i = 1; i < p; ++i) {
    run_cuts.push_back(static_cast<std::int64_t>(shared() % (total + 1)));
  }
  run_cuts.push_back(total);
  std::sort(run_cuts.begin(), run_cuts.end());
  const std::int64_t run_begin = run_cuts[static_cast<std::size_t>(me)];
  const std::int64_t run_end = run_cuts[static_cast<std::size_t>(me) + 1];

  std::vector<double> data(static_cast<std::size_t>(run_end - run_begin));
  for (std::int64_t i = 0; i < run_end - run_begin; ++i) {
    data[static_cast<std::size_t>(i)] = static_cast<double>(run_begin + i);
  }
  // One tag per mode run: the probe-draining paths are not safe across
  // back-to-back segment exchanges on one tag.
  auto run_once = [&](Mode mode, int tag, ExchangeStats* stats) {
    std::vector<std::vector<double>> sinks(kRegions);
    std::vector<Segment> segs;
    for (int rg = 0; rg < kRegions; ++rg) {
      const std::int64_t a =
          std::max(run_begin, region_cuts[static_cast<std::size_t>(rg)]);
      const std::int64_t b =
          std::min(run_end, region_cuts[static_cast<std::size_t>(rg) + 1]);
      const std::int64_t count = std::max<std::int64_t>(0, b - a);
      segs.push_back(Segment{
          count > 0 ? data.data() + (a - run_begin) : nullptr, count,
          count > 0 ? a : 0, &sinks[static_cast<std::size_t>(rg)],
          jsort::OverlapWithRegion(
              layout, me, region_cuts[static_cast<std::size_t>(rg)],
              region_cuts[static_cast<std::size_t>(rg) + 1])});
    }
    jsort::Poll poll = jsort::exchange::StartSegmentExchange(
        tr, layout, std::move(segs), tag, mode, stats, seg_bytes);
    WaitPoll(poll);
    // Delivery order across sources is unspecified for the drain paths;
    // compare as sorted multisets -- the slot values are all distinct, so
    // sorted equality is byte-exact equality of the delivered sets.
    for (auto& s : sinks) std::sort(s.begin(), s.end());
    return sinks;
  };

  ExchangeStats dense_stats;
  const auto dense = run_once(Mode::kAlltoallv, 31, &dense_stats);
  const auto coalesced = run_once(Mode::kCoalesced, 32, nullptr);
  const auto sparse = run_once(Mode::kSparse, 33, nullptr);
  const auto aut = run_once(Mode::kAuto, 34, nullptr);
  EXPECT_EQ(dense, coalesced);
  EXPECT_EQ(dense, sparse);
  EXPECT_EQ(dense, aut);
  const std::int64_t my_begin = layout.PrefixBefore(me);
  const std::int64_t my_end = my_begin + layout.CapOf(me);
  for (int rg = 0; rg < kRegions; ++rg) {
    std::vector<double> expect;
    for (std::int64_t s = std::max(
             my_begin, region_cuts[static_cast<std::size_t>(rg)]);
         s < std::min(my_end,
                      region_cuts[static_cast<std::size_t>(rg) + 1]);
         ++s) {
      expect.push_back(static_cast<double>(s));
    }
    EXPECT_EQ(dense[static_cast<std::size_t>(rg)], expect)
        << "region " << rg << " seg_bytes " << seg_bytes;
  }
  // Segmentation only ever adds wire messages; unsegmented they coincide.
  EXPECT_GE(dense_stats.segments, dense_stats.messages_sent);
  if (seg_bytes == 0 || seg_bytes >= kSegHuge) {
    EXPECT_EQ(dense_stats.segments, dense_stats.messages_sent);
  }
}

TEST_P(ExchangePropertySweep, SegmentExchangeModesByteExactUniform) {
  const auto [b, seg] = GetParam();
  for (std::uint64_t seed : {101ull, 102ull, 103ull}) {
    RunRanks(8, [&, b, seg](mpisim::Comm& world) {
      RandomizedSegmentExchange(Make(b, world), seed, seg, /*skewed=*/false);
    });
  }
}

TEST_P(ExchangePropertySweep, SegmentExchangeModesByteExactSkewed) {
  const auto [b, seg] = GetParam();
  for (std::uint64_t seed : {201ull, 202ull, 203ull}) {
    RunRanks(7, [&, b, seg](mpisim::Comm& world) {
      RandomizedSegmentExchange(Make(b, world), seed, seg, /*skewed=*/true);
    });
  }
}

/// Randomized group-wise exchange (unknown receive counts): every rank
/// derives the full cross-rank entry matrix from the shared seed, so each
/// can compute its exact expected delivery (source order, entry order
/// within a source) and compare byte for byte.
void RandomizedGroupwise(const std::shared_ptr<Transport>& tr,
                         std::uint64_t seed, std::int64_t seg_bytes) {
  const int p = tr->Size();
  const int me = tr->Rank();
  constexpr int kEntries = 4;
  std::mt19937_64 shared(seed);
  // entry[r][e] = (dest, count); value payload derived from (r, e).
  std::vector<std::vector<std::pair<int, std::int64_t>>> entries(
      static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    for (int e = 0; e < kEntries; ++e) {
      const int dest = static_cast<int>(shared() % p);
      const std::int64_t count =
          static_cast<std::int64_t>(shared() % 24);  // empties included
      entries[static_cast<std::size_t>(r)].emplace_back(dest, count);
    }
  }
  auto value = [](int r, int e, std::int64_t i) {
    return r * 10000.0 + e * 1000.0 + static_cast<double>(i);
  };
  std::vector<std::vector<double>> payloads;
  std::vector<Outgoing> out;
  for (int e = 0; e < kEntries; ++e) {
    const auto [dest, count] = entries[static_cast<std::size_t>(me)]
                                      [static_cast<std::size_t>(e)];
    std::vector<double> payload;
    for (std::int64_t i = 0; i < count; ++i) {
      payload.push_back(value(me, e, i));
    }
    payloads.push_back(std::move(payload));
    out.push_back(Outgoing{dest, payloads.back().data(), count});
  }
  ExchangeStats ds, ss;
  const auto dense = jsort::exchange::ExchangeGroupwise(
      tr, out, 41, Mode::kAlltoallv, &ds, seg_bytes);
  const auto sparse = jsort::exchange::ExchangeGroupwise(
      tr, out, 41, Mode::kSparse, &ss, seg_bytes);
  const auto aut = jsort::exchange::ExchangeGroupwise(
      tr, out, 41, Mode::kAuto, nullptr, seg_bytes);
  EXPECT_EQ(dense, sparse);
  EXPECT_EQ(dense, aut);
  EXPECT_EQ(ds.elements_sent, ss.elements_sent);
  // Expected delivery: sources in rank order, entries in order.
  std::vector<double> expect;
  for (int r = 0; r < p; ++r) {
    for (int e = 0; e < kEntries; ++e) {
      const auto [dest, count] = entries[static_cast<std::size_t>(r)]
                                        [static_cast<std::size_t>(e)];
      if (dest != me) continue;
      for (std::int64_t i = 0; i < count; ++i) {
        expect.push_back(value(r, e, i));
      }
    }
  }
  EXPECT_EQ(dense, expect) << "seg_bytes " << seg_bytes;
}

TEST_P(ExchangePropertySweep, GroupwiseModesByteExact) {
  const auto [b, seg] = GetParam();
  for (std::uint64_t seed : {301ull, 302ull, 303ull}) {
    RunRanks(6, [&, b, seg](mpisim::Comm& world) {
      RandomizedGroupwise(Make(b, world), seed, seg);
    });
  }
}

/// Randomized bucket exchange: per-source-deterministic payloads allow a
/// direct (unsorted) byte-exact comparison, and the dense path's
/// ExchangeStats.segments must reconcile with the substrate's measured
/// per-rank message count: p-1 counts messages plus the predicted payload
/// segments.
void RandomizedBuckets(const std::shared_ptr<Transport>& tr,
                       std::uint64_t seed, std::int64_t seg_bytes) {
  const int p = tr->Size();
  const int me = tr->Rank();
  std::mt19937_64 shared(seed);
  // sizes[r][d]: elements rank r sends to d (derived on every rank).
  std::vector<std::vector<std::int64_t>> sizes(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    for (int d = 0; d < p; ++d) {
      sizes[static_cast<std::size_t>(r)].push_back(
          static_cast<std::int64_t>(shared() % 40));
    }
  }
  auto value = [](int r, int d, std::int64_t i) {
    return r * 10000.0 + d * 100.0 + static_cast<double>(i);
  };
  std::vector<std::vector<double>> buckets(static_cast<std::size_t>(p));
  for (int d = 0; d < p; ++d) {
    for (std::int64_t i = 0;
         i < sizes[static_cast<std::size_t>(me)][static_cast<std::size_t>(d)];
         ++i) {
      buckets[static_cast<std::size_t>(d)].push_back(value(me, d, i));
    }
  }
  ExchangeStats stats;
  mpisim::Ctx().stats.max_message_bytes = 0;
  const std::uint64_t before = mpisim::Ctx().stats.messages_sent;
  const std::vector<double> got =
      jsort::exchange::ExchangeBuckets(*tr, buckets, 43, &stats, seg_bytes);
  const std::uint64_t sent = mpisim::Ctx().stats.messages_sent - before;
  std::vector<double> expect;
  for (int r = 0; r < p; ++r) {
    for (std::int64_t i = 0;
         i < sizes[static_cast<std::size_t>(r)][static_cast<std::size_t>(me)];
         ++i) {
      expect.push_back(value(r, me, i));
    }
  }
  EXPECT_EQ(got, expect) << "seg_bytes " << seg_bytes;
  // Measured wire traffic: one 8-byte counts message per peer plus the
  // segmented payload blocks, exactly as accounted.
  EXPECT_EQ(sent, static_cast<std::uint64_t>(p - 1 + stats.segments));
  std::int64_t predicted = 0;
  for (int d = 0; d < p; ++d) {
    if (d == me) continue;
    predicted += mpisim::AlltoallvSegmentsOf(
        sizes[static_cast<std::size_t>(me)][static_cast<std::size_t>(d)],
        sizeof(double), seg_bytes);
  }
  EXPECT_EQ(stats.segments, predicted);
  // No payload message exceeds the limit (counts messages are 8 bytes,
  // within every swept limit).
  if (seg_bytes > 0) {
    EXPECT_LE(mpisim::Ctx().stats.max_message_bytes,
              static_cast<std::uint64_t>(
                  std::max<std::int64_t>(seg_bytes, 8)));
  }
}

TEST_P(ExchangePropertySweep, BucketExchangeByteExactAndAccounted) {
  const auto [b, seg] = GetParam();
  for (std::uint64_t seed : {401ull, 402ull}) {
    RunRanks(6, [&, b, seg](mpisim::Comm& world) {
      RandomizedBuckets(Make(b, world), seed, seg);
    });
  }
}

/// Direct sparse-collective chunking: randomized destination sets and
/// payload sizes; the chunked run must deliver exactly what the
/// unsegmented run delivers, source for source and byte for byte, on
/// every backend.
void RandomizedSparseTransport(const std::shared_ptr<Transport>& tr,
                               std::uint64_t seed, std::int64_t seg_bytes) {
  const int p = tr->Size();
  const int me = tr->Rank();
  std::mt19937_64 shared(seed + static_cast<std::uint64_t>(me) * 7919);
  std::vector<std::vector<double>> payloads;
  std::vector<jsort::SparseBlock> blocks;
  const int nblocks = static_cast<int>(shared() % 4);  // some ranks silent
  for (int i = 0; i < nblocks; ++i) {
    const int dest = static_cast<int>(shared() % p);
    const std::int64_t count = static_cast<std::int64_t>(shared() % 50);
    std::vector<double> payload;
    for (std::int64_t j = 0; j < count; ++j) {
      payload.push_back(me * 1000.0 + i * 100.0 + static_cast<double>(j));
    }
    payloads.push_back(std::move(payload));
    blocks.push_back(jsort::SparseBlock{dest, payloads.back().data(),
                                        static_cast<int>(count)});
  }
  auto run = [&](std::int64_t seg) {
    std::vector<jsort::SparseDelivery> deliveries;
    WaitPoll(tr->IsparseAlltoallv(blocks, jsort::Datatype::kFloat64,
                                  &deliveries, 45, seg));
    return deliveries;
  };
  const auto reference = run(0);
  const auto chunked = run(seg_bytes);
  ASSERT_EQ(chunked.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(chunked[i].source, reference[i].source);
    EXPECT_EQ(chunked[i].bytes, reference[i].bytes) << "delivery " << i;
  }
}

TEST_P(ExchangePropertySweep, SparseTransportChunkingByteExact) {
  const auto [b, seg] = GetParam();
  if (seg == 0) return;  // the reference run itself
  for (std::uint64_t seed : {501ull, 502ull, 503ull}) {
    RunRanks(7, [&, b, seg](mpisim::Comm& world) {
      RandomizedSparseTransport(Make(b, world), seed, seg);
    });
  }
}

/// One uniform layout shared by the threshold tests.
CapacityLayout UniformLayout(int p, std::int64_t cap) {
  return CapacityLayout{.p = p, .quota = cap, .cap_first = cap,
                        .cap_last = cap};
}

/// Rotation redistribution (each rank's run is its neighbour's interval)
/// through StartSegmentExchange; returns the stats.
ExchangeStats RotationOnce(const std::shared_ptr<Transport>& tr,
                           const CapacityLayout& layout, Mode mode, int tag,
                           std::int64_t seg_bytes) {
  const int p = tr->Size();
  const int me = tr->Rank();
  const std::int64_t cap = layout.quota;
  const int owner = (me + 1) % p;
  const std::int64_t begin = layout.PrefixBefore(owner);
  std::vector<double> data(static_cast<std::size_t>(cap));
  for (std::int64_t i = 0; i < cap; ++i) {
    data[static_cast<std::size_t>(i)] = static_cast<double>(begin + i);
  }
  std::vector<double> sink;
  std::vector<Segment> segs(1);
  segs[0] = Segment{data.data(), cap, begin, &sink, cap};
  ExchangeStats stats;
  WaitPoll(jsort::exchange::StartSegmentExchange(
      tr, layout, std::move(segs), tag, mode, &stats, seg_bytes));
  std::vector<double> expect(static_cast<std::size_t>(cap));
  const std::int64_t my_begin = layout.PrefixBefore(me);
  for (std::int64_t i = 0; i < cap; ++i) {
    expect[static_cast<std::size_t>(i)] = static_cast<double>(my_begin + i);
  }
  EXPECT_EQ(sink, expect);
  return stats;
}

/// Mode::kAuto must flip coalesced -> sparse exactly at the threshold:
/// the largest possible per-destination message of this rotation is the
/// 1-segment header (8 bytes) plus the destination capacity (cap * 8
/// bytes). At segment_bytes == that bound kAuto stays coalesced (one
/// whole message per destination, exactly one wire message); one byte
/// below it must chunk via the sparse collective.
TEST(ExchangeAutoThreshold, FlipsExactlyAtSegmentBytes) {
  // p must clear the dense threshold (2 * 4k < p-1 with k = 1 segment) so
  // kAuto reaches the coalesced-vs-sparse decision.
  constexpr int kP = 12;
  constexpr std::int64_t kCap = 16;
  constexpr std::int64_t kBound = 8 + kCap * 8;  // header + payload bytes
  RunRanks(kP, [&](mpisim::Comm& world) {
    rbc::Comm rw;
    rbc::Create_RBC_Comm(world, &rw);
    auto tr = jsort::MakeRbcTransport(rw);
    const CapacityLayout layout = UniformLayout(kP, kCap);

    // At the bound: coalesced, single unsegmented wire message, and the
    // only substrate traffic of the exchange is that one payload send.
    const std::uint64_t before_at = mpisim::Ctx().stats.messages_sent;
    const ExchangeStats at =
        RotationOnce(tr, layout, Mode::kAuto, 51, kBound);
    const std::uint64_t sent_at =
        mpisim::Ctx().stats.messages_sent - before_at;
    EXPECT_EQ(at.messages_sent, 1);
    EXPECT_EQ(at.segments, 1);
    EXPECT_EQ(sent_at, 1u);  // coalesced: no barriers, no counts round

    // One byte below: sparse, chunked. Chunk capacity is kBound - 1 - 8
    // payload bytes per message, so the 8 + kCap*8 byte message needs
    // exactly two chunks.
    const ExchangeStats below =
        RotationOnce(tr, layout, Mode::kAuto, 52, kBound - 1);
    EXPECT_EQ(below.messages_sent, 1);
    EXPECT_EQ(below.segments,
              mpisim::SparseChunksOf(kBound, kBound - 1));
    EXPECT_EQ(below.segments, 2);
  });
}

/// ExchangeStats.segments must reconcile with the substrate's measured
/// message counters on both segmented paths: per rank for the dense path
/// (p-1 counts messages + segments payload messages), globally for the
/// sparse path (sum of segments + the 4(p-1) tree edges of the two
/// termination barriers).
TEST(ExchangeAutoThreshold, SegmentsConsistentWithMeasuredMessages) {
  constexpr int kP = 6;
  constexpr std::int64_t kCap = 32;
  constexpr std::int64_t kSeg = 64;  // 8 elements per dense segment
  RunRanks(kP, [&](mpisim::Comm& world) {
    rbc::Comm rw;
    rbc::Create_RBC_Comm(world, &rw);
    auto tr = jsort::MakeRbcTransport(rw);
    const CapacityLayout layout = UniformLayout(kP, kCap);

    mpisim::Barrier(world);
    const std::uint64_t before_dense = mpisim::Ctx().stats.messages_sent;
    const ExchangeStats dense =
        RotationOnce(tr, layout, Mode::kAlltoallv, 53, kSeg);
    const std::uint64_t sent_dense =
        mpisim::Ctx().stats.messages_sent - before_dense;
    EXPECT_EQ(dense.segments,
              mpisim::AlltoallvSegmentsOf(kCap, sizeof(double), kSeg) +
                  (kP - 2));  // one real block + p-2 empty blocks
    EXPECT_EQ(sent_dense,
              static_cast<std::uint64_t>(kP - 1 + dense.segments));

    mpisim::Barrier(world);
    const std::uint64_t before_sparse = mpisim::Ctx().stats.messages_sent;
    const ExchangeStats sparse =
        RotationOnce(tr, layout, Mode::kSparse, 54, kSeg);
    const double local_delta = static_cast<double>(
        mpisim::Ctx().stats.messages_sent - before_sparse);
    double global_delta = 0.0;
    mpisim::Allreduce(&local_delta, &global_delta, 1,
                      mpisim::Datatype::kFloat64, mpisim::ReduceOp::kSum,
                      world);
    const double local_segments = static_cast<double>(sparse.segments);
    double global_segments = 0.0;
    mpisim::Allreduce(&local_segments, &global_segments, 1,
                      mpisim::Datatype::kFloat64, mpisim::ReduceOp::kSum,
                      world);
    // Two binomial-tree barriers (reduce + bcast chains) cost 4(p-1)
    // messages in total.
    EXPECT_EQ(static_cast<std::int64_t>(global_delta),
              static_cast<std::int64_t>(global_segments) + 4 * (kP - 1));
    EXPECT_EQ(sparse.segments, mpisim::SparseChunksOf(8 + kCap * 8, kSeg));
  });
}

/// The whole point of the large-message regime: on a skewed workload no
/// single wire message of the segmented paths exceeds segment_bytes,
/// while the unsegmented coalesced path ships the whole payload at once.
TEST(ExchangeSegmentBound, MaxMessageBoundedBySegmentBytes) {
  constexpr int kP = 6;
  constexpr std::int64_t kCap = 512;  // 4 KiB payload per destination
  constexpr std::int64_t kSeg = 256;
  RunRanks(kP, [&](mpisim::Comm& world) {
    rbc::Comm rw;
    rbc::Create_RBC_Comm(world, &rw);
    auto tr = jsort::MakeRbcTransport(rw);
    const CapacityLayout layout = UniformLayout(kP, kCap);

    mpisim::Barrier(world);
    mpisim::Ctx().stats.max_message_bytes = 0;
    RotationOnce(tr, layout, Mode::kSparse, 55, kSeg);
    EXPECT_LE(mpisim::Ctx().stats.max_message_bytes,
              static_cast<std::uint64_t>(kSeg));

    mpisim::Barrier(world);
    mpisim::Ctx().stats.max_message_bytes = 0;
    RotationOnce(tr, layout, Mode::kAlltoallv, 56, kSeg);
    EXPECT_LE(mpisim::Ctx().stats.max_message_bytes,
              static_cast<std::uint64_t>(kSeg));

    mpisim::Barrier(world);
    mpisim::Ctx().stats.max_message_bytes = 0;
    RotationOnce(tr, layout, Mode::kCoalesced, 57, kSeg);
    EXPECT_EQ(mpisim::Ctx().stats.max_message_bytes,
              static_cast<std::uint64_t>(8 + kCap * 8));
  });
}

/// The sorters accept the knob end to end: a segmented jquick still sorts
/// and reports more wire segments than logical messages.
TEST(ExchangeSegmentBound, JQuickSortsWithSegmentLimit) {
  constexpr int kP = 8;
  constexpr std::int64_t kQuota = 64;
  testutil::PerRank<std::vector<double>> outs(kP);
  testutil::PerRank<jsort::JQuickStats> stats(kP);
  RunRanks(kP, [&](mpisim::Comm& world) {
    rbc::Comm rw;
    rbc::Create_RBC_Comm(world, &rw);
    auto tr = jsort::MakeRbcTransport(rw);
    auto input = jsort::GenerateInput(jsort::InputKind::kUniform,
                                      world.Rank(), kP, kQuota, 77);
    jsort::JQuickConfig cfg;
    cfg.segment_bytes = 64;  // far below a quota-sized payload
    jsort::JQuickStats st;
    auto out = jsort::JQuickSort(tr, std::move(input), cfg, &st);
    outs.Set(world.Rank(), std::move(out));
    stats.Set(world.Rank(), st);
  });
  std::vector<double> all;
  std::int64_t messages = 0, segments = 0;
  for (int r = 0; r < kP; ++r) {
    EXPECT_EQ(outs[r].size(), static_cast<std::size_t>(kQuota));
    EXPECT_TRUE(std::is_sorted(outs[r].begin(), outs[r].end()));
    all.insert(all.end(), outs[r].begin(), outs[r].end());
    messages += stats[r].messages_sent;
    segments += stats[r].segments_sent;
  }
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
  EXPECT_GT(segments, messages);  // the limit actually split payloads
}

}  // namespace
