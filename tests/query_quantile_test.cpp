// BuildQuantileSummary on all three split backends: the distributed
// summary is byte-identical to the sequential oracle over the
// concatenated input (boundaries, counts, total), every query answer
// honors its own declared rank-error bound, and the bound tightens with
// refinement passes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "query/quantile.hpp"
#include "sort/checks.hpp"
#include "sort/workload.hpp"
#include "testutil.hpp"

namespace {

using jsort::Backend;
using jsort::InputKind;
using jsort::query::BuildQuantileSummary;
using jsort::query::BuildQuantileSummaryLocal;
using jsort::query::QuantileConfig;
using jsort::query::QuantileSummary;
using testutil::PerRank;
using testutil::RunRanks;

std::vector<double> Concat(InputKind kind, int p, std::int64_t per_rank,
                           std::uint64_t seed) {
  std::vector<double> all;
  for (int r = 0; r < p; ++r) {
    const auto slice = jsort::GenerateInput(kind, r, p, per_rank, seed);
    all.insert(all.end(), slice.begin(), slice.end());
  }
  return all;
}

/// True global rank interval of `value` in sorted `oracle`.
std::int64_t TrueRankDistance(const std::vector<double>& oracle, double q,
                              double value) {
  const auto n = static_cast<std::int64_t>(oracle.size());
  const auto target = static_cast<std::int64_t>(
      std::llround(q * static_cast<double>(n - 1)));
  const auto lo = static_cast<std::int64_t>(
      std::lower_bound(oracle.begin(), oracle.end(), value) - oracle.begin());
  const auto hi = static_cast<std::int64_t>(
      std::upper_bound(oracle.begin(), oracle.end(), value) - oracle.begin());
  if (target < lo) return lo - target;
  if (target > hi) return target - hi;
  return 0;
}

class QuantileSweep : public ::testing::TestWithParam<Backend> {};

INSTANTIATE_TEST_SUITE_P(Backends, QuantileSweep,
                         ::testing::Values(Backend::kRbc, Backend::kMpi,
                                           Backend::kIcomm));

TEST_P(QuantileSweep, ByteIdenticalToSequentialOracle) {
  const Backend backend = GetParam();
  constexpr int kRanks = 6;
  constexpr std::int64_t kPerRank = 41;
  for (const InputKind kind :
       {InputKind::kUniform, InputKind::kZipf, InputKind::kAllEqual,
        InputKind::kGaussian}) {
    const std::vector<double> all = Concat(kind, kRanks, kPerRank, 0x9A1Bu);
    QuantileConfig cfg;
    cfg.bins = 16;
    cfg.refinements = 2;
    const QuantileSummary expect = BuildQuantileSummaryLocal(all, cfg);

    PerRank<std::vector<double>> boundaries(kRanks);
    PerRank<std::vector<std::int64_t>> counts(kRanks);
    PerRank<std::int64_t> totals(kRanks);
    RunRanks(kRanks, [&](mpisim::Comm& world) {
      auto tr = jsort::MakeTransport(backend, world);
      const auto local =
          jsort::GenerateInput(kind, world.Rank(), kRanks, kPerRank, 0x9A1Bu);
      const QuantileSummary s = BuildQuantileSummary(*tr, local, cfg);
      boundaries.Set(world.Rank(), s.boundaries());
      counts.Set(world.Rank(), s.counts());
      totals.Set(world.Rank(), s.total());
    });
    for (int r = 0; r < kRanks; ++r) {
      EXPECT_EQ(boundaries[r], expect.boundaries())
          << jsort::InputKindName(kind) << " rank " << r;
      EXPECT_EQ(counts[r], expect.counts())
          << jsort::InputKindName(kind) << " rank " << r;
      EXPECT_EQ(totals[r], expect.total());
    }
  }
}

TEST_P(QuantileSweep, AnswersHonorTheirErrorBound) {
  const Backend backend = GetParam();
  constexpr int kRanks = 4;
  constexpr std::int64_t kPerRank = 200;
  std::vector<double> oracle =
      Concat(InputKind::kUniform, kRanks, kPerRank, 0x44Cu);
  std::sort(oracle.begin(), oracle.end());

  PerRank<int> ok(kRanks);
  RunRanks(kRanks, [&](mpisim::Comm& world) {
    auto tr = jsort::MakeTransport(backend, world);
    const auto local = jsort::GenerateInput(InputKind::kUniform, world.Rank(),
                                            kRanks, kPerRank, 0x44Cu);
    const QuantileSummary s = BuildQuantileSummary(*tr, local);
    int good = 0;
    for (const double q : {0.0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
      const double v = s.Query(q);
      const std::int64_t bound = s.RankErrorBound(q);
      if (TrueRankDistance(oracle, q, v) <= bound &&
          jsort::VerifyQuantile(*tr, local, q, v, bound)) {
        ++good;
      }
    }
    ok.Set(world.Rank(), good);
  });
  for (int r = 0; r < kRanks; ++r) EXPECT_EQ(ok[r], 8);
}

TEST(QueryQuantile, RefinementTightensEquiDepth) {
  // Equi-width bucketing over a Gaussian's full range crams the center
  // buckets; the equi-depth refinement pass must cut the worst-case
  // bucket population (= the error bound at the quantile it covers).
  const std::vector<double> all =
      jsort::GenerateInput(InputKind::kGaussian, 0, 1, 4096, 0xEEu);
  QuantileConfig coarse;
  coarse.bins = 32;
  coarse.refinements = 0;
  QuantileConfig refined = coarse;
  refined.refinements = 2;
  const QuantileSummary s0 = BuildQuantileSummaryLocal(all, coarse);
  const QuantileSummary s2 = BuildQuantileSummaryLocal(all, refined);
  const auto worst = [](const QuantileSummary& s) {
    std::int64_t w = 0;
    for (const std::int64_t c : s.counts()) w = std::max(w, c);
    return w;
  };
  EXPECT_LT(worst(s2), worst(s0));
  EXPECT_EQ(s0.total(), 4096);
  EXPECT_EQ(s2.total(), 4096);
}

TEST(QueryQuantile, DegenerateInputs) {
  // All-equal collapses every boundary onto the single value.
  const std::vector<double> equal(64, 3.25);
  const QuantileSummary s = BuildQuantileSummaryLocal(equal);
  for (const double q : {0.0, 0.5, 1.0}) {
    EXPECT_EQ(s.Query(q), 3.25);
  }
  // Empty input answers 0 with a zero bound.
  const QuantileSummary e = BuildQuantileSummaryLocal({});
  EXPECT_EQ(e.total(), 0);
  EXPECT_EQ(e.Query(0.5), 0.0);
  EXPECT_EQ(e.RankErrorBound(0.5), 0);

  // Distributed: some ranks empty, result still exact vs the oracle.
  constexpr int kRanks = 4;
  std::vector<double> all;
  for (int r = 0; r < kRanks; ++r) {
    const auto slice = jsort::GenerateInput(InputKind::kGaussian, r, kRanks,
                                            r == 0 ? 0 : 50, 0x5EEDu);
    all.insert(all.end(), slice.begin(), slice.end());
  }
  const QuantileSummary expect = BuildQuantileSummaryLocal(all);
  PerRank<int> same(kRanks);
  RunRanks(kRanks, [&](mpisim::Comm& world) {
    auto tr = jsort::MakeTransport(Backend::kRbc, world);
    const auto local =
        jsort::GenerateInput(InputKind::kGaussian, world.Rank(), kRanks,
                             world.Rank() == 0 ? 0 : 50, 0x5EEDu);
    const QuantileSummary s = BuildQuantileSummary(*tr, local);
    same.Set(world.Rank(), s.boundaries() == expect.boundaries() &&
                                   s.counts() == expect.counts() &&
                                   s.total() == expect.total()
                               ? 1
                               : 0);
  });
  for (int r = 0; r < kRanks; ++r) EXPECT_EQ(same[r], 1);
}

}  // namespace
