// Pure-function units of the sorting layer: partition, quickselect,
// capacity layout / greedy assignment, sampling, workloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

#include "sort/assignment.hpp"
#include "sort/partition.hpp"
#include "sort/quickselect.hpp"
#include "sort/sampling.hpp"
#include "sort/workload.hpp"

namespace {

using jsort::AssignChunks;
using jsort::CapacityLayout;
using jsort::Chunk;

TEST(Partition, StrictSplitsByLessThan) {
  const std::vector<double> data{3, 1, 4, 1, 5, 9, 2, 6};
  auto r = jsort::Partition(data, 4.0, /*less_equal=*/false);
  EXPECT_EQ(r.small, (std::vector<double>{3, 1, 1, 2}));
  EXPECT_EQ(r.large, (std::vector<double>{4, 5, 9, 6}));
}

TEST(Partition, LessEqualMovesPivotDuplicatesLeft) {
  const std::vector<double> data{3, 4, 4, 5};
  auto lt = jsort::Partition(data, 4.0, false);
  auto le = jsort::Partition(data, 4.0, true);
  EXPECT_EQ(lt.small.size(), 1u);
  EXPECT_EQ(le.small.size(), 3u);
}

TEST(Partition, InPlaceMatchesOutOfPlaceCounts) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> d(0, 1);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> data(100);
    for (auto& x : data) x = d(rng);
    const double pivot = data[trial % data.size()];
    auto copy = data;
    const auto split = jsort::Partition(data, pivot, trial % 2 == 0);
    const std::size_t cut =
        jsort::PartitionInPlace(copy, pivot, trial % 2 == 0);
    EXPECT_EQ(cut, split.small.size());
    std::vector<double> lhs(copy.begin(), copy.begin() + static_cast<std::ptrdiff_t>(cut));
    auto small_sorted = split.small;
    std::sort(lhs.begin(), lhs.end());
    std::sort(small_sorted.begin(), small_sorted.end());
    EXPECT_EQ(lhs, small_sorted);
  }
}

TEST(Partition, EmptyInput) {
  auto r = jsort::Partition({}, 1.0, false);
  EXPECT_TRUE(r.small.empty());
  EXPECT_TRUE(r.large.empty());
}

class QuickselectSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

INSTANTIATE_TEST_SUITE_P(
    SizesAndK, QuickselectSweep,
    ::testing::Combine(::testing::Values(1, 2, 10, 100, 1000),
                       ::testing::Values(0, 1, 3, 50, 99)));

TEST_P(QuickselectSweep, FirstKAreSmallest) {
  const auto [n, k_raw] = GetParam();
  const std::size_t k = std::min<std::size_t>(static_cast<std::size_t>(k_raw),
                                              static_cast<std::size_t>(n));
  std::mt19937_64 rng(static_cast<std::uint64_t>(n * 131 + k_raw));
  std::vector<double> data(static_cast<std::size_t>(n));
  std::uniform_int_distribution<int> d(0, n / 2 + 1);  // force duplicates
  for (auto& x : data) x = d(rng);
  auto sorted = data;
  std::sort(sorted.begin(), sorted.end());
  jsort::QuickselectSmallest(data, k);
  std::vector<double> head(data.begin(), data.begin() + static_cast<std::ptrdiff_t>(k));
  std::sort(head.begin(), head.end());
  for (std::size_t i = 0; i < k; ++i) EXPECT_DOUBLE_EQ(head[i], sorted[i]);
  // The tail contains exactly the remaining multiset.
  std::vector<double> tail(data.begin() + static_cast<std::ptrdiff_t>(k), data.end());
  std::sort(tail.begin(), tail.end());
  for (std::size_t i = k; i < sorted.size(); ++i) {
    EXPECT_DOUBLE_EQ(tail[i - k], sorted[i]);
  }
}

TEST(CapacityLayout, UniformLayoutBasics) {
  const CapacityLayout l{.p = 4, .quota = 10, .cap_first = 10, .cap_last = 10};
  EXPECT_TRUE(l.Valid());
  EXPECT_EQ(l.Total(), 40);
  EXPECT_EQ(l.CapOf(0), 10);
  EXPECT_EQ(l.CapOf(3), 10);
  EXPECT_EQ(l.PrefixBefore(2), 20);
  EXPECT_EQ(l.RankOfSlot(0), 0);
  EXPECT_EQ(l.RankOfSlot(9), 0);
  EXPECT_EQ(l.RankOfSlot(10), 1);
  EXPECT_EQ(l.RankOfSlot(39), 3);
}

TEST(CapacityLayout, PartialEdgeCapacities) {
  // A janus-trimmed task: first rank holds 3, last holds 7, quota 10.
  const CapacityLayout l{.p = 5, .quota = 10, .cap_first = 3, .cap_last = 7};
  EXPECT_TRUE(l.Valid());
  EXPECT_EQ(l.Total(), 3 + 10 * 3 + 7);
  EXPECT_EQ(l.RankOfSlot(2), 0);
  EXPECT_EQ(l.RankOfSlot(3), 1);
  EXPECT_EQ(l.RankOfSlot(32), 3);
  EXPECT_EQ(l.RankOfSlot(33), 4);
  EXPECT_EQ(l.RankOfSlot(39), 4);
  EXPECT_EQ(l.PrefixBefore(5), l.Total());
}

TEST(CapacityLayout, SingleAndPairLayouts) {
  const CapacityLayout one{.p = 1, .quota = 10, .cap_first = 4, .cap_last = 4};
  EXPECT_TRUE(one.Valid());
  EXPECT_EQ(one.Total(), 4);
  EXPECT_EQ(one.RankOfSlot(3), 0);
  const CapacityLayout two{.p = 2, .quota = 0, .cap_first = 5, .cap_last = 3};
  EXPECT_EQ(two.Total(), 8);
  EXPECT_EQ(two.RankOfSlot(4), 0);
  EXPECT_EQ(two.RankOfSlot(5), 1);
}

TEST(CapacityLayout, RankOfSlotConsistentWithPrefixes) {
  const CapacityLayout l{.p = 7, .quota = 5, .cap_first = 2, .cap_last = 1};
  for (std::int64_t s = 0; s < l.Total(); ++s) {
    const int r = l.RankOfSlot(s);
    EXPECT_LE(l.PrefixBefore(r), s);
    EXPECT_LT(s, l.PrefixBefore(r) + l.CapOf(r));
  }
}

TEST(Assignment, ChunksCoverIntervalExactly) {
  const CapacityLayout l{.p = 5, .quota = 10, .cap_first = 3, .cap_last = 7};
  for (std::int64_t b = 0; b < l.Total(); b += 7) {
    for (std::int64_t e = b; e <= l.Total(); e += 11) {
      const auto chunks = AssignChunks(l, b, e);
      std::int64_t covered = 0;
      int prev_target = -1;
      for (const Chunk& c : chunks) {
        EXPECT_GT(c.count, 0);
        EXPECT_GT(c.target, prev_target);  // strictly increasing targets
        prev_target = c.target;
        covered += c.count;
      }
      EXPECT_EQ(covered, e - b);
    }
  }
}

TEST(Assignment, ChunkSizesRespectCapacities) {
  const CapacityLayout l{.p = 4, .quota = 8, .cap_first = 5, .cap_last = 2};
  const auto chunks = AssignChunks(l, 0, l.Total());
  ASSERT_EQ(chunks.size(), 4u);
  EXPECT_EQ(chunks[0], (Chunk{0, 5}));
  EXPECT_EQ(chunks[1], (Chunk{1, 8}));
  EXPECT_EQ(chunks[2], (Chunk{2, 8}));
  EXPECT_EQ(chunks[3], (Chunk{3, 2}));
}

TEST(Assignment, EveryTargetReceivesExactlyItsCapacity) {
  // Simulate all senders: sender r owns slot interval [r*q, (r+1)*q).
  const CapacityLayout l{.p = 6, .quota = 9, .cap_first = 4, .cap_last = 6};
  std::vector<std::int64_t> received(6, 0);
  const std::int64_t total = l.Total();
  // Split the slot space into arbitrary sender intervals.
  std::int64_t pos = 0;
  std::mt19937_64 rng(3);
  while (pos < total) {
    const std::int64_t len =
        std::min<std::int64_t>(total - pos,
                               1 + static_cast<std::int64_t>(rng() % 13));
    for (const Chunk& c : AssignChunks(l, pos, pos + len)) {
      received[static_cast<std::size_t>(c.target)] += c.count;
    }
    pos += len;
  }
  for (int r = 0; r < 6; ++r) {
    EXPECT_EQ(received[static_cast<std::size_t>(r)], l.CapOf(r)) << r;
  }
}

TEST(Assignment, OverlapWithRegionMatchesBruteForce) {
  const CapacityLayout l{.p = 5, .quota = 7, .cap_first = 2, .cap_last = 5};
  for (int r = 0; r < 5; ++r) {
    for (std::int64_t b = 0; b <= l.Total(); b += 3) {
      for (std::int64_t e = b; e <= l.Total(); e += 5) {
        std::int64_t expect = 0;
        for (std::int64_t s = b; s < e; ++s) {
          if (l.RankOfSlot(s) == r) ++expect;
        }
        EXPECT_EQ(jsort::OverlapWithRegion(l, r, b, e), expect);
      }
    }
  }
}

TEST(Sampling, ReservoirKeyInUnitInterval) {
  std::mt19937_64 rng(1);
  const std::vector<double> data{5, 6, 7};
  for (int i = 0; i < 100; ++i) {
    const auto c = jsort::ReservoirCandidate(data, rng);
    EXPECT_GT(c.first, 0.0);
    EXPECT_LE(c.first, 1.0);
    EXPECT_TRUE(c.second == 5 || c.second == 6 || c.second == 7);
  }
}

TEST(Sampling, ReservoirEmptyLosesToAnyNonEmpty) {
  std::mt19937_64 rng(2);
  const auto empty = jsort::ReservoirCandidate({}, rng);
  const std::vector<double> data{1.0};
  const auto full = jsort::ReservoirCandidate(data, rng);
  EXPECT_LT(empty.first, full.first);
}

TEST(Sampling, LargerLocalCountWinsMoreOften) {
  // key = u^(1/m): a rank with 10x the data should win ~10x as often.
  std::mt19937_64 rng(3);
  const std::vector<double> big(1000, 1.0);
  const std::vector<double> small(100, 2.0);
  int big_wins = 0;
  constexpr int kTrials = 2000;
  for (int i = 0; i < kTrials; ++i) {
    const auto a = jsort::ReservoirCandidate(big, rng);
    const auto b = jsort::ReservoirCandidate(small, rng);
    if (a.first > b.first) ++big_wins;
  }
  const double frac = static_cast<double>(big_wins) / kTrials;
  EXPECT_GT(frac, 0.85);  // expected 10/11 ~ 0.909
  EXPECT_LT(frac, 0.97);
}

TEST(Sampling, MedianOfOddSample) {
  std::vector<double> s{5, 1, 9, 3, 7};
  EXPECT_DOUBLE_EQ(jsort::MedianOf(s), 5.0);
}

TEST(Sampling, TotalSamplesHonoursFloors) {
  jsort::SampleParams sp{.k1 = 2.0, .k2 = 0.0, .k3 = 16.0};
  EXPECT_EQ(sp.TotalSamples(2, 1), 16);        // k3 floor
  EXPECT_GE(sp.TotalSamples(1 << 20, 1), 40);  // k1 * 20
  jsort::SampleParams dense{.k1 = 0.0, .k2 = 1.0, .k3 = 1.0};
  EXPECT_EQ(dense.TotalSamples(4, 100), 100);  // k2 * n/p
}

TEST(Workload, DeterministicAndSized) {
  for (auto kind :
       {jsort::InputKind::kUniform, jsort::InputKind::kGaussian,
        jsort::InputKind::kSortedAsc, jsort::InputKind::kSortedDesc,
        jsort::InputKind::kAllEqual, jsort::InputKind::kFewDistinct,
        jsort::InputKind::kZipf, jsort::InputKind::kBucketKiller}) {
    const auto a = jsort::GenerateInput(kind, 1, 4, 100, 42);
    const auto b = jsort::GenerateInput(kind, 1, 4, 100, 42);
    EXPECT_EQ(a.size(), 100u);
    EXPECT_EQ(a, b) << jsort::InputKindName(kind);
  }
}

TEST(Workload, SortedKindsAreGloballySorted) {
  std::vector<double> all;
  for (int r = 0; r < 4; ++r) {
    const auto part =
        jsort::GenerateInput(jsort::InputKind::kSortedAsc, r, 4, 10, 1);
    all.insert(all.end(), part.begin(), part.end());
  }
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
  all.clear();
  for (int r = 0; r < 4; ++r) {
    const auto part =
        jsort::GenerateInput(jsort::InputKind::kSortedDesc, r, 4, 10, 1);
    all.insert(all.end(), part.begin(), part.end());
  }
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end(),
                             std::greater<double>()));
}

}  // namespace
