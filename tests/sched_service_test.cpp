// The SPMD sort service end to end, on all three split backends: every
// job of a mixed stream sorts correctly on its dynamically allocated
// range, a job's output is byte-exact identical to running its sorter
// standalone on the same range, RBC admissions pay exactly zero split
// time while native MPI admissions pay a positive share, and the whole
// service is deterministic in (policy, seed).
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "sched/service.hpp"
#include "sort/jquick.hpp"
#include "sort/multilevel_sort.hpp"
#include "sort/sample_sort.hpp"
#include "testutil.hpp"

namespace {

using jsort::Backend;
using jsort::sched::Admission;
using jsort::sched::AdmissionPolicy;
using jsort::sched::Algorithm;
using jsort::sched::JobSpec;
using jsort::sched::JobStreamParams;
using jsort::sched::MakeJobStream;
using jsort::sched::RangeAllocator;
using jsort::sched::ServiceConfig;
using jsort::sched::ServiceStats;
using jsort::sched::SortService;
using jsort::sched::Summarize;

constexpr int kRanks = 8;

JobStreamParams SmallMix(int jobs) {
  JobStreamParams p;
  p.jobs = jobs;
  p.mean_interarrival = 400.0;
  p.min_width = 1;
  p.max_width = 4;
  p.min_n = 16;
  p.max_n = 512;
  return p;
}

ServiceStats RunService(int ranks, const std::vector<JobSpec>& jobs,
                        ServiceConfig cfg) {
  SortService service(ranks, jobs, std::move(cfg));
  ServiceStats out;
  testutil::RunRanks(ranks, [&](mpisim::Comm& world) {
    ServiceStats mine = service.Run(world);
    if (world.Rank() == 0) out = std::move(mine);
  });
  return out;
}

class BackendSweep : public ::testing::TestWithParam<Backend> {};

INSTANTIATE_TEST_SUITE_P(Backends, BackendSweep,
                         ::testing::Values(Backend::kRbc, Backend::kMpi,
                                           Backend::kIcomm));

TEST_P(BackendSweep, MixedStreamSortsAndConservesEveryJob) {
  const auto jobs = MakeJobStream(kRanks, SmallMix(12), /*seed=*/31);
  ServiceConfig cfg;
  cfg.backend = GetParam();
  cfg.verify = true;
  const ServiceStats stats = RunService(kRanks, jobs, cfg);
  ASSERT_EQ(stats.jobs.size(), jobs.size());
  for (const auto& r : stats.jobs) {
    EXPECT_TRUE(r.ok) << "job " << r.spec.id << " failed verification";
    EXPECT_EQ(r.elements, r.spec.n_total);
    EXPECT_EQ(r.width, r.last - r.first + 1);
    EXPECT_GE(r.start_vtime, r.spec.arrival_vtime);
    EXPECT_GT(r.completion_vtime, r.start_vtime);
    EXPECT_DOUBLE_EQ(r.latency, r.completion_vtime - r.spec.arrival_vtime);
  }
  EXPECT_GT(stats.makespan, 0.0);
  EXPECT_GT(stats.waves, 0);
  const auto m = Summarize(stats);
  EXPECT_EQ(m.failed, 0);
  EXPECT_GE(m.p99_latency, m.p50_latency);
  EXPECT_GT(m.jobs_per_sec, 0.0);
}

// Cross-run reproducibility. The *scheduling* is a pure function of the
// measured completions (bit-exact determinism of that state machine is
// covered in sched_scheduler_test); the sorters' own virtual times carry
// a small wall-clock-scheduling sensitivity from wildcard-order receives
// (pre-existing; the reason MeasureOnRanks reports medians), so per-job
// times are compared with a tight relative tolerance instead of
// bit-exactness. With an uncontended stream the allocation decisions and
// start times are exactly reproducible: start == arrival, ranges from an
// idle allocator.
TEST_P(BackendSweep, ReproducibleAcrossRuns) {
  auto jobs = MakeJobStream(kRanks, SmallMix(10), /*seed=*/5);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].arrival_vtime = 10000.0 * static_cast<double>(i);
  }
  ServiceConfig cfg;
  cfg.backend = GetParam();
  const ServiceStats a = RunService(kRanks, jobs, cfg);
  const ServiceStats b = RunService(kRanks, jobs, cfg);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  EXPECT_EQ(a.waves, b.waves);
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].first, b.jobs[i].first);
    EXPECT_EQ(a.jobs[i].last, b.jobs[i].last);
    EXPECT_EQ(a.jobs[i].start_vtime, b.jobs[i].start_vtime);  // bit-exact
    EXPECT_DOUBLE_EQ(a.jobs[i].start_vtime, a.jobs[i].spec.arrival_vtime);
    EXPECT_EQ(a.jobs[i].split_vtime, b.jobs[i].split_vtime);
    EXPECT_NEAR(a.jobs[i].completion_vtime, b.jobs[i].completion_vtime,
                0.05 * a.jobs[i].latency + 50.0);
  }
}

TEST(SortServiceSplits, RbcIsFreeNativeMpiPays) {
  const auto jobs = MakeJobStream(kRanks, SmallMix(10), /*seed=*/77);
  ServiceConfig cfg;
  cfg.backend = Backend::kRbc;
  const auto rbc = Summarize(RunService(kRanks, jobs, cfg));
  EXPECT_DOUBLE_EQ(rbc.split_vtime_total, 0.0);
  EXPECT_DOUBLE_EQ(rbc.split_share, 0.0);

  cfg.backend = Backend::kMpi;
  const ServiceStats mpi_stats = RunService(kRanks, jobs, cfg);
  const auto mpi = Summarize(mpi_stats);
  EXPECT_GT(mpi.split_vtime_total, 0.0);
  EXPECT_GT(mpi.split_share, 0.0);
  for (const auto& r : mpi_stats.jobs) {
    if (r.width >= 2) {
      EXPECT_GT(r.split_vtime, 0.0)
          << "native split of width " << r.width << " cost nothing";
    }
  }
}

// The service must produce, per job, exactly the bytes the standalone
// sorter produces on the same world ranks with the same inputs: the
// scheduler adds orchestration, never data perturbation.
TEST(SortServiceEquivalence, ByteExactVsStandaloneSorters) {
  std::vector<JobSpec> jobs;
  const Algorithm algos[] = {Algorithm::kJQuick, Algorithm::kSampleSort,
                             Algorithm::kMultilevel};
  for (int i = 0; i < 6; ++i) {
    JobSpec s;
    s.id = i;
    s.algorithm = algos[i % 3];
    s.input = i % 2 == 0 ? jsort::InputKind::kUniform
                         : jsort::InputKind::kZipf;
    s.width = 1 << (i % 3);  // widths 1, 2, 4
    s.n_total = 96 + 32 * i; // not divisible by width: exercises padding
    s.arrival_vtime = 40.0 * i;
    s.seed = 1000u + static_cast<unsigned>(i);
    jobs.push_back(s);
  }

  struct Captured {
    Admission admission;
    std::map<int, std::vector<double>> by_member;
  };
  std::map<int, Captured> captured;
  std::mutex mu;

  ServiceConfig cfg;
  cfg.backend = Backend::kRbc;
  cfg.verify = true;
  cfg.on_job_output = [&](const Admission& a, int member,
                          std::span<const double> out) {
    std::lock_guard<std::mutex> lock(mu);
    Captured& c = captured[a.spec.id];
    c.admission = a;
    c.by_member[member].assign(out.begin(), out.end());
  };
  const ServiceStats stats = RunService(kRanks, jobs, cfg);
  ASSERT_EQ(captured.size(), jobs.size());
  for (const auto& r : stats.jobs) EXPECT_TRUE(r.ok);

  // Re-run each job standalone: same world size, same rank range (split
  // off the world transport exactly as the service does), same seeds.
  for (const auto& [id, cap] : captured) {
    const Admission& a = cap.admission;
    std::map<int, std::vector<double>> standalone;
    std::mutex smu;
    testutil::RunRanks(kRanks, [&](mpisim::Comm& world) {
      const int me = world.Rank();
      if (me < a.first || me > a.last) return;
      auto root = jsort::MakeTransport(Backend::kRbc, world);
      auto sub = root->Split(a.first, a.last);
      const int jr = sub->Rank();
      const std::int64_t quota =
          a.spec.n_total / a.width +
          (jr < a.spec.n_total % a.width ? 1 : 0);
      auto input =
          jsort::GenerateInput(a.spec.input, jr, a.width, quota, a.spec.seed);
      std::vector<double> sorted;
      switch (a.spec.algorithm) {
        case Algorithm::kJQuick: {
          jsort::JQuickConfig c;
          c.seed = a.spec.seed;
          sorted = jsort::JQuickSortPadded(sub, std::move(input), c);
          break;
        }
        case Algorithm::kSampleSort: {
          jsort::SampleSortConfig c;
          c.seed = a.spec.seed;
          sorted = jsort::SampleSort(sub, std::move(input), c);
          break;
        }
        case Algorithm::kMultilevel: {
          jsort::MultilevelConfig c;
          c.seed = a.spec.seed;
          sorted = jsort::MultilevelSampleSort(sub, std::move(input), c);
          break;
        }
      }
      std::lock_guard<std::mutex> lock(smu);
      standalone[jr] = std::move(sorted);
    });
    ASSERT_EQ(standalone.size(), cap.by_member.size()) << "job " << id;
    for (const auto& [member, expect] : standalone) {
      const auto it = cap.by_member.find(member);
      ASSERT_NE(it, cap.by_member.end()) << "job " << id;
      ASSERT_EQ(it->second.size(), expect.size())
          << "job " << id << " member " << member;
      if (!expect.empty()) {
        EXPECT_EQ(std::memcmp(it->second.data(), expect.data(),
                              expect.size() * sizeof(double)),
                  0)
            << "job " << id << " member " << member
            << ": output differs from the standalone sorter";
      }
    }
  }
}

TEST(SortServicePolicies, SjfAdaptiveAndBuddyAllComplete) {
  JobStreamParams params = SmallMix(14);
  params.mean_interarrival = 30.0;  // load the queue
  const auto jobs = MakeJobStream(kRanks, params, /*seed=*/9);
  for (const AdmissionPolicy policy :
       {AdmissionPolicy::kSjf, AdmissionPolicy::kAdaptiveWidth}) {
    ServiceConfig cfg;
    cfg.verify = true;
    cfg.scheduler.policy = policy;
    const auto m = Summarize(RunService(kRanks, jobs, cfg));
    EXPECT_EQ(m.failed, 0) << jsort::sched::PolicyName(policy);
    EXPECT_EQ(m.jobs, 14);
  }
  ServiceConfig cfg;
  cfg.verify = true;
  cfg.scheduler.allocation = RangeAllocator::Policy::kBuddy;
  const auto m = Summarize(RunService(kRanks, jobs, cfg));
  EXPECT_EQ(m.failed, 0);
}

TEST(SortServiceEdges, WidthOneAndEmptyStream) {
  {
    const ServiceStats stats = RunService(4, {}, {});
    EXPECT_TRUE(stats.jobs.empty());
    EXPECT_EQ(stats.waves, 0);
  }
  JobSpec s;
  s.id = 0;
  s.width = 1;
  s.n_total = 64;
  s.arrival_vtime = 0.0;
  s.seed = 3;
  ServiceConfig cfg;
  cfg.verify = true;
  const ServiceStats stats = RunService(4, {s}, cfg);
  ASSERT_EQ(stats.jobs.size(), 1u);
  EXPECT_TRUE(stats.jobs[0].ok);
  EXPECT_EQ(stats.jobs[0].width, 1);
  EXPECT_EQ(stats.jobs[0].elements, 64);
  EXPECT_DOUBLE_EQ(stats.jobs[0].split_vtime, 0.0);  // RBC
  EXPECT_GT(stats.jobs[0].completion_vtime, 0.0);    // charged local sort
}

}  // namespace
