// rbc::Alltoall / Alltoallv / Ialltoall / Ialltoallv: uniform and uneven
// counts (including zero-count ranks), randomized equivalence against
// mpisim::Alltoallv, sub-ranges, overlapping sub-ranges, strided ranges,
// and nonblocking completion via rbc::Test / rbc::Wait.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "testutil.hpp"

namespace {

using rbc::Datatype;
using testutil::RunRanks;
using testutil::RunRbc;

/// Deterministic uneven count of elements rank i sends to rank j; every
/// rank can evaluate any entry, so recvcounts need no extra exchange.
int CountOf(std::uint64_t seed, int i, int j) {
  std::mt19937_64 g(seed ^ (static_cast<std::uint64_t>(i) << 20) ^
                    (static_cast<std::uint64_t>(j) + 1));
  return static_cast<int>(g() % 5);  // 0..4 elements, zeros included
}

/// Element m of the block rank i sends to rank j.
double ElemOf(int i, int j, int m) {
  return i * 1.0e6 + j * 1.0e3 + m;
}

struct VectorPattern {
  std::vector<int> sendcounts, sdispls, recvcounts, rdispls;
  std::vector<double> send;
  int recv_total = 0;
};

/// Builds the uneven all-to-all pattern of rank `me` in a group of p.
VectorPattern BuildPattern(std::uint64_t seed, int me, int p) {
  VectorPattern pat;
  pat.sendcounts.resize(static_cast<std::size_t>(p));
  pat.sdispls.resize(static_cast<std::size_t>(p));
  pat.recvcounts.resize(static_cast<std::size_t>(p));
  pat.rdispls.resize(static_cast<std::size_t>(p));
  int s = 0, r = 0;
  for (int j = 0; j < p; ++j) {
    pat.sendcounts[static_cast<std::size_t>(j)] = CountOf(seed, me, j);
    pat.sdispls[static_cast<std::size_t>(j)] = s;
    s += pat.sendcounts[static_cast<std::size_t>(j)];
    pat.recvcounts[static_cast<std::size_t>(j)] = CountOf(seed, j, me);
    pat.rdispls[static_cast<std::size_t>(j)] = r;
    r += pat.recvcounts[static_cast<std::size_t>(j)];
  }
  pat.recv_total = r;
  pat.send.resize(static_cast<std::size_t>(s));
  for (int j = 0; j < p; ++j) {
    for (int m = 0; m < pat.sendcounts[static_cast<std::size_t>(j)]; ++m) {
      pat.send[static_cast<std::size_t>(
          pat.sdispls[static_cast<std::size_t>(j)] + m)] = ElemOf(me, j, m);
    }
  }
  return pat;
}

void ExpectReceived(const VectorPattern& pat, const std::vector<double>& got,
                    int me, int p) {
  for (int j = 0; j < p; ++j) {
    for (int m = 0; m < pat.recvcounts[static_cast<std::size_t>(j)]; ++m) {
      EXPECT_DOUBLE_EQ(got[static_cast<std::size_t>(
                           pat.rdispls[static_cast<std::size_t>(j)] + m)],
                       ElemOf(j, me, m))
          << "from rank " << j << " element " << m;
    }
  }
}

class AlltoallSweep : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(ProcessCounts, AlltoallSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 13, 16));

TEST_P(AlltoallSweep, UniformBlocksLandByRank) {
  const int p = GetParam();
  RunRbc(p, [p](rbc::Comm& rw) {
    const int me = rw.Rank();
    std::vector<double> send(static_cast<std::size_t>(2 * p));
    for (int j = 0; j < p; ++j) {
      send[static_cast<std::size_t>(2 * j)] = ElemOf(me, j, 0);
      send[static_cast<std::size_t>(2 * j + 1)] = ElemOf(me, j, 1);
    }
    std::vector<double> recv(static_cast<std::size_t>(2 * p), -1.0);
    rbc::Alltoall(send.data(), 2, Datatype::kFloat64, recv.data(), rw);
    for (int j = 0; j < p; ++j) {
      EXPECT_DOUBLE_EQ(recv[static_cast<std::size_t>(2 * j)],
                       ElemOf(j, me, 0));
      EXPECT_DOUBLE_EQ(recv[static_cast<std::size_t>(2 * j + 1)],
                       ElemOf(j, me, 1));
    }
  });
}

// Acceptance: rbc::Alltoallv produces identical output to mpisim::Alltoallv
// on randomized uneven counts across comm sizes 1..16.
TEST(Alltoallv, MatchesMpisimOnRandomizedUnevenCounts) {
  for (int p = 1; p <= 16; ++p) {
    RunRanks(p, [p](mpisim::Comm& world) {
      const std::uint64_t seed = 0xA110A11u + static_cast<std::uint64_t>(p);
      const int me = world.Rank();
      const VectorPattern pat = BuildPattern(seed, me, p);

      std::vector<double> via_mpi(static_cast<std::size_t>(pat.recv_total),
                                  -1.0);
      mpisim::Alltoallv(pat.send.data(), pat.sendcounts, pat.sdispls,
                        mpisim::Datatype::kFloat64, via_mpi.data(),
                        pat.recvcounts, pat.rdispls, world);

      rbc::Comm rw;
      rbc::Create_RBC_Comm(world, &rw);
      std::vector<double> via_rbc(static_cast<std::size_t>(pat.recv_total),
                                  -2.0);
      rbc::Alltoallv(pat.send.data(), pat.sendcounts, pat.sdispls,
                     Datatype::kFloat64, via_rbc.data(), pat.recvcounts,
                     pat.rdispls, rw);

      EXPECT_EQ(via_rbc, via_mpi) << "p=" << p << " rank=" << me;
      ExpectReceived(pat, via_rbc, me, p);
    });
  }
}

TEST(Alltoallv, ZeroCountRanksParticipate) {
  // Odd ranks contribute nothing and receive nothing; even ranks exchange
  // one element with every even rank.
  RunRbc(7, [](rbc::Comm& rw) {
    const int p = rw.Size();
    const int me = rw.Rank();
    const bool active = me % 2 == 0;
    std::vector<int> sendcounts(static_cast<std::size_t>(p), 0),
        sdispls(static_cast<std::size_t>(p), 0),
        recvcounts(static_cast<std::size_t>(p), 0),
        rdispls(static_cast<std::size_t>(p), 0);
    std::vector<double> send, recv;
    int s = 0;
    for (int j = 0; j < p; ++j) {
      const bool pair_active = active && j % 2 == 0;
      sendcounts[static_cast<std::size_t>(j)] = pair_active ? 1 : 0;
      recvcounts[static_cast<std::size_t>(j)] = pair_active ? 1 : 0;
      sdispls[static_cast<std::size_t>(j)] = s;
      rdispls[static_cast<std::size_t>(j)] = s;
      if (pair_active) {
        send.push_back(ElemOf(me, j, 0));
        ++s;
      }
    }
    recv.assign(static_cast<std::size_t>(s), -1.0);
    rbc::Alltoallv(send.data(), sendcounts, sdispls, Datatype::kFloat64,
                   recv.data(), recvcounts, rdispls, rw);
    int idx = 0;
    for (int j = 0; j < p; ++j) {
      if (recvcounts[static_cast<std::size_t>(j)] == 0) continue;
      EXPECT_DOUBLE_EQ(recv[static_cast<std::size_t>(idx++)],
                       ElemOf(j, me, 0));
    }
  });
}

TEST(Alltoallv, WorksOnSubRange) {
  RunRanks(8, [](mpisim::Comm& world) {
    rbc::Comm rw, mid;
    rbc::Create_RBC_Comm(world, &rw);
    rbc::Split_RBC_Comm(rw, 2, 6, &mid);
    if (mid.Rank() < 0) return;
    const int p = mid.Size();
    const int me = mid.Rank();
    const VectorPattern pat = BuildPattern(0xBEEF, me, p);
    std::vector<double> recv(static_cast<std::size_t>(pat.recv_total), -1.0);
    rbc::Alltoallv(pat.send.data(), pat.sendcounts, pat.sdispls,
                   Datatype::kFloat64, recv.data(), pat.recvcounts,
                   pat.rdispls, mid);
    ExpectReceived(pat, recv, me, p);
  });
}

TEST(Alltoallv, StridedRangeUsesEveryOtherRank) {
  RunRanks(8, [](mpisim::Comm& world) {
    rbc::Comm rw, even;
    rbc::Create_RBC_Comm(world, &rw);
    rbc::Split_RBC_Comm_Strided(rw, 0, 7, 2, &even);
    if (even.Rank() < 0) return;
    const int p = even.Size();
    const int me = even.Rank();
    std::vector<double> send(static_cast<std::size_t>(p)),
        recv(static_cast<std::size_t>(p), -1.0);
    for (int j = 0; j < p; ++j) {
      send[static_cast<std::size_t>(j)] = ElemOf(me, j, 0);
    }
    rbc::Alltoall(send.data(), 1, Datatype::kFloat64, recv.data(), even);
    for (int j = 0; j < p; ++j) {
      EXPECT_DOUBLE_EQ(recv[static_cast<std::size_t>(j)], ElemOf(j, me, 0));
    }
  });
}

TEST(Ialltoallv, OverlappingSubRangesRunSimultaneously) {
  // Two sub-ranges overlapping in exactly one process (rank 3) run their
  // exchanges at the same time on distinct default tags; the overlap rank
  // progresses both requests together.
  RunRanks(7, [](mpisim::Comm& world) {
    rbc::Comm rw, left, right;
    rbc::Create_RBC_Comm(world, &rw);
    rbc::Split_RBC_Comm(rw, 0, 3, &left);
    rbc::Split_RBC_Comm(rw, 3, 6, &right);

    struct Op {
      VectorPattern pat;
      std::vector<double> recv;
      rbc::Request req;
      int me = -1;
      int p = 0;
    };
    Op lop, rop;
    if (left.Rank() >= 0) {
      lop.me = left.Rank();
      lop.p = left.Size();
      lop.pat = BuildPattern(0x1EF7, lop.me, lop.p);
      lop.recv.assign(static_cast<std::size_t>(lop.pat.recv_total), -1.0);
      rbc::Ialltoallv(lop.pat.send.data(), lop.pat.sendcounts,
                      lop.pat.sdispls, Datatype::kFloat64, lop.recv.data(),
                      lop.pat.recvcounts, lop.pat.rdispls, left, &lop.req,
                      rbc::RBC_IALLTOALLV_TAG);
    }
    if (right.Rank() >= 0) {
      rop.me = right.Rank();
      rop.p = right.Size();
      rop.pat = BuildPattern(0x2167, rop.me, rop.p);
      rop.recv.assign(static_cast<std::size_t>(rop.pat.recv_total), -1.0);
      rbc::Ialltoallv(rop.pat.send.data(), rop.pat.sendcounts,
                      rop.pat.sdispls, Datatype::kFloat64, rop.recv.data(),
                      rop.pat.recvcounts, rop.pat.rdispls, right, &rop.req,
                      rbc::RBC_IALLTOALLV_TAG + 1);
    }
    rbc::Wait(&lop.req);
    rbc::Wait(&rop.req);
    if (lop.me >= 0) ExpectReceived(lop.pat, lop.recv, lop.me, lop.p);
    if (rop.me >= 0) ExpectReceived(rop.pat, rop.recv, rop.me, rop.p);
  });
}

TEST(Ialltoall, CompletesViaTestPolling) {
  RunRbc(5, [](rbc::Comm& rw) {
    const int p = rw.Size();
    const int me = rw.Rank();
    std::vector<double> send(static_cast<std::size_t>(p)),
        recv(static_cast<std::size_t>(p), -1.0);
    for (int j = 0; j < p; ++j) {
      send[static_cast<std::size_t>(j)] = ElemOf(me, j, 0);
    }
    rbc::Request req;
    rbc::Ialltoall(send.data(), 1, Datatype::kFloat64, recv.data(), rw,
                   &req);
    int flag = 0;
    while (flag == 0) {
      rbc::Test(&req, &flag);
    }
    // Completion is sticky.
    rbc::Test(&req, &flag);
    EXPECT_EQ(flag, 1);
    for (int j = 0; j < p; ++j) {
      EXPECT_DOUBLE_EQ(recv[static_cast<std::size_t>(j)], ElemOf(j, me, 0));
    }
  });
}

TEST(Alltoallv, RejectsWrongArraySizes) {
  RunRbc(3, [](rbc::Comm& rw) {
    std::vector<int> short_counts(2, 0), displs(3, 0), counts(3, 0);
    double buf = 0;
    EXPECT_THROW(rbc::Alltoallv(&buf, short_counts, displs,
                                Datatype::kFloat64, &buf, counts, displs,
                                rw),
                 mpisim::UsageError);
  });
}

}  // namespace
