// Units for the topo subsystem's data layer and its integration seams:
// the Topology descriptor, the two-level CostModel (flat defaults must
// stay bit-identical to the pre-two-level arithmetic), the runtime's node
// queries and inter-node traffic counters, vnode derivation, the
// hierarchical collectives against their flat counterparts on ragged
// machines, the sanitizer's leader-divergence detection, node-affine
// range allocation, and the topology-derived multilevel branching factor.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "mpisim/mpisim.hpp"
#include "sched/allocator.hpp"
#include "sort/multilevel_sort.hpp"
#include "testutil.hpp"
#include "topo/hier_collectives.hpp"
#include "topo/topology.hpp"

namespace {

using jsort::sched::Block;
using jsort::sched::RangeAllocator;
using mpisim::CollectiveMismatchError;
using mpisim::Datatype;
using testutil::PerRank;
using testutil::RunRanks;
using topo::Topology;

TEST(Topology, FlatAndEmpty) {
  const Topology flat = Topology::Flat();
  EXPECT_TRUE(flat.Empty());
  EXPECT_EQ(flat.NodeCount(), 0);
  EXPECT_EQ(flat.TotalRanks(), 0);
  EXPECT_EQ(flat.NodeOf(0), 0);
  EXPECT_EQ(flat.NodeOf(99), 0);  // everything is node 0 on a flat machine
  EXPECT_EQ(flat.Validate(16), "");
}

TEST(Topology, UniformCoversWithRemainder) {
  const Topology t = Topology::Uniform(10, 4);  // 4 + 4 + 2
  EXPECT_EQ(t.NodeCount(), 3);
  EXPECT_EQ(t.TotalRanks(), 10);
  EXPECT_EQ(t.NodeSize(2), 2);
  EXPECT_EQ(t.NodeFirst(0), 0);
  EXPECT_EQ(t.NodeFirst(1), 4);
  EXPECT_EQ(t.NodeFirst(2), 8);
  EXPECT_EQ(t.Validate(10), "");
  EXPECT_NE(t.Validate(11), "");  // covers 10 ranks, world has 11
  EXPECT_TRUE(Topology::Uniform(8, 0).Empty());  // nonsense size -> flat
}

TEST(Topology, NodeOfBinarySearchOnRaggedSizes) {
  const Topology t = Topology::OfNodeSizes({3, 1, 4});
  const int expect[] = {0, 0, 0, 1, 2, 2, 2, 2};
  for (int r = 0; r < 8; ++r) {
    EXPECT_EQ(t.NodeOf(r), expect[r]) << "rank " << r;
  }
  EXPECT_EQ(t.NodeSizes(), (std::vector<int>{3, 1, 4}));
  EXPECT_NE(Topology::OfNodeSizes({2, 0, 2}).Validate(4), "");  // size 0
}

TEST(CostModel, FlatDefaultsAreBitIdentical) {
  const mpisim::CostModel m;
  EXPECT_FALSE(m.Hierarchical());
  for (std::uint64_t bytes : {0ull, 8ull, 123ull, 1ull << 20}) {
    // Same expression, so bit-for-bit equal -- the compatibility contract.
    EXPECT_EQ(m.MessageCost(bytes, false), m.MessageCost(bytes));
    EXPECT_EQ(m.MessageCost(bytes, true), m.MessageCost(bytes));
  }
  EXPECT_EQ(m.AlphaFor(true), m.alpha);
  EXPECT_EQ(m.BetaFor(false), m.beta);
}

TEST(CostModel, PartialOverridesInheritFlatParameters) {
  mpisim::CostModel m;
  m.inter_alpha = 250.0;  // only one override set
  EXPECT_TRUE(m.Hierarchical());
  EXPECT_EQ(m.AlphaFor(true), 250.0);
  EXPECT_EQ(m.AlphaFor(false), m.alpha);   // unset -> inherit flat
  EXPECT_EQ(m.BetaFor(true), m.beta);      // unset -> inherit flat
  EXPECT_EQ(m.MessageCost(80, true), 250.0 + m.beta * 10.0);
  EXPECT_EQ(m.MessageCost(80, false), m.alpha + m.beta * 10.0);
}

TEST(Runtime, NodeQueriesAndInterCountersFollowTopology) {
  mpisim::Runtime::Options o;
  o.num_ranks = 4;
  o.topology = Topology::Uniform(4, 2);
  PerRank<mpisim::Stats> stats(4);
  RunRanks(o, [&](mpisim::Comm& world, mpisim::Runtime& rt) {
    EXPECT_EQ(rt.NodeOf(0), 0);
    EXPECT_EQ(rt.NodeOf(3), 1);
    EXPECT_TRUE(rt.SameNode(0, 1));
    EXPECT_FALSE(rt.SameNode(1, 2));
    double x = 1.0;
    switch (world.Rank()) {
      case 0:  // one intra-node and one inter-node message
        mpisim::Send(&x, 1, Datatype::kFloat64, 1, 7, world);
        mpisim::Send(&x, 1, Datatype::kFloat64, 3, 7, world);
        break;
      case 1:
        mpisim::Recv(&x, 1, Datatype::kFloat64, 0, 7, world);
        break;
      case 3:
        mpisim::Recv(&x, 1, Datatype::kFloat64, 0, 7, world);
        break;
      default:
        break;
    }
    stats.Set(world.Rank(), mpisim::Ctx().stats);
  });
  EXPECT_EQ(stats[0].messages_sent, 2u);
  EXPECT_EQ(stats[0].inter_messages_sent, 1u);  // only the 0 -> 3 send
  EXPECT_EQ(stats[0].inter_bytes_sent, 8u);
  EXPECT_EQ(stats[3].inter_messages_received, 1u);
  EXPECT_EQ(stats[1].inter_messages_received, 0u);
}

TEST(Runtime, InterCountersStayZeroOnFlatTopology) {
  PerRank<mpisim::Stats> stats(4);
  RunRanks(4, [&](mpisim::Comm& world) {
    double x = static_cast<double>(world.Rank());
    double sum = 0.0;
    mpisim::Allreduce(&x, &sum, 1, Datatype::kFloat64,
                      mpisim::ReduceOp::kSum, world);
    EXPECT_EQ(sum, 6.0);
    stats.Set(world.Rank(), mpisim::Ctx().stats);
  });
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(stats[r].inter_messages_sent, 0u) << "rank " << r;
    EXPECT_EQ(stats[r].inter_bytes_received, 0u) << "rank " << r;
  }
}

TEST(VnodeMap, RaggedRunsWithSingleRankNode) {
  const int node_of[] = {0, 0, 0, 1, 2, 2, 2, 2};
  const topo::VnodeMap vn = topo::VnodesOf(node_of);
  EXPECT_EQ(vn.Count(), 3);
  EXPECT_EQ(vn.size, (std::vector<int>{3, 1, 4}));
  EXPECT_EQ(vn.Leaders(), (std::vector<int>{0, 3, 4}));
  EXPECT_TRUE(vn.IsLeader(3));  // the 1-rank node leads itself
  EXPECT_FALSE(vn.IsLeader(5));
  EXPECT_EQ(vn.LeaderOf(vn.vnode_of[6]), 4);
}

TEST(VnodeMap, NonContiguousNodeIdSplitsIntoTwoVnodes) {
  // A node id re-appearing after a gap must form a second, independent
  // vnode -- every vnode stays a contiguous rank range.
  const int node_of[] = {0, 1, 1, 0};
  const topo::VnodeMap vn = topo::VnodesOf(node_of);
  EXPECT_EQ(vn.Count(), 3);
  EXPECT_EQ(vn.Leaders(), (std::vector<int>{0, 1, 3}));
  EXPECT_EQ(vn.vnode_of[3], 2);
}

/// Runtime options with a ragged three-node machine (includes a 1-rank
/// node) and a two-level cost model.
mpisim::Runtime::Options RaggedOpts() {
  mpisim::Runtime::Options o;
  o.num_ranks = 8;
  o.topology = Topology::OfNodeSizes({3, 1, 4});
  o.cost.intra_alpha = o.cost.alpha;
  o.cost.intra_beta = o.cost.beta;
  o.cost.inter_alpha = 25.0 * o.cost.alpha;
  o.cost.inter_beta = 4.0 * o.cost.beta;
  return o;
}

TEST(HierCollectives, MatchFlatCounterpartsOnRaggedTopology) {
  RunRanks(RaggedOpts(), [](mpisim::Comm& world, mpisim::Runtime&) {
    rbc::Comm comm;
    rbc::Create_RBC_Comm(world, &comm);
    const int p = comm.Size();
    const int me = comm.Rank();

    // Bcast from a non-leader root inside the big node.
    double b = me == 5 ? 17.5 : -1.0;
    topo::HierBcast(&b, 1, rbc::Datatype::kFloat64, /*root=*/5, comm);
    EXPECT_EQ(b, 17.5);

    // Allreduce (sum) against the closed form.
    double x = static_cast<double>(me + 1);
    double sum = 0.0;
    topo::HierAllreduce(&x, &sum, 1, rbc::Datatype::kFloat64,
                        rbc::ReduceOp::kSum, comm);
    EXPECT_EQ(sum, 36.0);

    // Gatherv with ragged counts, root on the 1-rank node, against the
    // flat rbc::Gatherv on identical inputs.
    const int root = 3;
    const int mine = 1 + (me % 3);
    std::vector<double> send(static_cast<std::size_t>(mine));
    for (int i = 0; i < mine; ++i) {
      send[static_cast<std::size_t>(i)] = me * 10.0 + i;
    }
    std::vector<int> counts(static_cast<std::size_t>(p));
    std::vector<int> displs(static_cast<std::size_t>(p), 0);
    int total = 0;
    for (int r = 0; r < p; ++r) {
      counts[static_cast<std::size_t>(r)] = 1 + (r % 3);
      displs[static_cast<std::size_t>(r)] = total;
      total += counts[static_cast<std::size_t>(r)];
    }
    std::vector<double> flat_out(static_cast<std::size_t>(total), -1.0);
    std::vector<double> hier_out(static_cast<std::size_t>(total), -2.0);
    rbc::Gatherv(send.data(), mine, rbc::Datatype::kFloat64, flat_out.data(),
                 counts, displs, root, comm);
    topo::HierGatherv(send.data(), mine, rbc::Datatype::kFloat64,
                      hier_out.data(), counts, displs, root, comm);
    if (me == root) {
      EXPECT_EQ(flat_out, hier_out);
    }
  });
}

TEST(HierCollectives, SingleNodeDegenerateStillCorrect) {
  mpisim::Runtime::Options o;
  o.num_ranks = 4;
  o.topology = Topology::OfNodeSizes({4});  // one node: all phases intra
  RunRanks(o, [](mpisim::Comm& world, mpisim::Runtime&) {
    rbc::Comm comm;
    rbc::Create_RBC_Comm(world, &comm);
    double x = static_cast<double>(comm.Rank());
    double sum = -1.0;
    topo::HierAllreduce(&x, &sum, 1, rbc::Datatype::kFloat64,
                        rbc::ReduceOp::kSum, comm);
    EXPECT_EQ(sum, 6.0);
  });
}

TEST(Sanitizer, HierLeaderDivergenceCaught) {
  // Rank 2 derives a different machine view (every rank its own node), so
  // its elected leader set disagrees with everyone else's. The sanitizer
  // must flag the divergence at collective entry instead of letting the
  // leader phase deadlock.
  mpisim::Runtime::Options o;
  o.num_ranks = 8;
  o.topology = Topology::Uniform(8, 4);
  o.sanitize_collectives = true;
  o.deadlock_timeout = std::chrono::milliseconds(5000);
  mpisim::Runtime rt(o);
  bool caught = false;
  std::string what;
  try {
    rt.Run([](mpisim::Comm& world) {
      rbc::Comm comm;
      rbc::Create_RBC_Comm(world, &comm);
      double x = 1.0;
      if (world.Rank() == 2) {
        std::vector<int> own_node(8);
        for (int r = 0; r < 8; ++r) own_node[static_cast<std::size_t>(r)] = r;
        const topo::VnodeMap diverged = topo::VnodesOf(own_node);
        topo::HierBcast(&x, 1, rbc::Datatype::kFloat64, 0, comm, &diverged);
      } else {
        topo::HierBcast(&x, 1, rbc::Datatype::kFloat64, 0, comm);
      }
    });
  } catch (const CollectiveMismatchError& e) {
    caught = true;
    what = e.what();
    EXPECT_TRUE(e.rank_a() == 2 || e.rank_b() == 2) << what;
  }
  EXPECT_TRUE(caught) << "leader divergence not detected";
  EXPECT_NE(what.find("leader"), std::string::npos) << what;
}

TEST(RangeAllocator, NodeAffinePlacementAvoidsStraddling) {
  RangeAllocator a(16, RangeAllocator::Policy::kFirstFit,
                   Topology::Uniform(16, 4));
  EXPECT_TRUE(a.NodeAffine());
  const Block small = *a.Allocate(2);  // [0,1]: zero cuts, lowest start
  EXPECT_EQ(small, (Block{0, 1}));
  // Plain first fit would place the 4-wide block at 2, straddling the
  // node boundary at 4; the node-affine score moves it to the node start.
  const Block aligned = *a.Allocate(4);
  EXPECT_EQ(aligned, (Block{4, 7}));
  EXPECT_EQ(a.CrossNodeCuts(aligned), 0);
  EXPECT_EQ(a.CrossNodeCuts(Block{2, 5}), 1);
  EXPECT_EQ(a.CrossNodeCuts(Block{2, 9}), 2);
  // A block wider than a node must still be served (it pays cuts).
  const Block wide = *a.Allocate(8);
  EXPECT_EQ(wide, (Block{8, 15}));
  a.Release(small);
  a.Release(aligned);
  a.Release(wide);
  EXPECT_TRUE(a.AllFree());
  EXPECT_EQ(a.LargestFreeRun(), 16);
}

TEST(RangeAllocator, FlatAndSingleNodeReproducePlainFirstFit) {
  RangeAllocator plain(16);
  RangeAllocator flat(16, RangeAllocator::Policy::kFirstFit,
                      Topology::Flat());
  RangeAllocator one(16, RangeAllocator::Policy::kFirstFit,
                     Topology::OfNodeSizes({16}));
  EXPECT_FALSE(flat.NodeAffine());
  EXPECT_FALSE(one.NodeAffine());
  for (int w : {2, 4, 3, 1}) {
    const auto bp = plain.Allocate(w);
    const auto bf = flat.Allocate(w);
    const auto bo = one.Allocate(w);
    ASSERT_TRUE(bp && bf && bo);
    EXPECT_EQ(*bp, *bf);
    EXPECT_EQ(*bp, *bo);
  }
}

TEST(RangeAllocator, BuddyPlacementUnchangedByTopology) {
  RangeAllocator plain(16, RangeAllocator::Policy::kBuddy);
  RangeAllocator topo_buddy(16, RangeAllocator::Policy::kBuddy,
                            Topology::Uniform(16, 4));
  for (int w : {2, 4, 3, 4}) {
    const auto bp = plain.Allocate(w);
    const auto bt = topo_buddy.Allocate(w);
    ASSERT_TRUE(bp.has_value());
    ASSERT_TRUE(bt.has_value());
    EXPECT_EQ(*bp, *bt) << "width " << w;
  }
}

/// Runs MultilevelSampleSort on 8 ranks under `opts` and returns rank 0's
/// observed level count for branching factor `k`.
int LevelsWith(mpisim::Runtime::Options opts, int k) {
  PerRank<int> levels(8);
  RunRanks(std::move(opts), [&](mpisim::Comm& world, mpisim::Runtime&) {
    auto tr = jsort::MakeMpiTransport(world);
    std::mt19937_64 rng(77 + static_cast<std::uint64_t>(world.Rank()));
    std::vector<double> local(64);
    for (double& v : local) {
      v = static_cast<double>(rng() % 100000);
    }
    jsort::MultilevelConfig cfg;
    cfg.k = k;
    jsort::MultilevelStats st;
    const auto out =
        jsort::MultilevelSampleSort(tr, std::move(local), cfg, &st);
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
    levels.Set(world.Rank(), st.levels);
  });
  return levels[0];
}

TEST(MultilevelConfig, ZeroBranchingFactorIsTopologyDerived) {
  // Two-level model over 2 nodes: k=0 must behave like k=2 (one group
  // per node).
  mpisim::Runtime::Options two_level;
  two_level.num_ranks = 8;
  two_level.topology = Topology::Uniform(8, 4);
  two_level.cost.intra_alpha = two_level.cost.alpha;
  two_level.cost.inter_alpha = 25.0 * two_level.cost.alpha;
  EXPECT_EQ(LevelsWith(two_level, 0), LevelsWith(two_level, 2));

  // Flat model: k=0 falls back to the default branching factor 4.
  mpisim::Runtime::Options flat;
  flat.num_ranks = 8;
  EXPECT_EQ(LevelsWith(flat, 0), LevelsWith(flat, 4));
}

}  // namespace
