// DistributedTopK on all three split backends and both routes: the
// result is exactly the k globally smallest elements sorted ascending on
// the root, ties are apportioned to exactly k, k >= n_total degrades to
// "everything", and both routes agree element for element.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "query/topk.hpp"
#include "sort/checks.hpp"
#include "sort/workload.hpp"
#include "testutil.hpp"

namespace {

using jsort::Backend;
using jsort::InputKind;
using jsort::query::DistributedTopK;
using jsort::query::TopKConfig;
using jsort::query::TopKRoute;
using jsort::query::TopKStats;
using testutil::PerRank;
using testutil::RunRanks;

std::vector<double> Concat(InputKind kind, int p, std::int64_t per_rank,
                           std::uint64_t seed) {
  std::vector<double> all;
  for (int r = 0; r < p; ++r) {
    const auto slice = jsort::GenerateInput(kind, r, p, per_rank, seed);
    all.insert(all.end(), slice.begin(), slice.end());
  }
  return all;
}

struct SweepCase {
  Backend backend;
  TopKRoute route;
};

class TopKSweep : public ::testing::TestWithParam<SweepCase> {};

INSTANTIATE_TEST_SUITE_P(
    BackendsAndRoutes, TopKSweep,
    ::testing::Values(SweepCase{Backend::kRbc, TopKRoute::kSelect},
                      SweepCase{Backend::kRbc, TopKRoute::kLocalHeap},
                      SweepCase{Backend::kMpi, TopKRoute::kSelect},
                      SweepCase{Backend::kMpi, TopKRoute::kLocalHeap},
                      SweepCase{Backend::kIcomm, TopKRoute::kSelect},
                      SweepCase{Backend::kIcomm, TopKRoute::kLocalHeap}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return std::string(jsort::BackendName(info.param.backend)) + "_" +
             jsort::query::TopKRouteName(info.param.route);
    });

TEST_P(TopKSweep, ExactAcrossDistributionsAndK) {
  const SweepCase c = GetParam();
  constexpr int kRanks = 6;
  constexpr std::int64_t kPerRank = 29;
  for (const InputKind kind :
       {InputKind::kUniform, InputKind::kZipf, InputKind::kFewDistinct,
        InputKind::kAllEqual}) {
    std::vector<double> oracle = Concat(kind, kRanks, kPerRank, 0xCAFEu);
    std::sort(oracle.begin(), oracle.end());
    const std::int64_t n = static_cast<std::int64_t>(oracle.size());
    for (const std::int64_t k :
         {std::int64_t{0}, std::int64_t{1}, std::int64_t{13}, n, n + 50}) {
      PerRank<std::vector<double>> results(kRanks);
      PerRank<int> verified(kRanks);
      RunRanks(kRanks, [&](mpisim::Comm& world) {
        auto tr = jsort::MakeTransport(c.backend, world);
        const auto local =
            jsort::GenerateInput(kind, world.Rank(), kRanks, kPerRank, 0xCAFEu);
        TopKConfig cfg;
        cfg.route = c.route;
        std::vector<double> topk = DistributedTopK(*tr, local, k, cfg);
        verified.Set(world.Rank(),
                     jsort::VerifyTopK(*tr, local, k, topk, cfg.root) ? 1
                                                                      : 0);
        results.Set(world.Rank(), std::move(topk));
      });
      const std::int64_t k_eff = std::min(k, n);
      const std::vector<double> expect(
          oracle.begin(), oracle.begin() + static_cast<std::ptrdiff_t>(k_eff));
      EXPECT_EQ(results[0], expect)
          << jsort::InputKindName(kind) << " k=" << k;
      for (int r = 1; r < kRanks; ++r) {
        EXPECT_TRUE(results[r].empty()) << "rank " << r;
      }
      for (int r = 0; r < kRanks; ++r) {
        EXPECT_TRUE(verified[r]) << "rank " << r;
      }
    }
  }
}

TEST(QueryTopK, RoutesAgreeAndAutoPicksOne) {
  constexpr int kRanks = 8;
  constexpr std::int64_t kPerRank = 64;
  constexpr std::int64_t k = 24;
  std::vector<std::vector<double>> answers;
  for (const TopKRoute route :
       {TopKRoute::kSelect, TopKRoute::kLocalHeap, TopKRoute::kAuto}) {
    PerRank<std::vector<double>> results(kRanks);
    PerRank<TopKRoute> taken(kRanks);
    RunRanks(kRanks, [&](mpisim::Comm& world) {
      auto tr = jsort::MakeTransport(Backend::kRbc, world);
      const auto local = jsort::GenerateInput(InputKind::kUniform,
                                              world.Rank(), kRanks, kPerRank,
                                              0x50FAu);
      TopKConfig cfg;
      cfg.route = route;
      TopKStats stats;
      results.Set(world.Rank(),
                  DistributedTopK(*tr, local, k, cfg, &stats));
      taken.Set(world.Rank(), stats.route_taken);
    });
    answers.push_back(results[0]);
    // Every rank resolved kAuto to the same concrete route.
    for (int r = 1; r < kRanks; ++r) {
      EXPECT_EQ(taken[r], taken[0]);
    }
    EXPECT_NE(taken[0], TopKRoute::kAuto);
  }
  EXPECT_EQ(answers[0], answers[1]);
  EXPECT_EQ(answers[2], answers[0]);
  ASSERT_EQ(answers[0].size(), static_cast<std::size_t>(k));
}

TEST(QueryTopK, NonZeroRootReceivesTheResult) {
  constexpr int kRanks = 5;
  constexpr int kRoot = 3;
  PerRank<std::size_t> sizes(kRanks);
  RunRanks(kRanks, [&](mpisim::Comm& world) {
    auto tr = jsort::MakeTransport(Backend::kRbc, world);
    const auto local = jsort::GenerateInput(InputKind::kUniform, world.Rank(),
                                            kRanks, 20, 0x3CAu);
    TopKConfig cfg;
    cfg.root = kRoot;
    const auto topk = DistributedTopK(*tr, local, 7, cfg);
    sizes.Set(world.Rank(), topk.size());
    EXPECT_TRUE(jsort::VerifyTopK(*tr, local, 7, topk, kRoot));
  });
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_EQ(sizes[r], r == kRoot ? 7u : 0u);
  }
}

TEST(QueryTopK, VerifierRejectsTamperedResults) {
  constexpr int kRanks = 4;
  PerRank<int> verdicts(kRanks);
  RunRanks(kRanks, [&](mpisim::Comm& world) {
    auto tr = jsort::MakeTransport(Backend::kRbc, world);
    const auto local = jsort::GenerateInput(InputKind::kUniform, world.Rank(),
                                            kRanks, 25, 0x7A3u);
    const std::int64_t k = 9;
    std::vector<double> topk = DistributedTopK(*tr, local, k);
    int ok = 0;
    if (jsort::VerifyTopK(*tr, local, k, topk, 0)) ++ok;
    if (world.Rank() == 0 && !topk.empty()) {
      // Swap one genuine winner for a near-miss: count stays right, the
      // below-threshold multiset hash does not.
      std::vector<double> tampered = topk;
      tampered.front() = tampered.front() - 1e-9;
      std::sort(tampered.begin(), tampered.end());
      if (!jsort::VerifyTopK(*tr, local, k, tampered, 0)) ++ok;
      // Truncation: wrong size.
      std::vector<double> shorter(topk.begin(), topk.end() - 1);
      if (!jsort::VerifyTopK(*tr, local, k, shorter, 0)) ++ok;
    } else {
      if (!jsort::VerifyTopK(*tr, local, k, {}, 0)) ++ok;
      if (!jsort::VerifyTopK(*tr, local, k, {}, 0)) ++ok;
    }
    verdicts.Set(world.Rank(), ok);
  });
  for (int r = 0; r < kRanks; ++r) EXPECT_EQ(verdicts[r], 3);
}

}  // namespace
