// Baseline sorters: hypercube quicksort and single-level sample sort.
#include <gtest/gtest.h>

#include <tuple>

#include "sort/checks.hpp"
#include "sort/hypercube_qs.hpp"
#include "sort/sample_sort.hpp"
#include "sort/workload.hpp"
#include "testutil.hpp"

namespace {

using jsort::InputKind;
using testutil::RunRanks;

std::shared_ptr<jsort::Transport> RbcTransportOf(mpisim::Comm& world) {
  rbc::Comm rw;
  rbc::Create_RBC_Comm(world, &rw);
  return jsort::MakeRbcTransport(rw);
}

class HypercubeSweep
    : public ::testing::TestWithParam<std::tuple<int, int, InputKind>> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, HypercubeSweep,
    ::testing::Combine(::testing::Values(1, 2, 4, 8, 16),  // powers of two
                       ::testing::Values(1, 16, 100),
                       ::testing::Values(InputKind::kUniform,
                                         InputKind::kAllEqual,
                                         InputKind::kSortedDesc)));

TEST_P(HypercubeSweep, SortsCorrectly) {
  const auto [p, quota, kind] = GetParam();
  RunRanks(p, [&, p = p, quota = quota, kind = kind](mpisim::Comm& world) {
    rbc::Comm rw;
    rbc::Create_RBC_Comm(world, &rw);
    auto input = jsort::GenerateInput(kind, world.Rank(), p, quota, 13);
    const auto before = jsort::GlobalFingerprint(input, rw);
    auto tr = RbcTransportOf(world);
    const auto out = jsort::HypercubeQuicksort(tr, std::move(input));
    EXPECT_EQ(before, jsort::GlobalFingerprint(out, rw));
    EXPECT_TRUE(jsort::IsGloballySorted(out, rw));
  });
}

TEST(Hypercube, RejectsNonPowerOfTwo) {
  EXPECT_THROW(RunRanks(6,
                        [](mpisim::Comm& world) {
                          auto tr = RbcTransportOf(world);
                          jsort::HypercubeQuicksort(tr, {1.0});
                        }),
               mpisim::UsageError);
}

TEST(Hypercube, ReportsImbalance) {
  // A skewed input forces imbalance: JQuick would still be perfectly
  // balanced, hypercube is not (this is the paper's Section IV point).
  constexpr int kP = 8;
  RunRanks(kP, [](mpisim::Comm& world) {
    rbc::Comm rw;
    rbc::Create_RBC_Comm(world, &rw);
    auto input = jsort::GenerateInput(InputKind::kZipf, world.Rank(), kP,
                                      256, 17);
    auto tr = RbcTransportOf(world);
    jsort::HypercubeStats stats;
    const auto out =
        jsort::HypercubeQuicksort(tr, std::move(input), {}, &stats);
    EXPECT_EQ(stats.levels, 3);
    const auto bal = jsort::GlobalBalance(out, rw);
    EXPECT_EQ(bal.max_count >= bal.min_count, true);
  });
}

class SampleSortSweep
    : public ::testing::TestWithParam<std::tuple<int, int, InputKind>> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, SampleSortSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8, 13),
                       ::testing::Values(2, 32, 200),
                       ::testing::Values(InputKind::kUniform,
                                         InputKind::kAllEqual,
                                         InputKind::kGaussian)));

TEST_P(SampleSortSweep, SortsCorrectly) {
  const auto [p, quota, kind] = GetParam();
  RunRanks(p, [&, p = p, quota = quota, kind = kind](mpisim::Comm& world) {
    rbc::Comm rw;
    rbc::Create_RBC_Comm(world, &rw);
    auto input = jsort::GenerateInput(kind, world.Rank(), p, quota, 29);
    const auto before = jsort::GlobalFingerprint(input, rw);
    auto tr = RbcTransportOf(world);
    const auto out = jsort::SampleSort(tr, std::move(input));
    EXPECT_EQ(before, jsort::GlobalFingerprint(out, rw));
    EXPECT_TRUE(jsort::IsGloballySorted(out, rw));
  });
}

TEST(SampleSort, MessageCountIsPMinusOne) {
  constexpr int kP = 6;
  RunRanks(kP, [](mpisim::Comm& world) {
    auto tr = RbcTransportOf(world);
    auto input = jsort::GenerateInput(InputKind::kUniform, world.Rank(), kP,
                                      64, 1);
    jsort::SampleSortStats stats;
    jsort::SampleSort(tr, std::move(input), {}, &stats);
    EXPECT_EQ(stats.messages_sent, kP - 1);  // the p-1 startups
  });
}

}  // namespace
