// Point-to-point semantics of the mpisim substrate.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "testutil.hpp"

namespace {

using mpisim::Comm;
using mpisim::Datatype;
using mpisim::Request;
using mpisim::Status;
using testutil::RunRanks;

TEST(P2P, BlockingSendRecvDeliversPayload) {
  RunRanks(2, [](Comm& world) {
    if (world.Rank() == 0) {
      const std::vector<int> data{1, 2, 3, 4, 5};
      mpisim::Send(data.data(), 5, Datatype::kInt32, 1, 7, world);
    } else {
      std::vector<int> got(5, 0);
      Status st;
      mpisim::Recv(got.data(), 5, Datatype::kInt32, 0, 7, world, &st);
      EXPECT_EQ(got, (std::vector<int>{1, 2, 3, 4, 5}));
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 7);
      EXPECT_EQ(st.Count(Datatype::kInt32), 5);
    }
  });
}

TEST(P2P, MessagesFromOnePairAreFifoOrdered) {
  constexpr int kMessages = 64;
  RunRanks(2, [](Comm& world) {
    if (world.Rank() == 0) {
      for (int i = 0; i < kMessages; ++i) {
        mpisim::Send(&i, 1, Datatype::kInt32, 1, 3, world);
      }
    } else {
      for (int i = 0; i < kMessages; ++i) {
        int got = -1;
        mpisim::Recv(&got, 1, Datatype::kInt32, 0, 3, world);
        EXPECT_EQ(got, i);
      }
    }
  });
}

TEST(P2P, TagsSelectMessagesOutOfOrder) {
  RunRanks(2, [](Comm& world) {
    if (world.Rank() == 0) {
      const int a = 10, b = 20;
      mpisim::Send(&a, 1, Datatype::kInt32, 1, 1, world);
      mpisim::Send(&b, 1, Datatype::kInt32, 1, 2, world);
    } else {
      int got = 0;
      mpisim::Recv(&got, 1, Datatype::kInt32, 0, 2, world);
      EXPECT_EQ(got, 20);
      mpisim::Recv(&got, 1, Datatype::kInt32, 0, 1, world);
      EXPECT_EQ(got, 10);
    }
  });
}

TEST(P2P, AnySourceReceivesFromBothPeers) {
  RunRanks(3, [](Comm& world) {
    if (world.Rank() != 0) {
      const int v = world.Rank() * 100;
      mpisim::Send(&v, 1, Datatype::kInt32, 0, 5, world);
    } else {
      int sum = 0;
      for (int i = 0; i < 2; ++i) {
        int got = 0;
        Status st;
        mpisim::Recv(&got, 1, Datatype::kInt32, mpisim::kAnySource, 5, world,
                     &st);
        EXPECT_EQ(got, st.source * 100);
        sum += got;
      }
      EXPECT_EQ(sum, 300);
    }
  });
}

TEST(P2P, IsendIrecvCompleteViaTest) {
  RunRanks(2, [](Comm& world) {
    if (world.Rank() == 0) {
      const double v = 2.5;
      Request req = mpisim::Isend(&v, 1, Datatype::kFloat64, 1, 9, world);
      mpisim::Wait(req);
    } else {
      double got = 0.0;
      Request req = mpisim::Irecv(&got, 1, Datatype::kFloat64, 0, 9, world);
      Status st;
      mpisim::Wait(req, &st);
      EXPECT_DOUBLE_EQ(got, 2.5);
      EXPECT_EQ(st.source, 0);
    }
  });
}

TEST(P2P, IrecvAnySourceMatchesLater) {
  RunRanks(2, [](Comm& world) {
    if (world.Rank() == 1) {
      double got = 0.0;
      Request req =
          mpisim::Irecv(&got, 1, Datatype::kFloat64, mpisim::kAnySource, 4,
                        world);
      // Tell rank 0 we posted the receive, then wait.
      const int token = 1;
      mpisim::Send(&token, 1, Datatype::kInt32, 0, 1, world);
      mpisim::Wait(req);
      EXPECT_DOUBLE_EQ(got, 7.25);
    } else {
      int token = 0;
      mpisim::Recv(&token, 1, Datatype::kInt32, 1, 1, world);
      const double v = 7.25;
      mpisim::Send(&v, 1, Datatype::kFloat64, 1, 4, world);
    }
  });
}

TEST(P2P, ProbeReportsSizeWithoutConsuming) {
  RunRanks(2, [](Comm& world) {
    if (world.Rank() == 0) {
      const std::vector<double> v(17, 1.0);
      mpisim::Send(v.data(), 17, Datatype::kFloat64, 1, 2, world);
    } else {
      Status st;
      mpisim::Probe(0, 2, world, &st);
      EXPECT_EQ(st.Count(Datatype::kFloat64), 17);
      std::vector<double> got(static_cast<std::size_t>(st.Count(Datatype::kFloat64)));
      mpisim::Recv(got.data(), 17, Datatype::kFloat64, 0, 2, world);
      EXPECT_DOUBLE_EQ(got[16], 1.0);
    }
  });
}

TEST(P2P, IprobeReturnsFalseWhenNoMessage) {
  RunRanks(2, [](Comm& world) {
    if (world.Rank() == 1) {
      Status st;
      EXPECT_FALSE(mpisim::Iprobe(0, 99, world, &st));
    }
  });
}

TEST(P2P, SelfSendIsDelivered) {
  RunRanks(1, [](Comm& world) {
    const int v = 11;
    mpisim::Send(&v, 1, Datatype::kInt32, 0, 0, world);
    int got = 0;
    mpisim::Recv(&got, 1, Datatype::kInt32, 0, 0, world);
    EXPECT_EQ(got, 11);
  });
}

TEST(P2P, TruncatingReceiveThrows) {
  EXPECT_THROW(
      RunRanks(2,
               [](Comm& world) {
                 if (world.Rank() == 0) {
                   const std::vector<int> v(10, 1);
                   mpisim::Send(v.data(), 10, Datatype::kInt32, 1, 0, world);
                 } else {
                   int got[2];
                   mpisim::Recv(got, 2, Datatype::kInt32, 0, 0, world);
                 }
               }),
      mpisim::UsageError);
}

TEST(P2P, RankOutOfRangeThrows) {
  EXPECT_THROW(RunRanks(2,
                        [](Comm& world) {
                          const int v = 0;
                          mpisim::Send(&v, 1, Datatype::kInt32, 5, 0, world);
                        }),
               mpisim::UsageError);
}

TEST(P2P, ShorterMessageThanBufferIsAccepted) {
  RunRanks(2, [](Comm& world) {
    if (world.Rank() == 0) {
      const int v = 3;
      mpisim::Send(&v, 1, Datatype::kInt32, 1, 0, world);
    } else {
      int got[8] = {0};
      Status st;
      mpisim::Recv(got, 8, Datatype::kInt32, 0, 0, world, &st);
      EXPECT_EQ(st.Count(Datatype::kInt32), 1);
      EXPECT_EQ(got[0], 3);
    }
  });
}

TEST(P2P, WaitallCompletesMixedRequests) {
  RunRanks(2, [](Comm& world) {
    std::vector<int> out(4, world.Rank());
    std::vector<int> in(4, -1);
    const int peer = 1 - world.Rank();
    std::vector<Request> reqs;
    for (int i = 0; i < 4; ++i) {
      reqs.push_back(
          mpisim::Isend(&out[static_cast<std::size_t>(i)], 1,
                        Datatype::kInt32, peer, i, world));
      reqs.push_back(
          mpisim::Irecv(&in[static_cast<std::size_t>(i)], 1,
                        Datatype::kInt32, peer, i, world));
    }
    mpisim::Waitall(reqs);
    for (int i = 0; i < 4; ++i) EXPECT_EQ(in[static_cast<std::size_t>(i)], peer);
  });
}

TEST(P2P, VirtualClockChargesAlphaBeta) {
  mpisim::Runtime::Options opts;
  opts.num_ranks = 2;
  opts.cost.alpha = 10.0;
  opts.cost.beta = 0.5;
  testutil::RunRanks(opts, [](Comm& world, mpisim::Runtime& rt) {
    const std::vector<double> v(8, 1.0);  // 8 words = 64 bytes
    if (world.Rank() == 0) {
      mpisim::Send(v.data(), 8, Datatype::kFloat64, 1, 0, world);
      // Sender pays alpha + 8*beta = 14.
      EXPECT_DOUBLE_EQ(mpisim::Ctx().clock.Now(), 14.0);
    } else {
      std::vector<double> got(8);
      mpisim::Recv(got.data(), 8, Datatype::kFloat64, 0, 0, world);
      // Receiver: max(0, sender_start=0) + 14.
      EXPECT_DOUBLE_EQ(mpisim::Ctx().clock.Now(), 14.0);
    }
    (void)rt;
  });
}

TEST(P2P, StatsCountMessagesAndBytes) {
  mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = 2});
  rt.Run([](Comm& world) {
    if (world.Rank() == 0) {
      const std::vector<int> v(25, 1);
      mpisim::Send(v.data(), 25, Datatype::kInt32, 1, 0, world);
    } else {
      std::vector<int> got(25);
      mpisim::Recv(got.data(), 25, Datatype::kInt32, 0, 0, world);
    }
  });
  const mpisim::Stats s = rt.TotalStats();
  EXPECT_EQ(s.messages_sent, 1u);
  EXPECT_EQ(s.bytes_sent, 100u);
  EXPECT_EQ(s.messages_received, 1u);
  EXPECT_EQ(s.bytes_received, 100u);
}

}  // namespace
