// RBC collectives (blocking and nonblocking) over full ranges, sub-ranges
// and strided ranges, swept over process counts.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "testutil.hpp"

namespace {

using rbc::Datatype;
using rbc::ReduceOp;
using testutil::RunRanks;
using testutil::RunRbc;

class RbcCollSweep : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(ProcessCounts, RbcCollSweep,
                         ::testing::Values(1, 2, 3, 4, 6, 9, 16));

TEST_P(RbcCollSweep, BcastFromEveryRoot) {
  const int p = GetParam();
  RunRbc(p, [p](rbc::Comm& rw) {
    for (int root = 0; root < p; ++root) {
      std::int64_t v = rw.Rank() == root ? root + 50 : -1;
      rbc::Bcast(&v, 1, Datatype::kInt64, root, rw);
      EXPECT_EQ(v, root + 50);
    }
  });
}

TEST_P(RbcCollSweep, ReduceSums) {
  const int p = GetParam();
  RunRbc(p, [p](rbc::Comm& rw) {
    const std::int64_t mine = rw.Rank() + 1;
    std::int64_t out = 0;
    rbc::Reduce(&mine, &out, 1, Datatype::kInt64, ReduceOp::kSum, 0, rw);
    if (rw.Rank() == 0) {
      EXPECT_EQ(out, static_cast<std::int64_t>(p) * (p + 1) / 2);
    }
  });
}

TEST_P(RbcCollSweep, ScanComputesInclusivePrefix) {
  const int p = GetParam();
  RunRbc(p, [](rbc::Comm& rw) {
    const std::int64_t mine[2] = {rw.Rank() + 1, 2};
    std::int64_t out[2] = {0, 0};
    rbc::Scan(mine, out, 2, Datatype::kInt64, ReduceOp::kSum, rw);
    const std::int64_t k = rw.Rank() + 1;
    EXPECT_EQ(out[0], k * (k + 1) / 2);
    EXPECT_EQ(out[1], 2 * k);
  });
}

TEST_P(RbcCollSweep, GatherCollectsInRankOrder) {
  const int p = GetParam();
  RunRbc(p, [p](rbc::Comm& rw) {
    const double mine = rw.Rank() * 1.5;
    std::vector<double> all(static_cast<std::size_t>(p), -1);
    rbc::Gather(&mine, 1, Datatype::kFloat64, all.data(), 0, rw);
    if (rw.Rank() == 0) {
      for (int r = 0; r < p; ++r) {
        EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(r)], r * 1.5);
      }
    }
  });
}

TEST_P(RbcCollSweep, GathervCollectsVariableBlocks) {
  const int p = GetParam();
  RunRbc(p, [p](rbc::Comm& rw) {
    const int mine_n = rw.Rank() % 4 + 1;
    std::vector<double> mine(static_cast<std::size_t>(mine_n),
                             static_cast<double>(rw.Rank()));
    std::vector<int> counts, displs;
    int total = 0;
    for (int r = 0; r < p; ++r) {
      counts.push_back(r % 4 + 1);
      displs.push_back(total);
      total += r % 4 + 1;
    }
    std::vector<double> all(static_cast<std::size_t>(total), -1.0);
    rbc::Gatherv(mine.data(), mine_n, Datatype::kFloat64, all.data(), counts,
                 displs, 0, rw);
    if (rw.Rank() == 0) {
      for (int r = 0; r < p; ++r) {
        for (int i = 0; i < counts[static_cast<std::size_t>(r)]; ++i) {
          EXPECT_DOUBLE_EQ(
              all[static_cast<std::size_t>(displs[static_cast<std::size_t>(r)] + i)],
              static_cast<double>(r));
        }
      }
    }
  });
}

TEST_P(RbcCollSweep, BarrierCompletes) {
  const int p = GetParam();
  RunRbc(p, [](rbc::Comm& rw) {
    for (int i = 0; i < 3; ++i) rbc::Barrier(rw);
  });
}

TEST_P(RbcCollSweep, NonblockingFormsComplete) {
  const int p = GetParam();
  RunRbc(p, [p](rbc::Comm& rw) {
    std::int64_t b = rw.Rank() == 0 ? 5 : -1;
    std::int64_t red_in = rw.Rank() + 1, red_out = 0;
    std::int64_t scan_in = 1, scan_out = 0;
    rbc::Request rb, rr, rs, rbar;
    rbc::Ibcast(&b, 1, Datatype::kInt64, 0, rw, &rb);
    rbc::Ireduce(&red_in, &red_out, 1, Datatype::kInt64, ReduceOp::kSum, 0,
                 rw, &rr);
    rbc::Iscan(&scan_in, &scan_out, 1, Datatype::kInt64, ReduceOp::kSum, rw,
               &rs);
    rbc::Ibarrier(rw, &rbar);
    std::vector<rbc::Request> reqs{rb, rr, rs, rbar};
    rbc::Waitall(reqs);
    EXPECT_EQ(b, 5);
    if (rw.Rank() == 0) {
      EXPECT_EQ(red_out, static_cast<std::int64_t>(p) * (p + 1) / 2);
    }
    EXPECT_EQ(scan_out, rw.Rank() + 1);
  });
}

TEST(RbcColl, CollectiveOnSubRangeLeavesOthersUntouched) {
  RunRanks(8, [](mpisim::Comm& world) {
    rbc::Comm rw, mid;
    rbc::Create_RBC_Comm(world, &rw);
    rbc::Split_RBC_Comm(rw, 2, 5, &mid);
    if (world.Rank() >= 2 && world.Rank() <= 5) {
      std::int64_t v = mid.Rank() == 0 ? 123 : -1;
      rbc::Bcast(&v, 1, Datatype::kInt64, 0, mid);
      EXPECT_EQ(v, 123);
    }
    mpisim::Barrier(world);
    // No stray messages may remain anywhere.
    EXPECT_EQ(mpisim::Ctx().runtime->MailboxOf(world.Rank()).QueuedMessages(),
              0u);
  });
}

TEST(RbcColl, SimultaneousCollectivesOnDisjointHalves) {
  RunRanks(8, [](mpisim::Comm& world) {
    rbc::Comm rw, half;
    rbc::Create_RBC_Comm(world, &rw);
    const bool low = world.Rank() < 4;
    rbc::Split_RBC_Comm(rw, low ? 0 : 4, low ? 3 : 7, &half);
    std::int64_t sum = 0;
    const std::int64_t mine = world.Rank();
    rbc::Reduce(&mine, &sum, 1, Datatype::kInt64, ReduceOp::kSum, 0, half);
    rbc::Bcast(&sum, 1, Datatype::kInt64, 0, half);
    EXPECT_EQ(sum, low ? 0 + 1 + 2 + 3 : 4 + 5 + 6 + 7);
  });
}

TEST(RbcColl, SimultaneousNonblockingCollectivesWithUserTags) {
  // Two nonblocking broadcasts in flight on the SAME communicator,
  // distinguished by user-supplied tags (the paper's Ibcast tag
  // parameter).
  RunRbc(6, [](rbc::Comm& rw) {
    std::int64_t a = rw.Rank() == 0 ? 1 : -1;
    std::int64_t b = rw.Rank() == 0 ? 2 : -1;
    rbc::Request ra, rrb;
    rbc::Ibcast(&a, 1, Datatype::kInt64, 0, rw, &ra, 100);
    rbc::Ibcast(&b, 1, Datatype::kInt64, 0, rw, &rrb, 200);
    std::vector<rbc::Request> reqs{ra, rrb};
    rbc::Waitall(reqs);
    EXPECT_EQ(a, 1);
    EXPECT_EQ(b, 2);
  });
}

TEST(RbcColl, CollectivesOnStridedRange) {
  RunRanks(8, [](mpisim::Comm& world) {
    rbc::Comm rw, even;
    rbc::Create_RBC_Comm(world, &rw);
    rbc::Split_RBC_Comm_Strided(rw, 0, 7, 2, &even);
    if (world.Rank() % 2 == 0) {
      std::int64_t sum = 0;
      const std::int64_t mine = world.Rank();
      rbc::Reduce(&mine, &sum, 1, Datatype::kInt64, ReduceOp::kSum, 0, even);
      if (even.Rank() == 0) {
        EXPECT_EQ(sum, 0 + 2 + 4 + 6);
      }
    }
  });
}

TEST(RbcColl, OverlappingRangesConcurrentCollectivesOneSharedRank) {
  // The janus pattern: rank 3 is in {0..3} and {3..6}; both groups run a
  // nonblocking reduce simultaneously and rank 3 progresses both.
  RunRanks(7, [](mpisim::Comm& world) {
    rbc::Comm rw, left, right;
    rbc::Create_RBC_Comm(world, &rw);
    rbc::Split_RBC_Comm(rw, 0, 3, &left);
    rbc::Split_RBC_Comm(rw, 3, 6, &right);
    const std::int64_t mine = world.Rank();
    std::int64_t lsum = 0, rsum = 0;
    std::vector<rbc::Request> reqs;
    if (left.Rank() >= 0) {
      rbc::Request r;
      rbc::Ireduce(&mine, &lsum, 1, Datatype::kInt64, ReduceOp::kSum, 0,
                   left, &r);
      reqs.push_back(r);
    }
    if (right.Rank() >= 0) {
      rbc::Request r;
      rbc::Ireduce(&mine, &rsum, 1, Datatype::kInt64, ReduceOp::kSum, 0,
                   right, &r);
      reqs.push_back(r);
    }
    rbc::Waitall(reqs);
    if (world.Rank() == 0) {
      EXPECT_EQ(lsum, 0 + 1 + 2 + 3);
    }
    if (world.Rank() == 3) {
      EXPECT_EQ(rsum, 3 + 4 + 5 + 6);
    }
  });
}

TEST(RbcColl, LargePayloadBcast) {
  RunRbc(5, [](rbc::Comm& rw) {
    std::vector<double> v(4096, rw.Rank() == 2 ? 1.25 : 0.0);
    rbc::Bcast(v.data(), 4096, Datatype::kFloat64, 2, rw);
    EXPECT_DOUBLE_EQ(v.front(), 1.25);
    EXPECT_DOUBLE_EQ(v.back(), 1.25);
  });
}

}  // namespace
