// Unit tests of the benchmark driver subsystem (bench/harness.{hpp,cpp}):
// JSON rendering and escaping through edge cases (empty run, hostile
// strings, non-finite numbers), the minimal JSON syntax checker the
// harness self-validates with, CLI option parsing, and the smoke-vs-full
// repetition resolution. The rendered document must match the schema that
// bench/manifest.json + tools/validate_bench.py gate CI on: a top-level
// {meta, rows} object whose meta carries binary/figure/p/reps/smoke/
// git_describe/schema_version and whose rows carry
// bench/backend/p/count/vtime/wall_ms plus typed extras.
#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "harness.hpp"

namespace {

using benchutil::BenchContext;
using benchutil::BenchMeta;
using benchutil::BenchReport;
using benchutil::Field;
using benchutil::Measurement;
using benchutil::ParseBenchOptions;

BenchMeta TestMeta() {
  BenchMeta meta;
  meta.binary = "bench_unit";
  meta.figure = "Figure 0";
  meta.p = 8;
  meta.reps = 3;
  meta.smoke = false;
  meta.seed = 24150;
  meta.git_describe = "v0-test";
  return meta;
}

// --- ValidJson --------------------------------------------------------------

TEST(ValidJson, AcceptsCanonicalDocuments) {
  EXPECT_TRUE(BenchReport::ValidJson("{}"));
  EXPECT_TRUE(BenchReport::ValidJson("[]"));
  EXPECT_TRUE(BenchReport::ValidJson("  {\"a\": [1, -2.5, 1e9, true, "
                                     "false, null], \"b\": {\"c\": \"d\"}} "));
  EXPECT_TRUE(BenchReport::ValidJson("\"lone string\""));
  EXPECT_TRUE(BenchReport::ValidJson("-0.25"));
  EXPECT_TRUE(BenchReport::ValidJson("{\"esc\": \"a\\\"b\\\\c\\n\\u0007\"}"));
}

TEST(ValidJson, RejectsMalformedDocuments) {
  EXPECT_FALSE(BenchReport::ValidJson(""));
  EXPECT_FALSE(BenchReport::ValidJson("{"));
  EXPECT_FALSE(BenchReport::ValidJson("{\"a\": 1,}"));      // trailing comma
  EXPECT_FALSE(BenchReport::ValidJson("[1 2]"));            // missing comma
  EXPECT_FALSE(BenchReport::ValidJson("{\"a\" 1}"));        // missing colon
  EXPECT_FALSE(BenchReport::ValidJson("{'a': 1}"));         // single quotes
  EXPECT_FALSE(BenchReport::ValidJson("\"unterminated"));
  EXPECT_FALSE(BenchReport::ValidJson("\"bad \\x escape\""));
  EXPECT_FALSE(BenchReport::ValidJson("01"));               // leading zero
  EXPECT_FALSE(BenchReport::ValidJson("1."));               // bare point
  EXPECT_FALSE(BenchReport::ValidJson("nan"));
  EXPECT_FALSE(BenchReport::ValidJson("{} trailing"));
  EXPECT_FALSE(BenchReport::ValidJson("\"raw\ncontrol\""));
}

// --- escaping and number rendering ------------------------------------------

TEST(JsonEscaping, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(BenchReport::EscapeJson("plain"), "plain");
  EXPECT_EQ(BenchReport::EscapeJson("a\"b"), "a\\\"b");
  EXPECT_EQ(BenchReport::EscapeJson("a\\b"), "a\\\\b");
  EXPECT_EQ(BenchReport::EscapeJson("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(BenchReport::EscapeJson(std::string("a\x01z")), "a\\u0001z");
}

TEST(JsonEscaping, NonFiniteNumbersBecomeNull) {
  EXPECT_EQ(BenchReport::JsonNumber(std::numeric_limits<double>::quiet_NaN()),
            "null");
  EXPECT_EQ(BenchReport::JsonNumber(std::numeric_limits<double>::infinity()),
            "null");
  EXPECT_EQ(BenchReport::JsonNumber(1.5), "1.500000");
}

// --- document rendering -----------------------------------------------------

TEST(BenchReport, EmptyRunRendersValidSchemaDocument) {
  BenchReport report(TestMeta());
  const std::string json = report.RenderJson();
  EXPECT_TRUE(BenchReport::ValidJson(json));
  EXPECT_NE(json.find("\"rows\": []"), std::string::npos);
  // The metadata header the manifest gate requires.
  EXPECT_NE(json.find("\"binary\": \"bench_unit\""), std::string::npos);
  EXPECT_NE(json.find("\"figure\": \"Figure 0\""), std::string::npos);
  EXPECT_NE(json.find("\"p\": 8"), std::string::npos);
  EXPECT_NE(json.find("\"reps\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"smoke\": false"), std::string::npos);
  EXPECT_NE(json.find("\"seed\": 24150"), std::string::npos);
  EXPECT_NE(json.find("\"git_describe\": \"v0-test\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\": 2"), std::string::npos);
  EXPECT_NE(report.RenderTable().find("(no rows)"), std::string::npos);
}

TEST(BenchReport, RowsCarryCoreKeysAndTypedExtras) {
  BenchReport report(TestMeta());
  report.Row("my_bench", "rbc", 16, 1024, Measurement{2.5, 125.0},
             {Field{"messages", std::int64_t{7}},
              Field{"ratio", 1.25},
              Field{"input", "zipf"},
              Field{"segmented", true}});
  const std::string json = report.RenderJson();
  EXPECT_TRUE(BenchReport::ValidJson(json));
  EXPECT_NE(json.find("{\"bench\": \"my_bench\", \"backend\": \"rbc\", "
                      "\"p\": 16, \"count\": 1024, \"vtime\": 125.000000, "
                      "\"wall_ms\": 2.500000, \"messages\": 7, "
                      "\"ratio\": 1.250000, \"input\": \"zipf\", "
                      "\"segmented\": true}"),
            std::string::npos);
  const std::string table = report.RenderTable();
  EXPECT_NE(table.find("my_bench"), std::string::npos);
  EXPECT_NE(table.find("messages=7"), std::string::npos);
  EXPECT_NE(table.find("input=zipf"), std::string::npos);
}

TEST(BenchReport, HostileStringsStillRenderValidJson) {
  BenchMeta meta = TestMeta();
  meta.figure = "quotes \" and \\ and\nnewlines";
  meta.git_describe = "tag\twith\ttabs";
  BenchReport report(meta);
  report.Row("bench\"quoted", "back\\slash", 1, 0, Measurement{},
             {Field{"k\ne\ry", "v\x01lue"}});
  const std::string json = report.RenderJson();  // aborts if invalid
  EXPECT_TRUE(BenchReport::ValidJson(json));
  EXPECT_NE(json.find("bench\\\"quoted"), std::string::npos);
  EXPECT_NE(json.find("back\\\\slash"), std::string::npos);
}

TEST(BenchReport, NonFiniteMeasurementsRenderAsNull) {
  BenchReport report(TestMeta());
  report.Row("nan_bench", "x", 1, 0,
             Measurement{std::numeric_limits<double>::infinity(),
                         std::numeric_limits<double>::quiet_NaN()});
  const std::string json = report.RenderJson();
  EXPECT_TRUE(BenchReport::ValidJson(json));
  EXPECT_NE(json.find("\"vtime\": null"), std::string::npos);
  EXPECT_NE(json.find("\"wall_ms\": null"), std::string::npos);
}

// --- CLI parsing and reps resolution ----------------------------------------

TEST(ParseBenchOptionsTest, ParsesEveryFlag) {
  const char* argv[] = {"bench", "--smoke", "--reps", "7", "--json",
                        "/tmp/x.json", "--filter", "skew", "--list",
                        "--seed", "424242"};
  auto opt = ParseBenchOptions(11, const_cast<char**>(argv));
  EXPECT_TRUE(opt.error.empty());
  EXPECT_TRUE(opt.smoke);
  EXPECT_TRUE(opt.list);
  EXPECT_EQ(opt.reps, 7);
  EXPECT_EQ(opt.seed, 424242);
  EXPECT_EQ(opt.json_path, "/tmp/x.json");
  EXPECT_EQ(opt.filter, "skew");
}

TEST(ParseBenchOptionsTest, SeedDefaultsToUnsetAndRejectsGarbage) {
  {
    const char* argv[] = {"bench"};
    EXPECT_EQ(ParseBenchOptions(1, const_cast<char**>(argv)).seed, -1);
  }
  for (const char* bad : {"-3", "xyz", "12abc"}) {
    const char* argv[] = {"bench", "--seed", bad};
    EXPECT_FALSE(ParseBenchOptions(3, const_cast<char**>(argv)).error
                     .empty())
        << bad;
  }
  {
    const char* argv[] = {"bench", "--seed"};
    EXPECT_FALSE(ParseBenchOptions(2, const_cast<char**>(argv)).error
                     .empty());
  }
}

TEST(ParseBenchOptionsTest, RejectsMalformedInvocations) {
  {
    const char* argv[] = {"bench", "--reps"};
    EXPECT_FALSE(ParseBenchOptions(2, const_cast<char**>(argv)).error
                     .empty());
  }
  {
    const char* argv[] = {"bench", "--reps", "0"};
    EXPECT_FALSE(ParseBenchOptions(3, const_cast<char**>(argv)).error
                     .empty());
  }
  {
    const char* argv[] = {"bench", "--frobnicate"};
    EXPECT_FALSE(ParseBenchOptions(2, const_cast<char**>(argv)).error
                     .empty());
  }
}

TEST(BenchContextTest, SmokeVsFullRepsResolution) {
  BenchReport report(TestMeta());
  {
    BenchContext full(report, /*smoke=*/false, /*cli_reps=*/0);
    EXPECT_EQ(full.reps(5), 5);
    EXPECT_FALSE(full.smoke());
  }
  {
    BenchContext smoke(report, /*smoke=*/true, /*cli_reps=*/0);
    EXPECT_EQ(smoke.reps(5), 1);
    EXPECT_TRUE(smoke.smoke());
  }
  {
    BenchContext forced(report, /*smoke=*/true, /*cli_reps=*/9);
    EXPECT_EQ(forced.reps(5), 9);  // explicit --reps beats smoke
  }
}

TEST(BenchContextTest, SeedIsVisibleToSections) {
  BenchReport report(TestMeta());
  BenchContext ctx(report, /*smoke=*/false, /*cli_reps=*/0,
                   /*seed=*/987654321);
  EXPECT_EQ(ctx.seed(), 987654321);
}

}  // namespace
