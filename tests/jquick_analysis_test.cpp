// Statistical properties from the paper's analysis (Section VII-A):
// recursion depth O(log p) w.h.p., perfect balance after every level
// (asserted internally by the driver on every task creation), and janus
// behaviour on non-power-of-two process counts.
#include <gtest/gtest.h>

#include <cmath>

#include "sort/checks.hpp"
#include "sort/jquick.hpp"
#include "sort/workload.hpp"
#include "testutil.hpp"

namespace {

using jsort::InputKind;
using jsort::JQuickConfig;
using jsort::JQuickStats;
using testutil::RunRanks;

/// Runs JQuick and returns the max distributed level over ranks.
int MaxLevels(int p, std::int64_t quota, const JQuickConfig& cfg) {
  int result = 0;
  RunRanks(p, [&](mpisim::Comm& world) {
    rbc::Comm rw;
    rbc::Create_RBC_Comm(world, &rw);
    auto input = jsort::GenerateInput(InputKind::kUniform, world.Rank(), p,
                                      quota, cfg.seed * 1337);
    auto tr = jsort::MakeRbcTransport(rw);
    JQuickStats stats;
    jsort::JQuickSort(tr, std::move(input), cfg, &stats);
    int local = stats.distributed_levels;
    int global = 0;
    mpisim::Allreduce(&local, &global, 1, mpisim::Datatype::kInt32,
                      mpisim::ReduceOp::kMax, world);
    if (world.Rank() == 0) result = global;
  });
  return result;
}

TEST(JQuickAnalysis, MedianPivotDepthIsLogarithmic) {
  // Lemma 2: O(log p) levels w.h.p. With median-of-samples pivots the
  // constant is small; assert depth <= 2*log2(p) + 3 over several seeds.
  for (int p : {8, 16, 32}) {
    const int bound = static_cast<int>(2.0 * std::log2(p)) + 3;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      JQuickConfig cfg;
      cfg.seed = seed;
      const int levels = MaxLevels(p, 32, cfg);
      EXPECT_LE(levels, bound) << "p=" << p << " seed=" << seed;
      EXPECT_GE(levels, static_cast<int>(std::log2(p)) - 1);
    }
  }
}

TEST(JQuickAnalysis, RandomPivotDepthWithinWhpBound) {
  // The analysed bound is 20*log_{8/7}(p); in practice random pivots land
  // well under it. Use the hard bound as the assertion.
  for (int p : {8, 16}) {
    const int bound =
        static_cast<int>(20.0 * std::log(p) / std::log(8.0 / 7.0));
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      JQuickConfig cfg;
      cfg.pivot = jsort::PivotPolicy::kRandomElement;
      cfg.seed = seed;
      EXPECT_LE(MaxLevels(p, 32, cfg), bound);
    }
  }
}

TEST(JQuickAnalysis, BalanceHoldsOnEveryLevelByConstruction) {
  // The driver throws if any task's local data differs from its capacity
  // (MakeChild check) -- a run across duplicate-heavy and skewed inputs
  // exercises that internal invariant at every level.
  for (auto kind : {InputKind::kFewDistinct, InputKind::kZipf,
                    InputKind::kBucketKiller, InputKind::kSortedDesc}) {
    RunRanks(12, [&](mpisim::Comm& world) {
      rbc::Comm rw;
      rbc::Create_RBC_Comm(world, &rw);
      auto input =
          jsort::GenerateInput(kind, world.Rank(), 12, 40, 77);
      auto tr = jsort::MakeRbcTransport(rw);
      const auto out = jsort::JQuickSort(tr, std::move(input));
      const auto bal = jsort::GlobalBalance(out, rw);
      EXPECT_EQ(bal.min_count, 40);
      EXPECT_EQ(bal.max_count, 40);
    });
  }
}

TEST(JQuickAnalysis, JanusProcessesAppearOffPowerOfTwoSplits) {
  // With p=9 and uniform data, split points almost never align with
  // process boundaries, so some rank must have served as a janus.
  RunRanks(9, [](mpisim::Comm& world) {
    rbc::Comm rw;
    rbc::Create_RBC_Comm(world, &rw);
    auto input = jsort::GenerateInput(InputKind::kUniform, world.Rank(), 9,
                                      50, 3);
    auto tr = jsort::MakeRbcTransport(rw);
    JQuickStats stats;
    jsort::JQuickSort(tr, std::move(input), JQuickConfig{}, &stats);
    std::int64_t mine = stats.janus_episodes;
    std::int64_t total = 0;
    mpisim::Allreduce(&mine, &total, 1, mpisim::Datatype::kInt64,
                      mpisim::ReduceOp::kSum, world);
    if (world.Rank() == 0) {
      EXPECT_GE(total, 1);
    }
  });
}

TEST(JQuickAnalysis, ExchangeVolumeIsBoundedByQuotaPerLevel) {
  // Theorem 1: each process sends at most n/p elements per level (minus
  // what it keeps). Check total sent <= levels * quota.
  constexpr int kP = 8;
  constexpr std::int64_t kQuota = 64;
  RunRanks(kP, [](mpisim::Comm& world) {
    rbc::Comm rw;
    rbc::Create_RBC_Comm(world, &rw);
    auto input = jsort::GenerateInput(InputKind::kUniform, world.Rank(), kP,
                                      kQuota, 9);
    auto tr = jsort::MakeRbcTransport(rw);
    JQuickStats stats;
    jsort::JQuickSort(tr, std::move(input), JQuickConfig{}, &stats);
    // +1: the 2-process base case resends the local slice once.
    EXPECT_LE(stats.elements_sent,
              static_cast<std::int64_t>(stats.distributed_levels + 1) *
                  kQuota);
  });
}

TEST(JQuickAnalysis, DeterministicForFixedSeed) {
  // Same seed, same input -> identical output on every rank.
  constexpr int kP = 6;
  testutil::PerRank<std::vector<double>> first(kP), second(kP);
  for (int round = 0; round < 2; ++round) {
    RunRanks(kP, [&](mpisim::Comm& world) {
      rbc::Comm rw;
      rbc::Create_RBC_Comm(world, &rw);
      auto input = jsort::GenerateInput(InputKind::kUniform, world.Rank(),
                                        kP, 32, 55);
      auto tr = jsort::MakeRbcTransport(rw);
      JQuickConfig cfg;
      cfg.seed = 99;
      auto out = jsort::JQuickSort(tr, std::move(input), cfg);
      (round == 0 ? first : second).Set(world.Rank(), std::move(out));
    });
  }
  for (int r = 0; r < kP; ++r) EXPECT_EQ(first[r], second[r]);
}

}  // namespace
