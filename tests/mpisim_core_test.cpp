// Core substrate units: datatypes/reductions, groups, runtime behaviour
// (error propagation, determinism of the virtual clock, deadlock
// detection), and the mailbox.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "testutil.hpp"

namespace {

using mpisim::ApplyReduce;
using mpisim::Datatype;
using mpisim::Group;
using mpisim::RankRange;
using mpisim::ReduceOp;

TEST(Datatypes, SizesMatchWireFormat) {
  EXPECT_EQ(mpisim::SizeOf(Datatype::kByte), 1u);
  EXPECT_EQ(mpisim::SizeOf(Datatype::kInt32), 4u);
  EXPECT_EQ(mpisim::SizeOf(Datatype::kInt64), 8u);
  EXPECT_EQ(mpisim::SizeOf(Datatype::kFloat64), 8u);
  EXPECT_EQ(mpisim::SizeOf(Datatype::kPairDoubleDouble), 16u);
}

TEST(Reductions, ArithmeticOps) {
  const std::int64_t a[3] = {1, 5, -2};
  std::int64_t b[3] = {10, 2, 3};
  ApplyReduce(ReduceOp::kSum, Datatype::kInt64, a, b, 3);
  EXPECT_EQ(b[0], 11);
  EXPECT_EQ(b[1], 7);
  EXPECT_EQ(b[2], 1);
  std::int64_t c[3] = {10, 2, 3};
  ApplyReduce(ReduceOp::kMin, Datatype::kInt64, a, c, 3);
  EXPECT_EQ(c[0], 1);
  EXPECT_EQ(c[1], 2);
  EXPECT_EQ(c[2], -2);
  std::int64_t d[3] = {10, 2, 3};
  ApplyReduce(ReduceOp::kMax, Datatype::kInt64, a, d, 3);
  EXPECT_EQ(d[0], 10);
  EXPECT_EQ(d[1], 5);
  EXPECT_EQ(d[2], 3);
}

TEST(Reductions, BitwiseOps) {
  const std::uint32_t a = 0b1100;
  std::uint32_t band = 0b1010, bor = 0b1010, bxor = 0b1010;
  ApplyReduce(ReduceOp::kBand, Datatype::kUint32, &a, &band, 1);
  ApplyReduce(ReduceOp::kBor, Datatype::kUint32, &a, &bor, 1);
  ApplyReduce(ReduceOp::kBxor, Datatype::kUint32, &a, &bxor, 1);
  EXPECT_EQ(band, 0b1000u);
  EXPECT_EQ(bor, 0b1110u);
  EXPECT_EQ(bxor, 0b0110u);
}

TEST(Reductions, PairSelection) {
  const mpisim::PairDD a{2.0, 20.0};
  mpisim::PairDD hi{1.0, 10.0};
  ApplyReduce(ReduceOp::kMaxPairFirst, Datatype::kPairDoubleDouble, &a, &hi,
              1);
  EXPECT_DOUBLE_EQ(hi.second, 20.0);
  mpisim::PairII lo{{3}, {30}};
  const mpisim::PairII b{2, 99};
  ApplyReduce(ReduceOp::kMinPairFirst, Datatype::kPairInt64Int64, &b, &lo,
              1);
  EXPECT_EQ(lo.second, 99);
}

TEST(Reductions, InvalidCombinationsThrow) {
  double a = 1, b = 2;
  EXPECT_THROW(ApplyReduce(ReduceOp::kBand, Datatype::kFloat64, &a, &b, 1),
               mpisim::UsageError);
  mpisim::PairDD pa{1, 1}, pb{2, 2};
  EXPECT_THROW(
      ApplyReduce(ReduceOp::kSum, Datatype::kPairDoubleDouble, &pa, &pb, 1),
      mpisim::UsageError);
}

TEST(Groups, WorldIsRangeFormat) {
  Group g = Group::World(100);
  EXPECT_EQ(g.Size(), 100);
  EXPECT_FALSE(g.IsExplicit());
  EXPECT_EQ(g.StorageEntries(), 1u);  // O(1) storage
  EXPECT_EQ(g.WorldRank(57), 57);
  EXPECT_EQ(g.RankOfWorld(99), 99);
}

TEST(Groups, StridedRangeArithmetic) {
  Group g = Group::FromRanges({RankRange{10, 30, 5}});  // 10,15,20,25,30
  EXPECT_EQ(g.Size(), 5);
  EXPECT_EQ(g.WorldRank(2), 20);
  EXPECT_EQ(g.RankOfWorld(25), 3);
  EXPECT_EQ(g.RankOfWorld(12), -1);
}

TEST(Groups, MultiRangeConcatenation) {
  Group g = Group::FromRanges({RankRange{0, 1, 1}, RankRange{8, 9, 1}});
  EXPECT_EQ(g.Size(), 4);
  EXPECT_EQ(g.WorldRank(2), 8);
  EXPECT_EQ(g.RankOfWorld(9), 3);
}

TEST(Groups, ContiguousRangeDetection) {
  Group parent = Group::FromRanges({RankRange{4, 19, 1}});
  Group child = Group::FromRanges({RankRange{8, 11, 1}});
  const auto range = child.AsContiguousRangeOf(parent);
  ASSERT_TRUE(range.has_value());
  EXPECT_EQ(range->first, 4);
  EXPECT_EQ(range->second, 7);
  Group strided = Group::FromRanges({RankRange{4, 10, 2}});
  EXPECT_FALSE(strided.AsContiguousRangeOf(parent).has_value());
  Group outsider = Group::FromRanges({RankRange{0, 3, 1}});
  EXPECT_FALSE(outsider.AsContiguousRangeOf(parent).has_value());
}

TEST(Groups, ExplicitContiguousRangeDetection) {
  Group parent = Group::World(10);
  Group child = Group::FromExplicit({3, 4, 5});
  const auto range = child.AsContiguousRangeOf(parent);
  ASSERT_TRUE(range.has_value());
  EXPECT_EQ(range->first, 3);
  Group shuffled = Group::FromExplicit({4, 3, 5});
  EXPECT_FALSE(shuffled.AsContiguousRangeOf(parent).has_value());
}

TEST(Groups, MaterializedPreservesOrder) {
  Group g = Group::FromRanges({RankRange{6, 2, 1}});  // empty range
  EXPECT_EQ(g.Size(), 0);
  Group h = Group::FromRanges({RankRange{2, 6, 2}}).Materialized();
  EXPECT_TRUE(h.IsExplicit());
  EXPECT_EQ(h.Size(), 3);
  EXPECT_EQ(h.WorldRank(1), 4);
}

TEST(Groups, DuplicateWorldRankThrows) {
  EXPECT_THROW(Group::FromExplicit({1, 2, 1}), mpisim::UsageError);
}

TEST(Runtime, ExceptionInOneRankPropagatesAndUnblocksOthers) {
  // Rank 1 throws while rank 0 blocks in a receive that will never be
  // matched; the abort machinery must wake rank 0 and rethrow rank 1's
  // error from Run().
  mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = 2});
  EXPECT_THROW(rt.Run([](mpisim::Comm& world) {
                 if (world.Rank() == 1) {
                   throw std::logic_error("rank 1 failed");
                 }
                 int buf = 0;
                 mpisim::Recv(&buf, 1, Datatype::kInt32, 1, 0, world);
               }),
               std::logic_error);
}

TEST(Runtime, DeadlockTimeoutFiresInsteadOfHanging) {
  mpisim::Runtime::Options opts;
  opts.num_ranks = 2;
  opts.deadlock_timeout = std::chrono::milliseconds(200);
  mpisim::Runtime rt(opts);
  EXPECT_THROW(rt.Run([](mpisim::Comm& world) {
                 int buf = 0;
                 // Both ranks receive, nobody sends: a real deadlock.
                 mpisim::Recv(&buf, 1, Datatype::kInt32, 1 - world.Rank(),
                              0, world);
               }),
               mpisim::DeadlockError);
}

TEST(Runtime, VirtualClockIsDeterministic) {
  auto run_once = [] {
    mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = 8});
    rt.Run([](mpisim::Comm& world) {
      std::vector<double> v(100, 1.0);
      mpisim::Bcast(v.data(), 100, Datatype::kFloat64, 0, world);
      double sum = 0;
      mpisim::Allreduce(v.data(), &sum, 1, Datatype::kFloat64,
                        ReduceOp::kSum, world);
      mpisim::Barrier(world);
    });
    return rt.MaxVirtualTime();
  };
  const double a = run_once();
  const double b = run_once();
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_GT(a, 0.0);
}

TEST(Runtime, ResetClocksBetweenMeasurements) {
  mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = 2});
  rt.Run([](mpisim::Comm& world) { mpisim::Barrier(world); });
  EXPECT_GT(rt.MaxVirtualTime(), 0.0);
  rt.ResetClocksAndStats();
  EXPECT_DOUBLE_EQ(rt.MaxVirtualTime(), 0.0);
  EXPECT_EQ(rt.TotalStats().messages_sent, 0u);
}

TEST(Runtime, OperationsOutsideRankThreadThrow) {
  EXPECT_THROW(mpisim::Ctx(), mpisim::UsageError);
  EXPECT_FALSE(mpisim::InsideRank());
}

TEST(Runtime, RunCanBeInvokedRepeatedly) {
  mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = 3});
  for (int i = 0; i < 3; ++i) {
    rt.Run([i](mpisim::Comm& world) {
      std::int64_t v = world.Rank() == 0 ? i : -1;
      mpisim::Bcast(&v, 1, Datatype::kInt64, 0, world);
      EXPECT_EQ(v, i);
    });
  }
}

TEST(Mailbox, MatchingIsFifoPerEnvelope) {
  mpisim::Mailbox mb;
  for (int i = 0; i < 3; ++i) {
    mpisim::Message m;
    m.env = mpisim::Envelope{.context = 1, .source = 0, .source_global = 0,
                             .tag = 5};
    m.payload.resize(1, static_cast<std::byte>(i));
    mb.Post(std::move(m));
  }
  for (int i = 0; i < 3; ++i) {
    auto m = mb.TryPop(1, 0, 5);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(static_cast<int>(m->payload[0]), i);
  }
  EXPECT_FALSE(mb.TryPop(1, 0, 5).has_value());
}

TEST(Mailbox, WildcardsMatchAnySourceAndTag) {
  mpisim::Mailbox mb;
  mpisim::Message m;
  m.env = mpisim::Envelope{.context = 7, .source = 3, .source_global = 3,
                           .tag = 9};
  mb.Post(std::move(m));
  mpisim::Envelope env;
  std::size_t bytes = 0;
  EXPECT_FALSE(mb.TryPeek(8, mpisim::kAnySource, mpisim::kAnyTag, &env,
                          &bytes));  // wrong context
  EXPECT_TRUE(mb.TryPeek(7, mpisim::kAnySource, mpisim::kAnyTag, &env,
                         &bytes));
  EXPECT_EQ(env.source, 3);
  EXPECT_EQ(env.tag, 9);
  EXPECT_TRUE(mb.TryPop(7, 3, 9).has_value());
}

}  // namespace
