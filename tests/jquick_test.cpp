// End-to-end Janus Quicksort: sortedness, permutation preservation and
// perfect balance over a grid of (p, n/p, input kind, transport, pivot
// policy, schedule).
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "sort/checks.hpp"
#include "sort/jquick.hpp"
#include "sort/workload.hpp"
#include "testutil.hpp"

namespace {

using jsort::InputKind;
using jsort::JQuickConfig;
using jsort::JQuickSort;
using jsort::PivotPolicy;
using jsort::SplitSchedule;
using testutil::RunRanks;

enum class Backend { kRbc, kMpi, kIcomm };

std::shared_ptr<jsort::Transport> MakeTransport(Backend b,
                                                mpisim::Comm& world) {
  switch (b) {
    case Backend::kRbc: {
      rbc::Comm rw;
      rbc::Create_RBC_Comm(world, &rw);
      return jsort::MakeRbcTransport(rw);
    }
    case Backend::kMpi:
      return jsort::MakeMpiTransport(world);
    case Backend::kIcomm:
      return jsort::MakeIcommTransport(world);
  }
  return nullptr;
}

/// Runs JQuick and verifies the three output invariants.
void CheckJQuick(int p, std::int64_t quota, InputKind kind, Backend backend,
                 const JQuickConfig& cfg) {
  RunRanks(p, [&](mpisim::Comm& world) {
    rbc::Comm rw;
    rbc::Create_RBC_Comm(world, &rw);
    auto input =
        jsort::GenerateInput(kind, world.Rank(), p, quota, cfg.seed + 7);
    const auto before = jsort::GlobalFingerprint(input, rw);
    auto tr = MakeTransport(backend, world);
    const auto out = JQuickSort(tr, std::move(input), cfg);
    // Perfect balance: exactly quota elements on every rank.
    EXPECT_EQ(static_cast<std::int64_t>(out.size()), quota);
    // Permutation: same global multiset.
    const auto after = jsort::GlobalFingerprint(out, rw);
    EXPECT_EQ(before, after);
    // Globally sorted.
    EXPECT_TRUE(jsort::IsGloballySorted(out, rw));
  });
}

using GridParam = std::tuple<int, int, InputKind>;

class JQuickGrid : public ::testing::TestWithParam<GridParam> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, JQuickGrid,
    ::testing::Combine(
        ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 16),  // p (any count!)
        ::testing::Values(1, 2, 7, 64),                  // n/p
        ::testing::Values(InputKind::kUniform, InputKind::kSortedAsc,
                          InputKind::kSortedDesc, InputKind::kAllEqual,
                          InputKind::kFewDistinct)));

TEST_P(JQuickGrid, SortsWithRbcTransport) {
  const auto [p, quota, kind] = GetParam();
  CheckJQuick(p, quota, kind, Backend::kRbc, JQuickConfig{});
}

class JQuickBackends : public ::testing::TestWithParam<GridParam> {};

INSTANTIATE_TEST_SUITE_P(
    SmallSweep, JQuickBackends,
    ::testing::Combine(::testing::Values(4, 7, 9),
                       ::testing::Values(8, 32),
                       ::testing::Values(InputKind::kUniform,
                                         InputKind::kFewDistinct)));

TEST_P(JQuickBackends, SortsWithMpiTransport) {
  const auto [p, quota, kind] = GetParam();
  CheckJQuick(p, quota, kind, Backend::kMpi, JQuickConfig{});
}

TEST_P(JQuickBackends, SortsWithIcommTransport) {
  const auto [p, quota, kind] = GetParam();
  CheckJQuick(p, quota, kind, Backend::kIcomm, JQuickConfig{});
}

TEST(JQuick, RandomElementPivotPolicy) {
  JQuickConfig cfg;
  cfg.pivot = PivotPolicy::kRandomElement;
  CheckJQuick(8, 32, InputKind::kUniform, Backend::kRbc, cfg);
  CheckJQuick(5, 16, InputKind::kFewDistinct, Backend::kRbc, cfg);
}

TEST(JQuick, CascadedSchedule) {
  JQuickConfig cfg;
  cfg.schedule = SplitSchedule::kCascaded;
  CheckJQuick(9, 16, InputKind::kUniform, Backend::kRbc, cfg);
  CheckJQuick(9, 16, InputKind::kUniform, Backend::kMpi, cfg);
}

TEST(JQuick, ManySeedsStayCorrect) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    JQuickConfig cfg;
    cfg.seed = seed;
    CheckJQuick(6, 10, InputKind::kUniform, Backend::kRbc, cfg);
  }
}

TEST(JQuick, GaussianAndZipfInputs) {
  CheckJQuick(8, 50, InputKind::kGaussian, Backend::kRbc, JQuickConfig{});
  CheckJQuick(8, 50, InputKind::kZipf, Backend::kRbc, JQuickConfig{});
  CheckJQuick(8, 50, InputKind::kBucketKiller, Backend::kRbc,
              JQuickConfig{});
}

TEST(JQuick, LargerRun) {
  CheckJQuick(16, 512, InputKind::kUniform, Backend::kRbc, JQuickConfig{});
}

TEST(JQuick, PaddedHandlesUnevenInput) {
  // Rank r contributes r elements: n is not a multiple of p and per-rank
  // sizes differ.
  constexpr int kP = 5;
  RunRanks(kP, [](mpisim::Comm& world) {
    rbc::Comm rw;
    rbc::Create_RBC_Comm(world, &rw);
    auto input = jsort::GenerateInput(InputKind::kUniform, world.Rank(), kP,
                                      world.Rank(), 3);
    const auto before = jsort::GlobalFingerprint(input, rw);
    auto tr = MakeTransport(Backend::kRbc, world);
    const auto out = jsort::JQuickSortPadded(tr, std::move(input));
    const auto after = jsort::GlobalFingerprint(out, rw);
    EXPECT_EQ(before, after);
    EXPECT_TRUE(jsort::IsGloballySorted(out, rw));
  });
}

TEST(JQuick, StatsReportJanusAndLevels) {
  constexpr int kP = 8;
  RunRanks(kP, [](mpisim::Comm& world) {
    rbc::Comm rw;
    rbc::Create_RBC_Comm(world, &rw);
    auto input = jsort::GenerateInput(InputKind::kUniform, world.Rank(), kP,
                                      64, 11);
    auto tr = MakeTransport(Backend::kRbc, world);
    jsort::JQuickStats stats;
    const auto out = JQuickSort(tr, std::move(input), JQuickConfig{}, &stats);
    EXPECT_EQ(out.size(), 64u);
    EXPECT_GE(stats.distributed_levels, 1);
    EXPECT_GE(stats.base_tasks_1p + stats.base_tasks_2p, 1);
  });
}

TEST(JQuick, SingleRankSortsLocally) {
  CheckJQuick(1, 100, InputKind::kUniform, Backend::kRbc, JQuickConfig{});
}

TEST(JQuick, TwoRanksUseBaseCaseOnly) {
  RunRanks(2, [](mpisim::Comm& world) {
    rbc::Comm rw;
    rbc::Create_RBC_Comm(world, &rw);
    auto input = jsort::GenerateInput(InputKind::kUniform, world.Rank(), 2,
                                      32, 5);
    auto tr = MakeTransport(Backend::kRbc, world);
    jsort::JQuickStats stats;
    const auto out = JQuickSort(tr, std::move(input), JQuickConfig{}, &stats);
    EXPECT_EQ(stats.distributed_levels, 0);
    EXPECT_EQ(stats.base_tasks_2p, 1);
    EXPECT_EQ(out.size(), 32u);
    EXPECT_TRUE(jsort::IsGloballySorted(out, rw));
  });
}

}  // namespace
