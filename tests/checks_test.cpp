// The distributed verification helpers themselves (they guard every other
// sorting test, so they need their own adversarial coverage).
#include <gtest/gtest.h>

#include <vector>

#include "sort/checks.hpp"
#include "testutil.hpp"

namespace {

using testutil::RunRanks;

void WithRbc(int p, const std::function<void(rbc::Comm&)>& fn) {
  RunRanks(p, [&](mpisim::Comm& world) {
    rbc::Comm rw;
    rbc::Create_RBC_Comm(world, &rw);
    fn(rw);
  });
}

TEST(Fingerprint, DetectsSingleElementChange) {
  WithRbc(4, [](rbc::Comm& rw) {
    std::vector<double> data{1, 2, 3};
    const auto a = jsort::GlobalFingerprint(data, rw);
    if (rw.Rank() == 2) data[1] = 2.0000001;
    const auto b = jsort::GlobalFingerprint(data, rw);
    EXPECT_FALSE(a == b);
  });
}

TEST(Fingerprint, DetectsDuplicateSubstitution) {
  // {x, x, y} vs {x, y, y} -- an xor-based hash would miss this.
  WithRbc(1, [](rbc::Comm& rw) {
    const std::vector<double> a{5.0, 5.0, 7.0};
    const std::vector<double> b{5.0, 7.0, 7.0};
    EXPECT_FALSE(jsort::GlobalFingerprint(a, rw) ==
                 jsort::GlobalFingerprint(b, rw));
  });
}

TEST(Fingerprint, InvariantUnderRedistribution) {
  WithRbc(3, [](rbc::Comm& rw) {
    // Same global multiset {0..8}, distributed two different ways.
    std::vector<double> byrank, skewed;
    for (int i = 0; i < 3; ++i) {
      byrank.push_back(rw.Rank() * 3 + i);
    }
    if (rw.Rank() == 0) {
      skewed = {0, 1, 2, 3, 4, 5, 6, 7, 8};
    }
    EXPECT_EQ(jsort::GlobalFingerprint(byrank, rw),
              jsort::GlobalFingerprint(skewed, rw));
  });
}

TEST(Sorted, AcceptsSortedAcrossRanks) {
  WithRbc(4, [](rbc::Comm& rw) {
    std::vector<double> data;
    for (int i = 0; i < 5; ++i) data.push_back(rw.Rank() * 5 + i);
    EXPECT_TRUE(jsort::IsGloballySorted(data, rw));
  });
}

TEST(Sorted, RejectsLocalDisorder) {
  WithRbc(4, [](rbc::Comm& rw) {
    std::vector<double> data{1.0, 0.0};
    EXPECT_FALSE(jsort::IsGloballySorted(data, rw));
  });
}

TEST(Sorted, RejectsBoundaryViolation) {
  WithRbc(2, [](rbc::Comm& rw) {
    // Locally sorted but rank 0's last element exceeds rank 1's first.
    const std::vector<double> data =
        rw.Rank() == 0 ? std::vector<double>{1, 9} : std::vector<double>{5, 6};
    EXPECT_FALSE(jsort::IsGloballySorted(data, rw));
  });
}

TEST(Sorted, ToleratesEmptyRanks) {
  WithRbc(4, [](rbc::Comm& rw) {
    std::vector<double> data;
    if (rw.Rank() == 1) data = {3.0, 4.0};
    if (rw.Rank() == 3) data = {5.0};
    EXPECT_TRUE(jsort::IsGloballySorted(data, rw));
  });
}

TEST(Sorted, BoundaryTiesAreSorted) {
  WithRbc(2, [](rbc::Comm& rw) {
    const std::vector<double> data{7.0, 7.0};  // equal across the boundary
    EXPECT_TRUE(jsort::IsGloballySorted(data, rw));
  });
}

TEST(BalanceCheck, ReportsSpread) {
  WithRbc(3, [](rbc::Comm& rw) {
    std::vector<double> data(static_cast<std::size_t>(rw.Rank() + 1), 0.0);
    const auto b = jsort::GlobalBalance(data, rw);
    EXPECT_EQ(b.min_count, 1);
    EXPECT_EQ(b.max_count, 3);
  });
}

}  // namespace
