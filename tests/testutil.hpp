// Shared helpers for the multi-rank tests.
#pragma once

#include <gtest/gtest.h>

#include <functional>
#include <mutex>
#include <vector>

#include "mpisim/mpisim.hpp"
#include "rbc/rbc.hpp"

namespace testutil {

/// Runs `fn(world)` on p ranks with default options.
inline void RunRanks(int p, const std::function<void(mpisim::Comm&)>& fn) {
  mpisim::Runtime::Exec(p, fn);
}

/// Runs `fn(world, rt)` on p ranks with access to the runtime.
inline void RunRanks(
    mpisim::Runtime::Options opts,
    const std::function<void(mpisim::Comm&, mpisim::Runtime&)>& fn) {
  mpisim::Runtime rt(opts);
  rt.Run([&](mpisim::Comm& world) { fn(world, rt); });
}

/// Runs `fn(rbc_world)` on p ranks with an RBC communicator over the world.
inline void RunRbc(int p, const std::function<void(rbc::Comm&)>& fn) {
  RunRanks(p, [&](mpisim::Comm& world) {
    rbc::Comm rw;
    rbc::Create_RBC_Comm(world, &rw);
    fn(rw);
  });
}

/// Thread-safe per-rank result collector.
template <typename T>
class PerRank {
 public:
  explicit PerRank(int p) : values_(p) {}

  void Set(int rank, T value) {
    std::lock_guard<std::mutex> lock(mu_);
    values_[static_cast<std::size_t>(rank)] = std::move(value);
  }

  const std::vector<T>& Values() const { return values_; }
  const T& operator[](int rank) const {
    return values_[static_cast<std::size_t>(rank)];
  }

 private:
  std::mutex mu_;
  std::vector<T> values_;
};

}  // namespace testutil
