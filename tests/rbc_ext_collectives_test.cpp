// Extension collectives (beyond Table I): Allreduce, Allgather, Exscan,
// Scatter and the large-input broadcast, blocking and nonblocking, over
// full ranges and sub-ranges.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "testutil.hpp"

namespace {

using rbc::Datatype;
using rbc::ReduceOp;
using testutil::RunRanks;
using testutil::RunRbc;

class ExtCollSweep : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(ProcessCounts, ExtCollSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

TEST_P(ExtCollSweep, AllreduceDistributesSum) {
  const int p = GetParam();
  RunRbc(p, [p](rbc::Comm& rw) {
    const std::int64_t mine = rw.Rank() + 1;
    std::int64_t out = 0;
    rbc::Allreduce(&mine, &out, 1, Datatype::kInt64, ReduceOp::kSum, rw);
    EXPECT_EQ(out, static_cast<std::int64_t>(p) * (p + 1) / 2);
  });
}

TEST_P(ExtCollSweep, IallreduceNonblocking) {
  const int p = GetParam();
  RunRbc(p, [p](rbc::Comm& rw) {
    const std::int64_t mine = rw.Rank();
    std::int64_t out = -1;
    rbc::Request req;
    rbc::Iallreduce(&mine, &out, 1, Datatype::kInt64, ReduceOp::kMax, rw,
                    &req);
    rbc::Wait(&req);
    EXPECT_EQ(out, p - 1);
  });
}

TEST_P(ExtCollSweep, AllgatherAssemblesEverywhere) {
  const int p = GetParam();
  RunRbc(p, [p](rbc::Comm& rw) {
    const std::int64_t mine[2] = {rw.Rank(), rw.Rank() * 7};
    std::vector<std::int64_t> all(static_cast<std::size_t>(2 * p), -1);
    rbc::Allgather(mine, 2, Datatype::kInt64, all.data(), rw);
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(2 * r)], r);
      EXPECT_EQ(all[static_cast<std::size_t>(2 * r + 1)], r * 7);
    }
  });
}

TEST_P(ExtCollSweep, ExscanMatchesExclusivePrefix) {
  const int p = GetParam();
  RunRbc(p, [](rbc::Comm& rw) {
    const std::int64_t mine = rw.Rank() + 1;
    std::int64_t out = -1;
    rbc::Exscan(&mine, &out, 1, Datatype::kInt64, ReduceOp::kSum, rw);
    const std::int64_t r = rw.Rank();
    EXPECT_EQ(out, r * (r + 1) / 2);  // 0 on rank 0
  });
}

TEST_P(ExtCollSweep, ScatterDistributesBlocks) {
  const int p = GetParam();
  RunRbc(p, [p](rbc::Comm& rw) {
    for (int root = 0; root < std::min(p, 3); ++root) {
      std::vector<std::int64_t> send;
      if (rw.Rank() == root) {
        for (int r = 0; r < p; ++r) {
          send.push_back(100 + r);
          send.push_back(200 + r);
        }
      }
      std::int64_t recv[2] = {-1, -1};
      rbc::Scatter(send.data(), 2, Datatype::kInt64, recv, root, rw);
      EXPECT_EQ(recv[0], 100 + rw.Rank());
      EXPECT_EQ(recv[1], 200 + rw.Rank());
    }
  });
}

TEST_P(ExtCollSweep, IscatterNonblocking) {
  const int p = GetParam();
  RunRbc(p, [p](rbc::Comm& rw) {
    std::vector<double> send;
    if (rw.Rank() == 0) {
      for (int r = 0; r < p; ++r) send.push_back(r * 0.5);
    }
    double recv = -1;
    rbc::Request req;
    rbc::Iscatter(send.data(), 1, Datatype::kFloat64, &recv, 0, rw, &req);
    rbc::Wait(&req);
    EXPECT_DOUBLE_EQ(recv, rw.Rank() * 0.5);
  });
}

class BcastLargeSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

INSTANTIATE_TEST_SUITE_P(
    Sizes, BcastLargeSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 7, 8, 16),
                       ::testing::Values(1, 5, 64, 1000, 4097)));

TEST_P(BcastLargeSweep, MatchesBinomialBcast) {
  const auto [p, n] = GetParam();
  RunRbc(p, [n = n](rbc::Comm& rw) {
    for (int root : {0, rw.Size() - 1}) {
      std::vector<double> expect(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) {
        expect[static_cast<std::size_t>(i)] = root * 10000.0 + i;
      }
      std::vector<double> buf(static_cast<std::size_t>(n), -1.0);
      if (rw.Rank() == root) buf = expect;
      rbc::BcastLarge(buf.data(), n, Datatype::kFloat64, root, rw);
      EXPECT_EQ(buf, expect);
    }
  });
}

TEST(BcastLarge, CheaperThanTreeForLargePayloadInModelTime) {
  mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = 16});
  double tree_time = 0.0, pipeline_time = 0.0;
  rt.Run([&](mpisim::Comm& world) {
    rbc::Comm rw;
    rbc::Create_RBC_Comm(world, &rw);
    constexpr int kN = 1 << 16;
    std::vector<double> buf(kN, 1.0);
    mpisim::Barrier(world);
    double v0 = mpisim::Ctx().clock.Now();
    rbc::Bcast(buf.data(), kN, Datatype::kFloat64, 0, rw);
    const double tree = mpisim::Ctx().clock.Now() - v0;
    mpisim::Barrier(world);
    v0 = mpisim::Ctx().clock.Now();
    rbc::BcastLarge(buf.data(), kN, Datatype::kFloat64, 0, rw);
    const double pipe = mpisim::Ctx().clock.Now() - v0;
    double tree_max = 0, pipe_max = 0;
    mpisim::Allreduce(&tree, &tree_max, 1, mpisim::Datatype::kFloat64,
                      mpisim::ReduceOp::kMax, world);
    mpisim::Allreduce(&pipe, &pipe_max, 1, mpisim::Datatype::kFloat64,
                      mpisim::ReduceOp::kMax, world);
    if (world.Rank() == 0) {
      tree_time = tree_max;
      pipeline_time = pipe_max;
    }
  });
  EXPECT_LT(pipeline_time, tree_time);
}

TEST(ExtColl, AllreduceOnSubRange) {
  RunRanks(8, [](mpisim::Comm& world) {
    rbc::Comm rw, mid;
    rbc::Create_RBC_Comm(world, &rw);
    rbc::Split_RBC_Comm(rw, 2, 6, &mid);
    if (mid.Rank() < 0) return;
    const std::int64_t mine = world.Rank();
    std::int64_t sum = 0;
    rbc::Allreduce(&mine, &sum, 1, Datatype::kInt64, ReduceOp::kSum, mid);
    EXPECT_EQ(sum, 2 + 3 + 4 + 5 + 6);
  });
}

TEST(ExtColl, IexscanNonblocking) {
  RunRbc(6, [](rbc::Comm& rw) {
    const std::int64_t mine = 2;
    std::int64_t out = -1;
    rbc::Request req;
    rbc::Iexscan(&mine, &out, 1, Datatype::kInt64, ReduceOp::kSum, rw, &req);
    rbc::Wait(&req);
    EXPECT_EQ(out, 2 * rw.Rank());
  });
}

}  // namespace
