// Table I completeness: every operation and class the paper lists exists
// with working blocking and nonblocking forms, and the whole surface
// composes in one scenario.
#include <gtest/gtest.h>

#include <vector>

#include "testutil.hpp"

namespace {

using rbc::Datatype;
using rbc::ReduceOp;
using testutil::RunRbc;

TEST(TableI, EveryListedOperationIsInvocable) {
  RunRbc(4, [](rbc::Comm& rw) {
    const int p = rw.Size();
    // Classes: rbc::Comm (rw), rbc::Request.
    rbc::Request req;
    int flag = 0;

    // Comm creation & introspection.
    rbc::Comm sub;
    rbc::Split_RBC_Comm(rw, 0, p - 1, &sub);
    int rank = -1, size = -1;
    rbc::Comm_rank(sub, &rank);
    rbc::Comm_size(sub, &size);
    EXPECT_EQ(size, p);

    // Blocking / nonblocking collectives.
    std::int64_t v = rank == 0 ? 1 : 0;
    rbc::Bcast(&v, 1, Datatype::kInt64, 0, sub);
    rbc::Ibcast(&v, 1, Datatype::kInt64, 0, sub, &req);
    rbc::Wait(&req);

    std::int64_t red = 0;
    rbc::Reduce(&v, &red, 1, Datatype::kInt64, ReduceOp::kSum, 0, sub);
    rbc::Ireduce(&v, &red, 1, Datatype::kInt64, ReduceOp::kSum, 0, sub,
                 &req);
    rbc::Wait(&req);

    std::int64_t scn = 0;
    rbc::Scan(&v, &scn, 1, Datatype::kInt64, ReduceOp::kSum, sub);
    rbc::Iscan(&v, &scn, 1, Datatype::kInt64, ReduceOp::kSum, sub, &req);
    rbc::Wait(&req);

    std::vector<std::int64_t> gat(static_cast<std::size_t>(p));
    rbc::Gather(&v, 1, Datatype::kInt64, gat.data(), 0, sub);
    rbc::Igather(&v, 1, Datatype::kInt64, gat.data(), 0, sub, &req);
    rbc::Wait(&req);

    std::vector<int> counts(static_cast<std::size_t>(p), 1);
    std::vector<int> displs(static_cast<std::size_t>(p));
    for (int i = 0; i < p; ++i) displs[static_cast<std::size_t>(i)] = i;
    rbc::Gatherv(&v, 1, Datatype::kInt64, gat.data(), counts, displs, 0,
                 sub);
    rbc::Igatherv(&v, 1, Datatype::kInt64, gat.data(), counts, displs, 0,
                  sub, &req);
    rbc::Wait(&req);

    rbc::Barrier(sub);
    rbc::Ibarrier(sub, &req);
    rbc::Wait(&req);

    // Point-to-point: Send/Isend, Recv/Irecv, Probe/Iprobe,
    // Test/Wait/Testall/Waitall.
    const int peer = rank ^ 1;
    const double out = rank;
    double in = -1;
    rbc::Request sreq, rreq;
    rbc::Isend(&out, 1, Datatype::kFloat64, peer, 1, sub, &sreq);
    rbc::Irecv(&in, 1, Datatype::kFloat64, peer, 1, sub, &rreq);
    std::vector<rbc::Request> reqs{sreq, rreq};
    rbc::Testall(reqs, &flag);
    rbc::Waitall(reqs);
    EXPECT_DOUBLE_EQ(in, peer);

    rbc::Send(&out, 1, Datatype::kFloat64, peer, 2, sub);
    rbc::Status st;
    rbc::Iprobe(rbc::kAnySource, 2, sub, &flag, &st);
    rbc::Probe(peer, 2, sub, &st);
    rbc::Recv(&in, 1, Datatype::kFloat64, peer, 2, sub, &st);
    EXPECT_DOUBLE_EQ(in, peer);
  });
}

TEST(TableI, RequestIsSmartPointerSemantics) {
  // Copies of a request share the underlying operation state (Section V-B
  // describes rbc::Request as a smart pointer).
  RunRbc(2, [](rbc::Comm& rw) {
    if (rw.Rank() == 0) {
      int v = 5;
      rbc::Send(&v, 1, Datatype::kInt32, 1, 3, rw);
    } else {
      int v = -1;
      rbc::Request a;
      rbc::Irecv(&v, 1, Datatype::kInt32, 0, 3, rw, &a);
      rbc::Request b = a;  // shared state
      rbc::Wait(&b);
      EXPECT_EQ(v, 5);
    }
  });
}

}  // namespace
