// The jsort::exchange redistribution layer: exscan interval computation,
// bucket exchange, and the coalesced / dense segment exchange, across all
// three Transport backends, with skewed partitions and empty ranks.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <random>
#include <thread>
#include <vector>

#include "sort/exchange.hpp"
#include "sort/jquick.hpp"
#include "sort/workload.hpp"
#include "testutil.hpp"

namespace {

using jsort::CapacityLayout;
using jsort::Transport;
using jsort::exchange::ExchangeStats;
using jsort::exchange::Mode;
using jsort::exchange::Segment;
using testutil::RunRanks;

enum class Backend { kRbc, kMpi, kIcomm };

std::shared_ptr<Transport> Make(Backend b, mpisim::Comm& world) {
  switch (b) {
    case Backend::kRbc: {
      rbc::Comm rw;
      rbc::Create_RBC_Comm(world, &rw);
      return jsort::MakeRbcTransport(rw);
    }
    case Backend::kMpi:
      return jsort::MakeMpiTransport(world);
    case Backend::kIcomm:
      return jsort::MakeIcommTransport(world);
  }
  return nullptr;
}

void WaitPoll(const jsort::Poll& p) {
  while (!p()) std::this_thread::yield();
}

class ExchangeSweep : public ::testing::TestWithParam<Backend> {};

INSTANTIATE_TEST_SUITE_P(Backends, ExchangeSweep,
                         ::testing::Values(Backend::kRbc, Backend::kMpi,
                                           Backend::kIcomm));

TEST_P(ExchangeSweep, ExscanCountComputesIntervals) {
  const Backend b = GetParam();
  RunRanks(6, [&](mpisim::Comm& world) {
    auto tr = Make(b, world);
    // Rank r holds r+1 elements; its interval starts at 1+2+...+r.
    const std::int64_t mine = tr->Rank() + 1;
    const std::int64_t begin = jsort::exchange::ExscanCount(*tr, mine, 7);
    const std::int64_t r = tr->Rank();
    EXPECT_EQ(begin, r * (r + 1) / 2);
  });
}

TEST_P(ExchangeSweep, BucketExchangeRoutesEverythingBySource) {
  const Backend b = GetParam();
  RunRanks(5, [&](mpisim::Comm& world) {
    auto tr = Make(b, world);
    const int p = tr->Size();
    const int me = tr->Rank();
    // Rank i sends i copies of (100*i + dest) to each dest.
    std::vector<std::vector<double>> buckets(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      buckets[static_cast<std::size_t>(d)].assign(
          static_cast<std::size_t>(me), 100.0 * me + d);
    }
    ExchangeStats stats;
    std::vector<double> got =
        jsort::exchange::ExchangeBuckets(*tr, buckets, 9, &stats);
    // From each source s: s copies of 100*s + me, ordered by source rank.
    std::vector<double> expect;
    for (int s = 0; s < p; ++s) {
      for (int c = 0; c < s; ++c) expect.push_back(100.0 * s + me);
    }
    EXPECT_EQ(got, expect);
    EXPECT_EQ(stats.messages_sent, p - 1);  // dense: empties transmitted
  });
}

TEST_P(ExchangeSweep, BucketExchangeHandlesSkewToOneRank) {
  const Backend b = GetParam();
  RunRanks(6, [&](mpisim::Comm& world) {
    auto tr = Make(b, world);
    const int p = tr->Size();
    const int me = tr->Rank();
    // Everything goes to rank 0; every other rank receives nothing.
    std::vector<std::vector<double>> buckets(static_cast<std::size_t>(p));
    buckets[0] = {me * 1.0, me * 1.0 + 0.5};
    std::vector<double> got =
        jsort::exchange::ExchangeBuckets(*tr, buckets, 9);
    if (me == 0) {
      std::vector<double> expect;
      for (int s = 0; s < p; ++s) {
        expect.push_back(s * 1.0);
        expect.push_back(s * 1.0 + 0.5);
      }
      EXPECT_EQ(got, expect);
    } else {
      EXPECT_TRUE(got.empty());
    }
  });
}

/// One uniform layout shared by the segment-exchange tests: p ranks of
/// capacity `cap` each.
CapacityLayout UniformLayout(int p, std::int64_t cap) {
  return CapacityLayout{.p = p, .quota = cap, .cap_first = cap,
                        .cap_last = cap};
}

/// Every rank holds `cap` elements of one region laid out in rank order
/// but rotated by one rank, so every element moves to the neighbour.
void RotationExchange(const std::shared_ptr<Transport>& tr, Mode mode) {
  const int p = tr->Size();
  const int me = tr->Rank();
  constexpr std::int64_t kCap = 8;
  const CapacityLayout layout = UniformLayout(p, kCap);
  // My elements occupy the slot interval of rank (me+1) % p.
  const int owner = (me + 1) % p;
  const std::int64_t begin = layout.PrefixBefore(owner);
  std::vector<double> data(static_cast<std::size_t>(kCap));
  for (std::int64_t i = 0; i < kCap; ++i) {
    data[static_cast<std::size_t>(i)] = static_cast<double>(begin + i);
  }
  std::vector<double> sink;
  std::vector<Segment> segs(1);
  segs[0] = Segment{data.data(), kCap, begin, &sink, kCap};
  ExchangeStats stats;
  jsort::Poll poll = jsort::exchange::StartSegmentExchange(
      tr, layout, std::move(segs), 11, mode, &stats);
  data.clear();  // the layer copied the payload out
  WaitPoll(poll);
  // I receive exactly my own capacity interval, in slot order from one
  // source.
  std::vector<double> expect(static_cast<std::size_t>(kCap));
  const std::int64_t my_begin = layout.PrefixBefore(me);
  for (std::int64_t i = 0; i < kCap; ++i) {
    expect[static_cast<std::size_t>(i)] = static_cast<double>(my_begin + i);
  }
  EXPECT_EQ(sink, expect);
  if (p > 1) {
    EXPECT_EQ(stats.elements_sent, kCap);
    if (mode == Mode::kAlltoallv) {
      EXPECT_EQ(stats.messages_sent, p - 1);  // dense rounds
    } else {
      EXPECT_EQ(stats.messages_sent, 1);  // skewed: one real destination
    }
  }
}

TEST_P(ExchangeSweep, SegmentExchangeCoalescedRotation) {
  const Backend b = GetParam();
  RunRanks(6, [&](mpisim::Comm& world) {
    RotationExchange(Make(b, world), Mode::kCoalesced);
  });
}

TEST_P(ExchangeSweep, SegmentExchangeSparseRotation) {
  const Backend b = GetParam();
  RunRanks(6, [&](mpisim::Comm& world) {
    RotationExchange(Make(b, world), Mode::kSparse);
  });
}

TEST_P(ExchangeSweep, SegmentExchangeDenseRotation) {
  const Backend b = GetParam();
  RunRanks(6, [&](mpisim::Comm& world) {
    RotationExchange(Make(b, world), Mode::kAlltoallv);
  });
}

/// Two regions (the jquick shape): small region [0, S), large [S, total);
/// every rank contributes an uneven share of each. Verifies per-segment
/// sinks receive exactly their region overlap, in both modes.
void TwoRegionExchange(const std::shared_ptr<Transport>& tr, Mode mode) {
  const int p = tr->Size();
  const int me = tr->Rank();
  constexpr std::int64_t kCap = 6;
  const CapacityLayout layout = UniformLayout(p, kCap);
  const std::int64_t total = layout.Total();
  // Skewed split: the small region covers the first 1/3 of slots (rounded
  // so it generally straddles a rank boundary -> a janus-style overlap).
  const std::int64_t s_total = total / 3 + 1;
  // Rank r holds small elements [r * s_total / p, (r+1) * s_total / p) and
  // the analogous slice of the large region -- uneven shares, some empty.
  const std::int64_t s_begin = me * s_total / p;
  const std::int64_t s_count = (me + 1) * s_total / p - s_begin;
  const std::int64_t l_total = total - s_total;
  const std::int64_t l_begin = s_total + me * l_total / p;
  const std::int64_t l_count =
      s_total + (me + 1) * l_total / p - l_begin;

  std::vector<double> small(static_cast<std::size_t>(s_count)),
      large(static_cast<std::size_t>(l_count));
  for (std::int64_t i = 0; i < s_count; ++i) {
    small[static_cast<std::size_t>(i)] = static_cast<double>(s_begin + i);
  }
  for (std::int64_t i = 0; i < l_count; ++i) {
    large[static_cast<std::size_t>(i)] = static_cast<double>(l_begin + i);
  }

  const std::int64_t expect_small =
      jsort::OverlapWithRegion(layout, me, 0, s_total);
  const std::int64_t expect_large =
      jsort::OverlapWithRegion(layout, me, s_total, total);
  std::vector<double> recv_small, recv_large;
  std::vector<Segment> segs(2);
  segs[0] = Segment{small.data(), s_count, s_begin, &recv_small,
                    expect_small};
  segs[1] = Segment{large.data(), l_count, l_begin, &recv_large,
                    expect_large};
  jsort::Poll poll = jsort::exchange::StartSegmentExchange(
      tr, layout, std::move(segs), 13, mode);
  small.clear();
  large.clear();
  WaitPoll(poll);

  ASSERT_EQ(static_cast<std::int64_t>(recv_small.size()), expect_small);
  ASSERT_EQ(static_cast<std::int64_t>(recv_large.size()), expect_large);
  // The slots of my capacity interval that fall into each region arrive
  // exactly once; order across sources is not specified, so sort.
  std::sort(recv_small.begin(), recv_small.end());
  std::sort(recv_large.begin(), recv_large.end());
  const std::int64_t my_begin = layout.PrefixBefore(me);
  std::vector<double> es, el;
  for (std::int64_t s = my_begin; s < my_begin + kCap; ++s) {
    if (s < s_total) {
      es.push_back(static_cast<double>(s));
    } else {
      el.push_back(static_cast<double>(s));
    }
  }
  EXPECT_EQ(recv_small, es);
  EXPECT_EQ(recv_large, el);
}

TEST_P(ExchangeSweep, TwoRegionSegmentExchangeCoalesced) {
  const Backend b = GetParam();
  RunRanks(7, [&](mpisim::Comm& world) {
    TwoRegionExchange(Make(b, world), Mode::kCoalesced);
  });
}

TEST_P(ExchangeSweep, TwoRegionSegmentExchangeDense) {
  const Backend b = GetParam();
  RunRanks(7, [&](mpisim::Comm& world) {
    TwoRegionExchange(Make(b, world), Mode::kAlltoallv);
  });
}

TEST_P(ExchangeSweep, TwoRegionSegmentExchangeSparse) {
  const Backend b = GetParam();
  RunRanks(7, [&](mpisim::Comm& world) {
    TwoRegionExchange(Make(b, world), Mode::kSparse);
  });
}

/// Randomized equivalence sweep: a globally-agreed random region split and
/// random per-rank slot runs (uniform and skewed layouts), exchanged under
/// every mode -- all modes must deliver exactly the same per-region
/// elements.
void RandomizedEquivalence(const std::shared_ptr<Transport>& tr,
                           std::uint64_t seed, bool skewed) {
  const int p = tr->Size();
  const int me = tr->Rank();
  // Layout and cut points are drawn from a seed-keyed rng every rank runs
  // identically, so all decisions stay globally consistent.
  std::mt19937_64 shared(seed);
  const std::int64_t quota = 6 + static_cast<std::int64_t>(shared() % 6);
  CapacityLayout layout{.p = p, .quota = quota, .cap_first = quota,
                        .cap_last = quota};
  if (skewed && p > 1) {
    layout.cap_first = 1 + static_cast<std::int64_t>(shared() % quota);
    layout.cap_last = 1 + static_cast<std::int64_t>(shared() % quota);
  }
  const std::int64_t total = layout.Total();

  // R regions split the slot space at sorted random cuts; rank r's run is
  // the r-th of p random slot intervals.
  constexpr int kRegions = 3;
  std::vector<std::int64_t> region_cuts{0};
  for (int i = 1; i < kRegions; ++i) {
    region_cuts.push_back(static_cast<std::int64_t>(shared() % (total + 1)));
  }
  region_cuts.push_back(total);
  std::sort(region_cuts.begin(), region_cuts.end());
  std::vector<std::int64_t> run_cuts{0};
  for (int i = 1; i < p; ++i) {
    run_cuts.push_back(static_cast<std::int64_t>(shared() % (total + 1)));
  }
  run_cuts.push_back(total);
  std::sort(run_cuts.begin(), run_cuts.end());
  const std::int64_t run_begin = run_cuts[static_cast<std::size_t>(me)];
  const std::int64_t run_end = run_cuts[static_cast<std::size_t>(me) + 1];

  // My run's slice of each region becomes one segment; data = slot values.
  std::vector<double> data(static_cast<std::size_t>(run_end - run_begin));
  for (std::int64_t i = 0; i < run_end - run_begin; ++i) {
    data[static_cast<std::size_t>(i)] = static_cast<double>(run_begin + i);
  }
  // One tag per mode run: back-to-back segment exchanges on one tag are
  // not safe for the probe-draining paths (a fast rank's next-run sends
  // could be drained into a slow rank's current run) -- the same reason
  // jquick tags each level distinctly.
  auto run_once = [&](Mode mode, int tag) {
    std::vector<std::vector<double>> sinks(kRegions);
    std::vector<Segment> segs;
    for (int rg = 0; rg < kRegions; ++rg) {
      const std::int64_t a =
          std::max(run_begin, region_cuts[static_cast<std::size_t>(rg)]);
      const std::int64_t b =
          std::min(run_end, region_cuts[static_cast<std::size_t>(rg) + 1]);
      const std::int64_t count = std::max<std::int64_t>(0, b - a);
      segs.push_back(Segment{
          count > 0 ? data.data() + (a - run_begin) : nullptr, count,
          count > 0 ? a : 0, &sinks[static_cast<std::size_t>(rg)],
          jsort::OverlapWithRegion(
              layout, me, region_cuts[static_cast<std::size_t>(rg)],
              region_cuts[static_cast<std::size_t>(rg) + 1])});
    }
    jsort::Poll poll = jsort::exchange::StartSegmentExchange(
        tr, layout, std::move(segs), tag, mode);
    WaitPoll(poll);
    for (auto& s : sinks) std::sort(s.begin(), s.end());
    return sinks;
  };

  const auto dense = run_once(Mode::kAlltoallv, 15);
  const auto coalesced = run_once(Mode::kCoalesced, 16);
  const auto sparse = run_once(Mode::kSparse, 17);
  const auto aut = run_once(Mode::kAuto, 18);
  EXPECT_EQ(dense, coalesced);
  EXPECT_EQ(dense, sparse);
  EXPECT_EQ(dense, aut);
  // And all of them deliver exactly my capacity slots, region by region.
  const std::int64_t my_begin = layout.PrefixBefore(me);
  const std::int64_t my_end = my_begin + layout.CapOf(me);
  for (int rg = 0; rg < kRegions; ++rg) {
    std::vector<double> expect;
    for (std::int64_t s = std::max(
             my_begin, region_cuts[static_cast<std::size_t>(rg)]);
         s < std::min(my_end,
                      region_cuts[static_cast<std::size_t>(rg) + 1]);
         ++s) {
      expect.push_back(static_cast<double>(s));
    }
    EXPECT_EQ(dense[static_cast<std::size_t>(rg)], expect) << "region " << rg;
  }
}

TEST_P(ExchangeSweep, RandomizedModeEquivalenceUniform) {
  const Backend b = GetParam();
  for (std::uint64_t seed : {11ull, 12ull, 13ull}) {
    RunRanks(8, [&](mpisim::Comm& world) {
      RandomizedEquivalence(Make(b, world), seed, /*skewed=*/false);
    });
  }
}

TEST_P(ExchangeSweep, RandomizedModeEquivalenceSkewed) {
  const Backend b = GetParam();
  for (std::uint64_t seed : {21ull, 22ull, 23ull}) {
    RunRanks(8, [&](mpisim::Comm& world) {
      RandomizedEquivalence(Make(b, world), seed, /*skewed=*/true);
    });
  }
}

/// Group-wise exchange (unknown receive counts): deterministic piece
/// assignment with empty pieces; sparse and dense paths must agree.
TEST_P(ExchangeSweep, GroupwiseSparseMatchesDense) {
  const Backend b = GetParam();
  RunRanks(6, [&](mpisim::Comm& world) {
    auto tr = Make(b, world);
    const int p = tr->Size();
    const int me = tr->Rank();
    // Rank r sends r copies of (100*r + d) to d = (r+1)%p and, when r is
    // even, 2 copies to d = (r+2)%p; odd ranks pass that entry empty.
    std::vector<double> a(static_cast<std::size_t>(me),
                          100.0 * me + (me + 1) % p);
    std::vector<double> c(2, 100.0 * me + (me + 2) % p);
    std::vector<jsort::exchange::Outgoing> out(2);
    out[0] = {(me + 1) % p, a.data(), static_cast<std::int64_t>(a.size())};
    out[1] = {(me + 2) % p, me % 2 == 0 ? c.data() : nullptr,
              me % 2 == 0 ? 2 : 0};
    jsort::exchange::ExchangeStats ds, ss;
    auto dense = jsort::exchange::ExchangeGroupwise(
        tr, out, 23, Mode::kAlltoallv, &ds);
    auto sparse = jsort::exchange::ExchangeGroupwise(
        tr, out, 23, Mode::kSparse, &ss);
    auto aut = jsort::exchange::ExchangeGroupwise(tr, out, 23, Mode::kAuto);
    EXPECT_EQ(dense, sparse);
    EXPECT_EQ(dense, aut);
    EXPECT_EQ(ds.elements_sent, ss.elements_sent);
    EXPECT_EQ(ds.messages_sent, p - 1);
    // Sparse: one message per non-empty non-self destination.
    std::int64_t expect_msgs = me > 0 ? 1 : 0;
    if (me % 2 == 0) ++expect_msgs;
    EXPECT_EQ(ss.messages_sent, expect_msgs);
  });
}

TEST_P(ExchangeSweep, SegmentExchangeAllElementsOnOneRank) {
  // Extreme skew: rank 0 holds every element; everyone else holds (and in
  // the end receives) their capacity share -- empty senders must complete.
  const Backend b = GetParam();
  RunRanks(5, [&](mpisim::Comm& world) {
    auto tr = Make(b, world);
    const int p = tr->Size();
    const int me = tr->Rank();
    constexpr std::int64_t kCap = 4;
    const CapacityLayout layout = UniformLayout(p, kCap);
    const std::int64_t total = layout.Total();
    std::vector<double> data;
    if (me == 0) {
      data.resize(static_cast<std::size_t>(total));
      std::iota(data.begin(), data.end(), 0.0);
    }
    std::vector<double> sink;
    std::vector<Segment> segs(1);
    segs[0] = Segment{data.data(),
                      static_cast<std::int64_t>(data.size()), 0, &sink,
                      kCap};
    jsort::Poll poll = jsort::exchange::StartSegmentExchange(
        tr, layout, std::move(segs), 17, Mode::kCoalesced);
    WaitPoll(poll);
    std::vector<double> expect(static_cast<std::size_t>(kCap));
    std::iota(expect.begin(), expect.end(),
              static_cast<double>(layout.PrefixBefore(me)));
    EXPECT_EQ(sink, expect);
  });
}

TEST(ExchangePlan, PlanFromIntervalMatchesChunks) {
  const CapacityLayout layout{.p = 4, .quota = 10, .cap_first = 3,
                              .cap_last = 10};
  // Interval [1, 17) spans rank 0 (slots 1..2), rank 1 (3..12), rank 2
  // (13..16 partial).
  const jsort::exchange::SendPlan plan =
      jsort::exchange::PlanFromInterval(layout, 1, 16, 4);
  ASSERT_EQ(plan.counts.size(), 4u);
  EXPECT_EQ(plan.counts[0], 2);
  EXPECT_EQ(plan.counts[1], 10);
  EXPECT_EQ(plan.counts[2], 4);
  EXPECT_EQ(plan.counts[3], 0);
  EXPECT_EQ(plan.displs[0], 0);
  EXPECT_EQ(plan.displs[1], 2);
  EXPECT_EQ(plan.displs[2], 12);
  EXPECT_EQ(plan.displs[3], 16);
}

/// JQuick routed through each forced exchange mode still sorts correctly
/// on every backend (the kAuto path is covered by the existing jquick
/// tests).
void SortWithMode(Backend b, Mode mode) {
  constexpr int kP = 9;
  constexpr std::int64_t kQuota = 40;
  testutil::PerRank<std::vector<double>> outs(kP);
  RunRanks(kP, [&](mpisim::Comm& world) {
    auto tr = Make(b, world);
    auto input = jsort::GenerateInput(jsort::InputKind::kUniform,
                                      world.Rank(), kP, kQuota, 21);
    jsort::JQuickConfig cfg;
    cfg.exchange_mode = mode;
    auto out = jsort::JQuickSort(tr, std::move(input), cfg);
    outs.Set(world.Rank(), std::move(out));
  });
  std::vector<double> all;
  for (int r = 0; r < kP; ++r) {
    EXPECT_EQ(outs[r].size(), static_cast<std::size_t>(kQuota));
    EXPECT_TRUE(std::is_sorted(outs[r].begin(), outs[r].end()));
    if (r > 0 && !outs[r].empty() && !outs[r - 1].empty()) {
      EXPECT_LE(outs[r - 1].back(), outs[r].front());
    }
    all.insert(all.end(), outs[r].begin(), outs[r].end());
  }
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
}

class JQuickModeSweep
    : public ::testing::TestWithParam<std::tuple<Backend, Mode>> {};

INSTANTIATE_TEST_SUITE_P(
    BackendsByMode, JQuickModeSweep,
    ::testing::Combine(::testing::Values(Backend::kRbc, Backend::kMpi,
                                         Backend::kIcomm),
                       ::testing::Values(Mode::kAlltoallv, Mode::kCoalesced,
                                         Mode::kSparse)));

TEST_P(JQuickModeSweep, SortsCorrectly) {
  const auto [b, mode] = GetParam();
  SortWithMode(b, mode);
}

}  // namespace
