// The jsort::exchange redistribution layer: exscan interval computation,
// bucket exchange, and the coalesced / dense segment exchange, across all
// three Transport backends, with skewed partitions and empty ranks.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <thread>
#include <vector>

#include "sort/exchange.hpp"
#include "sort/jquick.hpp"
#include "sort/workload.hpp"
#include "testutil.hpp"

namespace {

using jsort::CapacityLayout;
using jsort::Transport;
using jsort::exchange::ExchangeStats;
using jsort::exchange::Mode;
using jsort::exchange::Segment;
using testutil::RunRanks;

enum class Backend { kRbc, kMpi, kIcomm };

std::shared_ptr<Transport> Make(Backend b, mpisim::Comm& world) {
  switch (b) {
    case Backend::kRbc: {
      rbc::Comm rw;
      rbc::Create_RBC_Comm(world, &rw);
      return jsort::MakeRbcTransport(rw);
    }
    case Backend::kMpi:
      return jsort::MakeMpiTransport(world);
    case Backend::kIcomm:
      return jsort::MakeIcommTransport(world);
  }
  return nullptr;
}

void WaitPoll(const jsort::Poll& p) {
  while (!p()) std::this_thread::yield();
}

class ExchangeSweep : public ::testing::TestWithParam<Backend> {};

INSTANTIATE_TEST_SUITE_P(Backends, ExchangeSweep,
                         ::testing::Values(Backend::kRbc, Backend::kMpi,
                                           Backend::kIcomm));

TEST_P(ExchangeSweep, ExscanCountComputesIntervals) {
  const Backend b = GetParam();
  RunRanks(6, [&](mpisim::Comm& world) {
    auto tr = Make(b, world);
    // Rank r holds r+1 elements; its interval starts at 1+2+...+r.
    const std::int64_t mine = tr->Rank() + 1;
    const std::int64_t begin = jsort::exchange::ExscanCount(*tr, mine, 7);
    const std::int64_t r = tr->Rank();
    EXPECT_EQ(begin, r * (r + 1) / 2);
  });
}

TEST_P(ExchangeSweep, BucketExchangeRoutesEverythingBySource) {
  const Backend b = GetParam();
  RunRanks(5, [&](mpisim::Comm& world) {
    auto tr = Make(b, world);
    const int p = tr->Size();
    const int me = tr->Rank();
    // Rank i sends i copies of (100*i + dest) to each dest.
    std::vector<std::vector<double>> buckets(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      buckets[static_cast<std::size_t>(d)].assign(
          static_cast<std::size_t>(me), 100.0 * me + d);
    }
    ExchangeStats stats;
    std::vector<double> got =
        jsort::exchange::ExchangeBuckets(*tr, buckets, 9, &stats);
    // From each source s: s copies of 100*s + me, ordered by source rank.
    std::vector<double> expect;
    for (int s = 0; s < p; ++s) {
      for (int c = 0; c < s; ++c) expect.push_back(100.0 * s + me);
    }
    EXPECT_EQ(got, expect);
    EXPECT_EQ(stats.messages_sent, p - 1);  // dense: empties transmitted
  });
}

TEST_P(ExchangeSweep, BucketExchangeHandlesSkewToOneRank) {
  const Backend b = GetParam();
  RunRanks(6, [&](mpisim::Comm& world) {
    auto tr = Make(b, world);
    const int p = tr->Size();
    const int me = tr->Rank();
    // Everything goes to rank 0; every other rank receives nothing.
    std::vector<std::vector<double>> buckets(static_cast<std::size_t>(p));
    buckets[0] = {me * 1.0, me * 1.0 + 0.5};
    std::vector<double> got =
        jsort::exchange::ExchangeBuckets(*tr, buckets, 9);
    if (me == 0) {
      std::vector<double> expect;
      for (int s = 0; s < p; ++s) {
        expect.push_back(s * 1.0);
        expect.push_back(s * 1.0 + 0.5);
      }
      EXPECT_EQ(got, expect);
    } else {
      EXPECT_TRUE(got.empty());
    }
  });
}

/// One uniform layout shared by the segment-exchange tests: p ranks of
/// capacity `cap` each.
CapacityLayout UniformLayout(int p, std::int64_t cap) {
  return CapacityLayout{.p = p, .quota = cap, .cap_first = cap,
                        .cap_last = cap};
}

/// Every rank holds `cap` elements of one region laid out in rank order
/// but rotated by one rank, so every element moves to the neighbour.
void RotationExchange(const std::shared_ptr<Transport>& tr, Mode mode) {
  const int p = tr->Size();
  const int me = tr->Rank();
  constexpr std::int64_t kCap = 8;
  const CapacityLayout layout = UniformLayout(p, kCap);
  // My elements occupy the slot interval of rank (me+1) % p.
  const int owner = (me + 1) % p;
  const std::int64_t begin = layout.PrefixBefore(owner);
  std::vector<double> data(static_cast<std::size_t>(kCap));
  for (std::int64_t i = 0; i < kCap; ++i) {
    data[static_cast<std::size_t>(i)] = static_cast<double>(begin + i);
  }
  std::vector<double> sink;
  std::vector<Segment> segs(1);
  segs[0] = Segment{data.data(), kCap, begin, &sink, kCap};
  ExchangeStats stats;
  jsort::Poll poll = jsort::exchange::StartSegmentExchange(
      tr, layout, std::move(segs), 11, mode, &stats);
  data.clear();  // the layer copied the payload out
  WaitPoll(poll);
  // I receive exactly my own capacity interval, in slot order from one
  // source.
  std::vector<double> expect(static_cast<std::size_t>(kCap));
  const std::int64_t my_begin = layout.PrefixBefore(me);
  for (std::int64_t i = 0; i < kCap; ++i) {
    expect[static_cast<std::size_t>(i)] = static_cast<double>(my_begin + i);
  }
  EXPECT_EQ(sink, expect);
  if (p > 1) {
    EXPECT_EQ(stats.elements_sent, kCap);
    if (mode == Mode::kCoalesced) {
      EXPECT_EQ(stats.messages_sent, 1);  // sparse: one real destination
    } else {
      EXPECT_EQ(stats.messages_sent, p - 1);  // dense rounds
    }
  }
}

TEST_P(ExchangeSweep, SegmentExchangeCoalescedRotation) {
  const Backend b = GetParam();
  RunRanks(6, [&](mpisim::Comm& world) {
    RotationExchange(Make(b, world), Mode::kCoalesced);
  });
}

TEST_P(ExchangeSweep, SegmentExchangeDenseRotation) {
  const Backend b = GetParam();
  RunRanks(6, [&](mpisim::Comm& world) {
    RotationExchange(Make(b, world), Mode::kAlltoallv);
  });
}

/// Two regions (the jquick shape): small region [0, S), large [S, total);
/// every rank contributes an uneven share of each. Verifies per-segment
/// sinks receive exactly their region overlap, in both modes.
void TwoRegionExchange(const std::shared_ptr<Transport>& tr, Mode mode) {
  const int p = tr->Size();
  const int me = tr->Rank();
  constexpr std::int64_t kCap = 6;
  const CapacityLayout layout = UniformLayout(p, kCap);
  const std::int64_t total = layout.Total();
  // Skewed split: the small region covers the first 1/3 of slots (rounded
  // so it generally straddles a rank boundary -> a janus-style overlap).
  const std::int64_t s_total = total / 3 + 1;
  // Rank r holds small elements [r * s_total / p, (r+1) * s_total / p) and
  // the analogous slice of the large region -- uneven shares, some empty.
  const std::int64_t s_begin = me * s_total / p;
  const std::int64_t s_count = (me + 1) * s_total / p - s_begin;
  const std::int64_t l_total = total - s_total;
  const std::int64_t l_begin = s_total + me * l_total / p;
  const std::int64_t l_count =
      s_total + (me + 1) * l_total / p - l_begin;

  std::vector<double> small(static_cast<std::size_t>(s_count)),
      large(static_cast<std::size_t>(l_count));
  for (std::int64_t i = 0; i < s_count; ++i) {
    small[static_cast<std::size_t>(i)] = static_cast<double>(s_begin + i);
  }
  for (std::int64_t i = 0; i < l_count; ++i) {
    large[static_cast<std::size_t>(i)] = static_cast<double>(l_begin + i);
  }

  const std::int64_t expect_small =
      jsort::OverlapWithRegion(layout, me, 0, s_total);
  const std::int64_t expect_large =
      jsort::OverlapWithRegion(layout, me, s_total, total);
  std::vector<double> recv_small, recv_large;
  std::vector<Segment> segs(2);
  segs[0] = Segment{small.data(), s_count, s_begin, &recv_small,
                    expect_small};
  segs[1] = Segment{large.data(), l_count, l_begin, &recv_large,
                    expect_large};
  jsort::Poll poll = jsort::exchange::StartSegmentExchange(
      tr, layout, std::move(segs), 13, mode);
  small.clear();
  large.clear();
  WaitPoll(poll);

  ASSERT_EQ(static_cast<std::int64_t>(recv_small.size()), expect_small);
  ASSERT_EQ(static_cast<std::int64_t>(recv_large.size()), expect_large);
  // The slots of my capacity interval that fall into each region arrive
  // exactly once; order across sources is not specified, so sort.
  std::sort(recv_small.begin(), recv_small.end());
  std::sort(recv_large.begin(), recv_large.end());
  const std::int64_t my_begin = layout.PrefixBefore(me);
  std::vector<double> es, el;
  for (std::int64_t s = my_begin; s < my_begin + kCap; ++s) {
    if (s < s_total) {
      es.push_back(static_cast<double>(s));
    } else {
      el.push_back(static_cast<double>(s));
    }
  }
  EXPECT_EQ(recv_small, es);
  EXPECT_EQ(recv_large, el);
}

TEST_P(ExchangeSweep, TwoRegionSegmentExchangeCoalesced) {
  const Backend b = GetParam();
  RunRanks(7, [&](mpisim::Comm& world) {
    TwoRegionExchange(Make(b, world), Mode::kCoalesced);
  });
}

TEST_P(ExchangeSweep, TwoRegionSegmentExchangeDense) {
  const Backend b = GetParam();
  RunRanks(7, [&](mpisim::Comm& world) {
    TwoRegionExchange(Make(b, world), Mode::kAlltoallv);
  });
}

TEST_P(ExchangeSweep, SegmentExchangeAllElementsOnOneRank) {
  // Extreme skew: rank 0 holds every element; everyone else holds (and in
  // the end receives) their capacity share -- empty senders must complete.
  const Backend b = GetParam();
  RunRanks(5, [&](mpisim::Comm& world) {
    auto tr = Make(b, world);
    const int p = tr->Size();
    const int me = tr->Rank();
    constexpr std::int64_t kCap = 4;
    const CapacityLayout layout = UniformLayout(p, kCap);
    const std::int64_t total = layout.Total();
    std::vector<double> data;
    if (me == 0) {
      data.resize(static_cast<std::size_t>(total));
      std::iota(data.begin(), data.end(), 0.0);
    }
    std::vector<double> sink;
    std::vector<Segment> segs(1);
    segs[0] = Segment{data.data(),
                      static_cast<std::int64_t>(data.size()), 0, &sink,
                      kCap};
    jsort::Poll poll = jsort::exchange::StartSegmentExchange(
        tr, layout, std::move(segs), 17, Mode::kCoalesced);
    WaitPoll(poll);
    std::vector<double> expect(static_cast<std::size_t>(kCap));
    std::iota(expect.begin(), expect.end(),
              static_cast<double>(layout.PrefixBefore(me)));
    EXPECT_EQ(sink, expect);
  });
}

TEST(ExchangePlan, PlanFromIntervalMatchesChunks) {
  const CapacityLayout layout{.p = 4, .quota = 10, .cap_first = 3,
                              .cap_last = 10};
  // Interval [1, 17) spans rank 0 (slots 1..2), rank 1 (3..12), rank 2
  // (13..16 partial).
  const jsort::exchange::SendPlan plan =
      jsort::exchange::PlanFromInterval(layout, 1, 16, 4);
  ASSERT_EQ(plan.counts.size(), 4u);
  EXPECT_EQ(plan.counts[0], 2);
  EXPECT_EQ(plan.counts[1], 10);
  EXPECT_EQ(plan.counts[2], 4);
  EXPECT_EQ(plan.counts[3], 0);
  EXPECT_EQ(plan.displs[0], 0);
  EXPECT_EQ(plan.displs[1], 2);
  EXPECT_EQ(plan.displs[2], 12);
  EXPECT_EQ(plan.displs[3], 16);
}

/// JQuick routed through each forced exchange mode still sorts correctly
/// on every backend (the kAuto path is covered by the existing jquick
/// tests).
void SortWithMode(Backend b, Mode mode) {
  constexpr int kP = 9;
  constexpr std::int64_t kQuota = 40;
  testutil::PerRank<std::vector<double>> outs(kP);
  RunRanks(kP, [&](mpisim::Comm& world) {
    auto tr = Make(b, world);
    auto input = jsort::GenerateInput(jsort::InputKind::kUniform,
                                      world.Rank(), kP, kQuota, 21);
    jsort::JQuickConfig cfg;
    cfg.exchange_mode = mode;
    auto out = jsort::JQuickSort(tr, std::move(input), cfg);
    outs.Set(world.Rank(), std::move(out));
  });
  std::vector<double> all;
  for (int r = 0; r < kP; ++r) {
    EXPECT_EQ(outs[r].size(), static_cast<std::size_t>(kQuota));
    EXPECT_TRUE(std::is_sorted(outs[r].begin(), outs[r].end()));
    if (r > 0 && !outs[r].empty() && !outs[r - 1].empty()) {
      EXPECT_LE(outs[r - 1].back(), outs[r].front());
    }
    all.insert(all.end(), outs[r].begin(), outs[r].end());
  }
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
}

class JQuickModeSweep
    : public ::testing::TestWithParam<std::tuple<Backend, Mode>> {};

INSTANTIATE_TEST_SUITE_P(
    BackendsByMode, JQuickModeSweep,
    ::testing::Combine(::testing::Values(Backend::kRbc, Backend::kMpi,
                                         Backend::kIcomm),
                       ::testing::Values(Mode::kAlltoallv,
                                         Mode::kCoalesced)));

TEST_P(JQuickModeSweep, SortsCorrectly) {
  const auto [b, mode] = GetParam();
  SortWithMode(b, mode);
}

}  // namespace
