// The Section-VI proposal MPI_Icomm_create_group: constant-time local
// range path (zero messages), general broadcast path, and full context
// isolation of the resulting communicators.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "testutil.hpp"

namespace {

using mpisim::Comm;
using mpisim::Datatype;
using mpisim::Group;
using mpisim::RankRange;
using mpisim::ReduceOp;
using mpisim::Request;
using testutil::RunRanks;

TEST(IcommCreate, RangePathCompletesImmediately) {
  RunRanks(6, [](Comm& world) {
    if (world.Rank() > 3) return;
    const std::array<RankRange, 1> r{RankRange{0, 3, 1}};
    Group g = mpisim::GroupRangeIncl(world, r);
    Comm sub;
    Request req = mpisim::IcommCreateGroup(world, g, 5, &sub);
    EXPECT_TRUE(mpisim::Test(req));  // O(1) local: complete at once
    ASSERT_FALSE(sub.IsNull());
    EXPECT_EQ(sub.Size(), 4);
    EXPECT_EQ(sub.Rank(), world.Rank());
  });
}

TEST(IcommCreate, RangePathSendsZeroMessages) {
  mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = 4});
  rt.Run([&rt](Comm& world) {
    mpisim::Barrier(world);
    rt.ResetClocksAndStats();
    const std::array<RankRange, 1> r{RankRange{0, 1, 1}};
    if (world.Rank() <= 1) {
      Group g = mpisim::GroupRangeIncl(world, r);
      Comm sub;
      Request req = mpisim::IcommCreateGroup(world, g, 5, &sub);
      mpisim::Wait(req);
      ASSERT_FALSE(sub.IsNull());
      EXPECT_EQ(mpisim::Ctx().stats.messages_sent, 0u);
    }
  });
}

TEST(IcommCreate, RangeCommunicatorIsolatesTraffic) {
  RunRanks(4, [](Comm& world) {
    const std::array<RankRange, 1> r{RankRange{0, 3, 1}};
    Group g = mpisim::GroupRangeIncl(world, r);
    Comm sub;
    Request req = mpisim::IcommCreateGroup(world, g, 5, &sub);
    mpisim::Wait(req);
    // Same ranks, same tags, two contexts: messages must not cross.
    if (world.Rank() == 0) {
      const int a = 1, b = 2;
      mpisim::Send(&a, 1, Datatype::kInt32, 1, 0, world);
      mpisim::Send(&b, 1, Datatype::kInt32, 1, 0, sub);
    } else if (world.Rank() == 1) {
      int got = 0;
      mpisim::Recv(&got, 1, Datatype::kInt32, 0, 0, sub);
      EXPECT_EQ(got, 2);
      mpisim::Recv(&got, 1, Datatype::kInt32, 0, 0, world);
      EXPECT_EQ(got, 1);
    }
  });
}

TEST(IcommCreate, NestedRangesStayLocal) {
  mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = 8});
  rt.Run([&rt](Comm& world) {
    mpisim::Barrier(world);
    rt.ResetClocksAndStats();
    // Recursive halving, every split via the range path.
    Comm cur = world;
    int first = 0, size = 8;
    while (size > 1 && mpisim::Ctx().world_rank >= first &&
           mpisim::Ctx().world_rank < first + size) {
      const int half = size / 2;
      const bool low = mpisim::Ctx().world_rank < first + half;
      const RankRange r =
          low ? RankRange{0, half - 1, 1} : RankRange{half, size - 1, 1};
      const std::array<RankRange, 1> rr{r};
      Group g = mpisim::GroupRangeIncl(cur, rr);
      Comm sub;
      Request req = mpisim::IcommCreateGroup(cur, g, 5, &sub);
      EXPECT_TRUE(mpisim::Test(req));
      cur = sub;
      if (low) {
        size = half;
      } else {
        first += half;
        size -= half;
      }
    }
    EXPECT_EQ(mpisim::Ctx().stats.messages_sent, 0u);
    EXPECT_EQ(cur.Size(), 1);
  });
}

TEST(IcommCreate, GeneralPathBroadcastsTuple) {
  RunRanks(6, [](Comm& world) {
    // A non-contiguous group: even ranks.
    if (world.Rank() % 2 != 0) return;
    const std::array<int, 3> members{0, 2, 4};
    Group g = mpisim::GroupIncl(world, members);
    Comm sub;
    Request req = mpisim::IcommCreateGroup(world, g, 11, &sub);
    mpisim::Wait(req);
    ASSERT_FALSE(sub.IsNull());
    EXPECT_EQ(sub.Size(), 3);
    EXPECT_EQ(sub.Rank(), world.Rank() / 2);
    std::int64_t sum = 0;
    const std::int64_t mine = world.Rank();
    mpisim::Allreduce(&mine, &sum, 1, Datatype::kInt64, ReduceOp::kSum, sub);
    EXPECT_EQ(sum, 6);
  });
}

TEST(IcommCreate, SameGroupAsParentDistinguishedByC) {
  RunRanks(3, [](Comm& world) {
    const std::array<RankRange, 1> r{RankRange{0, 2, 1}};
    Group g = mpisim::GroupRangeIncl(world, r);
    Comm same;
    Request req = mpisim::IcommCreateGroup(world, g, 1, &same);
    mpisim::Wait(req);
    ASSERT_FALSE(same.IsNull());
    EXPECT_NE(same.Base(), world.Base());
    ASSERT_TRUE(same.Tuple().has_value());
    EXPECT_EQ(same.Tuple()->c, world.Tuple()->c + 1);
  });
}

TEST(IcommCreate, TwoSimultaneousCreationsProgressTogether) {
  // Two overlapping general-path creations in flight at once on rank 2.
  RunRanks(5, [](Comm& world) {
    const int r = world.Rank();
    Comm left, right;
    Request lreq, rreq;
    // Use non-contiguous member lists to force the broadcast path.
    if (r == 0 || r == 1 || r == 2) {
      const std::array<int, 3> m{0, 2, 1};
      lreq = mpisim::IcommCreateGroup(world, mpisim::GroupIncl(world, m), 21,
                                      &left);
    }
    if (r == 2 || r == 3 || r == 4) {
      const std::array<int, 3> m{4, 2, 3};
      rreq = mpisim::IcommCreateGroup(world, mpisim::GroupIncl(world, m), 22,
                                      &right);
    }
    if (!lreq.IsNull()) mpisim::Wait(lreq);
    if (!rreq.IsNull()) mpisim::Wait(rreq);
    if (!left.IsNull()) {
      std::int64_t v = left.Rank() == 0 ? 7 : -1;
      mpisim::Bcast(&v, 1, Datatype::kInt64, 0, left);
      EXPECT_EQ(v, 7);
    }
    if (!right.IsNull()) {
      std::int64_t v = right.Rank() == 0 ? 8 : -1;
      mpisim::Bcast(&v, 1, Datatype::kInt64, 0, right);
      EXPECT_EQ(v, 8);
    }
  });
}

TEST(IcommCreate, NonMemberThrows) {
  EXPECT_THROW(
      RunRanks(3,
               [](Comm& world) {
                 const std::array<RankRange, 1> r{RankRange{1, 2, 1}};
                 Group g = mpisim::GroupRangeIncl(world, r);
                 Comm sub;
                 // All ranks call, including non-member rank 0.
                 mpisim::IcommCreateGroup(world, g, 0, &sub);
               }),
      mpisim::UsageError);
}

}  // namespace
