// Collective-correctness sanitizer: injected faults must raise
// CollectiveMismatchError naming both world ranks and the divergent
// sequence numbers -- and must do so at the collective's entry, long
// before any deadlock timeout. Clean runs (including wildcard receives
// and a full sorting pipeline) must stay silent.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "mpisim/mpisim.hpp"
#include "sort/checks.hpp"
#include "sort/hypercube_qs.hpp"
#include "sort/workload.hpp"
#include "testutil.hpp"

namespace {

using mpisim::CollectiveMismatchError;
using mpisim::Datatype;

mpisim::Runtime::Options SanitizedOpts(int p) {
  mpisim::Runtime::Options o;
  o.num_ranks = p;
  o.sanitize_collectives = true;
  // Short enough that a *missed* fault fails the test quickly as a
  // DeadlockError instead of wedging the suite; every injected fault
  // must be caught at collective entry, well before this fires.
  o.deadlock_timeout = std::chrono::milliseconds(5000);
  return o;
}

/// Runs `rank_main` on p sanitized ranks and returns the mismatch it must
/// raise.
CollectiveMismatchError ExpectMismatch(
    int p, const std::function<void(mpisim::Comm&)>& rank_main) {
  mpisim::Runtime rt(SanitizedOpts(p));
  try {
    rt.Run(rank_main);
  } catch (const CollectiveMismatchError& e) {
    return e;
  } catch (const std::exception& e) {
    ADD_FAILURE() << "expected CollectiveMismatchError, got: " << e.what();
    return CollectiveMismatchError("wrong type", -1, -1, -1, -1);
  }
  ADD_FAILURE() << "expected CollectiveMismatchError, got clean run";
  return CollectiveMismatchError("no error", -1, -1, -1, -1);
}

bool PairContains(const CollectiveMismatchError& e, int rank) {
  return e.rank_a() == rank || e.rank_b() == rank;
}

TEST(Sanitizer, WrongRootBcastCaught) {
  const auto e = ExpectMismatch(4, [](mpisim::Comm& world) {
    mpisim::Barrier(world);  // seq 0: matches everywhere
    double x = world.Rank() == 0 ? 42.0 : 0.0;
    // Fault: rank 1 believes the broadcast is rooted at itself.
    const int root = world.Rank() == 1 ? 1 : 0;
    mpisim::Bcast(&x, 1, Datatype::kFloat64, root, world);
  });
  EXPECT_TRUE(PairContains(e, 1)) << e.what();
  EXPECT_EQ(e.seq_a(), 1) << e.what();
  EXPECT_EQ(e.seq_b(), 1) << e.what();
  EXPECT_NE(std::string(e.what()).find("Bcast"), std::string::npos);
  EXPECT_NE(std::string(e.what()).find("root"), std::string::npos);
}

TEST(Sanitizer, SkippedBarrierCaught) {
  const auto e = ExpectMismatch(4, [](mpisim::Comm& world) {
    mpisim::Barrier(world);  // seq 0: matches everywhere
    // Fault: rank 1 skips the second barrier, so its next collective
    // lands on the sequence number where everyone else placed Barrier.
    if (world.Rank() != 1) mpisim::Barrier(world);
    double x = 0.0;
    mpisim::Bcast(&x, 1, Datatype::kFloat64, 0, world);
  });
  EXPECT_TRUE(PairContains(e, 1)) << e.what();
  EXPECT_EQ(e.seq_a(), 1) << e.what();
  EXPECT_EQ(e.seq_b(), 1) << e.what();
  EXPECT_NE(std::string(e.what()).find("Barrier"), std::string::npos);
}

TEST(Sanitizer, TruncatedAlltoallvCaught) {
  const auto e = ExpectMismatch(4, [](mpisim::Comm& world) {
    const int p = world.Size();
    std::vector<double> send(static_cast<std::size_t>(2 * p), 1.0);
    std::vector<double> recv(static_cast<std::size_t>(2 * p), 0.0);
    std::vector<int> sendcounts(static_cast<std::size_t>(p), 2);
    std::vector<int> recvcounts(static_cast<std::size_t>(p), 2);
    std::vector<int> displs(static_cast<std::size_t>(p));
    for (int i = 0; i < p; ++i) displs[static_cast<std::size_t>(i)] = 2 * i;
    // Fault: rank 1 truncates its payload for rank 2; rank 2 still
    // expects the full two elements from rank 1.
    if (world.Rank() == 1) sendcounts[2] = 1;
    mpisim::Alltoallv(send.data(), sendcounts, displs, Datatype::kFloat64,
                      recv.data(), recvcounts, displs, world);
  });
  EXPECT_TRUE(PairContains(e, 1)) << e.what();
  EXPECT_TRUE(PairContains(e, 2)) << e.what();
  EXPECT_EQ(e.seq_a(), 0) << e.what();
  EXPECT_EQ(e.seq_b(), 0) << e.what();
  EXPECT_NE(std::string(e.what()).find("Alltoallv"), std::string::npos);
}

TEST(Sanitizer, RbcWrongRootCaught) {
  // Same fault through the RBC layer: the hand-rolled binomial schedule
  // is registered as one logical collective, so the intent check fires
  // at entry even though no individual send is inspected.
  const auto e = ExpectMismatch(4, [](mpisim::Comm& world) {
    rbc::Comm rw;
    rbc::Create_RBC_Comm(world, &rw);
    rbc::Barrier(rw);
    double x = rw.Rank() == 0 ? 7.0 : 0.0;
    const int root = rw.Rank() == 1 ? 1 : 0;
    rbc::Bcast(&x, 1, Datatype::kFloat64, root, rw);
  });
  EXPECT_TRUE(PairContains(e, 1)) << e.what();
  EXPECT_EQ(e.seq_a(), 1) << e.what();
  EXPECT_EQ(e.seq_b(), 1) << e.what();
  EXPECT_NE(std::string(e.what()).find("rbc comm"), std::string::npos);
}

TEST(Sanitizer, WildcardRecvNoFalsePositive) {
  // kAnySource receives interleaved with collectives: the sanitizer keys
  // on collective intent, not message arrival order, so the wobble in
  // wildcard match order must not trip it (see sanitizer.hpp design
  // notes on the out-of-scope O(alpha) vtime wobble).
  mpisim::Runtime rt(SanitizedOpts(4));
  rt.Run([](mpisim::Comm& world) {
    const int p = world.Size();
    if (world.Rank() != 0) {
      const double v = world.Rank();
      mpisim::Send(&v, 1, Datatype::kFloat64, 0, 5, world);
    } else {
      double sum = 0.0;
      for (int i = 1; i < p; ++i) {
        double v = 0.0;
        mpisim::Recv(&v, 1, Datatype::kFloat64, mpisim::kAnySource, 5, world);
        sum += v;
      }
      EXPECT_DOUBLE_EQ(sum, 1.0 + 2.0 + 3.0);
    }
    mpisim::Barrier(world);
    double x = 1.0, total = 0.0;
    mpisim::Allreduce(&x, &total, 1, Datatype::kFloat64,
                      mpisim::ReduceOp::kSum, world);
    EXPECT_DOUBLE_EQ(total, p);
  });
}

TEST(Sanitizer, RbcWildcardRecvNoFalsePositive) {
  mpisim::Runtime rt(SanitizedOpts(4));
  rt.Run([](mpisim::Comm& world) {
    rbc::Comm rw;
    rbc::Create_RBC_Comm(world, &rw);
    if (rw.Rank() != 0) {
      const double v = rw.Rank();
      rbc::Send(&v, 1, Datatype::kFloat64, 0, 9, rw);
    } else {
      for (int i = 1; i < rw.Size(); ++i) {
        double v = 0.0;
        rbc::Recv(&v, 1, Datatype::kFloat64, rbc::kAnySource, 9, rw);
      }
    }
    rbc::Barrier(rw);
  });
}

TEST(Sanitizer, SanitizedSortPipelineRuns) {
  // A whole sorting pipeline (splits, hand-rolled collectives, wildcard
  // probes) under the sanitizer: silent, and still correct.
  mpisim::Runtime rt(SanitizedOpts(8));
  rt.Run([](mpisim::Comm& world) {
    rbc::Comm rw;
    rbc::Create_RBC_Comm(world, &rw);
    auto input = jsort::GenerateInput(jsort::InputKind::kUniform,
                                      world.Rank(), world.Size(), 64, 99);
    auto tr = jsort::MakeRbcTransport(rw);
    const auto out = jsort::HypercubeQuicksort(tr, std::move(input));
    EXPECT_TRUE(jsort::IsGloballySorted(out, rw));
  });
}

TEST(Sanitizer, LedgerResetBetweenRuns) {
  // A run that aborts mid-sequence leaves members at divergent ledger
  // positions (rank 0 recorded one op, the others two). The next Run on
  // the same Runtime must start from a fresh ledger; comparing against
  // the failed run's leftovers would flag this clean run as a mismatch.
  mpisim::Runtime rt(SanitizedOpts(4));
  try {
    rt.Run([](mpisim::Comm& world) {
      mpisim::Barrier(world);
      if (world.Rank() == 0) throw mpisim::Error("injected failure");
      double x = 0.0;
      mpisim::Bcast(&x, 1, Datatype::kFloat64, 0, world);
    });
    FAIL() << "expected the injected failure to re-throw";
  } catch (const CollectiveMismatchError& e) {
    FAIL() << "unexpected mismatch: " << e.what();
  } catch (const mpisim::Error&) {
  }
  rt.Run([](mpisim::Comm& world) {
    mpisim::Barrier(world);
    mpisim::Barrier(world);
  });
}

TEST(Sanitizer, EnvOverrideEnablesAndDisables) {
  const char* old = std::getenv("MPISIM_SANITIZE");
  const std::string saved = old != nullptr ? old : "";
  const bool had = old != nullptr;

  setenv("MPISIM_SANITIZE", "1", 1);
  {
    mpisim::RuntimeConfig opts;
    opts.num_ranks = 2;
    mpisim::Runtime rt(opts);
    EXPECT_TRUE(rt.options().sanitize_collectives);
  }
  setenv("MPISIM_SANITIZE", "0", 1);
  {
    mpisim::RuntimeConfig opts;
    opts.num_ranks = 2;
    opts.sanitize_collectives = true;  // env wins over the literal
    mpisim::Runtime rt(opts);
    EXPECT_FALSE(rt.options().sanitize_collectives);
  }

  if (had) {
    setenv("MPISIM_SANITIZE", saved.c_str(), 1);
  } else {
    unsetenv("MPISIM_SANITIZE");
  }
}

}  // namespace
