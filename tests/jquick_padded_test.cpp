// JQuickSortPadded: the arbitrary-n front end, swept over irregular
// distributions (the paper assumes n = p * (n/p); padding generalizes it).
#include <gtest/gtest.h>

#include <tuple>

#include "sort/checks.hpp"
#include "sort/jquick.hpp"
#include "sort/workload.hpp"
#include "testutil.hpp"

namespace {

using jsort::InputKind;
using testutil::RunRanks;

/// Per-rank input size patterns.
enum class SizePattern { kRampUp, kOneHot, kRandomish, kEmptyMiddle };

std::int64_t SizeOfRank(SizePattern pat, int rank, int p) {
  switch (pat) {
    case SizePattern::kRampUp:
      return rank;  // 0, 1, 2, ...
    case SizePattern::kOneHot:
      return rank == p / 2 ? 37 : 0;
    case SizePattern::kRandomish:
      return (rank * 7919) % 23;
    case SizePattern::kEmptyMiddle:
      return (rank > 0 && rank < p - 1) ? 0 : 11;
  }
  return 0;
}

class PaddedSweep
    : public ::testing::TestWithParam<std::tuple<int, SizePattern, InputKind>> {
};

INSTANTIATE_TEST_SUITE_P(
    Sweep, PaddedSweep,
    ::testing::Combine(::testing::Values(2, 3, 5, 8, 11),
                       ::testing::Values(SizePattern::kRampUp,
                                         SizePattern::kOneHot,
                                         SizePattern::kRandomish,
                                         SizePattern::kEmptyMiddle),
                       ::testing::Values(InputKind::kUniform,
                                         InputKind::kFewDistinct)));

TEST_P(PaddedSweep, SortsIrregularDistributions) {
  const auto [p, pat, kind] = GetParam();
  RunRanks(p, [&, p = p, pat = pat, kind = kind](mpisim::Comm& world) {
    rbc::Comm rw;
    rbc::Create_RBC_Comm(world, &rw);
    const std::int64_t mine = SizeOfRank(pat, world.Rank(), p);
    auto input = jsort::GenerateInput(kind, world.Rank(), p, mine, 19);
    const auto before = jsort::GlobalFingerprint(input, rw);
    auto tr = jsort::MakeRbcTransport(rw);
    const auto out = jsort::JQuickSortPadded(tr, std::move(input));
    EXPECT_EQ(before, jsort::GlobalFingerprint(out, rw));
    EXPECT_TRUE(jsort::IsGloballySorted(out, rw));
  });
}

TEST(Padded, AllEmptyInputsYieldAllEmptyOutputs) {
  RunRanks(4, [](mpisim::Comm& world) {
    rbc::Comm rw;
    rbc::Create_RBC_Comm(world, &rw);
    auto tr = jsort::MakeRbcTransport(rw);
    const auto out = jsort::JQuickSortPadded(tr, {});
    EXPECT_TRUE(out.empty());
  });
}

TEST(Padded, InfinityInputsSurviveSentinelStripping) {
  // +inf is the padding sentinel; genuine +inf inputs must not be lost.
  // The contract strips *trailing* padding only when the caller's own
  // data does not contain +inf; with +inf inputs the count may shrink,
  // so the documented usage is finite inputs. Verify finite data near
  // DBL_MAX survives exactly.
  RunRanks(3, [](mpisim::Comm& world) {
    rbc::Comm rw;
    rbc::Create_RBC_Comm(world, &rw);
    std::vector<double> input;
    if (world.Rank() == 0) {
      input = {std::numeric_limits<double>::max(), 1.0,
               -std::numeric_limits<double>::max()};
    }
    const auto before = jsort::GlobalFingerprint(input, rw);
    auto tr = jsort::MakeRbcTransport(rw);
    const auto out = jsort::JQuickSortPadded(tr, std::move(input));
    EXPECT_EQ(before, jsort::GlobalFingerprint(out, rw));
    EXPECT_TRUE(jsort::IsGloballySorted(out, rw));
  });
}

}  // namespace
