// Nonblocking collectives of the substrate: correctness, test-driven
// progress, concurrency of several operations, and the per-communicator
// tag counter.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "testutil.hpp"

namespace {

using mpisim::Comm;
using mpisim::Datatype;
using mpisim::ReduceOp;
using mpisim::Request;
using testutil::RunRanks;

class NbcSweep : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(ProcessCounts, NbcSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 11));

TEST_P(NbcSweep, IbcastDeliversToAll) {
  const int p = GetParam();
  RunRanks(p, [](Comm& world) {
    std::int64_t v = world.Rank() == 0 ? 99 : -1;
    Request r = mpisim::Ibcast(&v, 1, Datatype::kInt64, 0, world);
    mpisim::Wait(r);
    EXPECT_EQ(v, 99);
  });
}

TEST_P(NbcSweep, IreduceSums) {
  const int p = GetParam();
  RunRanks(p, [p](Comm& world) {
    const std::int64_t mine = world.Rank() + 1;
    std::int64_t out = 0;
    Request r = mpisim::Ireduce(&mine, &out, 1, Datatype::kInt64,
                                ReduceOp::kSum, 0, world);
    mpisim::Wait(r);
    if (world.Rank() == 0) {
      EXPECT_EQ(out, static_cast<std::int64_t>(p) * (p + 1) / 2);
    }
  });
}

TEST_P(NbcSweep, IallreduceDistributesResult) {
  const int p = GetParam();
  RunRanks(p, [p](Comm& world) {
    const std::int64_t mine = world.Rank() + 1;
    std::int64_t out = 0;
    Request r = mpisim::Iallreduce(&mine, &out, 1, Datatype::kInt64,
                                   ReduceOp::kSum, world);
    mpisim::Wait(r);
    EXPECT_EQ(out, static_cast<std::int64_t>(p) * (p + 1) / 2);
  });
}

TEST_P(NbcSweep, IscanComputesPrefix) {
  const int p = GetParam();
  RunRanks(p, [](Comm& world) {
    const std::int64_t mine = world.Rank() + 1;
    std::int64_t out = 0;
    Request r =
        mpisim::Iscan(&mine, &out, 1, Datatype::kInt64, ReduceOp::kSum,
                      world);
    mpisim::Wait(r);
    const std::int64_t k = world.Rank() + 1;
    EXPECT_EQ(out, k * (k + 1) / 2);
  });
}

TEST_P(NbcSweep, IgatherCollects) {
  const int p = GetParam();
  RunRanks(p, [p](Comm& world) {
    const std::int64_t mine = world.Rank() * 3;
    std::vector<std::int64_t> all(static_cast<std::size_t>(p), -1);
    Request r =
        mpisim::Igather(&mine, 1, Datatype::kInt64, all.data(), 0, world);
    mpisim::Wait(r);
    if (world.Rank() == 0) {
      for (int i = 0; i < p; ++i) {
        EXPECT_EQ(all[static_cast<std::size_t>(i)], i * 3);
      }
    }
  });
}

TEST_P(NbcSweep, IgathervCollectsVariableBlocks) {
  const int p = GetParam();
  RunRanks(p, [p](Comm& world) {
    const int mine_n = world.Rank() % 3 + 1;
    std::vector<double> mine(static_cast<std::size_t>(mine_n),
                             static_cast<double>(world.Rank()));
    std::vector<int> counts, displs;
    int total = 0;
    for (int r = 0; r < p; ++r) {
      counts.push_back(r % 3 + 1);
      displs.push_back(total);
      total += r % 3 + 1;
    }
    std::vector<double> all(static_cast<std::size_t>(total), -1.0);
    Request r = mpisim::Igatherv(mine.data(), mine_n, Datatype::kFloat64,
                                 all.data(), counts, displs, 0, world);
    mpisim::Wait(r);
    if (world.Rank() == 0) {
      for (int rk = 0; rk < p; ++rk) {
        for (int i = 0; i < counts[static_cast<std::size_t>(rk)]; ++i) {
          EXPECT_DOUBLE_EQ(
              all[static_cast<std::size_t>(displs[static_cast<std::size_t>(rk)] + i)],
              static_cast<double>(rk));
        }
      }
    }
  });
}

TEST_P(NbcSweep, IbarrierCompletes) {
  const int p = GetParam();
  RunRanks(p, [](Comm& world) {
    Request r = mpisim::Ibarrier(world);
    mpisim::Wait(r);
  });
}

TEST(Nbc, TwoConcurrentIbcastsOnOneComm) {
  // The per-communicator tag counter must keep two in-flight broadcasts
  // apart even though they share the communicator and roots.
  RunRanks(4, [](Comm& world) {
    std::int64_t a = world.Rank() == 0 ? 1 : -1;
    std::int64_t b = world.Rank() == 0 ? 2 : -1;
    Request ra = mpisim::Ibcast(&a, 1, Datatype::kInt64, 0, world);
    Request rb = mpisim::Ibcast(&b, 1, Datatype::kInt64, 0, world);
    std::vector<Request> reqs{ra, rb};
    mpisim::Waitall(reqs);
    EXPECT_EQ(a, 1);
    EXPECT_EQ(b, 2);
  });
}

TEST(Nbc, ConcurrentScanAndReduceInterleave) {
  RunRanks(6, [](Comm& world) {
    const std::int64_t mine = world.Rank() + 1;
    std::int64_t scan_out = 0, red_out = 0;
    Request rs = mpisim::Iscan(&mine, &scan_out, 1, Datatype::kInt64,
                               ReduceOp::kSum, world);
    Request rr = mpisim::Ireduce(&mine, &red_out, 1, Datatype::kInt64,
                                 ReduceOp::kMax, 0, world);
    std::vector<Request> reqs{rs, rr};
    mpisim::Waitall(reqs);
    const std::int64_t k = world.Rank() + 1;
    EXPECT_EQ(scan_out, k * (k + 1) / 2);
    if (world.Rank() == 0) {
      EXPECT_EQ(red_out, 6);
    }
  });
}

TEST(Nbc, ProgressOnlyThroughTest) {
  // A nonblocking bcast on a non-root rank must not complete before Test
  // is called, and must complete after the message arrived.
  RunRanks(2, [](Comm& world) {
    if (world.Rank() == 1) {
      std::int64_t v = -1;
      Request r = mpisim::Ibcast(&v, 1, Datatype::kInt64, 0, world);
      while (!mpisim::Test(r)) {
      }
      EXPECT_EQ(v, 5);
    } else {
      std::int64_t v = 5;
      Request r = mpisim::Ibcast(&v, 1, Datatype::kInt64, 0, world);
      mpisim::Wait(r);
    }
  });
}

TEST(Nbc, NullRequestTestsComplete) {
  RunRanks(1, [](Comm&) {
    Request r;
    EXPECT_TRUE(r.Test(nullptr));
    mpisim::Wait(r);  // must not hang
  });
}

TEST(Nbc, ManyOutstandingBarriersDrainInOrder) {
  RunRanks(3, [](Comm& world) {
    std::vector<Request> reqs;
    for (int i = 0; i < 8; ++i) reqs.push_back(mpisim::Ibarrier(world));
    mpisim::Waitall(reqs);
  });
}

TEST_P(NbcSweep, IsparseAlltoallvRoutesOnlyListedBlocks) {
  const int p = GetParam();
  RunRanks(p, [p](Comm& world) {
    const int me = world.Rank();
    // Rank i sends i+1 doubles (value 100*i + dest) to its right
    // neighbour only; every rank receives exactly one message (from its
    // left neighbour), discovered without any counts round.
    const int dest = (me + 1) % p;
    std::vector<double> payload(static_cast<std::size_t>(me) + 1,
                                100.0 * me + dest);
    std::vector<mpisim::SparseSendBlock> sends{mpisim::SparseSendBlock{
        dest, payload.data(), static_cast<int>(payload.size())}};
    std::vector<mpisim::SparseRecvMessage> got;
    Request r = mpisim::IsparseAlltoallv(sends, Datatype::kFloat64, &got,
                                         world);
    mpisim::Wait(r);
    const int src = (me + p - 1) % p;
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].source, src);
    std::vector<double> expect(static_cast<std::size_t>(src) + 1,
                               100.0 * src + me);
    std::vector<double> vals(got[0].bytes.size() / sizeof(double));
    std::memcpy(vals.data(), got[0].bytes.data(),
                vals.size() * sizeof(double));
    EXPECT_EQ(vals, expect);
  });
}

TEST(Nbc, IsparseAlltoallvBackToBackAndConcurrentWithOtherNbc) {
  // The tag-counter draws of the sparse exchange (payload + two barrier
  // pairs) must stay synchronous across ranks even with another
  // nonblocking collective in flight, and round r+1 must never leak into
  // round r (second-barrier fence).
  constexpr int kP = 5;
  RunRanks(kP, [](Comm& world) {
    const int me = world.Rank();
    std::int64_t v = me == 0 ? 7 : -1;
    Request bcast = mpisim::Ibcast(&v, 1, Datatype::kInt64, 0, world);
    for (int round = 0; round < 3; ++round) {
      const int dest = (me + 1 + round) % kP;
      const double payload = me * 10.0 + round;
      std::vector<mpisim::SparseSendBlock> sends{
          mpisim::SparseSendBlock{dest, &payload, 1}};
      std::vector<mpisim::SparseRecvMessage> got;
      Request r = mpisim::IsparseAlltoallv(sends, Datatype::kFloat64, &got,
                                           world);
      mpisim::Wait(r);
      ASSERT_EQ(got.size(), 1u) << "round " << round;
      const int src = (me + kP - 1 - round) % kP;
      EXPECT_EQ(got[0].source, src);
      double val = 0.0;
      std::memcpy(&val, got[0].bytes.data(), sizeof val);
      EXPECT_EQ(val, src * 10.0 + round);
    }
    mpisim::Wait(bcast);
    EXPECT_EQ(v, 7);
  });
}

TEST(Nbc, IsparseAlltoallvRejectsBadBlocks) {
  RunRanks(1, [](Comm& world) {
    const double x = 1.0;
    std::vector<mpisim::SparseRecvMessage> got;
    {
      std::vector<mpisim::SparseSendBlock> sends{
          mpisim::SparseSendBlock{5, &x, 1}};
      EXPECT_THROW(
          mpisim::IsparseAlltoallv(sends, Datatype::kFloat64, &got, world),
          mpisim::UsageError);
    }
    {
      std::vector<mpisim::SparseSendBlock> sends{
          mpisim::SparseSendBlock{0, &x, -1}};
      EXPECT_THROW(
          mpisim::IsparseAlltoallv(sends, Datatype::kFloat64, &got, world),
          mpisim::UsageError);
    }
    EXPECT_THROW(mpisim::IsparseAlltoallv({}, Datatype::kFloat64, nullptr,
                                          world),
                 mpisim::UsageError);
  });
}

}  // namespace
