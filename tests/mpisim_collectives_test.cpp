// Blocking collectives of the substrate, swept over process counts
// (including non-powers of two) and payload sizes.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "testutil.hpp"

namespace {

using mpisim::Comm;
using mpisim::Datatype;
using mpisim::ReduceOp;
using testutil::RunRanks;

class CollectiveSweep : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(ProcessCounts, CollectiveSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 13, 16));

TEST_P(CollectiveSweep, BcastFromEveryRoot) {
  const int p = GetParam();
  RunRanks(p, [p](Comm& world) {
    for (int root = 0; root < p; ++root) {
      std::vector<std::int64_t> buf(3, world.Rank() == root ? 7 + root : -1);
      mpisim::Bcast(buf.data(), 3, Datatype::kInt64, root, world);
      EXPECT_EQ(buf, (std::vector<std::int64_t>(3, 7 + root)));
    }
  });
}

TEST_P(CollectiveSweep, ReduceSumsToEveryRoot) {
  const int p = GetParam();
  RunRanks(p, [p](Comm& world) {
    for (int root = 0; root < p; ++root) {
      const std::int64_t mine = world.Rank() + 1;
      std::int64_t out = 0;
      mpisim::Reduce(&mine, &out, 1, Datatype::kInt64, ReduceOp::kSum, root,
                     world);
      if (world.Rank() == root) {
        EXPECT_EQ(out, static_cast<std::int64_t>(p) * (p + 1) / 2);
      }
    }
  });
}

TEST_P(CollectiveSweep, AllreduceMinMax) {
  const int p = GetParam();
  RunRanks(p, [p](Comm& world) {
    const double mine = static_cast<double>(world.Rank());
    double mn = 0, mx = 0;
    mpisim::Allreduce(&mine, &mn, 1, Datatype::kFloat64, ReduceOp::kMin,
                      world);
    mpisim::Allreduce(&mine, &mx, 1, Datatype::kFloat64, ReduceOp::kMax,
                      world);
    EXPECT_DOUBLE_EQ(mn, 0.0);
    EXPECT_DOUBLE_EQ(mx, static_cast<double>(p - 1));
  });
}

TEST_P(CollectiveSweep, InclusiveScanMatchesPrefix) {
  const int p = GetParam();
  RunRanks(p, [](Comm& world) {
    const std::int64_t mine[2] = {world.Rank() + 1, 1};
    std::int64_t out[2] = {0, 0};
    mpisim::Scan(mine, out, 2, Datatype::kInt64, ReduceOp::kSum, world);
    const std::int64_t r = world.Rank();
    EXPECT_EQ(out[0], (r + 1) * (r + 2) / 2);
    EXPECT_EQ(out[1], r + 1);
  });
}

TEST_P(CollectiveSweep, ExscanMatchesExclusivePrefix) {
  const int p = GetParam();
  RunRanks(p, [](Comm& world) {
    const std::int64_t mine = world.Rank() + 1;
    std::int64_t out = -1;
    mpisim::Exscan(&mine, &out, 1, Datatype::kInt64, ReduceOp::kSum, world);
    const std::int64_t r = world.Rank();
    EXPECT_EQ(out, r * (r + 1) / 2);  // 0 on rank 0 (zero-filled)
  });
}

TEST_P(CollectiveSweep, GatherOrdersBlocksByRank) {
  const int p = GetParam();
  RunRanks(p, [p](Comm& world) {
    for (int root = 0; root < std::min(p, 3); ++root) {
      const std::int64_t mine[2] = {world.Rank(), world.Rank() * 10};
      std::vector<std::int64_t> all(static_cast<std::size_t>(2 * p), -1);
      mpisim::Gather(mine, 2, Datatype::kInt64, all.data(), root, world);
      if (world.Rank() == root) {
        for (int r = 0; r < p; ++r) {
          EXPECT_EQ(all[static_cast<std::size_t>(2 * r)], r);
          EXPECT_EQ(all[static_cast<std::size_t>(2 * r + 1)], r * 10);
        }
      }
    }
  });
}

TEST_P(CollectiveSweep, GathervCollectsVariableBlocks) {
  const int p = GetParam();
  RunRanks(p, [p](Comm& world) {
    // Rank r contributes r+1 values of r.
    const int mine_n = world.Rank() + 1;
    std::vector<double> mine(static_cast<std::size_t>(mine_n),
                             static_cast<double>(world.Rank()));
    std::vector<int> counts, displs;
    int total = 0;
    for (int r = 0; r < p; ++r) {
      counts.push_back(r + 1);
      displs.push_back(total);
      total += r + 1;
    }
    std::vector<double> all(static_cast<std::size_t>(total), -1.0);
    mpisim::Gatherv(mine.data(), mine_n, Datatype::kFloat64, all.data(),
                    counts, displs, 0, world);
    if (world.Rank() == 0) {
      for (int r = 0; r < p; ++r) {
        for (int i = 0; i < r + 1; ++i) {
          EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(displs[static_cast<std::size_t>(r)] + i)],
                           static_cast<double>(r));
        }
      }
    }
  });
}

TEST_P(CollectiveSweep, AllgatherDistributesAllBlocks) {
  const int p = GetParam();
  RunRanks(p, [p](Comm& world) {
    const std::int64_t mine = 100 + world.Rank();
    std::vector<std::int64_t> all(static_cast<std::size_t>(p), -1);
    mpisim::Allgather(&mine, 1, Datatype::kInt64, all.data(), world);
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(r)], 100 + r);
    }
  });
}

TEST_P(CollectiveSweep, AlltoallTransposesBlocks) {
  const int p = GetParam();
  RunRanks(p, [p](Comm& world) {
    std::vector<std::int64_t> send(static_cast<std::size_t>(p));
    for (int i = 0; i < p; ++i) {
      send[static_cast<std::size_t>(i)] = world.Rank() * 1000 + i;
    }
    std::vector<std::int64_t> recv(static_cast<std::size_t>(p), -1);
    mpisim::Alltoall(send.data(), 1, Datatype::kInt64, recv.data(), world);
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(recv[static_cast<std::size_t>(r)], r * 1000 + world.Rank());
    }
  });
}

TEST_P(CollectiveSweep, BarrierCompletes) {
  const int p = GetParam();
  RunRanks(p, [](Comm& world) {
    for (int i = 0; i < 3; ++i) mpisim::Barrier(world);
  });
}

TEST(Collectives, ScanLargePayload) {
  RunRanks(5, [](Comm& world) {
    std::vector<double> mine(1000, 1.0);
    std::vector<double> out(1000, 0.0);
    mpisim::Scan(mine.data(), out.data(), 1000, Datatype::kFloat64,
                 ReduceOp::kSum, world);
    EXPECT_DOUBLE_EQ(out[0], world.Rank() + 1.0);
    EXPECT_DOUBLE_EQ(out[999], world.Rank() + 1.0);
  });
}

TEST(Collectives, ReducePairMaxFirstSelectsWinner) {
  RunRanks(4, [](Comm& world) {
    const mpisim::PairDD mine{static_cast<double>(world.Rank()),
                              world.Rank() * 2.0};
    mpisim::PairDD out{-1, -1};
    mpisim::Reduce(&mine, &out, 1, Datatype::kPairDoubleDouble,
                   ReduceOp::kMaxPairFirst, 0, world);
    if (world.Rank() == 0) {
      EXPECT_DOUBLE_EQ(out.first, 3.0);
      EXPECT_DOUBLE_EQ(out.second, 6.0);
    }
  });
}

TEST(Collectives, AllgathervVariableBlocks) {
  RunRanks(4, [](Comm& world) {
    const int mine_n = world.Rank() + 1;
    std::vector<std::int64_t> mine(static_cast<std::size_t>(mine_n),
                                   world.Rank());
    std::vector<int> counts{1, 2, 3, 4}, displs{0, 1, 3, 6};
    std::vector<std::int64_t> all(10, -1);
    mpisim::Allgatherv(mine.data(), mine_n, Datatype::kInt64, all.data(),
                       counts, displs, world);
    EXPECT_EQ(all, (std::vector<std::int64_t>{0, 1, 1, 2, 2, 2, 3, 3, 3, 3}));
  });
}

}  // namespace
