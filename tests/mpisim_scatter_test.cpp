// Scatter / Scatterv / Sendrecv of the substrate.
#include <gtest/gtest.h>

#include <vector>

#include "testutil.hpp"

namespace {

using mpisim::Comm;
using mpisim::Datatype;
using testutil::RunRanks;

class ScatterSweep : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(ProcessCounts, ScatterSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

TEST_P(ScatterSweep, ScatterDistributesBlocksFromEveryRoot) {
  const int p = GetParam();
  RunRanks(p, [p](Comm& world) {
    for (int root = 0; root < std::min(p, 3); ++root) {
      std::vector<std::int64_t> send;
      if (world.Rank() == root) {
        for (int r = 0; r < p; ++r) {
          send.push_back(r * 10);
          send.push_back(r * 10 + 1);
        }
      }
      std::int64_t recv[2] = {-1, -1};
      mpisim::Scatter(send.data(), 2, Datatype::kInt64, recv, root, world);
      EXPECT_EQ(recv[0], world.Rank() * 10);
      EXPECT_EQ(recv[1], world.Rank() * 10 + 1);
    }
  });
}

TEST_P(ScatterSweep, ScattervDistributesVariableBlocks) {
  const int p = GetParam();
  RunRanks(p, [p](Comm& world) {
    std::vector<int> counts, displs;
    int total = 0;
    for (int r = 0; r < p; ++r) {
      counts.push_back(r % 3 + 1);
      displs.push_back(total);
      total += r % 3 + 1;
    }
    std::vector<double> send;
    if (world.Rank() == 0) {
      send.resize(static_cast<std::size_t>(total));
      for (int r = 0; r < p; ++r) {
        for (int i = 0; i < counts[static_cast<std::size_t>(r)]; ++i) {
          send[static_cast<std::size_t>(displs[static_cast<std::size_t>(r)] + i)] =
              r + i * 0.1;
        }
      }
    }
    const int mine_n = counts[static_cast<std::size_t>(world.Rank())];
    std::vector<double> recv(static_cast<std::size_t>(mine_n), -1.0);
    mpisim::Scatterv(send.data(), counts, displs, Datatype::kFloat64,
                     recv.data(), mine_n, 0, world);
    for (int i = 0; i < mine_n; ++i) {
      EXPECT_DOUBLE_EQ(recv[static_cast<std::size_t>(i)],
                       world.Rank() + i * 0.1);
    }
  });
}

TEST(Scatterv, RoundTripsWithGatherv) {
  constexpr int kP = 7;
  RunRanks(kP, [](Comm& world) {
    std::vector<int> counts, displs;
    int total = 0;
    for (int r = 0; r < kP; ++r) {
      counts.push_back(r + 1);
      displs.push_back(total);
      total += r + 1;
    }
    std::vector<std::int64_t> original;
    if (world.Rank() == 0) {
      for (int i = 0; i < total; ++i) original.push_back(i * 3);
    }
    const int mine_n = counts[static_cast<std::size_t>(world.Rank())];
    std::vector<std::int64_t> mine(static_cast<std::size_t>(mine_n));
    mpisim::Scatterv(original.data(), counts, displs, Datatype::kInt64,
                     mine.data(), mine_n, 0, world);
    std::vector<std::int64_t> back(
        world.Rank() == 0 ? static_cast<std::size_t>(total) : 0);
    mpisim::Gatherv(mine.data(), mine_n, Datatype::kInt64, back.data(),
                    counts, displs, 0, world);
    if (world.Rank() == 0) {
      EXPECT_EQ(back, original);
    }
  });
}

TEST(Scatterv, TooSmallReceiveBufferThrows) {
  EXPECT_THROW(
      RunRanks(2,
               [](Comm& world) {
                 const std::vector<int> counts{2, 2}, displs{0, 2};
                 const std::vector<double> send{1, 2, 3, 4};
                 double recv[1];
                 mpisim::Scatterv(send.data(), counts, displs,
                                  Datatype::kFloat64, recv, 1, 0, world);
               }),
      mpisim::UsageError);
}

TEST(Sendrecv, PairwiseExchangeDoesNotDeadlock) {
  RunRanks(6, [](Comm& world) {
    const int peer = world.Rank() ^ 1;
    const std::int64_t out = world.Rank() * 11;
    std::int64_t in = -1;
    mpisim::Status st;
    mpisim::Sendrecv(&out, 1, Datatype::kInt64, peer, 4, &in, 1,
                     Datatype::kInt64, peer, 4, world, &st);
    EXPECT_EQ(in, peer * 11);
    EXPECT_EQ(st.source, peer);
  });
}

TEST(Sendrecv, RingShiftMovesDataAround) {
  constexpr int kP = 5;
  RunRanks(kP, [](Comm& world) {
    const int right = (world.Rank() + 1) % kP;
    const int left = (world.Rank() - 1 + kP) % kP;
    std::int64_t token = world.Rank();
    // kP shifts bring every token back home.
    for (int i = 0; i < kP; ++i) {
      std::int64_t incoming = -1;
      mpisim::Sendrecv(&token, 1, Datatype::kInt64, right, 9, &incoming, 1,
                       Datatype::kInt64, left, 9, world);
      token = incoming;
    }
    EXPECT_EQ(token, world.Rank());
  });
}

}  // namespace
