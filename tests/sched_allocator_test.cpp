// The service's contiguous rank-range allocator: first-fit carving with
// neighbor coalescing, power-of-two buddy blocks with buddy merging, and
// the property both must uphold -- live blocks never overlap, live+free
// partition the machine, and releasing everything restores one free run
// of the full width.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "mpisim/error.hpp"
#include "sched/allocator.hpp"

namespace {

using jsort::sched::Block;
using jsort::sched::RangeAllocator;
using Policy = RangeAllocator::Policy;

TEST(FirstFit, CarvesLowestFitAndCoalescesOnRelease) {
  RangeAllocator alloc(16);
  const Block a = *alloc.Allocate(4);
  const Block b = *alloc.Allocate(4);
  const Block c = *alloc.Allocate(4);
  EXPECT_EQ(a, (Block{0, 3}));
  EXPECT_EQ(b, (Block{4, 7}));
  EXPECT_EQ(c, (Block{8, 11}));
  EXPECT_EQ(alloc.FreeRanks(), 4);

  alloc.Release(b);
  // Lowest fit: a width-2 request lands in the released middle hole.
  EXPECT_EQ(*alloc.Allocate(2), (Block{4, 5}));
  alloc.Release(Block{4, 5});
  alloc.Release(a);
  // [0, 7] must have coalesced across the two releases.
  EXPECT_EQ(alloc.LargestFreeRun(), 8);
  EXPECT_EQ(*alloc.Allocate(8), (Block{0, 7}));
  alloc.Release(Block{0, 7});
  alloc.Release(c);
  EXPECT_TRUE(alloc.AllFree());
  EXPECT_EQ(alloc.LargestFreeRun(), 16);
}

TEST(FirstFit, RefusesWhatCannotFitWithoutSplitting) {
  RangeAllocator alloc(8);
  const Block a = *alloc.Allocate(3);
  ASSERT_TRUE(alloc.Allocate(2).has_value());  // [3,4]
  alloc.Release(a);
  // 6 ranks are free but the largest contiguous run is 3 -- a width-4
  // job must not be split across the hole.
  EXPECT_EQ(alloc.FreeRanks(), 6);
  EXPECT_EQ(alloc.LargestFreeRun(), 3);
  EXPECT_FALSE(alloc.Allocate(4).has_value());
}

TEST(Buddy, AlignsRoundsAndMerges) {
  RangeAllocator alloc(16, Policy::kBuddy);
  // Width 3 rounds up to a 4-block; blocks are size-aligned.
  const Block a = *alloc.Allocate(3);
  EXPECT_EQ(a, (Block{0, 3}));
  const Block b = *alloc.Allocate(1);
  EXPECT_EQ(b, (Block{4, 4}));
  const Block c = *alloc.Allocate(5);  // rounds to 8, aligned at 8
  EXPECT_EQ(c, (Block{8, 15}));
  EXPECT_FALSE(alloc.Allocate(4).has_value());  // only [5..7] fragments left
  alloc.Release(a);
  alloc.Release(b);
  alloc.Release(c);
  EXPECT_TRUE(alloc.AllFree());
  // Buddy merging must have restored the full 16-block.
  EXPECT_EQ(*alloc.Allocate(16), (Block{0, 15}));
}

TEST(Buddy, RequiresPowerOfTwoSize) {
  EXPECT_THROW(RangeAllocator(12, Policy::kBuddy), mpisim::UsageError);
}

TEST(RangeAllocatorApi, RejectsMisuse) {
  RangeAllocator alloc(8);
  EXPECT_THROW(alloc.Allocate(0), mpisim::UsageError);
  EXPECT_FALSE(alloc.Allocate(9).has_value());
  EXPECT_THROW(alloc.Release(Block{0, 3}), mpisim::UsageError);  // not live
  const Block a = *alloc.Allocate(4);
  EXPECT_THROW(alloc.Release(Block{0, 2}), mpisim::UsageError);  // wrong width
  alloc.Release(a);
  EXPECT_THROW(alloc.Release(a), mpisim::UsageError);  // double free
}

class AllocatorProperty : public ::testing::TestWithParam<Policy> {};

INSTANTIATE_TEST_SUITE_P(Policies, AllocatorProperty,
                         ::testing::Values(Policy::kFirstFit,
                                           Policy::kBuddy));

// Randomized allocate/release storm: after every step live blocks are
// disjoint, in bounds, and live+free account for every rank; draining
// the live set coalesces back to the full range.
TEST_P(AllocatorProperty, NeverOverlapsAndAlwaysCoalescesBack) {
  constexpr int kSize = 64;
  RangeAllocator alloc(kSize, GetParam());
  std::mt19937_64 rng(20260731);
  std::vector<Block> live;
  for (int step = 0; step < 2000; ++step) {
    const bool do_alloc = live.empty() || (rng() % 2 == 0);
    if (do_alloc) {
      const int width = 1 + static_cast<int>(rng() % 9);
      if (auto b = alloc.Allocate(width)) {
        EXPECT_GE(b->first, 0);
        EXPECT_LT(b->last, kSize);
        EXPECT_GE(b->Width(), width);
        if (GetParam() == Policy::kBuddy) {
          EXPECT_EQ(b->Width() & (b->Width() - 1), 0);
          EXPECT_EQ(b->first % b->Width(), 0);
        } else {
          EXPECT_EQ(b->Width(), width);
        }
        live.push_back(*b);
      }
    } else {
      const std::size_t pick = rng() % live.size();
      alloc.Release(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    // Invariants after every step.
    std::vector<Block> sorted = live;
    std::sort(sorted.begin(), sorted.end(),
              [](const Block& x, const Block& y) {
                return x.first < y.first;
              });
    int live_ranks = 0;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      live_ranks += sorted[i].Width();
      if (i > 0) {
        ASSERT_GT(sorted[i].first, sorted[i - 1].last)
            << "overlapping live blocks at step " << step;
      }
    }
    ASSERT_EQ(alloc.FreeRanks(), kSize - live_ranks);
    ASSERT_EQ(alloc.LiveBlocks().size(), live.size());
  }
  for (const Block& b : live) alloc.Release(b);
  EXPECT_TRUE(alloc.AllFree());
  EXPECT_EQ(alloc.LargestFreeRun(), kSize);
  ASSERT_EQ(alloc.FreeRuns().size(), 1u);
  EXPECT_EQ(alloc.FreeRuns()[0], (Block{0, kSize - 1}));
}

}  // namespace
