// tools/bench_report.py must degrade gracefully: zero snapshots (a fresh
// clone, a bench directory that has not produced JSON yet) is a normal
// state that renders an empty trajectory table and exits 0, so CI and
// local scripts can call it unconditionally; only a *named* path that
// does not exist is a usage error (exit 2).
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

namespace {

namespace fs = std::filesystem;

int RunReport(const std::string& args) {
  const std::string cmd = std::string("python3 \"") + REPO_SOURCE_DIR +
                          "/tools/bench_report.py\" " + args +
                          " > /dev/null 2>&1";
  const int raw = std::system(cmd.c_str());
  return WEXITSTATUS(raw);
}

class TempDir {
 public:
  TempDir() {
    path_ = fs::temp_directory_path() /
            ("topo_tools_test_" + std::to_string(::getpid()));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

TEST(BenchReport, EmptyDirectoryExitsZero) {
  TempDir dir;
  EXPECT_EQ(RunReport("\"" + dir.path().string() + "\""), 0);
}

TEST(BenchReport, SingleSnapshotExitsZeroAndWritesReport) {
  TempDir dir;
  {
    std::ofstream doc(dir.path() / "BENCH_one.json");
    doc << R"({"meta": {"binary": "bench_one", "git_describe": "v1"},)"
        << R"( "rows": [{"bench": "b", "backend": "x", "p": 4,)"
        << R"( "count": 100, "vtime": 12.5}]})";
  }
  const fs::path out = dir.path() / "report.md";
  EXPECT_EQ(RunReport("--out \"" + out.string() + "\" \"" +
                      dir.path().string() + "\""),
            0);
  ASSERT_TRUE(fs::exists(out));
  std::ifstream in(out);
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("bench_one"), std::string::npos);
  EXPECT_NE(text.find("Only one snapshot group"), std::string::npos);
}

TEST(BenchReport, MalformedSnapshotIsSkippedNotFatal) {
  TempDir dir;
  { std::ofstream(dir.path() / "BENCH_bad.json") << "{not json"; }
  EXPECT_EQ(RunReport("\"" + dir.path().string() + "\""), 0);
}

TEST(BenchReport, MissingPathIsUsageError) {
  TempDir dir;
  EXPECT_EQ(
      RunReport("\"" + (dir.path() / "does_not_exist").string() + "\""), 2);
}

}  // namespace
