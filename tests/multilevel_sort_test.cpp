// Multi-level sample sort (Section IV): correctness over (p, k, n/p,
// input) grids and the startup-count compromise vs single-level sample
// sort.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <tuple>
#include <vector>

#include "sort/checks.hpp"
#include "sort/multilevel_sort.hpp"
#include "sort/sample_sort.hpp"
#include "sort/workload.hpp"
#include "testutil.hpp"

namespace {

using jsort::InputKind;
using jsort::MultilevelConfig;
using testutil::RunRanks;

std::shared_ptr<jsort::Transport> RbcTransportOf(mpisim::Comm& world) {
  rbc::Comm rw;
  rbc::Create_RBC_Comm(world, &rw);
  return jsort::MakeRbcTransport(rw);
}

class MlSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, InputKind>> {
};

INSTANTIATE_TEST_SUITE_P(
    Sweep, MlSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8, 12, 16),  // p
                       ::testing::Values(2, 3, 4),                // k
                       ::testing::Values(4, 64),                  // n/p
                       ::testing::Values(InputKind::kUniform,
                                         InputKind::kAllEqual,
                                         InputKind::kZipf)));

TEST_P(MlSweep, SortsCorrectly) {
  const auto [p, k, quota, kind] = GetParam();
  RunRanks(p, [&, p = p, k = k, quota = quota, kind = kind](
                  mpisim::Comm& world) {
    rbc::Comm rw;
    rbc::Create_RBC_Comm(world, &rw);
    auto input = jsort::GenerateInput(kind, world.Rank(), p, quota, 61);
    const auto before = jsort::GlobalFingerprint(input, rw);
    auto tr = RbcTransportOf(world);
    MultilevelConfig cfg;
    cfg.k = k;
    const auto out = jsort::MultilevelSampleSort(tr, std::move(input), cfg);
    EXPECT_EQ(before, jsort::GlobalFingerprint(out, rw));
    EXPECT_TRUE(jsort::IsGloballySorted(out, rw));
  });
}

TEST(Multilevel, LevelCountIsLogK) {
  constexpr int kP = 16;
  RunRanks(kP, [](mpisim::Comm& world) {
    auto tr = RbcTransportOf(world);
    auto input = jsort::GenerateInput(InputKind::kUniform, world.Rank(), kP,
                                      64, 3);
    jsort::MultilevelStats stats;
    MultilevelConfig cfg;
    cfg.k = 4;
    jsort::MultilevelSampleSort(tr, std::move(input), cfg, &stats);
    EXPECT_EQ(stats.levels, 2);  // log_4(16)
  });
}

TEST(Multilevel, IdenticalOutputAcrossExchangeModes) {
  // The group-wise exchange must be a pure delivery detail: every mode
  // (dense counts+Alltoallv, the sparse collective, coalesced -- which
  // degrades to sparse for unknown receive counts -- and kAuto) yields
  // element-for-element identical per-rank output.
  constexpr int kP = 12;
  using jsort::exchange::Mode;
  const std::vector<Mode> modes{Mode::kAlltoallv, Mode::kCoalesced,
                                Mode::kSparse, Mode::kAuto};
  for (InputKind kind : {InputKind::kUniform, InputKind::kZipf}) {
    // outs[m][r]: distinct ranks write distinct pre-sized slots, no lock
    // needed.
    std::vector<std::vector<std::vector<double>>> outs(
        modes.size(), std::vector<std::vector<double>>(kP));
    for (std::size_t m = 0; m < modes.size(); ++m) {
      RunRanks(kP, [&, m](mpisim::Comm& world) {
        auto tr = RbcTransportOf(world);
        auto input = jsort::GenerateInput(kind, world.Rank(), kP, 48, 77);
        MultilevelConfig cfg;
        cfg.k = 3;
        cfg.exchange_mode = modes[m];
        outs[m][static_cast<std::size_t>(world.Rank())] =
            jsort::MultilevelSampleSort(tr, std::move(input), cfg);
      });
    }
    for (std::size_t r = 0; r < static_cast<std::size_t>(kP); ++r) {
      for (std::size_t m = 1; m < modes.size(); ++m) {
        EXPECT_EQ(outs[0][r], outs[m][r])
            << "mode " << m << " diverges on rank " << r;
      }
      EXPECT_TRUE(std::is_sorted(outs[0][r].begin(), outs[0][r].end()));
    }
  }
}

TEST(Multilevel, SendsNoEmptyPieceMessages) {
  // The seed implementation paid one startup per piece -- k * levels per
  // rank, empty pieces and self-destined pieces included. The exchange-
  // layer routing must stay strictly below that: self pieces bypass the
  // transport and empty pieces are never sent.
  constexpr int kP = 16;
  RunRanks(kP, [](mpisim::Comm& world) {
    auto tr = RbcTransportOf(world);
    auto input = jsort::GenerateInput(InputKind::kUniform, world.Rank(), kP,
                                      64, 13);
    jsort::MultilevelStats stats;
    MultilevelConfig cfg;
    cfg.k = 4;
    jsort::MultilevelSampleSort(tr, std::move(input), cfg, &stats);
    EXPECT_EQ(stats.levels, 2);
    ASSERT_EQ(static_cast<int>(stats.level_stats.size()), stats.levels);
    for (const auto& ls : stats.level_stats) {
      EXPECT_LE(ls.messages_sent, cfg.k - 1);  // self never transmitted
    }
    EXPECT_LT(stats.messages_sent,
              static_cast<std::int64_t>(cfg.k) * stats.levels);
  });
}

TEST(Multilevel, AllEqualInputSendsAlmostNothingUnderSparse) {
  // Degenerate splitters put every element into one piece: all but one
  // piece per level is empty, so under the sparse path almost no messages
  // move. The seed sent k per level regardless. (kAuto may still pick the
  // dense p-1 rounds for tiny late-level groups, where that is cheaper
  // than the barrier overhead -- hence the forced mode here.)
  constexpr int kP = 9;
  RunRanks(kP, [](mpisim::Comm& world) {
    auto tr = RbcTransportOf(world);
    auto input = jsort::GenerateInput(InputKind::kAllEqual, world.Rank(), kP,
                                      32, 5);
    jsort::MultilevelStats stats;
    MultilevelConfig cfg;
    cfg.k = 3;
    cfg.exchange_mode = jsort::exchange::Mode::kSparse;
    jsort::MultilevelSampleSort(tr, std::move(input), cfg, &stats);
    for (const auto& ls : stats.level_stats) {
      EXPECT_LE(ls.messages_sent, 1);  // at most the one non-empty piece
    }
  });
}

TEST(Multilevel, FewerStartupsThanSingleLevelForSmallK) {
  // Section IV: single-level sample sort sends p-1 messages per rank;
  // k-way multilevel sends ~k * log_k(p), far fewer for small k.
  constexpr int kP = 16;
  RunRanks(kP, [](mpisim::Comm& world) {
    auto input1 = jsort::GenerateInput(InputKind::kUniform, world.Rank(),
                                       kP, 128, 5);
    auto input2 = input1;
    {
      auto tr = RbcTransportOf(world);
      jsort::SampleSortStats single;
      jsort::SampleSort(tr, std::move(input1), {}, &single);
      auto tr2 = RbcTransportOf(world);
      jsort::MultilevelStats multi;
      MultilevelConfig cfg;
      cfg.k = 2;
      jsort::MultilevelSampleSort(tr2, std::move(input2), cfg, &multi);
      EXPECT_EQ(single.messages_sent, kP - 1);
      EXPECT_LE(multi.messages_sent, 2 * 4);  // k * log_k(p) = 2 * 4
      EXPECT_LT(multi.messages_sent, single.messages_sent);
    }
  });
}

TEST(Multilevel, KLargerThanPFallsBackToSingleLevel) {
  constexpr int kP = 5;
  RunRanks(kP, [](mpisim::Comm& world) {
    rbc::Comm rw;
    rbc::Create_RBC_Comm(world, &rw);
    auto tr = RbcTransportOf(world);
    auto input = jsort::GenerateInput(InputKind::kGaussian, world.Rank(),
                                      kP, 32, 9);
    const auto before = jsort::GlobalFingerprint(input, rw);
    jsort::MultilevelStats stats;
    MultilevelConfig cfg;
    cfg.k = 64;  // clamped to p per level
    const auto out =
        jsort::MultilevelSampleSort(tr, std::move(input), cfg, &stats);
    EXPECT_EQ(before, jsort::GlobalFingerprint(out, rw));
    EXPECT_TRUE(jsort::IsGloballySorted(out, rw));
  });
}

TEST(Multilevel, RejectsInvalidK) {
  EXPECT_THROW(RunRanks(2,
                        [](mpisim::Comm& world) {
                          auto tr = RbcTransportOf(world);
                          MultilevelConfig cfg;
                          cfg.k = 1;
                          jsort::MultilevelSampleSort(tr, {1.0}, cfg);
                        }),
               mpisim::UsageError);
}

}  // namespace
