// Pins the measured default large-message segment limit (ROADMAP item:
// tune a default segment_bytes). The value comes from bench_sensitivity's
// segment_crossover sweep on the virtual cost model -- see the comment at
// jsort::exchange::kDefaultSegmentBytes -- and every sorter config must
// default to it, so a change to the constant is a deliberate, test-visible
// decision. The end-to-end case proves the default actually engages: a
// sort whose per-destination payloads exceed the limit must ship more
// wire segments than logical messages and still sort correctly.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sort/jquick.hpp"
#include "sort/multilevel_sort.hpp"
#include "sort/sample_sort.hpp"
#include "sort/workload.hpp"
#include "testutil.hpp"

namespace {

TEST(SegmentBytesDefault, PinnedToMeasuredCrossover) {
  EXPECT_EQ(jsort::exchange::kDefaultSegmentBytes, 65536);
}

TEST(SegmentBytesDefault, AllSorterConfigsUseIt) {
  EXPECT_EQ(jsort::JQuickConfig{}.segment_bytes,
            jsort::exchange::kDefaultSegmentBytes);
  EXPECT_EQ(jsort::SampleSortConfig{}.segment_bytes,
            jsort::exchange::kDefaultSegmentBytes);
  EXPECT_EQ(jsort::MultilevelConfig{}.segment_bytes,
            jsort::exchange::kDefaultSegmentBytes);
}

/// With the default limit, a quota of 2^14 doubles (128 KiB potential
/// per-destination payloads) must segment: more wire segments than
/// logical messages, and the result still globally sorted and perfectly
/// balanced.
TEST(SegmentBytesDefault, DefaultEngagesOnLargeMessages) {
  constexpr int kP = 4;
  constexpr int kQuota = 1 << 14;
  testutil::PerRank<std::vector<double>> outputs(kP);
  testutil::PerRank<jsort::JQuickStats> stats(kP);
  testutil::RunRbc(kP, [&](rbc::Comm& rw) {
    auto tr = jsort::MakeRbcTransport(rw);
    auto input = jsort::GenerateInput(jsort::InputKind::kUniform, tr->Rank(),
                                      kP, kQuota, 11);
    jsort::JQuickStats st;
    auto out = jsort::JQuickSort(tr, std::move(input), jsort::JQuickConfig{},
                                 &st);
    outputs.Set(tr->Rank(), std::move(out));
    stats.Set(tr->Rank(), st);
  });

  std::int64_t messages = 0, segments = 0;
  std::vector<double> all;
  for (int r = 0; r < kP; ++r) {
    EXPECT_EQ(outputs[r].size(), static_cast<std::size_t>(kQuota))
        << "rank " << r;
    EXPECT_TRUE(std::is_sorted(outputs[r].begin(), outputs[r].end()));
    if (r > 0 && !outputs[r - 1].empty() && !outputs[r].empty()) {
      EXPECT_LE(outputs[r - 1].back(), outputs[r].front());
    }
    messages += stats[r].messages_sent;
    segments += stats[r].segments_sent;
  }
  EXPECT_GT(segments, messages)
      << "the default segment limit never engaged on 128 KiB payloads";
}

}  // namespace
