// RBC communicator creation: locality, constant cost, rank translation,
// strided ranges, nesting.
#include <gtest/gtest.h>

#include "testutil.hpp"

namespace {

using testutil::RunRanks;

TEST(RbcComm, CreateCoversWholeMpiComm) {
  RunRanks(5, [](mpisim::Comm& world) {
    rbc::Comm rw;
    rbc::Create_RBC_Comm(world, &rw);
    int rank = -1, size = -1;
    rbc::Comm_rank(rw, &rank);
    rbc::Comm_size(rw, &size);
    EXPECT_EQ(rank, world.Rank());
    EXPECT_EQ(size, 5);
    EXPECT_EQ(rw.First(), 0);
    EXPECT_EQ(rw.Last(), 4);
  });
}

TEST(RbcComm, SplitIsLocalAndSendsZeroMessages) {
  mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = 8});
  rt.Run([&rt](mpisim::Comm& world) {
    rbc::Comm rw;
    rbc::Create_RBC_Comm(world, &rw);
    mpisim::Barrier(world);
    rt.ResetClocksAndStats();
    // Every rank creates ten nested communicators; none may communicate.
    rbc::Comm cur = rw;
    for (int i = 0; i < 10 && cur.Size() > 1; ++i) {
      rbc::Comm sub;
      rbc::Split_RBC_Comm(cur, 0, cur.Size() - 1, &sub);
      cur = sub;
    }
    EXPECT_EQ(mpisim::Ctx().stats.messages_sent, 0u);
    EXPECT_EQ(mpisim::Ctx().clock.Now(), 0.0);  // zero model time too
  });
}

TEST(RbcComm, AnyProcessMayConstructAnyRange) {
  // Unlike MPI, a process may build a handle for a range it is not in.
  RunRanks(4, [](mpisim::Comm& world) {
    rbc::Comm rw, other_half;
    rbc::Create_RBC_Comm(world, &rw);
    const bool low = world.Rank() < 2;
    rbc::Split_RBC_Comm(rw, low ? 2 : 0, low ? 3 : 1, &other_half);
    EXPECT_EQ(other_half.Size(), 2);
    EXPECT_EQ(other_half.Rank(), -1);  // not a member
  });
}

TEST(RbcComm, SplitTranslatesRanks) {
  RunRanks(6, [](mpisim::Comm& world) {
    rbc::Comm rw, mid;
    rbc::Create_RBC_Comm(world, &rw);
    rbc::Split_RBC_Comm(rw, 2, 4, &mid);
    EXPECT_EQ(mid.Size(), 3);
    EXPECT_EQ(mid.ToMpi(0), 2);
    EXPECT_EQ(mid.ToMpi(2), 4);
    EXPECT_EQ(mid.FromMpi(3), 1);
    EXPECT_EQ(mid.FromMpi(5), -1);
    if (world.Rank() >= 2 && world.Rank() <= 4) {
      EXPECT_EQ(mid.Rank(), world.Rank() - 2);
    } else {
      EXPECT_EQ(mid.Rank(), -1);
    }
  });
}

TEST(RbcComm, NestedSplitsCompose) {
  RunRanks(8, [](mpisim::Comm& world) {
    rbc::Comm rw, right, inner;
    rbc::Create_RBC_Comm(world, &rw);
    rbc::Split_RBC_Comm(rw, 4, 7, &right);    // MPI ranks 4..7
    rbc::Split_RBC_Comm(right, 1, 2, &inner); // MPI ranks 5..6
    EXPECT_EQ(inner.Size(), 2);
    EXPECT_EQ(inner.ToMpi(0), 5);
    EXPECT_EQ(inner.ToMpi(1), 6);
  });
}

TEST(RbcComm, StridedRangeSelectsEveryOther) {
  RunRanks(8, [](mpisim::Comm& world) {
    rbc::Comm rw, even;
    rbc::Create_RBC_Comm(world, &rw);
    rbc::Split_RBC_Comm_Strided(rw, 0, 7, 2, &even);  // 0,2,4,6
    EXPECT_EQ(even.Size(), 4);
    EXPECT_EQ(even.ToMpi(3), 6);
    EXPECT_EQ(even.FromMpi(4), 2);
    EXPECT_EQ(even.FromMpi(3), -1);
    if (world.Rank() % 2 == 0) {
      EXPECT_EQ(even.Rank(), world.Rank() / 2);
    } else {
      EXPECT_EQ(even.Rank(), -1);
    }
  });
}

TEST(RbcComm, StridedSplitOfStridedRangeComposes) {
  RunRanks(16, [](mpisim::Comm& world) {
    rbc::Comm rw, even, fourth;
    rbc::Create_RBC_Comm(world, &rw);
    rbc::Split_RBC_Comm_Strided(rw, 0, 15, 2, &even);     // 0,2,..,14
    rbc::Split_RBC_Comm_Strided(even, 0, 7, 2, &fourth);  // 0,4,8,12
    EXPECT_EQ(fourth.Size(), 4);
    EXPECT_EQ(fourth.ToMpi(1), 4);
    EXPECT_EQ(fourth.ToMpi(3), 12);
    EXPECT_EQ(fourth.Stride(), 4);
  });
}

TEST(RbcComm, InvalidRangesThrow) {
  RunRanks(4, [](mpisim::Comm& world) {
    rbc::Comm rw, out;
    rbc::Create_RBC_Comm(world, &rw);
    EXPECT_THROW(rbc::Split_RBC_Comm(rw, 2, 1, &out), mpisim::UsageError);
    EXPECT_THROW(rbc::Split_RBC_Comm(rw, 0, 4, &out), mpisim::UsageError);
    EXPECT_THROW(rbc::Split_RBC_Comm(rw, -1, 2, &out), mpisim::UsageError);
    EXPECT_THROW(rbc::Split_RBC_Comm_Strided(rw, 0, 3, 0, &out),
                 mpisim::UsageError);
  });
}

TEST(RbcComm, CollectivesWorkOnBothHalvesSimultaneously) {
  // The paper's Figure 1: two locally created halves broadcast at once.
  RunRanks(6, [](mpisim::Comm& world) {
    rbc::Comm rw, range;
    rbc::Create_RBC_Comm(world, &rw);
    int r = 0, s = 0;
    rbc::Comm_rank(rw, &r);
    rbc::Comm_size(rw, &s);
    const int f = r < s / 2 ? 0 : s / 2;
    const int l = r < s / 2 ? s / 2 - 1 : s - 1;
    rbc::Split_RBC_Comm(rw, f, l, &range);
    int e = range.Rank() == 0 ? f : -1;
    rbc::Request req;
    rbc::Ibcast(&e, 1, rbc::Datatype::kInt32, 0, range, &req);
    int flag = 0;
    while (!flag) rbc::Test(&req, &flag, nullptr);
    EXPECT_EQ(e, f);
  });
}

}  // namespace
