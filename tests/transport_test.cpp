// The GroupTransport abstraction, parameterized over all three backends
// (RBC, native MPI, Section-VI ICOMM): identical observable semantics,
// different split mechanics.
#include <gtest/gtest.h>

#include <vector>
#include <thread>

#include "sort/transport.hpp"
#include "testutil.hpp"

namespace {

using jsort::Backend;
using jsort::Transport;
using testutil::RunRanks;

std::shared_ptr<Transport> Make(Backend b, mpisim::Comm& world) {
  return jsort::MakeTransport(b, world);
}

TEST(BackendFactory, LabelsRoundTripThroughParse) {
  for (Backend b : {Backend::kRbc, Backend::kMpi, Backend::kIcomm}) {
    Backend parsed;
    ASSERT_TRUE(jsort::ParseBackend(jsort::BackendName(b), &parsed));
    EXPECT_EQ(parsed, b);
  }
  Backend out;
  EXPECT_FALSE(jsort::ParseBackend("frobnicate", &out));
}

class TransportSweep : public ::testing::TestWithParam<Backend> {};

INSTANTIATE_TEST_SUITE_P(Backends, TransportSweep,
                         ::testing::Values(Backend::kRbc, Backend::kMpi,
                                           Backend::kIcomm));

TEST_P(TransportSweep, CollectivesWork) {
  const Backend b = GetParam();
  RunRanks(6, [&](mpisim::Comm& world) {
    auto tr = Make(b, world);
    EXPECT_EQ(tr->Size(), 6);
    EXPECT_EQ(tr->Rank(), world.Rank());

    std::int64_t v = tr->Rank() == 0 ? 42 : -1;
    auto p1 = tr->Ibcast(&v, 1, jsort::Datatype::kInt64, 0, 1);
    while (!p1()) {
    }
    EXPECT_EQ(v, 42);

    const std::int64_t mine = tr->Rank() + 1;
    std::int64_t scan = 0;
    auto p2 = tr->Iscan(&mine, &scan, 1, jsort::Datatype::kInt64,
                        jsort::ReduceOp::kSum, 2);
    while (!p2()) {
    }
    const std::int64_t k = tr->Rank() + 1;
    EXPECT_EQ(scan, k * (k + 1) / 2);

    std::int64_t sum = 0;
    auto p3 = tr->Ireduce(&mine, &sum, 1, jsort::Datatype::kInt64,
                          jsort::ReduceOp::kSum, 0, 3);
    while (!p3()) {
    }
    if (tr->Rank() == 0) {
      EXPECT_EQ(sum, 21);
    }

    std::vector<std::int64_t> all(6, -1);
    auto p4 = tr->Igather(&mine, 1, jsort::Datatype::kInt64, all.data(), 0,
                          4);
    while (!p4()) {
    }
    if (tr->Rank() == 0) {
      for (int r = 0; r < 6; ++r) {
        EXPECT_EQ(all[static_cast<std::size_t>(r)], r + 1);
      }
    }
  });
}

TEST_P(TransportSweep, SplitIsolatesSubgroups) {
  const Backend b = GetParam();
  RunRanks(7, [&](mpisim::Comm& world) {
    auto tr = Make(b, world);
    const bool low = tr->Rank() < 3;
    auto sub = low ? tr->Split(0, 2) : tr->Split(3, 6);
    EXPECT_EQ(sub->Size(), low ? 3 : 4);
    EXPECT_EQ(sub->Rank(), low ? tr->Rank() : tr->Rank() - 3);
    std::int64_t mine = 1, sum = 0;
    auto poll = sub->Ireduce(&mine, &sum, 1, jsort::Datatype::kInt64,
                             jsort::ReduceOp::kSum, 0, 5);
    while (!poll()) {
    }
    if (sub->Rank() == 0) {
      EXPECT_EQ(sum, low ? 3 : 4);
    }
  });
}

TEST_P(TransportSweep, NestedSplitsCompose) {
  const Backend b = GetParam();
  RunRanks(8, [&](mpisim::Comm& world) {
    auto tr = Make(b, world);
    // Recursively halve down to singletons.
    while (tr->Size() > 1) {
      const int half = tr->Size() / 2;
      tr = tr->Rank() < half ? tr->Split(0, half - 1)
                             : tr->Split(half, tr->Size() - 1);
    }
    EXPECT_EQ(tr->Size(), 1);
    EXPECT_EQ(tr->Rank(), 0);
  });
}

TEST_P(TransportSweep, PointToPointAndProbe) {
  const Backend b = GetParam();
  RunRanks(4, [&](mpisim::Comm& world) {
    auto tr = Make(b, world);
    constexpr int kTag = 77;
    if (tr->Rank() == 3) {
      const double v[2] = {1.5, 2.5};
      tr->Send(v, 2, jsort::Datatype::kFloat64, 0, kTag);
    } else if (tr->Rank() == 0) {
      jsort::Status st;
      while (!tr->IprobeAny(kTag, &st)) {
      }
      EXPECT_EQ(st.source, 3);
      EXPECT_EQ(st.Count(jsort::Datatype::kFloat64), 2);
      double got[2] = {0, 0};
      tr->Recv(got, 2, jsort::Datatype::kFloat64, st.source, kTag);
      EXPECT_DOUBLE_EQ(got[1], 2.5);
    }
  });
}

TEST_P(TransportSweep, OverlappingSplitsAtOneRank) {
  // The janus pattern at the transport level: rank 2 is in both [0..2]
  // and [2..4]; probes on each subgroup must only see that subgroup's
  // messages, for every backend.
  const Backend b = GetParam();
  RunRanks(5, [&](mpisim::Comm& world) {
    auto tr = Make(b, world);
    const int r = tr->Rank();
    std::shared_ptr<Transport> left, right;
    // Creation order at the janus: left first (cascaded is fine here).
    if (r <= 2) left = tr->Split(0, 2);
    if (r >= 2) right = tr->Split(2, 4);
    constexpr int kTag = 31;
    if (r == 0) {
      const double v = 10;
      left->Send(&v, 1, jsort::Datatype::kFloat64, 2, kTag);
    }
    if (r == 4) {
      const double v = 40;
      right->Send(&v, 1, jsort::Datatype::kFloat64, 0, kTag);
    }
    if (r == 2) {
      // Drain both, each strictly from its own subgroup.
      jsort::Status st;
      while (!left->IprobeAny(kTag, &st)) {
        std::this_thread::yield();
      }
      double got = 0;
      left->Recv(&got, 1, jsort::Datatype::kFloat64, st.source, kTag);
      EXPECT_DOUBLE_EQ(got, 10);
      while (!right->IprobeAny(kTag, &st)) {
        std::this_thread::yield();
      }
      right->Recv(&got, 1, jsort::Datatype::kFloat64, st.source, kTag);
      EXPECT_DOUBLE_EQ(got, 40);
    }
  });
}

}  // namespace
