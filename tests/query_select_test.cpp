// DistributedSelect on all three split backends: exact agreement with
// the sequential oracle over the concatenated input, exact global rank
// intervals, duplicate-heavy and all-equal inputs, uneven and empty
// local slices, and bit-identical answers across backends.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "mpisim/error.hpp"
#include "query/select.hpp"
#include "sort/checks.hpp"
#include "sort/workload.hpp"
#include "testutil.hpp"

namespace {

using jsort::Backend;
using jsort::InputKind;
using jsort::query::DistributedSelect;
using jsort::query::SelectResult;
using jsort::query::SelectStats;
using testutil::PerRank;
using testutil::RunRanks;

/// The global input as the concatenation of every rank's slice.
std::vector<double> Concat(InputKind kind, int p, std::int64_t per_rank,
                           std::uint64_t seed) {
  std::vector<double> all;
  for (int r = 0; r < p; ++r) {
    const auto slice = jsort::GenerateInput(kind, r, p, per_rank, seed);
    all.insert(all.end(), slice.begin(), slice.end());
  }
  return all;
}

class SelectSweep : public ::testing::TestWithParam<Backend> {};

INSTANTIATE_TEST_SUITE_P(Backends, SelectSweep,
                         ::testing::Values(Backend::kRbc, Backend::kMpi,
                                           Backend::kIcomm));

TEST_P(SelectSweep, MatchesSequentialOracleAcrossDistributions) {
  const Backend backend = GetParam();
  constexpr int kRanks = 6;
  constexpr std::int64_t kPerRank = 37;
  for (const InputKind kind :
       {InputKind::kUniform, InputKind::kZipf, InputKind::kFewDistinct,
        InputKind::kAllEqual}) {
    std::vector<double> oracle = Concat(kind, kRanks, kPerRank, 0xFEEDu);
    std::sort(oracle.begin(), oracle.end());
    const std::int64_t n = static_cast<std::int64_t>(oracle.size());
    for (const std::int64_t k : {std::int64_t{0}, std::int64_t{1}, n / 2,
                                 n - 1}) {
      PerRank<SelectResult> results(kRanks);
      PerRank<int> verified(kRanks);
      RunRanks(kRanks, [&](mpisim::Comm& world) {
        auto tr = jsort::MakeTransport(backend, world);
        const auto local =
            jsort::GenerateInput(kind, world.Rank(), kRanks, kPerRank, 0xFEEDu);
        const SelectResult r = DistributedSelect(*tr, local, k);
        results.Set(world.Rank(), r);
        verified.Set(world.Rank(),
                     jsort::VerifySelection(*tr, local, k, r.value, r.less,
                                            r.less_equal)
                         ? 1
                         : 0);
      });
      const SelectResult& r0 = results[0];
      EXPECT_EQ(r0.value, oracle[static_cast<std::size_t>(k)])
          << jsort::InputKindName(kind) << " k=" << k;
      const auto less = static_cast<std::int64_t>(
          std::lower_bound(oracle.begin(), oracle.end(), r0.value) -
          oracle.begin());
      const auto less_equal = static_cast<std::int64_t>(
          std::upper_bound(oracle.begin(), oracle.end(), r0.value) -
          oracle.begin());
      EXPECT_EQ(r0.less, less);
      EXPECT_EQ(r0.less_equal, less_equal);
      for (int r = 0; r < kRanks; ++r) {
        EXPECT_EQ(results[r].value, r0.value) << "rank " << r;
        EXPECT_EQ(results[r].less, r0.less) << "rank " << r;
        EXPECT_EQ(results[r].less_equal, r0.less_equal) << "rank " << r;
        EXPECT_TRUE(verified[r]) << "rank " << r;
      }
    }
  }
}

TEST_P(SelectSweep, HandlesEmptyAndUnevenSlices) {
  const Backend backend = GetParam();
  constexpr int kRanks = 5;
  // Rank r holds r * 3 elements; ranks 0 holds none.
  std::vector<double> oracle;
  for (int r = 0; r < kRanks; ++r) {
    const auto slice =
        jsort::GenerateInput(InputKind::kUniform, r, kRanks, 3 * r, 0x11u);
    oracle.insert(oracle.end(), slice.begin(), slice.end());
  }
  std::sort(oracle.begin(), oracle.end());
  const std::int64_t k = static_cast<std::int64_t>(oracle.size()) / 3;
  PerRank<double> values(kRanks);
  RunRanks(kRanks, [&](mpisim::Comm& world) {
    auto tr = jsort::MakeTransport(backend, world);
    const auto local = jsort::GenerateInput(InputKind::kUniform, world.Rank(),
                                            kRanks, 3 * world.Rank(), 0x11u);
    values.Set(world.Rank(), DistributedSelect(*tr, local, k).value);
  });
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_EQ(values[r], oracle[static_cast<std::size_t>(k)]);
  }
}

TEST(QuerySelect, OutOfRangeThrowsOnEveryRank) {
  constexpr int kRanks = 4;
  PerRank<int> threw(kRanks);
  RunRanks(kRanks, [&](mpisim::Comm& world) {
    auto tr = jsort::MakeTransport(Backend::kRbc, world);
    const auto local =
        jsort::GenerateInput(InputKind::kUniform, world.Rank(), kRanks, 8, 3);
    int count = 0;
    try {
      DistributedSelect(*tr, local, -1);
    } catch (const mpisim::UsageError&) {
      ++count;
    }
    try {
      DistributedSelect(*tr, local, 8 * kRanks);
    } catch (const mpisim::UsageError&) {
      ++count;
    }
    threw.Set(world.Rank(), count);
  });
  for (int r = 0; r < kRanks; ++r) EXPECT_EQ(threw[r], 2);
}

TEST(QuerySelect, IdenticalAnswersAcrossBackends) {
  constexpr int kRanks = 4;
  constexpr std::int64_t kPerRank = 53;
  const std::int64_t k = 2 * kPerRank + 7;
  std::vector<SelectResult> per_backend;
  for (const Backend backend :
       {Backend::kRbc, Backend::kMpi, Backend::kIcomm}) {
    PerRank<SelectResult> results(kRanks);
    RunRanks(kRanks, [&](mpisim::Comm& world) {
      auto tr = jsort::MakeTransport(backend, world);
      const auto local = jsort::GenerateInput(InputKind::kZipf, world.Rank(),
                                              kRanks, kPerRank, 0xD00Du);
      results.Set(world.Rank(), DistributedSelect(*tr, local, k));
    });
    per_backend.push_back(results[0]);
  }
  for (std::size_t i = 1; i < per_backend.size(); ++i) {
    EXPECT_EQ(per_backend[i].value, per_backend[0].value);
    EXPECT_EQ(per_backend[i].less, per_backend[0].less);
    EXPECT_EQ(per_backend[i].less_equal, per_backend[0].less_equal);
  }
}

TEST(QuerySelect, VerifierRejectsWrongAnswers) {
  constexpr int kRanks = 4;
  PerRank<int> verdicts(kRanks);
  RunRanks(kRanks, [&](mpisim::Comm& world) {
    auto tr = jsort::MakeTransport(Backend::kRbc, world);
    const auto local = jsort::GenerateInput(InputKind::kUniform, world.Rank(),
                                            kRanks, 16, 0xBADu);
    const std::int64_t k = 20;
    const jsort::query::SelectResult r = DistributedSelect(*tr, local, k);
    int ok = 0;
    // Wrong value at the right ranks, wrong interval at the right value.
    if (!jsort::VerifySelection(*tr, local, k, r.value + 1.0, r.less,
                                r.less_equal)) {
      ++ok;
    }
    if (!jsort::VerifySelection(*tr, local, k, r.value, r.less + 1,
                                r.less_equal)) {
      ++ok;
    }
    if (jsort::VerifySelection(*tr, local, k, r.value, r.less,
                               r.less_equal)) {
      ++ok;
    }
    verdicts.Set(world.Rank(), ok);
  });
  for (int r = 0; r < kRanks; ++r) EXPECT_EQ(verdicts[r], 3);
}

}  // namespace
