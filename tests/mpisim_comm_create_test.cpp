// Communicator construction: split, create_group, create, dup -- context
// isolation, group correctness, vendor profiles, and id recycling.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "testutil.hpp"

namespace {

using mpisim::Comm;
using mpisim::Datatype;
using mpisim::Group;
using mpisim::RankRange;
using mpisim::ReduceOp;
using testutil::RunRanks;

TEST(CommSplit, HalvesFormTwoWorkingCommunicators) {
  RunRanks(8, [](Comm& world) {
    const int color = world.Rank() < 4 ? 0 : 1;
    Comm half = mpisim::CommSplit(world, color, world.Rank());
    ASSERT_FALSE(half.IsNull());
    EXPECT_EQ(half.Size(), 4);
    EXPECT_EQ(half.Rank(), world.Rank() % 4);
    std::int64_t sum = 0;
    const std::int64_t mine = world.Rank();
    mpisim::Allreduce(&mine, &sum, 1, Datatype::kInt64, ReduceOp::kSum, half);
    EXPECT_EQ(sum, color == 0 ? 0 + 1 + 2 + 3 : 4 + 5 + 6 + 7);
  });
}

TEST(CommSplit, KeyReordersRanks) {
  RunRanks(4, [](Comm& world) {
    // Reverse the ranks via the key.
    Comm rev = mpisim::CommSplit(world, 0, -world.Rank());
    ASSERT_FALSE(rev.IsNull());
    EXPECT_EQ(rev.Rank(), 3 - world.Rank());
    EXPECT_EQ(rev.WorldRank(0), 3);
  });
}

TEST(CommSplit, UndefinedColorYieldsNullComm) {
  RunRanks(4, [](Comm& world) {
    const int color =
        world.Rank() == 0 ? mpisim::kUndefinedColor : 1;
    Comm c = mpisim::CommSplit(world, color, 0);
    if (world.Rank() == 0) {
      EXPECT_TRUE(c.IsNull());
    } else {
      ASSERT_FALSE(c.IsNull());
      EXPECT_EQ(c.Size(), 3);
    }
  });
}

TEST(CommSplit, TiedKeysOrderByParentRank) {
  RunRanks(4, [](Comm& world) {
    Comm c = mpisim::CommSplit(world, 0, /*key=*/0);
    ASSERT_FALSE(c.IsNull());
    EXPECT_EQ(c.Rank(), world.Rank());
  });
}

TEST(CommCreateGroup, BuildsSubgroupCommunicator) {
  RunRanks(6, [](Comm& world) {
    if (world.Rank() < 2) return;  // only members call it
    const std::array<RankRange, 1> r{RankRange{2, 5, 1}};
    Group g = mpisim::GroupRangeIncl(world, r);
    Comm sub = mpisim::CommCreateGroup(world, g, /*tag=*/17);
    ASSERT_FALSE(sub.IsNull());
    EXPECT_EQ(sub.Size(), 4);
    EXPECT_EQ(sub.Rank(), world.Rank() - 2);
    std::int64_t sum = 0;
    const std::int64_t mine = 1;
    mpisim::Allreduce(&mine, &sum, 1, Datatype::kInt64, ReduceOp::kSum, sub);
    EXPECT_EQ(sum, 4);
  });
}

TEST(CommCreateGroup, SlowProfileProducesSameResult) {
  mpisim::Runtime::Options opts;
  opts.num_ranks = 5;
  opts.profile = mpisim::VendorProfile::kSlowCreateGroup;
  testutil::RunRanks(opts, [](Comm& world, mpisim::Runtime&) {
    const std::array<RankRange, 1> r{RankRange{0, 4, 1}};
    Group g = mpisim::GroupRangeIncl(world, r);
    Comm sub = mpisim::CommCreateGroup(world, g, 3);
    ASSERT_FALSE(sub.IsNull());
    std::int64_t sum = 0;
    const std::int64_t mine = world.Rank();
    mpisim::Allreduce(&mine, &sum, 1, Datatype::kInt64, ReduceOp::kSum, sub);
    EXPECT_EQ(sum, 10);
  });
}

TEST(CommCreateGroup, NonMemberCallThrows) {
  EXPECT_THROW(
      RunRanks(4,
               [](Comm& world) {
                 const std::array<RankRange, 1> r{RankRange{1, 3, 1}};
                 Group g = mpisim::GroupRangeIncl(world, r);
                 // Rank 0 is not a member but calls anyway.
                 mpisim::CommCreateGroup(world, g, 0);
               }),
      mpisim::UsageError);
}

TEST(CommCreateGroup, OverlappingGroupsDoNotInterfere) {
  // Groups {0..2} and {2..4} overlap in rank 2, which creates both
  // sequentially (left first). Traffic on the two must stay isolated.
  RunRanks(5, [](Comm& world) {
    const int r = world.Rank();
    Comm left, right;
    if (r <= 2) {
      const std::array<RankRange, 1> range{RankRange{0, 2, 1}};
      left = mpisim::CommCreateGroup(
          world, mpisim::GroupRangeIncl(world, range), 1);
    }
    if (r >= 2) {
      const std::array<RankRange, 1> range{RankRange{2, 4, 1}};
      right = mpisim::CommCreateGroup(
          world, mpisim::GroupRangeIncl(world, range), 2);
    }
    // Same tag, different communicators: context ids must separate them.
    if (!left.IsNull()) {
      std::int64_t v = r;
      mpisim::Bcast(&v, 1, Datatype::kInt64, 0, left);
      EXPECT_EQ(v, 0);
    }
    if (!right.IsNull()) {
      std::int64_t v = r;
      mpisim::Bcast(&v, 1, Datatype::kInt64, 0, right);
      EXPECT_EQ(v, 2);
    }
  });
}

TEST(CommCreate, NonMembersGetNull) {
  RunRanks(4, [](Comm& world) {
    const std::array<RankRange, 1> r{RankRange{0, 1, 1}};
    Group g = mpisim::GroupRangeIncl(world, r);
    Comm sub = mpisim::CommCreate(world, g);  // collective on whole world
    if (world.Rank() < 2) {
      ASSERT_FALSE(sub.IsNull());
      EXPECT_EQ(sub.Size(), 2);
    } else {
      EXPECT_TRUE(sub.IsNull());
    }
  });
}

TEST(CommDup, IsolatesTrafficFromParent) {
  RunRanks(2, [](Comm& world) {
    Comm dup = mpisim::CommDup(world);
    ASSERT_FALSE(dup.IsNull());
    EXPECT_EQ(dup.Size(), world.Size());
    if (world.Rank() == 0) {
      const int a = 1, b = 2;
      mpisim::Send(&a, 1, Datatype::kInt32, 1, 0, world);
      mpisim::Send(&b, 1, Datatype::kInt32, 1, 0, dup);
    } else {
      // Receive from the dup first: the world message must not match.
      int got = 0;
      mpisim::Recv(&got, 1, Datatype::kInt32, 0, 0, dup);
      EXPECT_EQ(got, 2);
      mpisim::Recv(&got, 1, Datatype::kInt32, 0, 0, world);
      EXPECT_EQ(got, 1);
    }
  });
}

TEST(ContextIds, ReleasedOnDestructionAndRecycled) {
  RunRanks(2, [](Comm& world) {
    std::uint64_t first_base = 0;
    {
      Comm dup = mpisim::CommDup(world);
      first_base = dup.Base();
    }
    mpisim::Barrier(world);  // both ranks dropped the handle
    Comm dup2 = mpisim::CommDup(world);
    EXPECT_EQ(dup2.Base(), first_base);  // the id was recycled
  });
}

TEST(ContextIds, DistinctForLiveCommunicators) {
  RunRanks(3, [](Comm& world) {
    Comm a = mpisim::CommDup(world);
    Comm b = mpisim::CommDup(world);
    EXPECT_NE(a.Base(), b.Base());
    EXPECT_NE(a.Base(), world.Base());
  });
}

TEST(Groups, RangeInclKeepsSparseStorage) {
  RunRanks(8, [](Comm& world) {
    const std::array<RankRange, 2> r{RankRange{0, 2, 1}, RankRange{6, 7, 1}};
    Group g = mpisim::GroupRangeIncl(world, r);
    EXPECT_EQ(g.Size(), 5);
    EXPECT_EQ(g.StorageEntries(), 2u);  // two ranges, not five ranks
    EXPECT_EQ(g.WorldRank(3), 6);
    EXPECT_EQ(g.RankOfWorld(7), 4);
    EXPECT_EQ(g.RankOfWorld(4), -1);
  });
}

TEST(Groups, InclBuildsExplicitStorage) {
  RunRanks(4, [](Comm& world) {
    const std::array<int, 3> ranks{3, 1, 0};
    Group g = mpisim::GroupIncl(world, ranks);
    EXPECT_EQ(g.Size(), 3);
    EXPECT_TRUE(g.IsExplicit());
    EXPECT_EQ(g.WorldRank(0), 3);
    EXPECT_EQ(g.RankOfWorld(1), 1);
  });
}

TEST(CommSplit, NestedSplitsComposeCorrectly) {
  RunRanks(8, [](Comm& world) {
    Comm half = mpisim::CommSplit(world, world.Rank() / 4, world.Rank());
    Comm quarter = mpisim::CommSplit(half, half.Rank() / 2, half.Rank());
    ASSERT_FALSE(quarter.IsNull());
    EXPECT_EQ(quarter.Size(), 2);
    std::int64_t sum = 0;
    const std::int64_t mine = world.Rank();
    mpisim::Allreduce(&mine, &sum, 1, Datatype::kInt64, ReduceOp::kSum,
                      quarter);
    const int base = (world.Rank() / 2) * 2;
    EXPECT_EQ(sum, base + base + 1);
  });
}

}  // namespace
