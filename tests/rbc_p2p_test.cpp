// RBC point-to-point semantics, especially the membership-filtered
// wildcard operations of Section V-C.
#include <gtest/gtest.h>

#include <vector>

#include "testutil.hpp"

namespace {

using rbc::Datatype;
using testutil::RunRanks;
using testutil::RunRbc;

TEST(RbcP2P, SendRecvInsideRangeUsesRangeRanks) {
  RunRanks(6, [](mpisim::Comm& world) {
    rbc::Comm rw, mid;
    rbc::Create_RBC_Comm(world, &rw);
    rbc::Split_RBC_Comm(rw, 2, 4, &mid);
    if (world.Rank() == 2) {
      const int v = 77;
      rbc::Send(&v, 1, Datatype::kInt32, 2, 5, mid);  // RBC rank 2 = MPI 4
    } else if (world.Rank() == 4) {
      int got = 0;
      rbc::Status st;
      rbc::Recv(&got, 1, Datatype::kInt32, 0, 5, mid, &st);
      EXPECT_EQ(got, 77);
      EXPECT_EQ(st.source, 0);  // RBC rank of the sender
    }
  });
}

TEST(RbcP2P, WildcardRecvTranslatesSource) {
  RunRbc(4, [](rbc::Comm& rw) {
    if (rw.Rank() == 3) {
      double got = 0;
      rbc::Status st;
      rbc::Recv(&got, 1, Datatype::kFloat64, rbc::kAnySource, 2, rw, &st);
      EXPECT_DOUBLE_EQ(got, 1.5);
      EXPECT_EQ(st.source, 1);
    } else if (rw.Rank() == 1) {
      const double v = 1.5;
      rbc::Send(&v, 1, Datatype::kFloat64, 3, 2, rw);
    }
  });
}

TEST(RbcP2P, IprobeFiltersForeignSources) {
  // Rank 2 is in both left {0..2} and right {2..4} ranges. A message from
  // the right range must be invisible to a wildcard probe on the left
  // range, even with identical tags.
  RunRanks(5, [](mpisim::Comm& world) {
    rbc::Comm rw, left, right;
    rbc::Create_RBC_Comm(world, &rw);
    rbc::Split_RBC_Comm(rw, 0, 2, &left);
    rbc::Split_RBC_Comm(rw, 2, 4, &right);
    constexpr int kTag = 3;
    if (world.Rank() == 4) {
      const int v = 40;
      rbc::Send(&v, 1, Datatype::kInt32, 0, kTag, right);  // to MPI rank 2
    } else if (world.Rank() == 0) {
      const int v = 10;
      rbc::Send(&v, 1, Datatype::kInt32, 2, kTag, left);  // to MPI rank 2
    } else if (world.Rank() == 2) {
      // Drain the left message via a wildcard on `left`; the right-range
      // message must never be matched by it.
      int got = 0;
      rbc::Status st;
      rbc::Recv(&got, 1, Datatype::kInt32, rbc::kAnySource, kTag, left, &st);
      EXPECT_EQ(got, 10);
      EXPECT_EQ(st.source, 0);
      rbc::Recv(&got, 1, Datatype::kInt32, rbc::kAnySource, kTag, right, &st);
      EXPECT_EQ(got, 40);
      EXPECT_EQ(st.source, 2);  // rank 4 is RBC rank 2 of the right range
    }
  });
}

TEST(RbcP2P, IprobeReportsFalseForForeignHeadOfQueue) {
  RunRanks(4, [](mpisim::Comm& world) {
    rbc::Comm rw, left, right;
    rbc::Create_RBC_Comm(world, &rw);
    rbc::Split_RBC_Comm(rw, 0, 1, &left);   // {0,1}
    rbc::Split_RBC_Comm(rw, 1, 3, &right);  // {1,2,3}
    if (world.Rank() == 3) {
      const int v = 1;
      rbc::Send(&v, 1, Datatype::kInt32, 0, 7, right);  // to MPI rank 1
      // Handshake so the probe below definitely sees the message queued.
      const int token = 0;
      rbc::Send(&token, 1, Datatype::kInt32, 0, 8, right);
    } else if (world.Rank() == 1) {
      int token = 0;
      rbc::Recv(&token, 1, Datatype::kInt32, 2, 8, right);
      // The right-range message is at the head of the queue; probing the
      // left range with the same tag must not see it.
      int flag = 1;
      rbc::Status st;
      rbc::Iprobe(rbc::kAnySource, 7, left, &flag, &st);
      EXPECT_EQ(flag, 0);
      // But it is there for the right range.
      rbc::Iprobe(rbc::kAnySource, 7, right, &flag, &st);
      EXPECT_EQ(flag, 1);
      int got = 0;
      rbc::Recv(&got, 1, Datatype::kInt32, st.source, 7, right);
      EXPECT_EQ(got, 1);
    }
  });
}

TEST(RbcP2P, IrecvWildcardFindsMessageOnLaterTest) {
  RunRbc(3, [](rbc::Comm& rw) {
    if (rw.Rank() == 0) {
      int got = -1;
      rbc::Request req;
      rbc::Irecv(&got, 1, Datatype::kInt32, rbc::kAnySource, 9, rw, &req);
      int flag = 0;
      rbc::Test(&req, &flag, nullptr);  // typically not yet complete
      const int token = 0;
      rbc::Send(&token, 1, Datatype::kInt32, 2, 1, rw);
      rbc::Status st;
      rbc::Wait(&req, &st);
      EXPECT_EQ(got, 5);
      EXPECT_EQ(st.source, 2);
    } else if (rw.Rank() == 2) {
      int token = 0;
      rbc::Recv(&token, 1, Datatype::kInt32, 0, 1, rw);
      const int v = 5;
      rbc::Send(&v, 1, Datatype::kInt32, 0, 9, rw);
    }
  });
}

TEST(RbcP2P, IsendCompletesEagerly) {
  RunRbc(2, [](rbc::Comm& rw) {
    if (rw.Rank() == 0) {
      const double v = 3.25;
      rbc::Request req;
      rbc::Isend(&v, 1, Datatype::kFloat64, 1, 0, rw, &req);
      int flag = 0;
      rbc::Test(&req, &flag, nullptr);
      EXPECT_EQ(flag, 1);
    } else {
      double got = 0;
      rbc::Recv(&got, 1, Datatype::kFloat64, 0, 0, rw);
      EXPECT_DOUBLE_EQ(got, 3.25);
    }
  });
}

TEST(RbcP2P, ReservedTagsAreRejected) {
  RunRbc(2, [](rbc::Comm& rw) {
    const int v = 0;
    EXPECT_THROW(
        rbc::Send(&v, 1, Datatype::kInt32, 0, rbc::kReservedTagBase, rw),
        mpisim::UsageError);
    EXPECT_THROW(rbc::Send(&v, 1, Datatype::kInt32, 0, -1, rw),
                 mpisim::UsageError);
  });
}

TEST(RbcP2P, NonMemberOperationsThrow) {
  RunRanks(4, [](mpisim::Comm& world) {
    rbc::Comm rw, right;
    rbc::Create_RBC_Comm(world, &rw);
    rbc::Split_RBC_Comm(rw, 2, 3, &right);
    if (world.Rank() == 0) {
      const int v = 0;
      EXPECT_THROW(rbc::Send(&v, 1, Datatype::kInt32, 0, 0, right),
                   mpisim::UsageError);
    }
  });
}

TEST(RbcP2P, WaitallDrainsManyRequests) {
  RunRbc(4, [](rbc::Comm& rw) {
    const int peer = rw.Rank() ^ 1;
    std::vector<int> out(8, rw.Rank());
    std::vector<int> in(8, -1);
    std::vector<rbc::Request> reqs;
    for (int i = 0; i < 8; ++i) {
      rbc::Request s, r;
      rbc::Isend(&out[static_cast<std::size_t>(i)], 1, Datatype::kInt32,
                 peer, i, rw, &s);
      rbc::Irecv(&in[static_cast<std::size_t>(i)], 1, Datatype::kInt32, peer,
                 i, rw, &r);
      reqs.push_back(s);
      reqs.push_back(r);
    }
    rbc::Waitall(reqs);
    for (int v : in) EXPECT_EQ(v, peer);
  });
}

TEST(RbcP2P, ProbeWildcardSpinsUntilMessage) {
  RunRbc(2, [](rbc::Comm& rw) {
    if (rw.Rank() == 0) {
      rbc::Status st;
      rbc::Probe(rbc::kAnySource, 6, rw, &st);
      EXPECT_EQ(st.source, 1);
      EXPECT_EQ(st.Count(Datatype::kInt32), 3);
      int got[3];
      rbc::Recv(got, 3, Datatype::kInt32, st.source, 6, rw);
      EXPECT_EQ(got[2], 2);
    } else {
      const int v[3] = {0, 1, 2};
      rbc::Send(v, 3, Datatype::kInt32, 0, 6, rw);
    }
  });
}

}  // namespace
