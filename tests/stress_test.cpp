// Stress and failure-injection tests: randomized point-to-point traffic,
// deep communicator churn, concurrent collective storms, and sorting under
// randomized configurations -- the property sweeps backing the "no
// interference, no leaks, always sorted" claims.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "sort/checks.hpp"
#include "sort/jquick.hpp"
#include "sort/workload.hpp"
#include "testutil.hpp"

namespace {

using mpisim::Comm;
using mpisim::Datatype;
using testutil::RunRanks;

TEST(Stress, RandomizedAllToAllTrafficIsLossless) {
  // Every rank sends a random number of random-sized messages to random
  // peers, then all are drained by count; checksums must match.
  constexpr int kP = 8;
  constexpr int kRounds = 30;
  mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = kP});
  rt.Run([](Comm& world) {
    std::mt19937_64 rng(1234 + world.Rank());
    std::uniform_int_distribution<int> peer_d(0, kP - 1);
    std::uniform_int_distribution<int> len_d(0, 64);

    // Decide the traffic matrix deterministically on every rank: sender r
    // sends round i to peer P(r, i) a message of L(r, i) int64s.
    auto peer_of = [](int sender, int round) {
      std::mt19937_64 g(sender * 1000003 + round);
      return static_cast<int>(g() % kP);
    };
    auto len_of = [](int sender, int round) {
      std::mt19937_64 g(sender * 7777777 + round + 13);
      return static_cast<int>(g() % 65);
    };

    std::int64_t sent_checksum = 0;
    for (int i = 0; i < kRounds; ++i) {
      const int peer = peer_of(world.Rank(), i);
      const int len = len_of(world.Rank(), i);
      std::vector<std::int64_t> msg(static_cast<std::size_t>(len));
      for (auto& v : msg) {
        v = static_cast<std::int64_t>(rng() % 1000);
        sent_checksum += v;
      }
      mpisim::Send(msg.data(), len, Datatype::kInt64, peer, /*tag=*/i,
                   world);
    }
    // Expected incoming: every (sender, round) pair that targets me.
    std::int64_t recv_checksum = 0;
    for (int sender = 0; sender < kP; ++sender) {
      for (int i = 0; i < kRounds; ++i) {
        if (peer_of(sender, i) != world.Rank()) continue;
        const int len = len_of(sender, i);
        std::vector<std::int64_t> msg(static_cast<std::size_t>(len));
        mpisim::Recv(msg.data(), len, Datatype::kInt64, sender, i, world);
        for (auto v : msg) recv_checksum += v;
      }
    }
    // Global conservation: sum of all sent == sum of all received.
    std::int64_t total_sent = 0, total_recv = 0;
    mpisim::Allreduce(&sent_checksum, &total_sent, 1, Datatype::kInt64,
                      mpisim::ReduceOp::kSum, world);
    mpisim::Allreduce(&recv_checksum, &total_recv, 1, Datatype::kInt64,
                      mpisim::ReduceOp::kSum, world);
    EXPECT_EQ(total_sent, total_recv);
    // And no message may linger.
    mpisim::Barrier(world);
    EXPECT_EQ(mpisim::Ctx().runtime->MailboxOf(world.Rank()).QueuedMessages(),
              0u);
  });
}

TEST(Stress, CommunicatorChurnDoesNotExhaustContextIds) {
  // Create and destroy far more communicators than kMaxMaskContexts; the
  // release-on-destruction recycling must keep the id space bounded.
  RunRanks(4, [](Comm& world) {
    for (int i = 0; i < 3 * mpisim::kMaxMaskContexts; ++i) {
      Comm dup = mpisim::CommDup(world);
      ASSERT_FALSE(dup.IsNull());
      ASSERT_LT(dup.Base(), static_cast<std::uint64_t>(
                                mpisim::kMaxMaskContexts));
      // dup goes out of scope -> id released on this rank.
    }
  });
}

TEST(Stress, DeepRbcSplitRecursionStaysFree) {
  mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = 32});
  rt.Run([&rt](Comm& world) {
    rbc::Comm cur;
    rbc::Create_RBC_Comm(world, &cur);
    mpisim::Barrier(world);
    rt.ResetClocksAndStats();
    // Halve until singleton, then rebuild from the world again, 50 times.
    for (int round = 0; round < 50; ++round) {
      rbc::Comm walk = cur;
      while (walk.Size() > 1) {
        const int half = walk.Size() / 2;
        rbc::Comm next;
        if (walk.Rank() < half) {
          rbc::Split_RBC_Comm(walk, 0, half - 1, &next);
        } else {
          rbc::Split_RBC_Comm(walk, half, walk.Size() - 1, &next);
        }
        walk = next;
      }
    }
    EXPECT_EQ(mpisim::Ctx().stats.messages_sent, 0u);
    EXPECT_DOUBLE_EQ(mpisim::Ctx().clock.Now(), 0.0);
  });
}

TEST(Stress, CollectiveStormOnNestedRbcRanges) {
  // Interleave nonblocking collectives on three nested ranges that all
  // share rank 0; user tags keep them apart (the >1-overlap rule).
  RunRanks(8, [](Comm& world) {
    rbc::Comm rw, r04, r02;
    rbc::Create_RBC_Comm(world, &rw);
    rbc::Split_RBC_Comm(rw, 0, 4, &r04);
    rbc::Split_RBC_Comm(rw, 0, 2, &r02);
    std::vector<rbc::Request> reqs;
    std::int64_t a = world.Rank() == 0 ? 11 : -1;
    std::int64_t b = world.Rank() == 0 ? 22 : -1;
    std::int64_t c = world.Rank() == 0 ? 33 : -1;
    auto start = [&](std::int64_t* buf, rbc::Comm& comm, int tag) {
      if (comm.Rank() < 0) return;
      rbc::Request req;
      rbc::Ibcast(buf, 1, rbc::Datatype::kInt64, 0, comm, &req,
                  rbc::RBC_IBCAST_TAG + 64 + tag);
      reqs.push_back(req);
    };
    for (int wave = 0; wave < 5; ++wave) {
      start(&a, rw, 3 * wave);
      start(&b, r04, 3 * wave + 1);
      start(&c, r02, 3 * wave + 2);
    }
    rbc::Waitall(reqs);
    EXPECT_EQ(a, 11);
    if (r04.Rank() >= 0) {
      EXPECT_EQ(b, 22);
    }
    if (r02.Rank() >= 0) {
      EXPECT_EQ(c, 33);
    }
  });
}

TEST(Stress, JQuickRandomizedConfigurations) {
  std::mt19937_64 rng(20260612);
  for (int trial = 0; trial < 12; ++trial) {
    const int p = 2 + static_cast<int>(rng() % 11);        // 2..12
    const int quota = 1 + static_cast<int>(rng() % 50);    // 1..50
    const auto kind = static_cast<jsort::InputKind>(rng() % 8);
    jsort::JQuickConfig cfg;
    cfg.seed = rng();
    cfg.pivot = (rng() % 2) == 0 ? jsort::PivotPolicy::kMedianOfSamples
                                 : jsort::PivotPolicy::kRandomElement;
    cfg.schedule = (rng() % 2) == 0 ? jsort::SplitSchedule::kAlternating
                                    : jsort::SplitSchedule::kCascaded;
    RunRanks(p, [&](Comm& world) {
      rbc::Comm rw;
      rbc::Create_RBC_Comm(world, &rw);
      auto input = jsort::GenerateInput(kind, world.Rank(), p, quota,
                                        cfg.seed + 1);
      const auto before = jsort::GlobalFingerprint(input, rw);
      auto tr = jsort::MakeRbcTransport(rw);
      const auto out = jsort::JQuickSort(tr, std::move(input), cfg);
      EXPECT_EQ(static_cast<int>(out.size()), quota);
      EXPECT_EQ(before, jsort::GlobalFingerprint(out, rw));
      EXPECT_TRUE(jsort::IsGloballySorted(out, rw));
    });
  }
}

TEST(Stress, NoLeftoverMessagesAfterJQuick) {
  RunRanks(10, [](Comm& world) {
    rbc::Comm rw;
    rbc::Create_RBC_Comm(world, &rw);
    auto input = jsort::GenerateInput(jsort::InputKind::kUniform,
                                      world.Rank(), 10, 37, 2);
    auto tr = jsort::MakeRbcTransport(rw);
    jsort::JQuickSort(tr, std::move(input));
    mpisim::Barrier(world);
    EXPECT_EQ(mpisim::Ctx().runtime->MailboxOf(world.Rank()).QueuedMessages(),
              0u);
  });
}

TEST(Stress, MixedBackendsSortTheSameData) {
  // RBC, MPI and ICOMM transports must all produce the identical result
  // for the same seed (the transport only changes *how* groups are made).
  constexpr int kP = 6;
  testutil::PerRank<std::vector<double>> rbc_out(kP), mpi_out(kP),
      icomm_out(kP);
  auto run = [&](testutil::PerRank<std::vector<double>>& sink, int which) {
    RunRanks(kP, [&](Comm& world) {
      rbc::Comm rw;
      rbc::Create_RBC_Comm(world, &rw);
      auto input = jsort::GenerateInput(jsort::InputKind::kGaussian,
                                        world.Rank(), kP, 25, 8);
      std::shared_ptr<jsort::Transport> tr;
      if (which == 0) {
        tr = jsort::MakeRbcTransport(rw);
      } else if (which == 1) {
        tr = jsort::MakeMpiTransport(world);
      } else {
        tr = jsort::MakeIcommTransport(world);
      }
      jsort::JQuickConfig cfg;
      cfg.seed = 5;
      sink.Set(world.Rank(), jsort::JQuickSort(tr, std::move(input), cfg));
    });
  };
  run(rbc_out, 0);
  run(mpi_out, 1);
  run(icomm_out, 2);
  for (int r = 0; r < kP; ++r) {
    EXPECT_EQ(rbc_out[r], mpi_out[r]) << r;
    EXPECT_EQ(rbc_out[r], icomm_out[r]) << r;
  }
}

}  // namespace
