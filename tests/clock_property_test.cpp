// Exact model-time properties of the virtual alpha-beta clock: the
// deterministic clock lets us assert closed-form costs of the
// communication patterns, which is what makes the figure benchmarks
// trustworthy.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "testutil.hpp"

namespace {

using mpisim::Comm;
using mpisim::Datatype;
using mpisim::ReduceOp;

/// Runs `op` once on p ranks and returns max-over-ranks vtime delta.
double ModelTimeOf(int p, mpisim::Runtime::Options opts,
                   const std::function<void(Comm&)>& op) {
  opts.num_ranks = p;
  mpisim::Runtime rt(opts);
  double result = 0.0;
  rt.Run([&](Comm& world) {
    mpisim::Barrier(world);
    const double v0 = mpisim::Ctx().clock.Now();
    op(world);
    const double delta = mpisim::Ctx().clock.Now() - v0;
    double max_delta = 0.0;
    mpisim::Allreduce(&delta, &max_delta, 1, Datatype::kFloat64,
                      ReduceOp::kMax, world);
    if (world.Rank() == 0) result = max_delta;
  });
  return result;
}

TEST(ClockProperty, PointToPointCostsAlphaPlusBetaL) {
  mpisim::Runtime::Options opts;
  opts.cost.alpha = 7.0;
  opts.cost.beta = 0.5;
  const double t = ModelTimeOf(2, opts, [](Comm& world) {
    std::vector<double> v(16, 1.0);
    if (world.Rank() == 0) {
      mpisim::Send(v.data(), 16, Datatype::kFloat64, 1, 0, world);
    } else {
      mpisim::Recv(v.data(), 16, Datatype::kFloat64, 0, 0, world);
    }
  });
  EXPECT_DOUBLE_EQ(t, 7.0 + 16 * 0.5);
}

TEST(ClockProperty, BinomialBcastCostsLogPRounds) {
  // For p = 2^k and single-element payloads, the critical path of the
  // binomial broadcast is exactly k serialized messages... plus the
  // root's own injections, which serialize on the single port. The root
  // sends k messages back-to-back; the last leaf receives after at most
  // k message times along its path. Critical path = k * (alpha + beta).
  mpisim::Runtime::Options opts;
  opts.cost.alpha = 10.0;
  opts.cost.beta = 0.0;  // isolate the alpha term
  for (int k = 1; k <= 5; ++k) {
    const int p = 1 << k;
    const double t = ModelTimeOf(p, opts, [](Comm& world) {
      double v = 1.0;
      mpisim::Bcast(&v, 1, Datatype::kFloat64, 0, world);
    });
    // Single-ported sends serialize at the root: the tree's critical path
    // is exactly k rounds of alpha each.
    EXPECT_DOUBLE_EQ(t, 10.0 * k) << "p=" << p;
  }
}

TEST(ClockProperty, ScanCostsCeilLogPRounds) {
  mpisim::Runtime::Options opts;
  opts.cost.alpha = 10.0;
  opts.cost.beta = 0.0;
  for (int p : {2, 4, 8, 16}) {
    const double t = ModelTimeOf(p, opts, [](Comm& world) {
      std::int64_t v = 1, out = 0;
      mpisim::Scan(&v, &out, 1, Datatype::kInt64, ReduceOp::kSum, world);
    });
    const int rounds = static_cast<int>(std::ceil(std::log2(p)));
    // Interior ranks pay a send plus a receive per round; the last rank's
    // final round is receive-only, so the critical path is
    // alpha * (2 * rounds - 1).
    EXPECT_DOUBLE_EQ(t, 10.0 * (2 * rounds - 1)) << "p=" << p;
  }
}

TEST(ClockProperty, BandwidthTermScalesLinearly) {
  mpisim::Runtime::Options opts;
  opts.cost.alpha = 0.0;
  opts.cost.beta = 1.0;
  const double t1 = ModelTimeOf(2, opts, [](Comm& world) {
    std::vector<double> v(100, 0.0);
    if (world.Rank() == 0) {
      mpisim::Send(v.data(), 100, Datatype::kFloat64, 1, 0, world);
    } else {
      mpisim::Recv(v.data(), 100, Datatype::kFloat64, 0, 0, world);
    }
  });
  const double t2 = ModelTimeOf(2, opts, [](Comm& world) {
    std::vector<double> v(200, 0.0);
    if (world.Rank() == 0) {
      mpisim::Send(v.data(), 200, Datatype::kFloat64, 1, 0, world);
    } else {
      mpisim::Recv(v.data(), 200, Datatype::kFloat64, 0, 0, world);
    }
  });
  EXPECT_DOUBLE_EQ(t2, 2.0 * t1);
}

TEST(ClockProperty, RbcSplitAddsExactlyZeroModelTime) {
  const double t = ModelTimeOf(8, {}, [](Comm& world) {
    rbc::Comm rw, sub;
    rbc::Create_RBC_Comm(world, &rw);
    for (int i = 0; i < 100; ++i) {
      rbc::Split_RBC_Comm(rw, 0, world.Size() - 1, &sub);
    }
  });
  EXPECT_DOUBLE_EQ(t, 0.0);
}

TEST(ClockProperty, NativeCreateGroupChargesLinearTerm) {
  // With alpha = beta = 0 the remaining cost of create_group is exactly
  // the O(p) group materialization: 2 * p * group_entry per rank (member
  // translation + explicit array construction).
  mpisim::Runtime::Options opts;
  opts.cost.alpha = 0.0;
  opts.cost.beta = 0.0;
  opts.cost.group_entry = 1.0;
  for (int p : {4, 8, 16}) {
    const double t = ModelTimeOf(p, opts, [](Comm& world) {
      const std::array<mpisim::RankRange, 1> rr{
          mpisim::RankRange{0, world.Size() - 1, 1}};
      mpisim::Comm sub = mpisim::CommCreateGroup(
          world, mpisim::GroupRangeIncl(world, rr), 1);
    });
    EXPECT_DOUBLE_EQ(t, 2.0 * p) << "p=" << p;
  }
}

TEST(ClockProperty, SlowVendorRingIsLinearInGroupSize) {
  mpisim::Runtime::Options opts;
  opts.cost.alpha = 1.0;
  opts.cost.beta = 0.0;
  opts.cost.group_entry = 0.0;
  opts.profile = mpisim::VendorProfile::kSlowCreateGroup;
  std::vector<double> times;
  for (int p : {4, 8, 16}) {
    times.push_back(ModelTimeOf(p, opts, [](Comm& world) {
      const std::array<mpisim::RankRange, 1> rr{
          mpisim::RankRange{0, world.Size() - 1, 1}};
      mpisim::Comm sub = mpisim::CommCreateGroup(
          world, mpisim::GroupRangeIncl(world, rr), 1);
    }));
  }
  // 2(p-1) serialized hops of alpha each: 6, 14, 30.
  EXPECT_DOUBLE_EQ(times[0], 6.0);
  EXPECT_DOUBLE_EQ(times[1], 14.0);
  EXPECT_DOUBLE_EQ(times[2], 30.0);
}

}  // namespace
