// Figure 5: time to split a communicator of p processes into two halves
// (processes 0..p/2-1 and p/2..p-1), sweeping p.
//
// Backends:
//   rbc                rbc::Split_RBC_Comm            local, O(1)
//   create_group_fast  MPI_Comm_create_group (~Intel) mask all-reduce +
//                                                     explicit O(p) group
//   create_group_slow  MPI_Comm_create_group (~IBM)   serial ring agreement
//   comm_split         MPI_Comm_split                 allgather over the
//                                                     whole parent
//
// Paper shape: RBC is negligible (vtime stays 0: the split sends no
// messages); Intel create_group grows linearly in p; split is about 2x
// create_group; IBM create_group is off by orders of magnitude. The
// ">400x" creation speedup quoted in the abstract falls out of the RBC vs
// create_group rows at large p. count = p/2, the size of the created
// half.
#include <array>
#include <vector>

#include "harness.hpp"
#include "rbc/rbc.hpp"

namespace {

benchutil::Measurement MeasureRbcSplit(mpisim::Comm& world, int reps) {
  rbc::Comm rw;
  rbc::Create_RBC_Comm(world, &rw);
  const int p = world.Size();
  const bool low = world.Rank() < p / 2;
  return benchutil::MeasureOnRanks(world, reps, [&] {
    rbc::Comm half;
    rbc::Split_RBC_Comm(rw, low ? 0 : p / 2, low ? p / 2 - 1 : p - 1, &half);
  });
}

benchutil::Measurement MeasureCreateGroup(mpisim::Comm& world, int reps) {
  const int p = world.Size();
  const bool low = world.Rank() < p / 2;
  const mpisim::RankRange range =
      low ? mpisim::RankRange{0, p / 2 - 1, 1}
          : mpisim::RankRange{p / 2, p - 1, 1};
  return benchutil::MeasureOnRanks(world, reps, [&] {
    const std::array<mpisim::RankRange, 1> rr{range};
    mpisim::Comm half = mpisim::CommCreateGroup(
        world, mpisim::GroupRangeIncl(world, rr), /*tag=*/1);
  });
}

benchutil::Measurement MeasureSplit(mpisim::Comm& world, int reps) {
  const int p = world.Size();
  const int color = world.Rank() < p / 2 ? 0 : 1;
  return benchutil::MeasureOnRanks(world, reps, [&] {
    mpisim::Comm half = mpisim::CommSplit(world, color, world.Rank());
  });
}

void RunSplit(benchutil::BenchContext& ctx) {
  const int reps = ctx.reps(5);
  const int max_p = ctx.smoke() ? 16 : 256;
  for (int p = 8; p <= max_p; p *= 2) {
    benchutil::Measurement rbc_m, cg_fast, cg_slow, split;
    {
      mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = p});
      rt.Run([&](mpisim::Comm& world) {
        rbc_m = MeasureRbcSplit(world, reps);
        cg_fast = MeasureCreateGroup(world, reps);
        split = MeasureSplit(world, reps);
      });
    }
    {
      mpisim::Runtime rt(mpisim::Runtime::Options{
          .num_ranks = p, .profile = mpisim::VendorProfile::kSlowCreateGroup});
      rt.Run(
          [&](mpisim::Comm& world) { cg_slow = MeasureCreateGroup(world, reps); });
    }
    ctx.Row("fig5_split", "rbc", p, p / 2, rbc_m);
    ctx.Row("fig5_split", "create_group_fast", p, p / 2, cg_fast);
    ctx.Row("fig5_split", "create_group_slow", p, p / 2, cg_slow);
    ctx.Row("fig5_split", "comm_split", p, p / 2, split);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::BenchSpec spec;
  spec.binary = "bench_fig5_comm_split";
  spec.figure = "Figure 5";
  spec.description =
      "splitting p ranks into two halves: RBC vs create_group (fast/slow "
      "vendor profiles) vs comm_split";
  spec.default_p = 256;
  spec.default_reps = 5;
  spec.sections = {{"split", "two-halves split sweep over p", RunSplit}};
  return benchutil::BenchMain(argc, argv, spec);
}
