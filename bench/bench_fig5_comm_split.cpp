// Figure 5: time to split a communicator of p processes into two halves
// (processes 0..p/2-1 and p/2..p-1), sweeping p.
//
// Methods:
//   RBC            rbc::Split_RBC_Comm           local, O(1)
//   MPI_Comm_create_group (fast profile ~ Intel) mask all-reduce +
//                                                explicit O(p) group array
//   MPI_Comm_create_group (slow profile ~ IBM)   serial ring agreement
//   MPI_Comm_split                               allgather over the whole
//                                                parent + O(p) grouping
//
// Paper shape: RBC is negligible; Intel create_group grows linearly in p;
// split is about 2x create_group; IBM create_group is off by orders of
// magnitude. The ">400x" creation speedup quoted in the abstract falls
// out of the RBC vs create_group columns at large p.
#include <cstdio>
#include <vector>

#include "benchutil.hpp"
#include "rbc/rbc.hpp"

namespace {

constexpr int kReps = 5;

benchutil::Measurement MeasureRbcSplit(mpisim::Comm& world) {
  rbc::Comm rw;
  rbc::Create_RBC_Comm(world, &rw);
  const int p = world.Size();
  const bool low = world.Rank() < p / 2;
  return benchutil::MeasureOnRanks(world, kReps, [&] {
    rbc::Comm half;
    rbc::Split_RBC_Comm(rw, low ? 0 : p / 2, low ? p / 2 - 1 : p - 1, &half);
  });
}

benchutil::Measurement MeasureCreateGroup(mpisim::Comm& world) {
  const int p = world.Size();
  const bool low = world.Rank() < p / 2;
  const mpisim::RankRange range =
      low ? mpisim::RankRange{0, p / 2 - 1, 1}
          : mpisim::RankRange{p / 2, p - 1, 1};
  return benchutil::MeasureOnRanks(world, kReps, [&] {
    const std::array<mpisim::RankRange, 1> rr{range};
    mpisim::Comm half = mpisim::CommCreateGroup(
        world, mpisim::GroupRangeIncl(world, rr), /*tag=*/1);
  });
}

benchutil::Measurement MeasureSplit(mpisim::Comm& world) {
  const int p = world.Size();
  const int color = world.Rank() < p / 2 ? 0 : 1;
  return benchutil::MeasureOnRanks(world, kReps, [&] {
    mpisim::Comm half = mpisim::CommSplit(world, color, world.Rank());
  });
}

struct Row {
  int p;
  benchutil::Measurement rbc, cg_fast, cg_slow, split;
};

}  // namespace

int main() {
  std::printf(
      "# Figure 5: splitting p ranks into two halves (vtime = model time, "
      "median of %d)\n",
      kReps);
  benchutil::PrintRowHeader({"p", "RBC.vtime", "CGfast.vtime", "CGslow.vtime",
                             "Split.vtime", "CGfast/RBCwall", "RBC.wall_ms",
                             "CGfast.wall_ms"});
  for (int p = 8; p <= 256; p *= 2) {
    Row row{};
    row.p = p;
    {
      mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = p});
      rt.Run([&](mpisim::Comm& world) {
        row.rbc = MeasureRbcSplit(world);
        row.cg_fast = MeasureCreateGroup(world);
        row.split = MeasureSplit(world);
      });
    }
    {
      mpisim::Runtime rt(mpisim::Runtime::Options{
          .num_ranks = p, .profile = mpisim::VendorProfile::kSlowCreateGroup});
      rt.Run([&](mpisim::Comm& world) { row.cg_slow = MeasureCreateGroup(world); });
    }
    benchutil::PrintCell(static_cast<double>(row.p));
    benchutil::PrintCell(row.rbc.vtime);
    benchutil::PrintCell(row.cg_fast.vtime);
    benchutil::PrintCell(row.cg_slow.vtime);
    benchutil::PrintCell(row.split.vtime);
    benchutil::PrintCell(row.cg_fast.wall_ms /
                         std::max(row.rbc.wall_ms, 1e-6));
    benchutil::PrintCell(row.rbc.wall_ms);
    benchutil::PrintCell(row.cg_fast.wall_ms);
    benchutil::EndRow();
  }
  std::printf(
      "\n# Shape check: RBC.vtime must stay 0 (local creation); CGfast and "
      "Split grow with p;\n# CGslow is orders of magnitude above CGfast "
      "(serialized ring agreement).\n");
  return 0;
}
