// Figure 7: broadcast on a sub-range of half the processes of a parent
// communicator. Native MPI must first create the sub-communicator with a
// blocking call; RBC splits locally. Two experiments: split + 1 broadcast
// and split + 50 broadcasts (amortizing the creation). The figure reports
// the running-time ratio native/RBC, sweeping the payload.
//
// Paper shape: for moderate payloads (n <= 2^10) the single-broadcast
// ratio is 40..200x and the 50-broadcast ratio 3..15x; for large payloads
// the data movement dominates and the ratios approach 1.
#include <cstdio>
#include <vector>

#include "benchutil.hpp"
#include "rbc/rbc.hpp"

namespace {

constexpr int kRanks = 128;
constexpr int kReps = 3;
constexpr int kMaxLog = 16;

double MeasureRbc(mpisim::Comm& world, int n, int bcasts,
                  std::vector<double>& buf) {
  rbc::Comm rw;
  rbc::Create_RBC_Comm(world, &rw);
  const int half = world.Size() / 2;
  const bool in_range = world.Rank() < half;
  const auto m = benchutil::MeasureOnRanks(world, kReps, [&] {
    rbc::Comm sub;
    rbc::Split_RBC_Comm(rw, 0, half - 1, &sub);
    if (in_range) {
      for (int i = 0; i < bcasts; ++i) {
        rbc::Request r;
        rbc::Ibcast(buf.data(), n, rbc::Datatype::kFloat64, 0, sub, &r);
        rbc::Wait(&r);
      }
    }
  });
  return m.vtime;
}

double MeasureMpi(mpisim::Comm& world, int n, int bcasts,
                  std::vector<double>& buf) {
  const int half = world.Size() / 2;
  const bool in_range = world.Rank() < half;
  const auto m = benchutil::MeasureOnRanks(world, kReps, [&] {
    if (in_range) {
      const std::array<mpisim::RankRange, 1> rr{
          mpisim::RankRange{0, half - 1, 1}};
      mpisim::Comm sub = mpisim::CommCreateGroup(
          world, mpisim::GroupRangeIncl(world, rr), /*tag=*/2);
      for (int i = 0; i < bcasts; ++i) {
        mpisim::Request r =
            mpisim::Ibcast(buf.data(), n, mpisim::Datatype::kFloat64, 0, sub);
        mpisim::Wait(r);
      }
    }
  });
  return m.vtime;
}

}  // namespace

int main() {
  std::printf(
      "# Figure 7: ratio of (split + k broadcasts) native MPI / RBC on a "
      "sub-range of %d of %d ranks\n",
      kRanks / 2, kRanks);
  benchutil::PrintRowHeader(
      {"elements", "ratio.1x", "ratio.50x", "RBC.1x.vt", "MPI.1x.vt"});
  mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = kRanks});
  rt.Run([](mpisim::Comm& world) {
    for (int lg = 0; lg <= kMaxLog; lg += 2) {
      const int n = 1 << lg;
      std::vector<double> buf(static_cast<std::size_t>(n), 1.0);
      const double rbc1 = MeasureRbc(world, n, 1, buf);
      const double mpi1 = MeasureMpi(world, n, 1, buf);
      const double rbc50 = MeasureRbc(world, n, 50, buf);
      const double mpi50 = MeasureMpi(world, n, 50, buf);
      if (world.Rank() == 0) {
        benchutil::PrintCell(static_cast<double>(n));
        benchutil::PrintCell(mpi1 / std::max(rbc1, 1e-9));
        benchutil::PrintCell(mpi50 / std::max(rbc50, 1e-9));
        benchutil::PrintCell(rbc1);
        benchutil::PrintCell(mpi1);
        benchutil::EndRow();
      }
    }
  });
  std::printf(
      "\n# Shape check: both ratio columns start well above 1 (creation "
      "dominates), the 50x\n# column sits far below the 1x column, and "
      "both decay toward 1 as the payload grows.\n");
  return 0;
}
