// Figure 7: broadcast on a sub-range of half the processes of a parent
// communicator. Native MPI must first create the sub-communicator with a
// blocking call; RBC splits locally. Two experiments (the `bcasts` row
// field): split + 1 broadcast and split + 50 broadcasts (amortizing the
// creation). Every row carries vtime_ratio = MPI.vtime / RBC.vtime of its
// (payload, bcasts) configuration -- the figure's reported metric.
//
// Paper shape: for moderate payloads (n <= 2^10) the single-broadcast
// ratio is 40..200x and the 50-broadcast ratio 3..15x; for large payloads
// the data movement dominates and the ratios approach 1.
#include <algorithm>
#include <array>
#include <vector>

#include "harness.hpp"
#include "rbc/rbc.hpp"

namespace {

benchutil::Measurement MeasureRbc(mpisim::Comm& world, int n, int bcasts,
                                  int reps, std::vector<double>& buf) {
  rbc::Comm rw;
  rbc::Create_RBC_Comm(world, &rw);
  const int half = world.Size() / 2;
  const bool in_range = world.Rank() < half;
  return benchutil::MeasureOnRanks(world, reps, [&] {
    rbc::Comm sub;
    rbc::Split_RBC_Comm(rw, 0, half - 1, &sub);
    if (in_range) {
      for (int i = 0; i < bcasts; ++i) {
        rbc::Request r;
        rbc::Ibcast(buf.data(), n, rbc::Datatype::kFloat64, 0, sub, &r);
        rbc::Wait(&r);
      }
    }
  });
}

benchutil::Measurement MeasureMpi(mpisim::Comm& world, int n, int bcasts,
                                  int reps, std::vector<double>& buf) {
  const int half = world.Size() / 2;
  const bool in_range = world.Rank() < half;
  return benchutil::MeasureOnRanks(world, reps, [&] {
    if (in_range) {
      const std::array<mpisim::RankRange, 1> rr{
          mpisim::RankRange{0, half - 1, 1}};
      mpisim::Comm sub = mpisim::CommCreateGroup(
          world, mpisim::GroupRangeIncl(world, rr), /*tag=*/2);
      for (int i = 0; i < bcasts; ++i) {
        mpisim::Request r =
            mpisim::Ibcast(buf.data(), n, mpisim::Datatype::kFloat64, 0, sub);
        mpisim::Wait(r);
      }
    }
  });
}

void RunRangeBcast(benchutil::BenchContext& ctx) {
  const int ranks = ctx.smoke() ? 16 : 128;
  const int reps = ctx.reps(3);
  const int max_log = ctx.smoke() ? 4 : 16;
  mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = ranks});
  rt.Run([&](mpisim::Comm& world) {
    for (int lg = 0; lg <= max_log; lg += 2) {
      const int n = 1 << lg;
      std::vector<double> buf(static_cast<std::size_t>(n), 1.0);
      for (int bcasts : {1, 50}) {
        const auto rbcm = MeasureRbc(world, n, bcasts, reps, buf);
        const auto mpim = MeasureMpi(world, n, bcasts, reps, buf);
        if (world.Rank() == 0) {
          const double ratio =
              mpim.vtime / std::max(rbcm.vtime, 1e-9);
          ctx.Row("fig7_range_bcast", "rbc", ranks, n, rbcm,
                  {{"bcasts", bcasts}, {"vtime_ratio", ratio}});
          ctx.Row("fig7_range_bcast", "mpi", ranks, n, mpim,
                  {{"bcasts", bcasts}, {"vtime_ratio", ratio}});
        }
      }
    }
  });
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::BenchSpec spec;
  spec.binary = "bench_fig7_range_bcast";
  spec.figure = "Figure 7";
  spec.description =
      "split + k broadcasts on a half-range: native MPI / RBC running-time "
      "ratio over the payload sweep";
  spec.default_p = 128;
  spec.default_reps = 3;
  spec.sections = {
      {"range_bcast", "payload sweep at 1 and 50 amortizing broadcasts",
       RunRangeBcast}};
  return benchutil::BenchMain(argc, argv, spec);
}
