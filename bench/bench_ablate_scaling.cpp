// Ablation: how the JQuick RBC-vs-native advantage scales with the
// process count. The paper measures p = 2^15 where communicator creation
// dominates for moderate n/p; at reproduction scale the same mechanism
// shows as a ratio that grows monotonically with p (extrapolating to the
// paper's factors at 2^15).
#include <cstdio>
#include <vector>

#include "benchutil.hpp"
#include "sort/jquick.hpp"
#include "sort/workload.hpp"

namespace {

constexpr int kReps = 3;
constexpr int kQuota = 16;  // moderate n/p, creation-dominated

double Measure(mpisim::Comm& world, bool use_rbc) {
  const auto m = benchutil::MeasureOnRanks(world, kReps, [&] {
    auto input = jsort::GenerateInput(jsort::InputKind::kUniform,
                                      world.Rank(), world.Size(), kQuota,
                                      31);
    std::shared_ptr<jsort::Transport> tr;
    if (use_rbc) {
      rbc::Comm rw;
      rbc::Create_RBC_Comm(world, &rw);
      tr = jsort::MakeRbcTransport(rw);
    } else {
      tr = jsort::MakeMpiTransport(world);
    }
    jsort::JQuickSort(tr, std::move(input));
  });
  return m.vtime;
}

}  // namespace

int main() {
  std::printf(
      "# Ablation: JQuick RBC advantage vs process count (n/p=%d, median "
      "of %d)\n",
      kQuota, kReps);
  benchutil::PrintRowHeader(
      {"p", "RBC.vt", "MPIfast.vt", "MPIslow.vt", "fast/RBC", "slow/RBC"});
  for (int p = 8; p <= 256; p *= 2) {
    double rbc_vt = 0.0, fast_vt = 0.0, slow_vt = 0.0;
    {
      mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = p});
      rt.Run([&](mpisim::Comm& world) {
        const double a = Measure(world, true);
        const double b = Measure(world, false);
        if (world.Rank() == 0) {
          rbc_vt = a;
          fast_vt = b;
        }
      });
    }
    {
      mpisim::Runtime rt(mpisim::Runtime::Options{
          .num_ranks = p,
          .profile = mpisim::VendorProfile::kSlowCreateGroup});
      rt.Run([&](mpisim::Comm& world) {
        const double b = Measure(world, false);
        if (world.Rank() == 0) slow_vt = b;
      });
    }
    benchutil::PrintCell(static_cast<double>(p));
    benchutil::PrintCell(rbc_vt);
    benchutil::PrintCell(fast_vt);
    benchutil::PrintCell(slow_vt);
    benchutil::PrintCell(fast_vt / std::max(rbc_vt, 1e-9));
    benchutil::PrintCell(slow_vt / std::max(rbc_vt, 1e-9));
    benchutil::EndRow();
  }
  std::printf(
      "\n# Shape check: both ratio columns grow monotonically with p -- "
      "the mechanism behind\n# the paper's 15x..1282x factors at p=2^15.\n");
  return 0;
}
