// Ablation: how the JQuick RBC-vs-native advantage scales with the
// process count. The paper measures p = 2^15 where communicator creation
// dominates for moderate n/p; at reproduction scale the same mechanism
// shows as a ratio that grows monotonically with p (extrapolating to the
// paper's 15x..1282x factors at 2^15). Backends: rbc, mpi_fast (Intel-like
// create_group), mpi_slow (IBM-like serial agreement); every row carries
// vtime_ratio_vs_rbc (1.0 on the rbc rows).
#include <algorithm>
#include <memory>
#include <vector>

#include "harness.hpp"
#include "sort/jquick.hpp"
#include "sort/workload.hpp"

namespace {

constexpr int kQuota = 16;  // moderate n/p, creation-dominated

double Measure(mpisim::Comm& world, bool use_rbc, int reps,
               double* wall_ms) {
  const auto m = benchutil::MeasureOnRanks(world, reps, [&] {
    auto input = jsort::GenerateInput(jsort::InputKind::kUniform,
                                      world.Rank(), world.Size(), kQuota, 31);
    std::shared_ptr<jsort::Transport> tr;
    if (use_rbc) {
      rbc::Comm rw;
      rbc::Create_RBC_Comm(world, &rw);
      tr = jsort::MakeRbcTransport(rw);
    } else {
      tr = jsort::MakeMpiTransport(world);
    }
    jsort::JQuickSort(tr, std::move(input));
  });
  if (wall_ms != nullptr) *wall_ms = m.wall_ms;
  return m.vtime;
}

void RunScaling(benchutil::BenchContext& ctx) {
  const int reps = ctx.reps(3);
  const int max_p = ctx.smoke() ? 16 : 256;
  for (int p = 8; p <= max_p; p *= 2) {
    double rbc_vt = 0.0, fast_vt = 0.0, slow_vt = 0.0;
    double rbc_wall = 0.0, fast_wall = 0.0, slow_wall = 0.0;
    {
      mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = p});
      rt.Run([&](mpisim::Comm& world) {
        double wa = 0.0, wb = 0.0;
        const double a = Measure(world, true, reps, &wa);
        const double b = Measure(world, false, reps, &wb);
        if (world.Rank() == 0) {
          rbc_vt = a;
          fast_vt = b;
          rbc_wall = wa;
          fast_wall = wb;
        }
      });
    }
    {
      mpisim::Runtime rt(mpisim::Runtime::Options{
          .num_ranks = p,
          .profile = mpisim::VendorProfile::kSlowCreateGroup});
      rt.Run([&](mpisim::Comm& world) {
        double wb = 0.0;
        const double b = Measure(world, false, reps, &wb);
        if (world.Rank() == 0) {
          slow_vt = b;
          slow_wall = wb;
        }
      });
    }
    const double denom = std::max(rbc_vt, 1e-9);
    ctx.Row("ablate_scaling", "rbc", p, kQuota,
            benchutil::Measurement{rbc_wall, rbc_vt},
            {{"vtime_ratio_vs_rbc", 1.0}});
    ctx.Row("ablate_scaling", "mpi_fast", p, kQuota,
            benchutil::Measurement{fast_wall, fast_vt},
            {{"vtime_ratio_vs_rbc", fast_vt / denom}});
    ctx.Row("ablate_scaling", "mpi_slow", p, kQuota,
            benchutil::Measurement{slow_wall, slow_vt},
            {{"vtime_ratio_vs_rbc", slow_vt / denom}});
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::BenchSpec spec;
  spec.binary = "bench_ablate_scaling";
  spec.figure = "Section VIII / Table at p=2^15";
  spec.description =
      "JQuick RBC-vs-native advantage as a function of the process count";
  spec.default_p = 256;
  spec.default_reps = 3;
  spec.sections = {{"scaling", "process-count sweep at creation-dominated "
                               "n/p=16",
                    RunScaling}};
  return benchutil::BenchMain(argc, argv, spec);
}
