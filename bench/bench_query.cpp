// The query subsystem (src/query) benchmark: answers without sorting.
//
// Three sections:
//  * oracle -- every query kind on every split backend against the
//    sequential oracle over the concatenated input; `exact` is 1 only on
//    value-exact agreement (selection/top-k) resp. byte-identical
//    summaries (quantile). A CI-gated correctness matrix, not a timing.
//  * mix    -- the service under a 90/10 query/sort mix: small
//    latency-sensitive queries dominate, so per-admission communicator
//    creation is a first-order cost and the backend axis separates in
//    queries/sec and query tail latency (rbc pays zero split vtime).
//  * topk   -- bytes on the wire for "the k smallest, please": the
//    selection route (threshold + sparse gather of exactly k elements)
//    and the local-heap route (p*k candidates) against the full-sort
//    baseline that moves the entire input. The reason queries exist as a
//    first-class job kind instead of "sort, then read a prefix".
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <vector>

#include "harness.hpp"
#include "mpisim/runtime.hpp"
#include "query/quantile.hpp"
#include "query/select.hpp"
#include "query/topk.hpp"
#include "sched/service.hpp"
#include "sort/sample_sort.hpp"
#include "sort/workload.hpp"

namespace {

using benchutil::Field;
using benchutil::Measurement;
using jsort::Backend;
using jsort::InputKind;
using jsort::sched::JobSpec;
using jsort::sched::JobStreamParams;
using jsort::sched::MakeJobStream;
using jsort::sched::ServiceConfig;
using jsort::sched::ServiceMetrics;
using jsort::sched::ServiceStats;
using jsort::sched::SortService;
using jsort::sched::Summarize;
using jsort::sched::SummarizeQueries;

std::vector<double> Concat(InputKind kind, int p, std::int64_t per_rank,
                           std::uint64_t seed) {
  std::vector<double> all;
  for (int r = 0; r < p; ++r) {
    const auto slice = jsort::GenerateInput(kind, r, p, per_rank, seed);
    all.insert(all.end(), slice.begin(), slice.end());
  }
  return all;
}

// --- oracle ------------------------------------------------------------------

void RunOracle(benchutil::BenchContext& ctx) {
  const int ranks = 8;
  const std::int64_t per_rank = ctx.smoke() ? 50 : 250;
  const auto seed = static_cast<std::uint64_t>(ctx.seed());
  std::vector<double> sorted = Concat(InputKind::kZipf, ranks, per_rank, seed);
  std::sort(sorted.begin(), sorted.end());
  const auto n = static_cast<std::int64_t>(sorted.size());
  const std::int64_t k_sel = n / 3;
  const std::int64_t k_top = std::min<std::int64_t>(n, 40);
  const jsort::query::QuantileSummary local_summary =
      jsort::query::BuildQuantileSummaryLocal(sorted);

  for (const Backend backend :
       {Backend::kRbc, Backend::kMpi, Backend::kIcomm}) {
    int exact_select = 0, exact_topk = 0, exact_quantile = 0;
    mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = ranks});
    const auto t0 = std::chrono::steady_clock::now();
    rt.Run([&](mpisim::Comm& world) {
      auto tr = jsort::MakeTransport(backend, world);
      const auto local = jsort::GenerateInput(InputKind::kZipf, world.Rank(),
                                              ranks, per_rank, seed);

      const jsort::query::SelectResult sel =
          jsort::query::DistributedSelect(*tr, local, k_sel);
      const auto less = static_cast<std::int64_t>(
          std::lower_bound(sorted.begin(), sorted.end(), sel.value) -
          sorted.begin());
      const auto less_equal = static_cast<std::int64_t>(
          std::upper_bound(sorted.begin(), sorted.end(), sel.value) -
          sorted.begin());
      const bool sel_ok =
          sel.value == sorted[static_cast<std::size_t>(k_sel)] &&
          sel.less == less && sel.less_equal == less_equal;

      const std::vector<double> topk =
          jsort::query::DistributedTopK(*tr, local, k_top);
      bool top_ok = true;
      if (world.Rank() == 0) {
        top_ok = std::equal(topk.begin(), topk.end(), sorted.begin(),
                            sorted.begin() + k_top) &&
                 topk.size() == static_cast<std::size_t>(k_top);
      }

      const jsort::query::QuantileSummary s =
          jsort::query::BuildQuantileSummary(*tr, local);
      const bool quant_ok = s.boundaries() == local_summary.boundaries() &&
                            s.counts() == local_summary.counts() &&
                            s.total() == local_summary.total();

      if (world.Rank() == 0) {
        exact_select = sel_ok ? 1 : 0;
        exact_topk = top_ok ? 1 : 0;
        exact_quantile = quant_ok ? 1 : 0;
      }
    });
    const auto t1 = std::chrono::steady_clock::now();
    const double wall =
        std::chrono::duration<double, std::milli>(t1 - t0).count() / 3.0;
    const double vtime = rt.MaxVirtualTime();
    const struct {
      const char* kind;
      int exact;
    } kRows[] = {{"select", exact_select},
                 {"topk", exact_topk},
                 {"quantile", exact_quantile}};
    for (const auto& row : kRows) {
      ctx.Row("query_oracle", jsort::BackendName(backend), ranks, n,
              Measurement{wall, vtime},
              {Field{"kind", row.kind}, Field{"exact", row.exact},
               Field{"seed", ctx.seed()}});
    }
  }
}

// --- mix ---------------------------------------------------------------------

/// Query-dominated service load: 90% of jobs ask for an answer (select /
/// top-k / quantile), 10% are full sorts that keep the machine busy.
JobStreamParams QueryMix(int jobs, bool smoke) {
  JobStreamParams p;
  p.jobs = jobs;
  p.mean_interarrival = smoke ? 160.0 : 40.0;
  p.min_width = 1;
  p.max_width = 8;
  p.min_n = 128;
  p.max_n = 2048;
  p.query_fraction = 0.9;
  return p;
}

void RunMix(benchutil::BenchContext& ctx) {
  const int ranks = ctx.smoke() ? 16 : 64;
  const int jobs = ctx.smoke() ? 24 : 240;
  const auto stream = MakeJobStream(ranks, QueryMix(jobs, ctx.smoke()),
                                    static_cast<std::uint64_t>(ctx.seed()));
  for (const Backend backend :
       {Backend::kRbc, Backend::kMpi, Backend::kIcomm}) {
    ServiceConfig cfg;
    cfg.backend = backend;
    cfg.verify = true;  // off-clock: answers are checked, timings untouched
    SortService service(ranks, stream, std::move(cfg));
    ServiceStats stats;
    mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = ranks});
    const auto t0 = std::chrono::steady_clock::now();
    rt.Run([&](mpisim::Comm& world) {
      ServiceStats mine = service.Run(world);
      if (world.Rank() == 0) stats = std::move(mine);
    });
    const auto t1 = std::chrono::steady_clock::now();
    const ServiceMetrics all = Summarize(stats);
    const ServiceMetrics queries = SummarizeQueries(stats);
    ctx.Row(
        "query_mix", jsort::BackendName(backend), ranks, jobs,
        Measurement{
            std::chrono::duration<double, std::milli>(t1 - t0).count(),
            stats.makespan},
        {Field{"queries_per_sec", queries.jobs_per_sec},
         Field{"p50_query_latency", queries.p50_latency},
         Field{"p99_query_latency", queries.p99_latency},
         Field{"queries", static_cast<long long>(queries.jobs)},
         Field{"split_share", all.split_share},
         Field{"jobs_done", static_cast<long long>(all.jobs - all.failed)},
         Field{"seed", ctx.seed()}});
  }
}

// --- topk --------------------------------------------------------------------

void RunTopKBytes(benchutil::BenchContext& ctx) {
  const int ranks = 32;
  const std::int64_t per_rank = ctx.smoke() ? 256 : 4096;
  const std::int64_t n_total = per_rank * ranks;
  const auto seed = static_cast<std::uint64_t>(ctx.seed());
  const std::vector<std::int64_t> ks =
      ctx.smoke() ? std::vector<std::int64_t>{8, 32}
                  : std::vector<std::int64_t>{16, 256, 2048};

  const struct {
    const char* name;
    jsort::query::TopKRoute route;  // ignored for fullsort
    bool fullsort;
  } kApproaches[] = {
      {"select", jsort::query::TopKRoute::kSelect, false},
      {"heap", jsort::query::TopKRoute::kLocalHeap, false},
      {"fullsort", jsort::query::TopKRoute::kSelect, true},
  };

  for (const std::int64_t k : ks) {
    for (const auto& approach : kApproaches) {
      mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = ranks});
      const auto t0 = std::chrono::steady_clock::now();
      rt.Run([&](mpisim::Comm& world) {
        auto tr = jsort::MakeTransport(Backend::kRbc, world);
        std::vector<double> local = jsort::GenerateInput(
            InputKind::kUniform, world.Rank(), ranks, per_rank, seed);
        if (approach.fullsort) {
          // The baseline: sort everything, then the k smallest would be a
          // prefix read. All n elements cross the wire at least once.
          jsort::SampleSortConfig scfg;
          scfg.seed = seed;
          (void)jsort::SampleSort(tr, std::move(local), scfg);
        } else {
          jsort::query::TopKConfig qcfg;
          qcfg.route = approach.route;
          qcfg.seed = seed;
          (void)jsort::query::DistributedTopK(*tr, local, k, qcfg);
        }
      });
      const auto t1 = std::chrono::steady_clock::now();
      const mpisim::Stats totals = rt.TotalStats();
      ctx.Row("query_topk_bytes", approach.name, ranks, k,
              Measurement{
                  std::chrono::duration<double, std::milli>(t1 - t0).count(),
                  rt.MaxVirtualTime()},
              {Field{"bytes_on_wire",
                     static_cast<long long>(totals.bytes_sent)},
               Field{"messages",
                     static_cast<long long>(totals.messages_sent)},
               Field{"n_total", static_cast<long long>(n_total)},
               Field{"seed", ctx.seed()}});
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::BenchSpec spec;
  spec.binary = "bench_query";
  spec.figure = "query subsystem (selection / top-k / quantile)";
  spec.description =
      "Distributed queries over the split backends: oracle-exactness "
      "matrix, service throughput under a 90/10 query/sort mix, and "
      "bytes-on-wire of top-k routes vs a full sort";
  spec.default_p = 64;
  spec.default_reps = 1;  // every section is vtime-deterministic per seed
  spec.sections = {
      {"oracle",
       "value-exact agreement of select/topk/quantile with the sequential "
       "oracle on every backend",
       RunOracle},
      {"mix",
       "service under a 90/10 query/sort mix across the rbc/mpi/icomm "
       "backends",
       RunMix},
      {"topk",
       "bytes on the wire: top-k select/heap routes vs full-sort baseline "
       "(rbc backend)",
       RunTopKBytes},
  };
  return benchutil::BenchMain(argc, argv, spec);
}
