// Node-aware hierarchical transport (src/topo) on a two-level machine:
// does routing the exchange through node leaders pay off once inter-node
// messages cost 10-50x an intra-node one?
//
// Every section installs the same topology (8-rank nodes at p=64) and a
// two-level cost model derived from the run's base model (--cost-model
// can override any parameter; the defaults set inter_alpha = 25x the
// intra startup -- mid-range of the realistic 10-50x window).
//
//  * sample_sort -- the single-level sorter's one bucket all-to-all,
//    measured over the flat delivery paths (dense pairwise rounds and
//    direct sparse sends) vs the three-phase hierarchical engine, plus
//    kAuto to show auto-routing picks the hierarchical path on a
//    two-level model. The manifest gates that the hierarchical path
//    strictly reduces inter-node messages AND bytes and wins vtime at
//    p >= 64.
//  * multilevel -- MultilevelConfig.k = 0 (topology-derived: one group
//    per node, recursion goes node-local after one exchange) vs the flat
//    default k = 4 on flat delivery.
//  * service -- the elastic sort service under the same two-level model
//    with and without node-affine range allocation: node-aligned job
//    groups keep whole jobs on one node, so the service's total
//    inter-node traffic drops.
//
// Traffic is counted at the wire (mpisim per-rank Stats deltas summed
// over ranks), so headers, counts rounds and sparse-termination control
// messages are all charged to the path that sends them.
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "harness.hpp"
#include "mpisim/runtime.hpp"
#include "sched/service.hpp"
#include "sort/jsort.hpp"
#include "sort/workload.hpp"
#include "topo/topology.hpp"

namespace {

using benchutil::Field;
using benchutil::Measurement;

/// The section's two-level model: the base (CLI-overridden) model if it
/// already is two-level, else the base flat parameters intra-node and a
/// 25x startup / 4x per-word penalty across nodes.
mpisim::CostModel TwoLevel(mpisim::CostModel base) {
  if (base.Hierarchical()) return base;
  base.intra_alpha = base.alpha;
  base.intra_beta = base.beta;
  base.inter_alpha = 25.0 * base.alpha;
  base.inter_beta = 4.0 * base.beta;
  return base;
}

/// The base model with the two-level overrides stripped: the flat
/// reference run.
mpisim::CostModel FlatModel(mpisim::CostModel base) {
  base.intra_alpha = base.intra_beta = -1.0;
  base.inter_alpha = base.inter_beta = -1.0;
  return base;
}

/// Wire traffic of one collective op, summed over all ranks (messages
/// and bytes actually injected, split at node boundaries).
struct Traffic {
  double messages = 0.0;
  double bytes = 0.0;
  double inter_messages = 0.0;
  double inter_bytes = 0.0;
};

/// Runs `op` once (collectively) and returns its global traffic. Only
/// send-side counters are summed, so the total is exact even though
/// ranks snapshot at their own return from `op`.
Traffic MeasureTraffic(mpisim::Comm& world,
                       const std::function<void()>& op) {
  mpisim::Barrier(world);
  const mpisim::Stats before = mpisim::Ctx().stats;
  op();
  const mpisim::Stats& after = mpisim::Ctx().stats;
  const double local[4] = {
      static_cast<double>(after.messages_sent - before.messages_sent),
      static_cast<double>(after.bytes_sent - before.bytes_sent),
      static_cast<double>(after.inter_messages_sent -
                          before.inter_messages_sent),
      static_cast<double>(after.inter_bytes_sent - before.inter_bytes_sent),
  };
  double global[4] = {0.0, 0.0, 0.0, 0.0};
  mpisim::Allreduce(local, global, 4, mpisim::Datatype::kFloat64,
                    mpisim::ReduceOp::kSum, world);
  return Traffic{global[0], global[1], global[2], global[3]};
}

std::vector<Field> TrafficFields(const Traffic& t,
                                 const mpisim::CostModel& cost, int nodes) {
  const double intra_a = cost.AlphaFor(false);
  return {
      Field{"messages", static_cast<long long>(t.messages)},
      Field{"inter_messages", static_cast<long long>(t.inter_messages)},
      Field{"inter_bytes", static_cast<long long>(t.inter_bytes)},
      Field{"intra_messages",
            static_cast<long long>(t.messages - t.inter_messages)},
      Field{"intra_bytes", static_cast<long long>(t.bytes - t.inter_bytes)},
      Field{"alpha_ratio",
            intra_a > 0.0 ? cost.AlphaFor(true) / intra_a : 1.0},
      Field{"nodes", static_cast<long long>(nodes)},
  };
}

struct SortPoint {
  Measurement m;
  Traffic traffic;
};

/// Measures one sorter configuration on a fresh runtime: vtime median
/// over `reps`, then one traffic-instrumented run.
SortPoint MeasureSort(int ranks, const topo::Topology& topology,
                      const mpisim::CostModel& cost, int reps,
                      const std::function<void(mpisim::Comm&)>& sort_once) {
  mpisim::Runtime::Options opts;
  opts.num_ranks = ranks;
  opts.cost = cost;
  opts.topology = topology;
  mpisim::Runtime rt(opts);
  SortPoint point;
  rt.Run([&](mpisim::Comm& world) {
    const Measurement m =
        benchutil::MeasureOnRanks(world, reps, [&] { sort_once(world); });
    const Traffic t = MeasureTraffic(world, [&] { sort_once(world); });
    if (world.Rank() == 0) {
      point.m = m;
      point.traffic = t;
    }
  });
  return point;
}

void RunSampleSort(benchutil::BenchContext& ctx) {
  const int ranks = ctx.smoke() ? 16 : 64;
  const int node_size = ctx.smoke() ? 4 : 8;
  const int quota = ctx.smoke() ? 256 : 1024;
  const int reps = ctx.reps(3);
  const topo::Topology topology = topo::Topology::Uniform(ranks, node_size);
  const mpisim::CostModel two_level = TwoLevel(ctx.cost());

  const struct {
    const char* name;
    mpisim::CostModel cost;
    jsort::exchange::Mode mode;
  } kPaths[] = {
      // The flat reference: same machine, no cost distinction (kAuto
      // stays on the flat delivery paths).
      {"flat", FlatModel(ctx.cost()), jsort::exchange::Mode::kAuto},
      {"dense", two_level, jsort::exchange::Mode::kAlltoallv},
      {"sparse", two_level, jsort::exchange::Mode::kSparse},
      {"hier", two_level, jsort::exchange::Mode::kHierarchical},
      {"auto", two_level, jsort::exchange::Mode::kAuto},
  };
  for (const auto& path : kPaths) {
    const SortPoint pt = MeasureSort(
        ranks, topology, path.cost, reps, [&](mpisim::Comm& world) {
          auto input = jsort::GenerateInput(jsort::InputKind::kUniform,
                                            world.Rank(), ranks, quota, 17);
          auto tr = jsort::MakeMpiTransport(world);
          jsort::SampleSortConfig cfg;
          cfg.exchange_mode = path.mode;
          jsort::SampleSort(tr, std::move(input), cfg);
        });
    ctx.Row("topo_sample_sort", path.name, ranks, quota, pt.m,
            TrafficFields(pt.traffic, path.cost, topology.NodeCount()));
  }
}

void RunMultilevel(benchutil::BenchContext& ctx) {
  const int ranks = ctx.smoke() ? 16 : 64;
  const int node_size = ctx.smoke() ? 4 : 8;
  const int quota = ctx.smoke() ? 256 : 1024;
  const int reps = ctx.reps(3);
  const topo::Topology topology = topo::Topology::Uniform(ranks, node_size);
  const mpisim::CostModel two_level = TwoLevel(ctx.cost());

  const struct {
    const char* name;
    int k;
    jsort::exchange::Mode mode;
  } kVariants[] = {
      // Flat defaults on the two-level machine: k = 4 groups ignore node
      // boundaries, pieces travel on the flat sparse path.
      {"flat", 4, jsort::exchange::Mode::kSparse},
      // Topology-derived branching alone: k = 0 resolves to one group
      // per node (every level past the first is node-local), pieces
      // still travel on the flat sparse path.
      {"topo_sparse", 0, jsort::exchange::Mode::kSparse},
      // Topology-derived: k = 0 and the per-level exchange auto-routes
      // through the hierarchical engine.
      {"topo", 0, jsort::exchange::Mode::kAuto},
  };
  for (const auto& variant : kVariants) {
    const SortPoint pt = MeasureSort(
        ranks, topology, two_level, reps, [&](mpisim::Comm& world) {
          auto input = jsort::GenerateInput(jsort::InputKind::kUniform,
                                            world.Rank(), ranks, quota, 17);
          auto tr = jsort::MakeMpiTransport(world);
          jsort::MultilevelConfig cfg;
          cfg.k = variant.k;
          cfg.exchange_mode = variant.mode;
          jsort::MultilevelSampleSort(tr, std::move(input), cfg);
        });
    ctx.Row("topo_multilevel", variant.name, ranks, quota, pt.m,
            TrafficFields(pt.traffic, two_level, topology.NodeCount()));
  }
}

void RunServiceMix(benchutil::BenchContext& ctx) {
  const int ranks = ctx.smoke() ? 16 : 64;
  const int node_size = ctx.smoke() ? 4 : 8;
  const int jobs = ctx.smoke() ? 24 : 160;
  const topo::Topology topology = topo::Topology::Uniform(ranks, node_size);
  const mpisim::CostModel two_level = TwoLevel(ctx.cost());

  jsort::sched::JobStreamParams params;
  params.jobs = jobs;
  params.mean_interarrival = ctx.smoke() ? 160.0 : 40.0;
  params.min_width = 1;
  params.max_width = node_size;  // every job *could* fit on one node
  params.min_n = 128;
  params.max_n = 2048;
  const auto stream = jsort::sched::MakeJobStream(
      ranks, params, static_cast<std::uint64_t>(ctx.seed()));

  const struct {
    const char* name;
    bool affine;
  } kAllocs[] = {
      {"spread", false},  // plain first fit, blind to node boundaries
      {"affine", true},   // node-affine placement (fewest cross-node cuts)
  };
  for (const auto& alloc : kAllocs) {
    jsort::sched::ServiceConfig cfg;
    if (alloc.affine) cfg.scheduler.topology = topology;
    jsort::sched::SortService service(ranks, stream, cfg);
    mpisim::Runtime::Options opts;
    opts.num_ranks = ranks;
    opts.cost = two_level;
    opts.topology = topology;
    mpisim::Runtime rt(opts);
    jsort::sched::ServiceStats stats;
    const auto t0 = std::chrono::steady_clock::now();
    rt.Run([&](mpisim::Comm& world) {
      jsort::sched::ServiceStats mine = service.Run(world);
      if (world.Rank() == 0) stats = std::move(mine);
    });
    const auto t1 = std::chrono::steady_clock::now();
    const jsort::sched::ServiceMetrics m = jsort::sched::Summarize(stats);
    const mpisim::Stats wire = rt.TotalStats();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    ctx.Row(
        "topo_service", alloc.name, ranks, jobs,
        Measurement{wall_ms, m.makespan},
        {
            Field{"jobs_per_sec", m.jobs_per_sec},
            Field{"p99_latency", m.p99_latency},
            Field{"jobs_done", static_cast<long long>(m.jobs - m.failed)},
            Field{"inter_messages",
                  static_cast<long long>(wire.inter_messages_sent)},
            Field{"inter_bytes",
                  static_cast<long long>(wire.inter_bytes_sent)},
            Field{"messages", static_cast<long long>(wire.messages_sent)},
            Field{"nodes", static_cast<long long>(topology.NodeCount())},
            Field{"seed", ctx.seed()},
        });
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::BenchSpec spec;
  spec.binary = "bench_topo";
  spec.figure = "node-aware hierarchical transport (two-level cost model)";
  spec.description =
      "topology-shaped exchange on a two-level machine: flat vs "
      "hierarchical delivery for the sorters' all-to-all, topology-derived "
      "multilevel branching, and node-affine service placement";
  spec.default_p = 64;
  spec.default_reps = 3;
  spec.sections = {
      {"sample_sort",
       "bucket exchange: dense/sparse flat paths vs the hierarchical engine",
       RunSampleSort},
      {"multilevel", "k = 4 flat vs k = 0 (one group per node)",
       RunMultilevel},
      {"service",
       "sort service with vs without node-affine range allocation",
       RunServiceMix},
  };
  return benchutil::BenchMain(argc, argv, spec);
}
