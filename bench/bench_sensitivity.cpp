// Sensitivity analyses on the virtual cost model.
//
// Section "balance": how robust are the reproduction's conclusions to the
// alpha-beta cost-model parameters? Sweeps the latency/bandwidth ratio
// alpha/beta over three orders of magnitude and reports the JQuick
// RBC-vs-native advantage at moderate n/p (`vtime_ratio` = MPI/RBC on
// both rows of a pair, plus the swept `alpha`/`beta`). The paper's
// conclusion (RBC wins wherever communicator creation is not amortized by
// data volume) should hold for every realistic machine balance.
//
// Section "segment_crossover": the sweep behind the sorters' default
// segment_bytes (jsort::exchange::kDefaultSegmentBytes). Sorts a
// large-n/p input with the per-level exchange segment limit swept over
// {0 = unsegmented, 4 KiB .. 1 MiB}; on the single-ported alpha-beta
// model, segmentation pays one extra alpha per chunk on direct messages
// but pipelines across the store-and-forward rounds of the dense
// rbc::Alltoallv, so the sample-sort rows expose a crossover while the
// jquick rows bound the cost a limit inflicts on direct exchanges.
#include <algorithm>
#include <memory>
#include <vector>

#include "harness.hpp"
#include "sort/jsort.hpp"
#include "sort/workload.hpp"

namespace {

double MeasureJQuick(mpisim::Comm& world, bool use_rbc, int quota, int reps,
                     double* wall_ms) {
  const auto m = benchutil::MeasureOnRanks(world, reps, [&] {
    auto input = jsort::GenerateInput(jsort::InputKind::kUniform,
                                      world.Rank(), world.Size(), quota, 17);
    std::shared_ptr<jsort::Transport> tr;
    if (use_rbc) {
      rbc::Comm rw;
      rbc::Create_RBC_Comm(world, &rw);
      tr = jsort::MakeRbcTransport(rw);
    } else {
      tr = jsort::MakeMpiTransport(world);
    }
    jsort::JQuickSort(tr, std::move(input));
  });
  if (wall_ms != nullptr) *wall_ms = m.wall_ms;
  return m.vtime;
}

void RunBalance(benchutil::BenchContext& ctx) {
  const int ranks = ctx.smoke() ? 16 : 64;
  const int quota = 64;
  const int reps = ctx.reps(3);
  const std::vector<double> alphas =
      ctx.smoke() ? std::vector<double>{1.0, 100.0}
                  : std::vector<double>{1.0, 10.0, 100.0};
  const std::vector<double> betas =
      ctx.smoke() ? std::vector<double>{0.002, 0.2}
                  : std::vector<double>{0.002, 0.02, 0.2};
  for (double alpha : alphas) {
    for (double beta : betas) {
      mpisim::Runtime::Options opts;
      opts.num_ranks = ranks;
      opts.cost.alpha = alpha;
      opts.cost.beta = beta;
      mpisim::Runtime rt(opts);
      double rbc_vt = 0.0, mpi_vt = 0.0, rbc_wall = 0.0, mpi_wall = 0.0;
      rt.Run([&](mpisim::Comm& world) {
        double wa = 0.0, wb = 0.0;
        const double a = MeasureJQuick(world, true, quota, reps, &wa);
        const double b = MeasureJQuick(world, false, quota, reps, &wb);
        if (world.Rank() == 0) {
          rbc_vt = a;
          mpi_vt = b;
          rbc_wall = wa;
          mpi_wall = wb;
        }
      });
      const double ratio = mpi_vt / std::max(rbc_vt, 1e-9);
      ctx.Row("sensitivity_balance", "rbc", ranks, quota,
              benchutil::Measurement{rbc_wall, rbc_vt},
              {{"alpha", alpha}, {"beta", beta}, {"vtime_ratio", ratio}});
      ctx.Row("sensitivity_balance", "mpi", ranks, quota,
              benchutil::Measurement{mpi_wall, mpi_vt},
              {{"alpha", alpha}, {"beta", beta}, {"vtime_ratio", ratio}});
    }
  }
}

void RunSegmentCrossover(benchutil::BenchContext& ctx) {
  const int ranks = ctx.smoke() ? 8 : 16;
  const int quota = ctx.smoke() ? (1 << 12) : (1 << 15);
  const int reps = ctx.reps(3);
  const std::vector<std::int64_t> limits = {
      0, 4096, 16384, 65536, 262144, 1048576};
  mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = ranks});
  rt.Run([&](mpisim::Comm& world) {
    rbc::Comm rw;
    rbc::Create_RBC_Comm(world, &rw);
    for (const std::int64_t seg : limits) {
      const auto ss = benchutil::MeasureOnRanks(world, reps, [&] {
        auto input = jsort::GenerateInput(jsort::InputKind::kUniform,
                                          world.Rank(), ranks, quota, 17);
        auto tr = jsort::MakeRbcTransport(rw);
        jsort::SampleSortConfig cfg;
        cfg.segment_bytes = seg;
        jsort::SampleSort(tr, std::move(input), cfg);
      });
      const auto jq = benchutil::MeasureOnRanks(world, reps, [&] {
        auto input = jsort::GenerateInput(jsort::InputKind::kUniform,
                                          world.Rank(), ranks, quota, 17);
        auto tr = jsort::MakeRbcTransport(rw);
        jsort::JQuickConfig cfg;
        cfg.segment_bytes = seg;
        jsort::JQuickSort(tr, std::move(input), cfg);
      });
      if (world.Rank() == 0) {
        ctx.Row("segment_crossover", "samplesort", ranks, quota, ss,
                {{"segment_bytes", seg}});
        ctx.Row("segment_crossover", "jquick", ranks, quota, jq,
                {{"segment_bytes", seg}});
      }
    }
  });
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::BenchSpec spec;
  spec.binary = "bench_sensitivity";
  spec.figure = "robustness of Sections VII-VIII";
  spec.description =
      "cost-model sensitivity: machine-balance sweep of the RBC advantage "
      "plus the segment_bytes crossover behind the sorters' default";
  spec.default_p = 64;
  spec.default_reps = 3;
  spec.sections = {
      {"balance", "alpha/beta sweep of the JQuick RBC-vs-native ratio",
       RunBalance},
      {"segment_crossover",
       "per-level exchange segment-limit sweep at large n/p",
       RunSegmentCrossover}};
  return benchutil::BenchMain(argc, argv, spec);
}
