// Sensitivity analysis: how robust are the reproduction's conclusions to
// the alpha-beta cost-model parameters? Sweeps the latency/bandwidth
// ratio alpha/beta over three orders of magnitude and reports the JQuick
// RBC-vs-native advantage at moderate n/p. The paper's conclusion (RBC
// wins wherever communicator creation is not amortized by data volume)
// should hold for every realistic machine balance.
#include <cstdio>
#include <vector>

#include "benchutil.hpp"
#include "sort/jquick.hpp"
#include "sort/workload.hpp"

namespace {

constexpr int kRanks = 64;
constexpr int kReps = 3;
constexpr int kQuota = 64;

double Measure(mpisim::Comm& world, bool use_rbc) {
  const auto m = benchutil::MeasureOnRanks(world, kReps, [&] {
    auto input = jsort::GenerateInput(jsort::InputKind::kUniform,
                                      world.Rank(), world.Size(), kQuota,
                                      17);
    std::shared_ptr<jsort::Transport> tr;
    if (use_rbc) {
      rbc::Comm rw;
      rbc::Create_RBC_Comm(world, &rw);
      tr = jsort::MakeRbcTransport(rw);
    } else {
      tr = jsort::MakeMpiTransport(world);
    }
    jsort::JQuickSort(tr, std::move(input));
  });
  return m.vtime;
}

}  // namespace

int main() {
  std::printf(
      "# Sensitivity: JQuick RBC advantage vs machine balance "
      "(p=%d, n/p=%d, median of %d)\n",
      kRanks, kQuota, kReps);
  benchutil::PrintRowHeader(
      {"alpha", "beta", "alpha/beta", "RBC.vt", "MPI.vt", "MPI/RBC"});
  const double alphas[] = {1.0, 10.0, 100.0};
  const double betas[] = {0.002, 0.02, 0.2};
  for (double alpha : alphas) {
    for (double beta : betas) {
      mpisim::Runtime::Options opts;
      opts.num_ranks = kRanks;
      opts.cost.alpha = alpha;
      opts.cost.beta = beta;
      mpisim::Runtime rt(opts);
      double rbc_vt = 0.0, mpi_vt = 0.0;
      rt.Run([&](mpisim::Comm& world) {
        const double a = Measure(world, true);
        const double b = Measure(world, false);
        if (world.Rank() == 0) {
          rbc_vt = a;
          mpi_vt = b;
        }
      });
      benchutil::PrintCell(alpha);
      benchutil::PrintCell(beta);
      benchutil::PrintCell(alpha / beta);
      benchutil::PrintCell(rbc_vt);
      benchutil::PrintCell(mpi_vt);
      benchutil::PrintCell(mpi_vt / std::max(rbc_vt, 1e-9));
      benchutil::EndRow();
    }
  }
  std::printf(
      "\n# Shape check: the MPI/RBC ratio stays > 1 for every machine "
      "balance. It is largest\n# when alpha is small relative to the "
      "per-member construction cost (the linear O(p)\n# group "
      "materialization then dominates a level), and still >1.5x when "
      "startups dominate.\n");
  return 0;
}
