// Ablation: message counts of the greedy assignment (Section VII). The
// greedy algorithm sends at most 2 messages per side per sender, but a
// receiver can collect Theta(min(p, n/p)) messages in the worst case --
// the motivation for the deterministic assignment of [20]. This bench
// reports per-level exchange traffic of JQuick across input shapes.
#include <cstdio>
#include <vector>

#include "benchutil.hpp"
#include "sort/checks.hpp"
#include "sort/jquick.hpp"
#include "sort/workload.hpp"

namespace {

constexpr int kRanks = 64;

struct Traffic {
  std::int64_t total_messages = 0;
  std::int64_t max_messages_per_rank = 0;
  std::int64_t total_elements = 0;
};

Traffic MeasureTraffic(mpisim::Comm& world, jsort::InputKind kind,
                       int quota) {
  auto input =
      jsort::GenerateInput(kind, world.Rank(), world.Size(), quota, 41);
  rbc::Comm rw;
  rbc::Create_RBC_Comm(world, &rw);
  auto tr = jsort::MakeRbcTransport(rw);
  jsort::JQuickStats stats;
  jsort::JQuickSort(tr, std::move(input), jsort::JQuickConfig{}, &stats);
  Traffic t;
  mpisim::Allreduce(&stats.messages_sent, &t.total_messages, 1,
                    mpisim::Datatype::kInt64, mpisim::ReduceOp::kSum, world);
  mpisim::Allreduce(&stats.messages_sent, &t.max_messages_per_rank, 1,
                    mpisim::Datatype::kInt64, mpisim::ReduceOp::kMax, world);
  mpisim::Allreduce(&stats.elements_sent, &t.total_elements, 1,
                    mpisim::Datatype::kInt64, mpisim::ReduceOp::kSum, world);
  return t;
}

}  // namespace

int main() {
  std::printf(
      "# Ablation: greedy-assignment exchange traffic, p=%d "
      "(data-exchange messages only)\n",
      kRanks);
  benchutil::PrintRowHeader({"input", "n/p", "msgs.total", "msgs.max/rank",
                             "elems.sent", "elems/msg"});
  mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = kRanks});
  rt.Run([](mpisim::Comm& world) {
    for (auto kind : {jsort::InputKind::kUniform, jsort::InputKind::kZipf,
                      jsort::InputKind::kSortedAsc}) {
      for (int quota : {16, 256, 4096}) {
        const Traffic t = MeasureTraffic(world, kind, quota);
        if (world.Rank() == 0) {
          benchutil::PrintCell(std::string(jsort::InputKindName(kind)));
          benchutil::PrintCell(static_cast<double>(quota));
          benchutil::PrintCell(static_cast<double>(t.total_messages));
          benchutil::PrintCell(static_cast<double>(t.max_messages_per_rank));
          benchutil::PrintCell(static_cast<double>(t.total_elements));
          benchutil::PrintCell(
              static_cast<double>(t.total_elements) /
              std::max<double>(1.0, static_cast<double>(t.total_messages)));
        benchutil::EndRow();
        }
      }
    }
  });
  std::printf(
      "\n# Shape check: per-sender message counts stay small (greedy sends "
      "<= 2 chunks per\n# side per level); total elements per message grows "
      "with n/p (bandwidth efficiency).\n");
  return 0;
}
