// Ablation: message counts of the greedy assignment (Section VII). The
// greedy algorithm sends at most 2 messages per side per sender, but a
// receiver can collect Theta(min(p, n/p)) messages in the worst case --
// the motivation for the deterministic assignment of [20]. This bench
// reports the exchange traffic of a full JQuick run across input shapes
// (backend = input distribution): `messages` = total data-exchange
// messages, `max_messages_per_rank`, `elements_sent`, and the bandwidth
// efficiency `elements_per_message`.
#include <algorithm>
#include <string>
#include <vector>

#include "harness.hpp"
#include "sort/checks.hpp"
#include "sort/jquick.hpp"
#include "sort/workload.hpp"

namespace {

void RunTraffic(benchutil::BenchContext& ctx) {
  const int ranks = ctx.smoke() ? 16 : 64;
  const int reps = ctx.reps(3);
  const std::vector<int> quotas =
      ctx.smoke() ? std::vector<int>{16, 256} : std::vector<int>{16, 256, 4096};
  mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = ranks});
  rt.Run([&](mpisim::Comm& world) {
    for (auto kind : {jsort::InputKind::kUniform, jsort::InputKind::kZipf,
                      jsort::InputKind::kSortedAsc}) {
      for (int quota : quotas) {
        jsort::JQuickStats stats;
        const auto m = benchutil::MeasureOnRanks(world, reps, [&] {
          auto input = jsort::GenerateInput(kind, world.Rank(), world.Size(),
                                            quota, 41);
          rbc::Comm rw;
          rbc::Create_RBC_Comm(world, &rw);
          auto tr = jsort::MakeRbcTransport(rw);
          stats = jsort::JQuickStats{};
          jsort::JQuickSort(tr, std::move(input), jsort::JQuickConfig{},
                            &stats);
        });
        std::int64_t total_msgs = 0, max_msgs = 0, total_elems = 0;
        mpisim::Allreduce(&stats.messages_sent, &total_msgs, 1,
                          mpisim::Datatype::kInt64, mpisim::ReduceOp::kSum,
                          world);
        mpisim::Allreduce(&stats.messages_sent, &max_msgs, 1,
                          mpisim::Datatype::kInt64, mpisim::ReduceOp::kMax,
                          world);
        mpisim::Allreduce(&stats.elements_sent, &total_elems, 1,
                          mpisim::Datatype::kInt64, mpisim::ReduceOp::kSum,
                          world);
        if (world.Rank() == 0) {
          const double per_msg =
              static_cast<double>(total_elems) /
              std::max<double>(1.0, static_cast<double>(total_msgs));
          ctx.Row("ablate_assignment",
                  std::string(jsort::InputKindName(kind)), ranks, quota, m,
                  {{"messages", total_msgs},
                   {"max_messages_per_rank", max_msgs},
                   {"elements_sent", total_elems},
                   {"elements_per_message", per_msg}});
        }
      }
    }
  });
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::BenchSpec spec;
  spec.binary = "bench_ablate_assignment";
  spec.figure = "Section VII";
  spec.description =
      "greedy-assignment exchange traffic of JQuick across input shapes "
      "(data-exchange messages only)";
  spec.default_p = 64;
  spec.default_reps = 3;
  spec.sections = {
      {"traffic", "per-input-shape message and element counts", RunTraffic}};
  return benchutil::BenchMain(argc, argv, spec);
}
