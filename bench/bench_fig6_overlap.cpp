// Figure 6: splitting a communicator of p processes into overlapping
// communicators of size 4 -- groups 0..3, 3..6, 6..9, ... -- where every
// third process is part of two groups and must order its two creations.
//
// Schedules (the `schedule` row field):
//   cascaded     every overlap process creates its left group first; the
//                creations chain across the whole machine.
//   alternating  every other overlap process creates the right group
//                first, bounding cascades at depth ~2.
//
// Paper shape: with RBC both schedules are negligible and identical (the
// creations are local, vtime 0); with native MPI_Comm_create_group the
// cascaded schedule becomes extremely slow as p grows while alternating
// stays moderate.
#include <algorithm>
#include <array>
#include <utility>
#include <vector>

#include "harness.hpp"
#include "rbc/rbc.hpp"

namespace {

constexpr int kGroup = 3;  // group i covers ranks [3i, 3i+3]

struct MyGroups {
  // Ranges this rank belongs to (1 or 2), as (first, last) over the comm.
  std::vector<std::pair<int, int>> ranges;
  bool overlap = false;  // member of two groups
  int ordinal = 0;       // index of the left group
};

MyGroups GroupsOf(int rank, int p) {
  MyGroups g;
  const int last_start = ((p - 2) / kGroup) * kGroup;
  for (int start = 0; start <= last_start; start += kGroup) {
    const int end = std::min(start + kGroup, p - 1);
    if (rank >= start && rank <= end) {
      g.ranges.emplace_back(start, end);
      if (g.ranges.size() == 1) g.ordinal = start / kGroup;
    }
  }
  g.overlap = g.ranges.size() == 2;
  return g;
}

benchutil::Measurement MeasureRbc(mpisim::Comm& world, bool alternating,
                                  int reps) {
  rbc::Comm rw;
  rbc::Create_RBC_Comm(world, &rw);
  const MyGroups g = GroupsOf(world.Rank(), world.Size());
  return benchutil::MeasureOnRanks(world, reps, [&] {
    auto ranges = g.ranges;
    if (g.overlap && alternating && g.ordinal % 2 == 0) {
      std::swap(ranges[0], ranges[1]);  // create the right group first
    }
    for (const auto& [f, l] : ranges) {
      rbc::Comm sub;
      rbc::Split_RBC_Comm(rw, f, l, &sub);
    }
  });
}

benchutil::Measurement MeasureMpi(mpisim::Comm& world, bool alternating,
                                  int reps) {
  const MyGroups g = GroupsOf(world.Rank(), world.Size());
  return benchutil::MeasureOnRanks(world, reps, [&] {
    auto ranges = g.ranges;
    if (g.overlap && alternating && g.ordinal % 2 == 0) {
      std::swap(ranges[0], ranges[1]);
    }
    for (const auto& [f, l] : ranges) {
      const std::array<mpisim::RankRange, 1> rr{mpisim::RankRange{f, l, 1}};
      // The agreement tag must be group-specific and agreed by all of the
      // group's members: use the group's ordinal.
      mpisim::Comm sub = mpisim::CommCreateGroup(
          world, mpisim::GroupRangeIncl(world, rr), /*tag=*/f / kGroup);
    }
  });
}

void RunOverlap(benchutil::BenchContext& ctx) {
  const int reps = ctx.reps(3);
  const int min_p = 16;
  const int max_p = ctx.smoke() ? 16 : 256;
  for (int p = min_p; p <= max_p; p *= 2) {
    benchutil::Measurement rbc_c, rbc_a, mpi_c, mpi_a;
    mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = p});
    rt.Run([&](mpisim::Comm& world) {
      rbc_c = MeasureRbc(world, /*alternating=*/false, reps);
      rbc_a = MeasureRbc(world, /*alternating=*/true, reps);
      mpi_c = MeasureMpi(world, /*alternating=*/false, reps);
      mpi_a = MeasureMpi(world, /*alternating=*/true, reps);
    });
    ctx.Row("fig6_overlap", "rbc", p, kGroup + 1, rbc_c,
            {{"schedule", "cascaded"}});
    ctx.Row("fig6_overlap", "rbc", p, kGroup + 1, rbc_a,
            {{"schedule", "alternating"}});
    ctx.Row("fig6_overlap", "mpi", p, kGroup + 1, mpi_c,
            {{"schedule", "cascaded"}});
    ctx.Row("fig6_overlap", "mpi", p, kGroup + 1, mpi_a,
            {{"schedule", "alternating"}});
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::BenchSpec spec;
  spec.binary = "bench_fig6_overlap";
  spec.figure = "Figure 6";
  spec.description =
      "overlapping size-4 communicators, cascaded vs alternating creation "
      "order, RBC vs native MPI";
  spec.default_p = 256;
  spec.default_reps = 3;
  spec.sections = {
      {"overlap", "cascaded vs alternating creation sweep over p",
       RunOverlap}};
  return benchutil::BenchMain(argc, argv, spec);
}
