// Service-level throughput of the elastic multi-job sort scheduler
// (src/sched) -- the paper's Figure 5/8 split-cost axis surfaced as
// jobs/sec and tail latency.
//
// A Poisson-in-vtime stream of small mixed sort jobs (jquick /
// samplesort / multilevel over several input kinds) is admitted onto
// dynamically allocated contiguous rank ranges; every admission pays one
// Transport::Split on the selected backend. With a small-job-dominated
// mix the split cost is a first-order fraction of each job, so the
// backend axis separates:
//
//  * rbc    -- Split_RBC_Comm is local and O(1): split-vtime share is
//              exactly zero and throughput is the machine's ceiling;
//  * mpi    -- blocking MPI_Comm_create_group per admission: every job
//              pays the O(group) agreement, throughput drops and the
//              latency tail grows;
//  * icomm  -- the Section-VI proposal: local for the service's
//              contiguous ranges, so it tracks rbc (its tiny O(1) local
//              bookkeeping cost aside).
//
// Two ablation sections ride along: admission policy (fifo / sjf /
// adaptive-width) and allocation strategy (first-fit / buddy), both on
// the rbc backend.
#include <chrono>
#include <cstdio>
#include <mutex>
#include <vector>

#include "harness.hpp"
#include "mpisim/runtime.hpp"
#include "sched/service.hpp"

namespace {

using benchutil::Field;
using benchutil::Measurement;
using jsort::Backend;
using jsort::sched::AdmissionPolicy;
using jsort::sched::JobSpec;
using jsort::sched::JobStreamParams;
using jsort::sched::MakeJobStream;
using jsort::sched::RangeAllocator;
using jsort::sched::ServiceConfig;
using jsort::sched::ServiceMetrics;
using jsort::sched::ServiceStats;
using jsort::sched::SortService;
using jsort::sched::Summarize;

/// The small-job-dominated mix: most jobs want a handful of ranks and a
/// few thousand elements, so communicator creation is a first-order cost.
JobStreamParams SmallJobMix(int jobs, bool smoke) {
  JobStreamParams p;
  p.jobs = jobs;
  // Tuned for visible queueing at p=64 (utilization just under the RBC
  // ceiling): the MPI backend, whose jobs are longer, saturates.
  p.mean_interarrival = smoke ? 160.0 : 40.0;
  p.min_width = 1;
  p.max_width = 8;
  p.min_n = 128;
  p.max_n = 2048;
  return p;
}

struct ServiceRun {
  ServiceMetrics metrics;
  int waves = 0;
  double wall_ms = 0.0;
};

ServiceRun RunOnce(int ranks, const std::vector<JobSpec>& jobs,
                   ServiceConfig cfg) {
  SortService service(ranks, jobs, std::move(cfg));
  ServiceStats stats;
  mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = ranks});
  const auto t0 = std::chrono::steady_clock::now();
  rt.Run([&](mpisim::Comm& world) {
    ServiceStats mine = service.Run(world);
    if (world.Rank() == 0) stats = std::move(mine);
  });
  const auto t1 = std::chrono::steady_clock::now();
  ServiceRun run;
  run.metrics = Summarize(stats);
  run.waves = stats.waves;
  run.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  return run;
}

std::vector<Field> MetricFields(const ServiceRun& run, const char* policy,
                                const char* alloc, long long seed) {
  const ServiceMetrics& m = run.metrics;
  return {
      Field{"jobs_per_sec", m.jobs_per_sec},
      Field{"p50_latency", m.p50_latency},
      Field{"p99_latency", m.p99_latency},
      Field{"mean_queue_wait", m.mean_queue_wait},
      Field{"split_share", m.split_share},
      Field{"split_vtime_total", m.split_vtime_total},
      Field{"jobs_done", static_cast<long long>(m.jobs - m.failed)},
      Field{"waves", static_cast<long long>(run.waves)},
      Field{"policy", policy},
      Field{"alloc", alloc},
      Field{"seed", seed},
  };
}

void RunBackendMix(benchutil::BenchContext& ctx) {
  const int ranks = ctx.smoke() ? 16 : 64;
  const int jobs = ctx.smoke() ? 24 : 240;
  const auto stream =
      MakeJobStream(ranks, SmallJobMix(jobs, ctx.smoke()),
                    static_cast<std::uint64_t>(ctx.seed()));
  for (const Backend backend :
       {Backend::kRbc, Backend::kMpi, Backend::kIcomm}) {
    ServiceConfig cfg;
    cfg.backend = backend;
    const ServiceRun run = RunOnce(ranks, stream, cfg);
    ctx.Row("service_mix", jsort::BackendName(backend), ranks, jobs,
            Measurement{run.wall_ms, run.metrics.makespan},
            MetricFields(run, "fifo", "first_fit", ctx.seed()));
  }
}

void RunPolicies(benchutil::BenchContext& ctx) {
  const int ranks = ctx.smoke() ? 16 : 64;
  const int jobs = ctx.smoke() ? 24 : 160;
  JobStreamParams params = SmallJobMix(jobs, ctx.smoke());
  params.mean_interarrival /= 2.0;  // heavier load: policies only differ
                                    // when the queue is non-trivial
  const auto stream = MakeJobStream(
      ranks, params, static_cast<std::uint64_t>(ctx.seed()));
  for (const AdmissionPolicy policy :
       {AdmissionPolicy::kFifo, AdmissionPolicy::kSjf,
        AdmissionPolicy::kAdaptiveWidth}) {
    ServiceConfig cfg;
    cfg.scheduler.policy = policy;
    const ServiceRun run = RunOnce(ranks, stream, cfg);
    ctx.Row("service_policy", jsort::sched::PolicyName(policy), ranks, jobs,
            Measurement{run.wall_ms, run.metrics.makespan},
            MetricFields(run, jsort::sched::PolicyName(policy), "first_fit",
                         ctx.seed()));
  }
}

void RunAllocators(benchutil::BenchContext& ctx) {
  const int ranks = ctx.smoke() ? 16 : 64;
  const int jobs = ctx.smoke() ? 24 : 160;
  const auto stream =
      MakeJobStream(ranks, SmallJobMix(jobs, ctx.smoke()),
                    static_cast<std::uint64_t>(ctx.seed()));
  const struct {
    RangeAllocator::Policy policy;
    const char* name;
  } kAllocs[] = {{RangeAllocator::Policy::kFirstFit, "first_fit"},
                 {RangeAllocator::Policy::kBuddy, "buddy"}};
  for (const auto& alloc : kAllocs) {
    ServiceConfig cfg;
    cfg.scheduler.allocation = alloc.policy;
    const ServiceRun run = RunOnce(ranks, stream, cfg);
    ctx.Row("service_alloc", alloc.name, ranks, jobs,
            Measurement{run.wall_ms, run.metrics.makespan},
            MetricFields(run, "fifo", alloc.name, ctx.seed()));
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::BenchSpec spec;
  spec.binary = "bench_service";
  spec.figure = "Figures 5/8 as a service (split cost -> throughput)";
  spec.description =
      "Elastic multi-job sort service: Poisson job stream over dynamically "
      "allocated rank ranges, one communicator split per admission, "
      "backend/policy/allocator sweeps";
  spec.default_p = 64;
  spec.default_reps = 1;  // the service run is vtime-deterministic per seed
  spec.sections = {
      {"mix", "small-job mix across the rbc/mpi/icomm split backends",
       RunBackendMix},
      {"policy", "fifo vs sjf vs adaptive-width admission (rbc backend)",
       RunPolicies},
      {"alloc", "first-fit vs buddy range allocation (rbc backend)",
       RunAllocators},
  };
  return benchutil::BenchMain(argc, argv, spec);
}
