// Microbenchmarks of the local (single-rank) kernels the sorter is built
// from: partition, k-way partition (branchless splitter tree vs the
// seed's upper_bound baseline), quickselect, local sort, greedy
// assignment, sampling. These bound the non-communication terms of
// Theorem 1 (O(n/p) partition work, O(n/p log(n/p)) base-case sort).
//
// No simulated runtime is involved: p = 1, vtime = 0, and the primary
// metric is `mitems_per_sec` (million items per second, items = processed
// elements; for assign_chunks, spanned ranks). Timing is a median over
// reps of batched wall-clock iterations, sized so one measurement does a
// few million items of work.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <random>
#include <vector>

#include "harness.hpp"
#include "sort/assignment.hpp"
#include "sort/partition.hpp"
#include "sort/quickselect.hpp"
#include "sort/sampling.hpp"
#include "sort/workload.hpp"

namespace {

std::vector<double> MakeInput(std::int64_t n) {
  return jsort::GenerateInput(jsort::InputKind::kUniform, 0, 1, n, 99);
}

/// Times `op` (which processes `items` items per call) with enough batched
/// iterations for a stable reading, `reps` times; reports the median
/// per-call wall time and throughput.
template <typename Op>
void Report(benchutil::BenchContext& ctx, const char* bench,
            const char* backend, long long count, std::int64_t items,
            int reps, Op&& op) {
  const std::int64_t target_items = ctx.smoke() ? (1 << 18) : (1 << 22);
  const int inner = static_cast<int>(
      std::max<std::int64_t>(1, target_items / std::max<std::int64_t>(
                                                   1, items)));
  std::vector<double> per_call_ms;
  op();  // warm-up (first-touch, allocator)
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < inner; ++i) op();
    const auto t1 = std::chrono::steady_clock::now();
    per_call_ms.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count() / inner);
  }
  std::sort(per_call_ms.begin(), per_call_ms.end());
  const double ms = per_call_ms[per_call_ms.size() / 2];
  const double mitems =
      static_cast<double>(items) / std::max(ms, 1e-9) / 1e3;  // per second
  ctx.Row(bench, backend, 1, count,
          benchutil::Measurement{ms, 0.0},
          {{"mitems_per_sec", mitems}});
}

void RunPartition(benchutil::BenchContext& ctx) {
  const int reps = ctx.reps(5);
  const int max_log = ctx.smoke() ? 12 : 18;
  for (int lg = 8; lg <= max_log; lg += 2) {
    const std::int64_t n = std::int64_t{1} << lg;
    const auto data = MakeInput(n);
    Report(ctx, "kernel_partition", "two_way", n, n, reps, [&] {
      auto r = jsort::Partition(data, 0.5, false);
      benchutil::DoNotOptimize(&r);
    });
    Report(ctx, "kernel_partition", "in_place", n, n, reps, [&] {
      auto copy = data;
      auto r = jsort::PartitionInPlace(copy, 0.5, true);
      benchutil::DoNotOptimize(&r);
    });
  }
}

/// Equidistant splitters over the uniform [0,1) input.
std::vector<double> MakeSplitters(int k) {
  std::vector<double> s(static_cast<std::size_t>(k) - 1);
  for (int i = 1; i < k; ++i) {
    s[static_cast<std::size_t>(i) - 1] = static_cast<double>(i) / k;
  }
  return s;
}

void RunPartitionKWay(benchutil::BenchContext& ctx) {
  const int reps = ctx.reps(5);
  const std::int64_t n = ctx.smoke() ? (1 << 12) : (1 << 16);
  const auto data = MakeInput(n);
  const int max_k = ctx.smoke() ? 64 : 1024;
  for (int k = 4; k <= max_k; k *= 4) {
    const auto splitters = MakeSplitters(k);
    Report(ctx, "kernel_partition_kway", "splitter_tree", k, n, reps, [&] {
      auto r = jsort::PartitionKWay(data, splitters);
      benchutil::DoNotOptimize(&r);
    });
    // The seed's classification loop (per-element upper_bound +
    // per-bucket push_back): the baseline the branchless tree replaces.
    Report(ctx, "kernel_partition_kway", "upper_bound", k, n, reps, [&] {
      std::vector<std::vector<double>> buckets(splitters.size() + 1);
      for (double x : data) {
        const auto it =
            std::upper_bound(splitters.begin(), splitters.end(), x);
        buckets[static_cast<std::size_t>(it - splitters.begin())]
            .push_back(x);
      }
      benchutil::DoNotOptimize(&buckets);
    });
  }
}

void RunSelectAndSort(benchutil::BenchContext& ctx) {
  const int reps = ctx.reps(5);
  const int max_log = ctx.smoke() ? 12 : 18;
  for (int lg = 8; lg <= max_log; lg += 2) {
    const std::int64_t n = std::int64_t{1} << lg;
    const auto data = MakeInput(n);
    Report(ctx, "kernel_quickselect", "local", n, n, reps, [&] {
      auto copy = data;
      jsort::QuickselectSmallest(copy, copy.size() / 2);
      benchutil::DoNotOptimize(copy.data());
    });
    Report(ctx, "kernel_local_sort", "local", n, n, reps, [&] {
      auto copy = data;
      std::sort(copy.begin(), copy.end());
      benchutil::DoNotOptimize(copy.data());
    });
  }
}

void RunAssignAndSample(benchutil::BenchContext& ctx) {
  const int reps = ctx.reps(5);
  const int max_p = ctx.smoke() ? 64 : 4096;
  for (int p = 4; p <= max_p; p *= 4) {
    const jsort::CapacityLayout layout{
        .p = p, .quota = 1000, .cap_first = 500, .cap_last = 700};
    // A sender interval spanning most of the machine (worst case).
    Report(ctx, "kernel_assign_chunks", "greedy", p, p, reps, [&] {
      auto chunks = jsort::AssignChunks(layout, 250, layout.Total() - 333);
      benchutil::DoNotOptimize(chunks.data());
    });
  }
  const std::int64_t n = ctx.smoke() ? (1 << 12) : (1 << 16);
  const auto data = MakeInput(n);
  std::mt19937_64 rng(5);
  Report(ctx, "kernel_sampling", "reservoir", n, n, reps, [&] {
    auto c = jsort::ReservoirCandidate(data, rng);
    benchutil::DoNotOptimize(&c);
  });
  const int samples = ctx.smoke() ? 64 : 1024;
  std::vector<double> sample_buf(static_cast<std::size_t>(samples));
  Report(ctx, "kernel_sampling", "median_of_samples", samples, samples, reps,
         [&] {
           jsort::DrawSamples(data, samples, sample_buf.data(), rng);
           auto med = jsort::MedianOf(sample_buf);
           benchutil::DoNotOptimize(&med);
         });
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::BenchSpec spec;
  spec.binary = "bench_local_kernels";
  spec.figure = "Theorem 1 (local terms)";
  spec.description =
      "single-rank kernel throughput: partition, k-way partition vs "
      "upper_bound baseline, quickselect, sort, assignment, sampling";
  spec.default_p = 1;
  spec.default_reps = 5;
  spec.sections = {
      {"partition", "two-way partition kernels over the size sweep",
       RunPartition},
      {"partition_kway", "branchless splitter tree vs upper_bound baseline",
       RunPartitionKWay},
      {"select_sort", "quickselect and std::sort baselines",
       RunSelectAndSort},
      {"assign_sample", "greedy assignment and sampling kernels",
       RunAssignAndSample}};
  return benchutil::BenchMain(argc, argv, spec);
}
