// google-benchmark microbenchmarks of the local (single-rank) kernels the
// sorter is built from: partition, quickselect, greedy assignment, local
// sort, input generation. These bound the non-communication terms of
// Theorem 1 (O(n/p) partition work, O(n/p log(n/p)) base-case sort).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <random>
#include <vector>

#include "sort/assignment.hpp"
#include "sort/partition.hpp"
#include "sort/quickselect.hpp"
#include "sort/sampling.hpp"
#include "sort/workload.hpp"

namespace {

std::vector<double> MakeInput(std::int64_t n) {
  return jsort::GenerateInput(jsort::InputKind::kUniform, 0, 1, n, 99);
}

void BM_Partition(benchmark::State& state) {
  const auto data = MakeInput(state.range(0));
  const double pivot = 0.5;
  for (auto _ : state) {
    auto r = jsort::Partition(data, pivot, false);
    benchmark::DoNotOptimize(r.small.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Partition)->Range(1 << 8, 1 << 18);

void BM_PartitionInPlace(benchmark::State& state) {
  const auto data = MakeInput(state.range(0));
  for (auto _ : state) {
    auto copy = data;
    benchmark::DoNotOptimize(jsort::PartitionInPlace(copy, 0.5, true));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PartitionInPlace)->Range(1 << 8, 1 << 18);

/// Equidistant splitters over the uniform [0,1) input.
std::vector<double> MakeSplitters(int k) {
  std::vector<double> s(static_cast<std::size_t>(k) - 1);
  for (int i = 1; i < k; ++i) {
    s[static_cast<std::size_t>(i) - 1] = static_cast<double>(i) / k;
  }
  return s;
}

void BM_PartitionKWay(benchmark::State& state) {
  const auto data = MakeInput(1 << 16);
  const auto splitters = MakeSplitters(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto r = jsort::PartitionKWay(data, splitters);
    benchmark::DoNotOptimize(r.elements.data());
  }
  state.SetItemsProcessed(state.iterations() * (1 << 16));
}
BENCHMARK(BM_PartitionKWay)->RangeMultiplier(4)->Range(4, 1024);

/// The seed's classification loop (per-element upper_bound + per-bucket
/// push_back), kept as the baseline the branchless splitter tree replaces.
void BM_PartitionKWayUpperBound(benchmark::State& state) {
  const auto data = MakeInput(1 << 16);
  const auto splitters = MakeSplitters(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::vector<std::vector<double>> buckets(splitters.size() + 1);
    for (double x : data) {
      const auto it =
          std::upper_bound(splitters.begin(), splitters.end(), x);
      buckets[static_cast<std::size_t>(it - splitters.begin())].push_back(x);
    }
    benchmark::DoNotOptimize(buckets.data());
  }
  state.SetItemsProcessed(state.iterations() * (1 << 16));
}
BENCHMARK(BM_PartitionKWayUpperBound)->RangeMultiplier(4)->Range(4, 1024);

void BM_Quickselect(benchmark::State& state) {
  const auto data = MakeInput(state.range(0));
  for (auto _ : state) {
    auto copy = data;
    jsort::QuickselectSmallest(copy, copy.size() / 2);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Quickselect)->Range(1 << 8, 1 << 18);

void BM_LocalSort(benchmark::State& state) {
  const auto data = MakeInput(state.range(0));
  for (auto _ : state) {
    auto copy = data;
    std::sort(copy.begin(), copy.end());
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LocalSort)->Range(1 << 8, 1 << 18);

void BM_AssignChunks(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const jsort::CapacityLayout layout{
      .p = p, .quota = 1000, .cap_first = 500, .cap_last = 700};
  for (auto _ : state) {
    // A sender interval spanning most of the machine (worst case).
    auto chunks = jsort::AssignChunks(layout, 250, layout.Total() - 333);
    benchmark::DoNotOptimize(chunks.data());
  }
}
BENCHMARK(BM_AssignChunks)->Range(4, 4096);

void BM_ReservoirCandidate(benchmark::State& state) {
  const auto data = MakeInput(state.range(0));
  std::mt19937_64 rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(jsort::ReservoirCandidate(data, rng));
  }
}
BENCHMARK(BM_ReservoirCandidate)->Range(1 << 8, 1 << 16);

void BM_MedianOfSamples(benchmark::State& state) {
  const auto data = MakeInput(1 << 16);
  std::mt19937_64 rng(6);
  std::vector<double> samples(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    jsort::DrawSamples(data, static_cast<int>(samples.size()),
                       samples.data(), rng);
    benchmark::DoNotOptimize(jsort::MedianOf(samples));
  }
}
BENCHMARK(BM_MedianOfSamples)->Range(16, 4096);

}  // namespace

BENCHMARK_MAIN();
