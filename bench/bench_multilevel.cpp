// Multilevel sample sort over the exchange layer: vtime/wall per delivery
// mode plus the maximum per-rank payload-message count of the whole sort
// (from MultilevelStats) -- the startup-cost story of the AMS-style
// group-wise exchange. The seed implementation paid one startup per piece
// per level (k * levels per rank, empty and self pieces included); the
// exchange-layer routing must stay strictly below that.
//
// stdout carries machine-readable JSON in the BENCH_alltoall.json schema
// (extra keys: "messages" = max per-rank payload messages, "levels"):
//   ./bench_multilevel > BENCH_multilevel.json
// `--smoke` shrinks the sweep so CI can keep the code path green.
#include <cstring>
#include <string>
#include <vector>

#include "benchutil.hpp"
#include "sort/multilevel_sort.hpp"
#include "sort/workload.hpp"

namespace {

benchutil::JsonRows rows;

void EmitRow(const char* backend, int p, long long count,
             const benchutil::Measurement& m, long long messages,
             int levels) {
  rows.Row("multilevel_sort", backend, p, count, m,
           "\"messages\": " + std::to_string(messages) +
               ", \"levels\": " + std::to_string(levels));
}

void Sweep(int p, int quota, int k, int reps) {
  mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = p});
  rt.Run([&](mpisim::Comm& world) {
    for (auto mode : {jsort::exchange::Mode::kAlltoallv,
                      jsort::exchange::Mode::kSparse,
                      jsort::exchange::Mode::kAuto}) {
      jsort::MultilevelConfig cfg;
      cfg.k = k;
      cfg.exchange_mode = mode;
      double local_msgs = 0.0;
      int levels = 0;
      const auto m = benchutil::MeasureOnRanks(world, reps, [&] {
        rbc::Comm rw;
        rbc::Create_RBC_Comm(world, &rw);
        auto tr = jsort::MakeRbcTransport(rw);
        auto input = jsort::GenerateInput(jsort::InputKind::kUniform,
                                          world.Rank(), p, quota, 7);
        jsort::MultilevelStats stats;
        jsort::MultilevelSampleSort(tr, std::move(input), cfg, &stats);
        local_msgs = static_cast<double>(stats.messages_sent);
        levels = stats.levels;
      });
      double max_msgs = 0.0;
      mpisim::Allreduce(&local_msgs, &max_msgs, 1,
                        mpisim::Datatype::kFloat64, mpisim::ReduceOp::kMax,
                        world);
      if (world.Rank() == 0) {
        EmitRow(benchutil::ModeName(mode), p, quota, m,
                static_cast<long long>(max_msgs), levels);
      }
    }
  });
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const int reps = smoke ? 1 : 3;
  if (smoke) {
    Sweep(8, 32, 4, reps);
  } else {
    for (int p : {8, 16, 32}) {
      for (int quota : {64, 1024}) Sweep(p, quota, 4, reps);
    }
  }
  rows.Close();
  return 0;
}
