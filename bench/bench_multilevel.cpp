// Multilevel sample sort over the exchange layer: vtime/wall per delivery
// mode plus the maximum per-rank payload-message count of the whole sort
// (from MultilevelStats) -- the startup-cost story of the AMS-style
// group-wise exchange. The seed implementation paid one startup per piece
// per level (k * levels per rank, empty and self pieces included); the
// exchange-layer routing must stay strictly below that (the manifest
// assertion `messages < k * levels` CI gates on the sparse rows). Extra
// row fields: `messages` = max per-rank payload messages, `levels`, `k`.
#include <cstdint>
#include <vector>

#include "harness.hpp"
#include "sort/multilevel_sort.hpp"
#include "sort/workload.hpp"

namespace {

void SweepAt(benchutil::BenchContext& ctx, int p, int quota, int k,
             int reps) {
  mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = p});
  rt.Run([&](mpisim::Comm& world) {
    for (auto mode : {jsort::exchange::Mode::kAlltoallv,
                      jsort::exchange::Mode::kSparse,
                      jsort::exchange::Mode::kAuto}) {
      jsort::MultilevelConfig cfg;
      cfg.k = k;
      cfg.exchange_mode = mode;
      double local_msgs = 0.0;
      int levels = 0;
      const auto m = benchutil::MeasureOnRanks(world, reps, [&] {
        rbc::Comm rw;
        rbc::Create_RBC_Comm(world, &rw);
        auto tr = jsort::MakeRbcTransport(rw);
        auto input = jsort::GenerateInput(jsort::InputKind::kUniform,
                                          world.Rank(), p, quota, 7);
        jsort::MultilevelStats stats;
        jsort::MultilevelSampleSort(tr, std::move(input), cfg, &stats);
        local_msgs = static_cast<double>(stats.messages_sent);
        levels = stats.levels;
      });
      double max_msgs = 0.0;
      mpisim::Allreduce(&local_msgs, &max_msgs, 1,
                        mpisim::Datatype::kFloat64, mpisim::ReduceOp::kMax,
                        world);
      if (world.Rank() == 0) {
        ctx.Row("multilevel_sort", benchutil::ModeName(mode), p, quota, m,
                {{"messages", static_cast<std::int64_t>(max_msgs)},
                 {"levels", levels},
                 {"k", k}});
      }
    }
  });
}

void RunMultilevel(benchutil::BenchContext& ctx) {
  const int reps = ctx.reps(3);
  if (ctx.smoke()) {
    SweepAt(ctx, 8, 32, 4, reps);
  } else {
    for (int p : {8, 16, 32}) {
      for (int quota : {64, 1024}) SweepAt(ctx, p, quota, 4, reps);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::BenchSpec spec;
  spec.binary = "bench_multilevel";
  spec.figure = "Section IV (AMS-style multilevel exchange)";
  spec.description =
      "multilevel sample sort per delivery mode with per-rank payload "
      "message counts";
  spec.default_p = 32;
  spec.default_reps = 3;
  spec.sections = {
      {"multilevel", "mode sweep over p and n/p", RunMultilevel}};
  return benchutil::BenchMain(argc, argv, spec);
}
