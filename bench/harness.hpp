// The benchmark driver subsystem shared by every bench_* binary.
//
// Each binary declares one BenchSpec -- which paper figure/section it
// reproduces, its primary process count, its canonical repetition count,
// and a list of named sections -- and hands control to BenchMain, which
// owns everything that used to be duplicated per binary:
//
//  * CLI parsing: --smoke, --reps N, --seed N, --json <path>, --list,
//    --filter <substr>, --help;
//  * row emission: every row a section declares goes exactly once to the
//    human-readable table (stderr) and once to the machine-readable JSON
//    document (stdout, or the --json path);
//  * the metadata header object (binary, figure, p, reps, smoke flag,
//    git describe baked in at configure time, schema version);
//  * JSON escaping and a final self-validation pass over the rendered
//    document before anything is written.
//
// The JSON document is the BENCH_*.json schema v2 that
// tools/validate_bench.py gates CI on:
//
//   {
//     "meta": {"binary": ..., "figure": ..., "p": ..., "reps": ...,
//              "smoke": ..., "seed": ..., "git_describe": ...,
//              "schema_version": 2},
//     "rows": [
//       {"bench": ..., "backend": ..., "p": ..., "count": ...,
//        "vtime": ..., "wall_ms": ..., <per-bench extra fields>},
//       ...
//     ]
//   }
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "benchutil.hpp"

namespace benchutil {

/// One typed extra field of a row. The harness renders (and escapes) the
/// value itself, so benchmarks never hand-assemble JSON fragments.
struct Field {
  enum class Kind { kInt, kDouble, kString, kBool };

  // int/long/long long (rather than the fixed-width aliases) keeps the
  // overload set free of duplicates on every data model: std::int64_t is
  // long on LP64 Linux but long long on macOS/LLP64.
  Field(std::string k, int v)
      : key(std::move(k)), kind(Kind::kInt), i(v) {}
  Field(std::string k, long v)
      : key(std::move(k)), kind(Kind::kInt), i(v) {}
  Field(std::string k, long long v)
      : key(std::move(k)), kind(Kind::kInt), i(v) {}
  Field(std::string k, double v)
      : key(std::move(k)), kind(Kind::kDouble), d(v) {}
  Field(std::string k, std::string v)
      : key(std::move(k)), kind(Kind::kString), s(std::move(v)) {}
  Field(std::string k, const char* v)
      : key(std::move(k)), kind(Kind::kString), s(v) {}
  Field(std::string k, bool v)
      : key(std::move(k)), kind(Kind::kBool), b(v) {}

  std::string key;
  Kind kind;
  std::int64_t i = 0;
  double d = 0.0;
  std::string s;
  bool b = false;
};

/// The metadata header object of one benchmark run.
struct BenchMeta {
  std::string binary;        // e.g. "bench_fig4_iscan"
  std::string figure;        // paper figure/section this reproduces
  int p = 0;                 // primary process count of the full sweep
  int reps = 0;              // effective default repetition count
  bool smoke = false;
  long long seed = 0;        // effective randomization seed of the run
  std::string git_describe;  // configure-time `git describe` of the tree
  /// --cost-model overrides in command-line order, pinned into the JSON
  /// meta as a "cost_model" object (omitted when empty) so a committed
  /// snapshot records the exact model it was measured under.
  std::vector<std::pair<std::string, double>> cost_model;
};

/// Accumulates declared rows and renders them to the two outputs. Pure
/// (no I/O, no globals), so the unit tests can drive it directly.
class BenchReport {
 public:
  explicit BenchReport(BenchMeta meta) : meta_(std::move(meta)) {}

  struct RowData {
    std::string bench;
    std::string backend;
    int p = 0;
    long long count = 0;
    Measurement m;
    std::vector<Field> extras;
  };

  void Row(std::string bench, std::string backend, int p, long long count,
           const Measurement& m, std::vector<Field> extras = {});

  /// Renders the schema-v2 JSON document. Aborts (assert-style, via
  /// std::abort after a diagnostic) if the rendered text fails ValidJson
  /// -- the harness never emits malformed output.
  std::string RenderJson() const;

  /// Renders the human-readable table: one header per bench-name group,
  /// extras appended as key=value.
  std::string RenderTable() const;

  const BenchMeta& meta() const { return meta_; }
  const std::vector<RowData>& rows() const { return rows_; }

  /// JSON string escaping (backslash, quote, control characters).
  static std::string EscapeJson(std::string_view raw);

  /// Renders a double as a JSON number; non-finite values (which JSON
  /// cannot represent) become null.
  static std::string JsonNumber(double v);

  /// Minimal complete JSON syntax checker (objects, arrays, strings,
  /// numbers, true/false/null). Used as the self-validation pass and by
  /// the harness unit tests.
  static bool ValidJson(std::string_view text);

 private:
  BenchMeta meta_;
  std::vector<RowData> rows_;
};

/// Per-section view handed to the benchmark body.
class BenchContext {
 public:
  BenchContext(BenchReport& report, bool smoke, int cli_reps,
               long long seed = 0, mpisim::CostModel cost = {})
      : report_(report),
        smoke_(smoke),
        cli_reps_(cli_reps),
        seed_(seed),
        cost_(cost) {}

  bool smoke() const { return smoke_; }

  /// The run's cost model: defaults plus the --cost-model CLI overrides.
  /// Sections that build their own mpisim::Runtime should seed
  /// Options.cost from this so the recorded meta matches the simulation.
  const mpisim::CostModel& cost() const { return cost_; }

  /// Repetition count resolution: an explicit --reps wins; otherwise
  /// smoke mode collapses to 1; otherwise the section's full default.
  int reps(int full_default) const {
    if (cli_reps_ > 0) return cli_reps_;
    return smoke_ ? 1 : full_default;
  }

  /// Seed of this run: --seed N if given, else the spec's default_seed.
  /// Randomized benchmarks (service arrivals, skew sweeps) must draw all
  /// their randomness from it, so a run is reproducible from the command
  /// line recorded in the JSON meta header.
  long long seed() const { return seed_; }

  void Row(std::string bench, std::string backend, int p, long long count,
           const Measurement& m, std::vector<Field> extras = {}) {
    report_.Row(std::move(bench), std::move(backend), p, count, m,
                std::move(extras));
  }

 private:
  BenchReport& report_;
  bool smoke_;
  int cli_reps_;
  long long seed_;
  mpisim::CostModel cost_;
};

/// One named, filterable unit of a benchmark binary.
struct BenchSection {
  std::string name;
  std::string description;
  std::function<void(BenchContext&)> run;
};

/// The static declaration of one benchmark binary.
struct BenchSpec {
  std::string binary;
  std::string figure;
  std::string description;
  int default_p = 0;     // primary process count (meta only)
  int default_reps = 3;  // canonical full-run repetitions (meta + reps())
  long long default_seed = 0x5EED;  // canonical randomization seed
  std::vector<BenchSection> sections;
};

/// Parsed command line of a benchmark binary.
struct BenchOptions {
  bool smoke = false;
  bool list = false;
  bool help = false;
  int reps = 0;           // 0 = use defaults
  long long seed = -1;    // < 0 = use the spec's default_seed
  std::string filter;     // substring match on section names
  std::string json_path;  // empty = stdout
  /// --cost-model k=v,... overrides (alpha, beta, intra_alpha,
  /// intra_beta, inter_alpha, inter_beta), in command-line order.
  std::vector<std::pair<std::string, double>> cost_model;
  std::string error;      // non-empty = malformed command line
};

/// Applies one --cost-model override to `cost`. Returns false on an
/// unknown key. The two-level keys make the model hierarchical
/// (mpisim::CostModel::Hierarchical()).
bool ApplyCostModelOverride(mpisim::CostModel* cost, std::string_view key,
                            double value);

/// The effective cost model of a run: defaults plus every --cost-model
/// override, in order.
mpisim::CostModel CostModelOf(
    const std::vector<std::pair<std::string, double>>& overrides);

/// Parses argv. Exposed separately for the unit tests.
BenchOptions ParseBenchOptions(int argc, char** argv);

/// Runs the benchmark binary: parse options, run the matching sections,
/// write the table to stderr and the validated JSON document to stdout or
/// the --json path. Returns the process exit code.
int BenchMain(int argc, char** argv, const BenchSpec& spec);

}  // namespace benchutil
