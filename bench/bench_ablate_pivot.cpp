// Ablation: pivot policy (Section VIII-A). Random-element pivots are
// cheap (one pair-reduce) but split badly; median-of-samples pivots cost a
// gather but keep the recursion shallow (the `levels` row field = maximum
// distributed recursion depth over ranks). A second section contrasts
// JQuick's perfect output balance with hypercube quicksort's drift on a
// zipf input (`min_count`/`max_count` row fields; JQuick must report
// min_count == max_count).
#include <string>
#include <vector>

#include "harness.hpp"
#include "sort/checks.hpp"
#include "sort/hypercube_qs.hpp"
#include "sort/jquick.hpp"
#include "sort/workload.hpp"

namespace {

struct Result {
  benchutil::Measurement m;
  int levels = 0;
};

Result MeasureJQuick(mpisim::Comm& world, jsort::PivotPolicy policy,
                     jsort::InputKind kind, int quota, int reps) {
  jsort::JQuickConfig cfg;
  cfg.pivot = policy;
  Result res;
  res.m = benchutil::MeasureOnRanks(world, reps, [&] {
    auto input = jsort::GenerateInput(kind, world.Rank(), world.Size(),
                                      quota, 23);
    rbc::Comm rw;
    rbc::Create_RBC_Comm(world, &rw);
    auto tr = jsort::MakeRbcTransport(rw);
    jsort::JQuickStats stats;
    jsort::JQuickSort(tr, std::move(input), cfg, &stats);
    int local_levels = stats.distributed_levels;
    int max_levels = 0;
    mpisim::Allreduce(&local_levels, &max_levels, 1, mpisim::Datatype::kInt32,
                      mpisim::ReduceOp::kMax, world);
    res.levels = max_levels;
  });
  return res;
}

void RunPivot(benchutil::BenchContext& ctx) {
  const int ranks = ctx.smoke() ? 16 : 64;
  const int quota = ctx.smoke() ? 64 : 256;
  const int reps = ctx.reps(3);
  mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = ranks});
  rt.Run([&](mpisim::Comm& world) {
    for (auto kind :
         {jsort::InputKind::kUniform, jsort::InputKind::kGaussian,
          jsort::InputKind::kZipf, jsort::InputKind::kSortedDesc}) {
      const Result med = MeasureJQuick(
          world, jsort::PivotPolicy::kMedianOfSamples, kind, quota, reps);
      const Result rnd = MeasureJQuick(
          world, jsort::PivotPolicy::kRandomElement, kind, quota, reps);
      if (world.Rank() == 0) {
        const std::string input(jsort::InputKindName(kind));
        ctx.Row("ablate_pivot", "median_of_samples", ranks, quota, med.m,
                {{"input", input}, {"levels", med.levels}});
        ctx.Row("ablate_pivot", "random_element", ranks, quota, rnd.m,
                {{"input", input}, {"levels", rnd.levels}});
      }
    }
  });
}

void RunBalance(benchutil::BenchContext& ctx) {
  const int ranks = ctx.smoke() ? 16 : 64;
  const int quota = ctx.smoke() ? 64 : 256;
  mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = ranks});
  rt.Run([&](mpisim::Comm& world) {
    rbc::Comm rw;
    rbc::Create_RBC_Comm(world, &rw);
    auto measure = [&](bool jquick) {
      auto input = jsort::GenerateInput(jsort::InputKind::kZipf, world.Rank(),
                                        world.Size(), quota, 29);
      auto tr = jsort::MakeRbcTransport(rw);
      benchutil::Measurement m{};
      const auto out = jquick ? jsort::JQuickSort(tr, std::move(input))
                              : jsort::HypercubeQuicksort(tr, std::move(input));
      const auto bal = jsort::GlobalBalance(out, rw);
      if (world.Rank() == 0) {
        ctx.Row("ablate_balance", jquick ? "jquick" : "hypercube", ranks,
                quota, m,
                {{"min_count", static_cast<std::int64_t>(bal.min_count)},
                 {"max_count", static_cast<std::int64_t>(bal.max_count)}});
      }
    };
    measure(/*jquick=*/true);
    measure(/*jquick=*/false);
  });
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::BenchSpec spec;
  spec.binary = "bench_ablate_pivot";
  spec.figure = "Section VIII-A";
  spec.description =
      "pivot-policy ablation (median-of-samples vs random element) plus the "
      "JQuick-vs-hypercube balance contrast on zipf input";
  spec.default_p = 64;
  spec.default_reps = 3;
  spec.sections = {
      {"pivot", "vtime and recursion depth per pivot policy and input",
       RunPivot},
      {"balance", "output balance contrast on a zipf input", RunBalance}};
  return benchutil::BenchMain(argc, argv, spec);
}
