// Ablation: pivot policy (Section VIII-A). Random-element pivots are
// cheap (one pair-reduce) but split badly; median-of-samples pivots cost a
// gather but keep the recursion shallow. Also contrasts JQuick's perfect
// balance with hypercube quicksort's drift on skewed inputs.
#include <cstdio>
#include <vector>

#include "benchutil.hpp"
#include "sort/checks.hpp"
#include "sort/hypercube_qs.hpp"
#include "sort/jquick.hpp"
#include "sort/workload.hpp"

namespace {

constexpr int kRanks = 64;
constexpr int kReps = 3;
constexpr int kQuota = 256;

struct Result {
  double vtime = 0.0;
  int levels = 0;
};

Result MeasureJQuick(mpisim::Comm& world, jsort::PivotPolicy policy,
                     jsort::InputKind kind) {
  jsort::JQuickConfig cfg;
  cfg.pivot = policy;
  Result res;
  const auto m = benchutil::MeasureOnRanks(world, kReps, [&] {
    auto input = jsort::GenerateInput(kind, world.Rank(), world.Size(),
                                      kQuota, 23);
    rbc::Comm rw;
    rbc::Create_RBC_Comm(world, &rw);
    auto tr = jsort::MakeRbcTransport(rw);
    jsort::JQuickStats stats;
    jsort::JQuickSort(tr, std::move(input), cfg, &stats);
    int local_levels = stats.distributed_levels;
    int max_levels = 0;
    mpisim::Allreduce(&local_levels, &max_levels, 1,
                      mpisim::Datatype::kInt32, mpisim::ReduceOp::kMax,
                      world);
    res.levels = max_levels;
  });
  res.vtime = m.vtime;
  return res;
}

}  // namespace

int main() {
  std::printf(
      "# Ablation: pivot policy, p=%d, n/p=%d (median of %d)\n"
      "# levels = max distributed recursion depth over ranks\n",
      kRanks, kQuota, kReps);
  benchutil::PrintRowHeader({"input", "median.vt", "median.lv", "random.vt",
                             "random.lv"});
  mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = kRanks});
  rt.Run([](mpisim::Comm& world) {
    for (auto kind :
         {jsort::InputKind::kUniform, jsort::InputKind::kGaussian,
          jsort::InputKind::kZipf, jsort::InputKind::kSortedDesc}) {
      const Result med = MeasureJQuick(
          world, jsort::PivotPolicy::kMedianOfSamples, kind);
      const Result rnd = MeasureJQuick(
          world, jsort::PivotPolicy::kRandomElement, kind);
      if (world.Rank() == 0) {
        benchutil::PrintCell(std::string(jsort::InputKindName(kind)));
        benchutil::PrintCell(med.vtime);
        benchutil::PrintCell(static_cast<double>(med.levels));
        benchutil::PrintCell(rnd.vtime);
        benchutil::PrintCell(static_cast<double>(rnd.levels));
        benchutil::EndRow();
      }
    }

    // Balance contrast on a skewed input (Section IV's motivation).
    rbc::Comm rw;
    rbc::Create_RBC_Comm(world, &rw);
    {
      auto input = jsort::GenerateInput(jsort::InputKind::kZipf,
                                        world.Rank(), world.Size(), kQuota,
                                        29);
      auto tr = jsort::MakeRbcTransport(rw);
      const auto out = jsort::JQuickSort(tr, std::move(input));
      const auto bal = jsort::GlobalBalance(out, rw);
      if (world.Rank() == 0) {
        std::printf(
            "\n# JQuick balance on zipf input: min=%lld max=%lld "
            "(perfectly balanced)\n",
            static_cast<long long>(bal.min_count),
            static_cast<long long>(bal.max_count));
      }
    }
    {
      auto input = jsort::GenerateInput(jsort::InputKind::kZipf,
                                        world.Rank(), world.Size(), kQuota,
                                        29);
      auto tr = jsort::MakeRbcTransport(rw);
      const auto out = jsort::HypercubeQuicksort(tr, std::move(input));
      const auto bal = jsort::GlobalBalance(out, rw);
      if (world.Rank() == 0) {
        std::printf(
            "# Hypercube balance on zipf input: min=%lld max=%lld "
            "(imbalance JQuick avoids)\n",
            static_cast<long long>(bal.min_count),
            static_cast<long long>(bal.max_count));
      }
    }
  });
  return 0;
}
