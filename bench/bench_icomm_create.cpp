// Section VI ablation: the proposed MPI_Icomm_create_group against the
// blocking MPI_Comm_create_group and RBC's Split_RBC_Comm.
//
//  * icomm_range:   contiguous range + tuple-carrying parent -> purely
//                   local, O(1) (matches RBC's cost while keeping full MPI
//                   context isolation); vtime must stay 0;
//  * icomm_general: non-contiguous group -> one nonblocking broadcast,
//                   O(alpha log g);
//  * create_group:  blocking mask agreement + O(g) construction.
#include <array>
#include <vector>

#include "harness.hpp"
#include "rbc/rbc.hpp"

namespace {

void RunCreate(benchutil::BenchContext& ctx) {
  const int reps = ctx.reps(5);
  const int max_p = ctx.smoke() ? 16 : 256;
  for (int p = 8; p <= max_p; p *= 2) {
    mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = p});
    rt.Run([&, p](mpisim::Comm& world) {
      rbc::Comm rw;
      rbc::Create_RBC_Comm(world, &rw);
      const int half = p / 2;
      const bool low = world.Rank() < half;
      const mpisim::RankRange half_range =
          low ? mpisim::RankRange{0, half - 1, 1}
              : mpisim::RankRange{half, p - 1, 1};

      const auto rbc_m = benchutil::MeasureOnRanks(world, reps, [&] {
        rbc::Comm sub;
        rbc::Split_RBC_Comm(rw, low ? 0 : half, low ? half - 1 : p - 1, &sub);
      });

      const auto icomm_range = benchutil::MeasureOnRanks(world, reps, [&] {
        const std::array<mpisim::RankRange, 1> rr{half_range};
        mpisim::Comm sub;
        mpisim::Request req = mpisim::IcommCreateGroup(
            world, mpisim::GroupRangeIncl(world, rr), /*tag=*/3, &sub);
        mpisim::Wait(req);
      });

      // Non-contiguous: my parity class -- forces the broadcast path.
      std::vector<int> members;
      for (int r = world.Rank() % 2; r < p; r += 2) members.push_back(r);
      const auto icomm_general = benchutil::MeasureOnRanks(world, reps, [&] {
        mpisim::Comm sub;
        mpisim::Request req = mpisim::IcommCreateGroup(
            world, mpisim::GroupIncl(world, members),
            /*tag=*/4 + world.Rank() % 2, &sub);
        mpisim::Wait(req);
      });

      const auto blocking = benchutil::MeasureOnRanks(world, reps, [&] {
        const std::array<mpisim::RankRange, 1> rr{half_range};
        mpisim::Comm sub = mpisim::CommCreateGroup(
            world, mpisim::GroupRangeIncl(world, rr), /*tag=*/5);
      });

      if (world.Rank() == 0) {
        ctx.Row("icomm_create", "rbc", p, half, rbc_m);
        ctx.Row("icomm_create", "icomm_range", p, half, icomm_range);
        ctx.Row("icomm_create", "icomm_general", p, half, icomm_general);
        ctx.Row("icomm_create", "create_group", p, half, blocking);
      }
    });
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::BenchSpec spec;
  spec.binary = "bench_icomm_create";
  spec.figure = "Section VI";
  spec.description =
      "nonblocking communicator creation: Icomm_create_group (range and "
      "general groups) vs blocking create_group vs RBC split";
  spec.default_p = 256;
  spec.default_reps = 5;
  spec.sections = {
      {"create", "half-range and parity-class creation sweep over p",
       RunCreate}};
  return benchutil::BenchMain(argc, argv, spec);
}
