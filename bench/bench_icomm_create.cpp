// Section VI ablation: the proposed MPI_Icomm_create_group against the
// blocking MPI_Comm_create_group and RBC's Split_RBC_Comm.
//
//  * contiguous range + tuple-carrying parent -> purely local, O(1)
//    (matches RBC's cost while keeping full MPI context isolation);
//  * non-contiguous group -> one nonblocking broadcast, O(alpha log g);
//  * blocking create_group -> mask agreement + O(g) construction.
#include <cstdio>
#include <numeric>
#include <vector>

#include "benchutil.hpp"
#include "rbc/rbc.hpp"

namespace {

constexpr int kReps = 5;

}  // namespace

int main() {
  std::printf(
      "# Section VI: nonblocking communicator creation (median of %d)\n",
      kReps);
  benchutil::PrintRowHeader({"p", "RBC.vt", "Icomm.range.vt",
                             "Icomm.general.vt", "CreateGroup.vt"});
  for (int p = 8; p <= 256; p *= 2) {
    mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = p});
    rt.Run([p](mpisim::Comm& world) {
      rbc::Comm rw;
      rbc::Create_RBC_Comm(world, &rw);
      const int half = p / 2;
      const bool low = world.Rank() < half;
      const mpisim::RankRange half_range =
          low ? mpisim::RankRange{0, half - 1, 1}
              : mpisim::RankRange{half, p - 1, 1};

      const auto rbc_m = benchutil::MeasureOnRanks(world, kReps, [&] {
        rbc::Comm sub;
        rbc::Split_RBC_Comm(rw, low ? 0 : half, low ? half - 1 : p - 1, &sub);
      });

      const auto icomm_range = benchutil::MeasureOnRanks(world, kReps, [&] {
        const std::array<mpisim::RankRange, 1> rr{half_range};
        mpisim::Comm sub;
        mpisim::Request req = mpisim::IcommCreateGroup(
            world, mpisim::GroupRangeIncl(world, rr), /*tag=*/3, &sub);
        mpisim::Wait(req);
      });

      // Non-contiguous: my parity class -- forces the broadcast path.
      std::vector<int> members;
      for (int r = world.Rank() % 2; r < p; r += 2) members.push_back(r);
      const auto icomm_general = benchutil::MeasureOnRanks(world, kReps, [&] {
        mpisim::Comm sub;
        mpisim::Request req = mpisim::IcommCreateGroup(
            world, mpisim::GroupIncl(world, members),
            /*tag=*/4 + world.Rank() % 2, &sub);
        mpisim::Wait(req);
      });

      const auto blocking = benchutil::MeasureOnRanks(world, kReps, [&] {
        const std::array<mpisim::RankRange, 1> rr{half_range};
        mpisim::Comm sub = mpisim::CommCreateGroup(
            world, mpisim::GroupRangeIncl(world, rr), /*tag=*/5);
      });

      if (world.Rank() == 0) {
        benchutil::PrintCell(static_cast<double>(p));
        benchutil::PrintCell(rbc_m.vtime);
        benchutil::PrintCell(icomm_range.vtime);
        benchutil::PrintCell(icomm_general.vtime);
        benchutil::PrintCell(blocking.vtime);
        benchutil::EndRow();
      }
    });
  }
  std::printf(
      "\n# Shape check: RBC and Icomm.range stay at 0 for every p; "
      "Icomm.general grows\n# logarithmically (one tuple broadcast); "
      "CreateGroup grows linearly in p.\n");
  return 0;
}
