// Figure 8: Janus Quicksort with RBC communicators vs native MPI
// communicators, sweeping n/p on a fixed process count (uniform doubles).
// Both use the alternating split schedule, as in the paper; a cascaded
// native-MPI row is added because Section VIII-C reports that cascades
// slow the native version by further orders of magnitude while leaving
// RBC unchanged.
//
// Paper shape: for n/p = 1 RBC wins 3.5..17x; for moderate inputs
// (n/p <= 2^10) the gap peaks (factor >1000 vs IBM MPI); for large inputs
// the curves converge as data movement dominates communicator creation.
#include <cstdio>
#include <vector>

#include "benchutil.hpp"
#include "sort/jquick.hpp"
#include "sort/workload.hpp"

namespace {

constexpr int kRanks = 64;
constexpr int kReps = 3;
constexpr int kMaxLog = 14;

enum class Backend { kRbc, kMpi };

double MeasureSort(mpisim::Comm& world, Backend backend, int quota,
                   jsort::SplitSchedule schedule, double* wall_ms) {
  jsort::JQuickConfig cfg;
  cfg.schedule = schedule;
  benchutil::Measurement m = benchutil::MeasureOnRanks(world, kReps, [&] {
    auto input = jsort::GenerateInput(jsort::InputKind::kUniform,
                                      world.Rank(), world.Size(), quota, 7);
    std::shared_ptr<jsort::Transport> tr;
    if (backend == Backend::kRbc) {
      rbc::Comm rw;
      rbc::Create_RBC_Comm(world, &rw);
      tr = jsort::MakeRbcTransport(rw);
    } else {
      tr = jsort::MakeMpiTransport(world);
    }
    jsort::JQuickSort(tr, std::move(input), cfg);
  });
  if (wall_ms != nullptr) *wall_ms = m.wall_ms;
  return m.vtime;
}

}  // namespace

int main() {
  std::printf(
      "# Figure 8: JQuick on p=%d ranks, uniform doubles, median of %d\n"
      "# MPIslow = native transport on the slow-create_group vendor "
      "profile (the 'IBM MPI' column)\n",
      kRanks, kReps);
  benchutil::PrintRowHeader({"n/p", "RBC.vt", "MPI.alt.vt", "MPI.casc.vt",
                             "MPIslow.vt", "MPIalt/RBC", "MPIslow/RBC"});
  std::vector<double> rbc_vts, alt_vts, casc_vts, slow_vts;
  {
    mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = kRanks});
    rt.Run([&](mpisim::Comm& world) {
      for (int lg = 0; lg <= kMaxLog; lg += 2) {
        const int quota = 1 << lg;
        const double rbc_vt = MeasureSort(
            world, Backend::kRbc, quota, jsort::SplitSchedule::kAlternating,
            nullptr);
        const double mpi_alt = MeasureSort(
            world, Backend::kMpi, quota, jsort::SplitSchedule::kAlternating,
            nullptr);
        const double mpi_casc = MeasureSort(
            world, Backend::kMpi, quota, jsort::SplitSchedule::kCascaded,
            nullptr);
        if (world.Rank() == 0) {
          rbc_vts.push_back(rbc_vt);
          alt_vts.push_back(mpi_alt);
          casc_vts.push_back(mpi_casc);
        }
      }
    });
  }
  {
    mpisim::Runtime rt(mpisim::Runtime::Options{
        .num_ranks = kRanks,
        .profile = mpisim::VendorProfile::kSlowCreateGroup});
    rt.Run([&](mpisim::Comm& world) {
      for (int lg = 0; lg <= kMaxLog; lg += 2) {
        const int quota = 1 << lg;
        const double v = MeasureSort(
            world, Backend::kMpi, quota, jsort::SplitSchedule::kAlternating,
            nullptr);
        if (world.Rank() == 0) slow_vts.push_back(v);
      }
    });
  }
  std::size_t row = 0;
  for (int lg = 0; lg <= kMaxLog; lg += 2, ++row) {
    benchutil::PrintCell(static_cast<double>(1 << lg));
    benchutil::PrintCell(rbc_vts[row]);
    benchutil::PrintCell(alt_vts[row]);
    benchutil::PrintCell(casc_vts[row]);
    benchutil::PrintCell(slow_vts[row]);
    benchutil::PrintCell(alt_vts[row] / std::max(rbc_vts[row], 1e-9));
    benchutil::PrintCell(slow_vts[row] / std::max(rbc_vts[row], 1e-9));
    benchutil::EndRow();
  }
  std::printf(
      "\n# Shape check: every MPI/RBC ratio is largest for small n/p "
      "(communicator creation\n# dominates) and decays toward 1 for large "
      "n/p; MPI.casc >= MPI.alt; the slow vendor\n# profile multiplies the "
      "gap by another order of magnitude, as with IBM MPI in the paper.\n");
  return 0;
}
