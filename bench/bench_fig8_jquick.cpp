// Figure 8: Janus Quicksort with RBC communicators vs native MPI
// communicators, sweeping n/p on a fixed process count (uniform doubles).
// Both use the alternating split schedule, as in the paper; a cascaded
// native-MPI row is added because Section VIII-C reports that cascades
// slow the native version by further orders of magnitude while leaving
// RBC unchanged.
//
// Paper shape: for n/p = 1 RBC wins 3.5..17x; for moderate inputs
// (n/p <= 2^10) the gap peaks (factor >1000 vs IBM MPI); for large inputs
// the curves converge as data movement dominates communicator creation.
//
// stdout carries machine-readable JSON in the BENCH_alltoall.json schema
// (one measurement object per backend and n/p):
//   ./bench_fig8_jquick > BENCH_fig8.json
// The human-readable shape table goes to stderr. `--smoke` shrinks the
// sweep (8 ranks, tiny quotas) so CI can keep the code path green.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "benchutil.hpp"
#include "sort/jquick.hpp"
#include "sort/workload.hpp"

namespace {

enum class Backend { kRbc, kMpi };

benchutil::JsonRows rows;

void EmitRow(const char* backend, int p, long long count,
             double vtime, double wall_ms) {
  rows.Row("fig8_jquick", backend, p, count,
           benchutil::Measurement{wall_ms, vtime});
}

double MeasureSort(mpisim::Comm& world, Backend backend, int quota,
                   jsort::SplitSchedule schedule, int reps,
                   double* wall_ms) {
  jsort::JQuickConfig cfg;
  cfg.schedule = schedule;
  benchutil::Measurement m = benchutil::MeasureOnRanks(world, reps, [&] {
    auto input = jsort::GenerateInput(jsort::InputKind::kUniform,
                                      world.Rank(), world.Size(), quota, 7);
    std::shared_ptr<jsort::Transport> tr;
    if (backend == Backend::kRbc) {
      rbc::Comm rw;
      rbc::Create_RBC_Comm(world, &rw);
      tr = jsort::MakeRbcTransport(rw);
    } else {
      tr = jsort::MakeMpiTransport(world);
    }
    jsort::JQuickSort(tr, std::move(input), cfg);
  });
  if (wall_ms != nullptr) *wall_ms = m.wall_ms;
  return m.vtime;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const int ranks = smoke ? 8 : 64;
  const int reps = smoke ? 1 : 3;
  const int max_log = smoke ? 4 : 14;

  std::fprintf(stderr,
               "# Figure 8: JQuick on p=%d ranks, uniform doubles, median "
               "of %d\n# MPIslow = native transport on the "
               "slow-create_group vendor profile (the 'IBM MPI' column)\n",
               ranks, reps);
  std::vector<double> rbc_vts, alt_vts, casc_vts, slow_vts;
  std::vector<double> rbc_walls, alt_walls, casc_walls, slow_walls;
  {
    mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = ranks});
    rt.Run([&](mpisim::Comm& world) {
      for (int lg = 0; lg <= max_log; lg += 2) {
        const int quota = 1 << lg;
        double wall = 0.0;
        const double rbc_vt = MeasureSort(
            world, Backend::kRbc, quota, jsort::SplitSchedule::kAlternating,
            reps, &wall);
        double alt_wall = 0.0;
        const double mpi_alt = MeasureSort(
            world, Backend::kMpi, quota, jsort::SplitSchedule::kAlternating,
            reps, &alt_wall);
        double casc_wall = 0.0;
        const double mpi_casc = MeasureSort(
            world, Backend::kMpi, quota, jsort::SplitSchedule::kCascaded,
            reps, &casc_wall);
        if (world.Rank() == 0) {
          rbc_vts.push_back(rbc_vt);
          rbc_walls.push_back(wall);
          alt_vts.push_back(mpi_alt);
          alt_walls.push_back(alt_wall);
          casc_vts.push_back(mpi_casc);
          casc_walls.push_back(casc_wall);
        }
      }
    });
  }
  {
    mpisim::Runtime rt(mpisim::Runtime::Options{
        .num_ranks = ranks,
        .profile = mpisim::VendorProfile::kSlowCreateGroup});
    rt.Run([&](mpisim::Comm& world) {
      for (int lg = 0; lg <= max_log; lg += 2) {
        const int quota = 1 << lg;
        double wall = 0.0;
        const double v = MeasureSort(
            world, Backend::kMpi, quota, jsort::SplitSchedule::kAlternating,
            reps, &wall);
        if (world.Rank() == 0) {
          slow_vts.push_back(v);
          slow_walls.push_back(wall);
        }
      }
    });
  }

  std::size_t row = 0;
  for (int lg = 0; lg <= max_log; lg += 2, ++row) {
    const long long quota = 1 << lg;
    EmitRow("rbc", ranks, quota, rbc_vts[row], rbc_walls[row]);
    EmitRow("mpi_alt", ranks, quota, alt_vts[row], alt_walls[row]);
    EmitRow("mpi_casc", ranks, quota, casc_vts[row], casc_walls[row]);
    EmitRow("mpi_slow", ranks, quota, slow_vts[row], slow_walls[row]);
  }
  rows.Close();

  row = 0;
  std::fprintf(stderr, "%16s%16s%16s%16s%16s%16s%16s\n", "n/p", "RBC.vt",
               "MPI.alt.vt", "MPI.casc.vt", "MPIslow.vt", "MPIalt/RBC",
               "MPIslow/RBC");
  for (int lg = 0; lg <= max_log; lg += 2, ++row) {
    std::fprintf(stderr,
                 "%16.4f%16.4f%16.4f%16.4f%16.4f%16.4f%16.4f\n",
                 static_cast<double>(1 << lg), rbc_vts[row], alt_vts[row],
                 casc_vts[row], slow_vts[row],
                 alt_vts[row] / std::max(rbc_vts[row], 1e-9),
                 slow_vts[row] / std::max(rbc_vts[row], 1e-9));
  }
  std::fprintf(
      stderr,
      "\n# Shape check: every MPI/RBC ratio is largest for small n/p "
      "(communicator creation\n# dominates) and decays toward 1 for large "
      "n/p; MPI.casc >= MPI.alt; the slow vendor\n# profile multiplies the "
      "gap by another order of magnitude, as with IBM MPI in the paper.\n");
  return 0;
}
