// Figure 8: Janus Quicksort with RBC communicators vs native MPI
// communicators, sweeping n/p on a fixed process count (uniform doubles).
// Both use the alternating split schedule, as in the paper; a cascaded
// native-MPI backend is added because Section VIII-C reports that
// cascades slow the native version by further orders of magnitude while
// leaving RBC unchanged, and a mpi_slow backend runs the alternating
// schedule on the slow-create_group vendor profile (the paper's "IBM MPI"
// column). Every row carries vtime_ratio_vs_rbc (1.0 on rbc rows).
//
// Paper shape: for n/p = 1 RBC wins 3.5..17x; for moderate inputs
// (n/p <= 2^10) the gap peaks (factor >1000 vs IBM MPI); for large inputs
// the curves converge as data movement dominates communicator creation.
#include <algorithm>
#include <memory>
#include <vector>

#include "harness.hpp"
#include "sort/jquick.hpp"
#include "sort/workload.hpp"

namespace {

using jsort::Backend;

benchutil::Measurement MeasureSort(mpisim::Comm& world, Backend backend,
                                   int quota, jsort::SplitSchedule schedule,
                                   int reps) {
  jsort::JQuickConfig cfg;
  cfg.schedule = schedule;
  return benchutil::MeasureOnRanks(world, reps, [&] {
    auto input = jsort::GenerateInput(jsort::InputKind::kUniform,
                                      world.Rank(), world.Size(), quota, 7);
    std::shared_ptr<jsort::Transport> tr =
        jsort::MakeTransport(backend, world);
    jsort::JQuickSort(tr, std::move(input), cfg);
  });
}

void RunJQuick(benchutil::BenchContext& ctx) {
  const int ranks = ctx.smoke() ? 8 : 64;
  const int reps = ctx.reps(3);
  const int max_log = ctx.smoke() ? 4 : 14;
  const int points = max_log / 2 + 1;
  std::vector<benchutil::Measurement> rbc_ms(points), alt_ms(points),
      casc_ms(points), slow_ms(points);
  {
    mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = ranks});
    rt.Run([&](mpisim::Comm& world) {
      for (int lg = 0; lg <= max_log; lg += 2) {
        const int quota = 1 << lg;
        const auto rbcm = MeasureSort(world, Backend::kRbc, quota,
                                      jsort::SplitSchedule::kAlternating,
                                      reps);
        const auto alt = MeasureSort(world, Backend::kMpi, quota,
                                     jsort::SplitSchedule::kAlternating,
                                     reps);
        const auto casc = MeasureSort(world, Backend::kMpi, quota,
                                      jsort::SplitSchedule::kCascaded, reps);
        if (world.Rank() == 0) {
          rbc_ms[static_cast<std::size_t>(lg / 2)] = rbcm;
          alt_ms[static_cast<std::size_t>(lg / 2)] = alt;
          casc_ms[static_cast<std::size_t>(lg / 2)] = casc;
        }
      }
    });
  }
  {
    mpisim::Runtime rt(mpisim::Runtime::Options{
        .num_ranks = ranks,
        .profile = mpisim::VendorProfile::kSlowCreateGroup});
    rt.Run([&](mpisim::Comm& world) {
      for (int lg = 0; lg <= max_log; lg += 2) {
        const int quota = 1 << lg;
        const auto slow = MeasureSort(world, Backend::kMpi, quota,
                                      jsort::SplitSchedule::kAlternating,
                                      reps);
        if (world.Rank() == 0) {
          slow_ms[static_cast<std::size_t>(lg / 2)] = slow;
        }
      }
    });
  }
  for (int lg = 0; lg <= max_log; lg += 2) {
    const std::size_t i = static_cast<std::size_t>(lg / 2);
    const long long quota = 1 << lg;
    const double denom = std::max(rbc_ms[i].vtime, 1e-9);
    ctx.Row("fig8_jquick", "rbc", ranks, quota, rbc_ms[i],
            {{"vtime_ratio_vs_rbc", 1.0}});
    ctx.Row("fig8_jquick", "mpi_alt", ranks, quota, alt_ms[i],
            {{"vtime_ratio_vs_rbc", alt_ms[i].vtime / denom}});
    ctx.Row("fig8_jquick", "mpi_casc", ranks, quota, casc_ms[i],
            {{"vtime_ratio_vs_rbc", casc_ms[i].vtime / denom}});
    ctx.Row("fig8_jquick", "mpi_slow", ranks, quota, slow_ms[i],
            {{"vtime_ratio_vs_rbc", slow_ms[i].vtime / denom}});
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::BenchSpec spec;
  spec.binary = "bench_fig8_jquick";
  spec.figure = "Figure 8";
  spec.description =
      "JQuick with RBC vs native MPI communicators (alternating/cascaded "
      "schedules, fast/slow vendor profiles) over the n/p sweep";
  spec.default_p = 64;
  spec.default_reps = 3;
  spec.sections = {{"jquick", "n/p sweep over the four backends",
                    RunJQuick}};
  return benchutil::BenchMain(argc, argv, spec);
}
