// Extension bench (Section V-D: "easy to extend ... e.g., for large input
// sizes"): binomial-tree broadcast vs the scatter+ring-allgather large-
// input broadcast. Locates the crossover: the tree costs ~beta*l*log(p)
// bandwidth, the pipeline ~2*beta*l but alpha*(p-1) latency. Every row
// carries vtime_ratio = tree.vtime / pipeline.vtime of its payload (< 1
// below the crossover, approaching log2(p)/2 above it).
#include <algorithm>
#include <vector>

#include "harness.hpp"
#include "rbc/rbc.hpp"

namespace {

void RunBcast(benchutil::BenchContext& ctx) {
  const int ranks = ctx.smoke() ? 16 : 64;
  const int reps = ctx.reps(3);
  const int min_log = 4;
  const int max_log = ctx.smoke() ? 10 : 20;
  mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = ranks});
  rt.Run([&](mpisim::Comm& world) {
    rbc::Comm rw;
    rbc::Create_RBC_Comm(world, &rw);
    for (int lg = min_log; lg <= max_log; lg += 2) {
      const int n = 1 << lg;
      std::vector<double> buf(static_cast<std::size_t>(n), 1.0);
      const auto tree = benchutil::MeasureOnRanks(world, reps, [&] {
        rbc::Bcast(buf.data(), n, rbc::Datatype::kFloat64, 0, rw);
      });
      const auto large = benchutil::MeasureOnRanks(world, reps, [&] {
        rbc::BcastLarge(buf.data(), n, rbc::Datatype::kFloat64, 0, rw);
      });
      if (world.Rank() == 0) {
        const double ratio = tree.vtime / std::max(large.vtime, 1e-9);
        ctx.Row("ext_bcast_large", "tree", ranks, n, tree,
                {{"vtime_ratio", ratio}});
        ctx.Row("ext_bcast_large", "pipeline", ranks, n, large,
                {{"vtime_ratio", ratio}});
      }
    }
  });
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::BenchSpec spec;
  spec.binary = "bench_ext_bcast_large";
  spec.figure = "Section V-D";
  spec.description =
      "binomial-tree vs scatter+ring-allgather broadcast crossover";
  spec.default_p = 64;
  spec.default_reps = 3;
  spec.sections = {
      {"bcast", "payload sweep across the tree/pipeline crossover",
       RunBcast}};
  return benchutil::BenchMain(argc, argv, spec);
}
