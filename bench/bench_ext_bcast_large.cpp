// Extension bench (Section V-D: "easy to extend ... e.g., for large input
// sizes"): binomial-tree broadcast vs the scatter+ring-allgather large-
// input broadcast. Locates the crossover: the tree costs ~beta*l*log(p)
// bandwidth, the pipeline ~2*beta*l but alpha*(p-1) latency.
#include <cstdio>
#include <vector>

#include "benchutil.hpp"
#include "rbc/rbc.hpp"

namespace {

constexpr int kRanks = 64;
constexpr int kReps = 3;

}  // namespace

int main() {
  std::printf(
      "# Extension: tree vs large-input broadcast, p=%d (median of %d)\n",
      kRanks, kReps);
  benchutil::PrintRowHeader(
      {"elements", "tree.vt", "large.vt", "tree/large"});
  mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = kRanks});
  rt.Run([](mpisim::Comm& world) {
    rbc::Comm rw;
    rbc::Create_RBC_Comm(world, &rw);
    for (int lg = 4; lg <= 20; lg += 2) {
      const int n = 1 << lg;
      std::vector<double> buf(static_cast<std::size_t>(n), 1.0);
      const auto tree = benchutil::MeasureOnRanks(world, kReps, [&] {
        rbc::Bcast(buf.data(), n, rbc::Datatype::kFloat64, 0, rw);
      });
      const auto large = benchutil::MeasureOnRanks(world, kReps, [&] {
        rbc::BcastLarge(buf.data(), n, rbc::Datatype::kFloat64, 0, rw);
      });
      if (world.Rank() == 0) {
        benchutil::PrintCell(static_cast<double>(n));
        benchutil::PrintCell(tree.vtime);
        benchutil::PrintCell(large.vtime);
        benchutil::PrintCell(tree.vtime / std::max(large.vtime, 1e-9));
        benchutil::EndRow();
      }
    }
  });
  std::printf(
      "\n# Shape check: ratio < 1 for small payloads (latency-bound), "
      "crosses 1 and\n# approaches log2(p)/2 = 3 for large payloads "
      "(bandwidth-bound).\n");
  return 0;
}
