// Figure 4: running times of nonblocking inclusive scan (Iscan) -- native
// MPI vs rbc::Iscan -- on a fixed process count, sweeping the per-process
// input size n/p over powers of two (doubles).
//
// Paper shape: both implementations coincide for n/p <= 2^9 (startup
// dominated); for large inputs RBC wins by up to 16x against the vendor
// scans (whose large-input algorithms behaved poorly on SuperMUC). In our
// reproduction both sides run comparable binomial/doubling algorithms, so
// the expected shape is "about the same" across the sweep -- the paper's
// headline that range-based communicators add no hidden collective
// overhead.
#include <cstdio>
#include <vector>

#include "benchutil.hpp"
#include "rbc/rbc.hpp"

namespace {

constexpr int kRanks = 64;
constexpr int kReps = 5;
constexpr int kMaxLog = 14;

void RunBench() {
  mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = kRanks});
  std::printf("# Figure 4: Iscan on p=%d ranks, doubles, median of %d\n",
              kRanks, kReps);
  benchutil::PrintRowHeader({"n/p", "MPI.vtime", "RBC.vtime", "MPI.wall_ms",
                             "RBC.wall_ms", "vtime MPI/RBC"});
  rt.Run([](mpisim::Comm& world) {
    rbc::Comm rw;
    rbc::Create_RBC_Comm(world, &rw);
    for (int lg = 0; lg <= kMaxLog; lg += 2) {
      const int n = 1 << lg;
      std::vector<double> in(static_cast<std::size_t>(n), 1.0);
      std::vector<double> out(static_cast<std::size_t>(n), 0.0);

      const auto mpi = benchutil::MeasureOnRanks(world, kReps, [&] {
        mpisim::Request r =
            mpisim::Iscan(in.data(), out.data(), n, mpisim::Datatype::kFloat64,
                          mpisim::ReduceOp::kSum, world);
        mpisim::Wait(r);
      });
      const auto rbcm = benchutil::MeasureOnRanks(world, kReps, [&] {
        rbc::Request r;
        rbc::Iscan(in.data(), out.data(), n, rbc::Datatype::kFloat64,
                   rbc::ReduceOp::kSum, rw, &r);
        rbc::Wait(&r);
      });
      if (world.Rank() == 0) {
        benchutil::PrintCell(static_cast<double>(n));
        benchutil::PrintCell(mpi.vtime);
        benchutil::PrintCell(rbcm.vtime);
        benchutil::PrintCell(mpi.wall_ms);
        benchutil::PrintCell(rbcm.wall_ms);
        benchutil::PrintCell(mpi.vtime / rbcm.vtime);
        benchutil::EndRow();
      }
    }
  });
}

}  // namespace

int main() {
  RunBench();
  return 0;
}
