// Figure 4: running times of nonblocking inclusive scan (Iscan) -- native
// MPI vs rbc::Iscan -- on a fixed process count, sweeping the per-process
// input size n/p over powers of two (doubles).
//
// Paper shape: both implementations coincide for n/p <= 2^9 (startup
// dominated); for large inputs RBC wins by up to 16x against the vendor
// scans (whose large-input algorithms behaved poorly on SuperMUC). In our
// reproduction both sides run comparable binomial/doubling algorithms, so
// the expected shape is "about the same" across the sweep -- the paper's
// headline that range-based communicators add no hidden collective
// overhead. Every row carries vtime_ratio = MPI.vtime / RBC.vtime (the
// same value on both rows of a pair), which must stay near 1.
#include <algorithm>
#include <vector>

#include "harness.hpp"
#include "rbc/rbc.hpp"

namespace {

void RunIscan(benchutil::BenchContext& ctx) {
  const int ranks = ctx.smoke() ? 8 : 64;
  const int reps = ctx.reps(5);
  const int max_log = ctx.smoke() ? 4 : 14;
  mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = ranks});
  rt.Run([&](mpisim::Comm& world) {
    rbc::Comm rw;
    rbc::Create_RBC_Comm(world, &rw);
    for (int lg = 0; lg <= max_log; lg += 2) {
      const int n = 1 << lg;
      std::vector<double> in(static_cast<std::size_t>(n), 1.0);
      std::vector<double> out(static_cast<std::size_t>(n), 0.0);

      const auto mpi = benchutil::MeasureOnRanks(world, reps, [&] {
        mpisim::Request r =
            mpisim::Iscan(in.data(), out.data(), n, mpisim::Datatype::kFloat64,
                          mpisim::ReduceOp::kSum, world);
        mpisim::Wait(r);
      });
      const auto rbcm = benchutil::MeasureOnRanks(world, reps, [&] {
        rbc::Request r;
        rbc::Iscan(in.data(), out.data(), n, rbc::Datatype::kFloat64,
                   rbc::ReduceOp::kSum, rw, &r);
        rbc::Wait(&r);
      });
      if (world.Rank() == 0) {
        const double ratio = mpi.vtime / std::max(rbcm.vtime, 1e-9);
        ctx.Row("fig4_iscan", "mpi", ranks, n, mpi,
                {{"vtime_ratio", ratio}});
        ctx.Row("fig4_iscan", "rbc", ranks, n, rbcm,
                {{"vtime_ratio", ratio}});
      }
    }
  });
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::BenchSpec spec;
  spec.binary = "bench_fig4_iscan";
  spec.figure = "Figure 4";
  spec.description =
      "nonblocking inclusive scan, native MPI vs rbc::Iscan, sweeping n/p";
  spec.default_p = 64;
  spec.default_reps = 5;
  spec.sections = {{"iscan", "MPI-vs-RBC Iscan sweep over n/p", RunIscan}};
  return benchutil::BenchMain(argc, argv, spec);
}
