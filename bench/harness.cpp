#include "harness.hpp"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_build_info.hpp"

namespace benchutil {

void BenchReport::Row(std::string bench, std::string backend, int p,
                      long long count, const Measurement& m,
                      std::vector<Field> extras) {
  rows_.push_back(RowData{std::move(bench), std::move(backend), p, count, m,
                          std::move(extras)});
}

std::string BenchReport::EscapeJson(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (unsigned char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string BenchReport::JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

namespace {

std::string RenderField(const Field& f) {
  std::string out = "\"" + BenchReport::EscapeJson(f.key) + "\": ";
  switch (f.kind) {
    case Field::Kind::kInt: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%" PRId64, f.i);
      out += buf;
      break;
    }
    case Field::Kind::kDouble:
      out += BenchReport::JsonNumber(f.d);
      break;
    case Field::Kind::kString:
      out += "\"" + BenchReport::EscapeJson(f.s) + "\"";
      break;
    case Field::Kind::kBool:
      out += f.b ? "true" : "false";
      break;
  }
  return out;
}

std::string FieldValueForTable(const Field& f) {
  switch (f.kind) {
    case Field::Kind::kInt: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%" PRId64, f.i);
      return buf;
    }
    case Field::Kind::kDouble: {
      char buf[48];
      std::snprintf(buf, sizeof buf, "%.4f", f.d);
      return buf;
    }
    case Field::Kind::kString:
      return f.s;
    case Field::Kind::kBool:
      return f.b ? "true" : "false";
  }
  return "?";
}

// --- minimal JSON syntax checker --------------------------------------------
//
// A complete recursive-descent recognizer of the JSON grammar (RFC 8259),
// value construction omitted. Small enough to trust; strict enough to
// catch every escaping or comma bug the renderer could produce.

struct JsonScanner {
  std::string_view text;
  std::size_t pos = 0;
  int depth = 0;

  bool AtEnd() const { return pos >= text.size(); }
  char Peek() const { return AtEnd() ? '\0' : text[pos]; }
  void SkipWs() {
    while (!AtEnd() && (text[pos] == ' ' || text[pos] == '\t' ||
                        text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
  }
  bool Consume(char c) {
    if (Peek() != c) return false;
    ++pos;
    return true;
  }
  bool ConsumeLiteral(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) return false;
    pos += lit.size();
    return true;
  }

  bool String() {
    if (!Consume('"')) return false;
    while (!AtEnd()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (AtEnd()) return false;
        const char e = text[pos++];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (AtEnd() || !std::isxdigit(static_cast<unsigned char>(
                               text[pos]))) {
              return false;
            }
            ++pos;
          }
        } else if (std::strchr("\"\\/bfnrt", e) == nullptr) {
          return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool Digits() {
    if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
      return false;
    }
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      ++pos;
    }
    return true;
  }

  bool Number() {
    Consume('-');
    if (Consume('0')) {
      // no further leading-zero digits
    } else if (!Digits()) {
      return false;
    }
    if (Consume('.')) {
      if (!Digits()) return false;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos;
      if (Peek() == '+' || Peek() == '-') ++pos;
      if (!Digits()) return false;
    }
    return true;
  }

  bool Value() {
    if (++depth > 64) return false;
    SkipWs();
    bool ok = false;
    switch (Peek()) {
      case '{': ok = Object(); break;
      case '[': ok = Array(); break;
      case '"': ok = String(); break;
      case 't': ok = ConsumeLiteral("true"); break;
      case 'f': ok = ConsumeLiteral("false"); break;
      case 'n': ok = ConsumeLiteral("null"); break;
      default: ok = Number(); break;
    }
    --depth;
    return ok;
  }

  bool Object() {
    if (!Consume('{')) return false;
    SkipWs();
    if (Consume('}')) return true;
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (!Consume(':')) return false;
      if (!Value()) return false;
      SkipWs();
      if (Consume('}')) return true;
      if (!Consume(',')) return false;
    }
  }

  bool Array() {
    if (!Consume('[')) return false;
    SkipWs();
    if (Consume(']')) return true;
    while (true) {
      if (!Value()) return false;
      SkipWs();
      if (Consume(']')) return true;
      if (!Consume(',')) return false;
    }
  }
};

}  // namespace

bool ApplyCostModelOverride(mpisim::CostModel* cost, std::string_view key,
                            double value) {
  if (key == "alpha") {
    cost->alpha = value;
  } else if (key == "beta") {
    cost->beta = value;
  } else if (key == "intra_alpha") {
    cost->intra_alpha = value;
  } else if (key == "intra_beta") {
    cost->intra_beta = value;
  } else if (key == "inter_alpha") {
    cost->inter_alpha = value;
  } else if (key == "inter_beta") {
    cost->inter_beta = value;
  } else {
    return false;
  }
  return true;
}

mpisim::CostModel CostModelOf(
    const std::vector<std::pair<std::string, double>>& overrides) {
  mpisim::CostModel cost;
  for (const auto& [key, value] : overrides) {
    ApplyCostModelOverride(&cost, key, value);
  }
  return cost;
}

bool BenchReport::ValidJson(std::string_view text) {
  JsonScanner s{text};
  if (!s.Value()) return false;
  s.SkipWs();
  return s.AtEnd();
}

std::string BenchReport::RenderJson() const {
  std::string out = "{\n  \"meta\": {";
  out += "\"binary\": \"" + EscapeJson(meta_.binary) + "\", ";
  out += "\"figure\": \"" + EscapeJson(meta_.figure) + "\", ";
  out += "\"p\": " + std::to_string(meta_.p) + ", ";
  out += "\"reps\": " + std::to_string(meta_.reps) + ", ";
  out += std::string("\"smoke\": ") + (meta_.smoke ? "true" : "false") + ", ";
  out += "\"seed\": " + std::to_string(meta_.seed) + ", ";
  if (!meta_.cost_model.empty()) {
    out += "\"cost_model\": {";
    bool first_cm = true;
    for (const auto& [key, value] : meta_.cost_model) {
      if (!first_cm) out += ", ";
      first_cm = false;
      out += "\"" + EscapeJson(key) + "\": " + JsonNumber(value);
    }
    out += "}, ";
  }
  out += "\"git_describe\": \"" + EscapeJson(meta_.git_describe) + "\", ";
  out += "\"schema_version\": 2},\n  \"rows\": [";
  bool first = true;
  for (const RowData& r : rows_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"bench\": \"" + EscapeJson(r.bench) + "\", ";
    out += "\"backend\": \"" + EscapeJson(r.backend) + "\", ";
    out += "\"p\": " + std::to_string(r.p) + ", ";
    out += "\"count\": " + std::to_string(r.count) + ", ";
    out += "\"vtime\": " + JsonNumber(r.m.vtime) + ", ";
    out += "\"wall_ms\": " + JsonNumber(r.m.wall_ms);
    for (const Field& f : r.extras) {
      out += ", " + RenderField(f);
    }
    out += "}";
  }
  out += rows_.empty() ? "]\n}\n" : "\n  ]\n}\n";
  if (!ValidJson(out)) {
    std::fprintf(stderr,
                 "benchutil: internal error: rendered JSON failed "
                 "self-validation\n%s\n",
                 out.c_str());
    std::abort();
  }
  return out;
}

std::string BenchReport::RenderTable() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "# %s (%s) -- p=%d, reps=%d, seed=%lld%s, git %s\n",
                meta_.binary.c_str(), meta_.figure.c_str(), meta_.p,
                meta_.reps, meta_.seed, meta_.smoke ? ", SMOKE" : "",
                meta_.git_describe.c_str());
  out += buf;
  std::string current_bench;
  for (const RowData& r : rows_) {
    if (r.bench != current_bench) {
      current_bench = r.bench;
      std::snprintf(buf, sizeof buf, "\n%-28s%-14s%8s%12s%14s%12s\n",
                    current_bench.c_str(), "backend", "p", "count", "vtime",
                    "wall_ms");
      out += buf;
    }
    std::snprintf(buf, sizeof buf, "%-28s%-14s%8d%12lld%14.4f%12.3f",
                  "", r.backend.c_str(), r.p, r.count, r.m.vtime,
                  r.m.wall_ms);
    out += buf;
    for (const Field& f : r.extras) {
      out += "  " + f.key + "=" + FieldValueForTable(f);
    }
    out += "\n";
  }
  if (rows_.empty()) out += "  (no rows)\n";
  return out;
}

BenchOptions ParseBenchOptions(int argc, char** argv) {
  BenchOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto needs_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        opt.error = std::string(flag) + " requires a value";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--smoke") {
      opt.smoke = true;
    } else if (arg == "--list") {
      opt.list = true;
    } else if (arg == "--help" || arg == "-h") {
      opt.help = true;
    } else if (arg == "--reps") {
      const char* v = needs_value("--reps");
      if (v == nullptr) return opt;
      opt.reps = std::atoi(v);
      if (opt.reps <= 0) {
        opt.error = "--reps requires a positive integer";
        return opt;
      }
    } else if (arg == "--seed") {
      const char* v = needs_value("--seed");
      if (v == nullptr) return opt;
      char* end = nullptr;
      opt.seed = std::strtoll(v, &end, 10);
      if (end == v || *end != '\0' || opt.seed < 0) {
        opt.error = "--seed requires a non-negative integer";
        return opt;
      }
    } else if (arg == "--json") {
      const char* v = needs_value("--json");
      if (v == nullptr) return opt;
      opt.json_path = v;
    } else if (arg == "--filter") {
      const char* v = needs_value("--filter");
      if (v == nullptr) return opt;
      opt.filter = v;
    } else if (arg == "--cost-model") {
      const char* v = needs_value("--cost-model");
      if (v == nullptr) return opt;
      // k=v pairs, comma-separated; keys validated against the CostModel
      // fields so a typo fails the run instead of silently measuring the
      // default model.
      std::string_view rest = v;
      while (!rest.empty()) {
        const std::size_t comma = rest.find(',');
        const std::string_view pair = rest.substr(0, comma);
        rest = comma == std::string_view::npos ? std::string_view{}
                                               : rest.substr(comma + 1);
        const std::size_t eq = pair.find('=');
        if (eq == std::string_view::npos || eq == 0) {
          opt.error = "--cost-model expects k=v pairs, got '" +
                      std::string(pair) + "'";
          return opt;
        }
        const std::string key(pair.substr(0, eq));
        const std::string val(pair.substr(eq + 1));
        char* end = nullptr;
        const double value = std::strtod(val.c_str(), &end);
        if (end == val.c_str() || *end != '\0') {
          opt.error = "--cost-model: '" + val + "' is not a number";
          return opt;
        }
        mpisim::CostModel probe;
        if (!ApplyCostModelOverride(&probe, key, value)) {
          opt.error = "--cost-model: unknown key '" + key +
                      "' (alpha, beta, intra_alpha, intra_beta, "
                      "inter_alpha, inter_beta)";
          return opt;
        }
        opt.cost_model.emplace_back(key, value);
      }
    } else {
      opt.error = "unknown option: " + std::string(arg);
      return opt;
    }
  }
  return opt;
}

namespace {

void PrintUsage(const BenchSpec& spec, std::FILE* to) {
  std::fprintf(to,
               "%s -- %s\n"
               "reproduces: %s\n\n"
               "usage: %s [--smoke] [--reps N] [--seed N] [--json PATH] "
               "[--list] [--filter SUBSTR]\n"
               "  --smoke          shrink every sweep for CI (reps "
               "default to 1)\n"
               "  --reps N         override the repetition count\n"
               "  --seed N         override the randomization seed "
               "(recorded in the JSON meta)\n"
               "  --json PATH      write the JSON document to PATH "
               "instead of stdout\n"
               "  --list           list section names and exit\n"
               "  --filter SUBSTR  run only sections whose name contains "
               "SUBSTR\n"
               "  --cost-model K=V[,K=V...]\n"
               "                   override cost-model fields (alpha, "
               "beta, intra_alpha,\n"
               "                   intra_beta, inter_alpha, inter_beta); "
               "recorded in the\n"
               "                   JSON meta as \"cost_model\"\n",
               spec.binary.c_str(), spec.description.c_str(),
               spec.figure.c_str(), spec.binary.c_str());
}

}  // namespace

int BenchMain(int argc, char** argv, const BenchSpec& spec) {
  const BenchOptions opt = ParseBenchOptions(argc, argv);
  if (!opt.error.empty()) {
    std::fprintf(stderr, "%s: %s\n", spec.binary.c_str(), opt.error.c_str());
    PrintUsage(spec, stderr);
    return 2;
  }
  if (opt.help) {
    PrintUsage(spec, stdout);
    return 0;
  }
  if (opt.list) {
    for (const BenchSection& s : spec.sections) {
      std::printf("%-24s %s\n", s.name.c_str(), s.description.c_str());
    }
    return 0;
  }

  BenchMeta meta;
  meta.binary = spec.binary;
  meta.figure = spec.figure;
  meta.p = spec.default_p;
  meta.smoke = opt.smoke;
  meta.seed = opt.seed >= 0 ? opt.seed : spec.default_seed;
  meta.git_describe = kGitDescribe;
  meta.reps = opt.reps > 0 ? opt.reps : (opt.smoke ? 1 : spec.default_reps);
  meta.cost_model = opt.cost_model;
  BenchReport report(meta);
  BenchContext ctx(report, opt.smoke, opt.reps, meta.seed,
                   CostModelOf(opt.cost_model));

  int matched = 0;
  for (const BenchSection& s : spec.sections) {
    if (!opt.filter.empty() &&
        s.name.find(opt.filter) == std::string::npos) {
      continue;
    }
    ++matched;
    std::fprintf(stderr, "## section %s: %s\n", s.name.c_str(),
                 s.description.c_str());
    s.run(ctx);
  }
  if (matched == 0) {
    std::fprintf(stderr, "%s: no section matches --filter '%s'\n",
                 spec.binary.c_str(), opt.filter.c_str());
    return 2;
  }

  std::fputs(report.RenderTable().c_str(), stderr);

  const std::string json = report.RenderJson();
  if (opt.json_path.empty()) {
    std::fputs(json.c_str(), stdout);
  } else {
    std::FILE* f = std::fopen(opt.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "%s: cannot open %s for writing\n",
                   spec.binary.c_str(), opt.json_path.c_str());
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
  }
  return 0;
}

}  // namespace benchutil
