// Figure 9 (a-h): nonblocking collective operations -- broadcast, reduce,
// scan, gather -- executed with RBC and with native MPI on the full set of
// ranks, sweeping n/p. The paper shows RBC performing similarly to the
// vendor MPIs for every operation (its point: range-based communicators
// add no hidden collective overhead); gather is swept to a smaller bound
// because the root's receive buffer is p * n/p. The shape check is that
// for every operation the mpi and rbc rows stay near each other across
// the sweep.
#include <functional>
#include <vector>

#include "harness.hpp"
#include "rbc/rbc.hpp"

namespace {

using OpRunner = std::function<void(mpisim::Comm&, rbc::Comm&, bool use_rbc,
                                    int n, std::vector<double>& a,
                                    std::vector<double>& b)>;

void Sweep(benchutil::BenchContext& ctx, const char* bench, int ranks,
           int reps, int max_log, mpisim::Comm& world, rbc::Comm& rw,
           const OpRunner& run) {
  for (int lg = 0; lg <= max_log; lg += 2) {
    const int n = 1 << lg;
    std::vector<double> a(static_cast<std::size_t>(n), 1.0);
    std::vector<double> b(static_cast<std::size_t>(n) *
                              static_cast<std::size_t>(ranks),
                          0.0);
    const auto mpi = benchutil::MeasureOnRanks(
        world, reps, [&] { run(world, rw, false, n, a, b); });
    const auto rbcm = benchutil::MeasureOnRanks(
        world, reps, [&] { run(world, rw, true, n, a, b); });
    if (world.Rank() == 0) {
      ctx.Row(bench, "mpi", ranks, n, mpi);
      ctx.Row(bench, "rbc", ranks, n, rbcm);
    }
  }
}

void RunCollectives(benchutil::BenchContext& ctx) {
  const int ranks = ctx.smoke() ? 16 : 64;
  const int reps = ctx.reps(5);
  const int max_log = ctx.smoke() ? 6 : 14;
  const int gather_log = ctx.smoke() ? 4 : 10;
  mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = ranks});
  rt.Run([&](mpisim::Comm& world) {
    rbc::Comm rw;
    rbc::Create_RBC_Comm(world, &rw);

    Sweep(ctx, "fig9_bcast", ranks, reps, max_log, world, rw,
          [](mpisim::Comm& w, rbc::Comm& r, bool use_rbc, int n,
             std::vector<double>& a, std::vector<double>&) {
            if (use_rbc) {
              rbc::Request req;
              rbc::Ibcast(a.data(), n, rbc::Datatype::kFloat64, 0, r, &req);
              rbc::Wait(&req);
            } else {
              mpisim::Request req = mpisim::Ibcast(
                  a.data(), n, mpisim::Datatype::kFloat64, 0, w);
              mpisim::Wait(req);
            }
          });

    Sweep(ctx, "fig9_reduce", ranks, reps, max_log, world, rw,
          [](mpisim::Comm& w, rbc::Comm& r, bool use_rbc, int n,
             std::vector<double>& a, std::vector<double>& b) {
            if (use_rbc) {
              rbc::Request req;
              rbc::Ireduce(a.data(), b.data(), n, rbc::Datatype::kFloat64,
                           rbc::ReduceOp::kSum, 0, r, &req);
              rbc::Wait(&req);
            } else {
              mpisim::Request req =
                  mpisim::Ireduce(a.data(), b.data(), n,
                                  mpisim::Datatype::kFloat64,
                                  mpisim::ReduceOp::kSum, 0, w);
              mpisim::Wait(req);
            }
          });

    Sweep(ctx, "fig9_scan", ranks, reps, max_log, world, rw,
          [](mpisim::Comm& w, rbc::Comm& r, bool use_rbc, int n,
             std::vector<double>& a, std::vector<double>& b) {
            if (use_rbc) {
              rbc::Request req;
              rbc::Iscan(a.data(), b.data(), n, rbc::Datatype::kFloat64,
                         rbc::ReduceOp::kSum, r, &req);
              rbc::Wait(&req);
            } else {
              mpisim::Request req = mpisim::Iscan(
                  a.data(), b.data(), n, mpisim::Datatype::kFloat64,
                  mpisim::ReduceOp::kSum, w);
              mpisim::Wait(req);
            }
          });

    Sweep(ctx, "fig9_gather", ranks, reps, gather_log, world, rw,
          [](mpisim::Comm& w, rbc::Comm& r, bool use_rbc, int n,
             std::vector<double>& a, std::vector<double>& b) {
            if (use_rbc) {
              rbc::Request req;
              rbc::Igather(a.data(), n, rbc::Datatype::kFloat64, b.data(), 0,
                           r, &req);
              rbc::Wait(&req);
            } else {
              mpisim::Request req = mpisim::Igather(
                  a.data(), n, mpisim::Datatype::kFloat64, b.data(), 0, w);
              mpisim::Wait(req);
            }
          });
  });
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::BenchSpec spec;
  spec.binary = "bench_fig9_collectives";
  spec.figure = "Figure 9";
  spec.description =
      "nonblocking bcast/reduce/scan/gather, RBC vs native MPI over the "
      "n/p sweep";
  spec.default_p = 64;
  spec.default_reps = 5;
  spec.sections = {
      {"collectives", "the four operation sweeps", RunCollectives}};
  return benchutil::BenchMain(argc, argv, spec);
}
