// Figure 9 (a-h): nonblocking collective operations -- broadcast, reduce,
// scan, gather -- executed with RBC and with native MPI on the full set of
// ranks, sweeping n/p. The paper shows RBC performing similarly to the
// vendor MPIs for every operation (its point: range-based communicators
// add no hidden collective overhead); gather is swept to a smaller bound
// because the root's receive buffer is p * n/p.
#include <cstdio>
#include <vector>

#include "benchutil.hpp"
#include "rbc/rbc.hpp"

namespace {

constexpr int kRanks = 64;
constexpr int kReps = 5;

struct Pair {
  benchutil::Measurement mpi, rbc;
};

using OpRunner = std::function<void(mpisim::Comm&, rbc::Comm&, bool use_rbc,
                                    int n, std::vector<double>& a,
                                    std::vector<double>& b)>;

void Sweep(const char* name, int max_log, mpisim::Comm& world,
           rbc::Comm& rw, const OpRunner& run) {
  if (world.Rank() == 0) {
    std::printf("\n## Figure 9: %s on p=%d ranks\n", name, kRanks);
    benchutil::PrintRowHeader(
        {"n/p", "MPI.vtime", "RBC.vtime", "MPI/RBC"});
  }
  for (int lg = 0; lg <= max_log; lg += 2) {
    const int n = 1 << lg;
    std::vector<double> a(static_cast<std::size_t>(n), 1.0);
    std::vector<double> b(static_cast<std::size_t>(n) *
                              static_cast<std::size_t>(kRanks),
                          0.0);
    const auto mpi = benchutil::MeasureOnRanks(
        world, kReps, [&] { run(world, rw, false, n, a, b); });
    const auto rbcm = benchutil::MeasureOnRanks(
        world, kReps, [&] { run(world, rw, true, n, a, b); });
    if (world.Rank() == 0) {
      benchutil::PrintCell(static_cast<double>(n));
      benchutil::PrintCell(mpi.vtime);
      benchutil::PrintCell(rbcm.vtime);
      benchutil::PrintCell(mpi.vtime / std::max(rbcm.vtime, 1e-9));
      benchutil::EndRow();
    }
  }
}

}  // namespace

int main() {
  std::printf(
      "# Figure 9: nonblocking collectives, RBC vs native MPI (vtime = "
      "model time, median of %d)\n",
      kReps);
  mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = kRanks});
  rt.Run([](mpisim::Comm& world) {
    rbc::Comm rw;
    rbc::Create_RBC_Comm(world, &rw);

    Sweep("broadcast (9a/9b)", 14, world, rw,
          [](mpisim::Comm& w, rbc::Comm& r, bool use_rbc, int n,
             std::vector<double>& a, std::vector<double>&) {
            if (use_rbc) {
              rbc::Request req;
              rbc::Ibcast(a.data(), n, rbc::Datatype::kFloat64, 0, r, &req);
              rbc::Wait(&req);
            } else {
              mpisim::Request req = mpisim::Ibcast(
                  a.data(), n, mpisim::Datatype::kFloat64, 0, w);
              mpisim::Wait(req);
            }
          });

    Sweep("reduce (9c/9d)", 14, world, rw,
          [](mpisim::Comm& w, rbc::Comm& r, bool use_rbc, int n,
             std::vector<double>& a, std::vector<double>& b) {
            if (use_rbc) {
              rbc::Request req;
              rbc::Ireduce(a.data(), b.data(), n, rbc::Datatype::kFloat64,
                           rbc::ReduceOp::kSum, 0, r, &req);
              rbc::Wait(&req);
            } else {
              mpisim::Request req =
                  mpisim::Ireduce(a.data(), b.data(), n,
                                  mpisim::Datatype::kFloat64,
                                  mpisim::ReduceOp::kSum, 0, w);
              mpisim::Wait(req);
            }
          });

    Sweep("scan (9e/9f)", 14, world, rw,
          [](mpisim::Comm& w, rbc::Comm& r, bool use_rbc, int n,
             std::vector<double>& a, std::vector<double>& b) {
            if (use_rbc) {
              rbc::Request req;
              rbc::Iscan(a.data(), b.data(), n, rbc::Datatype::kFloat64,
                         rbc::ReduceOp::kSum, r, &req);
              rbc::Wait(&req);
            } else {
              mpisim::Request req = mpisim::Iscan(
                  a.data(), b.data(), n, mpisim::Datatype::kFloat64,
                  mpisim::ReduceOp::kSum, w);
              mpisim::Wait(req);
            }
          });

    Sweep("gather (9g/9h)", 10, world, rw,
          [](mpisim::Comm& w, rbc::Comm& r, bool use_rbc, int n,
             std::vector<double>& a, std::vector<double>& b) {
            if (use_rbc) {
              rbc::Request req;
              rbc::Igather(a.data(), n, rbc::Datatype::kFloat64, b.data(), 0,
                           r, &req);
              rbc::Wait(&req);
            } else {
              mpisim::Request req = mpisim::Igather(
                  a.data(), n, mpisim::Datatype::kFloat64, b.data(), 0, w);
              mpisim::Wait(req);
            }
          });
  });
  std::printf(
      "\n# Shape check: every MPI/RBC column stays near 1 across the sweep "
      "-- RBC collectives\n# on range communicators cost the same as "
      "native collectives (the paper's conclusion).\n");
  return 0;
}
