// Figure 9 (a-h): nonblocking collective operations -- broadcast, reduce,
// scan, gather -- executed with RBC and with native MPI on the full set of
// ranks, sweeping n/p. The paper shows RBC performing similarly to the
// vendor MPIs for every operation (its point: range-based communicators
// add no hidden collective overhead); gather is swept to a smaller bound
// because the root's receive buffer is p * n/p.
//
// Output is the shared machine-readable BENCH_*.json schema (one
// top-level array of measurement objects; bench = fig9_<op>, backend =
// mpi|rbc, count = n/p):
//   ./bench_fig9_collectives > BENCH_fig9.json
// `--smoke` shrinks ranks/reps/sweep for CI. The shape check is that for
// every operation the mpi and rbc rows stay near each other across the
// sweep -- the paper's conclusion that RBC collectives cost the same as
// native ones.
#include <cstdio>
#include <cstring>
#include <functional>
#include <vector>

#include "benchutil.hpp"
#include "rbc/rbc.hpp"

namespace {

int g_ranks = 64;
int g_reps = 5;

benchutil::JsonRows rows;

using OpRunner = std::function<void(mpisim::Comm&, rbc::Comm&, bool use_rbc,
                                    int n, std::vector<double>& a,
                                    std::vector<double>& b)>;

void Sweep(const char* bench, int max_log, mpisim::Comm& world,
           rbc::Comm& rw, const OpRunner& run) {
  for (int lg = 0; lg <= max_log; lg += 2) {
    const int n = 1 << lg;
    std::vector<double> a(static_cast<std::size_t>(n), 1.0);
    std::vector<double> b(static_cast<std::size_t>(n) *
                              static_cast<std::size_t>(g_ranks),
                          0.0);
    const auto mpi = benchutil::MeasureOnRanks(
        world, g_reps, [&] { run(world, rw, false, n, a, b); });
    const auto rbcm = benchutil::MeasureOnRanks(
        world, g_reps, [&] { run(world, rw, true, n, a, b); });
    if (world.Rank() == 0) {
      rows.Row(bench, "mpi", g_ranks, n, mpi);
      rows.Row(bench, "rbc", g_ranks, n, rbcm);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  if (smoke) {
    g_ranks = 16;
    g_reps = 1;
  }
  const int max_log = smoke ? 6 : 14;
  const int gather_log = smoke ? 4 : 10;
  mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = g_ranks});
  rt.Run([&](mpisim::Comm& world) {
    rbc::Comm rw;
    rbc::Create_RBC_Comm(world, &rw);

    Sweep("fig9_bcast", max_log, world, rw,
          [](mpisim::Comm& w, rbc::Comm& r, bool use_rbc, int n,
             std::vector<double>& a, std::vector<double>&) {
            if (use_rbc) {
              rbc::Request req;
              rbc::Ibcast(a.data(), n, rbc::Datatype::kFloat64, 0, r, &req);
              rbc::Wait(&req);
            } else {
              mpisim::Request req = mpisim::Ibcast(
                  a.data(), n, mpisim::Datatype::kFloat64, 0, w);
              mpisim::Wait(req);
            }
          });

    Sweep("fig9_reduce", max_log, world, rw,
          [](mpisim::Comm& w, rbc::Comm& r, bool use_rbc, int n,
             std::vector<double>& a, std::vector<double>& b) {
            if (use_rbc) {
              rbc::Request req;
              rbc::Ireduce(a.data(), b.data(), n, rbc::Datatype::kFloat64,
                           rbc::ReduceOp::kSum, 0, r, &req);
              rbc::Wait(&req);
            } else {
              mpisim::Request req =
                  mpisim::Ireduce(a.data(), b.data(), n,
                                  mpisim::Datatype::kFloat64,
                                  mpisim::ReduceOp::kSum, 0, w);
              mpisim::Wait(req);
            }
          });

    Sweep("fig9_scan", max_log, world, rw,
          [](mpisim::Comm& w, rbc::Comm& r, bool use_rbc, int n,
             std::vector<double>& a, std::vector<double>& b) {
            if (use_rbc) {
              rbc::Request req;
              rbc::Iscan(a.data(), b.data(), n, rbc::Datatype::kFloat64,
                         rbc::ReduceOp::kSum, r, &req);
              rbc::Wait(&req);
            } else {
              mpisim::Request req = mpisim::Iscan(
                  a.data(), b.data(), n, mpisim::Datatype::kFloat64,
                  mpisim::ReduceOp::kSum, w);
              mpisim::Wait(req);
            }
          });

    Sweep("fig9_gather", gather_log, world, rw,
          [](mpisim::Comm& w, rbc::Comm& r, bool use_rbc, int n,
             std::vector<double>& a, std::vector<double>& b) {
            if (use_rbc) {
              rbc::Request req;
              rbc::Igather(a.data(), n, rbc::Datatype::kFloat64, b.data(), 0,
                           r, &req);
              rbc::Wait(&req);
            } else {
              mpisim::Request req = mpisim::Igather(
                  a.data(), n, mpisim::Datatype::kFloat64, b.data(), 0, w);
              mpisim::Wait(req);
            }
          });
  });
  rows.Close();
  return 0;
}
