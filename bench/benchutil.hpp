// Shared measurement helpers for the figure-reproduction benchmarks.
//
// Every benchmark reports two metrics per configuration:
//  * vtime -- the deterministic virtual alpha-beta model time (max over
//    ranks) of the operation, the primary shape-comparison metric (the
//    substrate oversubscribes one CPU, so wall time is noisy);
//  * wall  -- rank-0 wall-clock milliseconds, for reference.
//
// Row emission, CLI parsing and JSON rendering live in the driver
// subsystem (harness.hpp); this header only holds the measurement
// primitives benchmarks call inside their sections.
#pragma once

#include <algorithm>
#include <chrono>
#include <functional>
#include <vector>

#include "mpisim/mpisim.hpp"
#include "sort/exchange.hpp"

namespace benchutil {

struct Measurement {
  double wall_ms = 0.0;
  double vtime = 0.0;
};

/// Measures `op` (a collective action over `world`) `reps` times and
/// returns the median. Only rank 0's return value is meaningful.
inline Measurement MeasureOnRanks(mpisim::Comm& world, int reps,
                                  const std::function<void()>& op) {
  std::vector<double> walls, vts;
  for (int rep = 0; rep < reps; ++rep) {
    mpisim::Barrier(world);
    const double v0 = mpisim::Ctx().clock.Now();
    const auto t0 = std::chrono::steady_clock::now();
    op();
    const double local_delta = mpisim::Ctx().clock.Now() - v0;
    mpisim::Barrier(world);
    const auto t1 = std::chrono::steady_clock::now();
    double max_delta = 0.0;
    mpisim::Allreduce(&local_delta, &max_delta, 1,
                      mpisim::Datatype::kFloat64, mpisim::ReduceOp::kMax,
                      world);
    walls.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
    vts.push_back(max_delta);
  }
  auto median = [](std::vector<double>& v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  return Measurement{median(walls), median(vts)};
}

/// Compiler barrier for microbenchmark loops: forces `value` (typically a
/// pointer to the computed result) to be materialized.
template <typename T>
inline void DoNotOptimize(T const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

/// Backend label of an exchange mode in the JSON rows.
inline const char* ModeName(jsort::exchange::Mode mode) {
  switch (mode) {
    case jsort::exchange::Mode::kAlltoallv: return "dense";
    case jsort::exchange::Mode::kCoalesced: return "coalesced";
    case jsort::exchange::Mode::kSparse: return "sparse";
    case jsort::exchange::Mode::kHierarchical: return "hier";
    case jsort::exchange::Mode::kAuto: return "auto";
  }
  return "?";
}

}  // namespace benchutil
