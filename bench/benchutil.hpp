// Shared measurement helpers for the figure-reproduction benchmarks.
//
// Every benchmark reports two metrics per configuration:
//  * vtime -- the deterministic virtual alpha-beta model time (max over
//    ranks) of the operation, the primary shape-comparison metric (the
//    substrate oversubscribes one CPU, so wall time is noisy);
//  * wall  -- rank-0 wall-clock milliseconds, for reference.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "mpisim/mpisim.hpp"
#include "sort/exchange.hpp"

namespace benchutil {

struct Measurement {
  double wall_ms = 0.0;
  double vtime = 0.0;
};

/// Measures `op` (a collective action over `world`) `reps` times and
/// returns the median. Only rank 0's return value is meaningful.
inline Measurement MeasureOnRanks(mpisim::Comm& world, int reps,
                                  const std::function<void()>& op) {
  std::vector<double> walls, vts;
  for (int rep = 0; rep < reps; ++rep) {
    mpisim::Barrier(world);
    const double v0 = mpisim::Ctx().clock.Now();
    const auto t0 = std::chrono::steady_clock::now();
    op();
    const double local_delta = mpisim::Ctx().clock.Now() - v0;
    mpisim::Barrier(world);
    const auto t1 = std::chrono::steady_clock::now();
    double max_delta = 0.0;
    mpisim::Allreduce(&local_delta, &max_delta, 1,
                      mpisim::Datatype::kFloat64, mpisim::ReduceOp::kMax,
                      world);
    walls.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
    vts.push_back(max_delta);
  }
  auto median = [](std::vector<double>& v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  return Measurement{median(walls), median(vts)};
}

/// Incremental emitter of the BENCH_*.json schema: one top-level JSON
/// array of measurement objects sharing the keys bench/backend/p/count/
/// vtime/wall_ms, with optional benchmark-specific extra fields appended
/// as a preformatted `"key": value` fragment. Start rows with Row(),
/// finish the stream with Close().
class JsonRows {
 public:
  void Row(const char* bench, const char* backend, int p, long long count,
           const Measurement& m, const std::string& extra = {}) {
    std::printf("%s\n  {\"bench\": \"%s\", \"backend\": \"%s\", \"p\": %d, "
                "\"count\": %lld, \"vtime\": %.6f, \"wall_ms\": %.4f%s%s}",
                first_ ? "[" : ",", bench, backend, p, count, m.vtime,
                m.wall_ms, extra.empty() ? "" : ", ", extra.c_str());
    first_ = false;
  }
  void Close() { std::printf("%s\n]\n", first_ ? "[" : ""); }

 private:
  bool first_ = true;
};

/// Backend label of an exchange mode in the JSON rows.
inline const char* ModeName(jsort::exchange::Mode mode) {
  switch (mode) {
    case jsort::exchange::Mode::kAlltoallv: return "dense";
    case jsort::exchange::Mode::kCoalesced: return "coalesced";
    case jsort::exchange::Mode::kSparse: return "sparse";
    case jsort::exchange::Mode::kAuto: return "auto";
  }
  return "?";
}

/// Left-pads a string to the column width used by the tables.
inline void PrintRowHeader(const std::vector<std::string>& cols) {
  for (const auto& c : cols) std::printf("%16s", c.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < cols.size(); ++i) std::printf("%16s", "----");
  std::printf("\n");
}

inline void PrintCell(double v) { std::printf("%16.4f", v); }
inline void PrintCell(const std::string& s) {
  std::printf("%16s", s.c_str());
}
inline void EndRow() { std::printf("\n"); }

}  // namespace benchutil
