// Section IV design space: single-level sample sort (one exchange, p-1
// startups) vs k-way multi-level sample sort vs JQuick (log p levels,
// O(1) messages each) vs hypercube quicksort. Sweeps n/p to expose the
// crossover the paper's Section IV describes: recursive algorithms win
// for small n/p, the single-exchange algorithm wins once bandwidth
// dominates.
#include <memory>
#include <vector>

#include "harness.hpp"
#include "sort/jsort.hpp"
#include "sort/workload.hpp"

namespace {

std::shared_ptr<jsort::Transport> RbcTransportOf(mpisim::Comm& world) {
  rbc::Comm rw;
  rbc::Create_RBC_Comm(world, &rw);
  return jsort::MakeRbcTransport(rw);
}

void RunDesignSpace(benchutil::BenchContext& ctx) {
  const int ranks = ctx.smoke() ? 16 : 64;
  const int reps = ctx.reps(3);
  const int max_log = ctx.smoke() ? 6 : 14;
  mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = ranks});
  rt.Run([&](mpisim::Comm& world) {
    for (int lg = 0; lg <= max_log; lg += 2) {
      const int quota = 1 << lg;
      auto gen = [&] {
        return jsort::GenerateInput(jsort::InputKind::kUniform, world.Rank(),
                                    ranks, quota, 83);
      };
      const auto jq = benchutil::MeasureOnRanks(world, reps, [&] {
        auto tr = RbcTransportOf(world);
        jsort::JQuickSort(tr, gen());
      });
      const auto ml = benchutil::MeasureOnRanks(world, reps, [&] {
        auto tr = RbcTransportOf(world);
        jsort::MultilevelConfig cfg;
        cfg.k = 4;
        jsort::MultilevelSampleSort(tr, gen(), cfg);
      });
      const auto ss = benchutil::MeasureOnRanks(world, reps, [&] {
        auto tr = RbcTransportOf(world);
        jsort::SampleSort(tr, gen());
      });
      const auto hc = benchutil::MeasureOnRanks(world, reps, [&] {
        auto tr = RbcTransportOf(world);
        jsort::HypercubeQuicksort(tr, gen());
      });
      if (world.Rank() == 0) {
        ctx.Row("sortspace", "jquick", ranks, quota, jq);
        ctx.Row("sortspace", "multilevel_k4", ranks, quota, ml);
        ctx.Row("sortspace", "samplesort", ranks, quota, ss);
        ctx.Row("sortspace", "hypercube", ranks, quota, hc);
      }
    }
  });
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::BenchSpec spec;
  spec.binary = "bench_sortspace";
  spec.figure = "Section IV";
  spec.description =
      "design-space sweep: jquick vs multilevel k=4 vs single-level sample "
      "sort vs hypercube quicksort over n/p";
  spec.default_p = 64;
  spec.default_reps = 3;
  spec.sections = {
      {"designspace", "n/p sweep over the four sorters", RunDesignSpace}};
  return benchutil::BenchMain(argc, argv, spec);
}
