// Section IV design space: single-level sample sort (one exchange, p-1
// startups) vs k-way multi-level sample sort vs JQuick (log p levels,
// O(1) messages each). Sweeps n/p to expose the crossover the paper's
// Section IV describes: recursive algorithms win for small n/p, the
// single-exchange algorithm wins once bandwidth dominates.
#include <cstdio>
#include <vector>

#include "benchutil.hpp"
#include "sort/jsort.hpp"

namespace {

constexpr int kRanks = 64;
constexpr int kReps = 3;

std::shared_ptr<jsort::Transport> RbcTransportOf(mpisim::Comm& world) {
  rbc::Comm rw;
  rbc::Create_RBC_Comm(world, &rw);
  return jsort::MakeRbcTransport(rw);
}

}  // namespace

int main() {
  std::printf(
      "# Section IV design space on p=%d ranks (uniform doubles, median of "
      "%d)\n",
      kRanks, kReps);
  benchutil::PrintRowHeader({"n/p", "jquick.vt", "ml.k4.vt", "ssort.vt",
                             "hcube.vt"});
  mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = kRanks});
  rt.Run([](mpisim::Comm& world) {
    for (int lg = 0; lg <= 14; lg += 2) {
      const int quota = 1 << lg;
      auto gen = [&] {
        return jsort::GenerateInput(jsort::InputKind::kUniform, world.Rank(),
                                    kRanks, quota, 83);
      };
      const auto jq = benchutil::MeasureOnRanks(world, kReps, [&] {
        auto tr = RbcTransportOf(world);
        jsort::JQuickSort(tr, gen());
      });
      const auto ml = benchutil::MeasureOnRanks(world, kReps, [&] {
        auto tr = RbcTransportOf(world);
        jsort::MultilevelConfig cfg;
        cfg.k = 4;
        jsort::MultilevelSampleSort(tr, gen(), cfg);
      });
      const auto ss = benchutil::MeasureOnRanks(world, kReps, [&] {
        auto tr = RbcTransportOf(world);
        jsort::SampleSort(tr, gen());
      });
      const auto hc = benchutil::MeasureOnRanks(world, kReps, [&] {
        auto tr = RbcTransportOf(world);
        jsort::HypercubeQuicksort(tr, gen());
      });
      if (world.Rank() == 0) {
        benchutil::PrintCell(static_cast<double>(quota));
        benchutil::PrintCell(jq.vtime);
        benchutil::PrintCell(ml.vtime);
        benchutil::PrintCell(ss.vtime);
        benchutil::PrintCell(hc.vtime);
        benchutil::EndRow();
      }
    }
  });
  std::printf(
      "\n# Shape check: sample sort pays p-1 startups (flat, high line for "
      "small n/p, best\n# asymptote for huge n/p); the recursive algorithms "
      "win for small n/p; multilevel k=4\n# interpolates between them "
      "(Section IV's compromise).\n");
  return 0;
}
