// All-to-all exchange benchmark: rbc::Alltoallv vs mpisim::Alltoallv on
// uniform personalized exchanges, and the jsort::exchange segment paths
// (dense Alltoallv vs coalesced) on a skewed neighbour-rotation
// redistribution.
//
// Output is machine-readable JSON (one top-level array of measurement
// objects) so the results can accumulate into the BENCH_*.json perf
// trajectory:
//   ./bench_alltoall > BENCH_alltoall.json
#include <cstdio>
#include <vector>

#include "benchutil.hpp"
#include "rbc/rbc.hpp"
#include "sort/exchange.hpp"

namespace {

constexpr int kReps = 5;

bool first_row = true;

void EmitRow(const char* bench, const char* backend, int p, long long count,
             const benchutil::Measurement& m) {
  std::printf("%s\n  {\"bench\": \"%s\", \"backend\": \"%s\", \"p\": %d, "
              "\"count\": %lld, \"vtime\": %.6f, \"wall_ms\": %.4f}",
              first_row ? "" : ",", bench, backend, p, count, m.vtime,
              m.wall_ms);
  first_row = false;
}

/// Uniform personalized exchange: every rank sends `count` elements to
/// every peer, RBC schedule vs the substrate's native implementation.
void UniformSweep(int p) {
  mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = p});
  rt.Run([p](mpisim::Comm& world) {
    rbc::Comm rw;
    rbc::Create_RBC_Comm(world, &rw);
    for (int count : {1, 16, 256, 4096}) {
      std::vector<double> send(static_cast<std::size_t>(count) *
                                   static_cast<std::size_t>(p),
                               1.0);
      std::vector<double> recv(send.size(), 0.0);
      std::vector<int> counts(static_cast<std::size_t>(p), count),
          displs(static_cast<std::size_t>(p));
      for (int i = 0; i < p; ++i) {
        displs[static_cast<std::size_t>(i)] = i * count;
      }
      const auto mpi = benchutil::MeasureOnRanks(world, kReps, [&] {
        mpisim::Alltoallv(send.data(), counts, displs,
                          mpisim::Datatype::kFloat64, recv.data(), counts,
                          displs, world);
      });
      const auto rbcm = benchutil::MeasureOnRanks(world, kReps, [&] {
        rbc::Alltoallv(send.data(), counts, displs, rbc::Datatype::kFloat64,
                       recv.data(), counts, displs, rw);
      });
      if (world.Rank() == 0) {
        EmitRow("alltoallv_uniform", "mpi", p, count, mpi);
        EmitRow("alltoallv_uniform", "rbc", p, count, rbcm);
      }
    }
  });
}

/// Skewed redistribution: every rank's elements all belong to one
/// neighbour (the jquick-style sparse pattern), via both exchange paths.
void SkewSweep(int p) {
  mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = p});
  rt.Run([p](mpisim::Comm& world) {
    rbc::Comm rw;
    rbc::Create_RBC_Comm(world, &rw);
    auto tr = jsort::MakeRbcTransport(rw);
    const int me = tr->Rank();
    for (int cap : {16, 1024}) {
      const jsort::CapacityLayout layout{
          .p = p, .quota = cap, .cap_first = cap, .cap_last = cap};
      const int owner = (me + 1) % p;
      const std::int64_t begin = layout.PrefixBefore(owner);
      std::vector<double> data(static_cast<std::size_t>(cap), 1.0);
      for (auto mode : {jsort::exchange::Mode::kAlltoallv,
                        jsort::exchange::Mode::kCoalesced}) {
        const auto m = benchutil::MeasureOnRanks(world, kReps, [&] {
          std::vector<double> sink;
          std::vector<jsort::exchange::Segment> segs(1);
          segs[0] = jsort::exchange::Segment{data.data(), cap, begin, &sink,
                                             cap};
          jsort::Poll poll = jsort::exchange::StartSegmentExchange(
              tr, layout, std::move(segs), 19, mode);
          while (!poll()) {
          }
        });
        if (world.Rank() == 0) {
          EmitRow("segment_exchange_skewed",
                  mode == jsort::exchange::Mode::kAlltoallv ? "dense"
                                                            : "coalesced",
                  p, cap, m);
        }
      }
    }
  });
}

}  // namespace

int main() {
  std::printf("[");
  for (int p : {4, 8, 16, 32}) UniformSweep(p);
  for (int p : {8, 16, 32}) SkewSweep(p);
  std::printf("\n]\n");
  return 0;
}
