// All-to-all exchange benchmark: rbc::Alltoallv vs mpisim::Alltoallv on
// uniform personalized exchanges, the jsort::exchange segment paths
// (dense Alltoallv vs coalesced vs sparse) on a skewed neighbour-rotation
// redistribution, and the large-message regime (segment_bytes sweeps) on
// the same skewed workload. The skewed rows also report the *measured*
// per-rank message count (payload plus every metadata message: the dense
// counts round, the sparse barriers) from the substrate's traffic
// counters; the large-message rows add the exchange layer's wire-segment
// count and the measured maximum single-message size, which the
// segmented paths must keep at or below segment_bytes (the manifest
// assertion CI gates on).
#include <cstdint>
#include <vector>

#include "harness.hpp"
#include "rbc/rbc.hpp"
#include "sort/exchange.hpp"

namespace {

/// Uniform personalized exchange: every rank sends `count` elements to
/// every peer, RBC schedule vs the substrate's native implementation.
void UniformSweepAt(benchutil::BenchContext& ctx, int p, int reps) {
  mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = p});
  rt.Run([&, p](mpisim::Comm& world) {
    rbc::Comm rw;
    rbc::Create_RBC_Comm(world, &rw);
    for (int count : {1, 16, 256, 4096}) {
      std::vector<double> send(static_cast<std::size_t>(count) *
                                   static_cast<std::size_t>(p),
                               1.0);
      std::vector<double> recv(send.size(), 0.0);
      std::vector<int> counts(static_cast<std::size_t>(p), count),
          displs(static_cast<std::size_t>(p));
      for (int i = 0; i < p; ++i) {
        displs[static_cast<std::size_t>(i)] = i * count;
      }
      const auto mpi = benchutil::MeasureOnRanks(world, reps, [&] {
        mpisim::Alltoallv(send.data(), counts, displs,
                          mpisim::Datatype::kFloat64, recv.data(), counts,
                          displs, world);
      });
      const auto rbcm = benchutil::MeasureOnRanks(world, reps, [&] {
        rbc::Alltoallv(send.data(), counts, displs, rbc::Datatype::kFloat64,
                       recv.data(), counts, displs, rw);
      });
      if (world.Rank() == 0) {
        ctx.Row("alltoallv_uniform", "mpi", p, count, mpi);
        ctx.Row("alltoallv_uniform", "rbc", p, count, rbcm);
      }
    }
  });
}

void UniformSweep(benchutil::BenchContext& ctx) {
  const int reps = ctx.reps(5);
  for (int p : ctx.smoke() ? std::vector<int>{4, 8}
                           : std::vector<int>{4, 8, 16, 32}) {
    UniformSweepAt(ctx, p, reps);
  }
}

/// Skewed redistribution: every rank's elements all belong to one
/// neighbour (the jquick-style sparse pattern), via all three exchange
/// paths. Alongside the timings, one extra untimed run measures the
/// maximum per-rank message count (payload + metadata) from the
/// substrate's traffic counters.
void SkewSweepAt(benchutil::BenchContext& ctx, int p, int reps) {
  mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = p});
  rt.Run([&, p](mpisim::Comm& world) {
    rbc::Comm rw;
    rbc::Create_RBC_Comm(world, &rw);
    auto tr = jsort::MakeRbcTransport(rw);
    const int me = tr->Rank();
    for (int cap : {16, 1024}) {
      const jsort::CapacityLayout layout{
          .p = p, .quota = cap, .cap_first = cap, .cap_last = cap};
      const int owner = (me + 1) % p;
      const std::int64_t begin = layout.PrefixBefore(owner);
      std::vector<double> data(static_cast<std::size_t>(cap), 1.0);
      auto run_once = [&](jsort::exchange::Mode mode) {
        std::vector<double> sink;
        std::vector<jsort::exchange::Segment> segs(1);
        segs[0] = jsort::exchange::Segment{data.data(), cap, begin, &sink,
                                           cap};
        jsort::Poll poll = jsort::exchange::StartSegmentExchange(
            tr, layout, std::move(segs), 19, mode);
        while (!poll()) {
        }
      };
      for (auto mode : {jsort::exchange::Mode::kAlltoallv,
                        jsort::exchange::Mode::kCoalesced,
                        jsort::exchange::Mode::kSparse}) {
        const auto m = benchutil::MeasureOnRanks(world, reps, [&] {
          run_once(mode);
        });
        // Untimed message-count pass: max per-rank sends of one exchange
        // (the counter only sees the caller's own sends, all of which
        // happen inside run_once).
        mpisim::Barrier(world);
        const double before =
            static_cast<double>(mpisim::Ctx().stats.messages_sent);
        run_once(mode);
        const double local =
            static_cast<double>(mpisim::Ctx().stats.messages_sent) - before;
        double max_msgs = 0.0;
        mpisim::Allreduce(&local, &max_msgs, 1, mpisim::Datatype::kFloat64,
                          mpisim::ReduceOp::kMax, world);
        if (world.Rank() == 0) {
          ctx.Row("segment_exchange_skewed", benchutil::ModeName(mode), p,
                  cap, m,
                  {{"messages", static_cast<std::int64_t>(max_msgs)}});
        }
      }
    }
  });
}

void SkewSweep(benchutil::BenchContext& ctx) {
  const int reps = ctx.reps(5);
  for (int p : ctx.smoke() ? std::vector<int>{8}
                           : std::vector<int>{8, 16, 32}) {
    SkewSweepAt(ctx, p, reps);
  }
}

/// Large-message regime on the skewed rotation: one destination receives
/// the whole per-rank payload (`cap` elements), swept over segment sizes
/// for the two chunk-capable paths (sparse, dense) plus the unsegmented
/// baselines. Each row carries the exchange layer's wire-segment count
/// and the measured maximum single-message size across all ranks -- the
/// acceptance check is max_msg_bytes <= segment_bytes on the segmented
/// rows.
void LargeMessageSweepAt(benchutil::BenchContext& ctx, int p, int cap,
                         int reps) {
  mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = p});
  rt.Run([&, p, cap](mpisim::Comm& world) {
    rbc::Comm rw;
    rbc::Create_RBC_Comm(world, &rw);
    auto tr = jsort::MakeRbcTransport(rw);
    const int me = tr->Rank();
    const jsort::CapacityLayout layout{
        .p = p, .quota = cap, .cap_first = cap, .cap_last = cap};
    const int owner = (me + 1) % p;
    const std::int64_t begin = layout.PrefixBefore(owner);
    std::vector<double> data(static_cast<std::size_t>(cap), 1.0);
    auto run_once = [&](jsort::exchange::Mode mode, std::int64_t seg,
                        jsort::exchange::ExchangeStats* stats) {
      std::vector<double> sink;
      std::vector<jsort::exchange::Segment> segs(1);
      segs[0] = jsort::exchange::Segment{data.data(), cap, begin, &sink,
                                         cap};
      jsort::Poll poll = jsort::exchange::StartSegmentExchange(
          tr, layout, std::move(segs), 19, mode, stats, seg);
      while (!poll()) {
      }
    };
    for (auto mode : {jsort::exchange::Mode::kAlltoallv,
                      jsort::exchange::Mode::kSparse}) {
      for (std::int64_t seg :
           {std::int64_t{0}, std::int64_t{4096}, std::int64_t{65536}}) {
        const auto m = benchutil::MeasureOnRanks(world, reps, [&] {
          run_once(mode, seg, nullptr);
        });
        // Untimed accounting pass: per-rank message count, wire segments,
        // and the fleet-wide maximum single-message size.
        mpisim::Barrier(world);
        mpisim::Ctx().stats.max_message_bytes = 0;
        const double before =
            static_cast<double>(mpisim::Ctx().stats.messages_sent);
        jsort::exchange::ExchangeStats stats;
        run_once(mode, seg, &stats);
        // Read both counters before the reductions below inject their own
        // wire messages into them.
        const double local_msgs =
            static_cast<double>(mpisim::Ctx().stats.messages_sent) - before;
        const double local_bytes =
            static_cast<double>(mpisim::Ctx().stats.max_message_bytes);
        double max_msgs = 0.0;
        mpisim::Allreduce(&local_msgs, &max_msgs, 1,
                          mpisim::Datatype::kFloat64, mpisim::ReduceOp::kMax,
                          world);
        double max_bytes = 0.0;
        mpisim::Allreduce(&local_bytes, &max_bytes, 1,
                          mpisim::Datatype::kFloat64, mpisim::ReduceOp::kMax,
                          world);
        if (world.Rank() == 0) {
          ctx.Row("segment_exchange_large", benchutil::ModeName(mode), p,
                  cap, m,
                  {{"messages", static_cast<std::int64_t>(max_msgs)},
                   {"segment_bytes", seg},
                   {"segments", stats.segments},
                   {"max_msg_bytes",
                    static_cast<std::int64_t>(max_bytes)}});
        }
      }
    }
  });
}

void LargeMessageSweep(benchutil::BenchContext& ctx) {
  const int reps = ctx.reps(5);
  if (ctx.smoke()) {
    LargeMessageSweepAt(ctx, 8, 1 << 12, reps);
  } else {
    for (int p : {8, 16}) LargeMessageSweepAt(ctx, p, 1 << 13, reps);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::BenchSpec spec;
  spec.binary = "bench_alltoall";
  spec.figure = "exchange layer (Sections IV/VII infrastructure)";
  spec.description =
      "uniform and skewed all-to-all exchanges across the dense, coalesced "
      "and sparse delivery paths, plus the segmented large-message regime";
  spec.default_p = 32;
  spec.default_reps = 5;
  spec.sections = {
      {"uniform", "rbc vs native Alltoallv on uniform exchanges",
       UniformSweep},
      {"skewed", "delivery-path comparison on the neighbour rotation",
       SkewSweep},
      {"large", "segment_bytes sweep in the large-message regime",
       LargeMessageSweep}};
  return benchutil::BenchMain(argc, argv, spec);
}
