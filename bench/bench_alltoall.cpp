// All-to-all exchange benchmark: rbc::Alltoallv vs mpisim::Alltoallv on
// uniform personalized exchanges, and the jsort::exchange segment paths
// (dense Alltoallv vs coalesced vs sparse) on a skewed neighbour-rotation
// redistribution. The skewed rows also report the *measured* per-rank
// message count (payload plus every metadata message: the dense counts
// round, the sparse barriers), taken from the substrate's traffic
// counters -- the startup-cost story of the paths in one number.
//
// Output is machine-readable JSON (one top-level array of measurement
// objects) so the results can accumulate into the BENCH_*.json perf
// trajectory:
//   ./bench_alltoall > BENCH_alltoall.json
#include <cstdio>
#include <string>
#include <vector>

#include "benchutil.hpp"
#include "rbc/rbc.hpp"
#include "sort/exchange.hpp"

namespace {

constexpr int kReps = 5;

benchutil::JsonRows rows;

void EmitRow(const char* bench, const char* backend, int p, long long count,
             const benchutil::Measurement& m, long long messages = -1) {
  std::string extra;
  if (messages >= 0) {
    extra = "\"messages\": " + std::to_string(messages);
  }
  rows.Row(bench, backend, p, count, m, extra);
}

/// Uniform personalized exchange: every rank sends `count` elements to
/// every peer, RBC schedule vs the substrate's native implementation.
void UniformSweep(int p) {
  mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = p});
  rt.Run([p](mpisim::Comm& world) {
    rbc::Comm rw;
    rbc::Create_RBC_Comm(world, &rw);
    for (int count : {1, 16, 256, 4096}) {
      std::vector<double> send(static_cast<std::size_t>(count) *
                                   static_cast<std::size_t>(p),
                               1.0);
      std::vector<double> recv(send.size(), 0.0);
      std::vector<int> counts(static_cast<std::size_t>(p), count),
          displs(static_cast<std::size_t>(p));
      for (int i = 0; i < p; ++i) {
        displs[static_cast<std::size_t>(i)] = i * count;
      }
      const auto mpi = benchutil::MeasureOnRanks(world, kReps, [&] {
        mpisim::Alltoallv(send.data(), counts, displs,
                          mpisim::Datatype::kFloat64, recv.data(), counts,
                          displs, world);
      });
      const auto rbcm = benchutil::MeasureOnRanks(world, kReps, [&] {
        rbc::Alltoallv(send.data(), counts, displs, rbc::Datatype::kFloat64,
                       recv.data(), counts, displs, rw);
      });
      if (world.Rank() == 0) {
        EmitRow("alltoallv_uniform", "mpi", p, count, mpi);
        EmitRow("alltoallv_uniform", "rbc", p, count, rbcm);
      }
    }
  });
}

/// Skewed redistribution: every rank's elements all belong to one
/// neighbour (the jquick-style sparse pattern), via all three exchange
/// paths. Alongside the timings, one extra untimed run measures the
/// maximum per-rank message count (payload + metadata) from the
/// substrate's traffic counters.
void SkewSweep(int p) {
  mpisim::Runtime rt(mpisim::Runtime::Options{.num_ranks = p});
  rt.Run([p](mpisim::Comm& world) {
    rbc::Comm rw;
    rbc::Create_RBC_Comm(world, &rw);
    auto tr = jsort::MakeRbcTransport(rw);
    const int me = tr->Rank();
    for (int cap : {16, 1024}) {
      const jsort::CapacityLayout layout{
          .p = p, .quota = cap, .cap_first = cap, .cap_last = cap};
      const int owner = (me + 1) % p;
      const std::int64_t begin = layout.PrefixBefore(owner);
      std::vector<double> data(static_cast<std::size_t>(cap), 1.0);
      auto run_once = [&](jsort::exchange::Mode mode) {
        std::vector<double> sink;
        std::vector<jsort::exchange::Segment> segs(1);
        segs[0] = jsort::exchange::Segment{data.data(), cap, begin, &sink,
                                           cap};
        jsort::Poll poll = jsort::exchange::StartSegmentExchange(
            tr, layout, std::move(segs), 19, mode);
        while (!poll()) {
        }
      };
      for (auto mode : {jsort::exchange::Mode::kAlltoallv,
                        jsort::exchange::Mode::kCoalesced,
                        jsort::exchange::Mode::kSparse}) {
        const auto m = benchutil::MeasureOnRanks(world, kReps, [&] {
          run_once(mode);
        });
        // Untimed message-count pass: max per-rank sends of one exchange
        // (the counter only sees the caller's own sends, all of which
        // happen inside run_once).
        mpisim::Barrier(world);
        const double before =
            static_cast<double>(mpisim::Ctx().stats.messages_sent);
        run_once(mode);
        const double local =
            static_cast<double>(mpisim::Ctx().stats.messages_sent) - before;
        double max_msgs = 0.0;
        mpisim::Allreduce(&local, &max_msgs, 1, mpisim::Datatype::kFloat64,
                          mpisim::ReduceOp::kMax, world);
        if (world.Rank() == 0) {
          EmitRow("segment_exchange_skewed", benchutil::ModeName(mode), p,
                  cap, m, static_cast<long long>(max_msgs));
        }
      }
    }
  });
}

}  // namespace

int main() {
  for (int p : {4, 8, 16, 32}) UniformSweep(p);
  for (int p : {8, 16, 32}) SkewSweep(p);
  rows.Close();
  return 0;
}
