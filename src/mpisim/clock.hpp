// The virtual alpha-beta clock.
//
// The paper analyses every algorithm in the single-ported message passing
// model of its Section II: sending a message of l machine words costs
// alpha + l*beta on both endpoints, and a receiver cannot complete a
// receive before the sender finished injecting it. Because this
// reproduction runs all ranks as threads of one process (often on one
// core), wall-clock time alone cannot reproduce the paper's scale; the
// virtual clock gives deterministic, machine-independent "model time"
// curves whose *shape* is directly comparable to the paper's figures.
#pragma once

#include <cstdint>

namespace mpisim {

/// Parameters of the single-ported alpha-beta model, in abstract model time
/// units (think microseconds). Defaults approximate a commodity cluster:
/// a startup is 500x the per-word cost.
///
/// The model is optionally *two-level* (node-aware): when any of the
/// intra_/inter_ overrides is set (>= 0), messages between ranks on the
/// same node of the installed topo::Topology are charged the intra
/// parameters and messages crossing nodes the inter parameters. Unset
/// overrides (< 0, the default) inherit the flat alpha/beta, so a default
/// CostModel computes bit-for-bit the same costs as before the two-level
/// extension existed.
struct CostModel {
  /// Per-message startup overhead (Section II: alpha).
  double alpha = 10.0;
  /// Per machine-word (8 byte) transfer time (Section II: beta).
  double beta = 0.02;
  /// Cost charged per unit of generic local work explicitly accounted by
  /// the substrate.
  double compute_unit = 0.002;
  /// Cost charged per group member during native communicator
  /// construction (explicit rank array + translation tables). Calibrated
  /// from the paper's Figure 5: Intel MPI_Comm_create_group needs ~1 ms
  /// for 2^10 ranks, i.e. roughly 1 model-microsecond per member.
  double group_entry = 0.5;

  /// Two-level overrides; < 0 = unset (inherit alpha/beta above).
  double intra_alpha = -1.0;
  double intra_beta = -1.0;
  double inter_alpha = -1.0;
  double inter_beta = -1.0;

  /// True when any two-level override is set -- the substrate then
  /// distinguishes intra-node from inter-node messages.
  bool Hierarchical() const {
    return intra_alpha >= 0.0 || intra_beta >= 0.0 || inter_alpha >= 0.0 ||
           inter_beta >= 0.0;
  }

  double AlphaFor(bool inter) const {
    const double a = inter ? inter_alpha : intra_alpha;
    return a >= 0.0 ? a : alpha;
  }
  double BetaFor(bool inter) const {
    const double b = inter ? inter_beta : intra_beta;
    return b >= 0.0 ? b : beta;
  }

  /// Model cost of one message of `bytes` payload bytes (flat model, and
  /// the exact arithmetic of the pre-two-level substrate).
  double MessageCost(std::uint64_t bytes) const {
    return alpha + beta * (static_cast<double>(bytes) / 8.0);
  }

  /// Node-aware cost: `inter` says whether the message crosses nodes.
  /// With no overrides set this is byte-identical to MessageCost(bytes).
  double MessageCost(std::uint64_t bytes, bool inter) const {
    if (!Hierarchical()) return MessageCost(bytes);
    return AlphaFor(inter) +
           BetaFor(inter) * (static_cast<double>(bytes) / 8.0);
  }
};

/// Per-rank virtual clock (owned and written exclusively by the rank's own
/// thread; read by the runtime after join).
class VirtualClock {
 public:
  /// Current virtual time of this rank.
  double Now() const { return now_; }

  /// Advances local time by `dt` (local work, message injection, ...).
  void Advance(double dt) { now_ += dt; }

  /// Synchronizes with an incoming timestamp: time can only move forward.
  void Merge(double ts) {
    if (ts > now_) now_ = ts;
  }

  /// Resets to zero (used between benchmark repetitions).
  void Reset() { now_ = 0.0; }

 private:
  double now_ = 0.0;
};

/// Per-rank traffic counters. Tests use these to prove properties such as
/// "Split_RBC_Comm sends zero messages".
struct Stats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_received = 0;
  /// Largest single message injected by this rank, in payload bytes --
  /// segmentation tests bound this against the configured segment size.
  /// A running high-water mark: zero it before an operation to measure
  /// that operation alone.
  std::uint64_t max_message_bytes = 0;
  /// Subset of the send/receive counters above crossing node boundaries
  /// of the installed topo::Topology (always 0 on a flat topology -- a
  /// flat machine has a single node).
  std::uint64_t inter_messages_sent = 0;
  std::uint64_t inter_bytes_sent = 0;
  std::uint64_t inter_messages_received = 0;
  std::uint64_t inter_bytes_received = 0;

  Stats& operator+=(const Stats& o) {
    messages_sent += o.messages_sent;
    bytes_sent += o.bytes_sent;
    messages_received += o.messages_received;
    bytes_received += o.bytes_received;
    if (o.max_message_bytes > max_message_bytes) {
      max_message_bytes = o.max_message_bytes;
    }
    inter_messages_sent += o.inter_messages_sent;
    inter_bytes_sent += o.inter_bytes_sent;
    inter_messages_received += o.inter_messages_received;
    inter_bytes_received += o.inter_bytes_received;
    return *this;
  }
};

}  // namespace mpisim
