#include "mpisim/p2p.hpp"

#include <cstring>
#include <thread>

#include "mpisim/runtime.hpp"

namespace mpisim {
namespace {

void ValidateCommon(const Comm& comm, int count, int peer, bool allow_any) {
  if (comm.IsNull()) throw UsageError("p2p: null communicator");
  if (count < 0) throw UsageError("p2p: negative count");
  if (peer == kAnySource && allow_any) return;
  if (peer < 0 || peer >= comm.Size()) {
    throw UsageError("p2p: peer rank out of range");
  }
}

void ValidateCaller(const Comm& comm, const RankContext& rc) {
  if (comm.WorldRank(comm.Rank()) != rc.world_rank) {
    throw UsageError(
        "p2p: communicator handle does not belong to the calling rank");
  }
}

/// Charges the receiver's share of the single-ported message cost: ready at
/// max(own time, sender injection start) + alpha + beta*l. Node-aware: a
/// message whose sender lives on another node of the installed topology is
/// charged the inter-node parameters and counted in the inter_* stats.
void ChargeRecv(RankContext& rc, const Message& m) {
  const bool inter =
      !rc.runtime->SameNode(m.env.source_global, rc.world_rank);
  const double c =
      rc.runtime->options().cost.MessageCost(m.payload.size(), inter);
  rc.clock.Merge(m.timestamp - c);
  rc.clock.Advance(c);
  rc.stats.messages_received += 1;
  rc.stats.bytes_received += m.payload.size();
  if (inter) {
    rc.stats.inter_messages_received += 1;
    rc.stats.inter_bytes_received += m.payload.size();
  }
}

void CopyOut(const Message& m, void* buf, int count, Datatype dt) {
  const std::size_t cap = static_cast<std::size_t>(count) * SizeOf(dt);
  if (m.payload.size() > cap) {
    throw UsageError("Recv: message truncated (payload larger than buffer)");
  }
  if (!m.payload.empty()) std::memcpy(buf, m.payload.data(), m.payload.size());
}

Status StatusOf(const Message& m) {
  return Status{.source = m.env.source, .tag = m.env.tag,
                .bytes = m.payload.size()};
}

/// State machine of a nonblocking receive.
class RecvRequest final : public detail::RequestImpl {
 public:
  RecvRequest(void* buf, int count, Datatype dt, int src, int tag, Comm comm,
              Channel ch)
      : buf_(buf), count_(count), dt_(dt), src_(src), tag_(tag),
        comm_(std::move(comm)), ch_(ch) {}

  bool Test(Status* st) override {
    RankContext& rc = Ctx();
    auto m = rc.runtime->MailboxOf(rc.world_rank)
                 .TryPop(comm_.CtxOf(ch_), src_, tag_);
    if (!m) return false;
    CopyOut(*m, buf_, count_, dt_);
    ChargeRecv(rc, *m);
    if (st != nullptr) *st = StatusOf(*m);
    return true;
  }

 private:
  void* buf_;
  int count_;
  Datatype dt_;
  int src_;
  int tag_;
  Comm comm_;
  Channel ch_;
};

}  // namespace

namespace detail {

void SendOnChannel(const void* buf, int count, Datatype dt, int dest, int tag,
                   const Comm& comm, Channel ch) {
  ValidateCommon(comm, count, dest, /*allow_any=*/false);
  RankContext& rc = Ctx();
  ValidateCaller(comm, rc);
  const std::size_t bytes = static_cast<std::size_t>(count) * SizeOf(dt);
  const int dest_world = comm.WorldRank(dest);
  const bool inter = !rc.runtime->SameNode(rc.world_rank, dest_world);
  rc.clock.Advance(rc.runtime->options().cost.MessageCost(bytes, inter));
  Message m;
  m.env = Envelope{.context = comm.CtxOf(ch), .source = comm.Rank(),
                   .source_global = rc.world_rank, .tag = tag};
  m.payload.resize(bytes);
  if (bytes != 0) std::memcpy(m.payload.data(), buf, bytes);
  m.timestamp = rc.clock.Now();
  rc.stats.messages_sent += 1;
  rc.stats.bytes_sent += bytes;
  if (bytes > rc.stats.max_message_bytes) {
    rc.stats.max_message_bytes = bytes;
  }
  if (inter) {
    rc.stats.inter_messages_sent += 1;
    rc.stats.inter_bytes_sent += bytes;
  }
  rc.runtime->MailboxOf(dest_world).Post(std::move(m));
}

void RecvOnChannel(void* buf, int count, Datatype dt, int src, int tag,
                   const Comm& comm, Channel ch, Status* st) {
  ValidateCommon(comm, count, src, /*allow_any=*/true);
  RankContext& rc = Ctx();
  ValidateCaller(comm, rc);
  Mailbox& mb = rc.runtime->MailboxOf(rc.world_rank);
  const std::uint64_t ctx = comm.CtxOf(ch);
  std::optional<Message> m = mb.TryPop(ctx, src, tag);
  if (!m) {
    // Slow path: register as blocked (the wait completes only via this one
    // envelope pattern), then block on the mailbox.
    ScopedWait guard(MakeWait("Recv", {{ctx, src, tag}}, /*known=*/true));
    try {
      m = mb.PopBlocking(ctx, src, tag,
                         rc.runtime->options().deadlock_timeout);
    } catch (const DeadlockError&) {
      throw DeadlockError(BuildDeadlockReport(
          *rc.runtime,
          "mpisim: blocking receive timed out (suspected deadlock)"));
    }
  }
  CopyOut(*m, buf, count, dt);
  ChargeRecv(rc, *m);
  if (st != nullptr) *st = StatusOf(*m);
}

Request IsendOnChannel(const void* buf, int count, Datatype dt, int dest,
                       int tag, const Comm& comm, Channel ch) {
  SendOnChannel(buf, count, dt, dest, tag, comm, ch);
  return Request(std::make_shared<CompletedRequest>());
}

Request IrecvOnChannel(void* buf, int count, Datatype dt, int src, int tag,
                       const Comm& comm, Channel ch) {
  ValidateCommon(comm, count, src, /*allow_any=*/true);
  ValidateCaller(comm, Ctx());
  auto impl =
      std::make_shared<RecvRequest>(buf, count, dt, src, tag, comm, ch);
  Request req(std::move(impl));
  req.Test();  // eager first progress attempt
  return req;
}

bool IprobeOnChannel(int src, int tag, const Comm& comm, Channel ch,
                     Status* st) {
  ValidateCommon(comm, /*count=*/0, src, /*allow_any=*/true);
  RankContext& rc = Ctx();
  ValidateCaller(comm, rc);
  Envelope env;
  std::size_t bytes = 0;
  if (!rc.runtime->MailboxOf(rc.world_rank)
           .TryPeek(comm.CtxOf(ch), src, tag, &env, &bytes)) {
    return false;
  }
  if (st != nullptr) {
    *st = Status{.source = env.source, .tag = env.tag, .bytes = bytes};
  }
  return true;
}

void ProbeOnChannel(int src, int tag, const Comm& comm, Channel ch,
                    Status* st) {
  ValidateCommon(comm, /*count=*/0, src, /*allow_any=*/true);
  RankContext& rc = Ctx();
  ValidateCaller(comm, rc);
  Mailbox& mb = rc.runtime->MailboxOf(rc.world_rank);
  const std::uint64_t ctx = comm.CtxOf(ch);
  Envelope env;
  std::size_t bytes = 0;
  if (!mb.TryPeek(ctx, src, tag, &env, &bytes)) {
    ScopedWait guard(MakeWait("Probe", {{ctx, src, tag}}, /*known=*/true));
    try {
      mb.PeekBlocking(ctx, src, tag, &env, &bytes,
                      rc.runtime->options().deadlock_timeout);
    } catch (const DeadlockError&) {
      throw DeadlockError(BuildDeadlockReport(
          *rc.runtime,
          "mpisim: blocking probe timed out (suspected deadlock)"));
    }
  }
  if (st != nullptr) {
    *st = Status{.source = env.source, .tag = env.tag, .bytes = bytes};
  }
}

}  // namespace detail

void Send(const void* buf, int count, Datatype dt, int dest, int tag,
          const Comm& comm) {
  if (tag < 0) throw UsageError("Send: user tags must be non-negative");
  detail::SendOnChannel(buf, count, dt, dest, tag, comm, Channel::kUser);
}

void Recv(void* buf, int count, Datatype dt, int src, int tag,
          const Comm& comm, Status* st) {
  detail::RecvOnChannel(buf, count, dt, src, tag, comm, Channel::kUser, st);
}

Request Isend(const void* buf, int count, Datatype dt, int dest, int tag,
              const Comm& comm) {
  if (tag < 0) throw UsageError("Isend: user tags must be non-negative");
  return detail::IsendOnChannel(buf, count, dt, dest, tag, comm,
                                Channel::kUser);
}

Request Irecv(void* buf, int count, Datatype dt, int src, int tag,
              const Comm& comm) {
  return detail::IrecvOnChannel(buf, count, dt, src, tag, comm,
                                Channel::kUser);
}

void Probe(int src, int tag, const Comm& comm, Status* st) {
  if (comm.IsNull()) throw UsageError("Probe: null communicator");
  detail::ProbeOnChannel(src, tag, comm, Channel::kUser, st);
}

bool Iprobe(int src, int tag, const Comm& comm, Status* st) {
  return detail::IprobeOnChannel(src, tag, comm, Channel::kUser, st);
}

void Sendrecv(const void* sendbuf, int sendcount, Datatype sdt, int dest,
              int sendtag, void* recvbuf, int recvcount, Datatype rdt,
              int src, int recvtag, const Comm& comm, Status* st) {
  Request r = Irecv(recvbuf, recvcount, rdt, src, recvtag, comm);
  Send(sendbuf, sendcount, sdt, dest, sendtag, comm);
  Wait(r, st);
}

bool Test(Request& req, Status* st) { return req.Test(st); }

namespace {
/// Shared spin-with-deadline used by Wait/Waitall: yields between polls,
/// honours runtime aborts, and turns a stuck wait into DeadlockError with
/// the full wait-graph report. A request spin may complete without any new
/// message arriving, so it registers with known=false (waitgraph.hpp).
template <typename Poll>
void SpinUntil(Poll poll, const char* what) {
  if (poll()) return;  // fast path: completed already, no registration
  RankContext& rc = Ctx();
  ScopedWait guard(MakeWait(what));
  const auto deadline = std::chrono::steady_clock::now() +
                        rc.runtime->options().deadlock_timeout;
  while (!poll()) {
    if (rc.runtime->Aborted()) {
      throw AbortedError(rc.runtime->FirstFailedRank());
    }
    if (std::chrono::steady_clock::now() > deadline) {
      throw DeadlockError(BuildDeadlockReport(
          *rc.runtime, std::string("mpisim: ") + what +
                           " timed out (suspected deadlock)"));
    }
    std::this_thread::yield();
  }
}
}  // namespace

void Wait(Request& req, Status* st) {
  SpinUntil([&] { return req.Test(st); }, "Wait");
}

bool Testall(std::span<Request> reqs) {
  bool all = true;
  for (Request& r : reqs) all = r.Test(nullptr) && all;
  return all;
}

void Waitall(std::span<Request> reqs) {
  SpinUntil([&] { return Testall(reqs); }, "Waitall");
}

}  // namespace mpisim
