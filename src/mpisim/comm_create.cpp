#include "mpisim/comm_create.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <utility>
#include <vector>

#include "mpisim/collectives.hpp"
#include "mpisim/p2p.hpp"
#include "mpisim/runtime.hpp"

namespace mpisim {
namespace {

using Mask = std::bitset<kMaxMaskContexts>;
constexpr int kMaskBytes = kMaxMaskContexts / 8;
constexpr Channel kCh = Channel::kInternal;
constexpr int kTagDup = (1 << 20) + 1;
constexpr int kTagCreate = (1 << 20) + 2;

void Serialize(const Mask& m, std::byte* out) {
  std::memset(out, 0, kMaskBytes);
  for (int i = 0; i < kMaxMaskContexts; ++i) {
    if (m.test(i)) {
      out[i / 8] |= static_cast<std::byte>(1u << (i % 8));
    }
  }
}

void OrInto(const std::byte* in, Mask& m) {
  for (int i = 0; i < kMaxMaskContexts; ++i) {
    if ((in[i / 8] & static_cast<std::byte>(1u << (i % 8))) !=
        std::byte{0}) {
      m.set(i);
    }
  }
}

std::uint64_t LowestClear(const Mask& m) {
  for (int i = 1; i < kMaxMaskContexts; ++i) {  // 0 is the world comm
    if (!m.test(i)) return static_cast<std::uint64_t>(i);
  }
  throw Error("mpisim: context id space exhausted");
}

/// Binomial BOR-reduce of the used-context masks to member index 0,
/// then binomial broadcast of the union back -- all addressed through the
/// member list `members` (parent comm ranks), on the parent's internal
/// channel with `tag`. This is the MPICH/Open MPI style agreement.
Mask AgreeMaskTree(const Comm& parent, std::span<const int> members,
                   int my_index, int tag) {
  const int g = static_cast<int>(members.size());
  Mask acc = Ctx().ctx_mask;
  std::array<std::byte, kMaskBytes> wire{};

  // Reduce (BOR) to index 0.
  for (int m = 1; m < g; m <<= 1) {
    if ((my_index & m) == 0) {
      const int src = my_index | m;
      if (src < g) {
        detail::RecvOnChannel(wire.data(), kMaskBytes, Datatype::kByte,
                              members[src], tag, parent, kCh);
        OrInto(wire.data(), acc);
      }
    } else {
      Serialize(acc, wire.data());
      detail::SendOnChannel(wire.data(), kMaskBytes, Datatype::kByte,
                            members[my_index & ~m], tag, parent, kCh);
      break;
    }
  }

  // Broadcast the union from index 0.
  int mask = 1;
  while (mask < g) {
    if (my_index & mask) {
      detail::RecvOnChannel(wire.data(), kMaskBytes, Datatype::kByte,
                            members[my_index - mask], tag, parent, kCh);
      acc.reset();
      OrInto(wire.data(), acc);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  Serialize(acc, wire.data());
  while (mask > 0) {
    if (my_index + mask < g) {
      detail::SendOnChannel(wire.data(), kMaskBytes, Datatype::kByte,
                            members[my_index + mask], tag, parent, kCh);
    }
    mask >>= 1;
  }
  return acc;
}

/// Serial ring agreement: the mask crawls up the member chain and the
/// union crawls back down -- 2(g-1) strictly serialized message latencies.
/// Models the pathologically slow vendor create_group of Figure 5.
Mask AgreeMaskRing(const Comm& parent, std::span<const int> members,
                   int my_index, int tag) {
  const int g = static_cast<int>(members.size());
  Mask acc = Ctx().ctx_mask;
  std::array<std::byte, kMaskBytes> wire{};

  if (my_index > 0) {
    detail::RecvOnChannel(wire.data(), kMaskBytes, Datatype::kByte,
                          members[my_index - 1], tag, parent, kCh);
    OrInto(wire.data(), acc);
  }
  if (my_index + 1 < g) {
    Serialize(acc, wire.data());
    detail::SendOnChannel(wire.data(), kMaskBytes, Datatype::kByte,
                          members[my_index + 1], tag, parent, kCh);
    // Union comes back down the chain.
    detail::RecvOnChannel(wire.data(), kMaskBytes, Datatype::kByte,
                          members[my_index + 1], tag, parent, kCh);
    acc.reset();
    OrInto(wire.data(), acc);
  }
  if (my_index > 0) {
    Serialize(acc, wire.data());
    detail::SendOnChannel(wire.data(), kMaskBytes, Datatype::kByte,
                          members[my_index - 1], tag, parent, kCh);
  }
  return acc;
}

/// Marks `base` used at the calling rank and builds the release hook that
/// frees it again when the last communicator handle drops.
std::function<void()> MarkUsed(std::uint64_t base) {
  RankContext& rc = Ctx();
  rc.ctx_mask.set(static_cast<std::size_t>(base));
  RankContext* rcp = &rc;
  return [rcp, base] { rcp->ctx_mask.reset(static_cast<std::size_t>(base)); };
}

/// Charges the deliberate linear cost of materializing an explicit rank
/// array, as Intel/MPICH/Open MPI do during construction (Section III).
Group MaterializeCharged(const Group& g) {
  RankContext& rc = Ctx();
  rc.clock.Advance(static_cast<double>(g.Size()) *
                   rc.runtime->options().cost.group_entry);
  return g.Materialized();
}

/// Context agreement over a whole communicator via the blocking collective
/// machinery (used by split / create / dup).
std::uint64_t AgreeOverWholeComm(const Comm& parent) {
  std::array<std::byte, kMaskBytes> mine{};
  std::array<std::byte, kMaskBytes> unioned{};
  Serialize(Ctx().ctx_mask, mine.data());
  Allreduce(mine.data(), unioned.data(), kMaskBytes, Datatype::kByte,
            ReduceOp::kBor, parent);
  Mask m;
  OrInto(unioned.data(), m);
  return LowestClear(m);
}

}  // namespace

Group GroupIncl(const Comm& comm, std::span<const int> ranks) {
  if (comm.IsNull()) throw UsageError("GroupIncl: null communicator");
  std::vector<int> world;
  world.reserve(ranks.size());
  for (int r : ranks) world.push_back(comm.WorldRank(r));
  return Group::FromExplicit(std::move(world));
}

Group GroupRangeIncl(const Comm& comm, std::span<const RankRange> ranges) {
  if (comm.IsNull()) throw UsageError("GroupRangeIncl: null communicator");
  if (auto affine = comm.GetGroup().AffineMap()) {
    const auto [base, stride] = *affine;
    std::vector<RankRange> world;
    world.reserve(ranges.size());
    for (const RankRange& r : ranges) {
      if (r.first < 0 || r.last >= comm.Size()) {
        throw UsageError("GroupRangeIncl: range out of bounds");
      }
      const int n = r.size();
      world.push_back(RankRange{base + r.first * stride,
                                base + (r.first + (n - 1) * r.stride) * stride,
                                r.stride * stride});
    }
    return Group::FromRanges(std::move(world));
  }
  // Non-affine parent mapping: fall back to explicit enumeration.
  std::vector<int> world;
  for (const RankRange& r : ranges) {
    for (int i = 0; i < r.size(); ++i) world.push_back(comm.WorldRank(r.at(i)));
  }
  return Group::FromExplicit(std::move(world));
}

Comm CommDup(const Comm& parent) {
  if (parent.IsNull()) throw UsageError("CommDup: null communicator");
  const std::uint64_t base = AgreeOverWholeComm(parent);
  std::optional<TupleCtx> tuple;
  if (parent.Tuple()) {
    tuple = *parent.Tuple();
    tuple->c += 1;
  }
  return Comm::Make(parent.GetGroup(), base, parent.Rank(), tuple,
                    MarkUsed(base));
}

Comm CommSplit(const Comm& parent, int color, int key) {
  if (parent.IsNull()) throw UsageError("CommSplit: null communicator");
  const int p = parent.Size();
  const int rank = parent.Rank();
  RankContext& rc = Ctx();

  // Allgather of (color, key) over the whole parent: the Omega(beta*p)
  // step that makes MPI_Comm_split non-scalable for small subgroups.
  std::array<std::int32_t, 2> mine{static_cast<std::int32_t>(color),
                                   static_cast<std::int32_t>(key)};
  std::vector<std::int32_t> all(static_cast<std::size_t>(2) * p);
  Allgather(mine.data(), 2, Datatype::kInt32, all.data(), parent);

  // Context agreement over the whole parent. Disjoint color groups can
  // safely share the resulting id (as MPICH does).
  const std::uint64_t base = AgreeOverWholeComm(parent);

  if (color == kUndefinedColor) return Comm{};

  // Local grouping: members of my color ordered by (key, parent rank).
  std::vector<std::pair<std::int32_t, int>> members;  // (key, parent rank)
  for (int r = 0; r < p; ++r) {
    if (all[2 * static_cast<std::size_t>(r)] == color) {
      members.emplace_back(all[2 * static_cast<std::size_t>(r) + 1], r);
    }
  }
  std::stable_sort(members.begin(), members.end());
  rc.clock.Advance(static_cast<double>(p) *
                   rc.runtime->options().cost.group_entry);

  std::vector<int> world;
  world.reserve(members.size());
  int my_rank = -1;
  for (std::size_t i = 0; i < members.size(); ++i) {
    world.push_back(parent.WorldRank(members[i].second));
    if (members[i].second == rank) my_rank = static_cast<int>(i);
  }
  return Comm::Make(Group::FromExplicit(std::move(world)), base, my_rank,
                    std::nullopt, MarkUsed(base));
}

Comm CommCreateGroup(const Comm& parent, const Group& group, int tag) {
  if (parent.IsNull()) throw UsageError("CommCreateGroup: null communicator");
  RankContext& rc = Ctx();
  const int my_index = group.RankOfWorld(rc.world_rank);
  if (my_index < 0) {
    throw UsageError(
        "CommCreateGroup: calling rank is not a member of the group");
  }
  const int g = group.Size();

  // Translate members to parent ranks -- O(g) local work, charged.
  std::vector<int> members(g);
  for (int i = 0; i < g; ++i) {
    members[i] = parent.GetGroup().RankOfWorld(group.WorldRank(i));
    if (members[i] < 0) {
      throw UsageError("CommCreateGroup: group member not in parent");
    }
  }
  rc.clock.Advance(static_cast<double>(g) *
                   rc.runtime->options().cost.group_entry);

  const Mask unioned =
      rc.runtime->options().profile == VendorProfile::kSlowCreateGroup
          ? AgreeMaskRing(parent, members, my_index, tag)
          : AgreeMaskTree(parent, members, my_index, tag);
  const std::uint64_t base = LowestClear(unioned);

  // Explicit rank-array materialization during construction (Section III:
  // even sparse-storage implementations build this mapping when creating).
  Group stored = MaterializeCharged(group);
  return Comm::Make(std::move(stored), base, my_index, std::nullopt,
                    MarkUsed(base));
}

Comm CommCreate(const Comm& parent, const Group& group) {
  if (parent.IsNull()) throw UsageError("CommCreate: null communicator");
  RankContext& rc = Ctx();
  // Collective over the whole parent communicator.
  const std::uint64_t base = AgreeOverWholeComm(parent);
  const int my_index = group.RankOfWorld(rc.world_rank);
  if (my_index < 0) return Comm{};
  Group stored = MaterializeCharged(group);
  return Comm::Make(std::move(stored), base, my_index, std::nullopt,
                    MarkUsed(base));
}

}  // namespace mpisim
