// Message envelope and payload.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mpisim {

/// Wildcards, mirroring MPI_ANY_SOURCE / MPI_ANY_TAG. User tags must be
/// non-negative.
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Matching header of a message. `context` identifies the communicator
/// channel (user p2p, blocking-collective, or nonblocking-collective
/// subchannel of one communicator); `source` is the sender's rank *within
/// that communicator*.
struct Envelope {
  std::uint64_t context = 0;
  int source = 0;         // rank of the sender in the communicator
  int source_global = 0;  // world rank of the sender (for diagnostics)
  int tag = 0;

  bool Matches(std::uint64_t ctx, int src, int tg) const {
    return context == ctx && (src == kAnySource || source == src) &&
           (tg == kAnyTag || tag == tg);
  }
};

/// A message in flight: envelope + owned payload + the virtual timestamp at
/// which the sender finished injecting it (single-ported model).
struct Message {
  Envelope env;
  std::vector<std::byte> payload;
  double timestamp = 0.0;
};

}  // namespace mpisim
