// Datatypes and reduction operators understood by the substrate.
//
// mpisim deliberately supports a closed set of fixed-size datatypes (no
// derived types); this covers everything RBC and the sorting applications
// need while keeping envelope matching trivial.
#pragma once

#include <cstddef>
#include <cstdint>

#include "mpisim/error.hpp"

namespace mpisim {

/// Wire datatypes. Each has a fixed size; payloads are always
/// `count * SizeOf(datatype)` bytes.
enum class Datatype : std::uint8_t {
  kByte,
  kInt32,
  kUint32,
  kInt64,
  kUint64,
  kFloat32,
  kFloat64,
  /// (key, value) pair of doubles; reductions on it compare `first`.
  kPairDoubleDouble,
  /// (key, value) pair of int64; reductions on it compare `first`.
  kPairInt64Int64,
};

/// POD pair used with Datatype::kPairDoubleDouble.
struct PairDD {
  double first;
  double second;
};

/// POD pair used with Datatype::kPairInt64Int64.
struct PairII {
  std::int64_t first;
  std::int64_t second;
};

/// Size in bytes of one element of `dt`.
constexpr std::size_t SizeOf(Datatype dt) {
  switch (dt) {
    case Datatype::kByte: return 1;
    case Datatype::kInt32: return 4;
    case Datatype::kUint32: return 4;
    case Datatype::kInt64: return 8;
    case Datatype::kUint64: return 8;
    case Datatype::kFloat32: return 4;
    case Datatype::kFloat64: return 8;
    case Datatype::kPairDoubleDouble: return 16;
    case Datatype::kPairInt64Int64: return 16;
  }
  return 0;  // unreachable
}

/// Reduction operators. All are associative; kSum/kProd/kMin/kMax/bitwise
/// are also commutative. kMaxPairFirst / kMinPairFirst act on the pair
/// datatypes and select the whole pair whose `first` component wins, which
/// is how the sorter implements distributed weighted-reservoir pivot picks.
enum class ReduceOp : std::uint8_t {
  kSum,
  kProd,
  kMin,
  kMax,
  kBand,
  kBor,
  kBxor,
  kMaxPairFirst,
  kMinPairFirst,
};

/// Applies `inout[i] = op(in[i], inout[i])` for i in [0, count).
/// Throws UsageError if (op, dt) is not a supported combination.
void ApplyReduce(ReduceOp op, Datatype dt, const void* in, void* inout,
                 int count);

/// Human-readable datatype name (diagnostics).
const char* DatatypeName(Datatype dt);

}  // namespace mpisim
