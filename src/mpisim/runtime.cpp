#include "mpisim/runtime.hpp"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <string>
#include <thread>

namespace mpisim {

namespace {
thread_local RankContext* tls_ctx = nullptr;

/// MPISIM_SANITIZE / MPISIM_DEADLOCK_TIMEOUT_MS environment overrides; a
/// set variable beats the programmatic option so any existing binary can
/// be re-run under the sanitizer or with a short timeout.
void ApplyEnvOverrides(Runtime::Options& o) {
  if (const char* v = std::getenv("MPISIM_SANITIZE")) {
    const std::string s(v);
    o.sanitize_collectives = !(s == "0" || s == "false" || s == "off");
  }
  if (const char* v = std::getenv("MPISIM_DEADLOCK_TIMEOUT_MS")) {
    const long ms = std::strtol(v, nullptr, 10);
    if (ms > 0) o.deadlock_timeout = std::chrono::milliseconds(ms);
  }
}
}  // namespace

namespace detail {
std::string AnnotateError(const std::string& what) {
  if (tls_ctx == nullptr) return what;
  return "[rank " + std::to_string(tls_ctx->world_rank) + "/" +
         std::to_string(tls_ctx->world_size) + "] " + what;
}
}  // namespace detail

RankContext& Ctx() {
  if (tls_ctx == nullptr) {
    throw UsageError("mpisim: operation called outside of a rank thread");
  }
  return *tls_ctx;
}

bool InsideRank() { return tls_ctx != nullptr; }

Runtime::Runtime(Options options) : options_(std::move(options)) {
  ApplyEnvOverrides(options_);
  if (options_.num_ranks <= 0) {
    throw UsageError("Runtime: num_ranks must be positive");
  }
  if (const std::string err = options_.topology.Validate(options_.num_ranks);
      !err.empty()) {
    throw UsageError("Runtime: " + err);
  }
  node_of_.resize(options_.num_ranks);
  for (int r = 0; r < options_.num_ranks; ++r) {
    node_of_[r] = options_.topology.NodeOf(r);
  }
  mailboxes_.reserve(options_.num_ranks);
  contexts_.reserve(options_.num_ranks);
  for (int r = 0; r < options_.num_ranks; ++r) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
    auto ctx = std::make_unique<RankContext>();
    ctx->runtime = this;
    ctx->world_rank = r;
    ctx->world_size = options_.num_ranks;
    ctx->rng.seed(options_.seed ^
                  (0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(r + 1)));
    ctx->ctx_mask.set(0);  // base id 0 is the world communicator
    contexts_.push_back(std::move(ctx));
  }
}

void Runtime::Run(const std::function<void(Comm&)>& rank_main) {
  const int p = options_.num_ranks;
  aborted_.store(false, std::memory_order_relaxed);
  first_failed_rank_.store(-1, std::memory_order_relaxed);
  waits_.Reset();
  // Drop the sanitizer's ledgers too: after an aborted run, members sit
  // at divergent sequence positions, and comparing a fresh run's ops
  // against those leftovers would raise spurious mismatches.
  sanitizer_.Reset();
  for (auto& mb : mailboxes_) mb->ResetAbort();
  for (auto& c : contexts_) c->sanitize_depth = 0;
  std::mutex err_mu;
  std::exception_ptr first_error;

  auto body = [&](int rank) {
    tls_ctx = contexts_[rank].get();
    try {
      Comm world =
          Comm::Make(Group::World(p), /*base=*/0, /*my_rank=*/rank,
                     TupleCtx{.a = 0, .b = 0, .f = 0, .l = p - 1, .c = 0});
      rank_main(world);
    } catch (const AbortedError&) {
      // Another rank failed first; exit quietly.
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
      MarkAborted(rank);
      for (auto& mb : mailboxes_) mb->Abort(rank);
    }
    tls_ctx = nullptr;
  };

  if (p == 1) {
    body(0);  // run inline; keeps single-rank tests trivially debuggable
  } else {
    std::vector<std::thread> threads;
    threads.reserve(p);
    for (int r = 0; r < p; ++r) threads.emplace_back(body, r);
    for (auto& t : threads) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);
}

void Runtime::Exec(int p, const std::function<void(Comm&)>& rank_main) {
  Runtime rt(Options{.num_ranks = p});
  rt.Run(rank_main);
}

Mailbox& Runtime::MailboxOf(int world_rank) {
  if (world_rank < 0 || world_rank >= options_.num_ranks) {
    throw UsageError("Runtime::MailboxOf: rank out of range");
  }
  return *mailboxes_[world_rank];
}

RankContext& Runtime::ContextOf(int world_rank) {
  if (world_rank < 0 || world_rank >= options_.num_ranks) {
    throw UsageError("Runtime::ContextOf: rank out of range");
  }
  return *contexts_[world_rank];
}

std::uint64_t Runtime::InternTuple(const TupleCtx& t) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  auto [it, inserted] = tuple_registry_.emplace(t, next_tuple_base_);
  if (inserted) ++next_tuple_base_;
  return it->second;
}

double Runtime::MaxVirtualTime() const {
  double m = 0.0;
  for (const auto& c : contexts_) m = std::max(m, c->clock.Now());
  return m;
}

void Runtime::ResetClocksAndStats() {
  for (auto& c : contexts_) {
    c->clock.Reset();
    c->stats = Stats{};
  }
}

Stats Runtime::TotalStats() const {
  Stats s;
  for (const auto& c : contexts_) s += c->stats;
  return s;
}

}  // namespace mpisim
