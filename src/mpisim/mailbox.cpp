#include "mpisim/mailbox.hpp"

#include <algorithm>

namespace mpisim {

void Mailbox::Post(Message&& m) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(m));
  }
  cv_.notify_all();
}

const Message* Mailbox::FindLocked(std::uint64_t ctx, int src, int tag) const {
  for (const Message& m : queue_) {
    if (m.env.Matches(ctx, src, tag)) return &m;
  }
  return nullptr;
}

std::optional<Message> Mailbox::TryPop(std::uint64_t ctx, int src, int tag) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->env.Matches(ctx, src, tag)) {
      Message m = std::move(*it);
      queue_.erase(it);
      return m;
    }
  }
  return std::nullopt;
}

bool Mailbox::TryPeek(std::uint64_t ctx, int src, int tag, Envelope* env,
                      std::size_t* bytes) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Message* m = FindLocked(ctx, src, tag);
  if (m == nullptr) return false;
  if (env != nullptr) *env = m->env;
  if (bytes != nullptr) *bytes = m->payload.size();
  return true;
}

namespace {
/// Clears Mailbox::parked_ on every exit path. Declared after the lock,
/// so the flag is reset while mu_ is still held -- the invariant the
/// deadlock detector's parked proof relies on.
struct ParkScope {
  explicit ParkScope(bool& flag) : flag_(flag) { flag_ = true; }
  ~ParkScope() { flag_ = false; }
  bool& flag_;
};
}  // namespace

Message Mailbox::PopBlocking(std::uint64_t ctx, int src, int tag,
                             std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  ParkScope park(parked_);
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    if (aborted_) throw AbortedError(abort_origin_);
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->env.Matches(ctx, src, tag)) {
        Message m = std::move(*it);
        queue_.erase(it);
        return m;
      }
    }
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      throw DeadlockError(
          "mpisim: blocking receive/probe timed out (suspected deadlock)");
    }
  }
}

void Mailbox::PeekBlocking(std::uint64_t ctx, int src, int tag, Envelope* env,
                           std::size_t* bytes,
                           std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  ParkScope park(parked_);
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    if (aborted_) throw AbortedError(abort_origin_);
    if (const Message* m = FindLocked(ctx, src, tag)) {
      if (env != nullptr) *env = m->env;
      if (bytes != nullptr) *bytes = m->payload.size();
      return;
    }
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      throw DeadlockError(
          "mpisim: blocking probe timed out (suspected deadlock)");
    }
  }
}

void Mailbox::Abort(int origin_rank) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    aborted_ = true;
    if (abort_origin_ < 0) abort_origin_ = origin_rank;
  }
  cv_.notify_all();
}

void Mailbox::ResetAbort() {
  std::lock_guard<std::mutex> lock(mu_);
  aborted_ = false;
  abort_origin_ = -1;
}

bool Mailbox::HasParkedWaiter() const {
  std::lock_guard<std::mutex> lock(mu_);
  return parked_;
}

std::size_t Mailbox::QueuedMessages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

std::vector<Envelope> Mailbox::Snapshot(std::size_t max,
                                        std::size_t* total) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (total != nullptr) *total = queue_.size();
  std::vector<Envelope> envs;
  envs.reserve(std::min(max, queue_.size()));
  for (const Message& m : queue_) {
    if (envs.size() >= max) break;
    envs.push_back(m.env);
  }
  return envs;
}

}  // namespace mpisim
