// Collective-correctness sanitizer (RuntimeConfig::sanitize_collectives,
// env override MPISIM_SANITIZE=1).
//
// Design notes
// ------------
// We hand-schedule collectives over reserved tag ranges on three backends
// (rbc hypercube/1-factor schedules, mpisim NBC state machines, icomm).
// A mismatched collective -- wrong root, a rank skipping a fence, a
// truncated alltoallv payload -- surfaces as a deadlock timeout or silent
// corruption. Following the dynamic half of PARCOACH-style MPI
// collective-matching verification, the sanitizer records, per
// communicator *group*, the sequence of collective operations each rank
// issues and cross-checks every new entry rank-against-rank at the same
// sequence number. The first divergence raises CollectiveMismatchError
// naming both world ranks, the divergent sequence number, and the last
// few matching operations.
//
// What one record carries and what is checked at each sequence number:
//  * op kind, blocking/nonblocking flavor, root, logical tag, uniform
//    element count, datatype size, and segment limit must agree between
//    every pair of members;
//  * vector counts are checked pairwise, not just for equality: for
//    Alltoallv, rank i's sendcounts[j] must equal rank j's recvcounts[i];
//    for Gatherv, the root's recvcounts[r] must equal rank r's
//    contribution count;
//  * root-sourced ops record a cheap FNV-1a payload signature over (the
//    first 4 KiB of) the root's buffer; the non-roots of a *blocking*
//    broadcast verify their received bytes against it when the call
//    returns, which catches payload corruption the envelope checks miss.
//
// Ledger keying. mpisim mask context ids are released and *reused* when a
// communicator is destroyed, so ledgers are keyed by (base context id,
// group content hash): a recycled id over a different group can never
// alias an old ledger, and a re-created communicator over the same group
// deliberately resumes its predecessor's sequence. RBC communicators have
// no context ids of their own (they are range views onto an MPI
// communicator); their ledgers extend the underlying communicator's key
// with the range triple (first, size, stride), and member slots are RBC
// ranks. The rbc layer registers each hand-rolled schedule as ONE logical
// collective through this interface -- the sanitizer checks intent, never
// the individual point-to-point messages of a schedule.
//
// Precondition checked, not assumed: all members of one group must issue
// their collectives over that group in the same program order. This is
// already the substrate's NBC-tag-counter precondition and the RBC
// library's Section V-A discipline; the sanitizer turns a violation from
// a hang into a two-rank diagnostic.
//
// Composite operations (Allreduce = Reduce + Bcast, Barrier = reduce +
// bcast chain, Alltoall -> Alltoallv, ...) record only their outermost
// public entry: a per-rank nesting depth suppresses the inner records, so
// every rank logs the logical op it was asked for, on every backend.
//
// Out of scope: the O(alpha) virtual-time wobble under kAnySource
// receives (same-envelope messages merge in wall-clock thread-scheduling
// order; see sched_service_test and the PDES item in ROADMAP.md) is a
// *clock* artifact. It never reorders any rank's program-order collective
// sequence, so it cannot produce sanitizer reports; wildcard-receive
// schedules (sparse exchange, service waves) are checked exactly like
// deterministic ones. Making vtime bit-reproducible is the PDES roadmap
// item, not a sanitizer concern.
//
// History per member is trimmed to the last kHistory records. A rank that
// runs more than kHistory collectives ahead of a peer (possible: eager
// sends never block) escapes comparison at the trimmed sequence numbers;
// any real divergence re-surfaces at a later number or as a deadlock,
// where the forensics report takes over.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "mpisim/comm.hpp"
#include "mpisim/error.hpp"

namespace mpisim::sanitize {

/// Logical collective kinds, shared by every backend.
enum class CollKind : std::uint8_t {
  kBarrier,
  kBcast,
  kBcastLarge,
  kReduce,
  kAllreduce,
  kScan,
  kExscan,
  kGather,
  kGatherv,
  kAllgather,
  kAllgatherv,
  kScatter,
  kScatterv,
  kAlltoall,
  kAlltoallv,
  kSparseAlltoallv,
  // Node-aware hierarchical collectives (topo/hier_collectives.hpp). Each
  // is a composite (leader election + intra-node + leader-only inter-node
  // phases) recorded as ONE logical op; the elected leader list is stored
  // in counts_to so a rank disagreeing about leaders produces a pairwise
  // counts mismatch instead of a deadlock.
  kHierBcast,
  kHierAllreduce,
  kHierGatherv,
  kHierAlltoallv,
};

const char* KindName(CollKind k);

/// One recorded collective entry of one rank.
struct OpRecord {
  CollKind kind = CollKind::kBarrier;
  bool nonblocking = false;
  int root = -1;  // -1 for rootless ops
  int tag = -1;   // logical tag; -1 when the backend has no caller tag
  std::int64_t count = -1;  // uniform element count; -1 for vector ops
  std::uint32_t dtype_size = 0;
  std::int64_t segment_bytes = 0;
  std::uint64_t sig = 0;  // root payload signature; 0 = none recorded
  std::vector<std::int64_t> counts_to;    // vector ops: per-peer send counts
  std::vector<std::int64_t> counts_from;  // vector ops: per-peer recv counts

  /// One-line rendering for diagnostics.
  std::string Describe() const;
};

/// Builder for the common (scalar-field) records; count vectors and
/// signatures are set on the returned value.
inline OpRecord MakeOp(CollKind kind, int root = -1, int tag = -1,
                       std::int64_t count = -1, std::uint32_t dtype_size = 0,
                       std::int64_t segment_bytes = 0) {
  OpRecord r;
  r.kind = kind;
  r.root = root;
  r.tag = tag;
  r.count = count;
  r.dtype_size = dtype_size;
  r.segment_bytes = segment_bytes;
  return r;
}

/// Ledger key; see the keying discussion above.
struct GroupKey {
  std::uint64_t ctx_base = 0;
  std::uint64_t group_hash = 0;
  std::uint64_t range = 0;  // rbc (first,size,stride) mix; 0 for MPI comms

  friend bool operator==(const GroupKey&, const GroupKey&) = default;
};

struct GroupKeyHash {
  std::size_t operator()(const GroupKey& k) const;
};

/// FNV-1a over the first 4 KiB of a payload; cheap enough to run inline
/// on the root of every broadcast under the sanitizer.
std::uint64_t PayloadSignature(const void* data, std::size_t bytes);

/// True when the calling thread is a rank thread of a runtime with
/// sanitize_collectives on; call sites use it to skip building count
/// vectors and payload signatures on the fast path.
bool Enabled();

/// The per-runtime ledger registry. Thread-safe; every method may throw
/// CollectiveMismatchError from the recording rank's thread.
class Registry {
 public:
  /// Records `rec` as member `member`'s next operation on group `key`,
  /// cross-checks it against every other member's record at the same
  /// sequence number, and returns that sequence number.
  long Record(const GroupKey& key, const std::string& comm_desc, int member,
              int member_world, int nmembers, OpRecord rec);

  /// Blocking-broadcast exit check: a non-root compares the signature of
  /// its received payload against the root's entry record at `seq`.
  void CheckExitSignature(const GroupKey& key, int member, int member_world,
                          long seq, std::uint64_t sig);

  /// Drops all ledgers (called at the start of every Runtime::Run, so a
  /// run aborted at divergent sequence positions cannot poison the next).
  void Reset();

 private:
  struct MemberLog {
    int world_rank = -1;
    long base_seq = 0;  // sequence number of ops.front()
    std::deque<OpRecord> ops;

    long NextSeq() const {
      return base_seq + static_cast<long>(ops.size());
    }
    const OpRecord* At(long seq) const {
      if (seq < base_seq || seq >= NextSeq()) return nullptr;
      return &ops[static_cast<std::size_t>(seq - base_seq)];
    }
  };
  struct Ledger {
    std::string desc;
    std::vector<MemberLog> members;
  };

  static constexpr std::size_t kHistory = 64;  // records kept per member
  static constexpr int kContextOps = 4;        // matching ops shown on error

  [[noreturn]] void ThrowMismatch(const Ledger& led, int member_a, long seq_a,
                                  const OpRecord& a, int member_b, long seq_b,
                                  const OpRecord& b, const std::string& why);

  std::mutex mu_;
  std::unordered_map<GroupKey, Ledger, GroupKeyHash> ledgers_;
};

/// RAII recorder for one public collective entry on a rank thread.
/// Inactive when the sanitizer is off, when called outside a rank thread,
/// or when nested inside another collective (composite ops record only
/// their outermost logical op). The destructor runs the armed blocking-
/// broadcast exit check, so it is deliberately noexcept(false).
class Scope {
 public:
  /// Records over an mpisim communicator's group.
  Scope(const Comm& comm, OpRecord rec);

  /// Records over an explicitly keyed group (the rbc layer builds keys
  /// from its range views; see rbc/sanitize.hpp).
  Scope(const GroupKey& key, const std::string& desc, int member,
        int member_world, int nmembers, OpRecord rec);

  ~Scope() noexcept(false);

  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

  /// Arms the destructor to verify `bytes` of `buf` against the root's
  /// recorded payload signature (blocking broadcast, non-root ranks).
  void ArmExitSignatureCheck(const void* buf, std::size_t bytes);

 private:
  void Init(const GroupKey& key, const std::string& desc, int member,
            int member_world, int nmembers, OpRecord&& rec);

  bool depth_held_ = false;
  bool active_ = false;
  Registry* registry_ = nullptr;
  GroupKey key_{};
  int member_ = -1;
  int member_world_ = -1;
  long seq_ = -1;
  const void* check_buf_ = nullptr;
  std::size_t check_bytes_ = 0;
};

}  // namespace mpisim::sanitize
