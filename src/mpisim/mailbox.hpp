// Per-rank mailbox with MPI-style envelope matching.
//
// Delivery into a mailbox is FIFO in posting order; matching scans the
// queue front-to-back, which yields the MPI non-overtaking guarantee:
// two messages from the same sender with envelopes matching the same
// receive are received in send order.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "mpisim/error.hpp"
#include "mpisim/message.hpp"

namespace mpisim {

class Mailbox {
 public:
  /// Delivers a message (called from the sender's thread).
  void Post(Message&& m);

  /// Removes and returns the first message matching (ctx, src, tag), or
  /// nullopt if none is queued. Non-blocking.
  std::optional<Message> TryPop(std::uint64_t ctx, int src, int tag);

  /// Returns a copy of the envelope and the payload byte count of the first
  /// matching message without removing it. Non-blocking probe.
  bool TryPeek(std::uint64_t ctx, int src, int tag, Envelope* env,
               std::size_t* bytes) const;

  /// Blocks until a matching message arrives, then removes and returns it.
  /// Throws AbortedError if the runtime aborted, DeadlockError on timeout.
  Message PopBlocking(std::uint64_t ctx, int src, int tag,
                      std::chrono::milliseconds timeout);

  /// Blocks until a matching message arrives; returns its envelope/size
  /// without removing it (blocking probe).
  void PeekBlocking(std::uint64_t ctx, int src, int tag, Envelope* env,
                    std::size_t* bytes, std::chrono::milliseconds timeout);

  /// Marks the runtime as aborted and wakes all blocked waiters; they throw
  /// AbortedError naming `origin_rank` (the world rank whose failure started
  /// the abort) when it is known.
  void Abort(int origin_rank = -1);

  /// Clears the aborted flag (a fresh Runtime::Run after a failed one).
  void ResetAbort();

  /// Number of queued (undelivered) messages; diagnostics only.
  std::size_t QueuedMessages() const;

  /// Copies up to `max` queued envelopes (front of the queue first) and
  /// reports the total queue length; deadlock forensics only.
  std::vector<Envelope> Snapshot(std::size_t max, std::size_t* total) const;

  /// True while the owning rank's thread is inside PopBlocking or
  /// PeekBlocking. The flag is cleared under mu_ before either call
  /// returns (or throws), so observing it true together with "no
  /// matching queued message" proves the waiter is parked in the cv wait
  /// -- the deterministic half of proactive deadlock detection
  /// (waitgraph.hpp).
  bool HasParkedWaiter() const;

 private:
  const Message* FindLocked(std::uint64_t ctx, int src, int tag) const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  bool aborted_ = false;
  int abort_origin_ = -1;
  bool parked_ = false;
};

}  // namespace mpisim
