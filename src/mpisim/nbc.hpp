// Nonblocking collective operations (MPI-3 style).
//
// Each operation is a round-based state machine in the spirit of Hoefler &
// Lumsdaine's NBC scheme, referenced in Section III of the paper: a round
// performs local work and posts the point-to-point operations it depends
// on; the next round runs once those complete. Progress happens inside
// Test/Wait calls -- there is no progress thread.
//
// Tag management reproduces the scheme the paper describes: every
// nonblocking collective draws the next value from the communicator's tag
// counter, which stays synchronous across ranks because all ranks invoke
// nonblocking collectives on a communicator in the same order. Traffic
// runs on the communicator's dedicated kNbc sub-channel.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "mpisim/comm.hpp"
#include "mpisim/datatype.hpp"
#include "mpisim/request.hpp"

namespace mpisim {

/// Nonblocking binomial-tree broadcast.
Request Ibcast(void* buf, int count, Datatype dt, int root, const Comm& comm);

/// Nonblocking binomial-tree reduction to `root` (commutative ops).
Request Ireduce(const void* send, void* recv, int count, Datatype dt,
                ReduceOp op, int root, const Comm& comm);

/// Nonblocking reduce-to-0 followed by broadcast.
Request Iallreduce(const void* send, void* recv, int count, Datatype dt,
                   ReduceOp op, const Comm& comm);

/// Nonblocking inclusive prefix reduction (distance doubling).
Request Iscan(const void* send, void* recv, int count, Datatype dt,
              ReduceOp op, const Comm& comm);

/// Nonblocking gather with uniform block size.
Request Igather(const void* send, int count, Datatype dt, void* recv,
                int root, const Comm& comm);

/// Nonblocking gather with per-rank counts (significant at root).
Request Igatherv(const void* send, int count, Datatype dt, void* recv,
                 std::span<const int> recvcounts, std::span<const int> displs,
                 int root, const Comm& comm);

/// Nonblocking barrier (reduce + broadcast of an empty token).
Request Ibarrier(const Comm& comm);

/// Nonblocking personalized all-to-all with uniform block size. Send and
/// receive buffers hold Size()*count elements, ordered by rank.
Request Ialltoall(const void* send, int count, Datatype dt, void* recv,
                  const Comm& comm);

/// Nonblocking personalized all-to-all with per-peer counts/displacements
/// (elements; all arrays sized Size() and significant on every rank). The
/// count arrays are copied at call time; only the data buffers must stay
/// alive until completion.
Request Ialltoallv(const void* send, std::span<const int> sendcounts,
                   std::span<const int> sdispls, Datatype dt, void* recv,
                   std::span<const int> recvcounts,
                   std::span<const int> rdispls, const Comm& comm);

/// One outgoing block of a sparse personalized exchange: `count` elements
/// of the operation's datatype to rank `dest`.
struct SparseSendBlock {
  int dest = 0;
  const void* data = nullptr;
  int count = 0;
};

/// One incoming message of a sparse personalized exchange: the raw payload
/// bytes a rank sent to the caller.
struct SparseRecvMessage {
  int source = 0;
  std::vector<std::byte> bytes;
};

/// Nonblocking sparse (neighborhood) personalized all-to-all in the spirit
/// of the NBX algorithm (Hoefler, Siebert, Lumsdaine: "Scalable
/// communication protocols for dynamic sparse data exchange"), adapted to
/// the substrate's eager sends: each rank passes only the destinations it
/// actually sends to -- there is no dense counts round and nothing is
/// transmitted for absent destinations. Receivers discover their senders
/// by probing; termination is detected with two lightweight barriers (the
/// eager protocol deposits a payload into the destination mailbox before
/// the sender enters the first barrier, so its completion bounds the
/// messages still owed; the second fences the operation against a
/// back-to-back successor). Collective; tags are drawn from the
/// communicator's NBC counter. `*received` is appended with every
/// incoming message, ordered by source rank; a block with dest == Rank()
/// is delivered locally. Send blocks are copied out at call time.
Request IsparseAlltoallv(std::span<const SparseSendBlock> sends, Datatype dt,
                         std::vector<SparseRecvMessage>* received,
                         const Comm& comm);

namespace detail {

/// Binomial-tree topology relative to `root`, shared by the state machines.
struct BinomialTree {
  int parent = -1;                // comm rank of parent, -1 at root
  std::vector<int> children;      // comm ranks
  std::vector<int> child_extents; // subtree sizes, aligned with children

  static BinomialTree Compute(int rank, int p, int root);
};

}  // namespace detail

}  // namespace mpisim
