// Nonblocking collective operations (MPI-3 style).
//
// Each operation is a round-based state machine in the spirit of Hoefler &
// Lumsdaine's NBC scheme, referenced in Section III of the paper: a round
// performs local work and posts the point-to-point operations it depends
// on; the next round runs once those complete. Progress happens inside
// Test/Wait calls -- there is no progress thread.
//
// Tag management reproduces the scheme the paper describes: every
// nonblocking collective draws the next value from the communicator's tag
// counter, which stays synchronous across ranks because all ranks invoke
// nonblocking collectives on a communicator in the same order. Traffic
// runs on the communicator's dedicated kNbc sub-channel.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "mpisim/comm.hpp"
#include "mpisim/datatype.hpp"
#include "mpisim/request.hpp"

namespace mpisim {

/// Nonblocking binomial-tree broadcast.
Request Ibcast(void* buf, int count, Datatype dt, int root, const Comm& comm);

/// Nonblocking binomial-tree reduction to `root` (commutative ops).
Request Ireduce(const void* send, void* recv, int count, Datatype dt,
                ReduceOp op, int root, const Comm& comm);

/// Nonblocking reduce-to-0 followed by broadcast.
Request Iallreduce(const void* send, void* recv, int count, Datatype dt,
                   ReduceOp op, const Comm& comm);

/// Nonblocking inclusive prefix reduction (distance doubling).
Request Iscan(const void* send, void* recv, int count, Datatype dt,
              ReduceOp op, const Comm& comm);

/// Nonblocking gather with uniform block size.
Request Igather(const void* send, int count, Datatype dt, void* recv,
                int root, const Comm& comm);

/// Nonblocking gather with per-rank counts (significant at root).
Request Igatherv(const void* send, int count, Datatype dt, void* recv,
                 std::span<const int> recvcounts, std::span<const int> displs,
                 int root, const Comm& comm);

/// Nonblocking barrier (reduce + broadcast of an empty token).
Request Ibarrier(const Comm& comm);

/// Nonblocking personalized all-to-all with uniform block size. Send and
/// receive buffers hold Size()*count elements, ordered by rank.
Request Ialltoall(const void* send, int count, Datatype dt, void* recv,
                  const Comm& comm);

// ---------------------------------------------------------------------------
// Large-message segmentation. A real transport switches from eager to
// rendezvous delivery past a threshold; the segmented exchange paths keep
// every single message at or below `segment_bytes` payload bytes by
// splitting each per-peer block into pipelined segments. The arithmetic is
// shared between the substrate, the RBC collectives and the exchange layer
// so that callers can predict wire message counts exactly.
// ---------------------------------------------------------------------------

/// Wire messages of one Alltoallv block of `count` elements under a
/// segment limit of `segment_bytes` (0 or negative = unlimited). A
/// zero-count block still costs one (empty) message -- MPI semantics --
/// and every segment carries at least one element, so the bound on a
/// single message is max(segment_bytes, esize).
inline std::int64_t AlltoallvSegmentsOf(std::int64_t count, std::size_t esize,
                                        std::int64_t segment_bytes) {
  if (segment_bytes <= 0 || count <= 0) return 1;
  const std::int64_t per = std::max<std::int64_t>(
      1, segment_bytes / static_cast<std::int64_t>(esize));
  return (count + per - 1) / per;
}

/// Offset and length (elements) of segment `s` of a block of `count`
/// elements -- the inverse of AlltoallvSegmentsOf, shared by every
/// segmenting sender/receiver so their walks can never diverge.
inline std::pair<std::int64_t, std::int64_t> AlltoallvSegmentRange(
    std::int64_t count, std::size_t esize, std::int64_t segment_bytes,
    std::int64_t s) {
  if (segment_bytes <= 0) return {0, count};
  const std::int64_t per = std::max<std::int64_t>(
      1, segment_bytes / static_cast<std::int64_t>(esize));
  const std::int64_t off = s * per;
  return {off,
          std::min<std::int64_t>(per, std::max<std::int64_t>(count - off, 0))};
}

/// Header prefix of every sparse payload message: the first chunk of a
/// destination's payload carries the total payload byte count, trailing
/// chunks carry their 1-based sequence number.
inline constexpr std::int64_t kSparseChunkHeaderBytes = 8;

/// Payload bytes one sparse chunk may carry under a segment limit. The
/// capacity never drops below one machine word, so a single message is
/// bounded by max(segment_bytes, kSparseChunkHeaderBytes + 8).
inline std::int64_t SparseChunkCapacity(std::int64_t segment_bytes) {
  return std::max<std::int64_t>(segment_bytes - kSparseChunkHeaderBytes, 8);
}

/// Wire messages (chunks) of one sparse payload of `payload_bytes` under a
/// segment limit of `segment_bytes` (0 or negative = unlimited: one
/// message, still header-prefixed).
inline std::int64_t SparseChunksOf(std::int64_t payload_bytes,
                                   std::int64_t segment_bytes) {
  if (segment_bytes <= 0) return 1;
  const std::int64_t cap = SparseChunkCapacity(segment_bytes);
  return std::max<std::int64_t>(1, (payload_bytes + cap - 1) / cap);
}

/// Nonblocking personalized all-to-all with per-peer counts/displacements
/// (elements; all arrays sized Size() and significant on every rank). The
/// count arrays are copied at call time; only the data buffers must stay
/// alive until completion. With segment_bytes > 0 every per-peer block is
/// split into pipelined segments of at most segment_bytes payload bytes
/// (at least one element each); per-envelope FIFO order sequences the
/// segments of a block, so the wire format needs no headers.
Request Ialltoallv(const void* send, std::span<const int> sendcounts,
                   std::span<const int> sdispls, Datatype dt, void* recv,
                   std::span<const int> recvcounts,
                   std::span<const int> rdispls, const Comm& comm,
                   std::int64_t segment_bytes = 0);

/// One outgoing block of a sparse personalized exchange: `count` elements
/// of the operation's datatype to rank `dest`.
struct SparseSendBlock {
  int dest = 0;
  const void* data = nullptr;
  int count = 0;
};

/// One incoming message of a sparse personalized exchange: the raw payload
/// bytes a rank sent to the caller.
struct SparseRecvMessage {
  int source = 0;
  std::vector<std::byte> bytes;
};

/// Nonblocking sparse (neighborhood) personalized all-to-all in the spirit
/// of the NBX algorithm (Hoefler, Siebert, Lumsdaine: "Scalable
/// communication protocols for dynamic sparse data exchange"), adapted to
/// the substrate's eager sends: each rank passes only the destinations it
/// actually sends to -- there is no dense counts round and nothing is
/// transmitted for absent destinations. Receivers discover their senders
/// by probing; termination is detected with two lightweight barriers (the
/// eager protocol deposits a payload into the destination mailbox before
/// the sender enters the first barrier, so its completion bounds the
/// messages still owed; the second fences the operation against a
/// back-to-back successor). Collective; tags are drawn from the
/// communicator's NBC counter. `*received` is appended with every
/// incoming message, ordered by source rank; a block with dest == Rank()
/// is delivered locally. Send blocks are copied out at call time.
///
/// Payloads ship chunked: the first chunk (on the payload tag) is
/// [int64 total payload bytes][payload...]; with segment_bytes > 0 a
/// payload larger than the first chunk's capacity continues as trailing
/// chunks [int64 seq][payload...] on the operation's chunk tag, sequenced
/// 1, 2, ... per destination (see SparseChunksOf for the arithmetic). A
/// receiver that probes a first chunk pulls that sender's trailing chunks
/// immediately -- eager deposit guarantees they already sit in the
/// mailbox -- so chunked and one-shot payloads are indistinguishable to
/// the caller.
Request IsparseAlltoallv(std::span<const SparseSendBlock> sends, Datatype dt,
                         std::vector<SparseRecvMessage>* received,
                         const Comm& comm, std::int64_t segment_bytes = 0);

namespace detail {

/// Binomial-tree topology relative to `root`, shared by the state machines.
struct BinomialTree {
  int parent = -1;                // comm rank of parent, -1 at root
  std::vector<int> children;      // comm ranks
  std::vector<int> child_extents; // subtree sizes, aligned with children

  static BinomialTree Compute(int rank, int p, int root);
};

/// Chunk wire format of the sparse exchanges, shared by the substrate and
/// the RBC sparse collective. SendChunkedSparse splits one payload into
/// chunk messages ([int64 total][payload...] header, [int64 seq]
/// [payload...] trailing) and hands each to `send` (first = payload tag,
/// else chunk tag), injecting the trailing chunks *before* the header so
/// a probed header guarantees the whole payload is already deposited;
/// ReassembleChunkedSparse inverts it on the receive side, pulling
/// trailing chunks through `recv_chunk` and verifying the sequence.
void SendChunkedSparse(
    const std::byte* payload, std::int64_t payload_bytes,
    std::int64_t segment_bytes,
    const std::function<void(const std::vector<std::byte>&, bool first)>&
        send);
std::vector<std::byte> ReassembleChunkedSparse(
    const std::vector<std::byte>& first,
    const std::function<std::vector<std::byte>(std::int64_t seq)>&
        recv_chunk);

}  // namespace detail

}  // namespace mpisim
