#include "mpisim/collectives.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <vector>

#include "mpisim/nbc.hpp"
#include "mpisim/p2p.hpp"
#include "mpisim/runtime.hpp"
#include "mpisim/sanitizer.hpp"

namespace mpisim {
namespace {

std::vector<std::int64_t> ToCounts(std::span<const int> v) {
  return {v.begin(), v.end()};
}

// Internal tags on the kColl sub-channel. The scan rounds get a tag each so
// distance-doubling messages of different rounds cannot be confused.
constexpr int kTagBcast = 1;
constexpr int kTagReduce = 2;
constexpr int kTagExscanShift = 3;
constexpr int kTagGather = 4;
constexpr int kTagGatherv = 5;
constexpr int kTagAlltoall = 6;
constexpr int kTagScatter = 7;
constexpr int kTagScatterv = 8;
constexpr int kTagScanBase = 64;

constexpr Channel kCh = Channel::kColl;

void ValidateRoot(const Comm& comm, int root) {
  if (comm.IsNull()) throw UsageError("collective: null communicator");
  if (root < 0 || root >= comm.Size()) {
    throw UsageError("collective: root out of range");
  }
}

/// Binomial broadcast over an arbitrary channel+tag; shared with the
/// nonblocking engine's building blocks.
void BcastImpl(void* buf, int count, Datatype dt, int root, const Comm& comm,
               int tag) {
  const int p = comm.Size();
  const int rank = comm.Rank();
  const int relrank = (rank - root + p) % p;
  int mask = 1;
  while (mask < p) {
    if (relrank & mask) {
      const int src = (rank - mask + p) % p;
      detail::RecvOnChannel(buf, count, dt, src, tag, comm, kCh);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (relrank + mask < p) {
      const int dest = (rank + mask) % p;
      detail::SendOnChannel(buf, count, dt, dest, tag, comm, kCh);
    }
    mask >>= 1;
  }
}

/// Binomial reduction to `root`; assumes a commutative operator.
void ReduceImpl(const void* send, void* recv, int count, Datatype dt,
                ReduceOp op, int root, const Comm& comm, int tag) {
  const int p = comm.Size();
  const int rank = comm.Rank();
  const int relrank = (rank - root + p) % p;
  const std::size_t bytes = static_cast<std::size_t>(count) * SizeOf(dt);

  std::vector<std::byte> acc(bytes);
  if (bytes != 0) std::memcpy(acc.data(), send, bytes);
  std::vector<std::byte> tmp(bytes);

  int mask = 1;
  while (mask < p) {
    if ((relrank & mask) == 0) {
      const int rel_src = relrank | mask;
      if (rel_src < p) {
        const int src = (rel_src + root) % p;
        detail::RecvOnChannel(tmp.data(), count, dt, src, tag, comm, kCh);
        ApplyReduce(op, dt, tmp.data(), acc.data(), count);
      }
    } else {
      const int dest = ((relrank & ~mask) + root) % p;
      detail::SendOnChannel(acc.data(), count, dt, dest, tag, comm, kCh);
      break;
    }
    mask <<= 1;
  }
  if (rank == root && recv != nullptr && bytes != 0) {
    std::memcpy(recv, acc.data(), bytes);
  }
}

}  // namespace

void Barrier(const Comm& comm) {
  if (comm.IsNull()) throw UsageError("Barrier: null communicator");
  sanitize::Scope san(comm, sanitize::MakeOp(sanitize::CollKind::kBarrier));
  std::uint8_t token = 0;
  Reduce(&token, &token, 1, Datatype::kByte, ReduceOp::kBor, 0, comm);
  Bcast(&token, 1, Datatype::kByte, 0, comm);
}

void Bcast(void* buf, int count, Datatype dt, int root, const Comm& comm) {
  ValidateRoot(comm, root);
  if (count < 0) throw UsageError("Bcast: negative count");
  sanitize::OpRecord rec =
      sanitize::MakeOp(sanitize::CollKind::kBcast, root, kTagBcast, count,
                       static_cast<std::uint32_t>(SizeOf(dt)));
  const std::size_t bytes = static_cast<std::size_t>(count) * SizeOf(dt);
  const bool is_root = comm.Rank() == root;
  if (is_root && sanitize::Enabled()) {
    rec.sig = sanitize::PayloadSignature(buf, bytes);
  }
  sanitize::Scope san(comm, std::move(rec));
  if (!is_root) san.ArmExitSignatureCheck(buf, bytes);
  BcastImpl(buf, count, dt, root, comm, kTagBcast);
}

void Reduce(const void* send, void* recv, int count, Datatype dt, ReduceOp op,
            int root, const Comm& comm) {
  ValidateRoot(comm, root);
  if (count < 0) throw UsageError("Reduce: negative count");
  sanitize::Scope san(
      comm, sanitize::MakeOp(sanitize::CollKind::kReduce, root, kTagReduce,
                             count, static_cast<std::uint32_t>(SizeOf(dt))));
  ReduceImpl(send, recv, count, dt, op, root, comm, kTagReduce);
}

void Allreduce(const void* send, void* recv, int count, Datatype dt,
               ReduceOp op, const Comm& comm) {
  if (comm.IsNull()) throw UsageError("Allreduce: null communicator");
  sanitize::Scope san(
      comm, sanitize::MakeOp(sanitize::CollKind::kAllreduce, /*root=*/-1,
                             /*tag=*/-1, count,
                             static_cast<std::uint32_t>(SizeOf(dt))));
  Reduce(send, recv, count, dt, op, 0, comm);
  Bcast(recv, count, dt, 0, comm);
}

void Scan(const void* send, void* recv, int count, Datatype dt, ReduceOp op,
          const Comm& comm) {
  if (comm.IsNull()) throw UsageError("Scan: null communicator");
  if (count < 0) throw UsageError("Scan: negative count");
  sanitize::Scope san(
      comm, sanitize::MakeOp(sanitize::CollKind::kScan, /*root=*/-1,
                             kTagScanBase, count,
                             static_cast<std::uint32_t>(SizeOf(dt))));
  const int p = comm.Size();
  const int rank = comm.Rank();
  const std::size_t bytes = static_cast<std::size_t>(count) * SizeOf(dt);

  std::vector<std::byte> partial(bytes);
  if (bytes != 0) std::memcpy(partial.data(), send, bytes);
  std::vector<std::byte> incoming(bytes);

  int round = 0;
  for (int d = 1; d < p; d <<= 1, ++round) {
    const int tag = kTagScanBase + round;
    // Send the pre-round partial before merging this round's input.
    if (rank + d < p) {
      detail::SendOnChannel(partial.data(), count, dt, rank + d, tag, comm,
                            kCh);
    }
    if (rank - d >= 0) {
      detail::RecvOnChannel(incoming.data(), count, dt, rank - d, tag, comm,
                            kCh);
      // incoming holds the fold of ranks < rank; it is the left operand.
      ApplyReduce(op, dt, partial.data(), incoming.data(), count);
      partial.swap(incoming);
    }
  }
  if (bytes != 0) std::memcpy(recv, partial.data(), bytes);
}

void Exscan(const void* send, void* recv, int count, Datatype dt, ReduceOp op,
            const Comm& comm) {
  if (comm.IsNull()) throw UsageError("Exscan: null communicator");
  sanitize::Scope san(
      comm, sanitize::MakeOp(sanitize::CollKind::kExscan, /*root=*/-1,
                             kTagExscanShift, count,
                             static_cast<std::uint32_t>(SizeOf(dt))));
  const int p = comm.Size();
  const int rank = comm.Rank();
  const std::size_t bytes = static_cast<std::size_t>(count) * SizeOf(dt);
  std::vector<std::byte> incl(bytes);
  Scan(send, incl.data(), count, dt, op, comm);
  if (rank + 1 < p) {
    detail::SendOnChannel(incl.data(), count, dt, rank + 1, kTagExscanShift,
                          comm, kCh);
  }
  if (rank > 0) {
    detail::RecvOnChannel(recv, count, dt, rank - 1, kTagExscanShift, comm,
                          kCh);
  } else if (bytes != 0) {
    std::memset(recv, 0, bytes);
  }
}

void Gather(const void* send, int count, Datatype dt, void* recv, int root,
            const Comm& comm) {
  ValidateRoot(comm, root);
  if (count < 0) throw UsageError("Gather: negative count");
  sanitize::Scope san(
      comm, sanitize::MakeOp(sanitize::CollKind::kGather, root, kTagGather,
                             count, static_cast<std::uint32_t>(SizeOf(dt))));
  const int p = comm.Size();
  const int rank = comm.Rank();
  const int relrank = (rank - root + p) % p;
  const std::size_t block = static_cast<std::size_t>(count) * SizeOf(dt);

  // Assemble the subtree payload in relative-rank order.
  std::vector<std::byte> buf(block);
  if (block != 0) std::memcpy(buf.data(), send, block);

  int mask = 1;
  int extent = 1;  // relative ranks [relrank, relrank+extent) collected
  while (mask < p) {
    if (relrank & mask) {
      const int dest = ((relrank & ~mask) + root) % p;
      detail::SendOnChannel(buf.data(), static_cast<int>(extent) * count, dt,
                            dest, kTagGather, comm, kCh);
      break;
    }
    const int rel_child = relrank | mask;
    if (rel_child < p) {
      const int child_extent = std::min(mask, p - rel_child);
      buf.resize(static_cast<std::size_t>(extent + child_extent) * block);
      const int src = (rel_child + root) % p;
      detail::RecvOnChannel(buf.data() + static_cast<std::size_t>(extent) *
                                             block,
                            child_extent * count, dt, src, kTagGather, comm,
                            kCh);
      extent += child_extent;
    }
    mask <<= 1;
  }

  if (rank == root) {
    // buf holds blocks for relative ranks 0..p-1; rotate to absolute order.
    auto* out = static_cast<std::byte*>(recv);
    for (int rel = 0; rel < p; ++rel) {
      const int abs = (rel + root) % p;
      if (block != 0) {
        std::memcpy(out + static_cast<std::size_t>(abs) * block,
                    buf.data() + static_cast<std::size_t>(rel) * block,
                    block);
      }
    }
  }
}

void Gatherv(const void* send, int count, Datatype dt, void* recv,
             std::span<const int> recvcounts, std::span<const int> displs,
             int root, const Comm& comm) {
  ValidateRoot(comm, root);
  if (count < 0) throw UsageError("Gatherv: negative count");
  sanitize::OpRecord grec =
      sanitize::MakeOp(sanitize::CollKind::kGatherv, root, kTagGatherv, count,
                       static_cast<std::uint32_t>(SizeOf(dt)));
  if (sanitize::Enabled() && comm.Rank() == root) {
    grec.counts_from = ToCounts(recvcounts);
  }
  sanitize::Scope san(comm, std::move(grec));
  const int p = comm.Size();
  const int rank = comm.Rank();
  const int relrank = (rank - root + p) % p;
  const std::size_t esize = SizeOf(dt);

  // Subtree message layout: [int32 n][int32 counts[n]][payload], where
  // counts are per relative rank of the subtree, in order.
  std::vector<std::int32_t> counts{static_cast<std::int32_t>(count)};
  std::vector<std::byte> payload(static_cast<std::size_t>(count) * esize);
  if (!payload.empty()) std::memcpy(payload.data(), send, payload.size());

  auto pack = [&]() {
    std::vector<std::byte> msg(sizeof(std::int32_t) * (1 + counts.size()) +
                               payload.size());
    const std::int32_t n = static_cast<std::int32_t>(counts.size());
    std::memcpy(msg.data(), &n, sizeof n);
    std::memcpy(msg.data() + sizeof n, counts.data(),
                sizeof(std::int32_t) * counts.size());
    if (!payload.empty()) {
      std::memcpy(msg.data() + sizeof(std::int32_t) * (1 + counts.size()),
                  payload.data(), payload.size());
    }
    return msg;
  };
  auto unpack_into = [&](const std::vector<std::byte>& msg) {
    std::int32_t n = 0;
    std::memcpy(&n, msg.data(), sizeof n);
    const std::size_t old = counts.size();
    counts.resize(old + static_cast<std::size_t>(n));
    std::memcpy(counts.data() + old, msg.data() + sizeof n,
                sizeof(std::int32_t) * static_cast<std::size_t>(n));
    const std::size_t hdr = sizeof(std::int32_t) * (1 + static_cast<std::size_t>(n));
    const std::size_t oldp = payload.size();
    payload.resize(oldp + (msg.size() - hdr));
    std::memcpy(payload.data() + oldp, msg.data() + hdr, msg.size() - hdr);
  };

  int mask = 1;
  while (mask < p) {
    if (relrank & mask) {
      const int dest = ((relrank & ~mask) + root) % p;
      std::vector<std::byte> msg = pack();
      detail::SendOnChannel(msg.data(), static_cast<int>(msg.size()),
                            Datatype::kByte, dest, kTagGatherv, comm, kCh);
      break;
    }
    const int rel_child = relrank | mask;
    if (rel_child < p) {
      const int src = (rel_child + root) % p;
      Status st;
      detail::ProbeOnChannel(src, kTagGatherv, comm, kCh, &st);
      std::vector<std::byte> msg(st.bytes);
      detail::RecvOnChannel(msg.data(), static_cast<int>(msg.size()),
                            Datatype::kByte, src, kTagGatherv, comm, kCh);
      unpack_into(msg);
    }
    mask <<= 1;
  }

  if (rank == root) {
    if (static_cast<int>(counts.size()) != p) {
      throw UsageError("Gatherv: internal: incomplete subtree counts");
    }
    auto* out = static_cast<std::byte*>(recv);
    std::size_t off = 0;
    for (int rel = 0; rel < p; ++rel) {
      const int abs = (rel + root) % p;
      if (counts[rel] != recvcounts[abs]) {
        throw UsageError("Gatherv: recvcounts disagree with sent counts");
      }
      const std::size_t nbytes =
          static_cast<std::size_t>(counts[rel]) * esize;
      if (nbytes != 0) {
        std::memcpy(out + static_cast<std::size_t>(displs[abs]) * esize,
                    payload.data() + off, nbytes);
      }
      off += nbytes;
    }
  }
}

void Allgather(const void* send, int count, Datatype dt, void* recv,
               const Comm& comm) {
  if (comm.IsNull()) throw UsageError("Allgather: null communicator");
  sanitize::Scope san(
      comm, sanitize::MakeOp(sanitize::CollKind::kAllgather, /*root=*/-1,
                             /*tag=*/-1, count,
                             static_cast<std::uint32_t>(SizeOf(dt))));
  Gather(send, count, dt, recv, 0, comm);
  Bcast(recv, count * comm.Size(), dt, 0, comm);
}

void Allgatherv(const void* send, int count, Datatype dt, void* recv,
                std::span<const int> recvcounts, std::span<const int> displs,
                const Comm& comm) {
  if (comm.IsNull()) throw UsageError("Allgatherv: null communicator");
  sanitize::OpRecord grec =
      sanitize::MakeOp(sanitize::CollKind::kAllgatherv, /*root=*/-1,
                       /*tag=*/-1, count,
                       static_cast<std::uint32_t>(SizeOf(dt)));
  if (sanitize::Enabled()) grec.counts_from = ToCounts(recvcounts);
  sanitize::Scope san(comm, std::move(grec));
  Gatherv(send, count, dt, recv, recvcounts, displs, 0, comm);
  int total = 0;
  for (int c : recvcounts) total += c;
  Bcast(recv, total, dt, 0, comm);
}

void Scatter(const void* send, int count, Datatype dt, void* recv, int root,
             const Comm& comm) {
  ValidateRoot(comm, root);
  if (count < 0) throw UsageError("Scatter: negative count");
  sanitize::Scope san(
      comm, sanitize::MakeOp(sanitize::CollKind::kScatter, root, kTagScatter,
                             count, static_cast<std::uint32_t>(SizeOf(dt))));
  const int p = comm.Size();
  const int rank = comm.Rank();
  const auto tree = detail::BinomialTree::Compute(rank, p, root);
  const int relrank = (rank - root + p) % p;
  int extent = 1;
  for (int e : tree.child_extents) extent += e;
  const std::size_t block = static_cast<std::size_t>(count) * SizeOf(dt);

  std::vector<std::byte> buf(static_cast<std::size_t>(extent) * block);
  if (rank == root) {
    // Rotate absolute-rank blocks into relative order.
    const auto* in = static_cast<const std::byte*>(send);
    for (int rel = 0; rel < p; ++rel) {
      const int abs = (rel + root) % p;
      if (block != 0) {
        std::memcpy(buf.data() + static_cast<std::size_t>(rel) * block,
                    in + static_cast<std::size_t>(abs) * block, block);
      }
    }
  } else {
    detail::RecvOnChannel(buf.data(), extent * count, dt, tree.parent,
                          kTagScatter, comm, kCh);
  }
  for (int i = static_cast<int>(tree.children.size()) - 1; i >= 0; --i) {
    const std::size_t off = (std::size_t{1} << i) * block;
    detail::SendOnChannel(buf.data() + off,
                          tree.child_extents[static_cast<std::size_t>(i)] *
                              count,
                          dt, tree.children[static_cast<std::size_t>(i)],
                          kTagScatter, comm, kCh);
  }
  if (block != 0) std::memcpy(recv, buf.data(), block);
  (void)relrank;
}

void Scatterv(const void* send, std::span<const int> sendcounts,
              std::span<const int> displs, Datatype dt, void* recv,
              int recvcount, int root, const Comm& comm) {
  ValidateRoot(comm, root);
  sanitize::OpRecord srec =
      sanitize::MakeOp(sanitize::CollKind::kScatterv, root, kTagScatterv,
                       recvcount, static_cast<std::uint32_t>(SizeOf(dt)));
  if (sanitize::Enabled() && comm.Rank() == root) {
    srec.counts_to = ToCounts(sendcounts);
  }
  sanitize::Scope san(comm, std::move(srec));
  const int p = comm.Size();
  const int rank = comm.Rank();
  const auto tree = detail::BinomialTree::Compute(rank, p, root);
  const std::size_t esize = SizeOf(dt);

  // Subtree message layout (mirrors Gatherv): [int32 n][int32 counts[n]]
  // [payload], counts in relative-rank order of the subtree.
  std::vector<std::int32_t> counts;
  std::vector<std::byte> payload;
  if (rank == root) {
    counts.resize(static_cast<std::size_t>(p));
    std::size_t total = 0;
    for (int rel = 0; rel < p; ++rel) {
      const int abs = (rel + root) % p;
      counts[static_cast<std::size_t>(rel)] = sendcounts[abs];
      total += static_cast<std::size_t>(sendcounts[abs]) * esize;
    }
    payload.reserve(total);
    const auto* in = static_cast<const std::byte*>(send);
    for (int rel = 0; rel < p; ++rel) {
      const int abs = (rel + root) % p;
      const std::size_t nbytes =
          static_cast<std::size_t>(sendcounts[abs]) * esize;
      const std::size_t off = payload.size();
      payload.resize(off + nbytes);
      if (nbytes != 0) {
        std::memcpy(payload.data() + off,
                    in + static_cast<std::size_t>(displs[abs]) * esize,
                    nbytes);
      }
    }
  } else {
    Status st;
    detail::ProbeOnChannel(tree.parent, kTagScatterv, comm, kCh, &st);
    std::vector<std::byte> msg(st.bytes);
    detail::RecvOnChannel(msg.data(), static_cast<int>(msg.size()),
                          Datatype::kByte, tree.parent, kTagScatterv, comm,
                          kCh);
    std::int32_t n = 0;
    std::memcpy(&n, msg.data(), sizeof n);
    counts.resize(static_cast<std::size_t>(n));
    std::memcpy(counts.data(), msg.data() + sizeof n,
                sizeof(std::int32_t) * static_cast<std::size_t>(n));
    const std::size_t hdr =
        sizeof(std::int32_t) * (1 + static_cast<std::size_t>(n));
    payload.assign(msg.begin() + static_cast<std::ptrdiff_t>(hdr), msg.end());
  }

  // Forward each child its subtree slice.
  auto bytes_before = [&](int rel_off) {
    std::size_t b = 0;
    for (int i = 0; i < rel_off; ++i) {
      b += static_cast<std::size_t>(counts[static_cast<std::size_t>(i)]) *
           esize;
    }
    return b;
  };
  for (int i = static_cast<int>(tree.children.size()) - 1; i >= 0; --i) {
    const int rel_off = 1 << i;
    const int child_extent =
        tree.child_extents[static_cast<std::size_t>(i)];
    const std::size_t pbegin = bytes_before(rel_off);
    const std::size_t pend = bytes_before(rel_off + child_extent);
    std::vector<std::byte> msg(sizeof(std::int32_t) *
                                   (1 + static_cast<std::size_t>(child_extent)) +
                               (pend - pbegin));
    const std::int32_t n = child_extent;
    std::memcpy(msg.data(), &n, sizeof n);
    std::memcpy(msg.data() + sizeof n,
                counts.data() + rel_off,
                sizeof(std::int32_t) * static_cast<std::size_t>(child_extent));
    if (pend > pbegin) {
      std::memcpy(msg.data() + sizeof(std::int32_t) *
                                   (1 + static_cast<std::size_t>(child_extent)),
                  payload.data() + pbegin, pend - pbegin);
    }
    detail::SendOnChannel(msg.data(), static_cast<int>(msg.size()),
                          Datatype::kByte,
                          tree.children[static_cast<std::size_t>(i)],
                          kTagScatterv, comm, kCh);
  }

  // My own block is the first of my subtree slice.
  if (counts.empty()) throw UsageError("Scatterv: internal: empty counts");
  if (counts[0] > recvcount) {
    throw UsageError("Scatterv: receive buffer too small");
  }
  const std::size_t mine = static_cast<std::size_t>(counts[0]) * esize;
  if (mine != 0) std::memcpy(recv, payload.data(), mine);
}

void Alltoall(const void* send, int count, Datatype dt, void* recv,
              const Comm& comm) {
  if (comm.IsNull()) throw UsageError("Alltoall: null communicator");
  sanitize::Scope san(
      comm, sanitize::MakeOp(sanitize::CollKind::kAlltoall, /*root=*/-1,
                             kTagAlltoall, count,
                             static_cast<std::uint32_t>(SizeOf(dt))));
  const int p = comm.Size();
  std::vector<int> counts(p, count), displs(p);
  for (int i = 0; i < p; ++i) displs[i] = i * count;
  Alltoallv(send, counts, displs, dt, recv, counts, displs, comm);
}

void Alltoallv(const void* send, std::span<const int> sendcounts,
               std::span<const int> sdispls, Datatype dt, void* recv,
               std::span<const int> recvcounts, std::span<const int> rdispls,
               const Comm& comm) {
  if (comm.IsNull()) throw UsageError("Alltoallv: null communicator");
  sanitize::OpRecord arec =
      sanitize::MakeOp(sanitize::CollKind::kAlltoallv, /*root=*/-1,
                       kTagAlltoall, /*count=*/-1,
                       static_cast<std::uint32_t>(SizeOf(dt)));
  if (sanitize::Enabled()) {
    arec.counts_to = ToCounts(sendcounts);
    arec.counts_from = ToCounts(recvcounts);
  }
  sanitize::Scope san(comm, std::move(arec));
  const int p = comm.Size();
  const int rank = comm.Rank();
  const std::size_t esize = SizeOf(dt);
  const auto* in = static_cast<const std::byte*>(send);
  auto* out = static_cast<std::byte*>(recv);

  // Self copy first.
  if (recvcounts[rank] != 0) {
    std::memcpy(out + static_cast<std::size_t>(rdispls[rank]) * esize,
                in + static_cast<std::size_t>(sdispls[rank]) * esize,
                static_cast<std::size_t>(sendcounts[rank]) * esize);
  }
  // Inject all outgoing messages (eager, non-blocking), then drain.
  for (int off = 1; off < p; ++off) {
    const int dest = (rank + off) % p;
    detail::SendOnChannel(
        in + static_cast<std::size_t>(sdispls[dest]) * esize,
        sendcounts[dest], dt, dest, kTagAlltoall, comm, kCh);
  }
  for (int off = 1; off < p; ++off) {
    const int src = (rank - off + p) % p;
    detail::RecvOnChannel(
        out + static_cast<std::size_t>(rdispls[src]) * esize,
        recvcounts[src], dt, src, kTagAlltoall, comm, kCh);
  }
}

}  // namespace mpisim
