// Point-to-point operations: Send/Recv, Isend/Irecv, Probe/Iprobe,
// Test/Wait/Testall/Waitall.
//
// The substrate uses an eager protocol: sends buffer the payload into the
// destination mailbox and complete immediately. This mirrors the
// small-message behaviour of real MPIs and keeps the simulated algorithms
// deadlock-free under buffered-send assumptions; the alpha-beta virtual
// clock still charges full single-ported costs on both endpoints.
#pragma once

#include <span>

#include "mpisim/comm.hpp"
#include "mpisim/datatype.hpp"
#include "mpisim/request.hpp"
#include "mpisim/status.hpp"

namespace mpisim {

/// Blocking standard send of count elements of dt to `dest` (comm rank).
void Send(const void* buf, int count, Datatype dt, int dest, int tag,
          const Comm& comm);

/// Blocking receive from `src` (comm rank or kAnySource). Throws
/// UsageError if the matched message is longer than the receive buffer.
void Recv(void* buf, int count, Datatype dt, int src, int tag,
          const Comm& comm, Status* st = nullptr);

/// Nonblocking send; completes immediately (eager protocol) but still
/// returns a request for uniform Waitall handling.
Request Isend(const void* buf, int count, Datatype dt, int dest, int tag,
              const Comm& comm);

/// Nonblocking receive; progressed by Test/Wait.
Request Irecv(void* buf, int count, Datatype dt, int src, int tag,
              const Comm& comm);

/// Blocking probe: waits until a message matching (src, tag) is available
/// on `comm` and describes it in `st` without receiving it.
void Probe(int src, int tag, const Comm& comm, Status* st);

/// Nonblocking probe; returns true and fills st if a matching message is
/// pending.
bool Iprobe(int src, int tag, const Comm& comm, Status* st = nullptr);

/// Combined send+receive (MPI_Sendrecv): posts the receive, performs the
/// eager send, then completes the receive -- deadlock-free for pairwise
/// exchanges.
void Sendrecv(const void* sendbuf, int sendcount, Datatype sdt, int dest,
              int sendtag, void* recvbuf, int recvcount, Datatype rdt,
              int src, int recvtag, const Comm& comm, Status* st = nullptr);

/// Tests a request for completion (progresses it).
bool Test(Request& req, Status* st = nullptr);

/// Blocks (spinning with yields) until the request completes.
void Wait(Request& req, Status* st = nullptr);

/// Tests all requests; true iff every one is complete.
bool Testall(std::span<Request> reqs);

/// Waits for all requests to complete.
void Waitall(std::span<Request> reqs);

namespace detail {

/// Channel-addressed variants used by collectives and communicator
/// construction protocols. Not part of the public user API.
void SendOnChannel(const void* buf, int count, Datatype dt, int dest, int tag,
                   const Comm& comm, Channel ch);
void RecvOnChannel(void* buf, int count, Datatype dt, int src, int tag,
                   const Comm& comm, Channel ch, Status* st = nullptr);
Request IsendOnChannel(const void* buf, int count, Datatype dt, int dest,
                       int tag, const Comm& comm, Channel ch);
Request IrecvOnChannel(void* buf, int count, Datatype dt, int src, int tag,
                       const Comm& comm, Channel ch);
bool IprobeOnChannel(int src, int tag, const Comm& comm, Channel ch,
                     Status* st);
void ProbeOnChannel(int src, int tag, const Comm& comm, Channel ch,
                    Status* st);

}  // namespace detail

}  // namespace mpisim
