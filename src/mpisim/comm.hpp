// Communicators.
//
// A communicator is, per rank, a handle to (group, context id, own rank).
// Context ids guarantee that traffic of different communicators never
// interferes (Section III of the paper). Each communicator owns three
// matching sub-channels derived from its base context id: user
// point-to-point traffic, blocking collectives, and nonblocking
// collectives -- the classic MPI implementation trick of duplicating the
// context for internal traffic.
//
// Base context ids come from two allocation schemes:
//  * mask-based ids (< kMaxMaskContexts): agreed on by the collective
//    creation routines via an all-reduce with BAND over per-rank context
//    bitmasks, exactly like MPICH / Open MPI (Section III).
//  * structured tuple ids <a, b, f, l, c> (Section VI proposal): computed
//    locally (range case) or by the group's first process (general case)
//    and interned into dense ids by the runtime registry.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "mpisim/group.hpp"

namespace mpisim {

/// Number of context ids representable in the per-rank context bitmask.
inline constexpr int kMaxMaskContexts = 2048;

/// Structured context id of the Section-VI proposal: <a, b, f, l, c>.
/// `a` is the world rank of the process that coined the id, `b` that
/// process's creation counter, `f`/`l` the world-rank range the id covers,
/// and `c` a nesting counter distinguishing a communicator from a
/// same-group parent.
struct TupleCtx {
  int a = 0;
  std::uint32_t b = 0;
  int f = 0;
  int l = 0;
  int c = 0;

  friend bool operator==(const TupleCtx&, const TupleCtx&) = default;
};

struct TupleCtxHash {
  std::size_t operator()(const TupleCtx& t) const {
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ull;
    };
    mix(static_cast<std::uint64_t>(t.a));
    mix(t.b);
    mix(static_cast<std::uint64_t>(t.f));
    mix(static_cast<std::uint64_t>(t.l));
    mix(static_cast<std::uint64_t>(t.c));
    return static_cast<std::size_t>(h);
  }
};

namespace detail {
struct CommImpl {
  Group group;
  std::uint64_t base = 0;  // base context id
  int my_rank = -1;        // this process's rank in `group`
  std::optional<TupleCtx> tuple;  // set when created via the tuple scheme
  // Tag counter for nonblocking collectives. All ranks of a communicator
  // call nonblocking collectives in the same order, so incrementing it
  // locally keeps it synchronous across ranks (Section III discussion of
  // Hoefler & Lumsdaine's scheme).
  int nbc_tag_counter = 0;
  // Content hash of `group` (lazily computed, cached). Mask context ids
  // are recycled on destroy, so sanitizer ledgers key on (base, group
  // hash) to survive id reuse across different groups.
  mutable std::uint64_t group_hash = 0;
  // Releases this communicator's mask context id back to the owning rank's
  // bitmask. Must run on the rank's own thread (communicator handles are
  // rank-local, like real MPI handles).
  std::function<void()> on_destroy;

  ~CommImpl() {
    if (on_destroy) on_destroy();
  }
};
}  // namespace detail

/// Matching sub-channels of a communicator's context.
enum class Channel : std::uint8_t {
  kUser = 0,      // user point-to-point traffic
  kColl = 1,      // blocking collectives
  kNbc = 2,       // nonblocking collectives
  kInternal = 3,  // communicator-construction protocols
};

/// Value-semantic communicator handle. A default-constructed Comm is the
/// null communicator (MPI_COMM_NULL).
class Comm {
 public:
  Comm() = default;

  /// Assembles a communicator handle from its parts. `my_rank` is this
  /// process's rank in `group`, or -1 if this process is not a member (in
  /// which case the handle is null).
  static Comm Make(Group group, std::uint64_t base, int my_rank,
                   std::optional<TupleCtx> tuple = std::nullopt,
                   std::function<void()> on_destroy = nullptr);

  bool IsNull() const { return impl_ == nullptr; }

  /// Rank of the calling process in this communicator.
  int Rank() const;
  /// Number of processes in this communicator.
  int Size() const;
  /// World rank of communicator rank `r`.
  int WorldRank(int r) const;
  const Group& GetGroup() const;
  std::uint64_t Base() const;
  const std::optional<TupleCtx>& Tuple() const;

  /// Envelope context id for a sub-channel of this communicator.
  std::uint64_t CtxOf(Channel ch) const;

  /// FNV-1a hash over the group's world-rank membership (cached). Combined
  /// with Base() it identifies a communicator for sanitizer ledgers even
  /// after its mask context id has been recycled.
  std::uint64_t GroupHash() const;

  /// Allocates the next nonblocking-collective tag (synchronous across
  /// ranks because all ranks call nonblocking collectives in order).
  int NextNbcTag() const;

  friend bool operator==(const Comm& x, const Comm& y) {
    return x.impl_ == y.impl_;
  }

 private:
  std::shared_ptr<detail::CommImpl> impl_;
};

}  // namespace mpisim
