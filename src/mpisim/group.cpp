#include "mpisim/group.hpp"

namespace mpisim {

Group Group::World(int p) {
  if (p <= 0) throw UsageError("Group::World: p must be positive");
  return FromRanges({RankRange{0, p - 1, 1}});
}

Group Group::FromRanges(std::vector<RankRange> ranges) {
  Group g;
  g.size_ = 0;
  for (const RankRange& r : ranges) {
    if (r.stride <= 0) throw UsageError("Group: stride must be positive");
    if (r.first < 0) throw UsageError("Group: negative rank in range");
    g.size_ += r.size();
  }
  g.ranges_ = std::move(ranges);
  return g;
}

Group Group::FromExplicit(std::vector<int> world_ranks) {
  Group g;
  g.size_ = static_cast<int>(world_ranks.size());
  g.reverse_.reserve(world_ranks.size());
  for (int i = 0; i < g.size_; ++i) {
    if (world_ranks[i] < 0) throw UsageError("Group: negative world rank");
    auto [it, inserted] = g.reverse_.emplace(world_ranks[i], i);
    (void)it;
    if (!inserted) throw UsageError("Group: duplicate world rank");
  }
  g.explicit_ = std::move(world_ranks);
  return g;
}

int Group::WorldRank(int i) const {
  if (i < 0 || i >= size_) throw UsageError("Group::WorldRank: out of range");
  if (explicit_) return (*explicit_)[i];
  for (const RankRange& r : ranges_) {
    const int n = r.size();
    if (i < n) return r.at(i);
    i -= n;
  }
  throw UsageError("Group::WorldRank: corrupt group");
}

int Group::RankOfWorld(int world_rank) const {
  if (explicit_) {
    auto it = reverse_.find(world_rank);
    return it == reverse_.end() ? -1 : it->second;
  }
  int base = 0;
  for (const RankRange& r : ranges_) {
    if (world_rank >= r.first && world_rank <= r.last &&
        (world_rank - r.first) % r.stride == 0) {
      return base + (world_rank - r.first) / r.stride;
    }
    base += r.size();
  }
  return -1;
}

std::size_t Group::StorageEntries() const {
  if (explicit_) return explicit_->size();
  return ranges_.size();
}

Group Group::Materialized() const {
  if (explicit_) return *this;
  std::vector<int> ranks;
  ranks.reserve(size_);
  for (const RankRange& r : ranges_) {
    for (int i = 0; i < r.size(); ++i) ranks.push_back(r.at(i));
  }
  return FromExplicit(std::move(ranks));
}

std::optional<std::pair<int, int>> Group::AsContiguousRangeOf(
    const Group& parent) const {
  if (size_ == 0) return std::nullopt;
  const int f = parent.RankOfWorld(WorldRank(0));
  if (f < 0) return std::nullopt;
  // Fast path: both groups are single stride-1 ranges over world ranks.
  if (!explicit_ && ranges_.size() == 1 && ranges_[0].stride == 1 &&
      !parent.explicit_ && parent.ranges_.size() == 1 &&
      parent.ranges_[0].stride == 1) {
    return std::make_pair(f, f + size_ - 1);
  }
  if (f + size_ - 1 >= parent.Size()) return std::nullopt;
  for (int i = 1; i < size_; ++i) {
    if (parent.RankOfWorld(WorldRank(i)) != f + i) return std::nullopt;
  }
  return std::make_pair(f, f + size_ - 1);
}

std::optional<std::pair<int, int>> Group::AffineMap() const {
  if (explicit_ || ranges_.size() != 1) return std::nullopt;
  return std::make_pair(ranges_[0].first, ranges_[0].stride);
}

bool Group::SameAs(const Group& other) const {
  if (size_ != other.size_) return false;
  for (int i = 0; i < size_; ++i) {
    if (WorldRank(i) != other.WorldRank(i)) return false;
  }
  return true;
}

}  // namespace mpisim
