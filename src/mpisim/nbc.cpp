#include "mpisim/nbc.hpp"

#include <algorithm>
#include <cstring>
#include <functional>
#include <vector>

#include "mpisim/error.hpp"
#include "mpisim/p2p.hpp"
#include "mpisim/sanitizer.hpp"

namespace mpisim {
namespace detail {

BinomialTree BinomialTree::Compute(int rank, int p, int root) {
  BinomialTree t;
  const int relrank = (rank - root + p) % p;
  if (relrank != 0) {
    const int lowbit = relrank & (-relrank);
    t.parent = ((relrank ^ lowbit) + root) % p;
  }
  const int limit = relrank == 0 ? p : (relrank & (-relrank));
  for (int m = 1; m < limit && relrank + m < p; m <<= 1) {
    const int rel_child = relrank + m;
    t.children.push_back((rel_child + root) % p);
    t.child_extents.push_back(std::min(m, p - rel_child));
  }
  return t;
}

namespace {

constexpr Channel kCh = Channel::kNbc;

std::size_t Bytes(int count, Datatype dt) {
  if (count < 0) throw UsageError("nonblocking collective: negative count");
  return static_cast<std::size_t>(count) * SizeOf(dt);
}

class IbcastSM final : public RequestImpl {
 public:
  IbcastSM(void* buf, int count, Datatype dt, int root, Comm comm, int tag)
      : buf_(buf), count_(count), dt_(dt), comm_(std::move(comm)), tag_(tag),
        tree_(BinomialTree::Compute(comm_.Rank(), comm_.Size(), root)) {
    if (tree_.parent < 0) {
      SendToChildren();
      done_ = true;
    } else {
      pending_ = IrecvOnChannel(buf_, count_, dt_, tree_.parent, tag_, comm_,
                                kCh);
    }
  }

  bool Test(Status*) override {
    if (done_) return true;
    if (!pending_.Test()) return false;
    SendToChildren();
    done_ = true;
    return true;
  }

 private:
  void SendToChildren() {
    // Largest subtree first, so deep subtrees start as early as possible.
    for (int i = static_cast<int>(tree_.children.size()) - 1; i >= 0; --i) {
      SendOnChannel(buf_, count_, dt_, tree_.children[i], tag_, comm_, kCh);
    }
  }

  void* buf_;
  int count_;
  Datatype dt_;
  Comm comm_;
  int tag_;
  BinomialTree tree_;
  Request pending_;
  bool done_ = false;
};

class IreduceSM final : public RequestImpl {
 public:
  IreduceSM(const void* send, void* recv, int count, Datatype dt, ReduceOp op,
            int root, Comm comm, int tag)
      : recv_(recv), count_(count), dt_(dt), op_(op), root_(root),
        comm_(std::move(comm)), tag_(tag),
        tree_(BinomialTree::Compute(comm_.Rank(), comm_.Size(), root)),
        acc_(Bytes(count, dt)) {
    if (!acc_.empty()) std::memcpy(acc_.data(), send, acc_.size());
    child_bufs_.resize(tree_.children.size());
    child_reqs_.resize(tree_.children.size());
    child_done_.assign(tree_.children.size(), false);
    for (std::size_t i = 0; i < tree_.children.size(); ++i) {
      child_bufs_[i].resize(acc_.size());
      child_reqs_[i] = IrecvOnChannel(child_bufs_[i].data(), count_, dt_,
                                      tree_.children[i], tag_, comm_, kCh);
    }
  }

  bool Test(Status*) override {
    if (done_) return true;
    bool all = true;
    for (std::size_t i = 0; i < child_reqs_.size(); ++i) {
      if (child_done_[i]) continue;
      if (child_reqs_[i].Test()) {
        ApplyReduce(op_, dt_, child_bufs_[i].data(), acc_.data(), count_);
        child_done_[i] = true;
      } else {
        all = false;
      }
    }
    if (!all) return false;
    if (tree_.parent >= 0) {
      SendOnChannel(acc_.data(), count_, dt_, tree_.parent, tag_, comm_, kCh);
    } else if (recv_ != nullptr && !acc_.empty()) {
      std::memcpy(recv_, acc_.data(), acc_.size());
    }
    done_ = true;
    return true;
  }

 private:
  void* recv_;
  int count_;
  Datatype dt_;
  ReduceOp op_;
  int root_;
  Comm comm_;
  int tag_;
  BinomialTree tree_;
  std::vector<std::byte> acc_;
  std::vector<std::vector<std::byte>> child_bufs_;
  std::vector<Request> child_reqs_;
  std::vector<bool> child_done_;
  bool done_ = false;
};

class IscanSM final : public RequestImpl {
 public:
  IscanSM(const void* send, void* recv, int count, Datatype dt, ReduceOp op,
          Comm comm, int tag)
      : recv_(recv), count_(count), dt_(dt), op_(op), comm_(std::move(comm)),
        tag_(tag), partial_(Bytes(count, dt)), incoming_(partial_.size()) {
    if (!partial_.empty()) std::memcpy(partial_.data(), send, partial_.size());
    AdvanceRounds();
  }

  bool Test(Status*) override {
    if (done_) return true;
    if (!pending_.Test()) return false;
    // `incoming_` holds the fold over ranks < rank; it is the left operand.
    ApplyReduce(op_, dt_, partial_.data(), incoming_.data(), count_);
    partial_.swap(incoming_);
    d_ <<= 1;
    AdvanceRounds();
    return done_;
  }

 private:
  void AdvanceRounds() {
    const int p = comm_.Size();
    const int rank = comm_.Rank();
    while (d_ < p) {
      if (rank + d_ < p) {
        SendOnChannel(partial_.data(), count_, dt_, rank + d_, tag_, comm_,
                      kCh);
      }
      if (rank - d_ >= 0) {
        pending_ = IrecvOnChannel(incoming_.data(), count_, dt_, rank - d_,
                                  tag_, comm_, kCh);
        return;  // wait for this round's data dependency
      }
      d_ <<= 1;
    }
    if (!partial_.empty()) std::memcpy(recv_, partial_.data(), partial_.size());
    done_ = true;
  }

  void* recv_;
  int count_;
  Datatype dt_;
  ReduceOp op_;
  Comm comm_;
  int tag_;
  std::vector<std::byte> partial_;
  std::vector<std::byte> incoming_;
  Request pending_;
  int d_ = 1;
  bool done_ = false;
};

class IgatherSM final : public RequestImpl {
 public:
  IgatherSM(const void* send, int count, Datatype dt, void* recv, int root,
            Comm comm, int tag)
      : recv_(recv), count_(count), dt_(dt), root_(root),
        comm_(std::move(comm)), tag_(tag),
        tree_(BinomialTree::Compute(comm_.Rank(), comm_.Size(), root)) {
    const int p = comm_.Size();
    const int relrank = (comm_.Rank() - root + p) % p;
    extent_ = 1;
    for (int e : tree_.child_extents) extent_ += e;
    const std::size_t block = Bytes(count, dt);
    buf_.resize(static_cast<std::size_t>(extent_) * block);
    if (block != 0) std::memcpy(buf_.data(), send, block);
    child_reqs_.resize(tree_.children.size());
    // Child with extent e and offset m (its relative distance) lands at
    // buf_[m*block ..]; children are ordered by increasing mask, and the
    // i-th child's relative offset equals 1<<i.
    for (std::size_t i = 0; i < tree_.children.size(); ++i) {
      const std::size_t off = (1ull << i) * block;
      child_reqs_[i] =
          IrecvOnChannel(buf_.data() + off, tree_.child_extents[i] * count_,
                         dt_, tree_.children[i], tag_, comm_, kCh);
    }
    (void)relrank;
  }

  bool Test(Status*) override {
    if (done_) return true;
    if (!Testall(std::span<Request>(child_reqs_))) return false;
    if (tree_.parent >= 0) {
      SendOnChannel(buf_.data(), extent_ * count_, dt_, tree_.parent, tag_,
                    comm_, kCh);
    } else {
      // Rotate relative-rank-ordered blocks into absolute order.
      const int p = comm_.Size();
      const std::size_t block = Bytes(count_, dt_);
      auto* out = static_cast<std::byte*>(recv_);
      for (int rel = 0; rel < p; ++rel) {
        const int abs = (rel + root_) % p;
        if (block != 0) {
          std::memcpy(out + static_cast<std::size_t>(abs) * block,
                      buf_.data() + static_cast<std::size_t>(rel) * block,
                      block);
        }
      }
    }
    done_ = true;
    return true;
  }

 private:
  void* recv_;
  int count_;
  Datatype dt_;
  int root_;
  Comm comm_;
  int tag_;
  BinomialTree tree_;
  int extent_ = 1;
  std::vector<std::byte> buf_;
  std::vector<Request> child_reqs_;
  bool done_ = false;
};

// Subtree message layout for Igatherv (same as blocking Gatherv):
// [int32 n][int32 counts[n]][payload], counts in relative-rank order.
class IgathervSM final : public RequestImpl {
 public:
  IgathervSM(const void* send, int count, Datatype dt, void* recv,
             std::span<const int> recvcounts, std::span<const int> displs,
             int root, Comm comm, int tag)
      : recv_(recv), recvcounts_(recvcounts.begin(), recvcounts.end()),
        displs_(displs.begin(), displs.end()), dt_(dt), root_(root),
        comm_(std::move(comm)), tag_(tag),
        tree_(BinomialTree::Compute(comm_.Rank(), comm_.Size(), root)) {
    counts_.push_back(count);
    payload_.resize(Bytes(count, dt));
    if (!payload_.empty()) std::memcpy(payload_.data(), send, payload_.size());
    child_msgs_.resize(tree_.children.size());
    child_reqs_.resize(tree_.children.size());
    child_state_.assign(tree_.children.size(), kProbing);
  }

  bool Test(Status*) override {
    if (done_) return true;
    bool all = true;
    for (std::size_t i = 0; i < tree_.children.size(); ++i) {
      if (child_state_[i] == kDone) continue;
      if (child_state_[i] == kProbing) {
        Status st;
        if (!IprobeOnChannel(tree_.children[i], tag_, comm_, kCh, &st)) {
          all = false;
          continue;
        }
        child_msgs_[i].resize(st.bytes);
        child_reqs_[i] = IrecvOnChannel(
            child_msgs_[i].data(), static_cast<int>(st.bytes),
            Datatype::kByte, tree_.children[i], tag_, comm_, kCh);
        child_state_[i] = kReceiving;
      }
      if (child_state_[i] == kReceiving) {
        if (child_reqs_[i].Test()) {
          child_state_[i] = kDone;
        } else {
          all = false;
        }
      }
    }
    if (!all) return false;
    Finish();
    done_ = true;
    return true;
  }

 private:
  enum ChildState { kProbing, kReceiving, kDone };

  void AppendChild(const std::vector<std::byte>& msg) {
    std::int32_t n = 0;
    std::memcpy(&n, msg.data(), sizeof n);
    const std::size_t old = counts_.size();
    counts_.resize(old + static_cast<std::size_t>(n));
    std::memcpy(counts_.data() + old, msg.data() + sizeof n,
                sizeof(std::int32_t) * static_cast<std::size_t>(n));
    const std::size_t hdr =
        sizeof(std::int32_t) * (1 + static_cast<std::size_t>(n));
    const std::size_t oldp = payload_.size();
    payload_.resize(oldp + (msg.size() - hdr));
    std::memcpy(payload_.data() + oldp, msg.data() + hdr, msg.size() - hdr);
  }

  void Finish() {
    // Children arrive in increasing-mask order == relative-rank order.
    for (const auto& msg : child_msgs_) AppendChild(msg);
    if (tree_.parent >= 0) {
      std::vector<std::byte> msg(sizeof(std::int32_t) * (1 + counts_.size()) +
                                 payload_.size());
      const std::int32_t n = static_cast<std::int32_t>(counts_.size());
      std::memcpy(msg.data(), &n, sizeof n);
      std::memcpy(msg.data() + sizeof n, counts_.data(),
                  sizeof(std::int32_t) * counts_.size());
      if (!payload_.empty()) {
        std::memcpy(msg.data() + sizeof(std::int32_t) * (1 + counts_.size()),
                    payload_.data(), payload_.size());
      }
      SendOnChannel(msg.data(), static_cast<int>(msg.size()), Datatype::kByte,
                    tree_.parent, tag_, comm_, kCh);
      return;
    }
    const int p = comm_.Size();
    if (static_cast<int>(counts_.size()) != p) {
      throw UsageError("Igatherv: internal: incomplete subtree counts");
    }
    const std::size_t esize = SizeOf(dt_);
    auto* out = static_cast<std::byte*>(recv_);
    std::size_t off = 0;
    for (int rel = 0; rel < p; ++rel) {
      const int abs = (rel + root_) % p;
      if (counts_[rel] != recvcounts_[abs]) {
        throw UsageError("Igatherv: recvcounts disagree with sent counts");
      }
      const std::size_t nbytes =
          static_cast<std::size_t>(counts_[rel]) * esize;
      if (nbytes != 0) {
        std::memcpy(out + static_cast<std::size_t>(displs_[abs]) * esize,
                    payload_.data() + off, nbytes);
      }
      off += nbytes;
    }
  }

  void* recv_;
  std::vector<int> recvcounts_;
  std::vector<int> displs_;
  Datatype dt_;
  int root_;
  Comm comm_;
  int tag_;
  BinomialTree tree_;
  std::vector<std::int32_t> counts_;
  std::vector<std::byte> payload_;
  std::vector<std::vector<std::byte>> child_msgs_;
  std::vector<Request> child_reqs_;
  std::vector<ChildState> child_state_;
  bool done_ = false;
};

/// Reduce-to-0 then broadcast, chained; used by Iallreduce and Ibarrier.
class IReduceBcastChain final : public RequestImpl {
 public:
  IReduceBcastChain(const void* send, void* recv, int count, Datatype dt,
                    ReduceOp op, Comm comm, int tag)
      : recv_(recv), count_(count), dt_(dt), comm_(std::move(comm)),
        tag_(tag) {
    reduce_ = std::make_shared<IreduceSM>(send, recv, count, dt, op, 0, comm_,
                                          tag_);
  }

  bool Test(Status*) override {
    if (done_) return true;
    if (bcast_ == nullptr) {
      Status st;
      if (!reduce_->Progress(&st)) return false;
      bcast_ = std::make_shared<IbcastSM>(recv_, count_, dt_, 0, comm_,
                                          tag_ + 1);
    }
    Status st;
    if (!bcast_->Progress(&st)) return false;
    done_ = true;
    return true;
  }

 private:
  void* recv_;
  int count_;
  Datatype dt_;
  Comm comm_;
  int tag_;
  std::shared_ptr<IreduceSM> reduce_;
  std::shared_ptr<IbcastSM> bcast_;
  bool done_ = false;
};

class IbarrierSM final : public RequestImpl {
 public:
  explicit IbarrierSM(Comm comm, int tag)
      : chain_(&token_, &token_, 1, Datatype::kByte, ReduceOp::kBor,
               std::move(comm), tag) {}

  bool Test(Status* st) override { return chain_.Progress(st); }

 private:
  std::uint8_t token_ = 0;
  IReduceBcastChain chain_;
};

/// Spread-out personalized all-to-all: all sends are injected eagerly at
/// start (mirroring the blocking Alltoallv), all receives posted up front;
/// Test drains the receives. Zero-count blocks are still transmitted.
/// With a segment limit each per-peer block ships as pipelined segments of
/// at most segment_bytes; segments of one block share the tag and are
/// sequenced by per-envelope FIFO order (receives from one source are
/// posted in segment order, so the k-th pending receive matches the k-th
/// sent segment).
class IalltoallvSM final : public RequestImpl {
 public:
  IalltoallvSM(const void* send, std::span<const int> sendcounts,
               std::span<const int> sdispls, Datatype dt, void* recv,
               std::span<const int> recvcounts, std::span<const int> rdispls,
               Comm comm, int tag, std::int64_t segment_bytes)
      : comm_(std::move(comm)) {
    const int p = comm_.Size();
    const int rank = comm_.Rank();
    if (static_cast<int>(sendcounts.size()) != p ||
        static_cast<int>(sdispls.size()) != p ||
        static_cast<int>(recvcounts.size()) != p ||
        static_cast<int>(rdispls.size()) != p) {
      throw UsageError(
          "Ialltoallv: count/displacement arrays must have Size() entries");
    }
    const std::size_t esize = SizeOf(dt);
    const auto* in = static_cast<const std::byte*>(send);
    auto* out = static_cast<std::byte*>(recv);
    // Self copy first.
    const std::size_t self =
        Bytes(sendcounts[static_cast<std::size_t>(rank)], dt);
    if (self != 0) {
      std::memcpy(out + static_cast<std::size_t>(
                            rdispls[static_cast<std::size_t>(rank)]) * esize,
                  in + static_cast<std::size_t>(
                           sdispls[static_cast<std::size_t>(rank)]) * esize,
                  self);
    }
    for (int off = 1; off < p; ++off) {
      const int dest = (rank + off) % p;
      const auto di = static_cast<std::size_t>(dest);
      const std::int64_t segs =
          AlltoallvSegmentsOf(sendcounts[di], esize, segment_bytes);
      for (std::int64_t s = 0; s < segs; ++s) {
        const auto [at, len] =
            AlltoallvSegmentRange(sendcounts[di], esize, segment_bytes, s);
        SendOnChannel(
            in + static_cast<std::size_t>(sdispls[di] + at) * esize,
            static_cast<int>(len), dt, dest, tag, comm_, kCh);
      }
    }
    // Receives from one source must be pending one at a time: two open
    // receives sharing (source, tag) would race for the FIFO head. Each
    // peer's segment queue therefore posts its next receive only when the
    // previous one completed.
    dt_ = dt;
    tag_ = tag;
    for (int off = 1; off < p; ++off) {
      const int src = (rank - off + p) % p;
      const auto si = static_cast<std::size_t>(src);
      const std::int64_t segs =
          AlltoallvSegmentsOf(recvcounts[si], esize, segment_bytes);
      PeerRecv pr;
      pr.src = src;
      for (std::int64_t s = 0; s < segs; ++s) {
        const auto [at, len] =
            AlltoallvSegmentRange(recvcounts[si], esize, segment_bytes, s);
        pr.segs.emplace_back(
            out + static_cast<std::size_t>(rdispls[si] + at) * esize,
            static_cast<int>(len));
      }
      peers_.push_back(std::move(pr));
    }
    for (PeerRecv& pr : peers_) PostNext(pr);
  }

  bool Test(Status*) override {
    bool all = true;
    for (PeerRecv& pr : peers_) {
      while (pr.active.Test()) {
        if (pr.next == pr.segs.size()) break;
        PostNext(pr);
      }
      all &= pr.next == pr.segs.size() && pr.active.Test();
    }
    return all;
  }

 private:
  struct PeerRecv {
    int src = 0;
    std::vector<std::pair<std::byte*, int>> segs;  // buffer, element count
    std::size_t next = 0;  // first segment without a posted receive
    Request active;
  };

  void PostNext(PeerRecv& pr) {
    const auto [buf, len] = pr.segs[pr.next++];
    pr.active = IrecvOnChannel(buf, len, dt_, pr.src, tag_, comm_, kCh);
  }

  Comm comm_;
  Datatype dt_ = Datatype::kByte;
  int tag_ = 0;
  std::vector<PeerRecv> peers_;
};

int NextTagPair(const Comm& comm) {
  // Chained operations (allreduce, barrier) consume two tag values so the
  // reduce and broadcast halves never share a (source, tag) pair.
  const int t = comm.NextNbcTag();
  comm.NextNbcTag();
  return t * 2;  // even base; +1 used by the chained second stage
}

}  // namespace

/// Sends one sparse payload, chunked under `segment_bytes`, over the
/// shared chunk wire format (see nbc.hpp): the first message on
/// `payload_tag` is [int64 total bytes][payload...]; trailing chunks go to
/// `chunk_tag` as [int64 seq][payload...], seq = 1, 2, .... Shared between
/// the substrate and the RBC sparse collective via the `send` callback
/// (which injects one message of raw bytes to the destination).
void SendChunkedSparse(
    const std::byte* payload, std::int64_t payload_bytes,
    std::int64_t segment_bytes,
    const std::function<void(const std::vector<std::byte>&, bool first)>&
        send) {
  const std::int64_t cap =
      segment_bytes > 0 ? SparseChunkCapacity(segment_bytes)
                        : std::max<std::int64_t>(payload_bytes, 0);
  const std::int64_t first_len = std::min<std::int64_t>(cap, payload_bytes);
  // Trailing chunks are injected *before* the header chunk: the substrate
  // deposits eagerly in program order, so once a receiver probes the
  // header chunk, every trailing chunk of this payload already sits in
  // its mailbox -- the receive side can reassemble inside a nonblocking
  // Test without ever waiting.
  std::int64_t at = first_len, seq = 0;
  while (at < payload_bytes) {
    ++seq;
    const std::int64_t len = std::min<std::int64_t>(cap, payload_bytes - at);
    std::vector<std::byte> msg(
        static_cast<std::size_t>(kSparseChunkHeaderBytes + len));
    std::memcpy(msg.data(), &seq, sizeof seq);
    std::memcpy(msg.data() + kSparseChunkHeaderBytes, payload + at,
                static_cast<std::size_t>(len));
    send(msg, /*first=*/false);
    at += len;
  }
  std::vector<std::byte> msg(
      static_cast<std::size_t>(kSparseChunkHeaderBytes + first_len));
  std::memcpy(msg.data(), &payload_bytes, sizeof payload_bytes);
  if (first_len != 0) {
    std::memcpy(msg.data() + kSparseChunkHeaderBytes, payload,
                static_cast<std::size_t>(first_len));
  }
  send(msg, /*first=*/true);
}

/// Reassembles one chunked sparse payload whose first chunk is `first`:
/// parses the total, then pulls trailing chunks via `recv_chunk(seq)`
/// (which must return the next chunk message from the same source).
std::vector<std::byte> ReassembleChunkedSparse(
    const std::vector<std::byte>& first,
    const std::function<std::vector<std::byte>(std::int64_t seq)>&
        recv_chunk) {
  if (static_cast<std::int64_t>(first.size()) < kSparseChunkHeaderBytes) {
    throw Error("sparse exchange: malformed first chunk");
  }
  std::int64_t total = 0;
  std::memcpy(&total, first.data(), sizeof total);
  if (total < 0 ||
      static_cast<std::int64_t>(first.size()) - kSparseChunkHeaderBytes >
          total) {
    throw Error("sparse exchange: first chunk disagrees with its header");
  }
  std::vector<std::byte> payload(first.begin() + kSparseChunkHeaderBytes,
                                 first.end());
  std::int64_t seq = 0;
  while (static_cast<std::int64_t>(payload.size()) < total) {
    const std::vector<std::byte> chunk = recv_chunk(++seq);
    if (static_cast<std::int64_t>(chunk.size()) < kSparseChunkHeaderBytes) {
      throw Error("sparse exchange: malformed trailing chunk");
    }
    std::int64_t got_seq = 0;
    std::memcpy(&got_seq, chunk.data(), sizeof got_seq);
    if (got_seq != seq ||
        static_cast<std::int64_t>(payload.size() + chunk.size()) -
                kSparseChunkHeaderBytes >
            total) {
      throw Error("sparse exchange: trailing chunk out of sequence");
    }
    payload.insert(payload.end(), chunk.begin() + kSparseChunkHeaderBytes,
                   chunk.end());
  }
  return payload;
}

namespace {

/// Sparse personalized exchange (see nbc.hpp). All four tags (payload,
/// chunk continuation, two barrier pairs) are drawn in the constructor, so
/// the NBC tag counter stays synchronous across ranks even when other
/// nonblocking collectives start on the communicator while this one is in
/// flight. The chunk tag is the odd sibling of the (even) payload tag --
/// nothing else ever allocates it.
class SparseAlltoallvSM final : public RequestImpl {
 public:
  SparseAlltoallvSM(std::span<const SparseSendBlock> sends, Datatype dt,
                    std::vector<SparseRecvMessage>* received, Comm comm,
                    std::int64_t segment_bytes)
      : received_(received), comm_(std::move(comm)),
        tag_(2 * comm_.NextNbcTag()), barrier_a_tag_(NextTagPair(comm_)),
        barrier_b_tag_(NextTagPair(comm_)) {
    if (received_ == nullptr) {
      throw UsageError("IsparseAlltoallv: null receive vector");
    }
    first_incoming_ = received_->size();
    const int p = comm_.Size();
    for (const SparseSendBlock& b : sends) {
      if (b.dest < 0 || b.dest >= p) {
        throw UsageError("IsparseAlltoallv: destination out of range");
      }
      if (b.count < 0) {
        throw UsageError("IsparseAlltoallv: negative count");
      }
      if (b.dest == comm_.Rank()) {
        // Self block: local delivery, no message.
        const auto* bytes = static_cast<const std::byte*>(b.data);
        received_->push_back(SparseRecvMessage{
            b.dest,
            std::vector<std::byte>(bytes, bytes + Bytes(b.count, dt))});
      } else {
        SendChunkedSparse(
            static_cast<const std::byte*>(b.data),
            static_cast<std::int64_t>(Bytes(b.count, dt)), segment_bytes,
            [&](const std::vector<std::byte>& msg, bool first) {
              SendOnChannel(msg.data(), static_cast<int>(msg.size()),
                            Datatype::kByte, b.dest,
                            first ? tag_ : tag_ + 1, comm_, kCh);
            });
      }
    }
    barrier_ = std::make_shared<IbarrierSM>(comm_, barrier_a_tag_);
  }

  bool Test(Status*) override {
    if (phase_ == 0) {
      Drain();
      if (!barrier_->Progress(nullptr)) return false;
      // Every rank has posted its sends (it entered barrier A after
      // them), and eager deposit makes them all visible: this drain is
      // exact.
      Drain();
      std::stable_sort(received_->begin() + static_cast<std::ptrdiff_t>(
                                                first_incoming_),
                       received_->end(),
                       [](const SparseRecvMessage& a,
                          const SparseRecvMessage& b) {
                         return a.source < b.source;
                       });
      barrier_ = std::make_shared<IbarrierSM>(comm_, barrier_b_tag_);
      phase_ = 1;
    }
    return barrier_->Progress(nullptr);
  }

 private:
  void Drain() {
    Status st;
    while (IprobeOnChannel(kAnySource, tag_, comm_, kCh, &st)) {
      std::vector<std::byte> first(st.bytes);
      RecvOnChannel(first.data(), static_cast<int>(st.bytes),
                    Datatype::kByte, st.source, tag_, comm_, kCh);
      SparseRecvMessage msg;
      msg.source = st.source;
      // Trailing chunks were deposited *before* their header chunk, so
      // these receives complete without waiting and Test stays
      // nonblocking.
      msg.bytes = ReassembleChunkedSparse(first, [&](std::int64_t) {
        Status cst;
        ProbeOnChannel(st.source, tag_ + 1, comm_, kCh, &cst);
        std::vector<std::byte> chunk(cst.bytes);
        RecvOnChannel(chunk.data(), static_cast<int>(cst.bytes),
                      Datatype::kByte, st.source, tag_ + 1, comm_, kCh);
        return chunk;
      });
      received_->push_back(std::move(msg));
    }
  }

  std::vector<SparseRecvMessage>* received_;
  Comm comm_;
  int tag_;
  int barrier_a_tag_;
  int barrier_b_tag_;
  std::size_t first_incoming_ = 0;
  std::shared_ptr<IbarrierSM> barrier_;
  int phase_ = 0;
};

}  // namespace
}  // namespace detail

namespace {
/// Records a nonblocking collective's envelope at initiation time (the
/// NBC-tag-counter precondition already requires all ranks to initiate in
/// the same order, so initiation order is the checked sequence). The tag
/// field stays -1: NBC tags are derived from the synchronized counter and
/// carry no caller intent of their own.
void RecordNbc(const Comm& comm, sanitize::OpRecord rec) {
  rec.nonblocking = true;
  sanitize::Scope san(comm, std::move(rec));
}
}  // namespace

Request Ibcast(void* buf, int count, Datatype dt, int root, const Comm& comm) {
  if (comm.IsNull()) throw UsageError("Ibcast: null communicator");
  if (root < 0 || root >= comm.Size()) throw UsageError("Ibcast: bad root");
  RecordNbc(comm,
            sanitize::MakeOp(sanitize::CollKind::kBcast, root, /*tag=*/-1,
                             count, static_cast<std::uint32_t>(SizeOf(dt))));
  return Request(std::make_shared<detail::IbcastSM>(buf, count, dt, root,
                                                    comm,
                                                    2 * comm.NextNbcTag()));
}

Request Ireduce(const void* send, void* recv, int count, Datatype dt,
                ReduceOp op, int root, const Comm& comm) {
  if (comm.IsNull()) throw UsageError("Ireduce: null communicator");
  if (root < 0 || root >= comm.Size()) throw UsageError("Ireduce: bad root");
  RecordNbc(comm,
            sanitize::MakeOp(sanitize::CollKind::kReduce, root, /*tag=*/-1,
                             count, static_cast<std::uint32_t>(SizeOf(dt))));
  return Request(std::make_shared<detail::IreduceSM>(
      send, recv, count, dt, op, root, comm, 2 * comm.NextNbcTag()));
}

Request Iallreduce(const void* send, void* recv, int count, Datatype dt,
                   ReduceOp op, const Comm& comm) {
  if (comm.IsNull()) throw UsageError("Iallreduce: null communicator");
  RecordNbc(comm, sanitize::MakeOp(sanitize::CollKind::kAllreduce,
                                   /*root=*/-1, /*tag=*/-1, count,
                                   static_cast<std::uint32_t>(SizeOf(dt))));
  return Request(std::make_shared<detail::IReduceBcastChain>(
      send, recv, count, dt, op, comm, detail::NextTagPair(comm)));
}

Request Iscan(const void* send, void* recv, int count, Datatype dt,
              ReduceOp op, const Comm& comm) {
  if (comm.IsNull()) throw UsageError("Iscan: null communicator");
  RecordNbc(comm, sanitize::MakeOp(sanitize::CollKind::kScan, /*root=*/-1,
                                   /*tag=*/-1, count,
                                   static_cast<std::uint32_t>(SizeOf(dt))));
  return Request(std::make_shared<detail::IscanSM>(send, recv, count, dt, op,
                                                   comm,
                                                   2 * comm.NextNbcTag()));
}

Request Igather(const void* send, int count, Datatype dt, void* recv,
                int root, const Comm& comm) {
  if (comm.IsNull()) throw UsageError("Igather: null communicator");
  if (root < 0 || root >= comm.Size()) throw UsageError("Igather: bad root");
  RecordNbc(comm,
            sanitize::MakeOp(sanitize::CollKind::kGather, root, /*tag=*/-1,
                             count, static_cast<std::uint32_t>(SizeOf(dt))));
  return Request(std::make_shared<detail::IgatherSM>(
      send, count, dt, recv, root, comm, 2 * comm.NextNbcTag()));
}

Request Igatherv(const void* send, int count, Datatype dt, void* recv,
                 std::span<const int> recvcounts, std::span<const int> displs,
                 int root, const Comm& comm) {
  if (comm.IsNull()) throw UsageError("Igatherv: null communicator");
  if (root < 0 || root >= comm.Size()) throw UsageError("Igatherv: bad root");
  {
    sanitize::OpRecord rec =
        sanitize::MakeOp(sanitize::CollKind::kGatherv, root, /*tag=*/-1,
                         count, static_cast<std::uint32_t>(SizeOf(dt)));
    if (sanitize::Enabled() && comm.Rank() == root) {
      rec.counts_from.assign(recvcounts.begin(), recvcounts.end());
    }
    RecordNbc(comm, std::move(rec));
  }
  return Request(std::make_shared<detail::IgathervSM>(
      send, count, dt, recv, recvcounts, displs, root, comm,
      2 * comm.NextNbcTag()));
}

Request Ibarrier(const Comm& comm) {
  if (comm.IsNull()) throw UsageError("Ibarrier: null communicator");
  RecordNbc(comm, sanitize::MakeOp(sanitize::CollKind::kBarrier));
  return Request(
      std::make_shared<detail::IbarrierSM>(comm, detail::NextTagPair(comm)));
}

Request IsparseAlltoallv(std::span<const SparseSendBlock> sends, Datatype dt,
                         std::vector<SparseRecvMessage>* received,
                         const Comm& comm, std::int64_t segment_bytes) {
  if (comm.IsNull()) throw UsageError("IsparseAlltoallv: null communicator");
  RecordNbc(comm, sanitize::MakeOp(sanitize::CollKind::kSparseAlltoallv,
                                   /*root=*/-1, /*tag=*/-1, /*count=*/-1,
                                   static_cast<std::uint32_t>(SizeOf(dt)),
                                   segment_bytes));
  return Request(std::make_shared<detail::SparseAlltoallvSM>(
      sends, dt, received, comm, segment_bytes));
}

Request Ialltoall(const void* send, int count, Datatype dt, void* recv,
                  const Comm& comm) {
  if (comm.IsNull()) throw UsageError("Ialltoall: null communicator");
  if (count < 0) throw UsageError("Ialltoall: negative count");
  RecordNbc(comm, sanitize::MakeOp(sanitize::CollKind::kAlltoall,
                                   /*root=*/-1, /*tag=*/-1, count,
                                   static_cast<std::uint32_t>(SizeOf(dt))));
  const int p = comm.Size();
  std::vector<int> counts(static_cast<std::size_t>(p), count);
  std::vector<int> displs(static_cast<std::size_t>(p));
  for (int i = 0; i < p; ++i) displs[static_cast<std::size_t>(i)] = i * count;
  return Request(std::make_shared<detail::IalltoallvSM>(
      send, counts, displs, dt, recv, counts, displs, comm,
      2 * comm.NextNbcTag(), /*segment_bytes=*/0));
}

Request Ialltoallv(const void* send, std::span<const int> sendcounts,
                   std::span<const int> sdispls, Datatype dt, void* recv,
                   std::span<const int> recvcounts,
                   std::span<const int> rdispls, const Comm& comm,
                   std::int64_t segment_bytes) {
  if (comm.IsNull()) throw UsageError("Ialltoallv: null communicator");
  {
    sanitize::OpRecord rec =
        sanitize::MakeOp(sanitize::CollKind::kAlltoallv, /*root=*/-1,
                         /*tag=*/-1, /*count=*/-1,
                         static_cast<std::uint32_t>(SizeOf(dt)),
                         segment_bytes);
    if (sanitize::Enabled()) {
      rec.counts_to.assign(sendcounts.begin(), sendcounts.end());
      rec.counts_from.assign(recvcounts.begin(), recvcounts.end());
    }
    RecordNbc(comm, std::move(rec));
  }
  return Request(std::make_shared<detail::IalltoallvSM>(
      send, sendcounts, sdispls, dt, recv, recvcounts, rdispls, comm,
      2 * comm.NextNbcTag(), segment_bytes));
}

}  // namespace mpisim
