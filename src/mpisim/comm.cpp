#include "mpisim/comm.hpp"

#include "mpisim/error.hpp"

namespace mpisim {

Comm Comm::Make(Group group, std::uint64_t base, int my_rank,
                std::optional<TupleCtx> tuple,
                std::function<void()> on_destroy) {
  if (my_rank < 0) return Comm{};  // not a member -> null communicator
  if (my_rank >= group.Size()) {
    throw UsageError("Comm::Make: my_rank out of range");
  }
  Comm c;
  c.impl_ = std::make_shared<detail::CommImpl>();
  c.impl_->group = std::move(group);
  c.impl_->base = base;
  c.impl_->my_rank = my_rank;
  c.impl_->tuple = tuple;
  c.impl_->on_destroy = std::move(on_destroy);
  return c;
}

int Comm::Rank() const {
  if (IsNull()) throw UsageError("Comm::Rank on null communicator");
  return impl_->my_rank;
}

int Comm::Size() const {
  if (IsNull()) throw UsageError("Comm::Size on null communicator");
  return impl_->group.Size();
}

int Comm::WorldRank(int r) const {
  if (IsNull()) throw UsageError("Comm::WorldRank on null communicator");
  return impl_->group.WorldRank(r);
}

const Group& Comm::GetGroup() const {
  if (IsNull()) throw UsageError("Comm::GetGroup on null communicator");
  return impl_->group;
}

std::uint64_t Comm::Base() const {
  if (IsNull()) throw UsageError("Comm::Base on null communicator");
  return impl_->base;
}

const std::optional<TupleCtx>& Comm::Tuple() const {
  if (IsNull()) throw UsageError("Comm::Tuple on null communicator");
  return impl_->tuple;
}

std::uint64_t Comm::CtxOf(Channel ch) const {
  if (IsNull()) throw UsageError("Comm::CtxOf on null communicator");
  return impl_->base * 4 + static_cast<std::uint64_t>(ch);
}

std::uint64_t Comm::GroupHash() const {
  if (IsNull()) throw UsageError("Comm::GroupHash on null communicator");
  if (impl_->group_hash == 0) {
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ull;
    };
    mix(static_cast<std::uint64_t>(impl_->group.Size()));
    for (int r = 0; r < impl_->group.Size(); ++r) {
      mix(static_cast<std::uint64_t>(impl_->group.WorldRank(r)));
    }
    impl_->group_hash = h != 0 ? h : 1;  // 0 marks "not yet computed"
  }
  return impl_->group_hash;
}

int Comm::NextNbcTag() const {
  if (IsNull()) throw UsageError("Comm::NextNbcTag on null communicator");
  return impl_->nbc_tag_counter++;
}

}  // namespace mpisim
