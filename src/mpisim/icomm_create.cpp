#include "mpisim/icomm_create.hpp"

#include <array>
#include <cstring>
#include <vector>

#include "mpisim/p2p.hpp"
#include "mpisim/runtime.hpp"

namespace mpisim {
namespace {

constexpr Channel kCh = Channel::kInternal;

std::array<std::int32_t, 5> PackTuple(const TupleCtx& t) {
  return {t.a, static_cast<std::int32_t>(t.b), t.f, t.l, t.c};
}

TupleCtx UnpackTuple(const std::array<std::int32_t, 5>& w) {
  return TupleCtx{.a = w[0], .b = static_cast<std::uint32_t>(w[1]), .f = w[2],
                  .l = w[3], .c = w[4]};
}

/// Binomial broadcast of the coined tuple across the group members,
/// addressed via their parent-communicator ranks, using the user tag.
/// This is the O(alpha log l) general path of the proposal.
class TupleBcastSM final : public detail::RequestImpl {
 public:
  TupleBcastSM(Comm parent, Group group, int tag, Comm* out)
      : parent_(std::move(parent)), group_(std::move(group)), tag_(tag),
        out_(out) {
    RankContext& rc = Ctx();
    my_index_ = group_.RankOfWorld(rc.world_rank);
    const int g = group_.Size();
    members_.resize(g);
    for (int i = 0; i < g; ++i) {
      members_[i] = parent_.GetGroup().RankOfWorld(group_.WorldRank(i));
      if (members_[i] < 0) {
        throw UsageError("IcommCreateGroup: group member not in parent");
      }
    }
    if (my_index_ == 0) {
      const TupleCtx t{.a = rc.world_rank,
                       .b = rc.icomm_counter++,
                       .f = 0,
                       .l = g - 1,
                       .c = 0};
      wire_ = PackTuple(t);
      SendToChildren();
      Finish(t);
    } else {
      const int lowbit = my_index_ & (-my_index_);
      pending_ = detail::IrecvOnChannel(wire_.data(), 5, Datatype::kInt32,
                                        members_[my_index_ - lowbit], tag_,
                                        parent_, kCh);
    }
  }

  bool Test(Status*) override {
    if (done_) return true;
    if (!pending_.Test()) return false;
    SendToChildren();
    Finish(UnpackTuple(wire_));
    return true;
  }

 private:
  void SendToChildren() {
    const int g = group_.Size();
    const int limit = my_index_ == 0 ? g : (my_index_ & (-my_index_));
    for (int m = 1; m < limit && my_index_ + m < g; m <<= 1) {
      detail::SendOnChannel(wire_.data(), 5, Datatype::kInt32,
                            members_[my_index_ + m], tag_, parent_, kCh);
    }
  }

  void Finish(const TupleCtx& t) {
    RankContext& rc = Ctx();
    const std::uint64_t base = rc.runtime->InternTuple(t);
    // General case: implementations store the explicit group (given by the
    // caller anyway); charge its construction.
    rc.clock.Advance(static_cast<double>(group_.StorageEntries()) *
                     rc.runtime->options().cost.compute_unit);
    *out_ = Comm::Make(group_.Materialized(), base, my_index_, t);
    done_ = true;
  }

  Comm parent_;
  Group group_;
  int tag_;
  Comm* out_;
  int my_index_ = -1;
  std::vector<int> members_;
  std::array<std::int32_t, 5> wire_{};
  Request pending_;
  bool done_ = false;
};

}  // namespace

Request IcommCreateGroup(const Comm& parent, const Group& group, int tag,
                         Comm* out) {
  if (parent.IsNull()) throw UsageError("IcommCreateGroup: null communicator");
  if (out == nullptr) throw UsageError("IcommCreateGroup: null out pointer");
  RankContext& rc = Ctx();
  const int my_index = group.RankOfWorld(rc.world_rank);
  if (my_index < 0) {
    throw UsageError(
        "IcommCreateGroup: calling rank is not a member of the group");
  }

  // Constant-time local path: contiguous range of a tuple-carrying parent.
  if (parent.Tuple()) {
    if (auto range = group.AsContiguousRangeOf(parent.GetGroup())) {
      const TupleCtx& pt = *parent.Tuple();
      const auto [f_prime, l_prime] = *range;
      const TupleCtx t{.a = pt.a,
                       .b = pt.b,
                       .f = pt.f + f_prime,
                       .l = pt.f + l_prime,
                       .c = pt.c + 1};
      const std::uint64_t base = rc.runtime->InternTuple(t);
      *out = Comm::Make(group, base, my_index, t);
      return Request(std::make_shared<detail::CompletedRequest>());
    }
  }

  // General path: coin at the first member, broadcast over the parent.
  return Request(
      std::make_shared<TupleBcastSM>(parent, group, tag, out));
}

}  // namespace mpisim
