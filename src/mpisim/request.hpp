// Nonblocking-operation requests.
//
// A Request is a shared handle to the state machine of one nonblocking
// operation. Progress is made exclusively inside Test() calls -- mpisim has
// no asynchronous progress thread, matching the test-driven progression
// model that both the paper's RBC library and Hoefler-style NBC schedules
// use.
#pragma once

#include <memory>

#include "mpisim/status.hpp"

namespace mpisim {

namespace detail {

/// Base class of all request state machines. Completion is cached in the
/// shared state so every copy of a Request handle observes it.
class RequestImpl {
 public:
  virtual ~RequestImpl() = default;

  /// Progresses the operation; caches completion and status.
  bool Progress(Status* st) {
    if (!done_) done_ = Test(&st_);
    if (done_ && st != nullptr) *st = st_;
    return done_;
  }

 protected:
  /// Attempts to make progress. Returns true exactly when the operation is
  /// locally complete; fills `st` (if non-null) for receive-like
  /// operations. Must be cheap and non-blocking. Called at most until it
  /// first returns true.
  virtual bool Test(Status* st) = 0;

 private:
  bool done_ = false;
  Status st_{};
};

/// A request that is born complete (eager sends).
class CompletedRequest final : public RequestImpl {
 public:
  explicit CompletedRequest(Status st = {}) : st_(st) {}

 protected:
  bool Test(Status* st) override {
    if (st != nullptr) *st = st_;
    return true;
  }

 private:
  Status st_;
};

}  // namespace detail

/// Value-semantic request handle. A default-constructed Request is the null
/// request, which tests as complete (MPI_REQUEST_NULL semantics).
class Request {
 public:
  Request() = default;
  explicit Request(std::shared_ptr<detail::RequestImpl> impl)
      : impl_(std::move(impl)) {}

  bool IsNull() const { return impl_ == nullptr; }

  /// Non-blocking completion test; completion is cached in the shared
  /// state, so all copies of this handle observe it.
  bool Test(Status* st = nullptr) {
    if (impl_ == nullptr) return true;
    return impl_->Progress(st);
  }

 private:
  std::shared_ptr<detail::RequestImpl> impl_;
};

}  // namespace mpisim
