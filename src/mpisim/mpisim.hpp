// Umbrella header for the mpisim substrate.
#pragma once

#include "mpisim/clock.hpp"
#include "mpisim/collectives.hpp"
#include "mpisim/comm.hpp"
#include "mpisim/comm_create.hpp"
#include "mpisim/datatype.hpp"
#include "mpisim/error.hpp"
#include "mpisim/group.hpp"
#include "mpisim/icomm_create.hpp"
#include "mpisim/mailbox.hpp"
#include "mpisim/message.hpp"
#include "mpisim/nbc.hpp"
#include "mpisim/p2p.hpp"
#include "mpisim/request.hpp"
#include "mpisim/runtime.hpp"
#include "mpisim/status.hpp"
