#include "mpisim/waitgraph.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

#include "mpisim/message.hpp"
#include "mpisim/runtime.hpp"

namespace mpisim {

namespace {

const char* ChannelName(std::uint64_t ctx) {
  switch (ctx % 4) {
    case 0: return "user";
    case 1: return "coll";
    case 2: return "nbc";
    default: return "internal";
  }
}

void DescribePattern(std::ostringstream& os, const WaitPattern& p) {
  os << "comm ctx base " << p.ctx / 4 << " (" << ChannelName(p.ctx)
     << " channel), src ";
  if (p.src == kAnySource) {
    os << "ANY";
  } else {
    os << p.src;
  }
  os << ", tag ";
  if (p.tag == kAnyTag) {
    os << "ANY";
  } else {
    os << p.tag;
  }
}

void DescribeRecord(std::ostringstream& os, const WaitRecord& rec) {
  os << "blocked in " << rec.what;
  if (rec.patterns.empty()) {
    os << " (wait patterns unknown)";
  } else {
    os << " on ";
    for (std::size_t i = 0; i < rec.patterns.size(); ++i) {
      if (i != 0) os << "; ";
      DescribePattern(os, rec.patterns[i]);
    }
    if (!rec.known) os << " (may also progress without a message)";
  }
  os << " [vtime " << rec.vtime << "]";
}

}  // namespace

void WaitRegistry::Register(int rank, WaitRecord rec) {
  const int p = rt_->options().num_ranks;
  std::unique_lock<std::mutex> lock(mu_);
  if (stacks_.empty()) stacks_.resize(static_cast<std::size_t>(p));
  auto& stack = stacks_[static_cast<std::size_t>(rank)];
  if (stack.empty()) ++blocked_ranks_;
  stack.push_back(std::move(rec));
  if (blocked_ranks_ < p || !AllWaitsUnsatisfiableLocked()) return;

  // Tentative deadlock: every rank is registered-blocked with known,
  // currently unsatisfiable patterns. Demand a deterministic proof
  // before raising: every *other* rank must additionally be parked in
  // its mailbox's cv wait. The mailbox clears the parked flag under its
  // own lock before any blocking call returns, so a rank whose wait just
  // completed (popped its message, guard not yet unregistered) is never
  // counted as stuck, however long it stays descheduled. With all p
  // ranks blocked in plain receives/probes no rank can post a message,
  // so parked + no matching message cannot spontaneously resolve. A rank
  // that registered but has not reached the cv wait yet gets a short
  // grace period; if the proof still does not close, stand down -- the
  // wall-clock timeout forensics cover any deadlock missed here.
  const auto timeout = rt_->options().deadlock_timeout;
  const auto grace = std::max<std::chrono::milliseconds>(
      std::chrono::milliseconds(2),
      std::min(std::chrono::milliseconds(50), timeout / 4));
  const auto until = std::chrono::steady_clock::now() + grace;
  while (!AllPeersParkedLocked(rank)) {
    if (std::chrono::steady_clock::now() >= until) return;  // unproven
    lock.unlock();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    lock.lock();
    if (blocked_ranks_ < p || !AllWaitsUnsatisfiableLocked()) {
      return;  // progress happened; not a deadlock
    }
  }

  // Proven: no rank can ever be woken. Dump the wait graph, wake all
  // cv-blocked ranks (they unwind with AbortedError naming this rank as
  // the origin), and raise from the rank that completed the cycle.
  std::string waits = DescribeWaitsLocked();
  // This rank's guard never constructs (Register throws), so unwind its
  // own registration here.
  stack.pop_back();
  if (stack.empty()) --blocked_ranks_;
  lock.unlock();

  std::ostringstream header;
  header << "mpisim: deadlock detected (no runnable rank, non-empty wait "
            "set; proven by rank "
         << rank << " before the " << timeout.count() << " ms timeout)";
  std::string report = BuildDeadlockReportFromWaits(*rt_, header.str(), waits);
  rt_->MarkAborted(rank);
  for (int r = 0; r < p; ++r) rt_->MailboxOf(r).Abort(rank);
  throw DeadlockError(report);
}

void WaitRegistry::Unregister(int rank) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stacks_.empty()) return;
  auto& stack = stacks_[static_cast<std::size_t>(rank)];
  if (stack.empty()) return;
  stack.pop_back();
  if (stack.empty()) --blocked_ranks_;
}

void WaitRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  stacks_.clear();
  blocked_ranks_ = 0;
}

bool WaitRegistry::AllWaitsUnsatisfiableLocked() {
  const int p = rt_->options().num_ranks;
  if (static_cast<int>(stacks_.size()) < p) return false;
  for (int r = 0; r < p; ++r) {
    const auto& stack = stacks_[static_cast<std::size_t>(r)];
    if (stack.empty()) return false;
    const WaitRecord& top = stack.back();  // innermost wait governs
    if (!top.known || top.patterns.empty()) return false;
    // Conjunctive patterns: the rank is stuck iff at least one pattern
    // has no matching queued message.
    bool stuck = false;
    for (const WaitPattern& pat : top.patterns) {
      if (!rt_->MailboxOf(r).TryPeek(pat.ctx, pat.src, pat.tag, nullptr,
                                     nullptr)) {
        stuck = true;
        break;
      }
    }
    if (!stuck) return false;
  }
  return true;
}

bool WaitRegistry::AllPeersParkedLocked(int self) {
  // Order matters for soundness: the unsatisfiable check (no matching
  // queued message) ran first in the same mu_ critical section, and with
  // every rank registered in a known blocking wait no rank can post, so
  // a waiter observed parked here cannot wake before we finish. The
  // registering rank itself is exempt: it is still inside Register,
  // about to park on a pattern nobody can satisfy.
  const int p = rt_->options().num_ranks;
  for (int r = 0; r < p; ++r) {
    if (r == self) continue;
    if (!rt_->MailboxOf(r).HasParkedWaiter()) return false;
  }
  return true;
}

std::string WaitRegistry::DescribeWaits() {
  std::lock_guard<std::mutex> lock(mu_);
  return DescribeWaitsLocked();
}

std::string WaitRegistry::DescribeWaitsLocked() {
  std::ostringstream os;
  const int p = rt_->options().num_ranks;
  for (int r = 0; r < p; ++r) {
    os << "  rank " << r << "/" << p << ": ";
    if (static_cast<std::size_t>(r) >= stacks_.size() ||
        stacks_[static_cast<std::size_t>(r)].empty()) {
      os << "not blocked in the substrate (running, finished, or failed)";
    } else {
      const auto& stack = stacks_[static_cast<std::size_t>(r)];
      for (std::size_t i = stack.size(); i-- > 0;) {
        DescribeRecord(os, stack[i]);
        if (i != 0) os << "; outer: ";
      }
    }
    os << "\n";
  }
  return os.str();
}

ScopedWait::ScopedWait(WaitRecord rec) {
  if (!InsideRank()) return;
  RankContext& rc = Ctx();
  rec.vtime = rc.clock.Now();
  WaitRegistry& registry = rc.runtime->Waits();
  const int rank = rc.world_rank;
  registry.Register(rank, std::move(rec));  // may throw DeadlockError
  registry_ = &registry;
  rank_ = rank;
}

ScopedWait::~ScopedWait() {
  if (registry_ != nullptr) registry_->Unregister(rank_);
}

std::string BuildDeadlockReportFromWaits(Runtime& rt,
                                         const std::string& header,
                                         const std::string& waits) {
  std::ostringstream os;
  os << header << "\nper-rank wait graph:\n" << waits;
  os << "pending mailbox contents:\n";
  const int p = rt.options().num_ranks;
  for (int r = 0; r < p; ++r) {
    std::size_t total = 0;
    const auto envs = rt.MailboxOf(r).Snapshot(6, &total);
    os << "  rank " << r << "/" << p << ": " << total << " queued message"
       << (total == 1 ? "" : "s");
    if (!envs.empty()) {
      os << " [";
      for (std::size_t i = 0; i < envs.size(); ++i) {
        if (i != 0) os << ", ";
        os << "from world rank " << envs[i].source_global << " ctx base "
           << envs[i].context / 4 << "/" << ChannelName(envs[i].context)
           << " tag " << envs[i].tag;
      }
      if (total > envs.size()) os << ", ...+" << total - envs.size();
      os << "]";
    }
    os << "\n";
  }
  return os.str();
}

std::string BuildDeadlockReport(Runtime& rt, const std::string& header) {
  return BuildDeadlockReportFromWaits(rt, header,
                                      rt.Waits().DescribeWaits());
}

}  // namespace mpisim
