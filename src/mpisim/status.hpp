// Receive status, mirroring MPI_Status.
#pragma once

#include <cstddef>

#include "mpisim/datatype.hpp"
#include "mpisim/message.hpp"

namespace mpisim {

struct Status {
  /// Rank of the sender within the communicator of the receive.
  int source = kAnySource;
  int tag = kAnyTag;
  /// Payload size in bytes.
  std::size_t bytes = 0;

  /// Number of elements of `dt` in the message (MPI_Get_count).
  int Count(Datatype dt) const {
    return static_cast<int>(bytes / SizeOf(dt));
  }
};

}  // namespace mpisim
