// Vtime-aware deadlock forensics.
//
// Every blocking wait in the substrate registers a WaitRecord describing
// what the rank is blocked in (and, when the wait can only complete
// through an incoming message, the exact envelope patterns it is waiting
// for). Two consumers:
//
//  * Proactive detection. Rank threads are the only senders, so when all
//    p ranks are registered-blocked with fully *known* conjunctive
//    patterns and no queued mailbox message matches any of them, no
//    future progress is possible: the registering rank dumps the wait
//    graph and raises DeadlockError immediately -- milliseconds instead
//    of the wall-clock timeout. Spin-waits on request state machines
//    (Wait/Waitall, rbc progress loops, service wave barriers) can
//    complete without receiving anything, so they register with
//    known=false and conservatively disable proactive detection while
//    they are blocked; the timeout path below still covers them.
//
//    Detection demands a deterministic proof before it fires: besides
//    every pattern being unsatisfiable, every other rank's waiter must be
//    *parked* inside its mailbox's condition-variable wait. The mailbox
//    clears the parked flag under its own lock before any blocking call
//    returns, so a rank whose wait just completed (message popped, guard
//    destructor not yet run) is never counted as stuck, no matter how
//    long it stays descheduled. A rank that is registered but not yet
//    parked gets a short grace period to reach the cv wait; if the proof
//    still does not close, the detector stands down and the wall-clock
//    timeout forensics below cover the deadlock instead.
//
//  * Timeout forensics. Every timeout path (blocking receive/probe,
//    Wait/Waitall spins, rbc spins, the service's out-of-band wave
//    barrier) appends the same per-rank wait graph -- who is blocked in
//    what call, on which source/tag/communicator, at what virtual time,
//    with the pending mailbox contents -- to its DeadlockError instead of
//    the former bare one-liner.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace mpisim {

class Runtime;

/// One envelope pattern a blocked rank is waiting on. `src` may be
/// kAnySource and `tag` kAnyTag, exactly like a receive posting.
struct WaitPattern {
  std::uint64_t ctx = 0;
  int src = 0;
  int tag = 0;
};

/// What one rank is blocked in. Patterns are conjunctive: the wait can
/// complete only once every listed pattern has a matching queued message.
/// known=false marks waits that may complete without any new message
/// (request spins); their patterns, if any, are informational only.
struct WaitRecord {
  std::string what;
  std::vector<WaitPattern> patterns;
  bool known = false;
  double vtime = 0.0;
};

/// Builder; vtime is stamped by ScopedWait at registration.
inline WaitRecord MakeWait(std::string what,
                           std::vector<WaitPattern> patterns = {},
                           bool known = false) {
  WaitRecord r;
  r.what = std::move(what);
  r.patterns = std::move(patterns);
  r.known = known;
  return r;
}

/// Per-runtime registry of blocked ranks. Registration is cheap (one
/// mutex round trip) and only happens on the slow path, after a
/// non-blocking first attempt failed.
class WaitRegistry {
 public:
  explicit WaitRegistry(Runtime* rt) : rt_(rt) {}

  /// Registers the calling rank as blocked; nested blocking calls stack.
  /// May throw DeadlockError (with the full wait-graph report) when this
  /// registration completes a provable deadlock.
  void Register(int rank, WaitRecord rec);
  void Unregister(int rank);

  /// Drops all records (a fresh Runtime::Run).
  void Reset();

  /// Formats the per-rank wait set (no header, no mailbox contents);
  /// BuildDeadlockReport composes the full report. Takes mu_; rank
  /// threads may still be registering/unregistering concurrently.
  std::string DescribeWaits();

 private:
  std::string DescribeWaitsLocked();

  /// True iff all p ranks are blocked with known patterns and at least
  /// one pattern per rank has no matching queued message. Caller holds
  /// mu_.
  bool AllWaitsUnsatisfiableLocked();

  /// True iff every rank except `self` is parked inside its mailbox's cv
  /// wait (the deterministic half of the deadlock proof). Caller holds
  /// mu_.
  bool AllPeersParkedLocked(int self);

  Runtime* rt_;
  std::mutex mu_;
  std::vector<std::vector<WaitRecord>> stacks_;  // per rank, nested waits
  int blocked_ranks_ = 0;
};

/// RAII registration guard; a no-op outside rank threads.
class ScopedWait {
 public:
  explicit ScopedWait(WaitRecord rec);
  ~ScopedWait();
  ScopedWait(const ScopedWait&) = delete;
  ScopedWait& operator=(const ScopedWait&) = delete;

 private:
  WaitRegistry* registry_ = nullptr;
  int rank_ = -1;
};

/// Assembles the full deadlock report: `header`, then one block per rank
/// with its blocked call, wait patterns, virtual time, and pending
/// mailbox envelopes.
std::string BuildDeadlockReport(Runtime& rt, const std::string& header);

/// Same, from an already-formatted wait section (used by the proactive
/// detector, which snapshots the wait set while holding the registry
/// lock).
std::string BuildDeadlockReportFromWaits(Runtime& rt,
                                         const std::string& header,
                                         const std::string& waits);

}  // namespace mpisim
