// Process groups.
//
// A Group maps dense group ranks 0..size-1 to *world* ranks. Two storage
// formats exist, mirroring the discussion in Section III of the paper and
// the sparse-storage work of Chaarawi & Gabriel:
//   * Range format: a list of (first, last, stride) triplets over world
//     ranks. Storage and construction are O(#ranges); lookups are
//     O(#ranges). MPI_Group_range_incl produces this format.
//   * Explicit format: a flat array of world ranks plus a reverse-lookup
//     hash map, i.e. the representation MPICH / Open MPI / Intel MPI build
//     for every communicator. Construction is O(size) in time and space --
//     this is precisely the linear cost RBC avoids, and the substrate
//     charges virtual compute time for it so the cost shows up in the
//     figure-5/6/7 benchmarks.
#pragma once

#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mpisim/error.hpp"

namespace mpisim {

/// Inclusive rank range with stride, in the spirit of
/// MPI_Group_range_incl triplets. Represents first, first+stride, ...,
/// up to and including the largest value <= last (stride > 0).
struct RankRange {
  int first = 0;
  int last = -1;
  int stride = 1;

  int size() const {
    if (last < first) return 0;
    return (last - first) / stride + 1;
  }
  int at(int i) const { return first + i * stride; }
};

class Group {
 public:
  /// Empty group.
  Group() = default;

  /// The group of all p world ranks, in range format (O(1) storage).
  static Group World(int p);

  /// Range-format group over *world* ranks. O(#ranges) storage.
  static Group FromRanges(std::vector<RankRange> ranges);

  /// Explicit-format group; builds the reverse map (O(size) time/space).
  static Group FromExplicit(std::vector<int> world_ranks);

  int Size() const { return size_; }

  /// World rank of group rank i. O(1) explicit, O(#ranges) range format.
  int WorldRank(int i) const;

  /// Group rank of a world rank, or -1 if not a member.
  int RankOfWorld(int world_rank) const;

  bool IsExplicit() const { return explicit_.has_value(); }

  /// Number of stored entries: #ranges for range format, size for explicit.
  /// This is the "memory footprint" axis of the sparse-storage discussion.
  std::size_t StorageEntries() const;

  /// Converts to explicit format. This is the deliberately-linear step that
  /// native communicator construction performs; callers charge virtual
  /// compute time proportional to Size().
  Group Materialized() const;

  /// If this group is exactly the contiguous sub-range f'..l' (stride 1) of
  /// `parent`'s group ranks, returns (f', l'). Used by the Section-VI
  /// MPI_Icomm_create_group proposal to take the O(1) local path.
  std::optional<std::pair<int, int>> AsContiguousRangeOf(
      const Group& parent) const;

  /// True if both groups contain the same world ranks in the same order.
  bool SameAs(const Group& other) const;

  /// If the mapping group rank -> world rank is affine (w = base + i*stride,
  /// i.e. the group is a single range), returns (base, stride). Lets
  /// derived-group constructors stay in O(#ranges) instead of
  /// materializing.
  std::optional<std::pair<int, int>> AffineMap() const;

 private:
  int size_ = 0;
  // Range format (empty when explicit_ is set).
  std::vector<RankRange> ranges_;
  // Explicit format.
  std::optional<std::vector<int>> explicit_;
  std::unordered_map<int, int> reverse_;  // world rank -> group rank
};

}  // namespace mpisim
