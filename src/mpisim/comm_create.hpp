// Collective communicator construction, reproducing the mechanisms of the
// open-source MPI implementations the paper measures against (Section III):
//
//  * Context-id agreement uses per-rank context bitmasks combined with an
//    all-reduce (BOR over "used" bits here; MPICH uses BAND over free
//    bits -- equivalent). Under VendorProfile::kSlowCreateGroup the
//    agreement inside CommCreateGroup degrades to a serial ring pass,
//    reproducing the disproportionately slow IBM MPI_Comm_create_group of
//    the paper's Figure 5.
//  * Every constructed communicator materializes an explicit rank array
//    (plus reverse map), charging O(group size) local work -- the linear
//    construction cost that motivates RBC.
//
// Mask context ids are released when the last handle to the communicator
// is dropped (on the owning rank's thread), so long benchmark sweeps do
// not exhaust the id space.
#pragma once

#include <span>

#include "mpisim/comm.hpp"

namespace mpisim {

/// Color value for ranks that opt out of a split (MPI_UNDEFINED).
inline constexpr int kUndefinedColor = -1;

/// Group of the comm ranks listed in `ranks` (MPI_Group_incl): explicit
/// format, O(n) construction.
Group GroupIncl(const Comm& comm, std::span<const int> ranks);

/// Group of the comm-rank ranges in `ranges` (MPI_Group_range_incl):
/// stays in O(#ranges) range format when the communicator's own rank
/// mapping is affine, otherwise falls back to explicit format.
Group GroupRangeIncl(const Comm& comm, std::span<const RankRange> ranges);

/// Duplicates a communicator: context agreement over the whole parent,
/// group shared structurally.
Comm CommDup(const Comm& parent);

/// MPI_Comm_split: blocking collective over the *whole* parent. Performs an
/// allgather of (color, key) pairs -- Omega(alpha log p + beta p), the
/// scaling problem quoted in Section III -- then groups locally. Returns
/// the communicator of the caller's color, or a null Comm for
/// kUndefinedColor.
Comm CommSplit(const Comm& parent, int color, int key);

/// MPI_Comm_create_group: blocking collective over the members of `group`
/// only. Context agreement runs over the parent communicator using `tag`.
/// The calling rank must be a member.
Comm CommCreateGroup(const Comm& parent, const Group& group, int tag);

/// MPI_Comm_create: blocking collective over the whole parent; returns a
/// null Comm on non-members.
Comm CommCreate(const Comm& parent, const Group& group);

}  // namespace mpisim
