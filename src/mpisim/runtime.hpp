// The runtime: spawns p ranks as threads, owns their mailboxes, clocks and
// context-mask state, and provides the world communicator.
#pragma once

#include <atomic>
#include <bitset>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <random>
#include <unordered_map>
#include <vector>

#include "mpisim/clock.hpp"
#include "mpisim/comm.hpp"
#include "mpisim/error.hpp"
#include "mpisim/mailbox.hpp"

namespace mpisim {

/// Vendor profile for the communicator-creation substitution (DESIGN.md §2).
/// kFast models an implementation whose MPI_Comm_create_group agrees on a
/// context id with a binomial-tree all-reduce over context masks (a la
/// Intel/MPICH); kSlowCreateGroup models one that serializes the agreement
/// around a ring (reproducing the disproportionately slow IBM
/// MPI_Comm_create_group of the paper's Figure 5).
enum class VendorProfile {
  kFast,
  kSlowCreateGroup,
};

/// Per-rank state. Owned by the runtime, accessed by exactly one thread.
struct RankContext {
  class Runtime* runtime = nullptr;
  int world_rank = -1;
  int world_size = 0;
  VirtualClock clock;
  Stats stats;
  std::mt19937_64 rng;
  /// Bit i set <=> mask context id i is in use at this rank.
  std::bitset<kMaxMaskContexts> ctx_mask;
  /// Counter `b` of the Section-VI tuple scheme.
  std::uint32_t icomm_counter = 0;
};

class Runtime {
 public:
  struct Options {
    int num_ranks = 1;
    CostModel cost{};
    VendorProfile profile = VendorProfile::kFast;
    std::uint64_t seed = 0x5EEDu;
    /// Blocking operations throw DeadlockError after this long.
    std::chrono::milliseconds deadlock_timeout{60'000};
  };

  explicit Runtime(Options options);

  /// Runs `rank_main(world)` on every rank, each in its own thread, and
  /// joins them. If any rank throws, all blocked ranks are aborted and the
  /// first exception is re-thrown here. May be called multiple times; the
  /// context masks, clocks and counters persist between calls.
  void Run(const std::function<void(Comm&)>& rank_main);

  /// Convenience: default options with p ranks.
  static void Exec(int p, const std::function<void(Comm&)>& rank_main);

  Mailbox& MailboxOf(int world_rank);
  RankContext& ContextOf(int world_rank);
  const Options& options() const { return options_; }

  /// Interns a Section-VI tuple context id into a dense base id (stable:
  /// the same tuple always maps to the same id). Thread-safe.
  std::uint64_t InternTuple(const TupleCtx& t);

  /// True once any rank failed; spin-waiting operations poll this so they
  /// terminate instead of waiting for messages that will never arrive.
  bool Aborted() const { return aborted_.load(std::memory_order_relaxed); }
  void MarkAborted() { aborted_.store(true, std::memory_order_relaxed); }

  /// Maximum virtual time over all ranks (call after Run).
  double MaxVirtualTime() const;
  /// Resets all rank clocks and traffic counters (between benchmark reps).
  void ResetClocksAndStats();
  /// Sum of all ranks' traffic counters (call after Run).
  Stats TotalStats() const;

 private:
  Options options_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::unique_ptr<RankContext>> contexts_;
  std::atomic<bool> aborted_{false};
  std::mutex registry_mu_;
  std::unordered_map<TupleCtx, std::uint64_t, TupleCtxHash> tuple_registry_;
  std::uint64_t next_tuple_base_ = kMaxMaskContexts;
};

/// Context of the calling rank thread. Throws UsageError when called from
/// outside Runtime::Run.
RankContext& Ctx();

/// True when the calling thread is a rank thread.
bool InsideRank();

}  // namespace mpisim
