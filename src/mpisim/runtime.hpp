// The runtime: spawns p ranks as threads, owns their mailboxes, clocks and
// context-mask state, and provides the world communicator.
#pragma once

#include <atomic>
#include <bitset>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <random>
#include <unordered_map>
#include <vector>

#include "mpisim/clock.hpp"
#include "mpisim/comm.hpp"
#include "mpisim/error.hpp"
#include "mpisim/mailbox.hpp"
#include "mpisim/sanitizer.hpp"
#include "mpisim/waitgraph.hpp"
#include "topo/topology.hpp"

namespace mpisim {

/// Vendor profile for the communicator-creation substitution (DESIGN.md §2).
/// kFast models an implementation whose MPI_Comm_create_group agrees on a
/// context id with a binomial-tree all-reduce over context masks (a la
/// Intel/MPICH); kSlowCreateGroup models one that serializes the agreement
/// around a ring (reproducing the disproportionately slow IBM
/// MPI_Comm_create_group of the paper's Figure 5).
enum class VendorProfile {
  kFast,
  kSlowCreateGroup,
};

/// Per-rank state. Owned by the runtime, accessed by exactly one thread.
struct RankContext {
  class Runtime* runtime = nullptr;
  int world_rank = -1;
  int world_size = 0;
  VirtualClock clock;
  Stats stats;
  std::mt19937_64 rng;
  /// Bit i set <=> mask context id i is in use at this rank.
  std::bitset<kMaxMaskContexts> ctx_mask;
  /// Counter `b` of the Section-VI tuple scheme.
  std::uint32_t icomm_counter = 0;
  /// Collective-sanitizer nesting depth; composite collectives record only
  /// their outermost public entry (sanitizer.hpp).
  int sanitize_depth = 0;
};

class Runtime {
 public:
  struct Options {
    int num_ranks = 1;
    CostModel cost{};
    VendorProfile profile = VendorProfile::kFast;
    std::uint64_t seed = 0x5EEDu;
    /// Blocking operations throw DeadlockError after this long. Overridable
    /// via MPISIM_DEADLOCK_TIMEOUT_MS.
    std::chrono::milliseconds deadlock_timeout{60'000};
    /// Records and cross-checks every collective's envelope per communicator
    /// group; mismatches raise CollectiveMismatchError (sanitizer.hpp).
    /// Overridable via MPISIM_SANITIZE=1 / MPISIM_SANITIZE=0.
    bool sanitize_collectives = false;
    /// Node structure of the machine (topology.hpp). Empty = flat. Must
    /// cover exactly num_ranks ranks when non-empty; consulted by the
    /// cost seams (two-level CostModel) and the inter-node traffic
    /// counters, and queryable by algorithms via NodeOf/SameNode.
    topo::Topology topology{};
  };

  explicit Runtime(Options options);

  /// Runs `rank_main(world)` on every rank, each in its own thread, and
  /// joins them. If any rank throws, all blocked ranks are aborted and the
  /// first exception is re-thrown here. May be called multiple times; the
  /// context masks, clocks and counters persist between calls.
  void Run(const std::function<void(Comm&)>& rank_main);

  /// Convenience: default options with p ranks.
  static void Exec(int p, const std::function<void(Comm&)>& rank_main);

  Mailbox& MailboxOf(int world_rank);
  RankContext& ContextOf(int world_rank);
  const Options& options() const { return options_; }

  /// Interns a Section-VI tuple context id into a dense base id (stable:
  /// the same tuple always maps to the same id). Thread-safe.
  std::uint64_t InternTuple(const TupleCtx& t);

  /// True once any rank failed; spin-waiting operations poll this so they
  /// terminate instead of waiting for messages that will never arrive.
  bool Aborted() const { return aborted_.load(std::memory_order_relaxed); }
  /// `origin_rank` (when known) is the world rank whose failure started the
  /// abort; the first caller wins, so forensics name the true origin.
  void MarkAborted(int origin_rank = -1) {
    aborted_.store(true, std::memory_order_relaxed);
    if (origin_rank >= 0) {
      int expected = -1;
      first_failed_rank_.compare_exchange_strong(expected, origin_rank,
                                                 std::memory_order_relaxed);
    }
  }
  /// World rank whose failure aborted the run, or -1 when unknown.
  int FirstFailedRank() const {
    return first_failed_rank_.load(std::memory_order_relaxed);
  }

  /// Collective-correctness ledger (active when sanitize_collectives).
  sanitize::Registry& Sanitizer() { return sanitizer_; }
  /// Blocked-rank registry feeding deadlock detection and forensics.
  WaitRegistry& Waits() { return waits_; }

  /// Node of a world rank under the installed topology (0 when flat).
  /// O(1): precomputed at construction.
  int NodeOf(int world_rank) const { return node_of_[world_rank]; }
  /// True when both world ranks live on the same node (always true on a
  /// flat topology).
  bool SameNode(int a, int b) const { return node_of_[a] == node_of_[b]; }

  /// Maximum virtual time over all ranks (call after Run).
  double MaxVirtualTime() const;
  /// Resets all rank clocks and traffic counters (between benchmark reps).
  void ResetClocksAndStats();
  /// Sum of all ranks' traffic counters (call after Run).
  Stats TotalStats() const;

 private:
  Options options_;
  std::vector<int> node_of_;  // world rank -> node id (precomputed)
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::unique_ptr<RankContext>> contexts_;
  std::atomic<bool> aborted_{false};
  std::atomic<int> first_failed_rank_{-1};
  sanitize::Registry sanitizer_;
  WaitRegistry waits_{this};
  std::mutex registry_mu_;
  std::unordered_map<TupleCtx, std::uint64_t, TupleCtxHash> tuple_registry_;
  std::uint64_t next_tuple_base_ = kMaxMaskContexts;
};

/// Context of the calling rank thread. Throws UsageError when called from
/// outside Runtime::Run.
RankContext& Ctx();

/// True when the calling thread is a rank thread.
bool InsideRank();

/// Spelling used by docs and tests for the runtime's option block.
using RuntimeConfig = Runtime::Options;

}  // namespace mpisim
