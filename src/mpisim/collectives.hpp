// Blocking collective operations.
//
// All collectives run on the communicator's kColl sub-channel with
// operation-specific internal tags, so they can never interfere with user
// point-to-point traffic -- the context-id guarantee of Section III.
// Communication patterns are binomial trees (optimal in the alpha term for
// short vectors, Section V-D of the paper), except scan which uses
// distance-doubling (Hillis-Steele) rounds.
//
// Reductions assume commutative operators (all ReduceOp values are).
// Unless stated otherwise, send and receive buffers must not alias.
#pragma once

#include <span>

#include "mpisim/comm.hpp"
#include "mpisim/datatype.hpp"

namespace mpisim {

/// Synchronizes all ranks of `comm` (binomial reduce + broadcast of an
/// empty message).
void Barrier(const Comm& comm);

/// Broadcasts count elements from `root` to every rank.
void Bcast(void* buf, int count, Datatype dt, int root, const Comm& comm);

/// Reduces element-wise into `recv` on `root`. `recv` may be null on
/// non-root ranks. `send` may equal `recv` on the root.
void Reduce(const void* send, void* recv, int count, Datatype dt, ReduceOp op,
            int root, const Comm& comm);

/// Reduce to rank 0 followed by broadcast.
void Allreduce(const void* send, void* recv, int count, Datatype dt,
               ReduceOp op, const Comm& comm);

/// Inclusive prefix reduction: recv on rank r = op-fold of sends 0..r.
void Scan(const void* send, void* recv, int count, Datatype dt, ReduceOp op,
          const Comm& comm);

/// Exclusive prefix reduction: recv on rank r = op-fold of sends 0..r-1.
/// On rank 0 the output is zero-filled (defined, unlike MPI_Exscan).
void Exscan(const void* send, void* recv, int count, Datatype dt, ReduceOp op,
            const Comm& comm);

/// Gathers count elements from every rank into `recv` on root, ordered by
/// rank. `recv` must hold Size()*count elements on the root.
void Gather(const void* send, int count, Datatype dt, void* recv, int root,
            const Comm& comm);

/// Gathers count_r elements from rank r into recv at displs[r] on the
/// root. recvcounts/displs are significant on the root only (sizes in
/// elements).
void Gatherv(const void* send, int count, Datatype dt, void* recv,
             std::span<const int> recvcounts, std::span<const int> displs,
             int root, const Comm& comm);

/// Gather to rank 0 + broadcast. `recv` holds Size()*count elements.
void Allgather(const void* send, int count, Datatype dt, void* recv,
               const Comm& comm);

/// Gatherv + broadcast; recvcounts/displs significant on all ranks.
void Allgatherv(const void* send, int count, Datatype dt, void* recv,
                std::span<const int> recvcounts, std::span<const int> displs,
                const Comm& comm);

/// Scatters Size() consecutive blocks of `count` elements from the root's
/// `send` buffer (significant at root only) down a binomial tree.
void Scatter(const void* send, int count, Datatype dt, void* recv, int root,
             const Comm& comm);

/// Scatter with per-rank counts/displacements (elements; root only).
void Scatterv(const void* send, std::span<const int> sendcounts,
              std::span<const int> displs, Datatype dt, void* recv,
              int recvcount, int root, const Comm& comm);

/// Personalized all-to-all with uniform block size `count`.
void Alltoall(const void* send, int count, Datatype dt, void* recv,
              const Comm& comm);

/// Personalized all-to-all with per-peer counts/displacements (elements).
void Alltoallv(const void* send, std::span<const int> sendcounts,
               std::span<const int> sdispls, Datatype dt, void* recv,
               std::span<const int> recvcounts, std::span<const int> rdispls,
               const Comm& comm);

}  // namespace mpisim
