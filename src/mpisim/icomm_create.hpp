// The paper's Section-VI proposal: MPI_Icomm_create_group.
//
// Nonblocking, group-collective communicator creation whose context ids
// are structured tuples <a, b, f, l, c>:
//  * If the new group is a contiguous range f'..l' of the parent's ranks
//    and the parent itself carries a tuple id <a, b, f, l, c>, every member
//    computes the child id <a, b, f+f', f+l', c+1> locally -- constant
//    time, zero communication, full MPI semantics (a private context, no
//    tag restrictions). The request completes immediately.
//  * Otherwise the group's first process coins <own world rank, counter++,
//    0, |group|-1, 0> and broadcasts it to the members over the parent
//    communicator with the caller-supplied tag -- O(alpha log |group|).
//
// Tuples are interned into dense context ids by the runtime registry; the
// registry is bookkeeping only (the tuple values are computed by the
// distributed algorithm exactly as proposed).
#pragma once

#include "mpisim/comm.hpp"
#include "mpisim/request.hpp"

namespace mpisim {

/// Nonblocking group-collective communicator creation (Section VI).
/// `*out` becomes valid exactly when the returned request completes. The
/// calling rank must be a member of `group`.
Request IcommCreateGroup(const Comm& parent, const Group& group, int tag,
                         Comm* out);

}  // namespace mpisim
