#include "mpisim/sanitizer.hpp"

#include <algorithm>
#include <sstream>

#include "mpisim/runtime.hpp"

namespace mpisim::sanitize {

namespace {

std::uint64_t Fnv1a(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  h *= 1099511628211ull;
  return h;
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;

/// Renders a vector of counts, eliding the middle of long ones.
std::string DescribeCounts(const std::vector<std::int64_t>& v) {
  std::ostringstream os;
  os << '[';
  const std::size_t shown = std::min<std::size_t>(v.size(), 8);
  for (std::size_t i = 0; i < shown; ++i) {
    if (i != 0) os << ' ';
    os << v[i];
  }
  if (v.size() > shown) os << " ...+" << v.size() - shown;
  os << ']';
  return os.str();
}

}  // namespace

const char* KindName(CollKind k) {
  switch (k) {
    case CollKind::kBarrier: return "Barrier";
    case CollKind::kBcast: return "Bcast";
    case CollKind::kBcastLarge: return "BcastLarge";
    case CollKind::kReduce: return "Reduce";
    case CollKind::kAllreduce: return "Allreduce";
    case CollKind::kScan: return "Scan";
    case CollKind::kExscan: return "Exscan";
    case CollKind::kGather: return "Gather";
    case CollKind::kGatherv: return "Gatherv";
    case CollKind::kAllgather: return "Allgather";
    case CollKind::kAllgatherv: return "Allgatherv";
    case CollKind::kScatter: return "Scatter";
    case CollKind::kScatterv: return "Scatterv";
    case CollKind::kAlltoall: return "Alltoall";
    case CollKind::kAlltoallv: return "Alltoallv";
    case CollKind::kSparseAlltoallv: return "SparseAlltoallv";
    case CollKind::kHierBcast: return "HierBcast";
    case CollKind::kHierAllreduce: return "HierAllreduce";
    case CollKind::kHierGatherv: return "HierGatherv";
    case CollKind::kHierAlltoallv: return "HierAlltoallv";
  }
  return "?";
}

std::string OpRecord::Describe() const {
  std::ostringstream os;
  os << (nonblocking ? "I" : "") << KindName(kind);
  if (root >= 0) os << " root=" << root;
  if (tag >= 0) os << " tag=" << tag;
  if (count >= 0) os << " count=" << count;
  if (dtype_size != 0) os << " dtype_size=" << dtype_size;
  if (segment_bytes != 0) os << " segment_bytes=" << segment_bytes;
  if (sig != 0) os << " sig=0x" << std::hex << sig << std::dec;
  if (!counts_to.empty()) os << " sendcounts=" << DescribeCounts(counts_to);
  if (!counts_from.empty()) {
    os << " recvcounts=" << DescribeCounts(counts_from);
  }
  return os.str();
}

std::size_t GroupKeyHash::operator()(const GroupKey& k) const {
  std::uint64_t h = kFnvOffset;
  h = Fnv1a(h, k.ctx_base);
  h = Fnv1a(h, k.group_hash);
  h = Fnv1a(h, k.range);
  return static_cast<std::size_t>(h);
}

bool Enabled() {
  return InsideRank() && Ctx().runtime->options().sanitize_collectives;
}

std::uint64_t PayloadSignature(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  const std::size_t n = std::min<std::size_t>(bytes, 4096);
  std::uint64_t h = Fnv1a(kFnvOffset, bytes);  // total length always counts
  for (std::size_t i = 0; i < n; ++i) h = Fnv1a(h, p[i]);
  // Never return the "no signature" sentinel for real data.
  return h == 0 ? 1 : h;
}

namespace {

/// Ops whose `count` field is legitimately different per member (each
/// rank's own contribution / buffer size); their consistency is checked
/// pairwise against the count vectors instead.
bool PerMemberCount(CollKind k) {
  switch (k) {
    case CollKind::kGatherv:
    case CollKind::kAllgatherv:
    case CollKind::kScatterv:
    case CollKind::kAlltoallv:
    case CollKind::kSparseAlltoallv:
    case CollKind::kHierGatherv:
    case CollKind::kHierAlltoallv:
      return true;
    default:
      return false;
  }
}

/// Returns a human-readable reason iff the uniform fields of two records
/// at one sequence number disagree; empty string when they match.
std::string UniformMismatch(const OpRecord& a, const OpRecord& b) {
  if (a.kind != b.kind || a.nonblocking != b.nonblocking) {
    return "different collective operations";
  }
  if (a.root != b.root) return "different roots";
  if (a.tag != b.tag) return "different tags";
  if (!PerMemberCount(a.kind) && a.count != b.count) {
    return "different element counts";
  }
  if (a.dtype_size != b.dtype_size) return "different datatype sizes";
  if (a.segment_bytes != b.segment_bytes) return "different segment limits";
  return {};
}

/// Hierarchical collectives store the elected leader list in counts_to
/// (every member must agree -- a diverging election would deadlock the
/// leader-only phase, so the ledger catches it first).
bool LeaderListed(CollKind k) {
  switch (k) {
    case CollKind::kHierBcast:
    case CollKind::kHierAllreduce:
    case CollKind::kHierGatherv:
    case CollKind::kHierAlltoallv:
      return true;
    default:
      return false;
  }
}

/// Pairwise vector-count checks between member `ma` (record a) and member
/// `mb` (record b); returns a reason on mismatch, empty when consistent.
std::string PairwiseMismatch(const OpRecord& a, int ma, const OpRecord& b,
                             int mb) {
  if (LeaderListed(a.kind) && !a.counts_to.empty() && !b.counts_to.empty() &&
      a.counts_to != b.counts_to) {
    return "different elected leader sets (topology divergence)";
  }
  // Alltoallv: a's send count towards mb must equal b's expected receive
  // count from ma, and vice versa.
  if (a.kind == CollKind::kAlltoallv || a.kind == CollKind::kAlltoall) {
    const auto at = [](const std::vector<std::int64_t>& v, int i,
                       std::int64_t* out) {
      if (i < 0 || static_cast<std::size_t>(i) >= v.size()) return false;
      *out = v[static_cast<std::size_t>(i)];
      return true;
    };
    std::int64_t send_ab = 0, recv_ba = 0;
    if (at(a.counts_to, mb, &send_ab) && at(b.counts_from, ma, &recv_ba) &&
        send_ab != recv_ba) {
      std::ostringstream os;
      os << "rank sends " << send_ab << " elements but peer expects "
         << recv_ba << " (truncated or padded payload)";
      return os.str();
    }
    std::int64_t send_ba = 0, recv_ab = 0;
    if (at(b.counts_to, ma, &send_ba) && at(a.counts_from, mb, &recv_ab) &&
        send_ba != recv_ab) {
      std::ostringstream os;
      os << "peer sends " << send_ba << " elements but rank expects "
         << recv_ab << " (truncated or padded payload)";
      return os.str();
    }
  }
  // Gatherv / Allgatherv: the side holding recvcounts must expect exactly
  // the other side's contribution count.
  if (a.kind == CollKind::kGatherv || a.kind == CollKind::kAllgatherv ||
      a.kind == CollKind::kHierGatherv) {
    const auto check = [](const OpRecord& with_counts, int other_member,
                          const OpRecord& other) -> std::string {
      if (with_counts.counts_from.empty() || other.count < 0) return {};
      if (other_member < 0 ||
          static_cast<std::size_t>(other_member) >=
              with_counts.counts_from.size()) {
        return {};
      }
      const std::int64_t expected =
          with_counts.counts_from[static_cast<std::size_t>(other_member)];
      if (expected != other.count) {
        std::ostringstream os;
        os << "recvcounts expects " << expected
           << " elements from the peer but the peer contributes "
           << other.count;
        return os.str();
      }
      return {};
    };
    if (auto why = check(a, mb, b); !why.empty()) return why;
    if (auto why = check(b, ma, a); !why.empty()) return why;
  }
  return {};
}

}  // namespace

void Registry::ThrowMismatch(const Ledger& led, int member_a, long seq_a,
                             const OpRecord& a, int member_b, long seq_b,
                             const OpRecord& b, const std::string& why) {
  const int world_a = led.members[static_cast<std::size_t>(member_a)]
                          .world_rank;
  const int world_b = led.members[static_cast<std::size_t>(member_b)]
                          .world_rank;
  std::ostringstream os;
  os << "collective sanitizer: mismatch on " << led.desc << " at sequence #"
     << seq_a << ": " << why << "\n"
     << "  rank " << world_a << " (member " << member_a << ") op #" << seq_a
     << ": " << a.Describe() << "\n"
     << "  rank " << world_b << " (member " << member_b << ") op #" << seq_b
     << ": " << b.Describe() << "\n";
  // The last few matching ops of the detecting member, for context.
  const MemberLog& log_a = led.members[static_cast<std::size_t>(member_a)];
  int shown = 0;
  for (long s = seq_a - 1; s >= log_a.base_seq && shown < kContextOps;
       --s, ++shown) {
    const OpRecord* r = log_a.At(s);
    if (r == nullptr) break;
    os << "  matching op #" << s << ": " << r->Describe() << "\n";
  }
  if (shown == 0) os << "  (no earlier ops recorded on this communicator)\n";
  throw CollectiveMismatchError(os.str(), world_a, world_b, seq_a, seq_b);
}

long Registry::Record(const GroupKey& key, const std::string& comm_desc,
                      int member, int member_world, int nmembers,
                      OpRecord rec) {
  std::lock_guard<std::mutex> lock(mu_);
  Ledger& led = ledgers_[key];
  if (led.members.empty()) {
    led.desc = comm_desc;
    led.members.resize(static_cast<std::size_t>(nmembers));
  }
  if (member < 0 || static_cast<std::size_t>(member) >= led.members.size()) {
    throw UsageError("collective sanitizer: member index out of range for " +
                     comm_desc);
  }
  MemberLog& mine = led.members[static_cast<std::size_t>(member)];
  mine.world_rank = member_world;
  const long seq = mine.NextSeq();
  mine.ops.push_back(std::move(rec));
  if (mine.ops.size() > kHistory) {
    mine.ops.pop_front();
    ++mine.base_seq;
  }
  const OpRecord& a = *mine.At(seq);

  for (int other = 0; other < nmembers; ++other) {
    if (other == member) continue;
    const MemberLog& theirs = led.members[static_cast<std::size_t>(other)];
    const OpRecord* b = theirs.At(seq);
    if (b == nullptr) continue;  // peer not there yet, or trimmed
    if (auto why = UniformMismatch(a, *b); !why.empty()) {
      ThrowMismatch(led, member, seq, a, other, seq, *b, why);
    }
    if (auto why = PairwiseMismatch(a, member, *b, other); !why.empty()) {
      ThrowMismatch(led, member, seq, a, other, seq, *b, why);
    }
  }
  return seq;
}

void Registry::CheckExitSignature(const GroupKey& key, int member,
                                  int /*member_world*/, long seq,
                                  std::uint64_t sig) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ledgers_.find(key);
  if (it == ledgers_.end()) return;
  Ledger& led = it->second;
  const MemberLog* mine =
      (member >= 0 && static_cast<std::size_t>(member) < led.members.size())
          ? &led.members[static_cast<std::size_t>(member)]
          : nullptr;
  for (std::size_t other = 0; other < led.members.size(); ++other) {
    if (static_cast<int>(other) == member) continue;
    const OpRecord* b = led.members[other].At(seq);
    if (b == nullptr || b->sig == 0) continue;  // not the root's record
    if (b->sig != sig) {
      const OpRecord* a = mine != nullptr ? mine->At(seq) : nullptr;
      OpRecord received = a != nullptr ? *a : OpRecord{};
      received.sig = sig;
      ThrowMismatch(led, member, seq, received, static_cast<int>(other), seq,
                    *b,
                    "received payload signature differs from the root's "
                    "(payload corrupted in the schedule)");
    }
    return;  // the root's record matched; done
  }
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  ledgers_.clear();
}

Scope::Scope(const Comm& comm, OpRecord rec) {
  if (!InsideRank()) return;
  RankContext& rc = Ctx();
  if (!rc.runtime->options().sanitize_collectives) return;
  depth_held_ = true;
  if (rc.sanitize_depth++ > 0) return;  // nested composite: outer op only
  GroupKey key{comm.Base(), comm.GroupHash(), 0};
  std::ostringstream desc;
  desc << "mpi comm (ctx base " << comm.Base() << ", size " << comm.Size()
       << ")";
  try {
    Init(key, desc.str(), comm.Rank(), rc.world_rank, comm.Size(),
         std::move(rec));
  } catch (...) {
    // A throwing constructor skips the destructor: release the depth here.
    --rc.sanitize_depth;
    throw;
  }
}

Scope::Scope(const GroupKey& key, const std::string& desc, int member,
             int member_world, int nmembers, OpRecord rec) {
  if (!InsideRank()) return;
  RankContext& rc = Ctx();
  if (!rc.runtime->options().sanitize_collectives) return;
  depth_held_ = true;
  if (rc.sanitize_depth++ > 0) return;
  try {
    Init(key, desc, member, member_world, nmembers, std::move(rec));
  } catch (...) {
    --rc.sanitize_depth;
    throw;
  }
}

void Scope::Init(const GroupKey& key, const std::string& desc, int member,
                 int member_world, int nmembers, OpRecord&& rec) {
  RankContext& rc = Ctx();
  registry_ = &rc.runtime->Sanitizer();
  key_ = key;
  member_ = member;
  member_world_ = member_world;
  active_ = true;
  seq_ = registry_->Record(key_, desc, member_, member_world_, nmembers,
                           std::move(rec));
}

Scope::~Scope() noexcept(false) {
  if (depth_held_) --Ctx().sanitize_depth;
  if (active_ && seq_ >= 0 && check_buf_ != nullptr &&
      std::uncaught_exceptions() == 0) {
    registry_->CheckExitSignature(
        key_, member_, member_world_, seq_,
        PayloadSignature(check_buf_, check_bytes_));
  }
}

void Scope::ArmExitSignatureCheck(const void* buf, std::size_t bytes) {
  if (!active_ || seq_ < 0) return;
  check_buf_ = buf;
  check_bytes_ = bytes;
}

}  // namespace mpisim::sanitize
