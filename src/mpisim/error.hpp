// mpisim -- a single-process, threads-as-ranks message-passing substrate
// that reproduces the semantics (and the cost structure) of MPI for the
// RBC / Janus Quicksort reproduction.
//
// Error types thrown by the substrate.
#pragma once

#include <stdexcept>
#include <string>

namespace mpisim {

/// Base class for every error raised by the mpisim substrate.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised on API misuse (negative counts, out-of-range ranks, truncating
/// receives, reserved tags, ...). Mirrors MPI's ERRORS_ARE_FATAL class of
/// failures, but recoverable in-process so tests can assert on it.
class UsageError : public Error {
 public:
  explicit UsageError(const std::string& what) : Error(what) {}
};

/// Raised in a rank that is blocked while another rank already failed; the
/// runtime aborts all blocked ranks so the originating exception can be
/// re-thrown from Runtime::Run().
class AbortedError : public Error {
 public:
  AbortedError() : Error("mpisim: run aborted because another rank failed") {}
};

/// Raised when a blocking operation exceeds the configured deadlock timeout.
/// This exists purely as test hygiene: a wedged collective fails the test
/// instead of hanging ctest.
class DeadlockError : public Error {
 public:
  explicit DeadlockError(const std::string& what) : Error(what) {}
};

}  // namespace mpisim
