// mpisim -- a single-process, threads-as-ranks message-passing substrate
// that reproduces the semantics (and the cost structure) of MPI for the
// RBC / Janus Quicksort reproduction.
//
// Error types thrown by the substrate. Every message is annotated with a
// "[rank r/p]" prefix when thrown from inside a rank thread, so a failure
// in a p-rank run always names the rank that raised it.
#pragma once

#include <stdexcept>
#include <string>

namespace mpisim {

namespace detail {
/// Prepends "[rank r/p] " when called from a rank thread; identity
/// otherwise. Defined in runtime.cpp, which owns the thread-local rank
/// context.
std::string AnnotateError(const std::string& what);
}  // namespace detail

/// Base class for every error raised by the mpisim substrate.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what)
      : std::runtime_error(detail::AnnotateError(what)) {}
};

/// Raised on API misuse (negative counts, out-of-range ranks, truncating
/// receives, reserved tags, ...). Mirrors MPI's ERRORS_ARE_FATAL class of
/// failures, but recoverable in-process so tests can assert on it.
class UsageError : public Error {
 public:
  explicit UsageError(const std::string& what) : Error(what) {}
};

/// Raised in a rank that is blocked while another rank already failed; the
/// runtime aborts all blocked ranks so the originating exception can be
/// re-thrown from Runtime::Run(). `origin_rank()` is the world rank whose
/// failure triggered the abort, or -1 when unknown.
class AbortedError : public Error {
 public:
  AbortedError() : Error("mpisim: run aborted because another rank failed") {}
  explicit AbortedError(int origin_rank)
      : Error(origin_rank >= 0
                  ? "mpisim: run aborted because rank " +
                        std::to_string(origin_rank) + " failed"
                  : "mpisim: run aborted because another rank failed"),
        origin_rank_(origin_rank) {}

  int origin_rank() const { return origin_rank_; }

 private:
  int origin_rank_ = -1;
};

/// Raised when a blocking operation exceeds the configured deadlock timeout
/// or when the runtime proves that no blocked rank can ever be woken. The
/// message carries the per-rank wait-graph report assembled by
/// BuildDeadlockReport (waitgraph.hpp) whenever a runtime is available.
class DeadlockError : public Error {
 public:
  explicit DeadlockError(const std::string& what) : Error(what) {}
};

/// Raised by the collective sanitizer (RuntimeConfig::sanitize_collectives)
/// when two ranks of one communicator disagree about the collective they
/// are executing at the same sequence number: wrong root, skipped or
/// reordered collective, divergent counts, mismatched payload. Names both
/// world ranks and the divergent sequence numbers.
class CollectiveMismatchError : public Error {
 public:
  CollectiveMismatchError(const std::string& what, int rank_a, int rank_b,
                          long seq_a, long seq_b)
      : Error(what), rank_a_(rank_a), rank_b_(rank_b), seq_a_(seq_a),
        seq_b_(seq_b) {}

  /// World rank that detected the mismatch.
  int rank_a() const { return rank_a_; }
  /// World rank whose recorded sequence diverges from rank_a's.
  int rank_b() const { return rank_b_; }
  long seq_a() const { return seq_a_; }
  long seq_b() const { return seq_b_; }

 private:
  int rank_a_;
  int rank_b_;
  long seq_a_;
  long seq_b_;
};

}  // namespace mpisim
