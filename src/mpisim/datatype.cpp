#include "mpisim/datatype.hpp"

#include <algorithm>
#include <cstring>

namespace mpisim {
namespace {

template <typename T, typename F>
void ApplyTyped(const void* in, void* inout, int count, F f) {
  const T* a = static_cast<const T*>(in);
  T* b = static_cast<T*>(inout);
  for (int i = 0; i < count; ++i) b[i] = f(a[i], b[i]);
}

template <typename T>
void ApplyArith(ReduceOp op, const void* in, void* inout, int count) {
  switch (op) {
    case ReduceOp::kSum:
      ApplyTyped<T>(in, inout, count, [](T a, T b) { return static_cast<T>(a + b); });
      return;
    case ReduceOp::kProd:
      ApplyTyped<T>(in, inout, count, [](T a, T b) { return static_cast<T>(a * b); });
      return;
    case ReduceOp::kMin:
      ApplyTyped<T>(in, inout, count, [](T a, T b) { return std::min(a, b); });
      return;
    case ReduceOp::kMax:
      ApplyTyped<T>(in, inout, count, [](T a, T b) { return std::max(a, b); });
      return;
    default:
      break;
  }
  throw UsageError("ApplyReduce: operator not defined for this datatype");
}

template <typename T>
void ApplyBitwise(ReduceOp op, const void* in, void* inout, int count) {
  switch (op) {
    case ReduceOp::kBand:
      ApplyTyped<T>(in, inout, count, [](T a, T b) { return static_cast<T>(a & b); });
      return;
    case ReduceOp::kBor:
      ApplyTyped<T>(in, inout, count, [](T a, T b) { return static_cast<T>(a | b); });
      return;
    case ReduceOp::kBxor:
      ApplyTyped<T>(in, inout, count, [](T a, T b) { return static_cast<T>(a ^ b); });
      return;
    default:
      return ApplyArith<T>(op, in, inout, count);
  }
}

template <typename P>
void ApplyPair(ReduceOp op, const void* in, void* inout, int count) {
  switch (op) {
    case ReduceOp::kMaxPairFirst:
      ApplyTyped<P>(in, inout, count,
                    [](P a, P b) { return a.first > b.first ? a : b; });
      return;
    case ReduceOp::kMinPairFirst:
      ApplyTyped<P>(in, inout, count,
                    [](P a, P b) { return a.first < b.first ? a : b; });
      return;
    default:
      throw UsageError("ApplyReduce: pair datatypes only support k{Max,Min}PairFirst");
  }
}

}  // namespace

void ApplyReduce(ReduceOp op, Datatype dt, const void* in, void* inout,
                 int count) {
  if (count < 0) throw UsageError("ApplyReduce: negative count");
  switch (dt) {
    case Datatype::kByte:
      return ApplyBitwise<std::uint8_t>(op, in, inout, count);
    case Datatype::kInt32:
      return ApplyBitwise<std::int32_t>(op, in, inout, count);
    case Datatype::kUint32:
      return ApplyBitwise<std::uint32_t>(op, in, inout, count);
    case Datatype::kInt64:
      return ApplyBitwise<std::int64_t>(op, in, inout, count);
    case Datatype::kUint64:
      return ApplyBitwise<std::uint64_t>(op, in, inout, count);
    case Datatype::kFloat32:
      return ApplyArith<float>(op, in, inout, count);
    case Datatype::kFloat64:
      return ApplyArith<double>(op, in, inout, count);
    case Datatype::kPairDoubleDouble:
      return ApplyPair<PairDD>(op, in, inout, count);
    case Datatype::kPairInt64Int64:
      return ApplyPair<PairII>(op, in, inout, count);
  }
  throw UsageError("ApplyReduce: unknown datatype");
}

const char* DatatypeName(Datatype dt) {
  switch (dt) {
    case Datatype::kByte: return "byte";
    case Datatype::kInt32: return "int32";
    case Datatype::kUint32: return "uint32";
    case Datatype::kInt64: return "int64";
    case Datatype::kUint64: return "uint64";
    case Datatype::kFloat32: return "float32";
    case Datatype::kFloat64: return "float64";
    case Datatype::kPairDoubleDouble: return "pair<double,double>";
    case Datatype::kPairInt64Int64: return "pair<int64,int64>";
  }
  return "?";
}

}  // namespace mpisim
