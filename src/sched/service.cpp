#include "sched/service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <mutex>

#include "mpisim/runtime.hpp"
#include "query/quantile.hpp"
#include "query/select.hpp"
#include "query/topk.hpp"
#include "sort/checks.hpp"
#include "sort/jquick.hpp"
#include "sort/multilevel_sort.hpp"
#include "sort/sample_sort.hpp"
#include "sort/workload.hpp"

namespace jsort::sched {

namespace {

/// Logical tags of the off-clock verification collectives. Safe against
/// the sorters' tags because verification runs strictly after the job's
/// sort completed on every member of the (private) job group.
constexpr int kVerifyGatherTag = 7050;
constexpr int kVerifyVerdictTag = 7051;

}  // namespace

/// Shared-memory coordination of the rank threads: a reusable barrier
/// that polls the substrate's abort flag (so a failing rank cannot wedge
/// the others) plus the per-rank report board. Both live outside mpisim
/// on purpose: service bookkeeping must not advance any virtual clock.
struct SortService::SharedState {
  struct RankReport {
    int job = -1;  // -1: rank idled this wave
    double end_clock = 0.0;
    double split_vtime = 0.0;
    double sort_vtime = 0.0;
    std::int64_t elements = 0;
    std::int64_t messages = 0;
    double answer = 0.0;  // significant on the job's group root only
    bool ok = true;
  };

  explicit SharedState(int n) : parties(n), reports(static_cast<std::size_t>(n)) {}

  void AwaitWave() {
    mpisim::RankContext& rc = mpisim::Ctx();
    std::unique_lock<std::mutex> lock(mu);
    const std::uint64_t gen = generation;
    if (++arrived == parties) {
      arrived = 0;
      ++generation;
      cv.notify_all();
      return;
    }
    // Out-of-band barrier: register as a spin-wait (known=false) so a
    // rank that died mid-wave yields a forensic wait-graph dump instead
    // of a bare timeout. Registered after the arrival bookkeeping above
    // -- only waiting ranks count as blocked.
    mpisim::ScopedWait guard(mpisim::MakeWait("SortService wave barrier"));
    const auto deadline = std::chrono::steady_clock::now() +
                          rc.runtime->options().deadlock_timeout;
    while (generation == gen) {
      if (rc.runtime->Aborted()) {
        throw mpisim::AbortedError(rc.runtime->FirstFailedRank());
      }
      if (cv.wait_until(lock, std::min(deadline,
                                       std::chrono::steady_clock::now() +
                                           std::chrono::milliseconds(50))) ==
              std::cv_status::timeout &&
          std::chrono::steady_clock::now() >= deadline) {
        throw mpisim::DeadlockError(mpisim::BuildDeadlockReport(
            *rc.runtime,
            "SortService: wave barrier exceeded the deadlock timeout"));
      }
    }
  }

  const int parties;
  std::mutex mu;
  std::condition_variable cv;
  int arrived = 0;
  std::uint64_t generation = 0;
  std::vector<RankReport> reports;
};

SortService::SortService(int ranks, std::vector<JobSpec> jobs,
                         ServiceConfig cfg)
    : ranks_(ranks),
      jobs_(std::move(jobs)),
      cfg_(std::move(cfg)),
      shared_(std::make_unique<SharedState>(ranks)) {
  if (ranks < 1) {
    throw mpisim::UsageError("SortService: ranks must be positive");
  }
}

SortService::~SortService() = default;

namespace {

/// Off-the-clock verification of one job's output on its own group:
/// every member contributes (locally_sorted, count, first, last); the
/// group root checks the boundary chain and element conservation and
/// broadcasts the verdict. The virtual clock is restored afterwards, so
/// verification never shows up in any reported timing.
bool VerifyJob(const std::shared_ptr<Transport>& sub, const JobSpec& spec,
               std::span<const double> out) {
  mpisim::RankContext& rc = mpisim::Ctx();
  const double saved = rc.clock.Now();
  const int p = sub->Size();
  double desc[4] = {
      std::is_sorted(out.begin(), out.end()) ? 1.0 : 0.0,
      static_cast<double>(out.size()),
      out.empty() ? 0.0 : out.front(),
      out.empty() ? 0.0 : out.back(),
  };
  std::vector<double> all(static_cast<std::size_t>(4 * p));
  Poll gather = sub->Igather(desc, 4, Datatype::kFloat64, all.data(), 0,
                             kVerifyGatherTag);
  while (!gather()) {
  }
  double verdict = 1.0;
  if (sub->Rank() == 0) {
    bool ok = true;
    std::int64_t total = 0;
    bool have_prev = false;
    double prev = 0.0;
    for (int r = 0; r < p; ++r) {
      const double* d = &all[static_cast<std::size_t>(4 * r)];
      ok = ok && d[0] != 0.0;
      const std::int64_t count = static_cast<std::int64_t>(d[1]);
      total += count;
      if (count > 0) {
        if (have_prev && d[2] < prev) ok = false;
        prev = d[3];
        have_prev = true;
      }
    }
    ok = ok && total == spec.n_total;
    verdict = ok ? 1.0 : 0.0;
  }
  Poll bcast =
      sub->Ibcast(&verdict, 1, Datatype::kFloat64, 0, kVerifyVerdictTag);
  while (!bcast()) {
  }
  rc.clock.Reset();
  rc.clock.Advance(saved);
  return verdict != 0.0;
}

/// Runs a verification functor with the virtual clock saved and restored,
/// so the query checkers' collectives (like VerifyJob's) never show up in
/// any reported timing.
template <typename F>
bool OffClock(F&& verify) {
  mpisim::RankContext& rc = mpisim::Ctx();
  const double saved = rc.clock.Now();
  const bool ok = verify();
  rc.clock.Reset();
  rc.clock.Advance(saved);
  return ok;
}

}  // namespace

ServiceStats SortService::Run(mpisim::Comm& world) {
  if (world.IsNull() || world.Size() != ranks_) {
    throw mpisim::UsageError(
        "SortService::Run: world size does not match the service");
  }
  const int me = world.Rank();
  mpisim::RankContext& rc = mpisim::Ctx();
  const std::shared_ptr<Transport> root = MakeTransport(cfg_.backend, world);
  Scheduler sched(ranks_, jobs_, cfg_.scheduler);

  ServiceStats stats;
  stats.jobs.resize(jobs_.size());

  while (true) {
    const std::vector<Admission> wave = sched.NextWave();
    if (wave.empty()) break;
    ++stats.waves;

    SharedState::RankReport& mine =
        shared_->reports[static_cast<std::size_t>(me)];
    mine = SharedState::RankReport{};
    const Admission* my_job = nullptr;
    for (const Admission& a : wave) {
      if (a.first <= me && me <= a.last) {
        my_job = &a;
        break;
      }
    }

    if (my_job != nullptr) {
      const Admission& a = *my_job;
      // An idle member's clock is always <= the admission vtime (ranges
      // only start once released, at the releasing jobs' max clock), so
      // Merge sets the whole group to a common start.
      rc.clock.Merge(a.start_vtime);
      const double t0 = rc.clock.Now();
      const std::shared_ptr<Transport> sub = root->Split(a.first, a.last);
      const double t_split = rc.clock.Now();

      const int jp = a.width;
      const int jr = sub->Rank();
      const std::int64_t quota =
          a.spec.n_total / jp + (jr < a.spec.n_total % jp ? 1 : 0);
      std::vector<double> input =
          GenerateInput(a.spec.input, jr, jp, quota, a.spec.seed);
      if (cfg_.charge_local_sort && quota > 0) {
        // Sorts pay the comparison-sort term; queries touch each local
        // element O(1) times in expectation, so they pay a linear scan.
        const double logn =
            quota > 1 ? std::log2(static_cast<double>(quota)) : 1.0;
        const double units =
            a.spec.kind == JobKind::kSort
                ? static_cast<double>(quota) * logn
                : static_cast<double>(quota);
        rc.clock.Advance(rc.runtime->options().cost.compute_unit * units);
      }

      std::vector<double> result;  // this rank's share of the answer
      std::int64_t messages = 0;
      double answer = 0.0;
      bool ok = true;
      const std::uint64_t msg0 = rc.stats.messages_sent;
      switch (a.spec.kind) {
        case JobKind::kSort: {
          switch (a.spec.algorithm) {
            case Algorithm::kJQuick: {
              JQuickConfig scfg;
              scfg.seed = a.spec.seed;
              JQuickStats st;
              result = JQuickSortPadded(sub, std::move(input), scfg, &st);
              messages = st.messages_sent;
              break;
            }
            case Algorithm::kSampleSort: {
              SampleSortConfig scfg;
              scfg.seed = a.spec.seed;
              SampleSortStats st;
              result = SampleSort(sub, std::move(input), scfg, &st);
              messages = st.messages_sent;
              break;
            }
            case Algorithm::kMultilevel: {
              MultilevelConfig scfg;
              scfg.seed = a.spec.seed;
              MultilevelStats st;
              result = MultilevelSampleSort(sub, std::move(input), scfg, &st);
              messages = st.messages_sent;
              break;
            }
          }
          if (cfg_.verify) ok = VerifyJob(sub, a.spec, result);
          break;
        }
        case JobKind::kSelect: {
          query::SelectConfig qcfg;
          qcfg.seed = a.spec.seed;
          const query::SelectResult sel =
              query::DistributedSelect(*sub, input, a.spec.k, qcfg);
          messages =
              static_cast<std::int64_t>(rc.stats.messages_sent - msg0);
          answer = sel.value;
          if (jr == 0) result = {sel.value};
          if (cfg_.verify) {
            ok = OffClock([&] {
              return VerifySelection(*sub, input, a.spec.k, sel.value,
                                     sel.less, sel.less_equal,
                                     query::kQueryVerifyTagBase);
            });
          }
          break;
        }
        case JobKind::kTopK: {
          query::TopKConfig qcfg;
          qcfg.seed = a.spec.seed;
          std::vector<double> topk =
              query::DistributedTopK(*sub, input, a.spec.k, qcfg);
          messages =
              static_cast<std::int64_t>(rc.stats.messages_sent - msg0);
          if (jr == 0) answer = topk.empty() ? 0.0 : topk.back();
          if (cfg_.verify) {
            ok = OffClock([&] {
              return VerifyTopK(*sub, input, a.spec.k, topk, 0,
                                query::kQueryVerifyTagBase);
            });
          }
          result = std::move(topk);
          break;
        }
        case JobKind::kQuantile: {
          query::QuantileConfig qcfg;
          qcfg.bins = cfg_.quantile_bins;
          const query::QuantileSummary summary =
              query::BuildQuantileSummary(*sub, input, qcfg);
          messages =
              static_cast<std::int64_t>(rc.stats.messages_sent - msg0);
          answer = summary.Query(a.spec.q);
          if (jr == 0) result = {answer};
          if (cfg_.verify) {
            ok = OffClock([&] {
              return VerifyQuantile(*sub, input, a.spec.q, answer,
                                    summary.RankErrorBound(a.spec.q),
                                    query::kQueryVerifyTagBase);
            });
          }
          break;
        }
      }
      const double t_end = rc.clock.Now();

      if (cfg_.on_job_output) cfg_.on_job_output(a, jr, result);

      mine.job = a.spec.id;
      mine.end_clock = t_end;
      mine.split_vtime = t_split - t0;
      mine.sort_vtime = t_end - t_split;
      mine.elements = static_cast<std::int64_t>(result.size());
      mine.messages = messages;
      mine.answer = answer;
      mine.ok = ok;
    }

    shared_->AwaitWave();

    // Fold the report board -- identical reads and arithmetic on every
    // rank, so every scheduler replica sees identical completions.
    for (const Admission& a : wave) {
      JobResult r;
      r.spec = a.spec;
      r.first = a.first;
      r.last = a.last;
      r.width = a.width;
      r.start_vtime = a.start_vtime;
      r.queue_wait = a.start_vtime - a.spec.arrival_vtime;
      r.ok = true;
      // The group root (sub rank 0) is world rank a.first; its report
      // carries the scalar answer of a query job.
      r.answer = shared_->reports[static_cast<std::size_t>(a.first)].answer;
      double completion = a.start_vtime;
      for (int m = a.first; m <= a.last; ++m) {
        const SharedState::RankReport& rep =
            shared_->reports[static_cast<std::size_t>(m)];
        completion = std::max(completion, rep.end_clock);
        r.split_vtime = std::max(r.split_vtime, rep.split_vtime);
        r.sort_vtime = std::max(r.sort_vtime, rep.sort_vtime);
        r.elements += rep.elements;
        r.messages += rep.messages;
        r.ok = r.ok && rep.ok && rep.job == a.spec.id;
      }
      r.completion_vtime = completion;
      r.latency = completion - a.spec.arrival_vtime;
      stats.jobs[static_cast<std::size_t>(a.spec.id)] = r;
      stats.makespan = std::max(stats.makespan, completion);
      sched.Complete(a.spec.id, completion);
    }

    // Second barrier: nobody may reuse the report board for the next
    // wave before everybody finished folding this one.
    shared_->AwaitWave();
  }
  return stats;
}

double LatencyPercentile(const ServiceStats& stats, double q) {
  std::vector<double> lat;
  lat.reserve(stats.jobs.size());
  for (const JobResult& r : stats.jobs) lat.push_back(r.latency);
  if (lat.empty()) return 0.0;
  std::sort(lat.begin(), lat.end());
  const double rank =
      std::ceil(std::clamp(q, 0.0, 1.0) * static_cast<double>(lat.size()));
  const auto idx = static_cast<std::size_t>(
      std::clamp<long long>(std::llround(rank) - 1, 0,
                            static_cast<long long>(lat.size()) - 1));
  return lat[idx];
}

ServiceMetrics Summarize(const ServiceStats& stats) {
  ServiceMetrics m;
  m.jobs = static_cast<int>(stats.jobs.size());
  m.makespan = stats.makespan;
  double wait_sum = 0.0;
  for (const JobResult& r : stats.jobs) {
    if (!r.ok) ++m.failed;
    wait_sum += r.queue_wait;
    m.split_vtime_total += r.split_vtime;
    m.busy_vtime_total += r.completion_vtime - r.start_vtime;
    m.elements += r.elements;
  }
  if (m.jobs > 0) m.mean_queue_wait = wait_sum / m.jobs;
  if (stats.makespan > 0.0) {
    m.jobs_per_sec = static_cast<double>(m.jobs) / (stats.makespan * 1e-6);
  }
  if (m.busy_vtime_total > 0.0) {
    m.split_share = m.split_vtime_total / m.busy_vtime_total;
  }
  m.p50_latency = LatencyPercentile(stats, 0.50);
  m.p99_latency = LatencyPercentile(stats, 0.99);
  return m;
}

namespace {

/// Filtered copy sharing the full run's makespan: per-kind jobs_per_sec
/// and latency percentiles of a mixed stream.
ServiceMetrics SummarizeKind(const ServiceStats& stats, bool queries) {
  ServiceStats sub;
  sub.waves = stats.waves;
  sub.makespan = stats.makespan;
  for (const JobResult& r : stats.jobs) {
    if ((r.spec.kind != JobKind::kSort) == queries) sub.jobs.push_back(r);
  }
  return Summarize(sub);
}

}  // namespace

ServiceMetrics SummarizeQueries(const ServiceStats& stats) {
  return SummarizeKind(stats, /*queries=*/true);
}

ServiceMetrics SummarizeSorts(const ServiceStats& stats) {
  return SummarizeKind(stats, /*queries=*/false);
}

}  // namespace jsort::sched
