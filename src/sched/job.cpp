#include "sched/job.hpp"

#include <algorithm>
#include <cmath>
#include <random>

#include "mpisim/error.hpp"

namespace jsort::sched {

const char* AlgorithmName(Algorithm a) {
  switch (a) {
    case Algorithm::kJQuick: return "jquick";
    case Algorithm::kSampleSort: return "samplesort";
    case Algorithm::kMultilevel: return "multilevel";
  }
  return "?";
}

const char* JobKindName(JobKind k) {
  switch (k) {
    case JobKind::kSort: return "sort";
    case JobKind::kSelect: return "select";
    case JobKind::kTopK: return "topk";
    case JobKind::kQuantile: return "quantile";
  }
  return "?";
}

namespace {

/// Uniform double in [0, 1) from a raw 64-bit word (top 53 bits). Used
/// instead of std::uniform_real_distribution / exponential_distribution,
/// whose outputs are implementation-defined: committed BENCH_service.json
/// snapshots must reproduce on every standard library.
double UnitFrom(std::uint64_t word) {
  return static_cast<double>(word >> 11) * 0x1.0p-53;
}

int FloorLog2(std::int64_t v) {
  int lg = 0;
  while ((std::int64_t{1} << (lg + 1)) <= v) ++lg;
  return lg;
}

int CeilLog2(std::int64_t v) {
  int lg = 0;
  while ((std::int64_t{1} << lg) < v) ++lg;
  return lg;
}

}  // namespace

std::vector<JobSpec> MakeJobStream(int ranks, const JobStreamParams& params,
                                   std::uint64_t seed) {
  if (ranks < 1 || params.jobs < 0 || params.mean_interarrival <= 0.0 ||
      params.min_width < 1 || params.max_width < params.min_width ||
      params.min_width > ranks ||
      params.min_n < 1 || params.max_n < params.min_n ||
      params.algorithms.empty() || params.inputs.empty() ||
      params.query_fraction < 0.0 || params.query_fraction > 1.0 ||
      (params.query_fraction > 0.0 && params.query_kinds.empty())) {
    throw mpisim::UsageError("MakeJobStream: malformed parameters");
  }
  std::mt19937_64 rng(seed ^ 0xC0FFEE5EEDull);
  // Widths are powers of two within [min_width, min(max_width, ranks)]:
  // round the lower bound up, the upper bound down, and reject an empty
  // power-of-two range (e.g. min 5, max 7).
  const int lo_w = CeilLog2(params.min_width);
  const int hi_w = FloorLog2(std::min<std::int64_t>(params.max_width, ranks));
  if (lo_w > hi_w) {
    throw mpisim::UsageError(
        "MakeJobStream: no power-of-two width in [min_width, "
        "min(max_width, ranks)]");
  }
  const double lo_n = std::log2(static_cast<double>(params.min_n));
  const double hi_n = std::log2(static_cast<double>(params.max_n));

  std::vector<JobSpec> jobs;
  jobs.reserve(static_cast<std::size_t>(params.jobs));
  double vtime = 0.0;
  for (int i = 0; i < params.jobs; ++i) {
    JobSpec s;
    s.id = i;
    // Exponential interarrival gap by inversion; the guard keeps
    // log(1 - u) finite.
    const double u = std::min(UnitFrom(rng()), 0.999999999);
    vtime += -params.mean_interarrival * std::log1p(-u);
    s.arrival_vtime = vtime;
    const int lg_w =
        lo_w + static_cast<int>(rng() % static_cast<std::uint64_t>(
                                    hi_w - lo_w + 1));
    s.width = 1 << lg_w;
    const double lg_n = lo_n + UnitFrom(rng()) * (hi_n - lo_n);
    s.n_total = std::max<std::int64_t>(
        static_cast<std::int64_t>(std::llround(std::exp2(lg_n))), s.width);
    s.algorithm = params.algorithms[static_cast<std::size_t>(
        rng() % params.algorithms.size())];
    s.input =
        params.inputs[static_cast<std::size_t>(rng() % params.inputs.size())];
    s.priority = params.max_priority > 0
                     ? static_cast<int>(rng() % static_cast<std::uint64_t>(
                                            params.max_priority + 1))
                     : 0;
    s.seed = rng() | 1u;  // nonzero
    // Query draws come last and only when the stream asks for queries, so
    // every query_fraction == 0 stream is word-for-word identical to the
    // streams generated before queries existed.
    if (params.query_fraction > 0.0 &&
        UnitFrom(rng()) < params.query_fraction) {
      s.kind = params.query_kinds[static_cast<std::size_t>(
          rng() % params.query_kinds.size())];
      switch (s.kind) {
        case JobKind::kSort:
          break;
        case JobKind::kSelect:
        case JobKind::kTopK: {
          // k log-uniform in [1, n_total]: small-k queries dominate but
          // the tail reaches full-size requests.
          const double lg_k =
              UnitFrom(rng()) * std::log2(static_cast<double>(s.n_total));
          s.k = std::clamp<std::int64_t>(
              static_cast<std::int64_t>(std::llround(std::exp2(lg_k))), 1,
              s.n_total);
          if (s.kind == JobKind::kSelect) --s.k;  // 0-based statistic
          break;
        }
        case JobKind::kQuantile:
          s.q = UnitFrom(rng());
          break;
      }
    }
    jobs.push_back(s);
  }
  return jobs;
}

}  // namespace jsort::sched
