// The SPMD front end of the elastic sort service.
//
// Construct a SortService once (outside Runtime::Run) and have *every*
// rank of the world call Run(world); the call is collective and returns
// identical ServiceStats on every rank. Internally each rank replicates
// the pure Scheduler state machine; the only cross-rank coordination is
// an out-of-band wave barrier plus a shared per-rank report board, both
// in plain process memory -- deliberately outside the message-passing
// substrate so that service bookkeeping costs *zero* virtual time and
// the measured latencies contain exactly what the model charges the
// jobs: the communicator split (the axis under test), the sort's
// communication, and (optionally) an explicit local-sort compute term.
//
// Execution model per wave: every member rank of an admitted job lifts
// its clock to the admission vtime, splits the job's range off the world
// transport (RBC: O(1) local; native MPI: blocking O(group) agreement;
// ICOMM: Section-VI local range creation), generates its slice of the
// input, runs the job's sorter, and posts its measurements to the report
// board. After the barrier every rank folds the identical board into
// identical JobResults and feeds the completions back to its scheduler
// replica.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "sched/scheduler.hpp"
#include "sort/transport.hpp"

namespace jsort::sched {

struct ServiceConfig {
  /// Split/communication backend every job group is materialized with.
  Backend backend = Backend::kRbc;
  SchedulerConfig scheduler{};
  /// Verify each job's result on its own group: sorts check global
  /// sortedness + element conservation; queries re-establish the answer
  /// from the original input (checks.hpp query checkers). Runs off the
  /// virtual clock, so enabling it does not perturb reported timings.
  bool verify = false;
  /// Charge explicit model time per member for the local work: sorts pay
  /// compute_unit * n * log2(n) (comparison sort), queries pay
  /// compute_unit * n (linear scans/partitions), so even
  /// communication-free (width-1) jobs have positive duration. Identical
  /// across backends.
  bool charge_local_sort = true;
  /// Summary size for kQuantile jobs (QuantileConfig::bins).
  int quantile_bins = 64;
  /// Rank-local observation hook: called by every member rank with its
  /// slice of the job's sorted output (tests use this for byte-exact
  /// comparison against the standalone sorters).
  std::function<void(const Admission&, int member_rank,
                     std::span<const double> local_output)>
      on_job_output;
};

/// Everything the service measured, identical on every rank.
struct ServiceStats {
  std::vector<JobResult> jobs;  // indexed by JobSpec::id
  int waves = 0;                // admission batches executed
  double makespan = 0.0;        // max completion vtime over all jobs
};

/// Aggregate service-level metrics derived from ServiceStats. Virtual
/// time is in model microseconds, so jobs_per_sec = jobs/(makespan*1e-6).
struct ServiceMetrics {
  int jobs = 0;
  int failed = 0;               // jobs with ok == false
  double makespan = 0.0;
  double jobs_per_sec = 0.0;
  double p50_latency = 0.0;
  double p99_latency = 0.0;
  double mean_queue_wait = 0.0;
  double split_vtime_total = 0.0;
  double busy_vtime_total = 0.0;  // sum over jobs of completion - start
  double split_share = 0.0;       // split_vtime_total / busy_vtime_total
  std::int64_t elements = 0;
};

ServiceMetrics Summarize(const ServiceStats& stats);

/// Summarize restricted to the query jobs (kind != kSort) / the sorts of
/// a mixed stream. The makespan (and thus jobs_per_sec's denominator) is
/// the full run's: "queries per second" means "of the mixed service run",
/// not of a hypothetical query-only service.
ServiceMetrics SummarizeQueries(const ServiceStats& stats);
ServiceMetrics SummarizeSorts(const ServiceStats& stats);

/// Nearest-rank percentile (q in [0, 1]) of the end-to-end latencies.
double LatencyPercentile(const ServiceStats& stats, double q);

class SortService {
 public:
  /// `ranks` must equal the world size every rank later passes to Run.
  SortService(int ranks, std::vector<JobSpec> jobs, ServiceConfig cfg = {});
  ~SortService();

  SortService(const SortService&) = delete;
  SortService& operator=(const SortService&) = delete;

  /// Collective over all `ranks` ranks; each rank calls it exactly once
  /// per service run. Deterministic in (jobs, config, backend).
  ServiceStats Run(mpisim::Comm& world);

 private:
  struct SharedState;

  int ranks_;
  std::vector<JobSpec> jobs_;
  ServiceConfig cfg_;
  std::unique_ptr<SharedState> shared_;
};

}  // namespace jsort::sched
