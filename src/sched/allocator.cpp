#include "sched/allocator.hpp"

#include <algorithm>

#include "mpisim/error.hpp"

namespace jsort::sched {

namespace {

bool IsPow2(int v) { return v > 0 && (v & (v - 1)) == 0; }

int CeilLog2(int v) {
  int lg = 0;
  while ((1 << lg) < v) ++lg;
  return lg;
}

}  // namespace

RangeAllocator::RangeAllocator(int size, Policy policy,
                               topo::Topology topology)
    : size_(size),
      policy_(policy),
      topology_(std::move(topology)),
      free_ranks_(size) {
  if (size < 1) {
    throw mpisim::UsageError("RangeAllocator: size must be positive");
  }
  if (const std::string err = topology_.Validate(size); !err.empty()) {
    throw mpisim::UsageError("RangeAllocator: " + err);
  }
  if (policy_ == Policy::kBuddy) {
    if (!IsPow2(size)) {
      throw mpisim::UsageError(
          "RangeAllocator: buddy policy needs a power-of-two size");
    }
    max_order_ = CeilLog2(size);
    orders_.assign(static_cast<std::size_t>(max_order_) + 1, {});
    orders_[static_cast<std::size_t>(max_order_)].insert(0);
  } else {
    free_.emplace(0, size);
  }
}

std::optional<Block> RangeAllocator::Allocate(int width) {
  if (width < 1) {
    throw mpisim::UsageError("RangeAllocator: width must be positive");
  }
  if (width > size_) return std::nullopt;
  return policy_ == Policy::kBuddy ? AllocateBuddy(width)
                                   : AllocateFirstFit(width);
}

std::optional<Block> RangeAllocator::AllocateFirstFit(int width) {
  if (NodeAffine()) return AllocateNodeAffine(width);
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    const auto [first, len] = *it;
    if (len < width) continue;
    free_.erase(it);
    if (len > width) free_.emplace(first + width, len - width);
    live_.emplace(first, width);
    free_ranks_ -= width;
    return Block{first, first + width - 1};
  }
  return std::nullopt;
}

std::optional<Block> RangeAllocator::AllocateNodeAffine(int width) {
  // Candidate placements: each free run's own start, plus every node
  // start inside the run (aligning a job to a node boundary may leave a
  // hole at the run's front, but keeps the job's communicator on as few
  // nodes as possible). Score = node boundaries straddled; minimum wins,
  // ties to the lowest start -- with one node everything scores 0 and
  // the lowest start is plain first fit.
  int best_start = -1;
  int best_cuts = 0;
  auto consider = [&](int start, int run_last) {
    const int last = start + width - 1;
    if (last > run_last) return;
    const int cuts = topology_.NodeOf(last) - topology_.NodeOf(start);
    if (best_start < 0 || cuts < best_cuts) {
      best_start = start;
      best_cuts = cuts;
    }
  };
  for (const auto& [first, len] : free_) {
    const int run_last = first + len - 1;
    consider(first, run_last);
    const int first_node = topology_.NodeOf(first);
    for (int node = first_node + 1;
         node < topology_.NodeCount() &&
         topology_.NodeFirst(node) <= run_last;
         ++node) {
      consider(topology_.NodeFirst(node), run_last);
    }
  }
  if (best_start < 0) return std::nullopt;
  // Carve [best_start, best_start + width) out of its enclosing run.
  auto it = free_.upper_bound(best_start);
  --it;
  const auto [first, len] = *it;
  free_.erase(it);
  if (best_start > first) free_.emplace(first, best_start - first);
  const int tail = first + len - (best_start + width);
  if (tail > 0) free_.emplace(best_start + width, tail);
  live_.emplace(best_start, width);
  free_ranks_ -= width;
  return Block{best_start, best_start + width - 1};
}

int RangeAllocator::CrossNodeCuts(Block b) const {
  if (topology_.Empty() || b.Width() < 1) return 0;
  return topology_.NodeOf(b.last) - topology_.NodeOf(b.first);
}

std::optional<Block> RangeAllocator::AllocateBuddy(int width) {
  const int want = CeilLog2(width);
  // Smallest order with a free block, lowest start within it: fully
  // deterministic.
  int from = want;
  while (from <= max_order_ &&
         orders_[static_cast<std::size_t>(from)].empty()) {
    ++from;
  }
  if (from > max_order_) return std::nullopt;
  int start = *orders_[static_cast<std::size_t>(from)].begin();
  orders_[static_cast<std::size_t>(from)].erase(start);
  while (from > want) {
    --from;
    // Keep the low half, free the high half.
    orders_[static_cast<std::size_t>(from)].insert(start + (1 << from));
  }
  const int len = 1 << want;
  live_.emplace(start, len);
  free_ranks_ -= len;
  return Block{start, start + len - 1};
}

void RangeAllocator::Release(Block b) {
  const auto it = live_.find(b.first);
  if (it == live_.end() || it->second != b.Width()) {
    throw mpisim::UsageError(
        "RangeAllocator: Release of a block that is not live");
  }
  live_.erase(it);
  free_ranks_ += b.Width();
  if (policy_ == Policy::kBuddy) {
    ReleaseBuddy(b);
  } else {
    ReleaseFirstFit(b);
  }
}

void RangeAllocator::ReleaseFirstFit(Block b) {
  int first = b.first;
  int len = b.Width();
  // Coalesce with the free successor, then the free predecessor.
  auto next = free_.find(first + len);
  if (next != free_.end()) {
    len += next->second;
    free_.erase(next);
  }
  auto prev = free_.lower_bound(first);
  if (prev != free_.begin()) {
    --prev;
    if (prev->first + prev->second == first) {
      first = prev->first;
      len += prev->second;
      free_.erase(prev);
    }
  }
  free_.emplace(first, len);
}

void RangeAllocator::ReleaseBuddy(Block b) {
  int start = b.first;
  int order = CeilLog2(b.Width());
  while (order < max_order_) {
    const int buddy = start ^ (1 << order);
    auto& peers = orders_[static_cast<std::size_t>(order)];
    const auto it = peers.find(buddy);
    if (it == peers.end()) break;
    peers.erase(it);
    start = std::min(start, buddy);
    ++order;
  }
  orders_[static_cast<std::size_t>(order)].insert(start);
}

std::vector<Block> RangeAllocator::LiveBlocks() const {
  std::vector<Block> out;
  out.reserve(live_.size());
  for (const auto& [first, len] : live_) {
    out.push_back(Block{first, first + len - 1});
  }
  return out;
}

std::vector<Block> RangeAllocator::FreeRuns() const {
  // Collect raw free blocks, then merge adjacency (buddy keeps aligned
  // blocks separate that are contiguous in rank space).
  std::vector<Block> raw;
  if (policy_ == Policy::kBuddy) {
    for (int o = 0; o <= max_order_; ++o) {
      for (int start : orders_[static_cast<std::size_t>(o)]) {
        raw.push_back(Block{start, start + (1 << o) - 1});
      }
    }
    std::sort(raw.begin(), raw.end(),
              [](const Block& a, const Block& b) { return a.first < b.first; });
  } else {
    for (const auto& [first, len] : free_) {
      raw.push_back(Block{first, first + len - 1});
    }
  }
  std::vector<Block> merged;
  for (const Block& b : raw) {
    if (!merged.empty() && merged.back().last + 1 == b.first) {
      merged.back().last = b.last;
    } else {
      merged.push_back(b);
    }
  }
  return merged;
}

int RangeAllocator::LargestFreeRun() const {
  int best = 0;
  for (const Block& b : FreeRuns()) best = std::max(best, b.Width());
  return best;
}

}  // namespace jsort::sched
