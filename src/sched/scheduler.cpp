#include "sched/scheduler.hpp"

#include <algorithm>
#include <tuple>

#include "mpisim/error.hpp"

namespace jsort::sched {

const char* PolicyName(AdmissionPolicy p) {
  switch (p) {
    case AdmissionPolicy::kFifo: return "fifo";
    case AdmissionPolicy::kSjf: return "sjf";
    case AdmissionPolicy::kAdaptiveWidth: return "adaptive";
  }
  return "?";
}

Scheduler::Scheduler(int ranks, std::vector<JobSpec> jobs,
                     SchedulerConfig cfg)
    : ranks_(ranks),
      cfg_(cfg),
      alloc_(ranks, cfg.allocation, cfg.topology),
      jobs_(std::move(jobs)),
      total_(static_cast<int>(jobs_.size())) {
  for (int i = 0; i < total_; ++i) {
    const JobSpec& s = jobs_[static_cast<std::size_t>(i)];
    if (s.id != i) {
      throw mpisim::UsageError("Scheduler: job ids must be dense 0..n-1");
    }
    if (s.width < 1 || s.n_total < 0 || s.arrival_vtime < 0.0) {
      throw mpisim::UsageError("Scheduler: malformed job spec");
    }
    events_.push(Event{s.arrival_vtime, /*kind=*/1, s.id, Block{}});
  }
}

int Scheduler::EffectiveWidth(const JobSpec& s) const {
  int w = std::min(s.width, ranks_);
  if (cfg_.policy != AdmissionPolicy::kAdaptiveWidth) return std::max(1, w);
  const int qlen = static_cast<int>(queue_.size());
  for (std::int64_t t = cfg_.adaptive_threshold; t > 0 && qlen >= t && w > 1;
       t *= 2) {
    w >>= 1;
  }
  return std::max(1, w);
}

void Scheduler::TryAdmit(double now, std::vector<Admission>* wave) {
  bool progress = true;
  while (progress && !queue_.empty()) {
    progress = false;
    // Policy order over the current queue. Recomputed after every
    // admission: the queue length feeds the adaptive width.
    std::vector<std::size_t> order(queue_.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                const JobSpec& ja = jobs_[static_cast<std::size_t>(
                    queue_[a])];
                const JobSpec& jb = jobs_[static_cast<std::size_t>(
                    queue_[b])];
                const double ka = cfg_.policy == AdmissionPolicy::kSjf
                                      ? static_cast<double>(ja.n_total)
                                      : ja.arrival_vtime;
                const double kb = cfg_.policy == AdmissionPolicy::kSjf
                                      ? static_cast<double>(jb.n_total)
                                      : jb.arrival_vtime;
                return std::tuple(-ja.priority, ka, ja.id) <
                       std::tuple(-jb.priority, kb, jb.id);
              });
    for (std::size_t idx : order) {
      const JobSpec& s = jobs_[static_cast<std::size_t>(queue_[idx])];
      const int width = EffectiveWidth(s);
      const auto block = alloc_.Allocate(width);
      if (!block) continue;  // greedy backfill: try the next queued job
      Admission a;
      a.spec = s;
      a.first = block->first;
      a.last = block->first + width - 1;
      a.width = width;
      a.start_vtime = now;
      wave->push_back(a);
      running_jobs_.emplace(s.id, Running{*block, now});
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(idx));
      progress = true;
      break;  // queue changed; re-sort and rescan
    }
  }
}

std::vector<Admission> Scheduler::NextWave() {
  if (running_ != 0) {
    throw mpisim::UsageError(
        "Scheduler::NextWave: previous wave still outstanding");
  }
  std::vector<Admission> wave;
  while (!events_.empty()) {
    const double now = events_.top().vtime;
    // Conservative frontier: an event later than the wave's start could
    // depend on a completion we have not measured yet.
    if (!wave.empty() && now > wave.front().start_vtime) break;
    // Apply *every* event of this instant before admitting, so a burst
    // of simultaneous arrivals/releases is scheduled as one batch under
    // the policy order (SJF must see the whole burst).
    while (!events_.empty() && events_.top().vtime == now) {
      const Event e = events_.top();
      events_.pop();
      if (e.kind == 0) {
        alloc_.Release(e.block);
      } else {
        queue_.push_back(e.job);
      }
    }
    TryAdmit(now, &wave);
  }
  if (wave.empty() && !queue_.empty()) {
    // Unreachable with validated specs: with every range released, any
    // width <= ranks fits.
    throw mpisim::Error("Scheduler: queue stuck with no runnable job");
  }
  running_ = static_cast<int>(wave.size());
  return wave;
}

void Scheduler::Complete(int job_id, double completion_vtime) {
  const auto it = running_jobs_.find(job_id);
  if (it == running_jobs_.end()) {
    // Also catches a duplicate Complete for the same job: the entry is
    // consumed below on the first call.
    throw mpisim::UsageError("Scheduler::Complete: job is not running");
  }
  if (running_ <= 0) {
    throw mpisim::UsageError("Scheduler::Complete: no outstanding wave");
  }
  const double release = std::max(completion_vtime, it->second.start_vtime);
  events_.push(Event{release, /*kind=*/0, job_id, it->second.block});
  running_jobs_.erase(it);
  --running_;
  ++completed_;
}

}  // namespace jsort::sched
