// Deterministic contiguous rank-range allocator for the sort service.
//
// The service carves the world's [0, size) rank interval into per-job
// contiguous ranges -- contiguity is what makes every job's communicator
// creatable in O(1) by RBC (and by the Section-VI range fast path). Two
// strategies:
//
//  * kFirstFit  -- lowest free interval that fits, carved exactly to the
//                  requested width; released ranges coalesce with free
//                  neighbors, so an idle machine always re-forms the full
//                  interval.
//  * kBuddy     -- classic power-of-two buddy blocks (aligned, width
//                  rounded up to the next power of two). Internal
//                  fragmentation in exchange for O(log size) worst-case
//                  external fragmentation; requires a power-of-two size.
//
// Node-affine placement: constructed with a non-empty topo::Topology, the
// first-fit policy scores every feasible placement (each free run's start
// plus each node start inside it) by the number of node boundaries the
// block would straddle (CrossNodeCuts) and takes the minimum -- ties to
// the lowest start, so a flat or single-node topology reproduces plain
// first fit exactly. A node-aligned range keeps the job's communicator
// entirely on-node, so its collectives never pay the inter-node alpha of
// a two-level cost model. Buddy placement is unchanged: its power-of-two
// alignment already coincides with node boundaries whenever node sizes
// are powers of two.
//
// Invariants (property-tested): live blocks never overlap, live + free
// always partition [0, size), and releasing everything restores a single
// free run of the full width.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "topo/topology.hpp"

namespace jsort::sched {

/// A closed rank interval [first, last].
struct Block {
  int first = 0;
  int last = -1;

  int Width() const { return last - first + 1; }

  friend bool operator==(const Block&, const Block&) = default;
};

class RangeAllocator {
 public:
  enum class Policy { kFirstFit, kBuddy };

  explicit RangeAllocator(int size, Policy policy = Policy::kFirstFit,
                          topo::Topology topology = {});

  /// Reserves a block of at least `width` ranks (exactly `width` under
  /// first fit; the enclosing power-of-two buddy block under buddy).
  /// Returns nullopt when nothing fits; never splits a job across
  /// non-contiguous ranks.
  std::optional<Block> Allocate(int width);

  /// Returns a block obtained from Allocate. Throws UsageError if `b` is
  /// not exactly a live block.
  void Release(Block b);

  int size() const { return size_; }
  Policy policy() const { return policy_; }
  int FreeRanks() const { return free_ranks_; }
  bool AllFree() const { return free_ranks_ == size_; }
  /// Longest contiguous run of free ranks (merging adjacent free blocks).
  int LargestFreeRun() const;

  /// Live blocks in ascending rank order (diagnostics and tests).
  std::vector<Block> LiveBlocks() const;
  /// Maximal free runs in ascending rank order.
  std::vector<Block> FreeRuns() const;

  /// Number of node boundaries inside `b` under the installed topology
  /// (0 = entirely on one node, or no topology installed). The placement
  /// score the node-affine first fit minimizes.
  int CrossNodeCuts(Block b) const;
  bool NodeAffine() const { return topology_.NodeCount() > 1; }

 private:
  std::optional<Block> AllocateFirstFit(int width);
  std::optional<Block> AllocateNodeAffine(int width);
  std::optional<Block> AllocateBuddy(int width);
  void ReleaseFirstFit(Block b);
  void ReleaseBuddy(Block b);

  int size_;
  Policy policy_;
  topo::Topology topology_;
  int free_ranks_;
  std::map<int, int> live_;            // first -> width
  std::map<int, int> free_;            // first -> width (first fit)
  std::vector<std::set<int>> orders_;  // buddy: free starts per order
  int max_order_ = 0;
};

}  // namespace jsort::sched
