// jsort::sched -- elastic multi-job sort service over O(1) RBC range
// splits.
//
// The paper's core claim (Figures 5/8) is that RBC communicators are
// created locally in O(1) while native MPI_Comm_create_group pays a
// blocking O(group) agreement. A single sort amortizes that difference
// over one run; a *service* that admits a continuous stream of concurrent
// sort jobs and carves the machine into per-job rank ranges pays it on
// every admission -- turning the paper's split-cost microbenchmark axis
// into service-level throughput and tail latency.
//
// This header holds the job vocabulary: what a client submits (JobSpec),
// what the service reports back (JobResult), and the deterministic
// Poisson-in-vtime stream generator the benchmarks and tests share.
#pragma once

#include <cstdint>
#include <vector>

#include "sort/workload.hpp"

namespace jsort::sched {

/// Which sorter a job runs on its allocated rank range.
enum class Algorithm {
  kJQuick,      // Janus Quicksort (Section VII), padded front end
  kSampleSort,  // single-level sample sort
  kMultilevel,  // multi-level sample sort (Section IV)
};

const char* AlgorithmName(Algorithm a);

/// What a job asks of the service: a full sort of its input, or one of
/// the jsort::query answers over it. Queries are the small,
/// latency-sensitive end of the mix -- the workload the O(1) RBC splits
/// pay off most for, since admission cost is a fixed tax no query can
/// amortize the way a long sort can.
enum class JobKind {
  kSort,      // the classic service job: globally sort the input
  kSelect,    // k-th order statistic (JobSpec::k, 0-based)
  kTopK,      // the JobSpec::k smallest, delivered to the group root
  kQuantile,  // quantile JobSpec::q via the streaming summary
};

const char* JobKindName(JobKind k);

/// One sort job as submitted to the service. Arrival is a point in
/// *virtual* time (the substrate's alpha-beta model clock); everything
/// else parameterizes the sort itself. Deterministic: two streams with
/// equal specs produce byte-identical service schedules per backend.
struct JobSpec {
  int id = 0;                  // dense, unique; index into results
  JobKind kind = JobKind::kSort;
  InputKind input = InputKind::kUniform;
  std::int64_t n_total = 0;    // global element count of this job
  Algorithm algorithm = Algorithm::kJQuick;  // kSort only
  std::int64_t k = 0;          // kSelect: 0-based order statistic;
                               // kTopK: result size
  double q = 0.5;              // kQuantile: quantile in [0, 1]
  int width = 1;               // requested ranks (policies may shrink it)
  int priority = 0;            // higher admits first within a policy order
  double arrival_vtime = 0.0;  // submission time on the model clock
  std::uint64_t seed = 1;      // input generation + sorter sampling seed
};

/// Per-job outcome and timing, all on the virtual clock. Latency
/// decomposes as: arrival -> (queue_wait) -> start -> (split_vtime)
/// -> sorting -> completion; split_vtime is the communicator-creation
/// share the paper's Figure 8 isolates (identically zero on RBC).
struct JobResult {
  JobSpec spec;
  int first = -1;                // world-rank range the job ran on
  int last = -1;
  int width = 0;                 // effective width (== last - first + 1)
  double start_vtime = 0.0;      // admission instant
  double completion_vtime = 0.0; // max over members' clocks at the end
  double queue_wait = 0.0;       // start - arrival
  double split_vtime = 0.0;      // max member cost of Transport::Split
  double sort_vtime = 0.0;       // max member cost of the sort itself
  double latency = 0.0;          // completion - arrival (end to end)
  std::int64_t elements = 0;     // total result elements over members
                                 //   (sorts: n_total; queries: payload size)
  std::int64_t messages = 0;     // payload messages the job's kernel sent
  double answer = 0.0;           // queries: the scalar answer as reported
                                 //   by the group root (k-th value, top-k
                                 //   threshold, quantile estimate)
  bool ok = false;               // verification verdict (true if disabled)
};

/// Parameters of the deterministic job-stream generator: Poisson arrivals
/// in virtual time, log-uniform widths (powers of two) and sizes, and a
/// round-robin-free random mix of algorithms/input kinds. All draws come
/// from a hand-rolled mixer over mt19937_64 raw words, so streams are
/// identical across standard libraries and platforms.
struct JobStreamParams {
  int jobs = 64;
  double mean_interarrival = 200.0;  // vtime units (exponential gaps)
  int min_width = 1;                 // widths are powers of two in
                                     //   [min_width, min(max_width, ranks)];
  int max_width = 8;                 //   min_width must be <= ranks
  std::int64_t min_n = 256;          // n_total log-uniform in
  std::int64_t max_n = 4096;         //   [min_n, max_n], >= width
  int max_priority = 0;              // priorities uniform in [0, max]
  std::vector<Algorithm> algorithms = {
      Algorithm::kJQuick, Algorithm::kSampleSort, Algorithm::kMultilevel};
  std::vector<InputKind> inputs = {InputKind::kUniform, InputKind::kZipf,
                                   InputKind::kSortedAsc};
  /// Share of jobs that are queries instead of sorts (0 reproduces the
  /// pre-query streams word for word -- no extra rng draws happen).
  /// Query jobs draw k log-uniform in [1, n_total] (select answers the
  /// (k-1)-th 0-based statistic) and q uniform in [0, 1).
  double query_fraction = 0.0;
  std::vector<JobKind> query_kinds = {JobKind::kSelect, JobKind::kTopK,
                                      JobKind::kQuantile};
};

/// Generates `params.jobs` specs for a machine of `ranks` ranks.
/// Deterministic in (ranks, params, seed).
std::vector<JobSpec> MakeJobStream(int ranks, const JobStreamParams& params,
                                   std::uint64_t seed);

}  // namespace jsort::sched
