// Admission scheduler for the elastic sort service: a *pure, replicated*
// discrete-event state machine.
//
// Every rank of the service runs an identical Scheduler instance over the
// identical job stream and feeds it the identical measured completion
// times, so all ranks agree on every admission without any scheduling
// traffic -- the service itself never pays coordination messages, only
// the jobs do (which is the quantity under test: the per-job
// communicator-creation cost).
//
// Event model. The scheduler advances through arrival and release events
// in virtual-time order. Processing an event may admit queued jobs (at
// the event's vtime) onto ranges from the RangeAllocator. NextWave()
// stops at the *conservative frontier*: once a batch of jobs has been
// admitted, no event later than the batch's start may be processed until
// those jobs' completion times are known (Complete()), because an
// earlier completion could free a range that a later event's admission
// decision must see. Together with positive job durations this makes the
// replicated loop an exact sequential discrete-event simulation of the
// service; jobs admitted in one wave are vtime-concurrent with jobs
// still running from earlier waves.
//
// Policies order the admission queue (ties broken by priority, then id):
//  * kFifo          -- arrival order, greedy backfill (a job that does
//                      not fit is skipped, later arrivals may still fit);
//  * kSjf           -- shortest job first by total element count;
//  * kAdaptiveWidth -- arrival order, but the allocated width halves for
//                      every doubling of the queue beyond a threshold:
//                      under load the service trades per-job speed for
//                      more concurrent jobs.
#pragma once

#include <cstdint>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sched/allocator.hpp"
#include "sched/job.hpp"

namespace jsort::sched {

enum class AdmissionPolicy { kFifo, kSjf, kAdaptiveWidth };

const char* PolicyName(AdmissionPolicy p);

struct SchedulerConfig {
  AdmissionPolicy policy = AdmissionPolicy::kFifo;
  RangeAllocator::Policy allocation = RangeAllocator::Policy::kFirstFit;
  /// Queue length at which kAdaptiveWidth starts halving widths; each
  /// further doubling of the queue halves again.
  int adaptive_threshold = 4;
  /// Non-empty: node-affine placement -- the first-fit allocator prefers
  /// ranges straddling the fewest node boundaries (allocator.hpp). Must
  /// cover exactly `ranks` when set.
  topo::Topology topology{};
};

/// One admitted job: run it on world ranks [first, last] starting at
/// start_vtime. width == last - first + 1 (may be smaller than the
/// requested width under kAdaptiveWidth, and smaller than the reserved
/// buddy block under buddy allocation).
struct Admission {
  JobSpec spec;
  int first = 0;
  int last = 0;
  int width = 0;
  double start_vtime = 0.0;
};

class Scheduler {
 public:
  Scheduler(int ranks, std::vector<JobSpec> jobs, SchedulerConfig cfg = {});

  /// Advances the event state to the conservative frontier and returns
  /// the next batch of admissions (all sharing one start vtime). An empty
  /// batch means every job has completed. Throws UsageError while jobs
  /// from the previous wave are still outstanding.
  std::vector<Admission> NextWave();

  /// Reports the measured completion vtime of an admitted job; its range
  /// becomes a release event at max(start, completion_vtime).
  void Complete(int job_id, double completion_vtime);

  bool Done() const { return completed_ == total_; }
  int CompletedJobs() const { return completed_; }
  int RunningJobs() const { return running_; }
  int QueueLength() const { return static_cast<int>(queue_.size()); }
  int ranks() const { return ranks_; }
  const SchedulerConfig& config() const { return cfg_; }

 private:
  struct Event {
    double vtime;
    int kind;  // 0 = release, 1 = arrival: releases first at equal vtime
    int job;
    Block block;  // the range to release (kind == 0 only)

    friend bool operator>(const Event& a, const Event& b) {
      if (a.vtime != b.vtime) return a.vtime > b.vtime;
      if (a.kind != b.kind) return a.kind > b.kind;
      return a.job > b.job;
    }
  };

  struct Running {
    Block block;          // reserved allocator block (>= job width)
    double start_vtime;
  };

  int EffectiveWidth(const JobSpec& s) const;
  void TryAdmit(double now, std::vector<Admission>* wave);

  int ranks_;
  SchedulerConfig cfg_;
  RangeAllocator alloc_;
  std::vector<JobSpec> jobs_;          // by id
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
      events_;
  std::vector<int> queue_;             // pending job ids
  std::unordered_map<int, Running> running_jobs_;
  int total_ = 0;
  int running_ = 0;
  int completed_ = 0;
};

}  // namespace jsort::sched
