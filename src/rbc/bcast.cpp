// rbc::Bcast / rbc::Ibcast -- binomial-tree broadcast over RBC
// point-to-point operations.
#include "rbc/collectives.hpp"
#include "rbc/sanitize.hpp"
#include "rbc/sm.hpp"

namespace rbc {
namespace detail {
namespace {

class BcastSM final : public RequestImpl {
 public:
  BcastSM(void* buf, int count, Datatype dt, int root, Comm comm, int tag)
      : buf_(buf), count_(count), dt_(dt), comm_(std::move(comm)), tag_(tag),
        tree_(TreeFor(comm_, root)) {
    if (tree_.parent < 0) {
      SendToChildren();
      done_ = true;
    } else {
      // State 1: the receive from the parent is the data dependency.
      pending_ = IrecvInternal(buf_, count_, dt_, tree_.parent, tag_, comm_);
    }
  }

  bool Test(Status*) override {
    if (done_) return true;
    if (!pending_.Poll()) return false;
    // State 2: forward to the subtree, largest child first.
    SendToChildren();
    done_ = true;
    return true;
  }

 private:
  void SendToChildren() {
    for (int i = static_cast<int>(tree_.children.size()) - 1; i >= 0; --i) {
      SendInternal(buf_, count_, dt_, tree_.children[i], tag_, comm_);
    }
  }

  void* buf_;
  int count_;
  Datatype dt_;
  Comm comm_;
  int tag_;
  Tree tree_;
  Request pending_;
  bool done_ = false;
};

}  // namespace

std::shared_ptr<RequestImpl> MakeBcastSM(void* buf, int count, Datatype dt,
                                         int root, const Comm& comm,
                                         int tag) {
  return std::make_shared<BcastSM>(buf, count, dt, root, comm, tag);
}

}  // namespace detail

int Bcast(void* buffer, int count, Datatype dt, int root, const Comm& comm) {
  detail::ValidateCollective(comm, root, "Bcast");
  auto rec = sanitize::MakeOp(sanitize::CollKind::kBcast, root, kTagBcast,
                              count, mpisim::SizeOf(dt));
  const std::size_t bytes = detail::ByteCount(count, dt);
  if (comm.Rank() == root && sanitize::Enabled()) {
    rec.sig = sanitize::PayloadSignature(buffer, bytes);
  }
  sanitize::CollectiveScope san(comm, std::move(rec));
  detail::RunToCompletion(
      detail::MakeBcastSM(buffer, count, dt, root, comm, kTagBcast),
      "Bcast");
  if (comm.Rank() != root) san.ArmExitSignatureCheck(buffer, bytes);
  return 0;
}

int Ibcast(void* buffer, int count, Datatype dt, int root, const Comm& comm,
           Request* request, int tag) {
  detail::ValidateCollective(comm, root, "Ibcast");
  if (request == nullptr) {
    throw mpisim::UsageError("rbc::Ibcast: null request");
  }
  auto rec = sanitize::MakeOp(sanitize::CollKind::kBcast, root, tag, count,
                              mpisim::SizeOf(dt));
  rec.nonblocking = true;
  sanitize::CollectiveScope san(comm, std::move(rec));
  *request =
      Request(detail::MakeBcastSM(buffer, count, dt, root, comm, tag));
  return 0;
}

}  // namespace rbc
