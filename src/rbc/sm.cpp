#include "rbc/sm.hpp"

namespace rbc::detail {

void RunToCompletion(std::shared_ptr<RequestImpl> sm, const char* what) {
  Request req(std::move(sm));
  SpinUntil([&] { return req.Poll(nullptr); }, what);
}

}  // namespace rbc::detail
