// RBC -- RangeBasedComm (Axtmann, Wiebigke, Sanders; IPDPS 2018).
//
// An RBC communicator is a *view* onto a range of ranks of an underlying
// MPI communicator: it stores the MPI communicator handle, the MPI rank
// `f` of its first process, the MPI rank of its last process, and an
// optional stride (footnote 2 of the paper). Creating or splitting an RBC
// communicator is therefore a purely local, constant-time operation with
// zero communication -- the headline property of the library.
//
// Because RBC cannot allocate MPI context ids, all of its traffic flows
// over the underlying MPI communicator: when two RBC communicators over
// the same MPI communicator overlap in *more than one* process,
// simultaneously executed operations must use unique tags (Section V-A).
// If they overlap in at most one process, RBC's membership-filtered probes
// guarantee non-interference without any tag discipline.
#pragma once

#include "mpisim/mpisim.hpp"

namespace rbc {

/// RBC reuses the substrate's status/datatype vocabulary.
using Status = mpisim::Status;
using Datatype = mpisim::Datatype;
using ReduceOp = mpisim::ReduceOp;
inline constexpr int kAnySource = mpisim::kAnySource;
inline constexpr int kAnyTag = mpisim::kAnyTag;

/// Range-based communicator (Table I: class rbc::Comm). Value semantics;
/// a default-constructed Comm is null.
class Comm {
 public:
  Comm() = default;

  bool IsNull() const { return mpi_.IsNull(); }

  /// Rank of the calling process within this RBC communicator, or -1 when
  /// the caller holds a handle to a range it is not part of.
  int Rank() const { return rank_; }

  /// Number of processes in the range.
  int Size() const { return size_; }

  /// The underlying MPI communicator.
  const mpisim::Comm& Mpi() const { return mpi_; }

  /// MPI rank of the first process of the range.
  int First() const { return first_; }
  /// MPI rank of the last process of the range.
  int Last() const { return first_ + (size_ - 1) * stride_; }
  /// Stride between member MPI ranks (1 for continuous ranges).
  int Stride() const { return stride_; }

  /// Translates an RBC rank to the underlying MPI rank.
  int ToMpi(int rbc_rank) const;

  /// Translates an MPI rank to the RBC rank, or -1 if not a member.
  int FromMpi(int mpi_rank) const;

  /// True if the MPI rank belongs to this range (the membership test that
  /// filters wildcard probes, Section V-C).
  bool IsMember(int mpi_rank) const { return FromMpi(mpi_rank) >= 0; }

  /// Internal factory used by the creation routines.
  static Comm Raw(mpisim::Comm mpi, int first, int size, int stride);

 private:
  mpisim::Comm mpi_;
  int first_ = 0;
  int size_ = 0;
  int stride_ = 1;
  int rank_ = -1;
};

/// Creates an RBC communicator containing all processes of an MPI
/// communicator. Local operation, O(1), no communication.
void Create_RBC_Comm(const mpisim::Comm& mpi, Comm* out);

/// Creates an RBC communicator containing the processes with RBC ranks
/// first..last of an existing RBC communicator (paper Fig. 1 usage:
/// Split_RBC_Comm(parent, f, l, &out)). Local operation, O(1), no
/// communication; any process may construct any range.
void Split_RBC_Comm(const Comm& parent, int first, int last, Comm* out);

/// Strided variant (footnote 2): contains parent ranks first,
/// first+stride, ..., up to at most last.
void Split_RBC_Comm_Strided(const Comm& parent, int first, int last,
                            int stride, Comm* out);

/// MPI-style accessors (Table I).
int Comm_rank(const Comm& comm, int* rank);
int Comm_size(const Comm& comm, int* size);

}  // namespace rbc
