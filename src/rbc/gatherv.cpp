// rbc::Gatherv / rbc::Igatherv -- binomial-tree gather with per-rank
// counts. Interior nodes do not know their descendants' counts, so subtree
// messages are self-describing: [int32 n][int32 counts[n]][payload] with
// counts in relative-rank order. Sizes are discovered with
// membership-filtered probes.
#include "rbc/collectives.hpp"
#include "rbc/sanitize.hpp"
#include "rbc/sm.hpp"

namespace rbc {
namespace detail {
namespace {

class GathervSM final : public RequestImpl {
 public:
  GathervSM(const void* send, int count, Datatype dt, void* recv,
            std::span<const int> recvcounts, std::span<const int> displs,
            int root, Comm comm, int tag)
      : recv_(recv), recvcounts_(recvcounts.begin(), recvcounts.end()),
        displs_(displs.begin(), displs.end()), dt_(dt), root_(root),
        comm_(std::move(comm)), tag_(tag), tree_(TreeFor(comm_, root)) {
    counts_.push_back(count);
    payload_.resize(ByteCount(count, dt));
    if (!payload_.empty()) std::memcpy(payload_.data(), send, payload_.size());
    child_msgs_.resize(tree_.children.size());
    child_reqs_.resize(tree_.children.size());
    child_state_.assign(tree_.children.size(), kProbing);
  }

  bool Test(Status*) override {
    if (done_) return true;
    bool all = true;
    for (std::size_t i = 0; i < tree_.children.size(); ++i) {
      if (child_state_[i] == kDone) continue;
      if (child_state_[i] == kProbing) {
        Status st;
        if (!IprobeInternal(tree_.children[i], tag_, comm_, &st)) {
          all = false;
          continue;
        }
        child_msgs_[i].resize(st.bytes);
        child_reqs_[i] =
            IrecvInternal(child_msgs_[i].data(), static_cast<int>(st.bytes),
                          Datatype::kByte, tree_.children[i], tag_, comm_);
        child_state_[i] = kReceiving;
      }
      if (child_state_[i] == kReceiving) {
        if (child_reqs_[i].Poll()) {
          child_state_[i] = kDone;
        } else {
          all = false;
        }
      }
    }
    if (!all) return false;
    Finish();
    done_ = true;
    return true;
  }

 private:
  enum ChildState { kProbing, kReceiving, kDone };

  void AppendChild(const std::vector<std::byte>& msg) {
    std::int32_t n = 0;
    std::memcpy(&n, msg.data(), sizeof n);
    const std::size_t old = counts_.size();
    counts_.resize(old + static_cast<std::size_t>(n));
    std::memcpy(counts_.data() + old, msg.data() + sizeof n,
                sizeof(std::int32_t) * static_cast<std::size_t>(n));
    const std::size_t hdr =
        sizeof(std::int32_t) * (1 + static_cast<std::size_t>(n));
    const std::size_t oldp = payload_.size();
    payload_.resize(oldp + (msg.size() - hdr));
    std::memcpy(payload_.data() + oldp, msg.data() + hdr, msg.size() - hdr);
  }

  void Finish() {
    // Children complete in any order but are appended in increasing-mask
    // order, which equals relative-rank order.
    for (const auto& msg : child_msgs_) AppendChild(msg);
    if (tree_.parent >= 0) {
      std::vector<std::byte> msg(sizeof(std::int32_t) * (1 + counts_.size()) +
                                 payload_.size());
      const std::int32_t n = static_cast<std::int32_t>(counts_.size());
      std::memcpy(msg.data(), &n, sizeof n);
      std::memcpy(msg.data() + sizeof n, counts_.data(),
                  sizeof(std::int32_t) * counts_.size());
      if (!payload_.empty()) {
        std::memcpy(msg.data() + sizeof(std::int32_t) * (1 + counts_.size()),
                    payload_.data(), payload_.size());
      }
      SendInternal(msg.data(), static_cast<int>(msg.size()), Datatype::kByte,
                   tree_.parent, tag_, comm_);
      return;
    }
    const int p = comm_.Size();
    if (static_cast<int>(counts_.size()) != p) {
      throw mpisim::UsageError(
          "rbc::Gatherv: internal: incomplete subtree counts");
    }
    const std::size_t esize = mpisim::SizeOf(dt_);
    auto* out = static_cast<std::byte*>(recv_);
    std::size_t off = 0;
    for (int rel = 0; rel < p; ++rel) {
      const int abs = (rel + root_) % p;
      if (counts_[rel] != recvcounts_[abs]) {
        throw mpisim::UsageError(
            "rbc::Gatherv: recvcounts disagree with sent counts");
      }
      const std::size_t nbytes =
          static_cast<std::size_t>(counts_[rel]) * esize;
      if (nbytes != 0) {
        std::memcpy(out + static_cast<std::size_t>(displs_[abs]) * esize,
                    payload_.data() + off, nbytes);
      }
      off += nbytes;
    }
  }

  void* recv_;
  std::vector<int> recvcounts_;
  std::vector<int> displs_;
  Datatype dt_;
  int root_;
  Comm comm_;
  int tag_;
  Tree tree_;
  std::vector<std::int32_t> counts_;
  std::vector<std::byte> payload_;
  std::vector<std::vector<std::byte>> child_msgs_;
  std::vector<Request> child_reqs_;
  std::vector<ChildState> child_state_;
  bool done_ = false;
};

}  // namespace
}  // namespace detail

int Gatherv(const void* sendbuf, int count, Datatype dt, void* recvbuf,
            std::span<const int> recvcounts, std::span<const int> displs,
            int root, const Comm& comm) {
  detail::ValidateCollective(comm, root, "Gatherv");
  auto grec = sanitize::MakeOp(sanitize::CollKind::kGatherv, root,
                               kTagGatherv, count, mpisim::SizeOf(dt));
  if (comm.Rank() == root && sanitize::Enabled()) {
    grec.counts_from = sanitize::ToCounts(recvcounts);
  }
  sanitize::CollectiveScope san(comm, std::move(grec));
  detail::RunToCompletion(
      std::make_shared<detail::GathervSM>(sendbuf, count, dt, recvbuf,
                                          recvcounts, displs, root, comm,
                                          kTagGatherv),
      "Gatherv");
  return 0;
}

int Igatherv(const void* sendbuf, int count, Datatype dt, void* recvbuf,
             std::span<const int> recvcounts, std::span<const int> displs,
             int root, const Comm& comm, Request* request, int tag) {
  detail::ValidateCollective(comm, root, "Igatherv");
  if (request == nullptr) {
    throw mpisim::UsageError("rbc::Igatherv: null request");
  }
  auto grec = sanitize::MakeOp(sanitize::CollKind::kGatherv, root, tag, count,
                               mpisim::SizeOf(dt));
  grec.nonblocking = true;
  if (comm.Rank() == root && sanitize::Enabled()) {
    grec.counts_from = sanitize::ToCounts(recvcounts);
  }
  sanitize::CollectiveScope san(comm, std::move(grec));
  *request = Request(std::make_shared<detail::GathervSM>(
      sendbuf, count, dt, recvbuf, recvcounts, displs, root, comm, tag));
  return 0;
}

}  // namespace rbc
