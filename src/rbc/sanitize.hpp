// Sanitizer bridge for the RBC collective layer.
//
// RBC communicators are range views (first, size, stride) over an mpisim
// communicator: they own no context id, so the substrate's per-context
// ledger cannot key them directly. This header derives a ledger key that
// extends the underlying MPI communicator's identity (context base +
// group hash) with a hash of the range triple, so two different ranges
// over the same MPI communicator keep separate collective sequences --
// exactly the granularity at which RBC's tag discipline requires callers
// to agree.
//
// A hand-rolled RBC schedule (binomial bcast, 1-factor alltoall, NBX
// sparse exchange, ...) is many point-to-point messages; the sanitizer
// deliberately checks the *intent* -- one logical collective record at
// the public entry -- not the individual sends. Internal fences such as
// the sparse exchange's barriers go through detail::MakeBarrierSM and are
// never recorded. Composition is handled by the substrate's per-rank
// depth guard: an RBC collective that calls another public collective
// (Allgather = Gather + Bcast) records only the outermost intent, and an
// mpisim collective invoked under an RBC scope is likewise suppressed.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "mpisim/runtime.hpp"
#include "mpisim/sanitizer.hpp"
#include "rbc/comm.hpp"

namespace rbc::sanitize {

// Re-export the substrate vocabulary so rbc call sites write
// sanitize::MakeOp(...) without reaching around this namespace.
using mpisim::sanitize::CollKind;
using mpisim::sanitize::Enabled;
using mpisim::sanitize::MakeOp;
using mpisim::sanitize::OpRecord;
using mpisim::sanitize::PayloadSignature;

/// Widens an int count span for an OpRecord count vector.
inline std::vector<std::int64_t> ToCounts(std::span<const int> v) {
  return std::vector<std::int64_t>(v.begin(), v.end());
}

/// Ledger key of an RBC range: the underlying MPI communicator's
/// (context base, group hash) plus an FNV-1a mix of the range triple.
/// `range` is never 0, so RBC ledgers can't collide with the underlying
/// communicator's own ledger (which uses range == 0).
inline mpisim::sanitize::GroupKey KeyOf(const Comm& comm) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  mix(static_cast<std::uint64_t>(comm.First()));
  mix(static_cast<std::uint64_t>(comm.Size()));
  mix(static_cast<std::uint64_t>(comm.Stride()));
  if (h == 0) h = 1;
  return mpisim::sanitize::GroupKey{comm.Mpi().Base(),
                                    comm.Mpi().GroupHash(), h};
}

inline std::string DescOf(const Comm& comm) {
  return "rbc comm (mpi ctx base " + std::to_string(comm.Mpi().Base()) +
         ", range first=" + std::to_string(comm.First()) +
         " size=" + std::to_string(comm.Size()) +
         " stride=" + std::to_string(comm.Stride()) + ")";
}

/// RAII scope recording one logical RBC collective. Mirrors
/// mpisim::sanitize::Scope (including the throwing destructor used by the
/// exit-signature check); disabled builds construct an empty optional and
/// cost one branch.
class CollectiveScope {
 public:
  CollectiveScope(const Comm& comm, mpisim::sanitize::OpRecord rec) {
    if (!mpisim::sanitize::Enabled()) return;
    scope_.emplace(KeyOf(comm), DescOf(comm), comm.Rank(),
                   mpisim::Ctx().world_rank, comm.Size(), std::move(rec));
  }

  /// See mpisim::sanitize::Scope::ArmExitSignatureCheck.
  void ArmExitSignatureCheck(const void* buf, std::size_t bytes) {
    if (scope_) scope_->ArmExitSignatureCheck(buf, bytes);
  }

 private:
  // std::optional propagates Scope's potentially-throwing destructor.
  std::optional<mpisim::sanitize::Scope> scope_;
};

}  // namespace rbc::sanitize
