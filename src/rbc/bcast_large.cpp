// Large-input broadcast (the Section V-D extension hook): binomial-tree
// *scatter* of ~p equal segments followed by a *ring allgather*. Total
// traffic per rank is ~2*beta*l instead of the binomial broadcast's
// beta*l per tree edge (log p depth), at O(alpha*p) latency -- the classic
// van-de-Geijn scheme, profitable for large payloads.
#include "rbc/collectives.hpp"
#include "rbc/sanitize.hpp"
#include "rbc/sm.hpp"

namespace rbc {
namespace detail {
namespace {

/// Segment layout: count elements divided into p segments of
/// ceil(count/p) elements (the last one possibly shorter).
struct Segments {
  int count = 0;
  int p = 1;
  std::size_t esize = 0;

  std::int64_t SegBegin(int s) const {
    const std::int64_t step = (count + p - 1) / p;
    return std::min<std::int64_t>(static_cast<std::int64_t>(s) * step, count);
  }
  std::int64_t SegLen(int s) const { return SegBegin(s + 1) - SegBegin(s); }
  /// Elements covered by segments [a, b).
  std::int64_t RangeLen(int a, int b) const {
    return SegBegin(b) - SegBegin(a);
  }
};

class BcastLargeSM final : public RequestImpl {
 public:
  BcastLargeSM(void* buf, int count, Datatype dt, int root, Comm comm,
               int tag)
      : buf_(static_cast<std::byte*>(buf)), dt_(dt), root_(root),
        comm_(std::move(comm)), tag_(tag), tree_(TreeFor(comm_, root)),
        seg_{count, comm_.Size(), mpisim::SizeOf(dt)} {
    const int p = comm_.Size();
    relrank_ = (comm_.Rank() - root + p) % p;
    extent_ = 1;
    for (int e : tree_.child_extents) extent_ += e;
    if (tree_.parent < 0) {
      ForwardScatter();
      phase_ = kRing;
      StartRingStep();
    } else {
      // Receive my subtree's segments [relrank_, relrank_+extent_) into
      // place (segments are identified by *relative* rank).
      pending_ = IrecvInternal(
          buf_ + ByteOf(seg_.SegBegin(relrank_)),
          static_cast<int>(seg_.RangeLen(relrank_, relrank_ + extent_)), dt_,
          tree_.parent, tag_, comm_);
      phase_ = kScatter;
    }
  }

  bool Test(Status*) override {
    for (;;) {
      switch (phase_) {
        case kScatter:
          if (!pending_.Poll()) return false;
          ForwardScatter();
          phase_ = kRing;
          StartRingStep();
          continue;
        case kRing:
          if (!pending_.IsNull() && !pending_.Poll()) return false;
          ++step_;
          StartRingStep();
          if (phase_ == kDone) return true;
          continue;
        case kDone:
          return true;
      }
    }
  }

 private:
  std::size_t ByteOf(std::int64_t elem) const {
    return static_cast<std::size_t>(elem) * seg_.esize;
  }

  void ForwardScatter() {
    for (int i = static_cast<int>(tree_.children.size()) - 1; i >= 0; --i) {
      const int child_rel = relrank_ + (1 << i);
      const int child_extent = tree_.child_extents[static_cast<std::size_t>(i)];
      const std::int64_t len = seg_.RangeLen(child_rel, child_rel + child_extent);
      SendInternal(buf_ + ByteOf(seg_.SegBegin(child_rel)),
                   static_cast<int>(len), dt_, tree_.children[static_cast<std::size_t>(i)],
                   tag_, comm_);
    }
  }

  /// Ring allgather over *relative* ranks: in step s, relative rank r
  /// sends segment (r - s) mod p to r+1 and receives segment (r - s - 1)
  /// mod p from r-1. After p-1 steps every rank holds all segments.
  void StartRingStep() {
    const int p = comm_.Size();
    if (step_ >= p - 1) {
      phase_ = kDone;
      return;
    }
    const int right_rel = (relrank_ + 1) % p;
    const int left_rel = (relrank_ - 1 + p) % p;
    const int send_seg = (relrank_ - step_ + 2 * p) % p;
    const int recv_seg = (relrank_ - step_ - 1 + 2 * p) % p;
    const int right = (right_rel + root_) % p;
    const int left = (left_rel + root_) % p;
    const std::int64_t send_len = seg_.SegLen(send_seg);
    if (send_len > 0) {
      SendInternal(buf_ + ByteOf(seg_.SegBegin(send_seg)),
                   static_cast<int>(send_len), dt_, right, tag_ + 1, comm_);
    }
    const std::int64_t recv_len = seg_.SegLen(recv_seg);
    if (recv_len > 0) {
      pending_ = IrecvInternal(buf_ + ByteOf(seg_.SegBegin(recv_seg)),
                               static_cast<int>(recv_len), dt_, left,
                               tag_ + 1, comm_);
    } else {
      pending_ = Request();
    }
  }

  enum Phase { kScatter, kRing, kDone };

  std::byte* buf_;
  Datatype dt_;
  int root_;
  Comm comm_;
  int tag_;
  Tree tree_;
  Segments seg_;
  int relrank_ = 0;
  int extent_ = 1;
  Phase phase_ = kScatter;
  int step_ = 0;
  Request pending_;
};

}  // namespace
}  // namespace detail

int BcastLarge(void* buffer, int count, Datatype dt, int root,
               const Comm& comm) {
  detail::ValidateCollective(comm, root, "BcastLarge");
  auto rec = sanitize::MakeOp(sanitize::CollKind::kBcastLarge, root,
                              kTagBcastLarge, count, mpisim::SizeOf(dt));
  const std::size_t bytes = detail::ByteCount(count, dt);
  if (comm.Rank() == root && sanitize::Enabled()) {
    rec.sig = sanitize::PayloadSignature(buffer, bytes);
  }
  sanitize::CollectiveScope san(comm, std::move(rec));
  if (comm.Size() == 1) return 0;
  detail::RunToCompletion(
      std::make_shared<detail::BcastLargeSM>(buffer, count, dt, root, comm,
                                             kTagBcastLarge),
      "BcastLarge");
  if (comm.Rank() != root) san.ArmExitSignatureCheck(buffer, bytes);
  return 0;
}

}  // namespace rbc
