// rbc::Gather / rbc::Igather -- binomial-tree gather of uniform blocks.
#include "rbc/collectives.hpp"
#include "rbc/sanitize.hpp"
#include "rbc/sm.hpp"

namespace rbc {
namespace detail {
namespace {

class GatherSM final : public RequestImpl {
 public:
  GatherSM(const void* send, int count, Datatype dt, void* recv, int root,
           Comm comm, int tag)
      : recv_(recv), count_(count), dt_(dt), root_(root),
        comm_(std::move(comm)), tag_(tag), tree_(TreeFor(comm_, root)) {
    extent_ = 1;
    for (int e : tree_.child_extents) extent_ += e;
    const std::size_t block = ByteCount(count, dt);
    buf_.resize(static_cast<std::size_t>(extent_) * block);
    if (block != 0) std::memcpy(buf_.data(), send, block);
    child_reqs_.resize(tree_.children.size());
    // The i-th child (increasing mask order) roots the subtree at relative
    // offset 1 << i inside this node's slice.
    for (std::size_t i = 0; i < tree_.children.size(); ++i) {
      const std::size_t off = (std::size_t{1} << i) * block;
      child_reqs_[i] =
          IrecvInternal(buf_.data() + off, tree_.child_extents[i] * count_,
                        dt_, tree_.children[i], tag_, comm_);
    }
  }

  bool Test(Status*) override {
    if (done_) return true;
    int flag = 0;
    Testall(std::span<Request>(child_reqs_), &flag);
    if (flag == 0) return false;
    if (tree_.parent >= 0) {
      SendInternal(buf_.data(), extent_ * count_, dt_, tree_.parent, tag_,
                   comm_);
    } else {
      // Rotate relative-rank-ordered blocks into absolute RBC-rank order.
      const int p = comm_.Size();
      const std::size_t block = ByteCount(count_, dt_);
      auto* out = static_cast<std::byte*>(recv_);
      for (int rel = 0; rel < p; ++rel) {
        const int abs = (rel + root_) % p;
        if (block != 0) {
          std::memcpy(out + static_cast<std::size_t>(abs) * block,
                      buf_.data() + static_cast<std::size_t>(rel) * block,
                      block);
        }
      }
    }
    done_ = true;
    return true;
  }

 private:
  void* recv_;
  int count_;
  Datatype dt_;
  int root_;
  Comm comm_;
  int tag_;
  Tree tree_;
  int extent_ = 1;
  std::vector<std::byte> buf_;
  std::vector<Request> child_reqs_;
  bool done_ = false;
};

}  // namespace
}  // namespace detail

int Gather(const void* sendbuf, int count, Datatype dt, void* recvbuf,
           int root, const Comm& comm) {
  detail::ValidateCollective(comm, root, "Gather");
  sanitize::CollectiveScope san(
      comm, sanitize::MakeOp(sanitize::CollKind::kGather, root, kTagGather,
                             count, mpisim::SizeOf(dt)));
  detail::RunToCompletion(
      std::make_shared<detail::GatherSM>(sendbuf, count, dt, recvbuf, root,
                                         comm, kTagGather),
      "Gather");
  return 0;
}

int Igather(const void* sendbuf, int count, Datatype dt, void* recvbuf,
            int root, const Comm& comm, Request* request, int tag) {
  detail::ValidateCollective(comm, root, "Igather");
  if (request == nullptr) {
    throw mpisim::UsageError("rbc::Igather: null request");
  }
  auto rec = sanitize::MakeOp(sanitize::CollKind::kGather, root, tag, count,
                              mpisim::SizeOf(dt));
  rec.nonblocking = true;
  sanitize::CollectiveScope san(comm, std::move(rec));
  *request = Request(std::make_shared<detail::GatherSM>(
      sendbuf, count, dt, recvbuf, root, comm, tag));
  return 0;
}

}  // namespace rbc
