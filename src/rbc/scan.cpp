// rbc::Scan / rbc::Iscan -- inclusive prefix reduction with
// distance-doubling (Hillis-Steele) rounds over RBC point-to-point
// operations. O(alpha log p + beta l log p).
#include "rbc/collectives.hpp"
#include "rbc/sanitize.hpp"
#include "rbc/sm.hpp"

namespace rbc {
namespace detail {
namespace {

class ScanSM final : public RequestImpl {
 public:
  ScanSM(const void* send, void* recv, int count, Datatype dt, ReduceOp op,
         Comm comm, int tag)
      : recv_(recv), count_(count), dt_(dt), op_(op), comm_(std::move(comm)),
        tag_(tag), partial_(ByteCount(count, dt)),
        incoming_(partial_.size()) {
    if (!partial_.empty()) std::memcpy(partial_.data(), send, partial_.size());
    AdvanceRounds();
  }

  bool Test(Status*) override {
    if (done_) return true;
    if (!pending_.Poll()) return false;
    // `incoming_` is the fold over ranks < rank: the left operand.
    mpisim::ApplyReduce(op_, dt_, partial_.data(), incoming_.data(), count_);
    partial_.swap(incoming_);
    d_ <<= 1;
    AdvanceRounds();
    return done_;
  }

 private:
  void AdvanceRounds() {
    const int p = comm_.Size();
    const int rank = comm_.Rank();
    while (d_ < p) {
      // Send the pre-round partial before merging this round's input.
      if (rank + d_ < p) {
        SendInternal(partial_.data(), count_, dt_, rank + d_, tag_, comm_);
      }
      if (rank - d_ >= 0) {
        pending_ =
            IrecvInternal(incoming_.data(), count_, dt_, rank - d_, tag_,
                          comm_);
        return;  // this round's data dependency
      }
      d_ <<= 1;
    }
    if (!partial_.empty()) {
      std::memcpy(recv_, partial_.data(), partial_.size());
    }
    done_ = true;
  }

  void* recv_;
  int count_;
  Datatype dt_;
  ReduceOp op_;
  Comm comm_;
  int tag_;
  std::vector<std::byte> partial_;
  std::vector<std::byte> incoming_;
  Request pending_;
  int d_ = 1;
  bool done_ = false;
};

}  // namespace
}  // namespace detail

int Scan(const void* sendbuf, void* recvbuf, int count, Datatype dt,
         ReduceOp op, const Comm& comm) {
  detail::ValidateCollective(comm, 0, "Scan");
  sanitize::CollectiveScope san(
      comm, sanitize::MakeOp(sanitize::CollKind::kScan, /*root=*/-1, kTagScan,
                             count, mpisim::SizeOf(dt)));
  detail::RunToCompletion(std::make_shared<detail::ScanSM>(
                              sendbuf, recvbuf, count, dt, op, comm,
                              kTagScan),
                          "Scan");
  return 0;
}

int Iscan(const void* sendbuf, void* recvbuf, int count, Datatype dt,
          ReduceOp op, const Comm& comm, Request* request, int tag) {
  detail::ValidateCollective(comm, 0, "Iscan");
  if (request == nullptr) throw mpisim::UsageError("rbc::Iscan: null request");
  auto rec = sanitize::MakeOp(sanitize::CollKind::kScan, /*root=*/-1, tag,
                              count, mpisim::SizeOf(dt));
  rec.nonblocking = true;
  sanitize::CollectiveScope san(comm, std::move(rec));
  *request = Request(std::make_shared<detail::ScanSM>(sendbuf, recvbuf, count,
                                                      dt, op, comm, tag));
  return 0;
}

}  // namespace rbc
