// RBC point-to-point operations (Section V-C, Figure 2 of the paper).
//
// Operations with a specific peer rank translate the RBC rank to the
// underlying MPI rank and forward to MPI. Wildcard (kAnySource)
// operations are where RBC earns its keep: a wildcard probe may match a
// message that belongs to a *different* RBC communicator over the same MPI
// communicator, so RBC checks whether the source is a member of the range
// and reports "no message" otherwise. This guarantees that communication
// on two RBC communicators never interferes as long as they overlap in at
// most one process.
#pragma once

#include "rbc/comm.hpp"
#include "rbc/request.hpp"

namespace rbc {

/// Blocking send to RBC rank `dest`. User tags must be < kReservedTagBase.
int Send(const void* buf, int count, Datatype dt, int dest, int tag,
         const Comm& comm);

/// Blocking receive from RBC rank `src` or kAnySource. The wildcard form
/// first probes (membership-filtered) to learn the source, then receives
/// from that specific rank (Section V-C "Receiving").
int Recv(void* buf, int count, Datatype dt, int src, int tag,
         const Comm& comm, Status* st = nullptr);

/// Nonblocking send; `*request` completes once the message is handed to
/// the transport (eager).
int Isend(const void* buf, int count, Datatype dt, int dest, int tag,
          const Comm& comm, Request* request);

/// Nonblocking receive. With kAnySource the returned request keeps
/// searching for an incoming member message on every Test (Section V-C).
int Irecv(void* buf, int count, Datatype dt, int src, int tag,
          const Comm& comm, Request* request);

/// Blocking probe; with kAnySource repeatedly calls Iprobe until a member
/// message is found.
int Probe(int src, int tag, const Comm& comm, Status* st);

/// Nonblocking probe; sets *flag to 1 iff a matching message from a member
/// of this RBC communicator is ready. A pending message from a non-member
/// yields *flag == 0.
int Iprobe(int src, int tag, const Comm& comm, int* flag,
           Status* st = nullptr);

namespace detail {

/// Internal variants used by the RBC collectives: identical semantics but
/// reserved tags allowed. Sources/destinations are RBC ranks.
void SendInternal(const void* buf, int count, Datatype dt, int dest, int tag,
                  const Comm& comm);
void RecvInternal(void* buf, int count, Datatype dt, int src, int tag,
                  const Comm& comm, Status* st = nullptr);
Request IsendInternal(const void* buf, int count, Datatype dt, int dest,
                      int tag, const Comm& comm);
Request IrecvInternal(void* buf, int count, Datatype dt, int src, int tag,
                      const Comm& comm);
bool IprobeInternal(int src, int tag, const Comm& comm, Status* st);
void ProbeInternal(int src, int tag, const Comm& comm, Status* st);

/// Spin helper shared by blocking RBC operations: yields, honours aborts,
/// enforces the deadlock timeout.
void SpinUntil(const std::function<bool()>& poll, const char* what);

}  // namespace detail

}  // namespace rbc
