#include "rbc/request.hpp"

#include <chrono>
#include <string>
#include <thread>

namespace rbc {
namespace {

/// Spin with yields, honouring runtime aborts and the deadlock timeout so
/// a wedged Wait fails the test instead of hanging it.
template <typename Poll>
void SpinUntil(Poll poll, const char* what) {
  mpisim::RankContext& rc = mpisim::Ctx();
  const auto deadline = std::chrono::steady_clock::now() +
                        rc.runtime->options().deadlock_timeout;
  while (!poll()) {
    if (rc.runtime->Aborted()) throw mpisim::AbortedError();
    if (std::chrono::steady_clock::now() > deadline) {
      throw mpisim::DeadlockError(std::string("rbc: ") + what +
                                  " timed out (suspected deadlock)");
    }
    std::this_thread::yield();
  }
}

}  // namespace

int Test(Request* request, int* flag, Status* st) {
  if (request == nullptr) throw mpisim::UsageError("rbc::Test: null request");
  const bool done = request->Poll(st);
  if (flag != nullptr) *flag = done ? 1 : 0;
  return 0;
}

int Wait(Request* request, Status* st) {
  if (request == nullptr) throw mpisim::UsageError("rbc::Wait: null request");
  SpinUntil([&] { return request->Poll(st); }, "Wait");
  return 0;
}

int Testall(std::span<Request> requests, int* flag) {
  bool all = true;
  for (Request& r : requests) all = r.Poll(nullptr) && all;
  if (flag != nullptr) *flag = all ? 1 : 0;
  return 0;
}

int Waitall(std::span<Request> requests) {
  SpinUntil(
      [&] {
        int flag = 0;
        Testall(requests, &flag);
        return flag != 0;
      },
      "Waitall");
  return 0;
}

}  // namespace rbc
