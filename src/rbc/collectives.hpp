// RBC collective operations (Table I of the paper).
//
// All collectives are implemented with RBC point-to-point communication
// over binomial-tree (and, for scan, distance-doubling) schedules --
// generic patterns, theoretically optimal for small inputs (Section V-D).
// The nonblocking forms are state machines progressed by rbc::Test: each
// state performs local work and ends at its data dependencies.
//
// Tags: each blocking collective uses one distinct exclusive reserved tag;
// each nonblocking collective defaults to its own reserved tag but accepts
// a user-supplied tag (last parameter), which avoids interference between
// simultaneous nonblocking collectives on overlapping RBC communicators.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "rbc/comm.hpp"
#include "rbc/request.hpp"
#include "rbc/tags.hpp"

namespace rbc {

/// Broadcast from RBC rank `root` to all ranks of the range.
int Bcast(void* buffer, int count, Datatype dt, int root, const Comm& comm);
int Ibcast(void* buffer, int count, Datatype dt, int root, const Comm& comm,
           Request* request, int tag = RBC_IBCAST_TAG);

/// Element-wise reduction to `root` (commutative operators).
int Reduce(const void* sendbuf, void* recvbuf, int count, Datatype dt,
           ReduceOp op, int root, const Comm& comm);
int Ireduce(const void* sendbuf, void* recvbuf, int count, Datatype dt,
            ReduceOp op, int root, const Comm& comm, Request* request,
            int tag = RBC_IREDUCE_TAG);

/// Inclusive prefix reduction.
int Scan(const void* sendbuf, void* recvbuf, int count, Datatype dt,
         ReduceOp op, const Comm& comm);
int Iscan(const void* sendbuf, void* recvbuf, int count, Datatype dt,
          ReduceOp op, const Comm& comm, Request* request,
          int tag = RBC_ISCAN_TAG);

/// Gather of uniform blocks to `root` (recvbuf: Size()*count elements,
/// ordered by RBC rank; significant at root only).
int Gather(const void* sendbuf, int count, Datatype dt, void* recvbuf,
           int root, const Comm& comm);
int Igather(const void* sendbuf, int count, Datatype dt, void* recvbuf,
            int root, const Comm& comm, Request* request,
            int tag = RBC_IGATHER_TAG);

/// Gather with per-rank counts; recvcounts/displs (elements) significant
/// at root only.
int Gatherv(const void* sendbuf, int count, Datatype dt, void* recvbuf,
            std::span<const int> recvcounts, std::span<const int> displs,
            int root, const Comm& comm);
int Igatherv(const void* sendbuf, int count, Datatype dt, void* recvbuf,
             std::span<const int> recvcounts, std::span<const int> displs,
             int root, const Comm& comm, Request* request,
             int tag = RBC_IGATHERV_TAG);

/// Synchronizes all ranks of the range.
int Barrier(const Comm& comm);
int Ibarrier(const Comm& comm, Request* request, int tag = RBC_IBARRIER_TAG);

// ---------------------------------------------------------------------------
// Extensions beyond Table I. Section V-D: "It is easy to extend our library
// by additional collective operations, e.g., for large input sizes." These
// follow the same state-machine construction over RBC point-to-point
// operations and the same tag discipline.
// ---------------------------------------------------------------------------

// Reserved-tag map of the extension collectives. Blocking collectives own
// one exclusive tag each in kReservedTagBase + [7, 15]; nonblocking
// defaults live in kReservedTagBase + [22, 30]. Exscan/Iexscan consume two
// consecutive tags (the inclusive scan and the right-shift), so the tag
// after theirs stays unassigned. Alltoall/Alltoallv use a single tag: the
// pairwise schedules exchange at most one message per ordered rank pair
// per operation -- or, in the segmented large-message regime, the
// segments of a pair in strictly increasing order -- so (source, tag)
// plus per-envelope FIFO order is unambiguous; back-to-back operations on
// the same tag are disambiguated the same way.
//
// Derived-tag regions of the sparse exchange (indexed by the exchange's
// payload tag `t`, which RbcTransport passes through raw):
//   * barrier tags:        kReservedTagBase + 2^22 + {2t, 2t+1}
//     (termination barriers A and B of the two-barrier NBX scheme);
//   * chunk-sequence tags: kReservedTagBase + 2^23 + t
//     (trailing payload chunks [int64 seq][payload...] of the chunked
//     large-message protocol; the first chunk of every payload travels on
//     `t` itself as [int64 total bytes][payload...]).
// Simultaneous sparse exchanges on overlapping communicators therefore
// need distinct payload tags, which also keeps their barrier and chunk
// envelopes apart.
//
// The node-aware hierarchical collectives (topo/hier_collectives.hpp)
// extend this map with one exclusive tag each in kReservedTagBase +
// [32, 35]:
//   * kTagHierBcast     = kReservedTagBase + 32
//   * kTagHierAllreduce = kReservedTagBase + 33
//   * kTagHierGatherv   = kReservedTagBase + 34
//   * kTagHierAlltoallv = kReservedTagBase + 35
// Each owns its leader-phase point-to-point traffic; the intra-node
// phases run flat collectives on vnode sub-ranges under the tags above
// (never concurrently on overlapping ranges). HierAlltoallv's three
// sparse phases share kTagHierAlltoallv -- fenced by the sparse
// exchange's second barrier -- and derive barrier/chunk tags from it
// exactly as described for the sparse exchange.
//
// Sequence tracking (MPISIM_SANITIZE=1): every public entry above --
// blocking or nonblocking -- records exactly one logical collective in
// the sanitizer ledger of its (underlying MPI comm, range) pair, keyed by
// the op kind and, among other envelope fields, the tags of this map
// (blocking forms record their exclusive kTag*, nonblocking forms the
// caller-supplied tag). The rules:
//   * one record per public call; the internal schedule's messages,
//     composite sub-collectives (Allgather's Gather+Bcast, Barrier's
//     reduce+bcast halves) and the sparse exchange's derived-tag fences
//     (detail::MakeBarrierSM) are never recorded;
//   * records of one (comm, range) pair are compared in per-member call
//     order, so members of a range must issue the same collectives in the
//     same order with consistent envelopes -- exactly the agreement the
//     tag discipline above already demands;
//   * distinct ranges over one MPI communicator keep independent
//     sequences: concurrent collectives on disjoint or overlapping
//     ranges are legal (with the usual tag rules) and never compared;
//   * the hierarchical collectives record one logical op (kHierBcast /
//     kHierAllreduce / kHierGatherv / kHierAlltoallv) in the *parent*
//     range's ledger, carrying the elected leader list so ranks that
//     derive divergent topologies raise a "different elected leader
//     sets" mismatch at entry; their intra-phase sub-collectives and
//     sparse fences are suppressed by the per-rank depth guard.
inline constexpr int RBC_IALLREDUCE_TAG = kReservedTagBase + 22;
inline constexpr int RBC_IALLGATHER_TAG = kReservedTagBase + 23;
inline constexpr int RBC_IEXSCAN_TAG = kReservedTagBase + 24;  // +25 too
inline constexpr int RBC_ISCATTER_TAG = kReservedTagBase + 26;
inline constexpr int RBC_IALLTOALL_TAG = kReservedTagBase + 27;
inline constexpr int RBC_IALLTOALLV_TAG = kReservedTagBase + 28;
inline constexpr int RBC_SPARSE_ALLTOALLV_TAG = kReservedTagBase + 29;
inline constexpr int kTagAllreduce = kReservedTagBase + 7;
inline constexpr int kTagAllgather = kReservedTagBase + 8;
inline constexpr int kTagExscan = kReservedTagBase + 9;  // +10 too
inline constexpr int kTagScatter = kReservedTagBase + 11;
inline constexpr int kTagBcastLarge = kReservedTagBase + 12;
inline constexpr int kTagAlltoall = kReservedTagBase + 13;
inline constexpr int kTagAlltoallv = kReservedTagBase + 14;

/// Reduce to rank 0 chained with a broadcast.
int Allreduce(const void* sendbuf, void* recvbuf, int count, Datatype dt,
              ReduceOp op, const Comm& comm);
int Iallreduce(const void* sendbuf, void* recvbuf, int count, Datatype dt,
               ReduceOp op, const Comm& comm, Request* request,
               int tag = RBC_IALLREDUCE_TAG);

/// Gather to rank 0 chained with a broadcast; recvbuf holds Size()*count
/// elements on every rank.
int Allgather(const void* sendbuf, int count, Datatype dt, void* recvbuf,
              const Comm& comm);
int Iallgather(const void* sendbuf, int count, Datatype dt, void* recvbuf,
               const Comm& comm, Request* request,
               int tag = RBC_IALLGATHER_TAG);

/// Exclusive prefix reduction; rank 0's output is zero-filled.
int Exscan(const void* sendbuf, void* recvbuf, int count, Datatype dt,
           ReduceOp op, const Comm& comm);
int Iexscan(const void* sendbuf, void* recvbuf, int count, Datatype dt,
            ReduceOp op, const Comm& comm, Request* request,
            int tag = RBC_IEXSCAN_TAG);

/// Scatters Size() consecutive blocks of `count` elements from the root's
/// sendbuf down a binomial tree (the inverse of Gather).
int Scatter(const void* sendbuf, int count, Datatype dt, void* recvbuf,
            int root, const Comm& comm);
int Iscatter(const void* sendbuf, int count, Datatype dt, void* recvbuf,
             int root, const Comm& comm, Request* request,
             int tag = RBC_ISCATTER_TAG);

/// Large-input broadcast: binomial scatter of p segments followed by a
/// ring allgather -- 2*beta*l bandwidth instead of the binomial tree's
/// beta*l*log(p), at the price of O(alpha*p) latency. Callers pick the
/// algorithm by payload (bench_ext_bcast_large locates the crossover).
int BcastLarge(void* buffer, int count, Datatype dt, int root,
               const Comm& comm);

/// Personalized all-to-all with uniform block size: block i of sendbuf
/// goes to rank i; recvbuf's block j arrives from rank j. Both buffers
/// hold Size()*count elements. The schedule is a hypercube (XOR) pairing
/// for power-of-two ranges and a 1-factorization for general sizes --
/// p-1 pairwise exchange rounds either way, each round a send/recv with
/// one partner. Zero-count blocks are still transmitted (MPI semantics),
/// so the operation matches mpisim::Alltoall message for message.
int Alltoall(const void* sendbuf, int count, Datatype dt, void* recvbuf,
             const Comm& comm);
int Ialltoall(const void* sendbuf, int count, Datatype dt, void* recvbuf,
              const Comm& comm, Request* request,
              int tag = RBC_IALLTOALL_TAG);

/// Personalized all-to-all with per-peer counts/displacements (elements).
/// All four arrays are significant on every rank and sized Size();
/// sendcounts[j] on rank i must equal recvcounts[i] on rank j. Same
/// schedules as Alltoall. With segment_bytes > 0 every per-partner block
/// is pipelined as segments of at most segment_bytes payload bytes (at
/// least one element each), interleaved segment-major across the pairing
/// rounds -- the large-message regime; 0 keeps the one-message-per-pair
/// eager schedule.
int Alltoallv(const void* sendbuf, std::span<const int> sendcounts,
              std::span<const int> sdispls, Datatype dt, void* recvbuf,
              std::span<const int> recvcounts, std::span<const int> rdispls,
              const Comm& comm, std::int64_t segment_bytes = 0);
int Ialltoallv(const void* sendbuf, std::span<const int> sendcounts,
               std::span<const int> sdispls, Datatype dt, void* recvbuf,
               std::span<const int> recvcounts, std::span<const int> rdispls,
               const Comm& comm, Request* request,
               int tag = RBC_IALLTOALLV_TAG, std::int64_t segment_bytes = 0);

/// Sparse-exchange vocabulary, shared with the substrate's collective
/// (mpisim::IsparseAlltoallv): one outgoing block per destination actually
/// sent to (`dest` is an RBC rank here), one message per incoming payload.
using SparseSendBlock = mpisim::SparseSendBlock;
using SparseRecvMessage = mpisim::SparseRecvMessage;

/// Sparse (neighborhood) personalized all-to-all: each rank passes only
/// the destinations it actually sends to -- there is no dense counts round
/// and nothing is transmitted for absent destinations. Receivers discover
/// their senders through membership-filtered wildcard probes; termination
/// is detected with a count of two lightweight barriers (the substrate's
/// eager sends deposit into the destination before the sender enters the
/// first barrier, so barrier completion bounds the messages still owed; the
/// second barrier fences the operation against a back-to-back successor on
/// the same tag). Per rank: one message per listed destination plus
/// O(log p) barrier tokens, instead of the p-1 rounds of Alltoallv.
///
/// `*received` is appended with every incoming message, ordered by source
/// rank (messages from one source stay in send order). A block with
/// dest == Rank() bypasses the transport and is delivered locally. The
/// payload tag also derives the barrier and chunk-sequence tags (see the
/// reserved-tag map above), so simultaneous sparse exchanges on
/// overlapping communicators need distinct tags, like every other RBC
/// collective.
///
/// With segment_bytes > 0 each per-destination payload ships as chunks of
/// at most segment_bytes wire bytes (first chunk [int64 total][payload]
/// on the payload tag, trailing chunks [int64 seq][payload] on the
/// derived chunk tag) instead of one unbounded eager message -- the
/// large-message regime; the caller still receives one delivery per
/// source. The two-barrier fence orders trailing chunks of back-to-back
/// exchanges on one tag exactly as it orders their first chunks.
int SparseAlltoallv(std::span<const SparseSendBlock> sends, Datatype dt,
                    std::vector<SparseRecvMessage>* received,
                    const Comm& comm, int tag = RBC_SPARSE_ALLTOALLV_TAG,
                    std::int64_t segment_bytes = 0);
int IsparseAlltoallv(std::span<const SparseSendBlock> sends, Datatype dt,
                     std::vector<SparseRecvMessage>* received,
                     const Comm& comm, Request* request,
                     int tag = RBC_SPARSE_ALLTOALLV_TAG,
                     std::int64_t segment_bytes = 0);

}  // namespace rbc
