// Umbrella header for the RBC library.
#pragma once

#include "rbc/collectives.hpp"
#include "rbc/comm.hpp"
#include "rbc/p2p.hpp"
#include "rbc/request.hpp"
#include "rbc/tags.hpp"
