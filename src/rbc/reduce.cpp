// rbc::Reduce / rbc::Ireduce -- binomial-tree reduction over RBC
// point-to-point operations (commutative operators).
#include "rbc/collectives.hpp"
#include "rbc/sanitize.hpp"
#include "rbc/sm.hpp"

namespace rbc {
namespace detail {

// Shared with barrier.cpp (reduce half of the barrier chain).
class ReduceSM final : public RequestImpl {
 public:
  ReduceSM(const void* send, void* recv, int count, Datatype dt, ReduceOp op,
           int root, Comm comm, int tag)
      : recv_(recv), count_(count), dt_(dt), op_(op),
        comm_(std::move(comm)), tag_(tag), tree_(TreeFor(comm_, root)),
        acc_(ByteCount(count, dt)) {
    if (!acc_.empty()) std::memcpy(acc_.data(), send, acc_.size());
    is_root_ = tree_.parent < 0;
    child_bufs_.resize(tree_.children.size());
    child_reqs_.resize(tree_.children.size());
    child_done_.assign(tree_.children.size(), false);
    for (std::size_t i = 0; i < tree_.children.size(); ++i) {
      child_bufs_[i].resize(acc_.size());
      child_reqs_[i] = IrecvInternal(child_bufs_[i].data(), count_, dt_,
                                     tree_.children[i], tag_, comm_);
    }
  }

  bool Test(Status*) override {
    if (done_) return true;
    // Fold every child's contribution as soon as it arrives; the operator
    // application is this state's local work.
    bool all = true;
    for (std::size_t i = 0; i < child_reqs_.size(); ++i) {
      if (child_done_[i]) continue;
      if (child_reqs_[i].Poll()) {
        mpisim::ApplyReduce(op_, dt_, child_bufs_[i].data(), acc_.data(),
                            count_);
        child_done_[i] = true;
      } else {
        all = false;
      }
    }
    if (!all) return false;
    if (!is_root_) {
      SendInternal(acc_.data(), count_, dt_, tree_.parent, tag_, comm_);
    } else if (recv_ != nullptr && !acc_.empty()) {
      std::memcpy(recv_, acc_.data(), acc_.size());
    }
    done_ = true;
    return true;
  }

 private:
  void* recv_;
  int count_;
  Datatype dt_;
  ReduceOp op_;
  Comm comm_;
  int tag_;
  Tree tree_;
  std::vector<std::byte> acc_;
  std::vector<std::vector<std::byte>> child_bufs_;
  std::vector<Request> child_reqs_;
  std::vector<bool> child_done_;
  bool is_root_ = false;
  bool done_ = false;
};

std::shared_ptr<RequestImpl> MakeReduceSM(const void* send, void* recv,
                                          int count, Datatype dt, ReduceOp op,
                                          int root, const Comm& comm,
                                          int tag) {
  return std::make_shared<ReduceSM>(send, recv, count, dt, op, root, comm,
                                    tag);
}

}  // namespace detail

int Reduce(const void* sendbuf, void* recvbuf, int count, Datatype dt,
           ReduceOp op, int root, const Comm& comm) {
  detail::ValidateCollective(comm, root, "Reduce");
  sanitize::CollectiveScope san(
      comm, sanitize::MakeOp(sanitize::CollKind::kReduce, root, kTagReduce,
                             count, mpisim::SizeOf(dt)));
  detail::RunToCompletion(detail::MakeReduceSM(sendbuf, recvbuf, count, dt,
                                               op, root, comm, kTagReduce),
                          "Reduce");
  return 0;
}

int Ireduce(const void* sendbuf, void* recvbuf, int count, Datatype dt,
            ReduceOp op, int root, const Comm& comm, Request* request,
            int tag) {
  detail::ValidateCollective(comm, root, "Ireduce");
  if (request == nullptr) {
    throw mpisim::UsageError("rbc::Ireduce: null request");
  }
  auto rec = sanitize::MakeOp(sanitize::CollKind::kReduce, root, tag, count,
                              mpisim::SizeOf(dt));
  rec.nonblocking = true;
  sanitize::CollectiveScope san(comm, std::move(rec));
  *request = Request(
      detail::MakeReduceSM(sendbuf, recvbuf, count, dt, op, root, comm, tag));
  return 0;
}

}  // namespace rbc
