// rbc::Barrier / rbc::Ibarrier -- binomial reduce of an empty token to
// rank 0 chained with a broadcast back. The two halves can share one tag:
// within each pair of ranks the reduce message and the bcast message
// travel in opposite directions, so envelopes never collide.
#include "rbc/collectives.hpp"
#include "rbc/sanitize.hpp"
#include "rbc/sm.hpp"

namespace rbc {
namespace detail {
namespace {

class BarrierSM final : public RequestImpl {
 public:
  BarrierSM(Comm comm, int up_tag, int down_tag)
      : comm_(std::move(comm)), down_tag_(down_tag) {
    reduce_ = MakeReduceSM(&token_, &token_, 1, Datatype::kByte,
                           ReduceOp::kBor, 0, comm_, up_tag);
  }

  bool Test(Status* st) override {
    if (done_) return true;
    if (bcast_ == nullptr) {
      Status tmp;
      if (!reduce_->Progress(&tmp)) return false;
      bcast_ = MakeBcastSM(&token_, 1, Datatype::kByte, 0, comm_, down_tag_);
    }
    if (!bcast_->Progress(st)) return false;
    done_ = true;
    return true;
  }

 private:
  Comm comm_;
  int down_tag_;
  std::uint8_t token_ = 0;
  std::shared_ptr<RequestImpl> reduce_;
  std::shared_ptr<RequestImpl> bcast_;
  bool done_ = false;
};

}  // namespace

std::shared_ptr<RequestImpl> MakeBarrierSM(const Comm& comm, int tag) {
  return std::make_shared<BarrierSM>(comm, tag, tag);
}

}  // namespace detail

int Barrier(const Comm& comm) {
  detail::ValidateCollective(comm, 0, "Barrier");
  sanitize::CollectiveScope san(
      comm, sanitize::MakeOp(sanitize::CollKind::kBarrier, /*root=*/-1,
                             kTagBarrierUp));
  detail::RunToCompletion(
      std::make_shared<detail::BarrierSM>(comm, kTagBarrierUp,
                                          kTagBarrierDown),
      "Barrier");
  return 0;
}

int Ibarrier(const Comm& comm, Request* request, int tag) {
  detail::ValidateCollective(comm, 0, "Ibarrier");
  if (request == nullptr) {
    throw mpisim::UsageError("rbc::Ibarrier: null request");
  }
  auto rec = sanitize::MakeOp(sanitize::CollKind::kBarrier, /*root=*/-1, tag);
  rec.nonblocking = true;
  sanitize::CollectiveScope san(comm, std::move(rec));
  *request = Request(std::make_shared<detail::BarrierSM>(comm, tag, tag));
  return 0;
}

}  // namespace rbc
