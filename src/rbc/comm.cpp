#include "rbc/comm.hpp"

namespace rbc {

using mpisim::UsageError;

int Comm::ToMpi(int rbc_rank) const {
  if (rbc_rank < 0 || rbc_rank >= size_) {
    throw UsageError("rbc::Comm: rank out of range");
  }
  return first_ + rbc_rank * stride_;
}

int Comm::FromMpi(int mpi_rank) const {
  const int off = mpi_rank - first_;
  if (off < 0 || off % stride_ != 0) return -1;
  const int r = off / stride_;
  return r < size_ ? r : -1;
}

Comm Comm::Raw(mpisim::Comm mpi, int first, int size, int stride) {
  if (mpi.IsNull()) throw UsageError("rbc::Comm: null MPI communicator");
  if (size <= 0) throw UsageError("rbc::Comm: empty range");
  if (stride <= 0) throw UsageError("rbc::Comm: stride must be positive");
  if (first < 0 || first + (size - 1) * stride >= mpi.Size()) {
    throw UsageError("rbc::Comm: range exceeds MPI communicator");
  }
  Comm c;
  c.mpi_ = std::move(mpi);
  c.first_ = first;
  c.size_ = size;
  c.stride_ = stride;
  c.rank_ = c.FromMpi(c.mpi_.Rank());
  return c;
}

void Create_RBC_Comm(const mpisim::Comm& mpi, Comm* out) {
  if (out == nullptr) throw UsageError("Create_RBC_Comm: null out");
  *out = Comm::Raw(mpi, 0, mpi.Size(), 1);
}

void Split_RBC_Comm(const Comm& parent, int first, int last, Comm* out) {
  Split_RBC_Comm_Strided(parent, first, last, 1, out);
}

void Split_RBC_Comm_Strided(const Comm& parent, int first, int last,
                            int stride, Comm* out) {
  if (out == nullptr) throw UsageError("Split_RBC_Comm: null out");
  if (parent.IsNull()) throw UsageError("Split_RBC_Comm: null parent");
  if (first < 0 || last >= parent.Size() || first > last) {
    throw UsageError("Split_RBC_Comm: invalid range");
  }
  if (stride <= 0) throw UsageError("Split_RBC_Comm: stride must be positive");
  const int size = (last - first) / stride + 1;
  *out = Comm::Raw(parent.Mpi(), parent.ToMpi(first), size,
                   parent.Stride() * stride);
}

int Comm_rank(const Comm& comm, int* rank) {
  if (comm.IsNull()) throw UsageError("Comm_rank: null communicator");
  if (rank != nullptr) *rank = comm.Rank();
  return 0;
}

int Comm_size(const Comm& comm, int* size) {
  if (comm.IsNull()) throw UsageError("Comm_size: null communicator");
  if (size != nullptr) *size = comm.Size();
  return 0;
}

}  // namespace rbc
