// Extension collectives beyond Table I (Section V-D: "easy to extend"):
// Allreduce, Allgather, Exscan, Scatter -- chained / inverted forms of the
// core state machines, plus their nonblocking variants.
#include "rbc/collectives.hpp"
#include "rbc/sanitize.hpp"
#include "rbc/sm.hpp"

namespace rbc {
namespace detail {
namespace {

/// Chains two sub-state-machines sequentially: `second` is constructed by
/// a factory once `first` completes (the classic NBC chaining pattern).
class ChainSM final : public RequestImpl {
 public:
  using Factory = std::function<std::shared_ptr<RequestImpl>()>;

  ChainSM(std::shared_ptr<RequestImpl> first, Factory make_second)
      : first_(std::move(first)), make_second_(std::move(make_second)) {}

  bool Test(Status* st) override {
    if (second_ == nullptr) {
      Status tmp;
      if (!first_->Progress(&tmp)) return false;
      second_ = make_second_();
    }
    return second_->Progress(st);
  }

 private:
  std::shared_ptr<RequestImpl> first_;
  Factory make_second_;
  std::shared_ptr<RequestImpl> second_;
};

/// Allreduce = reduce-to-0 then broadcast, on one tag (the two phases move
/// in opposite directions between any pair of ranks).
std::shared_ptr<RequestImpl> MakeAllreduceSM(const void* send, void* recv,
                                             int count, Datatype dt,
                                             ReduceOp op, const Comm& comm,
                                             int tag) {
  auto reduce = MakeReduceSM(send, recv, count, dt, op, 0, comm, tag);
  return std::make_shared<ChainSM>(
      std::move(reduce), [recv, count, dt, comm, tag] {
        return MakeBcastSM(recv, count, dt, 0, comm, tag);
      });
}

/// Exclusive scan: inclusive scan into a scratch buffer, then every rank
/// ships its inclusive prefix one rank to the right. Rank 0 zero-fills.
class ExscanSM final : public RequestImpl {
 public:
  ExscanSM(const void* send, void* recv, int count, Datatype dt, ReduceOp op,
           Comm comm, int tag)
      : recv_(recv), count_(count), dt_(dt), comm_(std::move(comm)),
        tag_(tag), incl_(ByteCount(count, dt)) {
    rbc::Request scan_req;
    rbc::Iscan(send, incl_.data(), count, dt, op, comm_, &scan_req, tag_);
    scan_ = std::move(scan_req);
  }

  bool Test(Status*) override {
    if (done_) return true;
    if (!shifted_) {
      if (!scan_.Poll()) return false;
      const int rank = comm_.Rank();
      if (rank + 1 < comm_.Size()) {
        SendInternal(incl_.data(), count_, dt_, rank + 1, tag_ + 1, comm_);
      }
      if (rank > 0) {
        pending_ = IrecvInternal(recv_, count_, dt_, rank - 1, tag_ + 1,
                                 comm_);
      } else {
        std::memset(recv_, 0, incl_.size());
      }
      shifted_ = true;
    }
    if (comm_.Rank() > 0 && !pending_.Poll()) return false;
    done_ = true;
    return true;
  }

 private:
  void* recv_;
  int count_;
  Datatype dt_;
  Comm comm_;
  int tag_;
  std::vector<std::byte> incl_;
  Request scan_;
  Request pending_;
  bool shifted_ = false;
  bool done_ = false;
};

/// Binomial-tree scatter (inverse of Gather): each node receives its
/// subtree's blocks from its parent and forwards the children's shares.
class ScatterSM final : public RequestImpl {
 public:
  ScatterSM(const void* send, int count, Datatype dt, void* recv, int root,
            Comm comm, int tag)
      : recv_(recv), count_(count), dt_(dt), root_(root),
        comm_(std::move(comm)), tag_(tag), tree_(TreeFor(comm_, root)) {
    extent_ = 1;
    for (int e : tree_.child_extents) extent_ += e;
    const std::size_t block = ByteCount(count, dt);
    buf_.resize(static_cast<std::size_t>(extent_) * block);
    if (tree_.parent < 0) {
      // Root: rotate absolute-rank blocks into relative order.
      const int p = comm_.Size();
      const auto* in = static_cast<const std::byte*>(send);
      for (int rel = 0; rel < p; ++rel) {
        const int abs = (rel + root_) % p;
        if (block != 0) {
          std::memcpy(buf_.data() + static_cast<std::size_t>(rel) * block,
                      in + static_cast<std::size_t>(abs) * block, block);
        }
      }
      Forward();
      done_ = true;
    } else {
      pending_ = IrecvInternal(buf_.data(), extent_ * count_, dt_,
                               tree_.parent, tag_, comm_);
    }
  }

  bool Test(Status*) override {
    if (done_) return true;
    if (!pending_.Poll()) return false;
    Forward();
    done_ = true;
    return true;
  }

 private:
  void Forward() {
    const std::size_t block = ByteCount(count_, dt_);
    // The i-th child's subtree starts at relative offset 1 << i.
    for (int i = static_cast<int>(tree_.children.size()) - 1; i >= 0; --i) {
      const std::size_t off = (std::size_t{1} << i) * block;
      SendInternal(buf_.data() + off, tree_.child_extents[i] * count_, dt_,
                   tree_.children[i], tag_, comm_);
    }
    if (block != 0) std::memcpy(recv_, buf_.data(), block);
  }

  void* recv_;
  int count_;
  Datatype dt_;
  int root_;
  Comm comm_;
  int tag_;
  Tree tree_;
  int extent_ = 1;
  std::vector<std::byte> buf_;
  Request pending_;
  bool done_ = false;
};

}  // namespace
}  // namespace detail

int Allreduce(const void* sendbuf, void* recvbuf, int count, Datatype dt,
              ReduceOp op, const Comm& comm) {
  detail::ValidateCollective(comm, 0, "Allreduce");
  sanitize::CollectiveScope san(
      comm, sanitize::MakeOp(sanitize::CollKind::kAllreduce, /*root=*/-1,
                             kTagAllreduce, count, mpisim::SizeOf(dt)));
  detail::RunToCompletion(
      detail::MakeAllreduceSM(sendbuf, recvbuf, count, dt, op, comm,
                              kTagAllreduce),
      "Allreduce");
  return 0;
}

int Iallreduce(const void* sendbuf, void* recvbuf, int count, Datatype dt,
               ReduceOp op, const Comm& comm, Request* request, int tag) {
  detail::ValidateCollective(comm, 0, "Iallreduce");
  if (request == nullptr) {
    throw mpisim::UsageError("rbc::Iallreduce: null request");
  }
  auto rec = sanitize::MakeOp(sanitize::CollKind::kAllreduce, /*root=*/-1,
                              tag, count, mpisim::SizeOf(dt));
  rec.nonblocking = true;
  sanitize::CollectiveScope san(comm, std::move(rec));
  *request = Request(
      detail::MakeAllreduceSM(sendbuf, recvbuf, count, dt, op, comm, tag));
  return 0;
}

int Allgather(const void* sendbuf, int count, Datatype dt, void* recvbuf,
              const Comm& comm) {
  detail::ValidateCollective(comm, 0, "Allgather");
  sanitize::CollectiveScope san(
      comm, sanitize::MakeOp(sanitize::CollKind::kAllgather, /*root=*/-1,
                             kTagAllgather, count, mpisim::SizeOf(dt)));
  // The inner Iallgather (and its Igather) record nothing: the per-rank
  // depth guard keeps composite collectives to one outermost record.
  Request req;
  Iallgather(sendbuf, count, dt, recvbuf, comm, &req, kTagAllgather);
  Wait(&req);
  return 0;
}

int Iallgather(const void* sendbuf, int count, Datatype dt, void* recvbuf,
               const Comm& comm, Request* request, int tag) {
  detail::ValidateCollective(comm, 0, "Iallgather");
  if (request == nullptr) {
    throw mpisim::UsageError("rbc::Iallgather: null request");
  }
  auto rec = sanitize::MakeOp(sanitize::CollKind::kAllgather, /*root=*/-1,
                              tag, count, mpisim::SizeOf(dt));
  rec.nonblocking = true;
  sanitize::CollectiveScope san(comm, std::move(rec));
  // Gather to 0, then broadcast the assembled buffer.
  rbc::Request gather_req;
  Igather(sendbuf, count, dt, recvbuf, 0, comm, &gather_req, tag);
  struct Wrap final : public detail::RequestImpl {
    Wrap(Request g, void* recv, int total, Datatype dt, Comm comm, int tag)
        : gather(std::move(g)), recv(recv), total(total), dt(dt),
          comm(std::move(comm)), tag(tag) {}
    bool Test(Status* st) override {
      if (bcast == nullptr) {
        if (!gather.Poll()) return false;
        bcast = detail::MakeBcastSM(recv, total, dt, 0, comm, tag);
      }
      return bcast->Progress(st);
    }
    Request gather;
    void* recv;
    int total;
    Datatype dt;
    Comm comm;
    int tag;
    std::shared_ptr<detail::RequestImpl> bcast;
  };
  *request = Request(std::make_shared<Wrap>(std::move(gather_req), recvbuf,
                                            count * comm.Size(), dt, comm,
                                            tag));
  return 0;
}

int Exscan(const void* sendbuf, void* recvbuf, int count, Datatype dt,
           ReduceOp op, const Comm& comm) {
  detail::ValidateCollective(comm, 0, "Exscan");
  sanitize::CollectiveScope san(
      comm, sanitize::MakeOp(sanitize::CollKind::kExscan, /*root=*/-1,
                             kTagExscan, count, mpisim::SizeOf(dt)));
  detail::RunToCompletion(
      std::make_shared<detail::ExscanSM>(sendbuf, recvbuf, count, dt, op,
                                         comm, kTagExscan),
      "Exscan");
  return 0;
}

int Iexscan(const void* sendbuf, void* recvbuf, int count, Datatype dt,
            ReduceOp op, const Comm& comm, Request* request, int tag) {
  detail::ValidateCollective(comm, 0, "Iexscan");
  if (request == nullptr) {
    throw mpisim::UsageError("rbc::Iexscan: null request");
  }
  auto rec = sanitize::MakeOp(sanitize::CollKind::kExscan, /*root=*/-1, tag,
                              count, mpisim::SizeOf(dt));
  rec.nonblocking = true;
  sanitize::CollectiveScope san(comm, std::move(rec));
  *request = Request(std::make_shared<detail::ExscanSM>(
      sendbuf, recvbuf, count, dt, op, comm, tag));
  return 0;
}

int Scatter(const void* sendbuf, int count, Datatype dt, void* recvbuf,
            int root, const Comm& comm) {
  detail::ValidateCollective(comm, root, "Scatter");
  sanitize::CollectiveScope san(
      comm, sanitize::MakeOp(sanitize::CollKind::kScatter, root, kTagScatter,
                             count, mpisim::SizeOf(dt)));
  detail::RunToCompletion(
      std::make_shared<detail::ScatterSM>(sendbuf, count, dt, recvbuf, root,
                                          comm, kTagScatter),
      "Scatter");
  return 0;
}

int Iscatter(const void* sendbuf, int count, Datatype dt, void* recvbuf,
             int root, const Comm& comm, Request* request, int tag) {
  detail::ValidateCollective(comm, root, "Iscatter");
  if (request == nullptr) {
    throw mpisim::UsageError("rbc::Iscatter: null request");
  }
  auto rec = sanitize::MakeOp(sanitize::CollKind::kScatter, root, tag, count,
                              mpisim::SizeOf(dt));
  rec.nonblocking = true;
  sanitize::CollectiveScope san(comm, std::move(rec));
  *request = Request(std::make_shared<detail::ScatterSM>(
      sendbuf, count, dt, recvbuf, root, comm, tag));
  return 0;
}

}  // namespace rbc
