// rbc::Request -- "a smart pointer to a request that implements the
// specific nonblocking operation" (Section V-B) -- and the four completion
// primitives Test / Wait / Testall / Waitall.
#pragma once

#include <memory>
#include <span>

#include "rbc/comm.hpp"

namespace rbc {

namespace detail {

/// Base of every RBC nonblocking-operation state machine. Progress happens
/// exclusively inside Test calls. Completion is cached *here*, in the
/// shared state, so every copy of a Request handle observes it (Section
/// V-B: a Request is a smart pointer to the operation state).
class RequestImpl {
 public:
  virtual ~RequestImpl() = default;

  /// Progresses the operation; caches completion and its status.
  bool Progress(Status* st) {
    if (!done_) done_ = Test(&st_);
    if (done_ && st != nullptr) *st = st_;
    return done_;
  }

 protected:
  /// Returns true exactly when the operation is locally complete. Called
  /// at most until it first returns true.
  virtual bool Test(Status* st) = 0;

 private:
  bool done_ = false;
  Status st_{};
};

}  // namespace detail

/// Smart-pointer request handle (Table I: class rbc::Request). Null
/// requests test as complete.
class Request {
 public:
  Request() = default;
  explicit Request(std::shared_ptr<detail::RequestImpl> impl)
      : impl_(std::move(impl)) {}

  bool IsNull() const { return impl_ == nullptr; }

  /// Progresses the operation; completion is cached in the shared state,
  /// so all copies of this handle observe it.
  bool Poll(Status* st = nullptr) {
    if (impl_ == nullptr) return true;
    return impl_->Progress(st);
  }

 private:
  std::shared_ptr<detail::RequestImpl> impl_;
};

/// Tests the request; sets *flag to 1 on completion, 0 otherwise.
int Test(Request* request, int* flag, Status* st = nullptr);

/// Repeatedly calls Test until the operation completes (Section V-B).
int Wait(Request* request, Status* st = nullptr);

/// Tests all requests; sets *flag to 1 iff all are complete. Progresses
/// every request on each call.
int Testall(std::span<Request> requests, int* flag);

/// Repeatedly calls Testall until all operations complete.
int Waitall(std::span<Request> requests);

}  // namespace rbc
