// Reserved tag space of the RBC library (Section V-D).
//
// RBC cannot allocate MPI context ids, so collective traffic shares the
// underlying MPI communicator with user point-to-point traffic. Each
// blocking collective owns one distinct exclusive tag; each nonblocking
// collective owns a distinct *default* tag which the caller may override
// (the extra `tag` parameter of the I* operations) to run several
// nonblocking collectives simultaneously on overlapping communicators.
// User point-to-point tags must stay below kReservedTagBase.
#pragma once

namespace rbc {

/// First reserved tag; rbc::Send / rbc::Isend reject tags >= this.
inline constexpr int kReservedTagBase = 1 << 24;

// Blocking collectives (one exclusive tag each).
inline constexpr int kTagBcast = kReservedTagBase + 0;
inline constexpr int kTagReduce = kReservedTagBase + 1;
inline constexpr int kTagScan = kReservedTagBase + 2;
inline constexpr int kTagGather = kReservedTagBase + 3;
inline constexpr int kTagGatherv = kReservedTagBase + 4;
inline constexpr int kTagBarrierUp = kReservedTagBase + 5;
inline constexpr int kTagBarrierDown = kReservedTagBase + 6;

// Default tags of the nonblocking collectives (user-overridable, mirroring
// `int tag = RBC_IBCAST_TAG` in the paper's Ibcast signature).
inline constexpr int RBC_IBCAST_TAG = kReservedTagBase + 16;
inline constexpr int RBC_IREDUCE_TAG = kReservedTagBase + 17;
inline constexpr int RBC_ISCAN_TAG = kReservedTagBase + 18;
inline constexpr int RBC_IGATHER_TAG = kReservedTagBase + 19;
inline constexpr int RBC_IGATHERV_TAG = kReservedTagBase + 20;
inline constexpr int RBC_IBARRIER_TAG = kReservedTagBase + 21;

}  // namespace rbc
