// Shared internals of the RBC collective state machines.
#pragma once

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "mpisim/nbc.hpp"  // for the binomial tree topology helper
#include "rbc/p2p.hpp"
#include "rbc/request.hpp"

namespace rbc::detail {

/// Binomial tree in RBC rank space, rooted (by rotation) at `root`.
using Tree = mpisim::detail::BinomialTree;

inline Tree TreeFor(const Comm& comm, int root) {
  return Tree::Compute(comm.Rank(), comm.Size(), root);
}

inline std::size_t ByteCount(int count, Datatype dt) {
  if (count < 0) {
    throw mpisim::UsageError("rbc collective: negative count");
  }
  return static_cast<std::size_t>(count) * mpisim::SizeOf(dt);
}

inline void ValidateCollective(const Comm& comm, int root, const char* op) {
  if (comm.IsNull()) {
    throw mpisim::UsageError(std::string("rbc::") + op +
                             ": null communicator");
  }
  if (comm.Rank() < 0) {
    throw mpisim::UsageError(std::string("rbc::") + op +
                             ": caller not in communicator");
  }
  if (root < 0 || root >= comm.Size()) {
    throw mpisim::UsageError(std::string("rbc::") + op + ": bad root");
  }
}

/// Runs a freshly-built state machine to completion (the blocking form of
/// every RBC collective is its nonblocking form plus Wait, which matches
/// the paper's "implemented with point-to-point communication provided by
/// the RBC library").
void RunToCompletion(std::shared_ptr<RequestImpl> sm, const char* what);

/// Cross-file state-machine factories (barrier chains reduce + bcast).
std::shared_ptr<RequestImpl> MakeReduceSM(const void* send, void* recv,
                                          int count, Datatype dt, ReduceOp op,
                                          int root, const Comm& comm,
                                          int tag);
std::shared_ptr<RequestImpl> MakeBcastSM(void* buf, int count, Datatype dt,
                                         int root, const Comm& comm, int tag);
/// Bare barrier schedule (up and down share `tag`). Internal consumers
/// (the sparse-exchange fences) use this instead of the public Ibarrier so
/// the sanitizer never sees a schedule's internal fence as a user
/// collective.
std::shared_ptr<RequestImpl> MakeBarrierSM(const Comm& comm, int tag);

}  // namespace rbc::detail
