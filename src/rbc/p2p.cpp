#include "rbc/p2p.hpp"

#include <chrono>
#include <string>
#include <thread>

#include "rbc/tags.hpp"

namespace rbc {

using mpisim::UsageError;

namespace detail {
namespace {

void ValidateMember(const Comm& comm, const char* op) {
  if (comm.IsNull()) {
    throw UsageError(std::string("rbc::") + op + ": null communicator");
  }
  if (comm.Rank() < 0) {
    throw UsageError(std::string("rbc::") + op +
                     ": calling process is not in the RBC communicator");
  }
}

/// Translates an MPI-comm-rank status into RBC rank space.
Status Translate(const Comm& comm, const Status& st) {
  Status out = st;
  out.source = comm.FromMpi(st.source);
  return out;
}

/// Nonblocking receive from a specific RBC rank: wraps the MPI request and
/// translates the completion status.
class RecvSpecificRequest final : public RequestImpl {
 public:
  RecvSpecificRequest(mpisim::Request inner, Comm comm)
      : inner_(std::move(inner)), comm_(std::move(comm)) {}

  bool Test(Status* st) override {
    Status raw;
    if (!inner_.Test(&raw)) return false;
    if (st != nullptr) *st = Translate(comm_, raw);
    return true;
  }

 private:
  mpisim::Request inner_;
  Comm comm_;
};

/// Nonblocking wildcard receive (Section V-C): every Test first searches
/// for an incoming message sent over this RBC communicator (membership
/// filter); once one is found, the receive is posted for that specific
/// source.
class RecvWildcardRequest final : public RequestImpl {
 public:
  RecvWildcardRequest(void* buf, int count, Datatype dt, int tag, Comm comm)
      : buf_(buf), count_(count), dt_(dt), tag_(tag), comm_(std::move(comm)) {}

  bool Test(Status* st) override {
    if (!posted_) {
      Status probe;
      if (!IprobeInternal(kAnySource, tag_, comm_, &probe)) return false;
      inner_ = mpisim::Irecv(buf_, count_, dt_, comm_.ToMpi(probe.source),
                             tag_, comm_.Mpi());
      posted_ = true;
    }
    Status raw;
    if (!inner_.Test(&raw)) return false;
    if (st != nullptr) *st = Translate(comm_, raw);
    return true;
  }

 private:
  void* buf_;
  int count_;
  Datatype dt_;
  int tag_;
  Comm comm_;
  bool posted_ = false;
  mpisim::Request inner_;
};

}  // namespace

void SpinUntil(const std::function<bool()>& poll, const char* what) {
  if (poll()) return;  // fast path: completed already, no registration
  mpisim::RankContext& rc = mpisim::Ctx();
  // Register as a spin-wait (known=false): the schedule's data dependency
  // is not a single envelope pattern, so proactive detection stands down
  // and the timeout forensics below cover the deadlock case.
  mpisim::ScopedWait guard(mpisim::MakeWait(std::string("rbc: ") + what));
  const auto deadline = std::chrono::steady_clock::now() +
                        rc.runtime->options().deadlock_timeout;
  while (!poll()) {
    if (rc.runtime->Aborted()) {
      throw mpisim::AbortedError(rc.runtime->FirstFailedRank());
    }
    if (std::chrono::steady_clock::now() > deadline) {
      throw mpisim::DeadlockError(mpisim::BuildDeadlockReport(
          *rc.runtime, std::string("rbc: ") + what +
                           " timed out (suspected deadlock)"));
    }
    std::this_thread::yield();
  }
}

void SendInternal(const void* buf, int count, Datatype dt, int dest, int tag,
                  const Comm& comm) {
  ValidateMember(comm, "Send");
  mpisim::Send(buf, count, dt, comm.ToMpi(dest), tag, comm.Mpi());
}

void RecvInternal(void* buf, int count, Datatype dt, int src, int tag,
                  const Comm& comm, Status* st) {
  ValidateMember(comm, "Recv");
  if (src == kAnySource) {
    Status probe;
    ProbeInternal(kAnySource, tag, comm, &probe);
    src = probe.source;
  }
  Status raw;
  mpisim::Recv(buf, count, dt, comm.ToMpi(src), tag, comm.Mpi(), &raw);
  if (st != nullptr) *st = Translate(comm, raw);
}

Request IsendInternal(const void* buf, int count, Datatype dt, int dest,
                      int tag, const Comm& comm) {
  ValidateMember(comm, "Isend");
  mpisim::Request inner =
      mpisim::Isend(buf, count, dt, comm.ToMpi(dest), tag, comm.Mpi());
  return Request(
      std::make_shared<RecvSpecificRequest>(std::move(inner), comm));
}

Request IrecvInternal(void* buf, int count, Datatype dt, int src, int tag,
                      const Comm& comm) {
  ValidateMember(comm, "Irecv");
  if (src == kAnySource) {
    auto impl =
        std::make_shared<RecvWildcardRequest>(buf, count, dt, tag, comm);
    Request req(std::move(impl));
    req.Poll();  // eager first progress attempt
    return req;
  }
  mpisim::Request inner =
      mpisim::Irecv(buf, count, dt, comm.ToMpi(src), tag, comm.Mpi());
  return Request(
      std::make_shared<RecvSpecificRequest>(std::move(inner), comm));
}

bool IprobeInternal(int src, int tag, const Comm& comm, Status* st) {
  ValidateMember(comm, "Iprobe");
  if (src != kAnySource) {
    Status raw;
    if (!mpisim::Iprobe(comm.ToMpi(src), tag, comm.Mpi(), &raw)) return false;
    if (st != nullptr) *st = Translate(comm, raw);
    return true;
  }
  // Wildcard: MPI_Iprobe may report a message of a *different* RBC
  // communicator; report "no message" unless the source is a member
  // (Section V-C "Probing").
  Status raw;
  if (!mpisim::Iprobe(mpisim::kAnySource, tag, comm.Mpi(), &raw)) return false;
  if (!comm.IsMember(raw.source)) return false;
  if (st != nullptr) *st = Translate(comm, raw);
  return true;
}

void ProbeInternal(int src, int tag, const Comm& comm, Status* st) {
  ValidateMember(comm, "Probe");
  if (src != kAnySource) {
    Status raw;
    mpisim::Probe(comm.ToMpi(src), tag, comm.Mpi(), &raw);
    if (st != nullptr) *st = Translate(comm, raw);
    return;
  }
  SpinUntil([&] { return IprobeInternal(kAnySource, tag, comm, st); },
            "Probe(ANY_SOURCE)");
}

}  // namespace detail

namespace {

void ValidateUserTag(int tag, const char* op) {
  if (tag < 0 || tag >= kReservedTagBase) {
    throw UsageError(std::string("rbc::") + op +
                     ": user tags must be in [0, kReservedTagBase)");
  }
}

}  // namespace

int Send(const void* buf, int count, Datatype dt, int dest, int tag,
         const Comm& comm) {
  ValidateUserTag(tag, "Send");
  detail::SendInternal(buf, count, dt, dest, tag, comm);
  return 0;
}

int Recv(void* buf, int count, Datatype dt, int src, int tag,
         const Comm& comm, Status* st) {
  ValidateUserTag(tag, "Recv");
  detail::RecvInternal(buf, count, dt, src, tag, comm, st);
  return 0;
}

int Isend(const void* buf, int count, Datatype dt, int dest, int tag,
          const Comm& comm, Request* request) {
  ValidateUserTag(tag, "Isend");
  if (request == nullptr) throw UsageError("rbc::Isend: null request");
  *request = detail::IsendInternal(buf, count, dt, dest, tag, comm);
  return 0;
}

int Irecv(void* buf, int count, Datatype dt, int src, int tag,
          const Comm& comm, Request* request) {
  ValidateUserTag(tag, "Irecv");
  if (request == nullptr) throw UsageError("rbc::Irecv: null request");
  *request = detail::IrecvInternal(buf, count, dt, src, tag, comm);
  return 0;
}

int Probe(int src, int tag, const Comm& comm, Status* st) {
  ValidateUserTag(tag, "Probe");
  detail::ProbeInternal(src, tag, comm, st);
  return 0;
}

int Iprobe(int src, int tag, const Comm& comm, int* flag, Status* st) {
  ValidateUserTag(tag, "Iprobe");
  const bool found = detail::IprobeInternal(src, tag, comm, st);
  if (flag != nullptr) *flag = found ? 1 : 0;
  return 0;
}

}  // namespace rbc
