// rbc::Alltoall / rbc::Alltoallv -- personalized all-to-all exchange over
// an RBC range (extension beyond Table I, Section V-D construction).
//
// The nonblocking form is a round-based state machine progressed by
// rbc::Test. Round r pairs the caller with one partner:
//  * power-of-two ranges: hypercube pairing, partner = rank XOR r -- every
//    round is a perfect matching of the range;
//  * general ranges: 1-factorization of the complete graph, partner =
//    (r - rank) mod p -- an involution for every p, with at most two fixed
//    points per round (a fixed point is the caller's own block, handled by
//    a local copy before round 0).
// Sends are eager, so a round posts its send, then parks on the matching
// receive -- faster ranks run ahead of slower partners without deadlock.
//
// Large-message regime: with segment_bytes > 0 each per-partner block is
// split into segments of at most segment_bytes payload bytes, and the
// schedule pipelines them *segment-major* the way BcastLarge's
// scatter+ring-allgather pipelines its blocks: the outer loop walks
// segment indices, the inner loop walks the pairing rounds, so segment s
// reaches every partner before segment s+1 starts and no single partner's
// large block serializes the round. Both sides of a pair walk the same
// (segment, round) grid -- the pairing is an involution -- so the
// messages of an ordered rank pair flow in segment order on one tag, and
// per-envelope FIFO order sequences them; back-to-back operations on the
// same tag stay disambiguated the same way. Without segmentation each
// ordered pair exchanges exactly one message (zero-count blocks
// included), message for message the substrate's schedule.
#include <algorithm>
#include <cstring>
#include <utility>

#include "rbc/collectives.hpp"
#include "rbc/sanitize.hpp"
#include "rbc/sm.hpp"

namespace rbc {
namespace detail {
namespace {

class AlltoallvSM final : public RequestImpl {
 public:
  AlltoallvSM(const void* send, std::span<const int> sendcounts,
              std::span<const int> sdispls, Datatype dt, void* recv,
              std::span<const int> recvcounts, std::span<const int> rdispls,
              Comm comm, int tag, std::int64_t segment_bytes)
      : send_(static_cast<const std::byte*>(send)),
        recv_(static_cast<std::byte*>(recv)),
        sendcounts_(sendcounts.begin(), sendcounts.end()),
        sdispls_(sdispls.begin(), sdispls.end()),
        recvcounts_(recvcounts.begin(), recvcounts.end()),
        rdispls_(rdispls.begin(), rdispls.end()), dt_(dt),
        comm_(std::move(comm)), tag_(tag) {
    const int p = comm_.Size();
    const int rank = comm_.Rank();
    if (static_cast<int>(sendcounts_.size()) != p ||
        static_cast<int>(sdispls_.size()) != p ||
        static_cast<int>(recvcounts_.size()) != p ||
        static_cast<int>(rdispls_.size()) != p) {
      throw mpisim::UsageError(
          "rbc::Alltoallv: count/displacement arrays must have Size() "
          "entries");
    }
    for (int i = 0; i < p; ++i) {
      if (sendcounts_[static_cast<std::size_t>(i)] < 0 ||
          recvcounts_[static_cast<std::size_t>(i)] < 0) {
        throw mpisim::UsageError("rbc::Alltoallv: negative count");
      }
    }
    pow2_ = (p & (p - 1)) == 0;
    const std::size_t esize = mpisim::SizeOf(dt_);
    segment_bytes_ = segment_bytes;
    max_segs_ = 1;
    for (int i = 0; i < p; ++i) {
      if (i == rank) continue;
      const auto ii = static_cast<std::size_t>(i);
      max_segs_ = std::max({max_segs_, SegsOf(sendcounts_[ii]),
                            SegsOf(recvcounts_[ii])});
    }
    // Own block: local copy, no message.
    const std::size_t self =
        static_cast<std::size_t>(sendcounts_[static_cast<std::size_t>(rank)]) *
        esize;
    if (self != 0) {
      std::memcpy(
          recv_ + static_cast<std::size_t>(
                      rdispls_[static_cast<std::size_t>(rank)]) * esize,
          send_ + static_cast<std::size_t>(
                      sdispls_[static_cast<std::size_t>(rank)]) * esize,
          self);
    }
    Advance();
  }

  bool Test(Status*) override {
    if (done_) return true;
    if (!pending_.Poll()) return false;
    Advance();
    return done_;
  }

 private:
  int Partner(int r) const {
    const int p = comm_.Size();
    const int rank = comm_.Rank();
    return pow2_ ? (rank ^ r) : ((r - rank) % p + p) % p;
  }

  /// Wire messages of one block under the segment limit (zero-count
  /// blocks still cost one empty message) -- the substrate's shared
  /// arithmetic, so exchange-layer accounting matches this schedule.
  std::int64_t SegsOf(int count) const {
    return mpisim::AlltoallvSegmentsOf(count, mpisim::SizeOf(dt_),
                                       segment_bytes_);
  }

  /// Element offset and length of segment s within a block of `count`.
  std::pair<std::int64_t, std::int64_t> SegRange(int count,
                                                 std::int64_t s) const {
    return mpisim::AlltoallvSegmentRange(count, mpisim::SizeOf(dt_),
                                         segment_bytes_, s);
  }

  /// Walks the (segment, round) grid to the next receive and parks there;
  /// sends along the way are eager. Segment-major: all rounds of segment
  /// s complete before segment s+1 starts.
  void Advance() {
    const int p = comm_.Size();
    const std::size_t esize = mpisim::SizeOf(dt_);
    while (seg_ < max_segs_) {
      while (round_ < p) {
        const int partner = Partner(round_);
        ++round_;
        if (partner == comm_.Rank()) continue;  // fixed point: own block
        const auto pi = static_cast<std::size_t>(partner);
        const std::int64_t ss = SegsOf(sendcounts_[pi]);
        const std::int64_t rs = SegsOf(recvcounts_[pi]);
        if (seg_ < ss) {
          const auto [at, len] = SegRange(sendcounts_[pi], seg_);
          SendInternal(
              send_ + static_cast<std::size_t>(sdispls_[pi] + at) * esize,
              static_cast<int>(len), dt_, partner, tag_, comm_);
        }
        if (seg_ < rs) {
          const auto [at, len] = SegRange(recvcounts_[pi], seg_);
          pending_ = IrecvInternal(
              recv_ + static_cast<std::size_t>(rdispls_[pi] + at) * esize,
              static_cast<int>(len), dt_, partner, tag_, comm_);
          return;  // park on this slot's receive
        }
      }
      round_ = 0;
      ++seg_;
    }
    done_ = true;
  }

  const std::byte* send_;
  std::byte* recv_;
  std::vector<int> sendcounts_, sdispls_, recvcounts_, rdispls_;
  Datatype dt_;
  Comm comm_;
  int tag_;
  bool pow2_ = false;
  std::int64_t segment_bytes_ = 0;  // 0 = unsegmented
  std::int64_t max_segs_ = 1;  // outer-loop bound over this rank's pairs
  std::int64_t seg_ = 0;
  int round_ = 0;
  Request pending_;
  bool done_ = false;
};

std::shared_ptr<RequestImpl> MakeUniformSM(const void* send, int count,
                                           Datatype dt, void* recv,
                                           const Comm& comm, int tag) {
  if (count < 0) throw mpisim::UsageError("rbc::Alltoall: negative count");
  const int p = comm.Size();
  std::vector<int> counts(static_cast<std::size_t>(p), count);
  std::vector<int> displs(static_cast<std::size_t>(p));
  for (int i = 0; i < p; ++i) {
    displs[static_cast<std::size_t>(i)] = i * count;
  }
  return std::make_shared<AlltoallvSM>(send, counts, displs, dt, recv, counts,
                                       displs, comm, tag,
                                       /*segment_bytes=*/0);
}

}  // namespace
}  // namespace detail

int Alltoall(const void* sendbuf, int count, Datatype dt, void* recvbuf,
             const Comm& comm) {
  detail::ValidateCollective(comm, 0, "Alltoall");
  sanitize::CollectiveScope san(
      comm, sanitize::MakeOp(sanitize::CollKind::kAlltoall, /*root=*/-1,
                             kTagAlltoall, count, mpisim::SizeOf(dt)));
  detail::RunToCompletion(
      detail::MakeUniformSM(sendbuf, count, dt, recvbuf, comm, kTagAlltoall),
      "Alltoall");
  return 0;
}

int Ialltoall(const void* sendbuf, int count, Datatype dt, void* recvbuf,
              const Comm& comm, Request* request, int tag) {
  detail::ValidateCollective(comm, 0, "Ialltoall");
  if (request == nullptr) {
    throw mpisim::UsageError("rbc::Ialltoall: null request");
  }
  auto rec = sanitize::MakeOp(sanitize::CollKind::kAlltoall, /*root=*/-1, tag,
                              count, mpisim::SizeOf(dt));
  rec.nonblocking = true;
  sanitize::CollectiveScope san(comm, std::move(rec));
  *request = Request(
      detail::MakeUniformSM(sendbuf, count, dt, recvbuf, comm, tag));
  return 0;
}

int Alltoallv(const void* sendbuf, std::span<const int> sendcounts,
              std::span<const int> sdispls, Datatype dt, void* recvbuf,
              std::span<const int> recvcounts, std::span<const int> rdispls,
              const Comm& comm, std::int64_t segment_bytes) {
  detail::ValidateCollective(comm, 0, "Alltoallv");
  auto arec = sanitize::MakeOp(sanitize::CollKind::kAlltoallv, /*root=*/-1,
                               kTagAlltoallv, /*count=*/-1, mpisim::SizeOf(dt),
                               segment_bytes);
  if (sanitize::Enabled()) {
    arec.counts_to = sanitize::ToCounts(sendcounts);
    arec.counts_from = sanitize::ToCounts(recvcounts);
  }
  sanitize::CollectiveScope san(comm, std::move(arec));
  detail::RunToCompletion(
      std::make_shared<detail::AlltoallvSM>(sendbuf, sendcounts, sdispls, dt,
                                            recvbuf, recvcounts, rdispls,
                                            comm, kTagAlltoallv,
                                            segment_bytes),
      "Alltoallv");
  return 0;
}

int Ialltoallv(const void* sendbuf, std::span<const int> sendcounts,
               std::span<const int> sdispls, Datatype dt, void* recvbuf,
               std::span<const int> recvcounts, std::span<const int> rdispls,
               const Comm& comm, Request* request, int tag,
               std::int64_t segment_bytes) {
  detail::ValidateCollective(comm, 0, "Ialltoallv");
  if (request == nullptr) {
    throw mpisim::UsageError("rbc::Ialltoallv: null request");
  }
  auto arec = sanitize::MakeOp(sanitize::CollKind::kAlltoallv, /*root=*/-1,
                               tag, /*count=*/-1, mpisim::SizeOf(dt),
                               segment_bytes);
  arec.nonblocking = true;
  if (sanitize::Enabled()) {
    arec.counts_to = sanitize::ToCounts(sendcounts);
    arec.counts_from = sanitize::ToCounts(recvcounts);
  }
  sanitize::CollectiveScope san(comm, std::move(arec));
  *request = Request(std::make_shared<detail::AlltoallvSM>(
      sendbuf, sendcounts, sdispls, dt, recvbuf, recvcounts, rdispls, comm,
      tag, segment_bytes));
  return 0;
}

}  // namespace rbc
