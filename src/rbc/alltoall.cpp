// rbc::Alltoall / rbc::Alltoallv -- personalized all-to-all exchange over
// an RBC range (extension beyond Table I, Section V-D construction).
//
// The nonblocking form is a round-based state machine progressed by
// rbc::Test. Round r pairs the caller with one partner:
//  * power-of-two ranges: hypercube pairing, partner = rank XOR r -- every
//    round is a perfect matching of the range;
//  * general ranges: 1-factorization of the complete graph, partner =
//    (r - rank) mod p -- an involution for every p, with at most two fixed
//    points per round (a fixed point is the caller's own block, handled by
//    a local copy before round 0).
// Each ordered rank pair exchanges exactly one message per operation, so a
// single reserved tag suffices; per-envelope FIFO order disambiguates
// back-to-back operations on the same tag. Sends are eager, so a round
// posts its send, then parks on the matching receive -- faster ranks run
// ahead of slower partners without deadlock.
#include <cstring>

#include "rbc/collectives.hpp"
#include "rbc/sm.hpp"

namespace rbc {
namespace detail {
namespace {

class AlltoallvSM final : public RequestImpl {
 public:
  AlltoallvSM(const void* send, std::span<const int> sendcounts,
              std::span<const int> sdispls, Datatype dt, void* recv,
              std::span<const int> recvcounts, std::span<const int> rdispls,
              Comm comm, int tag)
      : send_(static_cast<const std::byte*>(send)),
        recv_(static_cast<std::byte*>(recv)),
        sendcounts_(sendcounts.begin(), sendcounts.end()),
        sdispls_(sdispls.begin(), sdispls.end()),
        recvcounts_(recvcounts.begin(), recvcounts.end()),
        rdispls_(rdispls.begin(), rdispls.end()), dt_(dt),
        comm_(std::move(comm)), tag_(tag) {
    const int p = comm_.Size();
    const int rank = comm_.Rank();
    if (static_cast<int>(sendcounts_.size()) != p ||
        static_cast<int>(sdispls_.size()) != p ||
        static_cast<int>(recvcounts_.size()) != p ||
        static_cast<int>(rdispls_.size()) != p) {
      throw mpisim::UsageError(
          "rbc::Alltoallv: count/displacement arrays must have Size() "
          "entries");
    }
    for (int i = 0; i < p; ++i) {
      if (sendcounts_[static_cast<std::size_t>(i)] < 0 ||
          recvcounts_[static_cast<std::size_t>(i)] < 0) {
        throw mpisim::UsageError("rbc::Alltoallv: negative count");
      }
    }
    pow2_ = (p & (p - 1)) == 0;
    // Own block: local copy, no message.
    const std::size_t esize = mpisim::SizeOf(dt_);
    const std::size_t self =
        static_cast<std::size_t>(sendcounts_[static_cast<std::size_t>(rank)]) *
        esize;
    if (self != 0) {
      std::memcpy(
          recv_ + static_cast<std::size_t>(
                      rdispls_[static_cast<std::size_t>(rank)]) * esize,
          send_ + static_cast<std::size_t>(
                      sdispls_[static_cast<std::size_t>(rank)]) * esize,
          self);
    }
    AdvanceRounds();
  }

  bool Test(Status*) override {
    if (done_) return true;
    if (!pending_.Poll()) return false;
    ++round_;
    AdvanceRounds();
    return done_;
  }

 private:
  int Partner(int r) const {
    const int p = comm_.Size();
    const int rank = comm_.Rank();
    return pow2_ ? (rank ^ r) : ((r - rank) % p + p) % p;
  }

  void AdvanceRounds() {
    const int p = comm_.Size();
    const std::size_t esize = mpisim::SizeOf(dt_);
    while (round_ < p) {
      const int partner = Partner(round_);
      if (partner == comm_.Rank()) {  // fixed point: own block, done above
        ++round_;
        continue;
      }
      const auto pi = static_cast<std::size_t>(partner);
      SendInternal(send_ + static_cast<std::size_t>(sdispls_[pi]) * esize,
                   sendcounts_[pi], dt_, partner, tag_, comm_);
      pending_ = IrecvInternal(
          recv_ + static_cast<std::size_t>(rdispls_[pi]) * esize,
          recvcounts_[pi], dt_, partner, tag_, comm_);
      return;  // park on this round's receive
    }
    done_ = true;
  }

  const std::byte* send_;
  std::byte* recv_;
  std::vector<int> sendcounts_, sdispls_, recvcounts_, rdispls_;
  Datatype dt_;
  Comm comm_;
  int tag_;
  bool pow2_ = false;
  int round_ = 0;
  Request pending_;
  bool done_ = false;
};

std::shared_ptr<RequestImpl> MakeUniformSM(const void* send, int count,
                                           Datatype dt, void* recv,
                                           const Comm& comm, int tag) {
  if (count < 0) throw mpisim::UsageError("rbc::Alltoall: negative count");
  const int p = comm.Size();
  std::vector<int> counts(static_cast<std::size_t>(p), count);
  std::vector<int> displs(static_cast<std::size_t>(p));
  for (int i = 0; i < p; ++i) {
    displs[static_cast<std::size_t>(i)] = i * count;
  }
  return std::make_shared<AlltoallvSM>(send, counts, displs, dt, recv, counts,
                                       displs, comm, tag);
}

}  // namespace
}  // namespace detail

int Alltoall(const void* sendbuf, int count, Datatype dt, void* recvbuf,
             const Comm& comm) {
  detail::ValidateCollective(comm, 0, "Alltoall");
  detail::RunToCompletion(
      detail::MakeUniformSM(sendbuf, count, dt, recvbuf, comm, kTagAlltoall),
      "Alltoall");
  return 0;
}

int Ialltoall(const void* sendbuf, int count, Datatype dt, void* recvbuf,
              const Comm& comm, Request* request, int tag) {
  detail::ValidateCollective(comm, 0, "Ialltoall");
  if (request == nullptr) {
    throw mpisim::UsageError("rbc::Ialltoall: null request");
  }
  *request = Request(
      detail::MakeUniformSM(sendbuf, count, dt, recvbuf, comm, tag));
  return 0;
}

int Alltoallv(const void* sendbuf, std::span<const int> sendcounts,
              std::span<const int> sdispls, Datatype dt, void* recvbuf,
              std::span<const int> recvcounts, std::span<const int> rdispls,
              const Comm& comm) {
  detail::ValidateCollective(comm, 0, "Alltoallv");
  detail::RunToCompletion(
      std::make_shared<detail::AlltoallvSM>(sendbuf, sendcounts, sdispls, dt,
                                            recvbuf, recvcounts, rdispls,
                                            comm, kTagAlltoallv),
      "Alltoallv");
  return 0;
}

int Ialltoallv(const void* sendbuf, std::span<const int> sendcounts,
               std::span<const int> sdispls, Datatype dt, void* recvbuf,
               std::span<const int> recvcounts, std::span<const int> rdispls,
               const Comm& comm, Request* request, int tag) {
  detail::ValidateCollective(comm, 0, "Ialltoallv");
  if (request == nullptr) {
    throw mpisim::UsageError("rbc::Ialltoallv: null request");
  }
  *request = Request(std::make_shared<detail::AlltoallvSM>(
      sendbuf, sendcounts, sdispls, dt, recvbuf, recvcounts, rdispls, comm,
      tag));
  return 0;
}

}  // namespace rbc
