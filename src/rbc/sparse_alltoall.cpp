// rbc::SparseAlltoallv -- sparse (neighborhood) personalized exchange over
// an RBC range, in the spirit of the NBX algorithm (Hoefler, Siebert,
// Lumsdaine: "Scalable communication protocols for dynamic sparse data
// exchange") adapted to the substrate's eager sends.
//
// Phase A: post one eager send per listed destination (the substrate
//   deposits the payload into the destination mailbox before the call
//   returns), then enter barrier A, draining membership-filtered probes
//   while it completes.
// Phase B: barrier A complete means every member has posted all its sends,
//   so every message owed to the caller already sits in the mailbox: drain
//   until the probe reports nothing, then enter barrier B.
// Phase C: barrier B fences the operation against its successor -- a
//   member may post sends of a *following* sparse exchange on the same tag
//   only after every rank finished draining this one, so the final drain
//   of phase B can never steal them.
//
// Message budget per rank: one message per non-empty destination plus two
// barrier traversals (O(log p) tokens), with no dense counts round at all.
#include <algorithm>

#include "rbc/collectives.hpp"
#include "rbc/sm.hpp"

namespace rbc {
namespace detail {
namespace {

/// Barrier tags derived from the payload tag, in a reserved region far
/// above the collective-tag maps of the library's users: two distinct
/// sparse exchanges (distinct payload tags) never share barrier envelopes.
constexpr int kSparseBarrierBase = kReservedTagBase + (1 << 22);

class SparseAlltoallvSM final : public RequestImpl {
 public:
  SparseAlltoallvSM(std::span<const SparseSendBlock> sends, Datatype dt,
                    std::vector<SparseRecvMessage>* received, Comm comm,
                    int tag)
      : dt_(dt), received_(received), comm_(std::move(comm)), tag_(tag) {
    if (received_ == nullptr) {
      throw mpisim::UsageError("rbc::SparseAlltoallv: null receive vector");
    }
    first_incoming_ = received_->size();
    const int p = comm_.Size();
    for (const SparseSendBlock& b : sends) {
      if (b.dest < 0 || b.dest >= p) {
        throw mpisim::UsageError("rbc::SparseAlltoallv: destination out of "
                                 "range");
      }
      if (b.count < 0) {
        throw mpisim::UsageError("rbc::SparseAlltoallv: negative count");
      }
      if (b.dest == comm_.Rank()) {
        // Self block: local delivery, no message.
        const auto* bytes = static_cast<const std::byte*>(b.data);
        received_->push_back(SparseRecvMessage{
            b.dest, std::vector<std::byte>(
                        bytes, bytes + ByteCount(b.count, dt_))});
      } else {
        SendInternal(b.data, b.count, dt_, b.dest, tag_, comm_);
      }
    }
    Ibarrier(comm_, &barrier_, kSparseBarrierBase + 2 * tag_);
  }

  bool Test(Status*) override {
    if (phase_ == 0) {
      Drain();
      if (!barrier_.Poll()) return false;
      // Every member has posted its sends (entered barrier A after them),
      // and eager deposit makes them all visible: this drain is exact.
      Drain();
      std::stable_sort(received_->begin() + static_cast<std::ptrdiff_t>(
                                                first_incoming_),
                       received_->end(),
                       [](const SparseRecvMessage& a,
                          const SparseRecvMessage& b) {
                         return a.source < b.source;
                       });
      Ibarrier(comm_, &barrier_, kSparseBarrierBase + 2 * tag_ + 1);
      phase_ = 1;
    }
    return barrier_.Poll();
  }

 private:
  void Drain() {
    Status st;
    while (IprobeInternal(kAnySource, tag_, comm_, &st)) {
      SparseRecvMessage msg;
      msg.source = st.source;
      msg.bytes.resize(st.bytes);
      RecvInternal(msg.bytes.data(), static_cast<int>(st.bytes),
                   Datatype::kByte, st.source, tag_, comm_);
      received_->push_back(std::move(msg));
    }
  }

  Datatype dt_;
  std::vector<SparseRecvMessage>* received_;
  Comm comm_;
  int tag_;
  std::size_t first_incoming_ = 0;
  Request barrier_;
  int phase_ = 0;
};

}  // namespace
}  // namespace detail

int SparseAlltoallv(std::span<const SparseSendBlock> sends, Datatype dt,
                    std::vector<SparseRecvMessage>* received,
                    const Comm& comm, int tag) {
  detail::ValidateCollective(comm, 0, "SparseAlltoallv");
  detail::RunToCompletion(
      std::make_shared<detail::SparseAlltoallvSM>(sends, dt, received, comm,
                                                  tag),
      "SparseAlltoallv");
  return 0;
}

int IsparseAlltoallv(std::span<const SparseSendBlock> sends, Datatype dt,
                     std::vector<SparseRecvMessage>* received,
                     const Comm& comm, Request* request, int tag) {
  detail::ValidateCollective(comm, 0, "IsparseAlltoallv");
  if (request == nullptr) {
    throw mpisim::UsageError("rbc::IsparseAlltoallv: null request");
  }
  *request = Request(std::make_shared<detail::SparseAlltoallvSM>(
      sends, dt, received, comm, tag));
  return 0;
}

}  // namespace rbc
