// rbc::SparseAlltoallv -- sparse (neighborhood) personalized exchange over
// an RBC range, in the spirit of the NBX algorithm (Hoefler, Siebert,
// Lumsdaine: "Scalable communication protocols for dynamic sparse data
// exchange") adapted to the substrate's eager sends.
//
// Phase A: post the chunked payload of every listed destination (the
//   substrate deposits each chunk into the destination mailbox before the
//   call returns), then enter barrier A, draining membership-filtered
//   probes while it completes.
// Phase B: barrier A complete means every member has posted all its sends,
//   so every message owed to the caller already sits in the mailbox: drain
//   until the probe reports nothing, then enter barrier B.
// Phase C: barrier B fences the operation against its successor -- a
//   member may post sends of a *following* sparse exchange on the same tag
//   only after every rank finished draining this one, so the final drain
//   of phase B can never steal them. The fence covers trailing payload
//   chunks too: they are consumed by the drain that received their first
//   chunk, strictly before this rank enters barrier B.
//
// Payload wire format (shared with mpisim::IsparseAlltoallv): the first
// chunk, on the exchange's payload tag, is [int64 total payload bytes]
// [payload...]; with a segment limit, payloads larger than one chunk
// continue on the exchange's *chunk tag* as [int64 seq][payload...],
// sequenced 1, 2, ... per destination and injected *before* their header
// chunk. A receiver that probes a header chunk therefore pulls the
// sender's trailing chunks without ever waiting -- so a skewed
// destination never buffers its whole payload in one message, yet the
// caller still sees exactly one delivery per source and the request's
// Test stays nonblocking.
//
// Message budget per rank: SparseChunksOf(payload) messages per non-empty
// destination plus two barrier traversals (O(log p) tokens), with no
// dense counts round at all.
#include <algorithm>

#include "rbc/collectives.hpp"
#include "rbc/sanitize.hpp"
#include "rbc/sm.hpp"

namespace rbc {
namespace detail {
namespace {

/// Barrier tags derived from the payload tag, in a reserved region far
/// above the collective-tag maps of the library's users: two distinct
/// sparse exchanges (distinct payload tags) never share barrier envelopes.
constexpr int kSparseBarrierBase = kReservedTagBase + (1 << 22);

/// Trailing-chunk tags, one per payload tag, in their own reserved region:
/// simultaneous sparse exchanges on distinct tags keep their chunk
/// sequences apart, and chunk traffic never collides with barrier tokens
/// or first chunks.
constexpr int kSparseChunkBase = kReservedTagBase + (1 << 23);

class SparseAlltoallvSM final : public RequestImpl {
 public:
  SparseAlltoallvSM(std::span<const SparseSendBlock> sends, Datatype dt,
                    std::vector<SparseRecvMessage>* received, Comm comm,
                    int tag, std::int64_t segment_bytes)
      : dt_(dt), received_(received), comm_(std::move(comm)), tag_(tag) {
    if (received_ == nullptr) {
      throw mpisim::UsageError("rbc::SparseAlltoallv: null receive vector");
    }
    first_incoming_ = received_->size();
    const int p = comm_.Size();
    for (const SparseSendBlock& b : sends) {
      if (b.dest < 0 || b.dest >= p) {
        throw mpisim::UsageError("rbc::SparseAlltoallv: destination out of "
                                 "range");
      }
      if (b.count < 0) {
        throw mpisim::UsageError("rbc::SparseAlltoallv: negative count");
      }
      if (b.dest == comm_.Rank()) {
        // Self block: local delivery, no message.
        const auto* bytes = static_cast<const std::byte*>(b.data);
        received_->push_back(SparseRecvMessage{
            b.dest, std::vector<std::byte>(
                        bytes, bytes + ByteCount(b.count, dt_))});
      } else {
        mpisim::detail::SendChunkedSparse(
            static_cast<const std::byte*>(b.data),
            static_cast<std::int64_t>(ByteCount(b.count, dt_)),
            segment_bytes,
            [&](const std::vector<std::byte>& msg, bool first) {
              SendInternal(msg.data(), static_cast<int>(msg.size()),
                           Datatype::kByte, b.dest,
                           first ? tag_ : kSparseChunkBase + tag_, comm_);
            });
      }
    }
    barrier_ = Request(MakeBarrierSM(comm_, kSparseBarrierBase + 2 * tag_));
  }

  bool Test(Status*) override {
    if (phase_ == 0) {
      Drain();
      if (!barrier_.Poll()) return false;
      // Every member has posted its sends (entered barrier A after them),
      // and eager deposit makes them all visible: this drain is exact.
      Drain();
      std::stable_sort(received_->begin() + static_cast<std::ptrdiff_t>(
                                                first_incoming_),
                       received_->end(),
                       [](const SparseRecvMessage& a,
                          const SparseRecvMessage& b) {
                         return a.source < b.source;
                       });
      // Test() runs outside the public entry's sanitizer scope; the
      // factory keeps this internal fence out of the collective ledger.
      barrier_ =
          Request(MakeBarrierSM(comm_, kSparseBarrierBase + 2 * tag_ + 1));
      phase_ = 1;
    }
    return barrier_.Poll();
  }

 private:
  void Drain() {
    Status st;
    while (IprobeInternal(kAnySource, tag_, comm_, &st)) {
      std::vector<std::byte> first(st.bytes);
      RecvInternal(first.data(), static_cast<int>(st.bytes),
                   Datatype::kByte, st.source, tag_, comm_);
      SparseRecvMessage msg;
      msg.source = st.source;
      // Trailing chunks were deposited *before* their header chunk (see
      // SendChunkedSparse), so these receives complete without waiting
      // and Test stays nonblocking.
      msg.bytes = mpisim::detail::ReassembleChunkedSparse(
          first, [&](std::int64_t) {
            Status cst;
            ProbeInternal(st.source, kSparseChunkBase + tag_, comm_, &cst);
            std::vector<std::byte> chunk(cst.bytes);
            RecvInternal(chunk.data(), static_cast<int>(cst.bytes),
                         Datatype::kByte, st.source,
                         kSparseChunkBase + tag_, comm_);
            return chunk;
          });
      received_->push_back(std::move(msg));
    }
  }

  Datatype dt_;
  std::vector<SparseRecvMessage>* received_;
  Comm comm_;
  int tag_;
  std::size_t first_incoming_ = 0;
  Request barrier_;
  int phase_ = 0;
};

}  // namespace
}  // namespace detail

int SparseAlltoallv(std::span<const SparseSendBlock> sends, Datatype dt,
                    std::vector<SparseRecvMessage>* received,
                    const Comm& comm, int tag, std::int64_t segment_bytes) {
  detail::ValidateCollective(comm, 0, "SparseAlltoallv");
  sanitize::CollectiveScope san(
      comm, sanitize::MakeOp(sanitize::CollKind::kSparseAlltoallv,
                             /*root=*/-1, tag, /*count=*/-1,
                             mpisim::SizeOf(dt), segment_bytes));
  detail::RunToCompletion(
      std::make_shared<detail::SparseAlltoallvSM>(sends, dt, received, comm,
                                                  tag, segment_bytes),
      "SparseAlltoallv");
  return 0;
}

int IsparseAlltoallv(std::span<const SparseSendBlock> sends, Datatype dt,
                     std::vector<SparseRecvMessage>* received,
                     const Comm& comm, Request* request, int tag,
                     std::int64_t segment_bytes) {
  detail::ValidateCollective(comm, 0, "IsparseAlltoallv");
  if (request == nullptr) {
    throw mpisim::UsageError("rbc::IsparseAlltoallv: null request");
  }
  auto rec = sanitize::MakeOp(sanitize::CollKind::kSparseAlltoallv,
                              /*root=*/-1, tag, /*count=*/-1,
                              mpisim::SizeOf(dt), segment_bytes);
  rec.nonblocking = true;
  sanitize::CollectiveScope san(comm, std::move(rec));
  *request = Request(std::make_shared<detail::SparseAlltoallvSM>(
      sends, dt, received, comm, tag, segment_bytes));
  return 0;
}

}  // namespace rbc
