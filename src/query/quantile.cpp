#include "query/quantile.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sort/partition.hpp"

namespace jsort::query {

namespace {

/// bins+1 equi-width boundaries over [lo, hi].
std::vector<double> EquiWidthBoundaries(double lo, double hi, int bins) {
  std::vector<double> b(static_cast<std::size_t>(bins) + 1);
  b.front() = lo;
  b.back() = hi;
  for (int i = 1; i < bins; ++i) {
    b[static_cast<std::size_t>(i)] =
        lo + (hi - lo) * (static_cast<double>(i) / static_cast<double>(bins));
  }
  return b;
}

/// Per-bucket population of `data` against the boundaries, via the
/// splitter-tree classifier (interior boundaries as splitters,
/// upper_bound semantics: x == boundary goes right).
std::vector<std::int64_t> CountBuckets(std::span<const double> data,
                                       const std::vector<double>& boundaries) {
  const int bins = static_cast<int>(boundaries.size()) - 1;
  const std::span<const double> splitters(boundaries.data() + 1,
                                          static_cast<std::size_t>(bins) - 1);
  const KWayBuckets buckets = PartitionKWay(data, splitters);
  std::vector<std::int64_t> counts(static_cast<std::size_t>(bins), 0);
  for (int b = 0; b < bins; ++b) {
    counts[static_cast<std::size_t>(b)] = buckets.Count(b);
  }
  return counts;
}

/// Equi-depth re-placement: interior boundary i moves to the (linearly
/// interpolated) position of global rank i*total/bins in the previous
/// pass's CDF. Pure arithmetic on globally agreed values, so every rank
/// (and the sequential oracle) computes bit-identical boundaries.
std::vector<double> RefineBoundaries(const std::vector<double>& boundaries,
                                     const std::vector<std::int64_t>& counts,
                                     std::int64_t total) {
  const int bins = static_cast<int>(counts.size());
  std::vector<double> next = boundaries;
  std::size_t bucket = 0;
  std::int64_t below = 0;  // CDF value at boundaries[bucket]
  for (int i = 1; i < bins; ++i) {
    const std::int64_t target =
        total * static_cast<std::int64_t>(i) / static_cast<std::int64_t>(bins);
    while (bucket + 1 < counts.size() &&
           below + counts[bucket] <= target) {
      below += counts[bucket];
      ++bucket;
    }
    const double lo = boundaries[bucket];
    const double hi = boundaries[bucket + 1];
    const double frac =
        counts[bucket] > 0
            ? static_cast<double>(target - below) /
                  static_cast<double>(counts[bucket])
            : 0.0;
    next[static_cast<std::size_t>(i)] = lo + (hi - lo) * frac;
  }
  return next;
}

}  // namespace

std::int64_t QuantileSummary::TargetRank(double q) const {
  if (total_ <= 0) return 0;
  const double clamped = std::clamp(q, 0.0, 1.0);
  const auto t = static_cast<std::int64_t>(
      std::llround(clamped * static_cast<double>(total_ - 1)));
  return std::clamp<std::int64_t>(t, 0, total_ - 1);
}

std::size_t QuantileSummary::BucketOf(std::int64_t target) const {
  std::int64_t below = 0;
  for (std::size_t b = 0; b + 1 < counts_.size(); ++b) {
    if (target < below + counts_[b]) return b;
    below += counts_[b];
  }
  return counts_.empty() ? 0 : counts_.size() - 1;
}

double QuantileSummary::Query(double q) const {
  if (total_ <= 0) return 0.0;
  const std::int64_t target = TargetRank(q);
  const std::size_t b = BucketOf(target);
  std::int64_t below = 0;
  for (std::size_t i = 0; i < b; ++i) below += counts_[i];
  const double lo = boundaries_[b];
  const double hi = boundaries_[b + 1];
  const double frac =
      counts_[b] > 0 ? static_cast<double>(target - below) /
                           static_cast<double>(counts_[b])
                     : 0.0;
  return lo + (hi - lo) * frac;
}

std::int64_t QuantileSummary::RankErrorBound(double q) const {
  if (total_ <= 0) return 0;
  return counts_[BucketOf(TargetRank(q))] + 1;
}

QuantileSummary BuildQuantileSummary(Transport& tr,
                                     std::span<const double> local,
                                     const QuantileConfig& cfg,
                                     QuantileStats* stats) {
  const int bins = std::max(2, cfg.bins);
  QuantileSummary s;
  int reductions = 0;

  const std::int64_t n_local = static_cast<std::int64_t>(local.size());
  std::int64_t n_total = 0;
  Allreduce(tr, &n_local, &n_total, 1, Datatype::kInt64, ReduceOp::kSum,
            cfg.tag);
  ++reductions;
  s.total_ = n_total;
  if (n_total == 0) {
    s.boundaries_.assign(static_cast<std::size_t>(bins) + 1, 0.0);
    s.counts_.assign(static_cast<std::size_t>(bins), 0);
    if (stats != nullptr) stats->reductions = reductions;
    return s;
  }

  // Global [min, max] in one kMin reduction over {min, -max}.
  double mm_local[2] = {std::numeric_limits<double>::infinity(),
                        std::numeric_limits<double>::infinity()};
  for (const double x : local) {
    mm_local[0] = std::min(mm_local[0], x);
    mm_local[1] = std::min(mm_local[1], -x);
  }
  double mm[2];
  Allreduce(tr, mm_local, mm, 2, Datatype::kFloat64, ReduceOp::kMin,
            cfg.tag);
  ++reductions;

  s.boundaries_ = EquiWidthBoundaries(mm[0], -mm[1], bins);
  for (int pass = 0; pass <= std::max(0, cfg.refinements); ++pass) {
    if (pass > 0) {
      s.boundaries_ = RefineBoundaries(s.boundaries_, s.counts_, n_total);
    }
    const std::vector<std::int64_t> mine = CountBuckets(local, s.boundaries_);
    s.counts_.assign(static_cast<std::size_t>(bins), 0);
    Allreduce(tr, mine.data(), s.counts_.data(), bins, Datatype::kInt64,
              ReduceOp::kSum, cfg.tag);
    ++reductions;
  }
  if (stats != nullptr) stats->reductions = reductions;
  return s;
}

QuantileSummary BuildQuantileSummaryLocal(std::span<const double> data,
                                          const QuantileConfig& cfg) {
  const int bins = std::max(2, cfg.bins);
  QuantileSummary s;
  s.total_ = static_cast<std::int64_t>(data.size());
  if (data.empty()) {
    s.boundaries_.assign(static_cast<std::size_t>(bins) + 1, 0.0);
    s.counts_.assign(static_cast<std::size_t>(bins), 0);
    return s;
  }
  double lo = data.front();
  double hi = data.front();
  for (const double x : data) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  // Mirror the distributed build's -max trick exactly so the boundary
  // arithmetic sees bit-identical endpoints.
  const double neg_hi = -hi;
  s.boundaries_ = EquiWidthBoundaries(lo, -neg_hi, bins);
  for (int pass = 0; pass <= std::max(0, cfg.refinements); ++pass) {
    if (pass > 0) {
      s.boundaries_ = RefineBoundaries(s.boundaries_, s.counts_, s.total_);
    }
    s.counts_ = CountBuckets(data, s.boundaries_);
  }
  return s;
}

}  // namespace jsort::query
