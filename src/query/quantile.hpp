// Streaming percentile / histogram summaries: fixed-size per-rank
// summaries merged with one reduction per pass, answering p50/p99-style
// queries with a bounded rank error.
//
// The summary is a `bins`-bucket histogram against shared ascending
// boundaries. Pass 0 uses equi-width boundaries over the global [min,
// max] (one min/max allreduce); each refinement pass re-places the
// boundaries at the equi-depth points of the previous pass's CDF -- the
// splitter machinery (PartitionKWay's branchless splitter tree)
// classifies the local slice against the boundaries, and one summed
// allreduce of the fixed-size count vector merges the per-rank
// summaries. After r refinements the answer to any quantile query is off
// by at most the population of one bucket of the (approximately
// equi-depth) final histogram.
//
// Every step is exact integer/IEEE arithmetic on globally agreed values,
// so the distributed build is bit-identical to the sequential oracle
// (BuildQuantileSummaryLocal) over the concatenated input, on every
// backend.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "query/common.hpp"

namespace jsort::query {

struct QuantileConfig {
  int bins = 64;         // fixed summary size (counts per pass)
  int refinements = 1;   // equi-depth passes after the equi-width pass
  int tag = kQuantileTagBase;
};

struct QuantileStats {
  int reductions = 0;    // merge allreduces (1 min/max + 1 per pass)
};

/// The merged summary; identical on every rank after a collective build.
class QuantileSummary {
 public:
  /// Value estimate for quantile q in [0, 1] (nearest-rank target,
  /// linear interpolation inside the target's bucket). Returns 0 for an
  /// empty summary.
  double Query(double q) const;

  /// Bound on |global rank of Query(q) - nearest-rank target|: the
  /// population of the bucket the answer falls in, plus one for the
  /// boundary ties.
  std::int64_t RankErrorBound(double q) const;

  std::int64_t total() const { return total_; }
  const std::vector<double>& boundaries() const { return boundaries_; }
  const std::vector<std::int64_t>& counts() const { return counts_; }

 private:
  friend QuantileSummary BuildQuantileSummary(Transport&,
                                              std::span<const double>,
                                              const QuantileConfig&,
                                              QuantileStats*);
  friend QuantileSummary BuildQuantileSummaryLocal(std::span<const double>,
                                                   const QuantileConfig&);

  /// Bucket index whose cumulative count covers rank `target`.
  std::size_t BucketOf(std::int64_t target) const;
  std::int64_t TargetRank(double q) const;

  std::vector<double> boundaries_;   // bins + 1, ascending
  std::vector<std::int64_t> counts_; // bins
  std::int64_t total_ = 0;
};

/// Collective build over the transport group: 1 + refinements count
/// reductions plus one min/max reduction, each over a fixed-size vector.
/// The result is identical on every rank.
QuantileSummary BuildQuantileSummary(Transport& tr,
                                     std::span<const double> local,
                                     const QuantileConfig& cfg = {},
                                     QuantileStats* stats = nullptr);

/// Sequential oracle: the same arithmetic over one local array. The
/// distributed build over any partition of `data` produces a summary
/// byte-identical to this one.
QuantileSummary BuildQuantileSummaryLocal(std::span<const double> data,
                                          const QuantileConfig& cfg = {});

}  // namespace jsort::query
