#include "query/topk.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "mpisim/error.hpp"
#include "mpisim/runtime.hpp"
#include "query/select.hpp"
#include "sort/exchange.hpp"
#include "sort/quickselect.hpp"

namespace jsort::query {

const char* TopKRouteName(TopKRoute r) {
  switch (r) {
    case TopKRoute::kSelect: return "select";
    case TopKRoute::kLocalHeap: return "heap";
    case TopKRoute::kAuto: return "auto";
  }
  return "?";
}

namespace {

/// Ships this rank's candidate elements to group rank `root` over the
/// sparse exchange (only non-empty contributions pay a message; the
/// root's own candidates never touch the wire) and returns, on the root,
/// everything received sorted ascending. Empty on every other rank.
std::vector<double> SparseGatherSorted(Transport& tr,
                                       std::vector<double> mine, int root,
                                       int tag, TopKStats* stats) {
  const bool am_root = tr.Rank() == root;
  std::vector<SparseBlock> sends;
  if (!am_root && !mine.empty()) {
    sends.push_back(SparseBlock{root, mine.data(),
                                static_cast<int>(mine.size())});
  }
  if (stats != nullptr) {
    stats->candidates_sent =
        am_root ? 0 : static_cast<std::int64_t>(mine.size());
  }
  std::vector<SparseDelivery> received;
  Wait(tr.IsparseAlltoallv(sends, Datatype::kFloat64, &received, tag));
  if (!am_root) return {};
  std::vector<double> out = std::move(mine);
  for (const SparseDelivery& msg : received) {
    const std::size_t n = msg.bytes.size() / sizeof(double);
    const std::size_t base = out.size();
    out.resize(base + n);
    std::memcpy(out.data() + base, msg.bytes.data(), n * sizeof(double));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::vector<double> DistributedTopK(Transport& tr,
                                    std::span<const double> local,
                                    std::int64_t k, const TopKConfig& cfg,
                                    TopKStats* stats) {
  if (k < 0) throw mpisim::UsageError("DistributedTopK: k must be >= 0");
  const std::int64_t n_local = static_cast<std::int64_t>(local.size());
  std::int64_t n_total = 0;
  Allreduce(tr, &n_local, &n_total, 1, Datatype::kInt64, ReduceOp::kSum,
            cfg.tag);
  const std::int64_t k_eff = std::min(k, n_total);
  if (k_eff == 0) return {};  // same decision on every rank

  TopKRoute route = cfg.route;
  if (route == TopKRoute::kAuto) {
    // Route choice from globally shared quantities only, priced in the
    // substrate's own alpha-beta model: the heap route funnels up to p
    // candidate messages of k words into the root (serialized at its
    // single port), the selection route pays ~log2(n) rounds of two
    // allreduces (~4 log2(p) serial message latencies each) plus the
    // k-element gather. Pick the heap while its funnel is cheaper.
    const mpisim::CostModel& cost = mpisim::Ctx().runtime->options().cost;
    const double p = static_cast<double>(tr.Size());
    const double logp = std::max(1.0, std::log2(p));
    const double logn = std::max(1.0, std::log2(static_cast<double>(n_total)));
    const double heap_cost =
        p * (cost.alpha + static_cast<double>(k_eff) * cost.beta);
    const double select_cost = 4.0 * logp * logn * cost.alpha +
                               static_cast<double>(k_eff) * cost.beta;
    route = heap_cost <= select_cost ? TopKRoute::kLocalHeap
                                     : TopKRoute::kSelect;
  }
  if (stats != nullptr) stats->route_taken = route;

  std::vector<double> out;
  if (route == TopKRoute::kSelect) {
    SelectStats sel_stats;
    const SelectResult sel = DistributedSelect(
        tr, local, k_eff - 1, SelectConfig{cfg.seed, cfg.tag}, &sel_stats);
    if (stats != nullptr) stats->select_rounds = sel_stats.rounds;
    // Everything below the threshold qualifies outright; the remaining
    // k_eff - less slots go to ties, apportioned deterministically in
    // rank order by one exscan over per-rank tie counts.
    std::vector<double> mine;
    std::int64_t ties = 0;
    for (const double x : local) {
      if (x < sel.value) {
        mine.push_back(x);
      } else if (x == sel.value) {
        ++ties;
      }
    }
    const std::int64_t need = k_eff - sel.less;
    const std::int64_t tie_offset =
        exchange::ExscanCount(tr, ties, cfg.tag + 2);
    const std::int64_t take =
        std::clamp<std::int64_t>(need - tie_offset, 0, ties);
    mine.insert(mine.end(), static_cast<std::size_t>(take), sel.value);
    out = SparseGatherSorted(tr, std::move(mine), cfg.root, cfg.tag + 3,
                             stats);
  } else {
    // Local-heap fallback: each of the global k smallest is among its
    // own rank's k smallest, so per-rank local selection plus one merge
    // at the root is exact.
    std::vector<double> mine(local.begin(), local.end());
    const std::size_t m = static_cast<std::size_t>(
        std::min<std::int64_t>(k_eff, n_local));
    QuickselectSmallest(mine, m,
                        cfg.seed ^ (0x9E3779B97F4A7C15ull *
                                    (static_cast<std::uint64_t>(tr.Rank()) +
                                     1)));
    mine.resize(m);
    out = SparseGatherSorted(tr, std::move(mine), cfg.root, cfg.tag + 3,
                             stats);
  }
  if (tr.Rank() == cfg.root) {
    out.resize(static_cast<std::size_t>(k_eff));
  }
  return out;
}

}  // namespace jsort::query
