// Distributed k-th selection: the exact k-th order statistic of a
// distributed multiset, without sorting it.
//
// Iterative distributed quickselect. Each round picks a globally uniform
// pivot with the weighted-reservoir machinery the sorters already use
// (sampling.hpp: per-rank candidate keyed u^(1/m), one kMaxPairFirst
// allreduce), three-way partitions the local active windows around it,
// and establishes the pivot's global rank interval with one summed
// allreduce of {#less, #equal}. The window shrinks geometrically in
// expectation: O(log n) rounds of O(log p)-latency collectives, O(n/p)
// expected local work (each element is touched O(1) times in
// expectation). Duplicate-heavy inputs cost nothing extra -- the pivot's
// whole equal run is resolved or discarded per round, so termination is
// guaranteed even on all-equal data.
#pragma once

#include <cstdint>
#include <span>

#include "query/common.hpp"

namespace jsort::query {

struct SelectConfig {
  /// Pivot-sampling seed. Mixed with the group rank, so ranks draw
  /// decorrelated reservoir keys; the result is deterministic in
  /// (data, k, seed) and identical across backends.
  std::uint64_t seed = 0x51E7u;
  int tag = kSelectTagBase;
};

struct SelectStats {
  int rounds = 0;               // pivot rounds (2 allreduces each)
  std::int64_t n_total = 0;     // global element count
};

/// The answer: the k-th smallest global element (0-based) and its exact
/// global rank interval. k in [less, less_equal) always holds, and
/// less_equal - less is the value's global multiplicity.
struct SelectResult {
  double value = 0.0;
  std::int64_t less = 0;        // global #elements strictly < value
  std::int64_t less_equal = 0;  // global #elements <= value
};

/// Collective over the transport group; every rank passes its local slice
/// and receives the identical result. Requires 0 <= k < sum of local
/// sizes (throws UsageError otherwise, consistently on every rank).
SelectResult DistributedSelect(Transport& tr, std::span<const double> local,
                               std::int64_t k, const SelectConfig& cfg = {},
                               SelectStats* stats = nullptr);

}  // namespace jsort::query
